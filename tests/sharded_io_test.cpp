// Tests for the sharded .adw layout (src/io/adw_shards.h): manifest golden
// bytes, conversion round trips against the single-file sequence, and the
// corruption cases (truncated shard, tampered manifest, failed conversion
// cleanup).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/crc32.h"
#include "src/graph/file_stream.h"
#include "src/graph/generators.h"
#include "src/io/adw_shards.h"
#include "src/io/binary_stream.h"

namespace adwise {
namespace {

std::vector<Edge> drain(EdgeStream& stream) {
  std::vector<Edge> out;
  Edge e;
  while (stream.next(e)) out.push_back(e);
  return out;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
}

// Concatenated replay of every shard in manifest order — must equal the
// single-file edge sequence.
std::vector<Edge> drain_shards(const std::string& manifest_path,
                               const AdwManifest& manifest) {
  std::vector<Edge> out;
  for (std::uint32_t i = 0; i < manifest.num_shards(); ++i) {
    BinaryEdgeStream stream(adw_shard_path(manifest_path, i));
    for (const Edge& e : drain(stream)) out.push_back(e);
  }
  return out;
}

class AdwShardsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-qualified: ctest runs test cases as separate processes whose
    // heap layouts (and thus `this` addresses) can coincide, and two cases
    // sharing shard files clobber each other.
    base_ = ::testing::TempDir() + "adw_shards_test_" +
            std::to_string(static_cast<long>(::getpid())) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
    manifest_path_ = base_ + ".adws";
    text_path_ = base_ + ".txt";
    adw_path_ = base_ + ".adw";
  }

  void TearDown() override {
    for (std::uint32_t i = 0; i < 16; ++i) {
      std::remove(adw_shard_path(manifest_path_, i).c_str());
    }
    std::remove(manifest_path_.c_str());
    std::remove(text_path_.c_str());
    std::remove(adw_path_.c_str());
  }

  void write_text(const std::string& contents) {
    std::ofstream out(text_path_);
    out << contents;
  }

  std::string base_, manifest_path_, text_path_, adw_path_;
};

TEST_F(AdwShardsTest, ShardPathNaming) {
  EXPECT_EQ(adw_shard_path("graph.adws", 0), "graph.shard0.adw");
  EXPECT_EQ(adw_shard_path("graph.adws", 12), "graph.shard12.adw");
  // Without the conventional extension the full path is the base.
  EXPECT_EQ(adw_shard_path("dir/graph", 3), "dir/graph.shard3.adw");
}

TEST_F(AdwShardsTest, ManifestGoldenBytes) {
  // Endianness pin for the manifest, like the .adw golden-bytes test: three
  // known edges split 2 + 1 across two shards. If this breaks, manifests
  // written on one machine no longer read on another.
  const std::vector<Edge> edges{{1, 2}, {0x01020304, 5}, {3, 4}};
  write_sharded_adw(manifest_path_, edges, 2);
  const std::string bytes = read_bytes(manifest_path_);
  const unsigned char expected[] = {
      'A', 'D', 'W', 'S',              // magic
      2,   0,   0,   0,                // version 2, LE
      2,   0,   0,   0,   0, 0, 0, 0,  // num_shards = 2
      3,   0,   0,   0,   0, 0, 0, 0,  // num_edges = 3
      4,   3,   2,   1,   0, 0, 0, 0,  // max_vertex_id = 0x01020304
      2,   0,   0,   0,   0, 0, 0, 0,  // shard 0: 2 edges
      4,   3,   2,   1,   0, 0, 0, 0,  //          max id 0x01020304
      1,   0,   0,   0,   0, 0, 0, 0,  // shard 1: 1 edge
      4,   0,   0,   0,   0, 0, 0, 0,  //          max id 4
  };
  // Version 2 appends a CRC-32 (LE) of every preceding byte.
  ASSERT_EQ(bytes.size(), sizeof(expected) + 4);
  for (std::size_t i = 0; i < sizeof(expected); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(bytes[i]), expected[i])
        << "byte " << i;
  }
  const std::uint32_t crc = crc32(expected, sizeof(expected));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(bytes[sizeof(expected) + i]),
              static_cast<unsigned char>((crc >> (8 * i)) & 0xffu))
        << "crc byte " << i;
  }
}

TEST_F(AdwShardsTest, RoundTripMatchesSingleFileSequence) {
  const Graph g = make_rmat({.scale = 10, .num_edges = 20'000, .seed = 7});
  const AdwManifest written = write_sharded_adw(manifest_path_, g.edges(), 4);
  const AdwManifest manifest = read_and_validate_adw_manifest(manifest_path_);
  EXPECT_EQ(manifest, written);
  EXPECT_EQ(manifest.num_shards(), 4u);
  EXPECT_EQ(manifest.num_edges(), g.num_edges());

  // Every shard header is itself validated .adw and matches its entry.
  for (std::uint32_t i = 0; i < 4; ++i) {
    const AdwHeader header =
        read_adw_header(adw_shard_path(manifest_path_, i));
    EXPECT_EQ(header.num_edges, manifest.shards[i].num_edges);
    EXPECT_EQ(header.max_vertex_id, manifest.shards[i].max_vertex_id);
  }

  // Chunk boundaries are chunk_sizes(|E|, z), and concatenating the shards
  // replays the single-file sequence bit-for-bit.
  const auto sizes = chunk_sizes(g.num_edges(), 4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(manifest.shards[i].num_edges, sizes[i]) << "shard " << i;
  }
  const auto replayed = drain_shards(manifest_path_, manifest);
  ASSERT_EQ(replayed.size(), g.num_edges());
  for (std::size_t i = 0; i < replayed.size(); ++i) {
    ASSERT_EQ(replayed[i], g.edge(i)) << "edge " << i;
  }
}

TEST_F(AdwShardsTest, TextConversionMatchesSingleFileConversion) {
  // Comments, CRLF, malformed lines, self-loops, no trailing newline — the
  // sharded converter must replay exactly what the single-file converter
  // (and the text parser) delivers, just split across shards.
  write_text("# header\n0 1\r\n5 5\nnot an edge\n\n2 3\n7 4\n1 6\n0 2");
  const AdwHeader single = edge_list_to_adw(text_path_, adw_path_);
  const AdwManifest manifest =
      edge_list_to_sharded_adw(text_path_, manifest_path_, 3);
  EXPECT_EQ(manifest.num_edges(), single.num_edges);
  EXPECT_EQ(manifest.max_vertex_id(), single.max_vertex_id);

  BinaryEdgeStream single_stream(adw_path_);
  EXPECT_EQ(drain_shards(manifest_path_, manifest), drain(single_stream));
}

TEST_F(AdwShardsTest, ReshardingAdwMatchesOriginal) {
  const Graph g = make_erdos_renyi(300, 5'000, 11);
  write_adw_file(adw_path_, g.edges());
  const AdwManifest manifest = adw_to_sharded_adw(adw_path_, manifest_path_, 5);
  EXPECT_EQ(manifest.num_edges(), g.num_edges());
  BinaryEdgeStream original(adw_path_);
  EXPECT_EQ(drain_shards(manifest_path_, manifest), drain(original));
}

TEST_F(AdwShardsTest, SelfLoopsDroppedBeforeChunking) {
  // Boundaries must be over the streamable (self-loop-free) sequence, so
  // shards stay balanced and every shard header is truthful.
  const std::vector<Edge> edges{{0, 1}, {7, 7}, {2, 3}, {4, 4}, {5, 6}, {1, 2}};
  const AdwManifest manifest = write_sharded_adw(manifest_path_, edges, 2);
  EXPECT_EQ(manifest.num_edges(), 4u);
  EXPECT_EQ(manifest.shards[0].num_edges, 2u);
  EXPECT_EQ(manifest.shards[1].num_edges, 2u);
  EXPECT_EQ(drain_shards(manifest_path_, manifest),
            (std::vector<Edge>{{0, 1}, {2, 3}, {5, 6}, {1, 2}}));
}

TEST_F(AdwShardsTest, MoreShardsThanEdges) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 3}};
  const AdwManifest manifest = write_sharded_adw(manifest_path_, edges, 8);
  EXPECT_EQ(manifest.num_shards(), 8u);
  EXPECT_EQ(manifest.num_edges(), 3u);
  // Trailing shards are valid empty .adw files.
  EXPECT_EQ(manifest.shards[7].num_edges, 0u);
  EXPECT_EQ(read_adw_header(adw_shard_path(manifest_path_, 7)).num_edges, 0u);
  EXPECT_EQ(drain_shards(manifest_path_, manifest), edges);
}

TEST_F(AdwShardsTest, EmptyGraph) {
  const AdwManifest manifest = write_sharded_adw(manifest_path_, {}, 2);
  EXPECT_EQ(manifest.num_edges(), 0u);
  EXPECT_EQ(manifest.max_vertex_id(), 0u);
  EXPECT_EQ(read_and_validate_adw_manifest(manifest_path_), manifest);
}

TEST_F(AdwShardsTest, ZeroShardCountRejected) {
  EXPECT_THROW((void)write_sharded_adw(manifest_path_,
                                       std::vector<Edge>{{0, 1}}, 0),
               std::runtime_error);
}

TEST_F(AdwShardsTest, SniffDetectsManifestVsAdwVsText) {
  write_sharded_adw(manifest_path_, std::vector<Edge>{{0, 1}}, 1);
  write_adw_file(adw_path_, std::vector<Edge>{{0, 1}});
  write_text("0 1\n");
  EXPECT_TRUE(is_adw_manifest(manifest_path_));
  EXPECT_FALSE(is_adw_manifest(adw_path_));
  EXPECT_FALSE(is_adw_manifest(text_path_));
  EXPECT_FALSE(is_adw_manifest(base_ + ".does_not_exist"));
  EXPECT_FALSE(is_adw_file(manifest_path_));
}

TEST_F(AdwShardsTest, TruncatedShardFailsValidation) {
  const Graph g = make_erdos_renyi(100, 2'000, 3);
  write_sharded_adw(manifest_path_, g.edges(), 4);
  // Chop bytes off one shard: the manifest alone still reads, but the
  // cross-check against the shard's exact-size .adw header must fail — a
  // short shard must never silently skew an instance's load.
  const std::string shard = adw_shard_path(manifest_path_, 2);
  std::string bytes = read_bytes(shard);
  bytes.resize(bytes.size() - 8);
  write_bytes(shard, bytes);
  EXPECT_NO_THROW((void)read_adw_manifest(manifest_path_));
  EXPECT_THROW((void)read_and_validate_adw_manifest(manifest_path_),
               std::runtime_error);
}

TEST_F(AdwShardsTest, MissingShardFailsValidation) {
  write_sharded_adw(manifest_path_, std::vector<Edge>{{0, 1}, {1, 2}}, 2);
  std::remove(adw_shard_path(manifest_path_, 1).c_str());
  EXPECT_THROW((void)read_and_validate_adw_manifest(manifest_path_),
               std::runtime_error);
}

TEST_F(AdwShardsTest, TamperedManifestEntryFailsValidation) {
  write_sharded_adw(manifest_path_,
                    std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}}, 2);
  // Shift an edge between the entries: totals stay consistent, so only the
  // per-shard cross-check can catch it.
  AdwManifest tampered = read_adw_manifest(manifest_path_);
  tampered.shards[0].num_edges -= 1;
  tampered.shards[1].num_edges += 1;
  write_adw_manifest(manifest_path_, tampered);
  EXPECT_NO_THROW((void)read_adw_manifest(manifest_path_));
  EXPECT_THROW((void)read_and_validate_adw_manifest(manifest_path_),
               std::runtime_error);
}

TEST_F(AdwShardsTest, CorruptManifestHeaderThrows) {
  write_sharded_adw(manifest_path_, std::vector<Edge>{{0, 1}}, 1);
  std::string bytes = read_bytes(manifest_path_);

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  write_bytes(manifest_path_, bad_magic);
  EXPECT_THROW((void)read_adw_manifest(manifest_path_), std::runtime_error);

  std::string bad_version = bytes;
  bad_version[4] = 9;
  write_bytes(manifest_path_, bad_version);
  EXPECT_THROW((void)read_adw_manifest(manifest_path_), std::runtime_error);

  // Truncated entry table (size check).
  std::string truncated = bytes;
  truncated.resize(truncated.size() - 1);
  write_bytes(manifest_path_, truncated);
  EXPECT_THROW((void)read_adw_manifest(manifest_path_), std::runtime_error);

  // Stored totals disagreeing with the entries.
  std::string bad_total = bytes;
  bad_total[16] = 9;  // num_edges total
  write_bytes(manifest_path_, bad_total);
  EXPECT_THROW((void)read_adw_manifest(manifest_path_), std::runtime_error);
}

TEST_F(AdwShardsTest, FailedConversionLeavesNoOutputs) {
  // An oversized vertex id fails the conversion mid-stream; no manifest and
  // no shard file may survive — a pipeline must not pick up half a graph.
  write_text("0 1\n2 3\n0 99999999999\n4 5\n");
  EXPECT_THROW(
      (void)edge_list_to_sharded_adw(text_path_, manifest_path_, 2),
      std::runtime_error);
  EXPECT_FALSE(std::ifstream(manifest_path_).good());
  for (std::uint32_t i = 0; i < 2; ++i) {
    EXPECT_FALSE(std::ifstream(adw_shard_path(manifest_path_, i)).good())
        << "shard " << i << " left behind";
  }
}

TEST_F(AdwShardsTest, BinaryInputsRejectedByTextConverters) {
  // A binary file fed to the text parser would have every line skipped as
  // malformed and be "converted" into a valid empty graph — both text
  // converters must refuse .adw and .adws inputs instead of silently
  // discarding the edges.
  write_adw_file(adw_path_, std::vector<Edge>{{0, 1}});
  EXPECT_THROW((void)edge_list_to_adw(adw_path_, base_ + ".out.adw"),
               std::runtime_error);
  EXPECT_THROW(
      (void)edge_list_to_sharded_adw(adw_path_, manifest_path_, 2),
      std::runtime_error);

  const std::string nested = base_ + ".in.adws";
  write_sharded_adw(nested, std::vector<Edge>{{0, 1}}, 1);
  EXPECT_THROW((void)edge_list_to_sharded_adw(nested, manifest_path_, 2),
               std::runtime_error);
  std::remove(adw_shard_path(nested, 0).c_str());
  std::remove(nested.c_str());
  std::remove((base_ + ".out.adw").c_str());
}

TEST_F(AdwShardsTest, MissingInputDoesNotClobberExistingOutputs) {
  write_sharded_adw(manifest_path_, std::vector<Edge>{{0, 1}}, 1);
  EXPECT_THROW((void)edge_list_to_sharded_adw(base_ + ".does_not_exist.txt",
                                              manifest_path_, 1),
               std::runtime_error);
  // Input-open failure happens before any output is touched.
  EXPECT_EQ(read_and_validate_adw_manifest(manifest_path_).num_edges(), 1u);
}

}  // namespace
}  // namespace adwise
