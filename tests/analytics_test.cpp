// Tests for the additional engine workloads: connected components, SSSP,
// triangle counting — each validated against a single-machine reference.
#include <gtest/gtest.h>

#include <set>

#include "src/apps/analytics.h"
#include "src/graph/generators.h"
#include "src/partition/registry.h"

namespace adwise {
namespace {

std::vector<Assignment> assign_with(const Graph& g, const char* algo,
                                    std::uint32_t k) {
  auto partitioner = make_baseline_partitioner(algo, k, 1);
  PartitionState st(k, g.num_vertices());
  VectorEdgeStream stream(g.edges());
  std::vector<Assignment> out;
  partitioner->partition(stream, st, [&](const Edge& e, PartitionId p) {
    out.push_back({e, p});
  });
  return out;
}

// --- Connected components ---------------------------------------------------------

TEST(ComponentsTest, SingleComponentGetsOneLabel) {
  const Graph g = make_cycle(40);
  std::vector<VertexId> labels;
  (void)run_connected_components(g, assign_with(g, "hash", 4), ClusterModel{},
                                 1000, &labels);
  for (const VertexId label : labels) EXPECT_EQ(label, 0u);
}

TEST(ComponentsTest, DisjointCliquesKeepDistinctLabels) {
  // Clique chain without bridges: build 4 disjoint cliques of 5.
  Graph g(20, {});
  for (VertexId c = 0; c < 4; ++c) {
    for (VertexId i = 0; i < 5; ++i) {
      for (VertexId j = i + 1; j < 5; ++j) {
        g.add_edge(c * 5 + i, c * 5 + j);
      }
    }
  }
  std::vector<VertexId> labels;
  (void)run_connected_components(g, assign_with(g, "hdrf", 4), ClusterModel{},
                                 1000, &labels);
  const auto expected = reference_components(g);
  EXPECT_EQ(labels, expected);
  const std::set<VertexId> distinct(labels.begin(), labels.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(ComponentsTest, MatchesReferenceOnRandomGraph) {
  const Graph g = make_erdos_renyi(400, 700, 12);  // sparse: many components
  std::vector<VertexId> labels;
  (void)run_connected_components(g, assign_with(g, "dbh", 8), ClusterModel{},
                                 1000, &labels);
  const auto expected = reference_components(g);
  const auto degrees = g.degrees();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (degrees[v] == 0) continue;  // isolated vertices are never activated
    EXPECT_EQ(labels[v], expected[v]) << "vertex " << v;
  }
}

TEST(ComponentsTest, LabelsInvariantToPartitioning) {
  const Graph g = make_community_graph({.num_communities = 15, .seed = 3});
  std::vector<VertexId> a, b;
  (void)run_connected_components(g, assign_with(g, "hash", 4), ClusterModel{},
                                 1000, &a);
  (void)run_connected_components(g, assign_with(g, "hdrf", 16),
                                 ClusterModel{}, 1000, &b);
  EXPECT_EQ(a, b);
}

// --- SSSP ------------------------------------------------------------------------

TEST(SsspTest, DistancesOnPath) {
  const Graph g = make_path(30);
  std::vector<std::uint32_t> dist;
  (void)run_sssp(g, assign_with(g, "hash", 4), ClusterModel{}, 0, &dist);
  for (VertexId v = 0; v < 30; ++v) EXPECT_EQ(dist[v], v);
}

TEST(SsspTest, MatchesBfsReference) {
  const Graph g = make_community_graph({.num_communities = 25, .seed = 9});
  std::vector<std::uint32_t> dist;
  (void)run_sssp(g, assign_with(g, "hdrf", 8), ClusterModel{}, 5, &dist);
  const auto expected = reference_sssp(g, 5);
  EXPECT_EQ(dist, expected);
}

TEST(SsspTest, UnreachableVerticesStayAtInfinity) {
  Graph g(6, {{0, 1}, {1, 2}, {4, 5}});
  std::vector<std::uint32_t> dist;
  (void)run_sssp(g, assign_with(g, "hash", 2), ClusterModel{}, 0, &dist);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[4], kUnreachable);
  EXPECT_EQ(dist[5], kUnreachable);
}

TEST(SsspTest, FrontierTrafficIsBounded) {
  const Graph g = make_grid(20, 20);
  const auto result =
      run_sssp(g, assign_with(g, "hash", 8), ClusterModel{}, 0);
  // BFS on a 20x20 grid needs ~38 wavefront supersteps, not the worst case.
  EXPECT_LE(result.total.supersteps, 45u);
  EXPECT_GT(result.total.seconds, 0.0);
}

// --- Triangle counting -------------------------------------------------------------

TEST(TriangleTest, CompleteGraph) {
  const Graph g = make_complete(10);  // C(10,3) = 120
  const auto result =
      run_triangle_count(g, assign_with(g, "hash", 4), ClusterModel{});
  EXPECT_EQ(result.triangles, 120u);
  EXPECT_EQ(reference_triangle_count(g), 120u);
}

TEST(TriangleTest, TriangleFreeGraphs) {
  for (const Graph& g : {make_grid(8, 8), make_star(40), make_path(40)}) {
    const auto result =
        run_triangle_count(g, assign_with(g, "hash", 4), ClusterModel{});
    EXPECT_EQ(result.triangles, 0u);
    EXPECT_EQ(reference_triangle_count(g), 0u);
  }
}

TEST(TriangleTest, CliqueChainHandCount) {
  // 5 cliques of 6 vertices: 5 * C(6,3) = 100 triangles; bridges add none.
  const Graph g = make_clique_chain(5, 6);
  const auto result =
      run_triangle_count(g, assign_with(g, "hdrf", 8), ClusterModel{});
  EXPECT_EQ(result.triangles, 100u);
}

TEST(TriangleTest, MatchesReferenceOnRandomGraph) {
  const Graph g = make_community_graph({.num_communities = 20, .seed = 17});
  const auto engine_count =
      run_triangle_count(g, assign_with(g, "dbh", 8), ClusterModel{});
  EXPECT_EQ(engine_count.triangles, reference_triangle_count(g));
}

TEST(TriangleTest, CountInvariantToPartitioning) {
  const Graph g = make_community_graph({.num_communities = 12, .seed = 8});
  const auto a =
      run_triangle_count(g, assign_with(g, "hash", 2), ClusterModel{});
  const auto b =
      run_triangle_count(g, assign_with(g, "hdrf", 32), ClusterModel{});
  EXPECT_EQ(a.triangles, b.triangles);
}

}  // namespace
}  // namespace adwise
