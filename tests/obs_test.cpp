// Observability layer: metrics registry semantics, concurrent counter
// updates from pool workers (run under TSan in CI), trace-JSON golden
// structure from a real instrumented run, Report-vs-registry name
// consistency, decision identity with a sink attached, and the
// progress-to-stderr purity of partition_file --progress-every.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/adwise_partitioner.h"
#include "src/graph/generators.h"
#include "src/io/adw_format.h"
#include "src/io/binary_stream.h"
#include "src/obs/metric_names.h"
#include "src/obs/metrics.h"
#include "src/obs/obs_sink.h"
#include "src/obs/trace.h"
#include "src/partition/checkpoint_run.h"

namespace adwise {
namespace {

TEST(ObsMetricsTest, RegistryBasics) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("test.counter");
  c.add();
  c.add(41);
  // Same name resolves to the same object: independent components sharing a
  // metric aggregate naturally.
  reg.counter("test.counter").add();
  reg.gauge("test.gauge").set(2.5);
  obs::Histogram& h = reg.histogram("test.hist");
  h.record(1);    // bucket 0
  h.record(9);    // bucket 3
  h.record(1000); // bucket 9

  const obs::MetricsSnapshot snap = reg.snapshot();
#if ADWISE_OBS_ENABLED
  EXPECT_DOUBLE_EQ(snap.value("test.counter"), 43.0);
  EXPECT_DOUBLE_EQ(snap.value("test.gauge"), 2.5);
  const obs::MetricEntry* hist = snap.find("test.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 3u);
  EXPECT_DOUBLE_EQ(hist->value, 1010.0);  // sum
  EXPECT_EQ(hist->buckets[0], 1u);
  EXPECT_EQ(hist->buckets[3], 1u);
  EXPECT_EQ(hist->buckets[9], 1u);
  EXPECT_DOUBLE_EQ(snap.value("missing", -1.0), -1.0);
#else
  EXPECT_TRUE(snap.entries.empty());
#endif
}

TEST(ObsMetricsTest, HistogramAddBucketFoldsPrebucketed) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("h");
  h.add_bucket(2, 7);
  h.add_bucket(obs::kHistBuckets + 100, 1);  // clamps into the last bucket
#if ADWISE_OBS_ENABLED
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.sum(), 0u);  // pre-bucketed samples have no value sum
  EXPECT_EQ(h.bucket(2), 7u);
  EXPECT_EQ(h.bucket(obs::kHistBuckets - 1), 1u);
#endif
}

TEST(ObsMetricsTest, WriteJsonIsFlatObject) {
  obs::MetricsRegistry reg;
  reg.counter("a").add(3);
  reg.gauge("b").set(1.5);
  reg.histogram("h").record(4);
  std::ostringstream out;
  reg.write_json(out);
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
#if ADWISE_OBS_ENABLED
  EXPECT_NE(json.find("\"a\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"b\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"h.count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"h.bucket2\": 1"), std::string::npos);
#endif
}

// Run under TSan in CI: pool workers hammer one counter and one histogram
// concurrently; totals are exact once the pool has quiesced.
TEST(ObsConcurrencyTest, ConcurrentCounterUpdatesFromPoolWorkers) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("concurrent.counter");
  obs::Histogram& h = reg.histogram("concurrent.hist");
  constexpr int kTasks = 64;
  constexpr int kAddsPerTask = 1000;
  ThreadPool pool(4);
  for (int t = 0; t < kTasks; ++t) {
    pool.submit([&c, &h] {
      for (int i = 0; i < kAddsPerTask; ++i) {
        c.add();
        h.record(static_cast<std::uint64_t>(i));
      }
    });
  }
  pool.wait_idle();
#if ADWISE_OBS_ENABLED
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kTasks) * kAddsPerTask);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kTasks) * kAddsPerTask);
#endif
}

// Concurrent span recording on distinct tracks must be race-free (TSan) and
// keep every track's B/E pairs balanced.
TEST(ObsConcurrencyTest, ConcurrentSpansFromPoolWorkers) {
  obs::TraceSession session;
  ThreadPool pool(4);
  for (int t = 0; t < 32; ++t) {
    pool.submit([&session] {
      session.name_current_thread("worker");
      for (int i = 0; i < 50; ++i) {
        obs::TraceSpan span(&session, "task");
      }
    });
  }
  pool.wait_idle();
  std::ostringstream out;
  session.write_json(out);
  EXPECT_NE(out.str().find("traceEvents"), std::string::npos);
}

struct ParsedEvent {
  std::string name;
  char ph = '?';
  int tid = -1;
  double ts = 0.0;
};

// Line-wise parse of the one-event-per-line trace JSON (the format contract
// the writer maintains precisely so tests and greps stay this simple).
std::vector<ParsedEvent> parse_trace(const std::string& json) {
  std::vector<ParsedEvent> events;
  std::istringstream in(json);
  std::string line;
  const auto field = [](const std::string& s, const std::string& key) {
    const std::size_t pos = s.find(key);
    EXPECT_NE(pos, std::string::npos) << key << " missing in: " << s;
    return pos == std::string::npos ? std::string{}
                                    : s.substr(pos + key.size());
  };
  while (std::getline(in, line)) {
    if (line.rfind("{\"name\":\"", 0) != 0) continue;
    ParsedEvent e;
    const std::string name_rest = field(line, "{\"name\":\"");
    e.name = name_rest.substr(0, name_rest.find('"'));
    const std::string ph_rest = field(line, "\"ph\":\"");
    e.ph = ph_rest.empty() ? '?' : ph_rest[0];
    if (e.ph == 'M') continue;  // thread_name metadata
    e.tid = std::atoi(field(line, "\"tid\":").c_str());
    e.ts = std::atof(field(line, "\"ts\":").c_str());
    events.push_back(std::move(e));
  }
  return events;
}

// Golden structure from a real instrumented run: a checkpointed adwise pass
// over a prefetching BinaryEdgeStream, everything wired to one sink. The
// trace must parse, stay monotone per track, balance every B/E pair, and
// contain the spans the acceptance criteria name.
TEST(ObsTraceTest, GoldenStructureFromInstrumentedRun) {
  const Graph graph = make_rmat({.scale = 10, .num_edges = 20'000, .seed = 5});
  const std::string adw_path = "obs_trace_test.adw";
  const std::string ckpt_path = "obs_trace_test.adwk";
  write_adw_file(adw_path, graph.edges());

  obs::MetricsRegistry registry;
  obs::TraceSession session;
  obs::ObsSink sink;
  sink.metrics = &registry;
  sink.trace = &session;

  std::uint64_t progress_calls = 0;
  sink.progress_every = 4096;
  sink.on_progress = [&](const obs::ProgressSample& sample) {
    ++progress_calls;
    EXPECT_GT(sample.edges_assigned, 0u);
    EXPECT_GE(sample.window_target, sample.window_size);
  };

  AdwiseOptions options;
  options.obs = &sink;
  AdwisePartitioner partitioner(options);
  PartitionState state(8, graph.num_vertices());
  BinaryEdgeStream::Options sopts;
  sopts.obs = &sink;
  BinaryEdgeStream stream(adw_path, sopts);

  CheckpointRunOptions copts;
  copts.checkpoint_path = ckpt_path;
  copts.every = 4096;
  copts.async_io = true;
  copts.obs = &sink;
  run_with_checkpoints(partitioner, stream, state, {}, copts);

  std::ostringstream out;
  session.write_json(out);
  const std::string json = out.str();
  std::remove(adw_path.c_str());
  std::remove(ckpt_path.c_str());

#if !ADWISE_OBS_ENABLED
  GTEST_SKIP() << "observability compiled out (ADWISE_OBS=OFF)";
#else
  EXPECT_GT(progress_calls, 0u);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);

  const std::vector<ParsedEvent> events = parse_trace(json);
  ASSERT_FALSE(events.empty());

  std::map<int, std::vector<std::string>> stacks;
  std::map<int, double> last_ts;
  std::map<std::string, int> completed;
  for (const ParsedEvent& e : events) {
    auto it = last_ts.find(e.tid);
    if (it != last_ts.end()) {
      EXPECT_GE(e.ts, it->second) << "non-monotone ts on tid " << e.tid;
    }
    last_ts[e.tid] = e.ts;
    auto& stack = stacks[e.tid];
    if (e.ph == 'B') {
      stack.push_back(e.name);
    } else {
      ASSERT_EQ(e.ph, 'E');
      ASSERT_FALSE(stack.empty()) << "E without B on tid " << e.tid;
      EXPECT_EQ(stack.back(), e.name);
      stack.pop_back();
      ++completed[e.name];
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
  EXPECT_GT(completed[std::string(obs::names::kSpanPrefetchFill)], 0);
  EXPECT_GT(completed[std::string(obs::names::kSpanCheckpointSnapshot)], 0);
  EXPECT_GT(completed[std::string(obs::names::kSpanCheckpointWrite)], 0);
  // Consumer, prefetch worker and checkpoint writer are distinct tracks.
  EXPECT_GE(last_ts.size(), 3u);

  // The registry saw the same run: stream and checkpoint counters landed.
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_GT(snap.value(obs::names::kStreamBytesRead), 0.0);
  EXPECT_GT(snap.value(obs::names::kCkptCommits), 0.0);
  EXPECT_DOUBLE_EQ(snap.value(obs::names::kAdwiseAssignments),
                   static_cast<double>(graph.num_edges()));
#endif
}

// The track cap must suppress whole spans — balanced pairs survive
// truncation and dropped() reports the loss.
TEST(ObsTraceTest, CapSuppressesWholeSpans) {
  obs::TraceSession session(/*max_events_per_track=*/4);
  for (int i = 0; i < 10; ++i) {
    obs::TraceSpan span(&session, "s");
  }
  std::ostringstream out;
  session.write_json(out);
#if ADWISE_OBS_ENABLED
  EXPECT_GT(session.dropped(), 0u);
  const std::vector<ParsedEvent> events = parse_trace(out.str());
  int depth = 0;
  for (const ParsedEvent& e : events) {
    depth += e.ph == 'B' ? 1 : -1;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
#endif
}

// Report::publish and the registry must agree on names: whatever merge_from
// accumulates is exactly what lands in the snapshot under metric_names.h.
TEST(ObsReportTest, PublishMatchesReportCounters) {
  AdwisePartitioner::Report report;
  report.assignments = 7;
  report.score_computations = 11;
  report.heap_pops = 13;
  report.max_window = 64;
  report.seconds = 1.5;
  report.batch_size_hist[0] = 3;
  report.batch_size_hist[5] = 2;

  obs::MetricsRegistry reg;
  report.publish(reg);
#if ADWISE_OBS_ENABLED
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.value(obs::names::kAdwiseAssignments), 7.0);
  EXPECT_DOUBLE_EQ(snap.value(obs::names::kAdwiseScoreComputations), 11.0);
  EXPECT_DOUBLE_EQ(snap.value(obs::names::kAdwiseHeapPops), 13.0);
  EXPECT_DOUBLE_EQ(snap.value(obs::names::kAdwiseMaxWindow), 64.0);
  EXPECT_DOUBLE_EQ(snap.value(obs::names::kAdwiseSeconds), 1.5);
  const obs::MetricEntry* hist = snap.find(obs::names::kAdwiseBatchSizeHist);
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 5u);
  EXPECT_EQ(hist->buckets[0], 3u);
  EXPECT_EQ(hist->buckets[5], 2u);
  // Publishing twice aggregates, mirroring Report::merge_from over
  // spotlight instances.
  report.publish(reg);
  EXPECT_DOUBLE_EQ(reg.snapshot().value(obs::names::kAdwiseAssignments), 14.0);
#endif
}

// The sink must be strictly read-only with respect to decisions: identical
// placements with and without full instrumentation attached.
TEST(ObsIdentityTest, SinkDoesNotChangeDecisions) {
  const Graph graph = make_rmat({.scale = 9, .num_edges = 8'000, .seed = 11});

  const auto run = [&](obs::ObsSink* sink) {
    AdwiseOptions options;
    options.obs = sink;
    AdwisePartitioner partitioner(options);
    PartitionState state(8, graph.num_vertices());
    VectorEdgeStream stream(graph.edges());
    std::vector<PartitionId> placements;
    partitioner.partition(stream, state,
                          [&](const Edge&, PartitionId p) {
                            placements.push_back(p);
                          });
    return placements;
  };

  obs::MetricsRegistry registry;
  obs::TraceSession session;
  obs::ObsSink sink;
  sink.metrics = &registry;
  sink.trace = &session;
  EXPECT_EQ(run(nullptr), run(&sink));
}

#ifdef ADWISE_PARTITION_FILE_BIN

std::string read_file_or_empty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

// --progress-every must never leak into the assignment stream: stdout is
// byte-identical with and without the flag; the progress lines go to
// stderr only.
TEST(ObsProgressTest, ProgressKeepsStdoutByteIdentical) {
  const Graph graph = make_rmat({.scale = 9, .num_edges = 6'000, .seed = 3});
  const std::string graph_path = "obs_progress_test.txt";
  {
    std::ofstream out(graph_path);
    for (const Edge& e : graph.edges()) out << e.u << ' ' << e.v << '\n';
  }
  const std::string bin = ADWISE_PARTITION_FILE_BIN;
  const auto run = [&](const std::string& extra, const std::string& tag) {
    const std::string out_path = "obs_progress_out_" + tag + ".txt";
    const std::string err_path = "obs_progress_err_" + tag + ".txt";
    const std::string cmd = bin + " " + graph_path + " adwise 8 -1 " + extra +
                            " > " + out_path + " 2> " + err_path;
    EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
    return std::make_pair(read_file_or_empty(out_path),
                          read_file_or_empty(err_path));
  };

  const auto [plain_out, plain_err] = run("", "plain");
  const auto [prog_out, prog_err] = run("--progress-every 500", "progress");
  std::remove(graph_path.c_str());
  for (const char* tag : {"plain", "progress"}) {
    std::remove(("obs_progress_out_" + std::string(tag) + ".txt").c_str());
    std::remove(("obs_progress_err_" + std::string(tag) + ".txt").c_str());
  }

  ASSERT_FALSE(plain_out.empty());
  EXPECT_EQ(plain_out, prog_out);
  EXPECT_EQ(plain_out.find("progress:"), std::string::npos);
  EXPECT_NE(prog_err.find("progress:"), std::string::npos);
  EXPECT_EQ(plain_err.find("progress:"), std::string::npos);
}

#else

TEST(ObsProgressTest, RequiresPartitionFileBinary) {
  GTEST_SKIP() << "partition_file binary not built into this configuration";
}

#endif  // ADWISE_PARTITION_FILE_BIN

}  // namespace
}  // namespace adwise
