// Tests for iterative vertex-cut refinement and the 1D baseline.
#include <gtest/gtest.h>

#include "src/graph/edge_stream.h"
#include "src/graph/generators.h"
#include "src/partition/onedim_partitioner.h"
#include "src/partition/refine.h"
#include "src/partition/registry.h"

namespace adwise {
namespace {

std::vector<Assignment> assign_with(const Graph& g, const char* algo,
                                    std::uint32_t k,
                                    StreamOrder order = StreamOrder::kNatural) {
  auto partitioner = make_baseline_partitioner(algo, k, 1);
  PartitionState st(k, g.num_vertices());
  const auto edges = ordered_edges(g, order, 5);
  VectorEdgeStream stream(edges);
  std::vector<Assignment> out;
  partitioner->partition(stream, st, [&](const Edge& e, PartitionId p) {
    out.push_back({e, p});
  });
  return out;
}

double replication_of(std::span<const Assignment> assignments, std::uint32_t k,
                      VertexId n) {
  PartitionState st(k, n);
  for (const Assignment& a : assignments) st.assign(a.edge, a.partition);
  return st.replication_degree();
}

// --- refine_partition ---------------------------------------------------------

TEST(RefineTest, PreservesEdgeMultiset) {
  const Graph g = make_community_graph({.num_communities = 30, .seed = 3});
  const auto initial = assign_with(g, "hash", 8);
  const auto refined =
      refine_partition(initial, 8, g.num_vertices(), {.max_rounds = 2});
  ASSERT_EQ(refined.assignments.size(), initial.size());
  for (std::size_t i = 0; i < initial.size(); ++i) {
    EXPECT_EQ(refined.assignments[i].edge, initial[i].edge);
    EXPECT_LT(refined.assignments[i].partition, 8u);
  }
}

TEST(RefineTest, NeverIncreasesReplication) {
  const Graph g = make_community_graph({.num_communities = 50, .seed = 9});
  for (const char* algo : {"hash", "dbh", "hdrf"}) {
    const auto initial = assign_with(g, algo, 16);
    const double before = replication_of(initial, 16, g.num_vertices());
    const auto refined = refine_partition(initial, 16, g.num_vertices());
    EXPECT_LE(refined.state.replication_degree(), before) << algo;
  }
}

TEST(RefineTest, SubstantialGainOnHashPartitioning) {
  // Hash partitioning of a clustered graph leaves huge slack; hill climbing
  // must recover a large chunk of it.
  const Graph g = make_community_graph({.num_communities = 60, .seed = 4});
  const auto initial = assign_with(g, "hash", 8);
  const double before = replication_of(initial, 8, g.num_vertices());
  const auto refined = refine_partition(initial, 8, g.num_vertices(),
                                        {.max_rounds = 5});
  EXPECT_LT(refined.state.replication_degree(), before * 0.8);
  EXPECT_GT(refined.moves, 0u);
}

TEST(RefineTest, RespectsBalanceCap) {
  const Graph g = make_community_graph({.num_communities = 40, .seed = 7});
  const auto initial = assign_with(g, "hash", 8);
  RefineOptions options;
  options.balance_slack = 0.05;
  const auto refined = refine_partition(initial, 8, g.num_vertices(), options);
  const std::uint64_t cap = static_cast<std::uint64_t>(
      static_cast<double>((g.num_edges() + 7) / 8) * 1.05);
  for (PartitionId p = 0; p < 8; ++p) {
    EXPECT_LE(refined.state.edges_on(p), cap);
  }
}

TEST(RefineTest, AlreadyOptimalStaysPut) {
  // A path assigned entirely to one partition has replication 1.0 (optimal);
  // refinement must not move anything (every move would add replicas).
  const Graph g = make_path(100);
  std::vector<Assignment> initial;
  for (const Edge& e : g.edges()) initial.push_back({e, 0});
  RefineOptions options;
  options.balance_slack = 100.0;  // remove the balance pressure
  const auto refined = refine_partition(initial, 4, g.num_vertices(), options);
  EXPECT_EQ(refined.moves, 0u);
  EXPECT_DOUBLE_EQ(refined.state.replication_degree(), 1.0);
}

TEST(RefineTest, EmptyInput) {
  const auto refined = refine_partition({}, 4, 10);
  EXPECT_TRUE(refined.assignments.empty());
  EXPECT_EQ(refined.moves, 0u);
}

TEST(RefineTest, StopsEarlyWhenConverged) {
  const Graph g = make_community_graph({.num_communities = 20, .seed = 2});
  const auto initial = assign_with(g, "hdrf", 8);
  RefineOptions options;
  options.max_rounds = 50;
  const auto refined = refine_partition(initial, 8, g.num_vertices(), options);
  EXPECT_LT(refined.rounds, 50u);  // min_move_fraction kicks in
}

// --- 1D partitioner -------------------------------------------------------------

TEST(OneDimTest, SourceSideNeverReplicates) {
  // Directed star edges all share source 0: every edge lands on the same
  // partition, so even the hub keeps one replica.
  const Graph g = make_star(100);  // edges (0, i)
  OneDimPartitioner onedim;
  PartitionState st(8, g.num_vertices());
  VectorEdgeStream stream(g.edges());
  onedim.partition(stream, st);
  EXPECT_EQ(st.replicas(0).size(), 1u);
  EXPECT_DOUBLE_EQ(st.replication_degree(), 1.0);
}

TEST(OneDimTest, RegisteredInRegistry) {
  const auto partitioner = make_baseline_partitioner("1d", 8);
  ASSERT_NE(partitioner, nullptr);
  EXPECT_EQ(partitioner->name(), "1d");
}

TEST(OneDimTest, DeterministicPlacement) {
  OneDimPartitioner a(5);
  OneDimPartitioner b(5);
  PartitionState st(8, 50);
  for (VertexId u = 0; u < 20; ++u) {
    EXPECT_EQ(a.place({u, u + 1}, st), b.place({u, u + 1}, st));
  }
}

}  // namespace
}  // namespace adwise
