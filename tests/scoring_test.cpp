// Tests for the ADWISE scoring function: Eq. 3 (balance), Eq. 4 (adaptive
// lambda), Eq. 5 (degree-aware replication), Eq. 6 (clustering), Eq. 7 (sum).
#include <gtest/gtest.h>

#include "src/core/scoring.h"

namespace adwise {
namespace {

AdwiseOptions base_options() {
  AdwiseOptions opts;
  opts.adaptive_balance = false;  // isolate terms unless a test enables it
  opts.lambda_init = 1.0;
  return opts;
}

TEST(ScoringTest, EmptyStatePrefersAnyPartitionViaBalance) {
  PartitionState st(4, 10);
  AdwiseScorer scorer(st, base_options(), 100);
  const auto placed = scorer.best_placement({0, 1}, nullptr, EdgeWindow::npos);
  EXPECT_LT(placed.partition, 4u);
  // All partitions empty: balance score is 0/eps-denominator = 0 everywhere.
  EXPECT_DOUBLE_EQ(placed.score, 0.0);
}

TEST(ScoringTest, ReplicationScoreDominatesForKnownVertices) {
  PartitionState st(4, 10);
  st.assign({0, 5}, 3);
  AdwiseScorer scorer(st, base_options(), 100);
  const auto placed = scorer.best_placement({0, 1}, nullptr, EdgeWindow::npos);
  EXPECT_EQ(placed.partition, 3u);
  EXPECT_GT(placed.score, 1.0);  // replica weight in [1.5, 2]
}

TEST(ScoringTest, BothEndpointsKnownBeatsOne) {
  PartitionState st(4, 10);
  st.assign({0, 5}, 1);  // u on p1
  st.assign({1, 6}, 1);  // v on p1
  st.assign({2, 7}, 2);  // other vertex on p2
  AdwiseScorer scorer(st, base_options(), 100);
  const double g_p1 = scorer.score({0, 1}, 1, nullptr, EdgeWindow::npos);
  const double g_p2 = scorer.score({0, 2}, 2, nullptr, EdgeWindow::npos);
  EXPECT_GT(g_p1, g_p2);
}

TEST(ScoringTest, DegreeWeightingPrefersReplicatingHighDegree) {
  // Eq. 5: the replica weight (2 - Ψ) is LOWER for high-degree vertices, so
  // an edge whose low-degree endpoint is already placed scores higher than
  // an edge whose equally-placed endpoint has high degree — keeping
  // low-degree vertices local and cutting through hubs.
  PartitionState st(4, 20);
  st.assign({0, 10}, 1);  // vertex 0: will become high degree
  st.assign({0, 11}, 1);
  st.assign({0, 12}, 1);
  st.assign({0, 13}, 1);
  st.assign({5, 14}, 2);  // vertex 5: degree 1, replicated on p2
  AdwiseScorer scorer(st, base_options(), 100);
  const double g_high = scorer.score({0, 9}, 1, nullptr, EdgeWindow::npos);
  const double g_low = scorer.score({5, 9}, 2, nullptr, EdgeWindow::npos);
  EXPECT_GT(g_low, g_high);
}

TEST(ScoringTest, DegreeWeightingOffGivesIndicatorScore) {
  AdwiseOptions opts = base_options();
  opts.degree_weighting = false;
  PartitionState st(4, 20);
  st.assign({0, 10}, 1);
  st.assign({0, 11}, 1);
  st.assign({5, 14}, 2);
  AdwiseScorer scorer(st, opts, 100);
  // Without Ψ both replicated endpoints contribute exactly 1.0; only the
  // balance term differs between the two placements.
  const double g_high = scorer.score({0, 9}, 1, nullptr, EdgeWindow::npos);
  const double g_low = scorer.score({5, 9}, 2, nullptr, EdgeWindow::npos);
  // p1 holds 2 edges, p2 holds 1 -> p2 has the better balance score.
  EXPECT_GT(g_low, g_high);
  EXPECT_NEAR(g_high + (g_low - g_high), g_low, 1e-12);
}

TEST(ScoringTest, BalanceScorePenalizesLoadedPartitions) {
  PartitionState st(2, 10);
  st.assign({0, 1}, 0);
  st.assign({1, 2}, 0);
  st.assign({2, 3}, 0);
  AdwiseScorer scorer(st, base_options(), 100);
  // Unknown vertices: pure balance decision -> partition 1.
  const auto placed = scorer.best_placement({7, 8}, nullptr, EdgeWindow::npos);
  EXPECT_EQ(placed.partition, 1u);
}

TEST(ScoringTest, ClusteringScoreFigureSixExample) {
  // Fig. 6: u replicated on p1 and p2; three window-neighbors on p1, one on
  // p2 -> the clustering score must tip the decision to p1.
  PartitionState st(2, 20);
  const VertexId u = 10;
  st.assign({u, 15}, 0);  // u on p1 (partition 0)
  st.assign({u, 16}, 1);  // u on p2 (partition 1)
  // Neighbors u1,u2,u3 on p1; u4 on p2.
  st.assign({1, 17}, 0);
  st.assign({2, 17}, 0);
  st.assign({3, 18}, 0);
  st.assign({4, 18}, 1);
  // Keep both partitions balanced (4 edges each) so only CS differs.
  st.assign({19, 18}, 1);
  st.assign({19, 17}, 1);

  EdgeWindow window(20);
  const auto slot_e = window.insert({u, 11});  // the edge (u, v) to place
  window.insert({u, 1});
  window.insert({u, 2});
  window.insert({u, 3});
  window.insert({u, 4});

  AdwiseScorer scorer(st, base_options(), 100);
  const double g_p1 = scorer.score({u, 11}, 0, &window, slot_e);
  const double g_p2 = scorer.score({u, 11}, 1, &window, slot_e);
  EXPECT_GT(g_p1, g_p2);
  // CS(p1) = 3/4, CS(p2) = 1/4; replication identical; balance identical.
  EXPECT_NEAR(g_p1 - g_p2, 0.5, 1e-9);
}

TEST(ScoringTest, ClusteringScoreDisabledIsZero) {
  AdwiseOptions opts = base_options();
  opts.clustering_score = false;
  PartitionState st(2, 20);
  st.assign({1, 5}, 0);
  EdgeWindow window(20);
  const auto slot_e = window.insert({0, 2});
  window.insert({0, 1});  // neighbor 1 is replicated on p0
  AdwiseScorer with_cs(st, base_options(), 100);
  AdwiseScorer without_cs(st, opts, 100);
  const double g_with = with_cs.score({0, 2}, 0, &window, slot_e);
  const double g_without = without_cs.score({0, 2}, 0, &window, slot_e);
  EXPECT_GT(g_with, g_without);
  EXPECT_NEAR(g_with - g_without, 1.0, 1e-9);  // CS = 1/1
}

TEST(ScoringTest, NullWindowDisablesClustering) {
  PartitionState st(2, 20);
  st.assign({1, 5}, 0);
  AdwiseScorer scorer(st, base_options(), 100);
  const double g = scorer.score({0, 2}, 0, nullptr, EdgeWindow::npos);
  EXPECT_DOUBLE_EQ(g, 0.0);  // no replicas of 0 or 2 on p0, no CS
}

// --- Adaptive lambda (Eq. 4) ---------------------------------------------------

TEST(ScoringTest, LambdaStartsAtInit) {
  PartitionState st(2, 10);
  AdwiseOptions opts = base_options();
  opts.adaptive_balance = true;
  opts.lambda_init = 1.3;
  AdwiseScorer scorer(st, opts, 100);
  EXPECT_DOUBLE_EQ(scorer.lambda(), 1.3);
}

TEST(ScoringTest, LambdaDecreasesWhileToleranceIsHigh) {
  // Early in the stream tolerance(α) ≈ 1 while ι is small: λ must sink.
  PartitionState st(2, 100);
  AdwiseOptions opts = base_options();
  opts.adaptive_balance = true;
  AdwiseScorer scorer(st, opts, 1000);
  st.assign({0, 1}, 0);
  st.assign({1, 2}, 1);
  scorer.on_assignment();
  EXPECT_LT(scorer.lambda(), 1.0);
}

TEST(ScoringTest, LambdaClampedToConfiguredInterval) {
  PartitionState st(2, 100);
  AdwiseOptions opts = base_options();
  opts.adaptive_balance = true;
  AdwiseScorer scorer(st, opts, 10);
  // Perfectly balanced, stream nearly done -> tolerance ~ 0, iota ~ 0:
  // lambda stays put; drive to extremes with many repetitions instead.
  for (int i = 0; i < 50; ++i) scorer.on_assignment();
  EXPECT_GE(scorer.lambda(), opts.lambda_min);
  EXPECT_LE(scorer.lambda(), opts.lambda_max);
}

TEST(ScoringTest, LambdaGrowsUnderLateImbalance) {
  PartitionState st(2, 100);
  AdwiseOptions opts = base_options();
  opts.adaptive_balance = true;
  AdwiseScorer scorer(st, opts, 10);
  // Assign everything to one partition: ι -> 1 while α -> 1.
  for (VertexId i = 0; i < 9; ++i) {
    st.assign({i, i + 1}, 0);
    scorer.on_assignment();
  }
  EXPECT_GT(scorer.lambda(), 1.0);
}

TEST(ScoringTest, AdaptiveBalanceOffKeepsLambdaFixed) {
  PartitionState st(2, 10);
  AdwiseOptions opts = base_options();
  ASSERT_FALSE(opts.adaptive_balance);
  AdwiseScorer scorer(st, opts, 10);
  for (VertexId i = 0; i < 8; ++i) {
    st.assign({i, i + 1}, 0);
    scorer.on_assignment();
  }
  EXPECT_DOUBLE_EQ(scorer.lambda(), 1.0);
}

TEST(ScoringTest, ReplicaWeightStaysInPaperRange) {
  // Eq. 5: with Ψ = deg/(2·maxDegree) ∈ (0, 0.5], the replica weight
  // (2 − Ψ) must stay within [1.5, 2) for every degree mix.
  PartitionState st(2, 50);
  AdwiseOptions opts = base_options();
  AdwiseScorer scorer(st, opts, 1000);
  st.assign({0, 1}, 0);
  for (VertexId i = 2; i < 40; ++i) st.assign({0, i}, 0);  // 0 is a hub
  const double g_hub = scorer.score({0, 45}, 0, nullptr, EdgeWindow::npos);
  const double g_leaf = scorer.score({1, 45}, 0, nullptr, EdgeWindow::npos);
  // Only the replica term differs (same partition, same balance, no CS).
  const double bal = scorer.score({46, 47}, 0, nullptr, EdgeWindow::npos);
  EXPECT_GE(g_hub - bal, 1.5);
  EXPECT_LT(g_hub - bal, 2.0);
  EXPECT_GE(g_leaf - bal, 1.5);
  EXPECT_LT(g_leaf - bal, 2.0);
  EXPECT_GT(g_leaf, g_hub);  // low-degree endpoint scores higher
}

TEST(ScoringTest, ClusteringNeighborCapBoundsWork) {
  AdwiseOptions opts = base_options();
  opts.clustering_neighbor_cap = 4;
  PartitionState st(2, 200);
  for (VertexId i = 2; i < 100; ++i) st.assign({i, 101}, 0);
  EdgeWindow window(200);
  const auto slot_e = window.insert({0, 1});
  for (VertexId i = 2; i < 100; ++i) window.insert({0, i});
  AdwiseScorer scorer(st, opts, 1000);
  // CS is normalized by |N|, so the cap keeps the term within [0, 1]
  // regardless of how many window edges touch the hub.
  const double g = scorer.score({0, 1}, 0, &window, slot_e);
  EXPECT_LE(g, 1.0 + 1e-9);  // no replicas of 0/1 on p0: pure CS + balance 0
  EXPECT_GE(g, 0.0);
}

// --- Per-call dense/sparse crossover (ScoringPath::kAuto) ----------------------

// kAuto switches to the dense O(k) scan exactly when the candidate-set size
// bound |R_u| + |R_v| + |touched| reaches k: this pins the crossover at
// k = 32 by growing the endpoint replica sets one partition at a time
// across the boundary. The decision is observable through the per-path
// placement counters (both paths return identical placements).
TEST(ScoringPathTest, AutoCrossoverPinnedAtK32) {
  constexpr std::uint32_t k = 32;
  PartitionState st(k, 300);
  // |R_u| = 16 for vertex 0, |R_v| = 15 for vertex 1: bound 31 < 32.
  for (std::uint32_t p = 0; p < 16; ++p) {
    st.assign({0, 100 + p}, p);
  }
  for (std::uint32_t p = 0; p < 15; ++p) {
    st.assign({1, 150 + p}, p);
  }
  AdwiseOptions opts = base_options();
  ASSERT_EQ(opts.scoring_path, ScoringPath::kAuto);
  AdwiseScorer scorer(st, opts, 100);

  (void)scorer.best_placement({0, 1}, nullptr, EdgeWindow::npos);
  EXPECT_EQ(scorer.sparse_placements(), 1u);  // bound 31: sparse walk
  EXPECT_EQ(scorer.dense_placements(), 0u);

  st.assign({1, 180}, 15);  // |R_v| -> 16: bound 32 >= k
  const auto via_auto =
      scorer.best_placement({0, 1}, nullptr, EdgeWindow::npos);
  EXPECT_EQ(scorer.sparse_placements(), 1u);
  EXPECT_EQ(scorer.dense_placements(), 1u);  // crossover: dense scan

  // Both pinned paths agree with the auto decision bit-for-bit.
  AdwiseOptions sparse_opts = base_options();
  sparse_opts.scoring_path = ScoringPath::kSparse;
  AdwiseScorer sparse_scorer(st, sparse_opts, 100);
  AdwiseOptions dense_opts = base_options();
  dense_opts.scoring_path = ScoringPath::kDense;
  AdwiseScorer dense_scorer(st, dense_opts, 100);
  const auto via_sparse =
      sparse_scorer.best_placement({0, 1}, nullptr, EdgeWindow::npos);
  const auto via_dense =
      dense_scorer.best_placement({0, 1}, nullptr, EdgeWindow::npos);
  EXPECT_EQ(via_auto.partition, via_dense.partition);
  EXPECT_EQ(via_sparse.partition, via_dense.partition);
  EXPECT_DOUBLE_EQ(via_auto.score, via_dense.score);
  EXPECT_DOUBLE_EQ(via_sparse.score, via_dense.score);
}

TEST(ScoringPathTest, SelfLoopCountsOneEndpointInCrossoverBound) {
  constexpr std::uint32_t k = 8;
  PartitionState st(k, 300);
  for (std::uint32_t p = 0; p < k; ++p) {
    st.assign({0, 100 + p}, p);  // |R_0| = 8 = k
  }
  AdwiseScorer scorer(st, base_options(), 100);
  (void)scorer.best_placement({0, 0}, nullptr, EdgeWindow::npos);
  // Self-loop: bound counts R_u once, 8 >= k -> dense.
  EXPECT_EQ(scorer.dense_placements(), 1u);
}

// --- Snapshot overload ----------------------------------------------------------

TEST(ScoringTest, SnapshotOverloadMatchesLiveScoring) {
  PartitionState st(4, 20);
  st.assign({0, 5}, 3);
  st.assign({1, 6}, 2);
  AdwiseScorer scorer(st, base_options(), 100);
  const PartitionSnapshot snap = st.snapshot();
  ScoreScratch scratch(st.k());
  const auto live = scorer.best_placement({0, 1}, nullptr, EdgeWindow::npos);
  const auto frozen = scorer.best_placement({0, 1}, nullptr, EdgeWindow::npos,
                                            snap, scratch);
  EXPECT_EQ(frozen.partition, live.partition);
  EXPECT_DOUBLE_EQ(frozen.score, live.score);
  EXPECT_DOUBLE_EQ(frozen.structural, live.structural);
}

TEST(ScoringTest, BestPlacementTieBreaksToLeastLoaded) {
  PartitionState st(3, 10);
  st.assign({8, 9}, 0);
  st.assign({8, 9}, 0);  // load p0 twice
  st.assign({7, 9}, 1);  // p1 has one edge
  AdwiseScorer scorer(st, base_options(), 100);
  // Unknown endpoints: pure balance; p2 (empty) must win.
  const auto placed = scorer.best_placement({3, 4}, nullptr, EdgeWindow::npos);
  EXPECT_EQ(placed.partition, 2u);
}

}  // namespace
}  // namespace adwise
