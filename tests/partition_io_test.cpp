// Tests for binary assignment persistence and the window-trace report.
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/adwise_partitioner.h"
#include "src/graph/generators.h"
#include "src/partition/partition_io.h"
#include "src/partition/registry.h"

namespace adwise {
namespace {

std::vector<Assignment> sample_assignments(const Graph& g, std::uint32_t k) {
  auto partitioner = make_baseline_partitioner("hdrf", k, 1);
  PartitionState st(k, g.num_vertices());
  VectorEdgeStream stream(g.edges());
  std::vector<Assignment> out;
  partitioner->partition(stream, st, [&](const Edge& e, PartitionId p) {
    out.push_back({e, p});
  });
  return out;
}

TEST(PartitionIoTest, RoundTrip) {
  const Graph g = make_community_graph({.num_communities = 20, .seed = 3});
  const auto assignments = sample_assignments(g, 8);
  std::stringstream buffer;
  write_assignments(buffer, assignments, 8);
  const AssignmentFile loaded = read_assignments(buffer);
  EXPECT_EQ(loaded.k, 8u);
  ASSERT_EQ(loaded.assignments.size(), assignments.size());
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    EXPECT_EQ(loaded.assignments[i], assignments[i]);
  }
}

TEST(PartitionIoTest, EmptyAssignmentsRoundTrip) {
  std::stringstream buffer;
  write_assignments(buffer, {}, 4);
  const AssignmentFile loaded = read_assignments(buffer);
  EXPECT_EQ(loaded.k, 4u);
  EXPECT_TRUE(loaded.assignments.empty());
}

TEST(PartitionIoTest, RejectsBadMagic) {
  std::stringstream buffer("NOPE rest of garbage");
  EXPECT_THROW((void)read_assignments(buffer), std::runtime_error);
}

TEST(PartitionIoTest, RejectsTruncation) {
  const Graph g = make_cycle(10);
  const auto assignments = sample_assignments(g, 4);
  std::stringstream buffer;
  write_assignments(buffer, assignments, 4);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() - 5));
  EXPECT_THROW((void)read_assignments(truncated), std::runtime_error);
}

TEST(PartitionIoTest, RejectsOutOfRangePartition) {
  std::stringstream buffer;
  const std::vector<Assignment> bad = {{{0, 1}, 9}};
  write_assignments(buffer, bad, 4);  // claims k=4 but stores partition 9
  EXPECT_THROW((void)read_assignments(buffer), std::runtime_error);
}

TEST(PartitionIoTest, FileWrapperRoundTrip) {
  const Graph g = make_grid(6, 6);
  const auto assignments = sample_assignments(g, 4);
  const std::string path = ::testing::TempDir() + "assignments.adwp";
  write_assignments_file(path, assignments, 4);
  const AssignmentFile loaded = read_assignments_file(path);
  EXPECT_EQ(loaded.assignments.size(), assignments.size());
  std::remove(path.c_str());
}

TEST(PartitionIoTest, MissingFileThrows) {
  EXPECT_THROW((void)read_assignments_file("/nonexistent/a.adwp"),
               std::runtime_error);
}

// --- Window trace -----------------------------------------------------------------

TEST(WindowTraceTest, UnboundedRunRecordsDoublingRamp) {
  const Graph g = make_community_graph({.num_communities = 60, .seed = 8});
  AdwiseOptions opts;
  opts.latency_preference_ms = -1;
  opts.max_window = 64;
  AdwisePartitioner partitioner(opts);
  PartitionState st(8, g.num_vertices());
  VectorEdgeStream stream(g.edges());
  partitioner.partition(stream, st);
  const auto& trace = partitioner.last_report().window_trace;
  ASSERT_FALSE(trace.empty());
  // Monotone assignment counter; window never exceeds the cap.
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i].assigned, trace[i - 1].assigned);
    EXPECT_LE(trace[i].window, 64u);
  }
  // Initial ramp: the first adaptations double 1 -> 2 -> 4 ...
  EXPECT_EQ(trace[0].window, 2u);
  if (trace.size() > 1) {
    EXPECT_EQ(trace[1].window, 4u);
  }
}

TEST(WindowTraceTest, TightBudgetStaysFlat) {
  const Graph g = make_community_graph({.num_communities = 30, .seed = 8});
  AdwiseOptions opts;
  opts.latency_preference_ms = 0;
  AdwisePartitioner partitioner(opts);
  PartitionState st(8, g.num_vertices());
  VectorEdgeStream stream(g.edges());
  partitioner.partition(stream, st);
  for (const auto& point : partitioner.last_report().window_trace) {
    EXPECT_EQ(point.window, 1u);
  }
}

}  // namespace
}  // namespace adwise
