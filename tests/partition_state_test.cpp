// Tests for PartitionState: replica sets, balance tracking, Eq. 1/2 metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/partition/partition_state.h"

namespace adwise {
namespace {

TEST(PartitionStateTest, FreshStateIsEmpty) {
  PartitionState st(4, 10);
  EXPECT_EQ(st.k(), 4u);
  EXPECT_EQ(st.num_vertices(), 10u);
  EXPECT_EQ(st.assigned_edges(), 0u);
  EXPECT_EQ(st.max_partition_size(), 0u);
  EXPECT_EQ(st.min_partition_size(), 0u);
  EXPECT_DOUBLE_EQ(st.replication_degree(), 0.0);
  EXPECT_DOUBLE_EQ(st.imbalance(), 0.0);
}

TEST(PartitionStateTest, AssignUpdatesReplicasAndDegrees) {
  PartitionState st(4, 10);
  const auto effect = st.assign({0, 1}, 2);
  EXPECT_TRUE(effect.new_replica_u);
  EXPECT_TRUE(effect.new_replica_v);
  EXPECT_TRUE(st.replicas(0).contains(2));
  EXPECT_TRUE(st.replicas(1).contains(2));
  EXPECT_EQ(st.degree(0), 1u);
  EXPECT_EQ(st.degree(1), 1u);
  EXPECT_EQ(st.edges_on(2), 1u);
  EXPECT_EQ(st.assigned_edges(), 1u);
}

TEST(PartitionStateTest, RepeatAssignmentCreatesNoNewReplica) {
  PartitionState st(4, 10);
  st.assign({0, 1}, 2);
  const auto effect = st.assign({0, 2}, 2);
  EXPECT_FALSE(effect.new_replica_u);  // 0 already on partition 2
  EXPECT_TRUE(effect.new_replica_v);
}

TEST(PartitionStateTest, ReplicationDegreeAveragesReplicas) {
  PartitionState st(4, 10);
  st.assign({0, 1}, 0);
  st.assign({0, 2}, 1);
  st.assign({0, 3}, 2);
  // Vertex 0 has 3 replicas; vertices 1,2,3 have 1 each -> (3+1+1+1)/4.
  EXPECT_DOUBLE_EQ(st.replication_degree(), 6.0 / 4.0);
}

TEST(PartitionStateTest, MaxDegreeTracksRunningMaximum) {
  PartitionState st(2, 10);
  EXPECT_EQ(st.max_degree(), 1u);  // floor of 1 avoids division by zero
  st.assign({0, 1}, 0);
  st.assign({0, 2}, 0);
  st.assign({0, 3}, 0);
  EXPECT_EQ(st.max_degree(), 3u);
}

TEST(PartitionStateTest, MinMaxSizeTracking) {
  PartitionState st(3, 10);
  st.assign({0, 1}, 0);
  EXPECT_EQ(st.max_partition_size(), 1u);
  EXPECT_EQ(st.min_partition_size(), 0u);
  st.assign({1, 2}, 1);
  st.assign({2, 3}, 2);
  EXPECT_EQ(st.min_partition_size(), 1u);  // all partitions now at 1
  st.assign({3, 4}, 0);
  st.assign({4, 5}, 0);
  EXPECT_EQ(st.max_partition_size(), 3u);
  EXPECT_EQ(st.min_partition_size(), 1u);
}

TEST(PartitionStateTest, MinAdvancesThroughPlateaus) {
  PartitionState st(2, 10);
  // Fill partitions alternately; min should follow the smaller one exactly.
  for (int i = 0; i < 6; ++i) {
    st.assign({static_cast<VertexId>(i), static_cast<VertexId>(i + 1)},
              static_cast<PartitionId>(i % 2));
  }
  EXPECT_EQ(st.max_partition_size(), 3u);
  EXPECT_EQ(st.min_partition_size(), 3u);
  EXPECT_DOUBLE_EQ(st.imbalance(), 0.0);
}

TEST(PartitionStateTest, ImbalanceFormula) {
  PartitionState st(2, 10);
  st.assign({0, 1}, 0);
  st.assign({1, 2}, 0);
  st.assign({2, 3}, 0);
  st.assign({3, 4}, 1);
  // max=3, min=1 -> iota = 2/3.
  EXPECT_DOUBLE_EQ(st.imbalance(), 2.0 / 3.0);
}

TEST(PartitionStateTest, BalancedCheck) {
  PartitionState st(2, 10);
  st.assign({0, 1}, 0);
  st.assign({1, 2}, 1);
  st.assign({2, 3}, 1);
  // min/max = 1/2.
  EXPECT_TRUE(st.balanced(0.4));
  EXPECT_FALSE(st.balanced(0.6));
}

TEST(PartitionStateTest, LeastLoadedBreaksTiesBySmallestId) {
  PartitionState st(3, 10);
  EXPECT_EQ(st.least_loaded(), 0u);
  st.assign({0, 1}, 0);
  EXPECT_EQ(st.least_loaded(), 1u);
  st.assign({1, 2}, 1);
  st.assign({2, 3}, 2);
  EXPECT_EQ(st.least_loaded(), 0u);
}

TEST(PartitionStateTest, LeastLoadedMatchesFullScanAfterEveryAssignment) {
  // least_loaded() is maintained incrementally (O(1) reads); it must agree
  // with a brute-force scan after every single assignment, including the
  // forward-advance case (current holder leaves the minimum while others
  // remain) and the epoch-rescan case (last holder leaves the minimum).
  constexpr std::uint32_t k = 5;
  PartitionState st(k, 64);
  std::vector<std::uint64_t> sizes(k, 0);
  const PartitionId targets[] = {0, 0, 2, 1, 1, 3, 4, 0, 2, 3,
                                 4, 1, 2, 3, 4, 0, 0, 4, 3, 2};
  VertexId v = 0;
  for (const PartitionId p : targets) {
    st.assign({v, v + 1}, p);
    ++v;
    ++sizes[p];
    const auto expect = static_cast<PartitionId>(
        std::min_element(sizes.begin(), sizes.end()) - sizes.begin());
    ASSERT_EQ(st.least_loaded(), expect) << "after assigning to " << p;
  }
}

TEST(PartitionStateTest, SelfLoopCountsOneVertexOnce) {
  PartitionState st(2, 4);
  const auto effect = st.assign({1, 1}, 0);
  EXPECT_TRUE(effect.new_replica_u);
  EXPECT_FALSE(effect.new_replica_v);
  EXPECT_EQ(st.replicas(1).size(), 1u);
  EXPECT_EQ(st.degree(1), 1u);
  EXPECT_DOUBLE_EQ(st.replication_degree(), 1.0);
}

}  // namespace
}  // namespace adwise
