// Crash-tolerance tests: the .adwk checkpoint format, the checkpointed run
// driver, and — the anchor of the whole feature — kill-at-every-boundary
// property tests proving that a run resumed from any checkpoint finishes
// bit-identically (same placements, same counter traces) to a run that was
// never interrupted.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/crc32.h"
#include "src/core/adwise_partitioner.h"
#include "src/graph/edge_stream.h"
#include "src/graph/file_stream.h"
#include "src/graph/generators.h"
#include "src/io/adw_format.h"
#include "src/io/binary_stream.h"
#include "src/io/checkpoint.h"
#include "src/io/fault_injection.h"
#include "src/io/io_error.h"
#include "src/obs/metrics.h"
#include "src/obs/obs_sink.h"
#include "src/partition/checkpoint_run.h"
#include "src/partition/hdrf_partitioner.h"
#include "src/partition/partition_state.h"

namespace adwise {
namespace {

// --- Byte codec + CRC-32 primitives -----------------------------------------

TEST(Crc32Test, StandardCheckValue) {
  // The IEEE 802.3 check value every CRC-32 implementation must produce.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyInput) { EXPECT_EQ(crc32("", 0), 0u); }

TEST(Crc32Test, IncrementalFeedMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t oneshot = crc32(data.data(), data.size());
  // Every split point of the same byte sequence must yield the same CRC —
  // the property the streaming .adw writer relies on.
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t state = crc32_init();
    state = crc32_feed(state, data.data(), split);
    state = crc32_feed(state, data.data() + split, data.size() - split);
    EXPECT_EQ(crc32_finish(state), oneshot) << "split at " << split;
  }
}

TEST(BytesTest, RoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);
  w.str("checkpoint");

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "checkpoint");
  EXPECT_EQ(r.remaining(), 0u);
  r.expect_end();
}

TEST(BytesTest, TruncatedBlobThrows) {
  ByteWriter w;
  w.u64(42);
  for (std::size_t len = 0; len < 8; ++len) {
    ByteReader r(std::span<const std::byte>(w.data().data(), len));
    EXPECT_THROW((void)r.u64(), std::runtime_error) << "len " << len;
  }
}

TEST(BytesTest, TrailingBytesFailExpectEnd) {
  ByteWriter w;
  w.u32(1);
  w.u8(0);
  ByteReader r(w.data());
  (void)r.u32();
  EXPECT_THROW(r.expect_end(), std::runtime_error);
}

// --- .adwk checkpoint files --------------------------------------------------

class CheckpointFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "ckpt_test_" +
            std::to_string(static_cast<long>(::getpid())) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".adwk";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  static Checkpoint sample() {
    Checkpoint c;
    c.meta.algorithm = "adwise";
    c.meta.k = 8;
    c.meta.num_vertices = 1000;
    c.meta.total_edges = 5000;
    c.meta.edges_consumed = 1234;
    c.meta.assignments = 1200;
    c.meta.sink_bytes = 4321;
    c.partition_state = {std::byte{1}, std::byte{2}, std::byte{3}};
    c.algorithm_state = {std::byte{9}, std::byte{8}};
    return c;
  }

  std::string path_;
};

TEST_F(CheckpointFileTest, RoundTrip) {
  const Checkpoint ckpt = sample();
  write_checkpoint_file(path_, ckpt);
  EXPECT_TRUE(is_checkpoint_file(path_));
  EXPECT_EQ(read_checkpoint_file(path_), ckpt);
}

TEST_F(CheckpointFileTest, EmptyAlgorithmStateRoundTrips) {
  Checkpoint ckpt = sample();
  ckpt.meta.algorithm = "hdrf";
  ckpt.algorithm_state.clear();
  write_checkpoint_file(path_, ckpt);
  EXPECT_EQ(read_checkpoint_file(path_), ckpt);
}

TEST_F(CheckpointFileTest, StructureGolden) {
  // Pin the container layout: header with CRC, then exactly the three known
  // sections, each CRC-protected. If this breaks, old checkpoints no longer
  // resume.
  write_checkpoint_file(path_, sample());
  std::ifstream in(path_, std::ios::binary);
  const std::string bytes{std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>()};
  ASSERT_GE(bytes.size(), kCheckpointHeaderBytes);
  EXPECT_EQ(bytes.substr(0, 4), "ADWK");
  const auto* b = reinterpret_cast<const std::byte*>(bytes.data());
  EXPECT_EQ(adw_load_le32(b + 4), kCheckpointVersion);
  EXPECT_EQ(adw_load_le32(b + 8), 3u);  // section_count
  EXPECT_EQ(adw_load_le32(b + 12), crc32(bytes.data(), 12));

  std::size_t off = kCheckpointHeaderBytes;
  const std::uint32_t want_ids[] = {kSectionMeta, kSectionPartitionState,
                                    kSectionAlgorithmState};
  for (std::uint32_t want_id : want_ids) {
    ASSERT_GE(bytes.size(), off + kCheckpointSectionHeaderBytes);
    EXPECT_EQ(adw_load_le32(b + off), want_id);
    const std::uint64_t len = adw_load_le64(b + off + 4);
    const std::uint32_t payload_crc = adw_load_le32(b + off + 12);
    off += kCheckpointSectionHeaderBytes;
    ASSERT_GE(bytes.size(), off + len);
    EXPECT_EQ(payload_crc, crc32(bytes.data() + off, len))
        << "section " << want_id;
    off += len;
  }
  EXPECT_EQ(off, bytes.size());  // no trailing bytes
}

// --- validate_checkpoint / skip_edges ---------------------------------------

TEST(ValidateCheckpointTest, MatchingShapePasses) {
  CheckpointMeta meta;
  meta.algorithm = "hdrf";
  meta.k = 4;
  meta.num_vertices = 100;
  EXPECT_NO_THROW(validate_checkpoint(meta, "hdrf", 4, 100));
}

TEST(ValidateCheckpointTest, EveryMismatchReported) {
  CheckpointMeta meta;
  meta.algorithm = "hdrf";
  meta.k = 4;
  meta.num_vertices = 100;
  try {
    validate_checkpoint(meta, "adwise", 8, 999);
    FAIL() << "expected a shape mismatch";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    // One error naming every mismatching field, not just the first.
    EXPECT_NE(msg.find("hdrf"), std::string::npos) << msg;
    EXPECT_NE(msg.find("adwise"), std::string::npos) << msg;
    EXPECT_NE(msg.find("4"), std::string::npos) << msg;
    EXPECT_NE(msg.find("8"), std::string::npos) << msg;
    EXPECT_NE(msg.find("100"), std::string::npos) << msg;
    EXPECT_NE(msg.find("999"), std::string::npos) << msg;
  }
}

TEST(SkipEdgesTest, SkipsExactlyN) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  VectorEdgeStream stream(edges);
  skip_edges(stream, 2);
  Edge e;
  ASSERT_TRUE(stream.next(e));
  EXPECT_EQ(e, (Edge{2, 3}));
}

TEST(SkipEdgesTest, ShortStreamThrows) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}};
  VectorEdgeStream stream(edges);
  EXPECT_THROW(skip_edges(stream, 3), std::runtime_error);
}

// --- PartitionState save/load continuation ----------------------------------

TEST(PartitionStateCheckpointTest, ContinuationIsEquivalent) {
  const Graph g = make_erdos_renyi(200, 1500, 5);
  PartitionState full(4, 200);
  PartitionState prefix(4, 200);
  const std::size_t cut = 700;
  for (std::size_t i = 0; i < g.num_edges(); ++i) {
    full.assign(g.edge(i), static_cast<PartitionId>(i % 4));
    if (i < cut) prefix.assign(g.edge(i), static_cast<PartitionId>(i % 4));
  }

  ByteWriter blob;
  prefix.save(blob);
  PartitionState restored(4, 200);
  ByteReader reader(blob.data());
  restored.load(reader);
  reader.expect_end();

  // Continue the restored state over the suffix: every observable must
  // match the uninterrupted run.
  for (std::size_t i = cut; i < g.num_edges(); ++i) {
    restored.assign(g.edge(i), static_cast<PartitionId>(i % 4));
  }
  EXPECT_EQ(restored.assigned_edges(), full.assigned_edges());
  EXPECT_EQ(restored.max_partition_size(), full.max_partition_size());
  EXPECT_EQ(restored.min_partition_size(), full.min_partition_size());
  EXPECT_EQ(restored.least_loaded(), full.least_loaded());
  EXPECT_EQ(restored.max_degree(), full.max_degree());
  EXPECT_DOUBLE_EQ(restored.replication_degree(), full.replication_degree());
  EXPECT_DOUBLE_EQ(restored.imbalance(), full.imbalance());
  for (PartitionId p = 0; p < 4; ++p) {
    EXPECT_EQ(restored.edges_on(p), full.edges_on(p)) << "partition " << p;
  }
  for (VertexId v = 0; v < 200; ++v) {
    EXPECT_EQ(restored.observed_degree(v), full.observed_degree(v));
    EXPECT_EQ(restored.replicas(v), full.replicas(v)) << "vertex " << v;
  }
}

TEST(PartitionStateCheckpointTest, ShapeMismatchRejected) {
  PartitionState small(4, 100);
  small.assign({0, 1}, 0);
  ByteWriter blob;
  small.save(blob);
  {
    PartitionState wrong_k(8, 100);
    ByteReader reader(blob.data());
    EXPECT_THROW(wrong_k.load(reader), std::runtime_error);
  }
  {
    PartitionState wrong_n(4, 200);
    ByteReader reader(blob.data());
    EXPECT_THROW(wrong_n.load(reader), std::runtime_error);
  }
}

// --- Kill-at-every-boundary property tests ----------------------------------

using Placement = std::pair<Edge, PartitionId>;

// Thrown by the crash hook; models SIGKILL right after a checkpoint became
// durable (everything in memory is discarded, only the checkpoint file and
// the durable placement prefix survive).
struct CrashSignal {};

struct CrashLoopResult {
  std::vector<Placement> placements;
  AdwisePartitioner::Report report;  // zero for single-edge algorithms
  int crashes = 0;
};

// Runs partitioning to completion while crashing at every single checkpoint
// boundary: each attempt dies at its first checkpoint, so attempt i resumes
// from boundary i-1 and crashes at boundary i — every boundary is exercised
// both as a crash point and as a resume point.
CrashLoopResult crash_at_every_boundary(
    const std::function<std::unique_ptr<EdgePartitioner>()>& make_partitioner,
    const std::function<EdgeStream&()>& make_stream, std::uint32_t k,
    VertexId n, const std::string& ckpt_path, std::uint64_t every) {
  CrashLoopResult result;
  std::remove(ckpt_path.c_str());
  for (int iter = 0;; ++iter) {
    if (iter > 500) throw std::runtime_error("crash loop did not terminate");
    auto partitioner = make_partitioner();
    PartitionState state(k, n);
    EdgeStream& stream = make_stream();
    Checkpoint resume;
    const Checkpoint* r = nullptr;
    if (is_checkpoint_file(ckpt_path)) {
      resume = read_checkpoint_file(ckpt_path);
      validate_checkpoint(resume.meta, partitioner->name(), k, n);
      // Roll the output back to the durable prefix, exactly like the CLI
      // truncates its .partial file to CheckpointMeta::sink_bytes.
      result.placements.resize(resume.meta.sink_bytes);
      r = &resume;
    } else {
      result.placements.clear();
    }
    CheckpointRunOptions copts;
    copts.checkpoint_path = ckpt_path;
    copts.every = every;
    copts.durable_sink_bytes = [&] { return result.placements.size(); };
    copts.on_checkpoint = [](std::uint64_t ordinal) {
      if (ordinal >= 1) throw CrashSignal{};
    };
    try {
      run_with_checkpoints(
          *partitioner, stream, state,
          [&](const Edge& e, PartitionId p) {
            result.placements.emplace_back(e, p);
          },
          copts, r);
    } catch (const CrashSignal&) {
      ++result.crashes;
      continue;
    }
    if (auto* a = dynamic_cast<AdwisePartitioner*>(partitioner.get())) {
      result.report = a->last_report();
    }
    return result;
  }
}

void expect_reports_identical(const AdwisePartitioner::Report& got,
                              const AdwisePartitioner::Report& want) {
  // Every decision-derived counter must survive resume bit-for-bit;
  // wall-clock seconds is the one legitimately nondeterministic field.
  EXPECT_EQ(got.assignments, want.assignments);
  EXPECT_EQ(got.score_computations, want.score_computations);
  EXPECT_EQ(got.heap_pops, want.heap_pops);
  EXPECT_EQ(got.forced_secondary, want.forced_secondary);
  EXPECT_EQ(got.secondary_rescans, want.secondary_rescans);
  EXPECT_EQ(got.demotion_sweeps, want.demotion_sweeps);
  EXPECT_EQ(got.event_reassessments, want.event_reassessments);
  EXPECT_EQ(got.adaptations, want.adaptations);
  EXPECT_EQ(got.max_window, want.max_window);
  EXPECT_EQ(got.score_batches, want.score_batches);
  EXPECT_EQ(got.batch_items, want.batch_items);
  EXPECT_EQ(got.refill_batches, want.refill_batches);
  EXPECT_EQ(got.refill_batch_items, want.refill_batch_items);
  EXPECT_EQ(got.batch_size_hist, want.batch_size_hist);
  ASSERT_EQ(got.window_trace.size(), want.window_trace.size());
  for (std::size_t i = 0; i < got.window_trace.size(); ++i) {
    EXPECT_EQ(got.window_trace[i].assigned, want.window_trace[i].assigned);
    EXPECT_EQ(got.window_trace[i].window, want.window_trace[i].window);
  }
}

class CrashResumeTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kParts = 8;
  static constexpr VertexId kVertices = 400;
  // Prime, so boundaries never align with window sizes or chunk sizes.
  static constexpr std::uint64_t kEvery = 97;

  void SetUp() override {
    base_ = ::testing::TempDir() + "crash_resume_" +
            std::to_string(static_cast<long>(::getpid())) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
    ckpt_path_ = base_ + ".adwk";
    adw_path_ = base_ + ".adw";
    text_path_ = base_ + ".txt";
    graph_ = make_erdos_renyi(kVertices, 3000, 7);
  }

  void TearDown() override {
    std::remove(ckpt_path_.c_str());
    std::remove(adw_path_.c_str());
    std::remove(text_path_.c_str());
  }

  static AdwiseOptions lazy_options() {
    AdwiseOptions opts;
    opts.max_window = 256;
    return opts;
  }

  static AdwiseOptions eager_options() {
    AdwiseOptions opts;
    opts.lazy_traversal = false;
    opts.max_window = 64;
    return opts;
  }

  // Uninterrupted golden run through a plain partition() call.
  std::vector<Placement> clean_run(EdgePartitioner& partitioner,
                                   EdgeStream& stream) {
    PartitionState state(kParts, kVertices);
    std::vector<Placement> placements;
    partitioner.partition(stream, state,
                          [&](const Edge& e, PartitionId p) {
                            placements.emplace_back(e, p);
                          });
    return placements;
  }

  void check_adwise(const AdwiseOptions& opts,
                    const std::function<EdgeStream&()>& make_stream) {
    AdwisePartitioner golden(opts);
    const std::vector<Placement> want = clean_run(golden, make_stream());

    const CrashLoopResult got = crash_at_every_boundary(
        [&] { return std::make_unique<AdwisePartitioner>(opts); },
        make_stream, kParts, kVertices, ckpt_path_, kEvery);

    // One crash per boundary: the loop really did die everywhere.
    EXPECT_EQ(got.crashes,
              static_cast<int>(graph_.num_edges() / kEvery));
    EXPECT_EQ(got.placements, want);
    expect_reports_identical(got.report, golden.last_report());
  }

  Graph graph_;
  std::string base_, ckpt_path_, adw_path_, text_path_;
};

TEST_F(CrashResumeTest, AdwiseLazyVectorStream) {
  VectorEdgeStream stream(graph_.edges());
  check_adwise(lazy_options(), [&]() -> EdgeStream& {
    stream.rewind();
    return stream;
  });
}

TEST_F(CrashResumeTest, AdwiseEagerVectorStream) {
  VectorEdgeStream stream(graph_.edges());
  check_adwise(eager_options(), [&]() -> EdgeStream& {
    stream.rewind();
    return stream;
  });
}

TEST_F(CrashResumeTest, AdwiseLazyBinaryStream) {
  {
    AdwWriter::Options wopts;
    wopts.with_crc = true;
    write_adw_file(adw_path_, graph_.edges(), wopts);
  }
  // Fresh stream per attempt, like a real post-crash process; small chunks
  // so resume skipping crosses many chunk boundaries.
  std::unique_ptr<BinaryEdgeStream> owned;
  check_adwise(lazy_options(), [&]() -> EdgeStream& {
    BinaryEdgeStream::Options sopts;
    sopts.chunk_edges = 256;
    owned = std::make_unique<BinaryEdgeStream>(adw_path_, sopts);
    return *owned;
  });
}

TEST_F(CrashResumeTest, AdwiseLazyTextStream) {
  {
    std::ofstream out(text_path_);
    for (const Edge& e : graph_.edges()) out << e.u << ' ' << e.v << '\n';
  }
  const FileEdgeStream::Stats stats = FileEdgeStream::scan(text_path_);
  ASSERT_EQ(stats.num_edges, graph_.num_edges());
  std::unique_ptr<FileEdgeStream> owned;
  check_adwise(lazy_options(), [&]() -> EdgeStream& {
    owned = std::make_unique<FileEdgeStream>(text_path_, stats.num_edges);
    return *owned;
  });
}

TEST_F(CrashResumeTest, HdrfVectorStream) {
  VectorEdgeStream stream(graph_.edges());
  auto make_stream = [&]() -> EdgeStream& {
    stream.rewind();
    return stream;
  };
  HdrfPartitioner golden;
  const std::vector<Placement> want = clean_run(golden, make_stream());
  const CrashLoopResult got = crash_at_every_boundary(
      [] { return std::make_unique<HdrfPartitioner>(); }, make_stream,
      kParts, kVertices, ckpt_path_, kEvery);
  EXPECT_GT(got.crashes, 0);
  EXPECT_EQ(got.placements, want);
}

TEST_F(CrashResumeTest, HdrfBinaryStream) {
  {
    AdwWriter::Options wopts;
    wopts.with_crc = true;
    write_adw_file(adw_path_, graph_.edges(), wopts);
  }
  std::unique_ptr<BinaryEdgeStream> owned;
  auto make_stream = [&]() -> EdgeStream& {
    BinaryEdgeStream::Options sopts;
    sopts.chunk_edges = 256;
    owned = std::make_unique<BinaryEdgeStream>(adw_path_, sopts);
    return *owned;
  };
  HdrfPartitioner golden;
  const std::vector<Placement> want = clean_run(golden, make_stream());
  const CrashLoopResult got = crash_at_every_boundary(
      [] { return std::make_unique<HdrfPartitioner>(); }, make_stream,
      kParts, kVertices, ckpt_path_, kEvery);
  EXPECT_GT(got.crashes, 0);
  EXPECT_EQ(got.placements, want);
}

// Crashes that do NOT land on a checkpoint boundary: a fault-injecting
// stream kills the run at seed-chosen edge positions mid-window, so resume
// must truncate the sink back to the durable prefix and re-emit the tail.
TEST_F(CrashResumeTest, MidRunStreamFaultsResumeToIdenticalResult) {
  const AdwiseOptions opts = lazy_options();
  VectorEdgeStream clean_stream(graph_.edges());
  AdwisePartitioner golden(opts);
  const std::vector<Placement> want = clean_run(golden, clean_stream);

  VectorEdgeStream inner(graph_.edges());
  FaultInjectingEdgeStream::Options fopts;
  fopts.seed = 3;
  fopts.fault_probability = 0.002;  // a handful of mid-run crashes
  FaultInjectingEdgeStream faulty(inner, fopts);

  std::remove(ckpt_path_.c_str());
  std::vector<Placement> placements;
  int crashes = 0;
  for (int iter = 0;; ++iter) {
    ASSERT_LE(iter, 100) << "fault-resume loop did not terminate";
    AdwisePartitioner partitioner(opts);
    PartitionState state(kParts, kVertices);
    faulty.rewind();  // fault schedule is NOT reset — the loop terminates
    Checkpoint resume;
    const Checkpoint* r = nullptr;
    if (is_checkpoint_file(ckpt_path_)) {
      resume = read_checkpoint_file(ckpt_path_);
      validate_checkpoint(resume.meta, partitioner.name(), kParts, kVertices);
      placements.resize(resume.meta.sink_bytes);
      r = &resume;
    } else {
      placements.clear();
    }
    CheckpointRunOptions copts;
    copts.checkpoint_path = ckpt_path_;
    copts.every = kEvery;
    copts.durable_sink_bytes = [&] { return placements.size(); };
    try {
      run_with_checkpoints(partitioner, faulty, state,
                           [&](const Edge& e, PartitionId p) {
                             placements.emplace_back(e, p);
                           },
                           copts, r);
    } catch (const TransientIoError&) {
      ++crashes;
      continue;
    }
    expect_reports_identical(partitioner.last_report(),
                             golden.last_report());
    break;
  }
  EXPECT_GT(crashes, 0) << "seed injected no faults — test is vacuous";
  EXPECT_EQ(placements, want);
}

// --- Configurations that cannot checkpoint must refuse loudly ---------------

TEST(CheckpointPreconditionTest, WallClockCoupledConfigRefuses) {
  AdwiseOptions opts;
  opts.latency_preference_ms = 100;  // C2 reads the wall clock
  AdwisePartitioner partitioner(opts);
  EXPECT_FALSE(partitioner.enable_checkpoints(
      {1, [](std::uint64_t, std::uint64_t, std::span<const std::byte>) {}}));
}

TEST(CheckpointPreconditionTest, MultiThreadedScoringRefuses) {
  AdwiseOptions opts;
  opts.num_score_threads = 2;  // batch-cutoff controller is timing-driven
  AdwisePartitioner partitioner(opts);
  EXPECT_FALSE(partitioner.enable_checkpoints(
      {1, [](std::uint64_t, std::uint64_t, std::span<const std::byte>) {}}));
}

TEST(CheckpointPreconditionTest, RunWithCheckpointsSurfacesRefusal) {
  AdwiseOptions opts;
  opts.latency_preference_ms = 100;
  AdwisePartitioner partitioner(opts);
  const std::vector<Edge> edges = {{0, 1}, {1, 2}};
  VectorEdgeStream stream(edges);
  PartitionState state(2, 3);
  CheckpointRunOptions copts;
  copts.checkpoint_path = ::testing::TempDir() + "refused.adwk";
  EXPECT_THROW(run_with_checkpoints(partitioner, stream, state, {}, copts),
               std::runtime_error);
}

TEST(CheckpointPreconditionTest, ZeroIntervalRejected) {
  HdrfPartitioner partitioner;
  const std::vector<Edge> edges = {{0, 1}};
  VectorEdgeStream stream(edges);
  PartitionState state(2, 2);
  CheckpointRunOptions copts;
  copts.checkpoint_path = ::testing::TempDir() + "zero.adwk";
  copts.every = 0;
  EXPECT_THROW(run_with_checkpoints(partitioner, stream, state, {}, copts),
               std::runtime_error);
}

TEST(CheckpointPreconditionTest, AlienAlgorithmStateRejected) {
  AdwisePartitioner partitioner;
  const std::vector<std::byte> alien = {std::byte{0xFF}, std::byte{0xEE},
                                        std::byte{0xDD}, std::byte{0xCC}};
  EXPECT_FALSE(partitioner.restore_algorithm_state(alien));
  const std::vector<std::byte> tiny = {std::byte{1}};
  EXPECT_FALSE(partitioner.restore_algorithm_state(tiny));
}

// --- Async checkpoint I/O (the CLI / bench configuration) -------------------

namespace {

std::vector<std::byte> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  const auto* p = reinterpret_cast<const std::byte*>(raw.data());
  return {p, p + raw.size()};
}

}  // namespace

// The async writer must not change anything observable: same placements,
// same number of durable checkpoints, and a byte-identical final
// checkpoint file (checkpoint content is deterministic; only WHO fsyncs
// it differs).
TEST(AsyncCheckpointTest, AsyncRunMatchesSyncRun) {
  const Graph g = make_erdos_renyi(300, 4000, 21);
  const std::string base = ::testing::TempDir() + "async_ckpt_" +
                           std::to_string(static_cast<long>(::getpid()));
  const std::string sync_path = base + "_sync.adwk";
  const std::string async_path = base + "_async.adwk";

  auto run = [&](const std::string& path, bool async_io,
                 std::vector<Placement>& placements, std::uint64_t& notified) {
    HdrfPartitioner partitioner;
    PartitionState state(8, g.num_vertices());
    VectorEdgeStream stream(g.edges());
    CheckpointRunOptions copts;
    copts.checkpoint_path = path;
    copts.every = 512;
    copts.async_io = async_io;
    copts.durable_sink_bytes = [&] { return placements.size(); };
    // With async_io this callback runs on the writer thread; ordinals must
    // still arrive in order, exactly once each.
    copts.on_checkpoint = [&notified](std::uint64_t ordinal) {
      EXPECT_EQ(ordinal, notified + 1);
      notified = ordinal;
    };
    return run_with_checkpoints(
        partitioner, stream, state,
        [&](const Edge& e, PartitionId p) { placements.emplace_back(e, p); },
        copts);
  };

  std::vector<Placement> sync_placements, async_placements;
  std::uint64_t sync_notified = 0, async_notified = 0;
  const std::uint64_t sync_written =
      run(sync_path, false, sync_placements, sync_notified);
  const std::uint64_t async_written =
      run(async_path, true, async_placements, async_notified);

  EXPECT_EQ(async_written, sync_written);
  EXPECT_EQ(async_notified, async_written);
  EXPECT_EQ(sync_notified, sync_written);
  EXPECT_GT(sync_written, 1u) << "interval too large — test is vacuous";
  EXPECT_EQ(async_placements, sync_placements);
  EXPECT_EQ(slurp(async_path), slurp(sync_path));
  std::remove(sync_path.c_str());
  std::remove(async_path.c_str());
}

// Disk-full / permission failures happen on the writer thread; they must
// resurface on the partitioning thread instead of being lost.
TEST(AsyncCheckpointTest, WriterErrorsSurfaceOnTheCallersThread) {
  DurableCheckpointWriter writer(::testing::TempDir() +
                                 "no_such_dir_adwk/ckpt.adwk");
  Checkpoint ckpt;
  ckpt.meta.algorithm = "hdrf";
  ckpt.meta.k = 2;
  ckpt.meta.num_vertices = 2;
  writer.write(std::move(ckpt));  // handoff succeeds; the write itself fails
  EXPECT_THROW(writer.flush(), std::runtime_error);
  EXPECT_EQ(writer.committed(), 0u);
}

// In strict mode run_with_checkpoints must report async writer failures as
// its own failure — a run whose checkpoints silently vanished is not
// checkpointed.
TEST(AsyncCheckpointTest, StrictRunSurfacesAsyncWriterFailure) {
  const Graph g = make_erdos_renyi(100, 1500, 5);
  HdrfPartitioner partitioner;
  PartitionState state(4, g.num_vertices());
  VectorEdgeStream stream(g.edges());
  CheckpointRunOptions copts;
  copts.checkpoint_path =
      ::testing::TempDir() + "no_such_dir_adwk/run.adwk";
  copts.every = 256;
  copts.async_io = true;
  copts.strict = true;
  EXPECT_THROW(run_with_checkpoints(partitioner, stream, state, {}, copts),
               std::runtime_error);
}

// Degraded mode (the default): the same unwritable checkpoint path merely
// costs the run its recovery points — partitioning itself completes with
// identical placements, and every failed boundary is counted.
TEST(AsyncCheckpointTest, DegradedRunSurvivesCheckpointWriteFailures) {
  const Graph g = make_erdos_renyi(100, 1500, 5);

  auto run = [&](const CheckpointRunOptions& copts,
                 std::vector<Placement>& placements) {
    HdrfPartitioner partitioner;
    PartitionState state(4, g.num_vertices());
    VectorEdgeStream stream(g.edges());
    return run_with_checkpoints(
        partitioner, stream, state,
        [&](const Edge& e, PartitionId p) { placements.emplace_back(e, p); },
        copts);
  };

  std::vector<Placement> clean;
  {
    CheckpointRunOptions copts;
    copts.checkpoint_path = ::testing::TempDir() + "degraded_ok_" +
                            std::to_string(static_cast<long>(::getpid())) +
                            ".adwk";
    copts.every = 256;
    copts.async_io = true;
    run(copts, clean);
    std::remove(copts.checkpoint_path.c_str());
  }

  for (const bool async_io : {false, true}) {
    obs::MetricsRegistry reg;
    obs::ObsSink sink;
    sink.metrics = &reg;
    CheckpointRunOptions copts;
    copts.checkpoint_path = ::testing::TempDir() + "no_such_dir_adwk/run.adwk";
    copts.every = 256;
    copts.async_io = async_io;
    copts.obs = &sink;
    std::vector<Placement> degraded;
    std::uint64_t written = 0;
    EXPECT_NO_THROW(written = run(copts, degraded)) << "async=" << async_io;
    EXPECT_EQ(written, 0u);
    EXPECT_EQ(degraded, clean) << "degraded mode changed placements";
    EXPECT_GT(reg.snapshot().value("checkpoint.write_failures", 0.0), 0.0);
    EXPECT_EQ(reg.snapshot().value("checkpoint.write_failures", 0.0),
              reg.snapshot().value("checkpoint.skipped", 0.0));
  }
}

// A fault on the FINAL durable commit can only surface at shutdown — the
// partitioning loop is already done when the writer thread discovers it.
// Strict mode must abort loudly (with the typed error), degraded mode must
// count it; neither may silently report the run as fully checkpointed.
TEST(AsyncCheckpointTest, FaultOnFinalDurableCommitSurfacesAtShutdown) {
  // Fails the n-th rename (the commit point of AtomicFileWriter) with
  // ENOSPC; every other operation is untouched.
  class FailNthRename final : public FaultInjector {
   public:
    explicit FailNthRename(std::uint64_t n) : n_(n) {}
    WriteFault write_fault(WriteOp op, std::uint64_t) override {
      if (op != WriteOp::kRename) return WriteFault::kNone;
      return ++seen_ == n_ ? WriteFault::kEnospc : WriteFault::kNone;
    }

   private:
    std::uint64_t seen_ = 0;
    std::uint64_t n_;
  };

  const Graph g = make_erdos_renyi(200, 3000, 11);
  const std::string path = ::testing::TempDir() + "final_commit_fault_" +
                           std::to_string(static_cast<long>(::getpid())) +
                           ".adwk";
  auto run = [&](bool strict, FaultInjector* injector) {
    HdrfPartitioner partitioner;
    PartitionState state(4, g.num_vertices());
    VectorEdgeStream stream(g.edges());
    CheckpointRunOptions copts;
    copts.checkpoint_path = path;
    copts.every = 512;
    copts.async_io = true;
    copts.strict = strict;
    copts.ckpt_io.fault_injector = injector;
    return run_with_checkpoints(partitioner, stream, state, {}, copts);
  };

  // Fault-free baseline: how many checkpoints does this shape produce?
  const std::uint64_t baseline = run(/*strict=*/true, nullptr);
  ASSERT_GT(baseline, 1u) << "interval too large — test is vacuous";

  // Strict: failing exactly the last commit must abort the run with the
  // typed error even though every assignment was already emitted.
  {
    FailNthRename inj(baseline);
    EXPECT_THROW(run(/*strict=*/true, &inj), DiskFullError);
  }
  // Degraded: the run completes but reports one commit fewer — the failure
  // is counted, not swallowed into a false "fully checkpointed" claim.
  {
    FailNthRename inj(baseline);
    EXPECT_EQ(run(/*strict=*/false, &inj), baseline - 1);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adwise
