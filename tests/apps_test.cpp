// Tests for the evaluation workloads: coloring validity and convergence,
// circle (subgraph isomorphism) search, clique search.
#include <gtest/gtest.h>

#include <numeric>

#include "src/apps/clique.h"
#include "src/apps/coloring.h"
#include "src/apps/pagerank.h"
#include "src/apps/subgraph_iso.h"
#include "src/graph/generators.h"
#include "src/graph/metrics.h"
#include "src/partition/registry.h"

namespace adwise {
namespace {

std::vector<Assignment> assign_with(const Graph& g, const char* algo,
                                    std::uint32_t k) {
  auto partitioner = make_baseline_partitioner(algo, k, 1);
  PartitionState st(k, g.num_vertices());
  VectorEdgeStream stream(g.edges());
  std::vector<Assignment> out;
  partitioner->partition(stream, st, [&](const Edge& e, PartitionId p) {
    out.push_back({e, p});
  });
  return out;
}

// --- PageRank sanity (engine-level tests live in engine_test) -----------------

TEST(PageRankTest, MassIsConservedOnGraphsWithoutIsolatedVertices) {
  const Graph g = make_community_graph({.num_communities = 20, .seed = 3});
  const auto ranks = reference_pagerank(g, 30);
  const double total = std::accumulate(ranks.begin(), ranks.end(), 0.0);
  EXPECT_NEAR(total, static_cast<double>(g.num_vertices()),
              g.num_vertices() * 1e-6);
}

// --- Coloring -------------------------------------------------------------------

TEST(ColoringTest, ProperOnCompleteGraph) {
  const Graph g = make_complete(8);
  std::vector<std::uint32_t> colors;
  (void)run_coloring_blocks(g, assign_with(g, "hash", 4), ClusterModel{}, 4, 50,
                      &colors);
  EXPECT_TRUE(is_proper_coloring(g, colors));
  // K8 needs exactly 8 colors.
  std::set<std::uint32_t> used(colors.begin(), colors.end());
  EXPECT_EQ(used.size(), 8u);
}

TEST(ColoringTest, PathNeedsTwoColors) {
  const Graph g = make_path(60);
  std::vector<std::uint32_t> colors;
  (void)run_coloring_blocks(g, assign_with(g, "hash", 4), ClusterModel{}, 4, 50,
                      &colors);
  EXPECT_TRUE(is_proper_coloring(g, colors));
  for (const std::uint32_t c : colors) EXPECT_LE(c, 1u);
}

TEST(ColoringTest, ConvergesOnRandomGraph) {
  const Graph g = make_erdos_renyi(300, 1200, 8);
  std::vector<std::uint32_t> colors;
  const auto result = run_coloring_blocks(
      g, assign_with(g, "hdrf", 8), ClusterModel{}, 6, 50, &colors);
  EXPECT_TRUE(is_proper_coloring(g, colors));
  // Speculative coloring stays within maxdeg + 1 colors.
  const DegreeStats stats = degree_stats(g);
  for (const std::uint32_t c : colors) EXPECT_LE(c, stats.max + 1);
  EXPECT_GT(result.total.seconds, 0.0);
}

TEST(ColoringTest, ConvergedRunGoesQuiet) {
  const Graph g = make_erdos_renyi(200, 600, 5);
  Engine<ColoringProgram> engine(g, assign_with(g, "hash", 4), ClusterModel{},
                                 ColoringProgram(g.num_vertices()));
  engine.activate_all();
  engine.run(500);
  EXPECT_TRUE(engine.idle());
}

TEST(ColoringTest, IsProperColoringDetectsViolation) {
  const Graph g = make_path(3);
  EXPECT_FALSE(is_proper_coloring(g, std::vector<std::uint32_t>{0, 0, 1}));
  EXPECT_TRUE(is_proper_coloring(g, std::vector<std::uint32_t>{0, 1, 0}));
}

// --- Subgraph isomorphism (circles) ------------------------------------------------

TEST(CircleSearchTest, FindsPlantedCycle) {
  // The cycle graph C12 contains exactly one 12-circle (traversed from any
  // seed in two directions).
  const Graph g = make_cycle(12);
  CircleSearchConfig config;
  config.lengths = {12};
  config.seeds_per_search = 4;
  config.max_pending = 64;
  std::vector<std::uint64_t> found;
  (void)run_circle_searches(g, assign_with(g, "hash", 4), ClusterModel{}, config,
                      &found);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_GT(found[0], 0u);
}

TEST(CircleSearchTest, NoShorterCyclesInCycleGraph) {
  const Graph g = make_cycle(12);
  CircleSearchConfig config;
  config.lengths = {5};
  config.seeds_per_search = 6;
  std::vector<std::uint64_t> found;
  (void)run_circle_searches(g, assign_with(g, "hash", 4), ClusterModel{}, config,
                      &found);
  EXPECT_EQ(found[0], 0u);
}

TEST(CircleSearchTest, TriangleSearchOnCliqueFindsMany) {
  const Graph g = make_complete(8);
  CircleSearchConfig config;
  config.lengths = {3};
  config.seeds_per_search = 8;
  config.max_pending = 256;
  std::vector<std::uint64_t> found;
  (void)run_circle_searches(g, assign_with(g, "hash", 4), ClusterModel{}, config,
                      &found);
  EXPECT_GT(found[0], 0u);
}

TEST(CircleSearchTest, OneBlockPerSearchedLength) {
  const Graph g = make_cycle(20);
  CircleSearchConfig config;
  config.lengths = {5, 7, 9};
  const auto result = run_circle_searches(g, assign_with(g, "hash", 4),
                                          ClusterModel{}, config);
  EXPECT_EQ(result.block_seconds.size(), 3u);
}

TEST(CircleSearchTest, TrafficScalesWithReplication) {
  const Graph g = make_community_graph({.num_communities = 20, .seed = 12});
  CircleSearchConfig config;
  config.lengths = {6};
  config.seeds_per_search = 6;
  config.max_pending = 16;
  // Everything on one partition vs. spread round-robin over 32.
  std::vector<Assignment> single, spread;
  PartitionId rr = 0;
  for (const Edge& e : g.edges()) {
    single.push_back({e, 0});
    spread.push_back({e, rr});
    rr = (rr + 1) % 32;
  }
  const auto t_single =
      run_circle_searches(g, single, ClusterModel{}, config);
  const auto t_spread =
      run_circle_searches(g, spread, ClusterModel{}, config);
  EXPECT_EQ(t_single.total.network_bytes, 0u);
  EXPECT_GT(t_spread.total.network_bytes, 0u);
}

// --- Clique search -------------------------------------------------------------------

TEST(CliqueSearchTest, FindsCliquesInCompleteGraph) {
  const Graph g = make_complete(10);
  CliqueSearchConfig config;
  config.sizes = {3, 4};
  config.starts = 10;
  config.forward_prob = 1.0;  // deterministic flooding for the test
  config.max_pending = 512;
  std::vector<std::uint64_t> found;
  (void)run_clique_searches(g, assign_with(g, "hash", 4), ClusterModel{}, config,
                      &found);
  ASSERT_EQ(found.size(), 2u);
  EXPECT_GT(found[0], 0u);  // triangles
  EXPECT_GT(found[1], 0u);  // 4-cliques
}

TEST(CliqueSearchTest, NoTrianglesInBipartiteGraph) {
  // A grid is bipartite: triangle-free.
  const Graph g = make_grid(6, 6);
  CliqueSearchConfig config;
  config.sizes = {3};
  config.starts = 12;
  config.forward_prob = 1.0;
  std::vector<std::uint64_t> found;
  (void)run_clique_searches(g, assign_with(g, "hash", 4), ClusterModel{}, config,
                      &found);
  EXPECT_EQ(found[0], 0u);
}

TEST(CliqueSearchTest, ProbabilisticFloodingIsDeterministicPerSeed) {
  const Graph g = make_community_graph({.num_communities = 10, .seed = 2});
  CliqueSearchConfig config;
  config.sizes = {4};
  config.starts = 5;
  config.seed = 77;
  std::vector<std::uint64_t> found_a, found_b;
  const auto assignments = assign_with(g, "hdrf", 8);
  (void)run_clique_searches(g, assignments, ClusterModel{}, config, &found_a);
  (void)run_clique_searches(g, assignments, ClusterModel{}, config, &found_b);
  EXPECT_EQ(found_a, found_b);
}

TEST(CliqueSearchTest, OneBlockPerSize) {
  const Graph g = make_complete(6);
  CliqueSearchConfig config;  // default sizes {3,4,5}
  const auto result = run_clique_searches(g, assign_with(g, "hash", 4),
                                          ClusterModel{}, config);
  EXPECT_EQ(result.block_seconds.size(), 3u);
}

}  // namespace
}  // namespace adwise
