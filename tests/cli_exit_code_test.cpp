// Exit-code contract of the partition_file CLI: one subprocess test per
// documented class, each driven through the ADWISE_FAULT_* environment
// hooks the chaos harness uses — a supervisor must be able to tell "free
// disk space and resume" (5) apart from "retry later" (4), "the input is
// garbage" (3) and "you called it wrong" (2) without parsing stderr.
//
// The binary path is injected at compile time (ADWISE_PARTITION_FILE_BIN);
// when the examples are not built the whole suite skips.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "src/graph/generators.h"
#include "src/io/adw_format.h"

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace adwise {
namespace {

#ifndef ADWISE_PARTITION_FILE_BIN

TEST(CliExitCodeTest, RequiresPartitionFileBinary) {
  GTEST_SKIP() << "partition_file binary not built into this configuration";
}

#else

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

// Runs the command under a shell; returns the process exit code (-1 for
// abnormal termination).
int exit_code(const std::string& command) {
  const int status = std::system(command.c_str());
  if (!WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

class CliExitCodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "cli_exit_" +
            std::to_string(static_cast<long>(::getpid())) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
    adw_path_ = base_ + ".adw";
    const Graph g = make_erdos_renyi(200, 2500, 3);
    AdwWriter::Options wopts;
    wopts.with_crc = true;
    write_adw_file(adw_path_, g.edges(), wopts);
  }

  void TearDown() override {
    const char* suffixes[] = {".adw",         ".out",  ".out.partial",
                              ".ckpt",        ".ckpt.tmp", ".ckpt.inband.tmp",
                              ".err",         ".bad.adw"};
    for (const char* s : suffixes) std::remove((base_ + s).c_str());
  }

  // `env` is a space-separated KEY=VALUE prefix ("" for none).
  std::string cmd(const std::string& env, const std::string& args) const {
    return env + (env.empty() ? "" : " ") +
           std::string(ADWISE_PARTITION_FILE_BIN) + " " + args + " 2> " +
           base_ + ".err";
  }

  [[nodiscard]] std::string stderr_text() const {
    return read_file(base_ + ".err");
  }

  std::string base_, adw_path_;
};

TEST_F(CliExitCodeTest, CleanRunExitsZero) {
  EXPECT_EQ(exit_code(cmd("", adw_path_ + " hdrf 8 -1 --output " + base_ +
                                  ".out")),
            0)
      << stderr_text();
}

TEST_F(CliExitCodeTest, UsageErrorsExitTwo) {
  EXPECT_EQ(exit_code(cmd("", "")), 2);
  EXPECT_EQ(exit_code(cmd("", adw_path_ + " hdrf 8 -1 --no-such-flag")), 2);
  EXPECT_EQ(exit_code(cmd("", adw_path_ + " hdrf 8 -1 --checkpoint-every")),
            2);
}

TEST_F(CliExitCodeTest, UnknownAlgorithmExitsTwoAndListsNames) {
  // A typo'd algorithm is a usage error, and the message must enumerate
  // the registry so the caller can self-correct without reading code.
  EXPECT_EQ(exit_code(cmd("", adw_path_ + " nope 8 -1")), 2);
  const std::string err = stderr_text();
  EXPECT_NE(err.find("unknown algorithm 'nope'"), std::string::npos) << err;
  for (const char* name : {"adwise", "hdrf", "fennel", "ldg", "ebv", "2ps"}) {
    EXPECT_NE(err.find(name), std::string::npos)
        << "missing '" << name << "' in: " << err;
  }
}

TEST_F(CliExitCodeTest, CorruptInputExitsThree) {
  // Injected bitflips on the read path surface as CRC mismatches — the
  // "never retry, the bytes are wrong" class.
  EXPECT_EQ(
      exit_code(cmd("ADWISE_FAULT_SEED=9 ADWISE_FAULT_BITFLIP_P=0.5",
                    adw_path_ + " hdrf 8 -1 --output " + base_ + ".out")),
      3)
      << stderr_text();
  EXPECT_NE(stderr_text().find("CRC"), std::string::npos) << stderr_text();
}

TEST_F(CliExitCodeTest, TransientBudgetExhaustionExitsFour) {
  // More injected open failures than the retry budget (4 attempts) can
  // absorb — the "back off and rerun" class.
  EXPECT_EQ(
      exit_code(cmd("ADWISE_FAULT_FAIL_OPENS=16",
                    adw_path_ + " hdrf 8 -1 --output " + base_ + ".out")),
      4)
      << stderr_text();
  EXPECT_NE(stderr_text().find("attempts"), std::string::npos)
      << stderr_text();
}

TEST_F(CliExitCodeTest, DiskFullExitsFive) {
  // ENOSPC injected at the sink-durability fsync of the first checkpoint
  // boundary. Sink durability failures abort in BOTH checkpoint modes —
  // the checkpoint accounts for those bytes, so nothing can be recovered
  // past an unaccountable sink.
  EXPECT_EQ(exit_code(cmd("ADWISE_FAULT_ENOSPC_P=1.0",
                          adw_path_ + " hdrf 8 -1 --output " + base_ +
                              ".out --checkpoint " + base_ +
                              ".ckpt --checkpoint-every 200")),
            5)
      << stderr_text();
  EXPECT_NE(stderr_text().find("disk full"), std::string::npos)
      << stderr_text();
}

TEST_F(CliExitCodeTest, StrictCheckpointFailuresAbortDegradedContinues) {
  // A checkpoint path in a directory that does not exist makes EVERY
  // durable checkpoint write fail (while the output sink keeps working).
  // Degraded mode — the default — must finish with exit 0 and a warning;
  // --strict-checkpoints must turn the same run into a loud non-zero exit.
  const std::string run_args = adw_path_ + " hdrf 8 -1 --output " + base_ +
                               ".out --checkpoint " + base_ +
                               ".no_such_dir/run.ckpt --checkpoint-every 150";
  EXPECT_EQ(exit_code(cmd("", run_args)), 0) << stderr_text();
  EXPECT_NE(stderr_text().find("checkpoint"), std::string::npos)
      << "degraded run did not warn about the failed checkpoints: "
      << stderr_text();

  std::remove((base_ + ".out").c_str());
  const int strict = exit_code(cmd("", run_args + " --strict-checkpoints"));
  EXPECT_NE(strict, 0) << "strict mode swallowed a checkpoint write failure";
}

TEST_F(CliExitCodeTest, OtherFailuresExitOne) {
  EXPECT_EQ(exit_code(cmd("", base_ + ".does_not_exist.txt hdrf 8 -1")), 1)
      << stderr_text();
}

#endif  // ADWISE_PARTITION_FILE_BIN

}  // namespace
}  // namespace adwise
