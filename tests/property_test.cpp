// Model-based randomized tests: core data structures are driven with long
// random operation sequences and checked against trivially correct
// reference models after every step.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/common/replica_set.h"
#include "src/common/rng.h"
#include "src/core/window.h"
#include "src/engine/cluster_model.h"
#include "src/graph/generators.h"
#include "src/partition/partition_state.h"

namespace adwise {
namespace {

// --- ReplicaSet vs. std::set ---------------------------------------------------

class ReplicaSetModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplicaSetModelTest, MatchesStdSetUnderRandomOps) {
  Rng rng(GetParam());
  ReplicaSet actual;
  std::set<std::uint32_t> model;
  for (int step = 0; step < 4000; ++step) {
    // Mix of small and spill-range ids.
    const auto id = static_cast<std::uint32_t>(
        rng.next_bool(0.7) ? rng.next_below(64) : rng.next_below(300));
    switch (rng.next_below(3)) {
      case 0: {
        EXPECT_EQ(actual.insert(id), model.insert(id).second);
        break;
      }
      case 1: {
        EXPECT_EQ(actual.erase(id), model.erase(id) > 0);
        break;
      }
      default: {
        EXPECT_EQ(actual.contains(id), model.count(id) > 0);
        break;
      }
    }
    ASSERT_EQ(actual.size(), model.size());
    if (!model.empty()) {
      EXPECT_EQ(actual.first(), *model.begin());
    }
  }
  // Final full sweep.
  std::vector<std::uint32_t> contents;
  actual.for_each([&](std::uint32_t id) { contents.push_back(id); });
  EXPECT_EQ(contents, std::vector<std::uint32_t>(model.begin(), model.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicaSetModelTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- EdgeWindow vs. a map-based model ---------------------------------------------

class WindowModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WindowModelTest, IncidenceAndCandidatesMatchModel) {
  constexpr VertexId kVertices = 40;
  Rng rng(GetParam());
  EdgeWindow window(kVertices);

  struct ModelSlot {
    Edge edge;
    bool candidate = false;
  };
  std::map<std::uint32_t, ModelSlot> model;  // live slot id -> state

  auto check_incidence = [&](VertexId v) {
    std::multiset<std::uint32_t> actual;
    window.for_each_incident(v, [&](std::uint32_t id) { actual.insert(id); });
    std::multiset<std::uint32_t> expected;
    for (const auto& [id, slot] : model) {
      if (slot.edge.u == v || slot.edge.v == v) expected.insert(id);
    }
    ASSERT_EQ(actual, expected) << "vertex " << v;
  };

  for (int step = 0; step < 3000; ++step) {
    const auto op = rng.next_below(4);
    if (op == 0 || model.size() < 3) {
      const Edge e{static_cast<VertexId>(rng.next_below(kVertices)),
                   static_cast<VertexId>(rng.next_below(kVertices))};
      if (e.u == e.v) continue;
      const auto id = window.insert(e);
      ASSERT_TRUE(model.emplace(id, ModelSlot{e, false}).second)
          << "slot id reused while occupied";
    } else if (op == 1) {
      // Remove a random live slot.
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.next_below(model.size())));
      window.remove(it->first);
      model.erase(it);
    } else if (op == 2) {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.next_below(model.size())));
      const bool make_candidate = rng.next_bool(0.5);
      window.set_candidate(it->first, make_candidate);
      it->second.candidate = make_candidate;
    } else {
      check_incidence(static_cast<VertexId>(rng.next_below(kVertices)));
    }
    ASSERT_EQ(window.size(), model.size());
    // Candidate set equality.
    std::set<std::uint32_t> actual_candidates(window.candidates().begin(),
                                              window.candidates().end());
    std::set<std::uint32_t> expected_candidates;
    for (const auto& [id, slot] : model) {
      if (slot.candidate) expected_candidates.insert(id);
      EXPECT_EQ(window.is_candidate(id), slot.candidate);
    }
    ASSERT_EQ(actual_candidates, expected_candidates);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowModelTest,
                         ::testing::Values(11, 22, 33, 44, 55));

// --- PartitionState min/max vs. recomputation --------------------------------------

class PartitionStateModelTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PartitionStateModelTest, BalanceTrackingMatchesBruteForce) {
  Rng rng(GetParam());
  constexpr std::uint32_t k = 7;
  PartitionState state(k, 50);
  std::vector<std::uint64_t> sizes(k, 0);
  for (int step = 0; step < 5000; ++step) {
    const Edge e{static_cast<VertexId>(rng.next_below(50)),
                 static_cast<VertexId>(rng.next_below(50))};
    const auto p = static_cast<PartitionId>(rng.next_below(k));
    state.assign(e, p);
    ++sizes[p];
    const auto max_it = *std::max_element(sizes.begin(), sizes.end());
    const auto min_it = *std::min_element(sizes.begin(), sizes.end());
    ASSERT_EQ(state.max_partition_size(), max_it);
    ASSERT_EQ(state.min_partition_size(), min_it);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionStateModelTest,
                         ::testing::Values(7, 8, 9));

}  // namespace
}  // namespace adwise
