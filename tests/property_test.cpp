// Model-based randomized tests: core data structures are driven with long
// random operation sequences and checked against trivially correct
// reference models after every step.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/replica_set.h"
#include "src/common/rng.h"
#include "src/core/adwise_partitioner.h"
#include "src/core/window.h"
#include "src/engine/cluster_model.h"
#include "src/graph/edge_stream.h"
#include "src/graph/generators.h"
#include "src/partition/hdrf_partitioner.h"
#include "src/partition/partition_state.h"

namespace adwise {
namespace {

// --- ReplicaSet vs. std::set ---------------------------------------------------

class ReplicaSetModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplicaSetModelTest, MatchesStdSetUnderRandomOps) {
  Rng rng(GetParam());
  ReplicaSet actual;
  std::set<std::uint32_t> model;
  for (int step = 0; step < 4000; ++step) {
    // Mix of small and spill-range ids.
    const auto id = static_cast<std::uint32_t>(
        rng.next_bool(0.7) ? rng.next_below(64) : rng.next_below(300));
    switch (rng.next_below(3)) {
      case 0: {
        EXPECT_EQ(actual.insert(id), model.insert(id).second);
        break;
      }
      case 1: {
        EXPECT_EQ(actual.erase(id), model.erase(id) > 0);
        break;
      }
      default: {
        EXPECT_EQ(actual.contains(id), model.count(id) > 0);
        break;
      }
    }
    ASSERT_EQ(actual.size(), model.size());
    if (!model.empty()) {
      EXPECT_EQ(actual.first(), *model.begin());
    }
  }
  // Final full sweep.
  std::vector<std::uint32_t> contents;
  actual.for_each([&](std::uint32_t id) { contents.push_back(id); });
  EXPECT_EQ(contents, std::vector<std::uint32_t>(model.begin(), model.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicaSetModelTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- EdgeWindow vs. a map-based model ---------------------------------------------

class WindowModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WindowModelTest, IncidenceAndCandidatesMatchModel) {
  constexpr VertexId kVertices = 40;
  Rng rng(GetParam());
  EdgeWindow window(kVertices);

  struct ModelSlot {
    Edge edge;
    bool candidate = false;
  };
  std::map<std::uint32_t, ModelSlot> model;  // live slot id -> state

  auto check_incidence = [&](VertexId v) {
    std::multiset<std::uint32_t> actual;
    window.for_each_incident(v, [&](std::uint32_t id) { actual.insert(id); });
    std::multiset<std::uint32_t> expected;
    for (const auto& [id, slot] : model) {
      if (slot.edge.u == v || slot.edge.v == v) expected.insert(id);
    }
    ASSERT_EQ(actual, expected) << "vertex " << v;
  };

  for (int step = 0; step < 3000; ++step) {
    const auto op = rng.next_below(4);
    if (op == 0 || model.size() < 3) {
      const Edge e{static_cast<VertexId>(rng.next_below(kVertices)),
                   static_cast<VertexId>(rng.next_below(kVertices))};
      if (e.u == e.v) continue;
      const auto id = window.insert(e);
      ASSERT_TRUE(model.emplace(id, ModelSlot{e, false}).second)
          << "slot id reused while occupied";
    } else if (op == 1) {
      // Remove a random live slot.
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.next_below(model.size())));
      window.remove(it->first);
      model.erase(it);
    } else if (op == 2) {
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.next_below(model.size())));
      const bool make_candidate = rng.next_bool(0.5);
      window.set_candidate(it->first, make_candidate);
      it->second.candidate = make_candidate;
    } else {
      check_incidence(static_cast<VertexId>(rng.next_below(kVertices)));
    }
    ASSERT_EQ(window.size(), model.size());
    // Candidate set equality.
    std::set<std::uint32_t> actual_candidates(window.candidates().begin(),
                                              window.candidates().end());
    std::set<std::uint32_t> expected_candidates;
    for (const auto& [id, slot] : model) {
      if (slot.candidate) expected_candidates.insert(id);
      EXPECT_EQ(window.is_candidate(id), slot.candidate);
    }
    ASSERT_EQ(actual_candidates, expected_candidates);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowModelTest,
                         ::testing::Values(11, 22, 33, 44, 55));

// --- PartitionState min/max vs. recomputation --------------------------------------

class PartitionStateModelTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PartitionStateModelTest, BalanceTrackingMatchesBruteForce) {
  Rng rng(GetParam());
  constexpr std::uint32_t k = 7;
  PartitionState state(k, 50);
  std::vector<std::uint64_t> sizes(k, 0);
  for (int step = 0; step < 5000; ++step) {
    const Edge e{static_cast<VertexId>(rng.next_below(50)),
                 static_cast<VertexId>(rng.next_below(50))};
    const auto p = static_cast<PartitionId>(rng.next_below(k));
    state.assign(e, p);
    ++sizes[p];
    const auto max_it = *std::max_element(sizes.begin(), sizes.end());
    const auto min_it = *std::min_element(sizes.begin(), sizes.end());
    ASSERT_EQ(state.max_partition_size(), max_it);
    ASSERT_EQ(state.min_partition_size(), min_it);
    // Incremental least_loaded(): smallest id at the minimum size, checked
    // against a full scan after every single assignment.
    const auto least = static_cast<PartitionId>(
        std::min_element(sizes.begin(), sizes.end()) - sizes.begin());
    ASSERT_EQ(state.least_loaded(), least);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionStateModelTest,
                         ::testing::Values(7, 8, 9));

// --- Sparse vs. dense placement: decision identity ---------------------------------
//
// The sparse candidate-partition search (scoring.h invariant) must make
// bit-identical decisions to the dense O(k) reference scan: same per-edge
// targets, hence same replication degree and balance, across window modes,
// clustering on/off, and k both below and above the ReplicaSet inline range.

struct SparseDenseCase {
  std::string graph;  // "rmat" (skewed) or "ba" (power-law tail)
  bool lazy = true;
  bool clustering = true;
  std::uint32_t k = 32;
};

class SparseVsDenseTest : public ::testing::TestWithParam<SparseDenseCase> {
 protected:
  static Graph graph_for(const std::string& name) {
    if (name == "rmat") {
      return make_rmat({.scale = 10, .num_edges = 4000, .seed = 21});
    }
    return make_barabasi_albert(900, 4, 23);
  }

  struct Run {
    std::vector<Assignment> assignments;
    double replication = 0.0;
    double imbalance = 0.0;
    AdwisePartitioner::Report report;
  };

  static Run run(const Graph& graph, const SparseDenseCase& c,
                 ScoringPath path) {
    AdwiseOptions opts;
    opts.adaptive_window = false;
    opts.initial_window = 32;
    opts.lazy_traversal = c.lazy;
    opts.clustering_score = c.clustering;
    opts.scoring_path = path;
    AdwisePartitioner partitioner(opts);
    PartitionState state(c.k, graph.num_vertices());
    const auto edges = ordered_edges(graph, StreamOrder::kShuffled, 13);
    VectorEdgeStream stream(edges);
    Run out;
    partitioner.partition(stream, state,
                          [&](const Edge& e, PartitionId p) {
                            out.assignments.push_back({e, p});
                          });
    out.replication = state.replication_degree();
    out.imbalance = state.imbalance();
    out.report = partitioner.last_report();
    return out;
  }
};

TEST_P(SparseVsDenseTest, IdenticalDecisionsAndCheaperScans) {
  const auto& c = GetParam();
  const Graph graph = graph_for(c.graph);
  const Run sparse = run(graph, c, ScoringPath::kSparse);
  const Run dense = run(graph, c, ScoringPath::kDense);
  const Run autod = run(graph, c, ScoringPath::kAuto);

  ASSERT_EQ(sparse.assignments.size(), graph.num_edges());
  ASSERT_EQ(sparse.assignments.size(), dense.assignments.size());
  ASSERT_EQ(autod.assignments.size(), dense.assignments.size());
  for (std::size_t i = 0; i < sparse.assignments.size(); ++i) {
    ASSERT_EQ(sparse.assignments[i], dense.assignments[i])
        << "diverged at assignment " << i;
    ASSERT_EQ(autod.assignments[i], dense.assignments[i])
        << "auto path diverged at assignment " << i;
  }
  EXPECT_DOUBLE_EQ(sparse.replication, dense.replication);
  EXPECT_DOUBLE_EQ(sparse.imbalance, dense.imbalance);
  EXPECT_DOUBLE_EQ(autod.replication, dense.replication);

  // Same score computations, strictly fewer partitions scanned (that is the
  // point of the sparse path); the dense path scans exactly k per score.
  EXPECT_EQ(sparse.report.score_computations, dense.report.score_computations);
  EXPECT_EQ(dense.report.candidate_partitions,
            dense.report.score_computations * c.k);
  EXPECT_LT(sparse.report.candidate_partitions,
            dense.report.candidate_partitions);
  // Pinned paths resolve every placement with their own implementation;
  // kAuto splits between the two and never scans more than the dense run.
  EXPECT_EQ(sparse.report.dense_placements, 0u);
  EXPECT_EQ(dense.report.sparse_placements, 0u);
  EXPECT_EQ(autod.report.dense_placements + autod.report.sparse_placements,
            dense.report.dense_placements);
  EXPECT_LE(autod.report.candidate_partitions,
            dense.report.candidate_partitions);
}

std::vector<SparseDenseCase> sparse_dense_cases() {
  std::vector<SparseDenseCase> cases;
  for (const char* graph : {"rmat", "ba"}) {
    for (const bool lazy : {true, false}) {
      for (const bool clustering : {true, false}) {
        for (const std::uint32_t k : {4u, 32u, 100u}) {
          cases.push_back({graph, lazy, clustering, k});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SparseVsDenseTest, ::testing::ValuesIn(sparse_dense_cases()),
    [](const ::testing::TestParamInfo<SparseDenseCase>& info) {
      return info.param.graph + (info.param.lazy ? "_lazy" : "_eager") +
             (info.param.clustering ? "_cs" : "_nocs") + "_k" +
             std::to_string(info.param.k);
    });

// --- Parallel vs. serial scoring: decision identity --------------------------------
//
// The parallel batch scorer computes scores on a work-stealing pool against
// a frozen PartitionSnapshot and merges every effect (score application,
// threshold EWMA, promotion decisions) serially in batch order — so any
// thread count must produce bit-identical placements to the fully serial
// run (snapshot-consistency invariant, scoring.h). parallel_batch_min is
// dropped to 2 so even small windows exercise the pool.

struct ParallelSerialCase {
  std::string graph;  // "rmat" (skewed) or "ba" (power-law tail)
  std::uint32_t threads = 2;
  bool lazy = true;
  std::uint32_t k = 32;
};

class ParallelVsSerialTest
    : public ::testing::TestWithParam<ParallelSerialCase> {
 protected:
  static Graph graph_for(const std::string& name) {
    if (name == "rmat") {
      return make_rmat({.scale = 10, .num_edges = 4000, .seed = 21});
    }
    return make_barabasi_albert(900, 4, 23);
  }

  struct Run {
    std::vector<Assignment> assignments;
    double replication = 0.0;
    double imbalance = 0.0;
    AdwisePartitioner::Report report;
  };

  static Run run(const Graph& graph, const ParallelSerialCase& c,
                 std::uint32_t threads) {
    AdwiseOptions opts;
    opts.adaptive_window = false;
    opts.initial_window = 32;
    opts.lazy_traversal = c.lazy;
    opts.num_score_threads = threads;
    opts.parallel_batch_min = 2;
    AdwisePartitioner partitioner(opts);
    PartitionState state(c.k, graph.num_vertices());
    const auto edges = ordered_edges(graph, StreamOrder::kShuffled, 13);
    VectorEdgeStream stream(edges);
    Run out;
    partitioner.partition(stream, state,
                          [&](const Edge& e, PartitionId p) {
                            out.assignments.push_back({e, p});
                          });
    out.replication = state.replication_degree();
    out.imbalance = state.imbalance();
    out.report = partitioner.last_report();
    return out;
  }
};

TEST_P(ParallelVsSerialTest, BitIdenticalPlacements) {
  const auto& c = GetParam();
  const Graph graph = graph_for(c.graph);
  const Run serial = run(graph, c, /*threads=*/0);
  const Run parallel = run(graph, c, c.threads);

  ASSERT_EQ(serial.assignments.size(), graph.num_edges());
  ASSERT_EQ(parallel.assignments.size(), serial.assignments.size());
  for (std::size_t i = 0; i < serial.assignments.size(); ++i) {
    ASSERT_EQ(parallel.assignments[i], serial.assignments[i])
        << "diverged at assignment " << i << " with " << c.threads
        << " threads";
  }
  EXPECT_DOUBLE_EQ(parallel.replication, serial.replication);
  EXPECT_DOUBLE_EQ(parallel.imbalance, serial.imbalance);
  // The whole decision trace matches, not just the placements.
  EXPECT_EQ(parallel.report.score_computations,
            serial.report.score_computations);
  EXPECT_EQ(parallel.report.candidate_partitions,
            serial.report.candidate_partitions);
  EXPECT_EQ(parallel.report.heap_pops, serial.report.heap_pops);
  EXPECT_EQ(parallel.report.forced_secondary, serial.report.forced_secondary);
}

std::vector<ParallelSerialCase> parallel_serial_cases() {
  std::vector<ParallelSerialCase> cases;
  for (const char* graph : {"rmat", "ba"}) {
    for (const std::uint32_t threads : {1u, 2u, 8u}) {
      for (const bool lazy : {true, false}) {
        for (const std::uint32_t k : {4u, 32u, 100u}) {
          cases.push_back({graph, threads, lazy, k});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ParallelVsSerialTest, ::testing::ValuesIn(parallel_serial_cases()),
    [](const ::testing::TestParamInfo<ParallelSerialCase>& info) {
      return info.param.graph + "_t" + std::to_string(info.param.threads) +
             (info.param.lazy ? "_lazy" : "_eager") + "_k" +
             std::to_string(info.param.k);
    });

// --- Batched refill classification: decision identity and quality band -------------
//
// BatchedRefill::kExact batches each refill burst, splitting at endpoint
// conflicts, so every edge's clustering neighborhood — the only score input
// a batch-mate could perturb — matches what serial classification saw; the
// scores are applied and routed in insertion order. It must therefore be
// bit-identical to kOff for any thread count, including across adaptive
// window growth (whose bursts are the batches worth pooling).
// BatchedRefill::kFull trades the identity for refill hysteresis; its
// replication degree must stay within 2% of kOff.

struct BatchedRefillCase {
  std::string graph;  // "rmat" (skewed) or "ba" (power-law tail)
  std::uint32_t threads = 0;
  std::uint32_t k = 32;
  bool adaptive_window = true;
};

class BatchedRefillTest : public ::testing::TestWithParam<BatchedRefillCase> {
 protected:
  static Graph graph_for(const std::string& name) {
    if (name == "rmat") {
      return make_rmat({.scale = 10, .num_edges = 4000, .seed = 21});
    }
    return make_barabasi_albert(900, 4, 23);
  }

  struct Run {
    std::vector<Assignment> assignments;
    double replication = 0.0;
    AdwisePartitioner::Report report;
  };

  static Run run(const Graph& graph, const BatchedRefillCase& c,
                 BatchedRefill refill, std::uint32_t threads) {
    AdwiseOptions opts;
    opts.adaptive_window = c.adaptive_window;
    opts.initial_window = c.adaptive_window ? 1 : 32;
    opts.max_window = 256;
    opts.lazy_traversal = true;
    opts.batched_refill = refill;
    opts.num_score_threads = threads;
    // Pin the pool routing so every thread count exercises the pool; the
    // adaptive cutoff is timing-driven and must not (and does not) change
    // decisions, but pinning keeps the pool engaged deterministically.
    opts.parallel_batch_min = 2;
    opts.adaptive_batch_cutoff = false;
    AdwisePartitioner partitioner(opts);
    PartitionState state(c.k, graph.num_vertices());
    const auto edges = ordered_edges(graph, StreamOrder::kShuffled, 13);
    VectorEdgeStream stream(edges);
    Run out;
    partitioner.partition(stream, state,
                          [&](const Edge& e, PartitionId p) {
                            out.assignments.push_back({e, p});
                          });
    out.replication = state.replication_degree();
    out.report = partitioner.last_report();
    return out;
  }
};

TEST_P(BatchedRefillTest, ExactIsBitIdenticalToOff) {
  const auto& c = GetParam();
  const Graph graph = graph_for(c.graph);
  const Run off = run(graph, c, BatchedRefill::kOff, /*threads=*/0);
  const Run exact = run(graph, c, BatchedRefill::kExact, c.threads);

  ASSERT_EQ(off.assignments.size(), graph.num_edges());
  ASSERT_EQ(exact.assignments.size(), off.assignments.size());
  for (std::size_t i = 0; i < off.assignments.size(); ++i) {
    ASSERT_EQ(exact.assignments[i], off.assignments[i])
        << "diverged at assignment " << i << " with " << c.threads
        << " threads";
  }
  EXPECT_DOUBLE_EQ(exact.replication, off.replication);
  // The full decision trace matches: same scores computed, same heap
  // traffic, same drains — batching only changed when scores were
  // computed, never which.
  EXPECT_EQ(exact.report.score_computations, off.report.score_computations);
  EXPECT_EQ(exact.report.heap_pops, off.report.heap_pops);
  EXPECT_EQ(exact.report.forced_secondary, off.report.forced_secondary);
  EXPECT_EQ(exact.report.final_drain_budget, off.report.final_drain_budget);
  // The exact mode actually routed the refills through batches.
  EXPECT_EQ(exact.report.refill_batch_items, graph.num_edges());
  EXPECT_EQ(off.report.refill_batch_items, 0u);
}

TEST_P(BatchedRefillTest, FullStaysInsideQualityBand) {
  const auto& c = GetParam();
  const Graph graph = graph_for(c.graph);
  const Run off = run(graph, c, BatchedRefill::kOff, /*threads=*/0);
  const Run full = run(graph, c, BatchedRefill::kFull, c.threads);

  ASSERT_EQ(full.assignments.size(), off.assignments.size());
  EXPECT_EQ(full.report.refill_batch_items, graph.num_edges());
  // Hysteresis may change decisions; replication must stay within 2%.
  EXPECT_LE(full.replication, off.replication * 1.02);
  EXPECT_GE(full.replication, off.replication * 0.98);
}

TEST_P(BatchedRefillTest, FullIsThreadCountInvariant) {
  const auto& c = GetParam();
  const Graph graph = graph_for(c.graph);
  const Run serial = run(graph, c, BatchedRefill::kFull, /*threads=*/0);
  const Run parallel = run(graph, c, BatchedRefill::kFull, c.threads);
  ASSERT_EQ(serial.assignments.size(), parallel.assignments.size());
  for (std::size_t i = 0; i < serial.assignments.size(); ++i) {
    ASSERT_EQ(parallel.assignments[i], serial.assignments[i])
        << "kFull diverged across thread counts at assignment " << i;
  }
}

std::vector<BatchedRefillCase> batched_refill_cases() {
  std::vector<BatchedRefillCase> cases;
  for (const char* graph : {"rmat", "ba"}) {
    for (const std::uint32_t threads : {1u, 2u, 8u}) {
      for (const std::uint32_t k : {4u, 32u, 100u}) {
        cases.push_back({graph, threads, k, /*adaptive_window=*/true});
      }
    }
    // One fixed-window case per graph: steady-state single-edge refills.
    cases.push_back({graph, 2u, 32u, /*adaptive_window=*/false});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, BatchedRefillTest, ::testing::ValuesIn(batched_refill_cases()),
    [](const ::testing::TestParamInfo<BatchedRefillCase>& info) {
      return info.param.graph + "_t" + std::to_string(info.param.threads) +
             "_k" + std::to_string(info.param.k) +
             (info.param.adaptive_window ? "_grow" : "_fixed");
    });

// --- HDRF sparse vs. dense ----------------------------------------------------------

class HdrfSparseVsDenseTest : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(HdrfSparseVsDenseTest, PlacementsIdentical) {
  const std::uint32_t k = GetParam();
  const Graph graph = make_rmat({.scale = 10, .num_edges = 4000, .seed = 29});
  HdrfPartitioner sparse(1.1, 1e-9, /*sparse=*/true);
  HdrfPartitioner dense(1.1, 1e-9, /*sparse=*/false);
  PartitionState state(k, graph.num_vertices());
  for (const Edge& e : graph.edges()) {
    const PartitionId ps = sparse.place(e, state);
    const PartitionId pd = dense.place(e, state);
    ASSERT_EQ(ps, pd) << "edge (" << e.u << ", " << e.v << ")";
    state.assign(e, ps);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, HdrfSparseVsDenseTest,
                         ::testing::Values(4u, 32u, 100u));

// --- Heap vs. linear candidate selection -------------------------------------------
//
// With the threshold forced to -inf and refresh interval 1, both selection
// strategies rescore every candidate each round and the argmax total order
// (score desc, insertion sequence asc) fully determines the decision: the
// heap must reproduce the linear scan exactly.

TEST(HeapSelectionTest, MatchesLinearWhenEverythingIsCandidate) {
  const Graph graph = make_community_graph({.num_communities = 25, .seed = 41});
  auto run = [&](bool heap) {
    AdwiseOptions opts;
    opts.adaptive_window = false;
    opts.initial_window = 16;
    opts.lazy_traversal = true;
    opts.candidate_epsilon = -1e18;
    opts.candidate_refresh_interval = 1;
    opts.heap_selection = heap;
    AdwisePartitioner partitioner(opts);
    PartitionState state(8, graph.num_vertices());
    const auto edges = ordered_edges(graph, StreamOrder::kShuffled, 19);
    VectorEdgeStream stream(edges);
    std::vector<Assignment> assignments;
    partitioner.partition(stream, state,
                          [&](const Edge& e, PartitionId p) {
                            assignments.push_back({e, p});
                          });
    return assignments;
  };
  const auto with_heap = run(true);
  const auto with_linear = run(false);
  ASSERT_EQ(with_heap.size(), with_linear.size());
  for (std::size_t i = 0; i < with_heap.size(); ++i) {
    ASSERT_EQ(with_heap[i], with_linear[i]) << "diverged at assignment " << i;
  }
}

}  // namespace
}  // namespace adwise
