// Tests for spotlight partitioning (§III-D): partition groups, merge
// correctness, the replication-vs-spread property of Fig. 8, and the
// sharded parallel-loading path (per-instance .adw shard streams on real
// threads, bit-identical to the sequential single-file run).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/core/adwise_partitioner.h"
#include "src/graph/generators.h"
#include "src/io/adw_format.h"
#include "src/io/adw_shards.h"
#include "src/io/binary_stream.h"
#include "src/partition/registry.h"
#include "src/partition/spotlight.h"

namespace adwise {
namespace {

PartitionerFactory factory_for(const std::string& name) {
  return [name](std::uint32_t instance, std::uint32_t local_k) {
    return make_baseline_partitioner(name, local_k, /*seed=*/instance);
  };
}

TEST(SpotlightGroupTest, DisjointWhenSpreadTimesZEqualsK) {
  SpotlightOptions opts{.k = 32, .num_partitioners = 8, .spread = 4};
  std::vector<bool> covered(32, false);
  for (std::uint32_t i = 0; i < 8; ++i) {
    for (const PartitionId p : spotlight_group(opts, i)) {
      EXPECT_FALSE(covered[p]) << "partition " << p << " owned twice";
      covered[p] = true;
    }
  }
  for (const bool c : covered) EXPECT_TRUE(c);
}

TEST(SpotlightGroupTest, FullSpreadCoversEverything) {
  SpotlightOptions opts{.k = 32, .num_partitioners = 8, .spread = 32};
  const auto group = spotlight_group(opts, 3);
  EXPECT_EQ(group.size(), 32u);
}

TEST(SpotlightGroupTest, IntermediateSpreadWraps) {
  SpotlightOptions opts{.k = 32, .num_partitioners = 8, .spread = 16};
  const auto g0 = spotlight_group(opts, 0);
  const auto g2 = spotlight_group(opts, 2);
  EXPECT_EQ(g0, g2);  // instances 0 and 2 share the group {0..15}
  const auto g1 = spotlight_group(opts, 1);
  EXPECT_EQ(g1.front(), 16u);
}

TEST(SpotlightRunTest, AssignsEveryEdgeExactlyOnce) {
  const Graph g = make_community_graph({.num_communities = 50, .seed = 4});
  SpotlightOptions opts{.k = 16, .num_partitioners = 4, .spread = 4};
  const auto result = run_spotlight(g.edges(), g.num_vertices(),
                                    factory_for("hdrf"), opts);
  EXPECT_EQ(result.assignments.size(), g.num_edges());
  EXPECT_EQ(result.merged.assigned_edges(), g.num_edges());
  for (const Assignment& a : result.assignments) {
    EXPECT_LT(a.partition, 16u);
  }
}

TEST(SpotlightRunTest, InstancesStayInTheirGroups) {
  const Graph g = make_erdos_renyi(400, 4000, 6);
  SpotlightOptions opts{.k = 8, .num_partitioners = 4, .spread = 2};
  const auto chunks = chunk_edges(g.edges(), 4);
  const auto result = run_spotlight(g.edges(), g.num_vertices(),
                                    factory_for("hash"), opts);
  // Assignments are appended chunk by chunk; recover each instance's range
  // and verify it only used its own partition group.
  std::size_t offset = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto group = spotlight_group(opts, i);
    for (std::size_t j = 0; j < chunks[i].size(); ++j) {
      const PartitionId p = result.assignments[offset + j].partition;
      EXPECT_TRUE(std::find(group.begin(), group.end(), p) != group.end())
          << "instance " << i << " wrote partition " << p;
    }
    offset += chunks[i].size();
  }
}

TEST(SpotlightRunTest, ThreadedAndSequentialAgree) {
  const Graph g = make_community_graph({.num_communities = 30, .seed = 13});
  SpotlightOptions seq{.k = 8, .num_partitioners = 4, .spread = 2,
                       .run_threads = false};
  SpotlightOptions par = seq;
  par.run_threads = true;
  const auto a = run_spotlight(g.edges(), g.num_vertices(),
                               factory_for("hdrf"), seq);
  const auto b = run_spotlight(g.edges(), g.num_vertices(),
                               factory_for("hdrf"), par);
  ASSERT_EQ(a.assignments.size(), b.assignments.size());
  for (std::size_t i = 0; i < a.assignments.size(); ++i) {
    EXPECT_EQ(a.assignments[i].partition, b.assignments[i].partition);
  }
}

TEST(SpotlightRunTest, WallLatencyIsMaxOfInstances) {
  const Graph g = make_erdos_renyi(300, 2000, 2);
  SpotlightOptions opts{.k = 8, .num_partitioners = 4, .spread = 2};
  const auto result = run_spotlight(g.edges(), g.num_vertices(),
                                    factory_for("hdrf"), opts);
  ASSERT_EQ(result.instance_seconds.size(), 4u);
  double max_seen = 0;
  for (const double s : result.instance_seconds) {
    max_seen = std::max(max_seen, s);
  }
  EXPECT_DOUBLE_EQ(result.wall_seconds, max_seen);
}

TEST(SpotlightRunTest, SpreadOfOnePinsEachInstanceToOnePartition) {
  const Graph g = make_erdos_renyi(200, 1500, 3);
  SpotlightOptions opts{.k = 4, .num_partitioners = 4, .spread = 1};
  const auto result = run_spotlight(g.edges(), g.num_vertices(),
                                    factory_for("hdrf"), opts);
  // Instance i writes only partition i; chunk sizes are near-equal, so the
  // global partitioning is balanced by construction.
  EXPECT_LT(result.merged.imbalance(), 0.02);
  const auto chunks = chunk_edges(g.edges(), 4);
  std::size_t offset = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < chunks[i].size(); ++j) {
      EXPECT_EQ(result.assignments[offset + j].partition, i);
    }
    offset += chunks[i].size();
  }
}

TEST(SpotlightRunTest, MoreInstancesThanEdges) {
  const Graph g = make_path(4);  // 3 edges, 8 instances
  SpotlightOptions opts{.k = 8, .num_partitioners = 8, .spread = 1};
  const auto result = run_spotlight(g.edges(), g.num_vertices(),
                                    factory_for("hash"), opts);
  EXPECT_EQ(result.assignments.size(), 3u);
  EXPECT_EQ(result.instance_seconds.size(), 8u);
}

// --- Streaming overload (§III-D parallel loading without densifying) ---------------

TEST(SpotlightStreamTest, StreamOverloadMatchesSpan) {
  const Graph g = make_community_graph({.num_communities = 40, .seed = 9});
  SpotlightOptions opts{.k = 16, .num_partitioners = 4, .spread = 4};
  const auto from_span = run_spotlight(g.edges(), g.num_vertices(),
                                       factory_for("hdrf"), opts);
  VectorEdgeStream stream(g.edges());
  const auto from_stream = run_spotlight(stream, g.num_vertices(),
                                         factory_for("hdrf"), opts);
  ASSERT_EQ(from_stream.assignments.size(), from_span.assignments.size());
  for (std::size_t i = 0; i < from_span.assignments.size(); ++i) {
    EXPECT_EQ(from_stream.assignments[i], from_span.assignments[i])
        << "diverged at assignment " << i;
  }
  EXPECT_DOUBLE_EQ(from_stream.merged.replication_degree(),
                   from_span.merged.replication_degree());
  EXPECT_EQ(from_stream.instance_seconds.size(), 4u);
}

TEST(SpotlightStreamTest, RewindsBeforeChunking) {
  const Graph g = make_erdos_renyi(200, 1500, 5);
  SpotlightOptions opts{.k = 8, .num_partitioners = 4, .spread = 2};
  VectorEdgeStream stream(g.edges());
  // Partially consume the stream first; run_spotlight must rewind and see
  // every edge exactly once.
  Edge e;
  for (int i = 0; i < 100; ++i) stream.next(e);
  const auto result = run_spotlight(stream, g.num_vertices(),
                                    factory_for("hash"), opts);
  EXPECT_EQ(result.assignments.size(), g.num_edges());
  EXPECT_EQ(result.merged.assigned_edges(), g.num_edges());
}

TEST(SpotlightStreamTest, AdwBinaryStreamMatchesInMemory) {
  const Graph g = make_community_graph({.num_communities = 30, .seed = 17});
  const std::string path = "spotlight_stream_test.adw";
  write_adw_file(path, g.edges());
  SpotlightOptions opts{.k = 16, .num_partitioners = 4, .spread = 4};
  const auto in_memory = run_spotlight(g.edges(), g.num_vertices(),
                                       factory_for("hdrf"), opts);
  BinaryEdgeStream stream(path, BinaryEdgeStream::Options{
                                    .chunk_edges = 512, .prefetch = true});
  const auto out_of_core = run_spotlight(stream, g.num_vertices(),
                                         factory_for("hdrf"), opts);
  std::remove(path.c_str());
  ASSERT_EQ(out_of_core.assignments.size(), in_memory.assignments.size());
  for (std::size_t i = 0; i < in_memory.assignments.size(); ++i) {
    ASSERT_EQ(out_of_core.assignments[i], in_memory.assignments[i])
        << "out-of-core spotlight diverged at assignment " << i;
  }
  EXPECT_DOUBLE_EQ(out_of_core.merged.replication_degree(),
                   in_memory.merged.replication_degree());
}

// --- Sharded parallel loading (per-instance shard streams, real threads) -----

void expect_identical_runs(const SpotlightResult& a, const SpotlightResult& b,
                           const char* what) {
  ASSERT_EQ(a.assignments.size(), b.assignments.size()) << what;
  for (std::size_t i = 0; i < a.assignments.size(); ++i) {
    ASSERT_EQ(a.assignments[i], b.assignments[i])
        << what << " diverged at assignment " << i;
  }
  EXPECT_DOUBLE_EQ(a.merged.replication_degree(),
                   b.merged.replication_degree())
      << what;
}

class SpotlightShardedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-qualified: ctest runs test cases as separate processes whose
    // heap layouts (and thus `this` addresses) can coincide, and two cases
    // sharing shard files clobber each other.
    base_ = ::testing::TempDir() + "spotlight_sharded_" +
            std::to_string(static_cast<long>(::getpid())) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
    manifest_path_ = base_ + ".adws";
    adw_path_ = base_ + ".adw";
  }

  void TearDown() override {
    for (std::uint32_t i = 0; i < 16; ++i) {
      std::remove(adw_shard_path(manifest_path_, i).c_str());
    }
    std::remove(manifest_path_.c_str());
    std::remove(adw_path_.c_str());
  }

  std::string base_, manifest_path_, adw_path_;
};

TEST_F(SpotlightShardedTest, MatchesInMemoryAndSingleFileBitForBit) {
  // The acceptance pin: z = 4 shard files on 4 instance threads produce the
  // same merged partitions as the sequential single-file read head and the
  // in-memory run.
  const Graph g = make_community_graph({.num_communities = 35, .seed = 23});
  write_adw_file(adw_path_, g.edges());
  write_sharded_adw(manifest_path_, g.edges(), 4);
  SpotlightOptions opts{.k = 16, .num_partitioners = 4, .spread = 4};

  const auto in_memory =
      run_spotlight(g.edges(), g.num_vertices(), factory_for("hdrf"), opts);
  BinaryEdgeStream single(adw_path_);
  const auto single_file =
      run_spotlight(single, g.num_vertices(), factory_for("hdrf"), opts);
  const auto sharded_serial = run_spotlight_sharded(
      manifest_path_, g.num_vertices(), factory_for("hdrf"), opts);
  SpotlightOptions threaded = opts;
  threaded.run_threads = true;
  const auto sharded_threads = run_spotlight_sharded(
      manifest_path_, g.num_vertices(), factory_for("hdrf"), threaded);

  expect_identical_runs(in_memory, single_file, "single-file");
  expect_identical_runs(in_memory, sharded_serial, "sharded serial");
  expect_identical_runs(in_memory, sharded_threads, "sharded threads");
  EXPECT_EQ(sharded_threads.instance_seconds.size(), 4u);
}

TEST_F(SpotlightShardedTest, AdwiseInstancesOnThreadsMatchSerial) {
  // The full ADWISE partitioner (window + heaps + batched refill) per
  // instance, on threads, against its own shard stream — the bit-identity
  // must survive the whole stack, and the per-instance reports merge into
  // fleet totals via on_instance_done in instance order.
  const Graph g = make_community_graph({.num_communities = 25, .seed = 31});
  write_sharded_adw(manifest_path_, g.edges(), 4);
  AdwiseOptions adwise_opts;
  adwise_opts.adaptive_window = false;  // FakeClock-free determinism
  adwise_opts.initial_window = 32;
  const PartitionerFactory factory = [&adwise_opts](std::uint32_t,
                                                    std::uint32_t) {
    return std::make_unique<AdwisePartitioner>(adwise_opts);
  };

  auto run = [&](bool threads, AdwisePartitioner::Report* merged,
                 std::vector<std::uint32_t>* order) {
    SpotlightOptions opts{.k = 16, .num_partitioners = 4, .spread = 4,
                          .run_threads = threads};
    opts.on_instance_done = [&](std::uint32_t instance,
                                EdgePartitioner& partitioner) {
      if (order != nullptr) order->push_back(instance);
      if (merged != nullptr) {
        merged->merge_from(
            dynamic_cast<AdwisePartitioner&>(partitioner).last_report());
      }
    };
    return run_spotlight_sharded(manifest_path_, g.num_vertices(), factory,
                                 opts);
  };

  AdwisePartitioner::Report serial_report, threaded_report;
  std::vector<std::uint32_t> serial_order, threaded_order;
  const auto serial = run(false, &serial_report, &serial_order);
  const auto threads = run(true, &threaded_report, &threaded_order);

  expect_identical_runs(serial, threads, "adwise sharded threads");
  // The telemetry hook fires in instance order regardless of scheduling.
  EXPECT_EQ(serial_order, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(threaded_order, serial_order);
  // Merged fleet totals are scheduling-independent too.
  EXPECT_EQ(serial_report.assignments, g.num_edges());
  EXPECT_EQ(threaded_report.assignments, serial_report.assignments);
  EXPECT_EQ(threaded_report.score_computations,
            serial_report.score_computations);
  EXPECT_EQ(threaded_report.batch_items, serial_report.batch_items);
}

TEST_F(SpotlightShardedTest, InstanceStreamOverloadThreadedMatchesSerial) {
  const Graph g = make_erdos_renyi(300, 4'000, 9);
  const auto chunks = chunk_edges(g.edges(), 4);
  const InstanceStreamFactory streams =
      [&chunks](std::uint32_t i) -> std::unique_ptr<EdgeStream> {
    return std::make_unique<VectorEdgeStream>(chunks[i]);
  };
  SpotlightOptions serial{.k = 8, .num_partitioners = 4, .spread = 2};
  SpotlightOptions threaded = serial;
  threaded.run_threads = true;
  threaded.num_threads = 2;  // fewer threads than instances: queueing path
  const auto a =
      run_spotlight(streams, g.num_vertices(), factory_for("hdrf"), serial);
  const auto b =
      run_spotlight(streams, g.num_vertices(), factory_for("hdrf"), threaded);
  expect_identical_runs(a, b, "instance-stream threads");
}

TEST_F(SpotlightShardedTest, ShardCountMismatchThrows) {
  const Graph g = make_erdos_renyi(100, 1'000, 2);
  write_sharded_adw(manifest_path_, g.edges(), 2);
  SpotlightOptions opts{.k = 16, .num_partitioners = 4, .spread = 4};
  EXPECT_THROW((void)run_spotlight_sharded(manifest_path_, g.num_vertices(),
                                           factory_for("hdrf"), opts),
               std::runtime_error);
}

TEST_F(SpotlightShardedTest, TruncatedShardFailsBeforeStreaming) {
  const Graph g = make_erdos_renyi(100, 1'000, 4);
  write_sharded_adw(manifest_path_, g.edges(), 4);
  // Chop a record off shard 1: validation must reject the whole run before
  // any instance streams, instead of silently under-loading instance 1.
  const std::string shard = adw_shard_path(manifest_path_, 1);
  std::ifstream in(shard, std::ios::binary);
  std::string bytes{std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>()};
  in.close();
  bytes.resize(bytes.size() - kAdwRecordBytes);
  std::ofstream(shard, std::ios::binary | std::ios::trunc) << bytes;
  SpotlightOptions opts{.k = 16, .num_partitioners = 4, .spread = 4,
                        .run_threads = true};
  EXPECT_THROW((void)run_spotlight_sharded(manifest_path_, g.num_vertices(),
                                           factory_for("hdrf"), opts),
               std::runtime_error);
}

TEST_F(SpotlightShardedTest, VertexIdBeyondNumVerticesThrows) {
  write_sharded_adw(manifest_path_, std::vector<Edge>{{0, 9}}, 1);
  SpotlightOptions opts{.k = 4, .num_partitioners = 1, .spread = 4};
  EXPECT_THROW((void)run_spotlight_sharded(manifest_path_, /*num_vertices=*/5,
                                           factory_for("hdrf"), opts),
               std::runtime_error);
}

// RewindableEdgeStream whose size_hint() lies by a fixed offset — models a
// short or over-long shard behind an exact-hint interface.
class LyingStream final : public RewindableEdgeStream {
 public:
  LyingStream(std::span<const Edge> edges, std::ptrdiff_t hint_bias)
      : inner_(edges), bias_(hint_bias) {}

  bool next(Edge& out) override { return inner_.next(out); }
  [[nodiscard]] std::size_t size_hint() const override {
    const auto real = static_cast<std::ptrdiff_t>(inner_.size_hint());
    return static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, real + bias_));
  }
  void rewind() override { inner_.rewind(); }

 private:
  VectorEdgeStream inner_;
  std::ptrdiff_t bias_;
};

TEST_F(SpotlightShardedTest, StreamShorterThanHintFailsLoudly) {
  // Chunk bounds derive from size_hint() once; a stream that delivers fewer
  // edges than promised must throw, not silently starve trailing instances.
  const Graph g = make_erdos_renyi(100, 1'000, 6);
  LyingStream stream(g.edges(), /*hint_bias=*/+50);
  SpotlightOptions opts{.k = 8, .num_partitioners = 4, .spread = 2};
  EXPECT_THROW((void)run_spotlight(stream, g.num_vertices(),
                                   factory_for("hdrf"), opts),
               std::runtime_error);
}

TEST_F(SpotlightShardedTest, StreamLongerThanHintFailsLoudly) {
  const Graph g = make_erdos_renyi(100, 1'000, 6);
  LyingStream stream(g.edges(), /*hint_bias=*/-50);
  SpotlightOptions opts{.k = 8, .num_partitioners = 4, .spread = 2};
  EXPECT_THROW((void)run_spotlight(stream, g.num_vertices(),
                                   factory_for("hdrf"), opts),
               std::runtime_error);
}

// The Fig. 8 property: for a clustered graph, smaller spread means lower
// replication degree, for every strategy.
class SpotlightSpreadTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SpotlightSpreadTest, SmallerSpreadReducesReplication) {
  const Graph g = make_community_graph({.num_communities = 120, .seed = 21});
  double previous = 0.0;
  bool first = true;
  for (const std::uint32_t spread : {16u, 4u}) {
    SpotlightOptions opts{.k = 16, .num_partitioners = 4, .spread = spread};
    const auto result = run_spotlight(g.edges(), g.num_vertices(),
                                      factory_for(GetParam()), opts);
    const double rep = result.merged.replication_degree();
    if (!first) {
      EXPECT_LT(rep, previous)
          << "spread " << spread << " did not improve on larger spread";
    }
    previous = rep;
    first = false;
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, SpotlightSpreadTest,
                         ::testing::Values("hash", "dbh", "hdrf"));

}  // namespace
}  // namespace adwise
