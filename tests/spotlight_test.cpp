// Tests for spotlight partitioning (§III-D): partition groups, merge
// correctness, and the replication-vs-spread property of Fig. 8.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/graph/generators.h"
#include "src/io/adw_format.h"
#include "src/io/binary_stream.h"
#include "src/partition/registry.h"
#include "src/partition/spotlight.h"

namespace adwise {
namespace {

PartitionerFactory factory_for(const std::string& name) {
  return [name](std::uint32_t instance, std::uint32_t local_k) {
    return make_baseline_partitioner(name, local_k, /*seed=*/instance);
  };
}

TEST(SpotlightGroupTest, DisjointWhenSpreadTimesZEqualsK) {
  SpotlightOptions opts{.k = 32, .num_partitioners = 8, .spread = 4};
  std::vector<bool> covered(32, false);
  for (std::uint32_t i = 0; i < 8; ++i) {
    for (const PartitionId p : spotlight_group(opts, i)) {
      EXPECT_FALSE(covered[p]) << "partition " << p << " owned twice";
      covered[p] = true;
    }
  }
  for (const bool c : covered) EXPECT_TRUE(c);
}

TEST(SpotlightGroupTest, FullSpreadCoversEverything) {
  SpotlightOptions opts{.k = 32, .num_partitioners = 8, .spread = 32};
  const auto group = spotlight_group(opts, 3);
  EXPECT_EQ(group.size(), 32u);
}

TEST(SpotlightGroupTest, IntermediateSpreadWraps) {
  SpotlightOptions opts{.k = 32, .num_partitioners = 8, .spread = 16};
  const auto g0 = spotlight_group(opts, 0);
  const auto g2 = spotlight_group(opts, 2);
  EXPECT_EQ(g0, g2);  // instances 0 and 2 share the group {0..15}
  const auto g1 = spotlight_group(opts, 1);
  EXPECT_EQ(g1.front(), 16u);
}

TEST(SpotlightRunTest, AssignsEveryEdgeExactlyOnce) {
  const Graph g = make_community_graph({.num_communities = 50, .seed = 4});
  SpotlightOptions opts{.k = 16, .num_partitioners = 4, .spread = 4};
  const auto result = run_spotlight(g.edges(), g.num_vertices(),
                                    factory_for("hdrf"), opts);
  EXPECT_EQ(result.assignments.size(), g.num_edges());
  EXPECT_EQ(result.merged.assigned_edges(), g.num_edges());
  for (const Assignment& a : result.assignments) {
    EXPECT_LT(a.partition, 16u);
  }
}

TEST(SpotlightRunTest, InstancesStayInTheirGroups) {
  const Graph g = make_erdos_renyi(400, 4000, 6);
  SpotlightOptions opts{.k = 8, .num_partitioners = 4, .spread = 2};
  const auto chunks = chunk_edges(g.edges(), 4);
  const auto result = run_spotlight(g.edges(), g.num_vertices(),
                                    factory_for("hash"), opts);
  // Assignments are appended chunk by chunk; recover each instance's range
  // and verify it only used its own partition group.
  std::size_t offset = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto group = spotlight_group(opts, i);
    for (std::size_t j = 0; j < chunks[i].size(); ++j) {
      const PartitionId p = result.assignments[offset + j].partition;
      EXPECT_TRUE(std::find(group.begin(), group.end(), p) != group.end())
          << "instance " << i << " wrote partition " << p;
    }
    offset += chunks[i].size();
  }
}

TEST(SpotlightRunTest, ThreadedAndSequentialAgree) {
  const Graph g = make_community_graph({.num_communities = 30, .seed = 13});
  SpotlightOptions seq{.k = 8, .num_partitioners = 4, .spread = 2,
                       .run_threads = false};
  SpotlightOptions par = seq;
  par.run_threads = true;
  const auto a = run_spotlight(g.edges(), g.num_vertices(),
                               factory_for("hdrf"), seq);
  const auto b = run_spotlight(g.edges(), g.num_vertices(),
                               factory_for("hdrf"), par);
  ASSERT_EQ(a.assignments.size(), b.assignments.size());
  for (std::size_t i = 0; i < a.assignments.size(); ++i) {
    EXPECT_EQ(a.assignments[i].partition, b.assignments[i].partition);
  }
}

TEST(SpotlightRunTest, WallLatencyIsMaxOfInstances) {
  const Graph g = make_erdos_renyi(300, 2000, 2);
  SpotlightOptions opts{.k = 8, .num_partitioners = 4, .spread = 2};
  const auto result = run_spotlight(g.edges(), g.num_vertices(),
                                    factory_for("hdrf"), opts);
  ASSERT_EQ(result.instance_seconds.size(), 4u);
  double max_seen = 0;
  for (const double s : result.instance_seconds) {
    max_seen = std::max(max_seen, s);
  }
  EXPECT_DOUBLE_EQ(result.wall_seconds, max_seen);
}

TEST(SpotlightRunTest, SpreadOfOnePinsEachInstanceToOnePartition) {
  const Graph g = make_erdos_renyi(200, 1500, 3);
  SpotlightOptions opts{.k = 4, .num_partitioners = 4, .spread = 1};
  const auto result = run_spotlight(g.edges(), g.num_vertices(),
                                    factory_for("hdrf"), opts);
  // Instance i writes only partition i; chunk sizes are near-equal, so the
  // global partitioning is balanced by construction.
  EXPECT_LT(result.merged.imbalance(), 0.02);
  const auto chunks = chunk_edges(g.edges(), 4);
  std::size_t offset = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < chunks[i].size(); ++j) {
      EXPECT_EQ(result.assignments[offset + j].partition, i);
    }
    offset += chunks[i].size();
  }
}

TEST(SpotlightRunTest, MoreInstancesThanEdges) {
  const Graph g = make_path(4);  // 3 edges, 8 instances
  SpotlightOptions opts{.k = 8, .num_partitioners = 8, .spread = 1};
  const auto result = run_spotlight(g.edges(), g.num_vertices(),
                                    factory_for("hash"), opts);
  EXPECT_EQ(result.assignments.size(), 3u);
  EXPECT_EQ(result.instance_seconds.size(), 8u);
}

// --- Streaming overload (§III-D parallel loading without densifying) ---------------

TEST(SpotlightStreamTest, StreamOverloadMatchesSpan) {
  const Graph g = make_community_graph({.num_communities = 40, .seed = 9});
  SpotlightOptions opts{.k = 16, .num_partitioners = 4, .spread = 4};
  const auto from_span = run_spotlight(g.edges(), g.num_vertices(),
                                       factory_for("hdrf"), opts);
  VectorEdgeStream stream(g.edges());
  const auto from_stream = run_spotlight(stream, g.num_vertices(),
                                         factory_for("hdrf"), opts);
  ASSERT_EQ(from_stream.assignments.size(), from_span.assignments.size());
  for (std::size_t i = 0; i < from_span.assignments.size(); ++i) {
    EXPECT_EQ(from_stream.assignments[i], from_span.assignments[i])
        << "diverged at assignment " << i;
  }
  EXPECT_DOUBLE_EQ(from_stream.merged.replication_degree(),
                   from_span.merged.replication_degree());
  EXPECT_EQ(from_stream.instance_seconds.size(), 4u);
}

TEST(SpotlightStreamTest, RewindsBeforeChunking) {
  const Graph g = make_erdos_renyi(200, 1500, 5);
  SpotlightOptions opts{.k = 8, .num_partitioners = 4, .spread = 2};
  VectorEdgeStream stream(g.edges());
  // Partially consume the stream first; run_spotlight must rewind and see
  // every edge exactly once.
  Edge e;
  for (int i = 0; i < 100; ++i) stream.next(e);
  const auto result = run_spotlight(stream, g.num_vertices(),
                                    factory_for("hash"), opts);
  EXPECT_EQ(result.assignments.size(), g.num_edges());
  EXPECT_EQ(result.merged.assigned_edges(), g.num_edges());
}

TEST(SpotlightStreamTest, AdwBinaryStreamMatchesInMemory) {
  const Graph g = make_community_graph({.num_communities = 30, .seed = 17});
  const std::string path = "spotlight_stream_test.adw";
  write_adw_file(path, g.edges());
  SpotlightOptions opts{.k = 16, .num_partitioners = 4, .spread = 4};
  const auto in_memory = run_spotlight(g.edges(), g.num_vertices(),
                                       factory_for("hdrf"), opts);
  BinaryEdgeStream stream(path, BinaryEdgeStream::Options{
                                    .chunk_edges = 512, .prefetch = true});
  const auto out_of_core = run_spotlight(stream, g.num_vertices(),
                                         factory_for("hdrf"), opts);
  std::remove(path.c_str());
  ASSERT_EQ(out_of_core.assignments.size(), in_memory.assignments.size());
  for (std::size_t i = 0; i < in_memory.assignments.size(); ++i) {
    ASSERT_EQ(out_of_core.assignments[i], in_memory.assignments[i])
        << "out-of-core spotlight diverged at assignment " << i;
  }
  EXPECT_DOUBLE_EQ(out_of_core.merged.replication_degree(),
                   in_memory.merged.replication_degree());
}

// The Fig. 8 property: for a clustered graph, smaller spread means lower
// replication degree, for every strategy.
class SpotlightSpreadTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SpotlightSpreadTest, SmallerSpreadReducesReplication) {
  const Graph g = make_community_graph({.num_communities = 120, .seed = 21});
  double previous = 0.0;
  bool first = true;
  for (const std::uint32_t spread : {16u, 4u}) {
    SpotlightOptions opts{.k = 16, .num_partitioners = 4, .spread = spread};
    const auto result = run_spotlight(g.edges(), g.num_vertices(),
                                      factory_for(GetParam()), opts);
    const double rep = result.merged.replication_degree();
    if (!first) {
      EXPECT_LT(rep, previous)
          << "spread " << spread << " did not improve on larger spread";
    }
    previous = rep;
    first = false;
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, SpotlightSpreadTest,
                         ::testing::Values("hash", "dbh", "hdrf"));

}  // namespace
}  // namespace adwise
