// End-to-end crash test against the real partition_file binary: the child
// process SIGKILLs itself right after writing each checkpoint (via the
// ADWISE_TEST_KILL_AFTER_CHECKPOINT hook), and the resume loop must finish
// with output byte-identical to an uninterrupted run — including the
// deterministic "adwise counters:" stderr trace.
//
// The binary path is injected at compile time (ADWISE_PARTITION_FILE_BIN);
// when the examples are not built the whole suite skips.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/graph/generators.h"
#include "src/io/adw_format.h"

#ifndef _WIN32
#include <sys/wait.h>
#endif

namespace adwise {
namespace {

#ifndef ADWISE_PARTITION_FILE_BIN

TEST(CrashResumeSigkillTest, RequiresPartitionFileBinary) {
  GTEST_SKIP() << "partition_file binary not built into this configuration";
}

#else

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

// The stderr line with the decision counters — must match between a clean
// and a crash-resumed run (bit-identical continuation, not just the same
// final assignment file).
std::string counters_line(const std::string& stderr_text) {
  const std::size_t pos = stderr_text.find("adwise counters:");
  if (pos == std::string::npos) return {};
  const std::size_t end = stderr_text.find('\n', pos);
  return stderr_text.substr(pos, end - pos);
}

struct RunStatus {
  bool exited_ok = false;
  bool sigkilled = false;
};

RunStatus run(const std::string& command) {
  const int status = std::system(command.c_str());
  RunStatus result;
  if (WIFEXITED(status)) {
    // A shell reports a SIGKILLed child as exit code 128 + 9.
    result.exited_ok = WEXITSTATUS(status) == 0;
    result.sigkilled = WEXITSTATUS(status) == 137;
  } else if (WIFSIGNALED(status)) {
    result.sigkilled = WTERMSIG(status) == SIGKILL;
  }
  return result;
}

class CrashResumeSigkillTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "sigkill_" +
            std::to_string(static_cast<long>(::getpid())) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
    adw_path_ = base_ + ".adw";
    const Graph g = make_erdos_renyi(500, 6000, 11);
    AdwWriter::Options wopts;
    wopts.with_crc = true;
    write_adw_file(adw_path_, g.edges(), wopts);
  }

  void TearDown() override {
    const char* suffixes[] = {".adw",       "_clean.out", "_clean.ckpt",
                              "_clean.err", "_crash.out", "_crash.out.partial",
                              "_crash.ckpt", "_crash.err"};
    for (const char* s : suffixes) std::remove((base_ + s).c_str());
  }

  std::string args(const std::string& tag, const std::string& algorithm,
                   bool resume) const {
    std::string cmd = std::string(ADWISE_PARTITION_FILE_BIN) + " " +
                      adw_path_ + " " + algorithm + " 8 -1 --output " + base_ +
                      "_" + tag + ".out --checkpoint " + base_ + "_" + tag +
                      ".ckpt --checkpoint-every 500";
    if (resume) cmd += " --resume " + base_ + "_" + tag + ".ckpt";
    cmd += " 2> " + base_ + "_" + tag + ".err";
    return cmd;
  }

  // Clean run, then a crash loop that SIGKILLs at every checkpoint; returns
  // the number of resumes it took to finish.
  int crash_until_done(const std::string& algorithm) {
    EXPECT_TRUE(run(args("clean", algorithm, false)).exited_ok)
        << read_file(base_ + "_clean.err");

    const std::string kill_env = "ADWISE_TEST_KILL_AFTER_CHECKPOINT=1 ";
    RunStatus status = run(kill_env + args("crash", algorithm, false));
    EXPECT_TRUE(status.sigkilled) << read_file(base_ + "_crash.err");
    int resumes = 0;
    while (!status.exited_ok) {
      if (++resumes > 64) {
        ADD_FAILURE() << "crash/resume loop did not converge: "
                      << read_file(base_ + "_crash.err");
        return resumes;
      }
      status = run(kill_env + args("crash", algorithm, true));
      EXPECT_TRUE(status.exited_ok || status.sigkilled)
          << read_file(base_ + "_crash.err");
    }
    return resumes;
  }

  std::string base_, adw_path_;
};

TEST_F(CrashResumeSigkillTest, AdwiseResumesBitIdentical) {
  const int resumes = crash_until_done("adwise");
  EXPECT_GT(resumes, 1) << "run finished without ever being killed";

  const std::string clean_out = read_file(base_ + "_clean.out");
  const std::string crash_out = read_file(base_ + "_crash.out");
  ASSERT_FALSE(clean_out.empty());
  EXPECT_EQ(crash_out, clean_out) << "resumed output differs from clean run";

  const std::string clean_counters = counters_line(read_file(base_ + "_clean.err"));
  const std::string crash_counters = counters_line(read_file(base_ + "_crash.err"));
  ASSERT_FALSE(clean_counters.empty());
  EXPECT_EQ(crash_counters, clean_counters);
}

TEST_F(CrashResumeSigkillTest, HdrfResumesBitIdentical) {
  const int resumes = crash_until_done("hdrf");
  EXPECT_GT(resumes, 1) << "run finished without ever being killed";

  const std::string clean_out = read_file(base_ + "_clean.out");
  const std::string crash_out = read_file(base_ + "_crash.out");
  ASSERT_FALSE(clean_out.empty());
  EXPECT_EQ(crash_out, clean_out) << "resumed output differs from clean run";
}

#endif  // ADWISE_PARTITION_FILE_BIN

}  // namespace
}  // namespace adwise
