// Tests for the full ADWISE partitioner: Algorithm 1 semantics, lazy vs.
// eager traversal, window adaptation end-to-end, and quality properties.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/core/adwise_partitioner.h"
#include "src/graph/edge_stream.h"
#include "src/graph/generators.h"
#include "src/partition/hdrf_partitioner.h"

namespace adwise {
namespace {

struct RunOutput {
  PartitionState state;
  std::vector<Assignment> assignments;
  AdwisePartitioner::Report report;
};

RunOutput run_adwise(const Graph& graph, std::uint32_t k, AdwiseOptions opts,
                     StreamOrder order = StreamOrder::kShuffled) {
  RunOutput out{PartitionState(k, graph.num_vertices()), {}, {}};
  AdwisePartitioner partitioner(opts);
  const auto edges = ordered_edges(graph, order, 17);
  VectorEdgeStream stream(edges);
  partitioner.partition(stream, out.state, [&](const Edge& e, PartitionId p) {
    out.assignments.push_back({e, p});
  });
  out.report = partitioner.last_report();
  return out;
}

AdwiseOptions fixed_window(std::uint64_t w) {
  AdwiseOptions opts;
  opts.adaptive_window = false;
  opts.initial_window = w;
  return opts;
}

// --- Correctness invariants -----------------------------------------------------

struct InvariantCase {
  std::string graph;
  std::uint64_t window;
  bool lazy;
  std::uint32_t k;
};

class AdwiseInvariantTest : public ::testing::TestWithParam<InvariantCase> {
 protected:
  static Graph graph_for(const std::string& name) {
    if (name == "community") {
      return make_community_graph({.num_communities = 40, .seed = 3});
    }
    if (name == "rmat") {
      return make_rmat({.scale = 10, .num_edges = 3000, .seed = 5});
    }
    if (name == "star") return make_star(300);
    if (name == "cycle") return make_cycle(300);
    return make_grid(15, 20);
  }
};

TEST_P(AdwiseInvariantTest, EveryEdgeAssignedOnceConsistently) {
  const auto& param = GetParam();
  const Graph graph = graph_for(param.graph);
  AdwiseOptions opts = fixed_window(param.window);
  opts.lazy_traversal = param.lazy;
  const RunOutput out = run_adwise(graph, param.k, opts);

  EXPECT_EQ(out.assignments.size(), graph.num_edges());
  EXPECT_EQ(out.state.assigned_edges(), graph.num_edges());
  EXPECT_EQ(out.report.assignments, graph.num_edges());

  // The emitted multiset of edges equals the input edge multiset (windowing
  // reorders but never drops or duplicates).
  std::multiset<std::pair<VertexId, VertexId>> expected, emitted;
  for (const Edge& e : graph.edges()) {
    const Edge c = canonical(e);
    expected.insert({c.u, c.v});
  }
  for (const Assignment& a : out.assignments) {
    ASSERT_LT(a.partition, param.k);
    const Edge c = canonical(a.edge);
    emitted.insert({c.u, c.v});
    EXPECT_TRUE(out.state.replicas(a.edge.u).contains(a.partition));
    EXPECT_TRUE(out.state.replicas(a.edge.v).contains(a.partition));
  }
  EXPECT_EQ(expected, emitted);
  EXPECT_GE(out.state.replication_degree(), 1.0);
}

std::vector<InvariantCase> invariant_cases() {
  std::vector<InvariantCase> cases;
  for (const char* graph : {"community", "rmat", "star", "cycle", "grid"}) {
    for (const std::uint64_t window : {1ull, 8ull, 64ull}) {
      for (const bool lazy : {true, false}) {
        cases.push_back({graph, window, lazy, 8});
      }
    }
  }
  cases.push_back({"community", 16, true, 32});
  cases.push_back({"community", 16, true, 2});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdwiseInvariantTest, ::testing::ValuesIn(invariant_cases()),
    [](const ::testing::TestParamInfo<InvariantCase>& info) {
      return info.param.graph + "_w" + std::to_string(info.param.window) +
             (info.param.lazy ? "_lazy" : "_eager") + "_k" +
             std::to_string(info.param.k);
    });

// --- Degenerate and edge cases ---------------------------------------------------

TEST(AdwiseTest, EmptyStream) {
  const Graph empty(10, {});
  const RunOutput out = run_adwise(empty, 4, fixed_window(8));
  EXPECT_TRUE(out.assignments.empty());
  EXPECT_EQ(out.report.assignments, 0u);
}

TEST(AdwiseTest, SingleEdgeStream) {
  Graph g(2, {{0, 1}});
  const RunOutput out = run_adwise(g, 4, fixed_window(8));
  ASSERT_EQ(out.assignments.size(), 1u);
  EXPECT_LT(out.assignments[0].partition, 4u);
}

TEST(AdwiseTest, WindowLargerThanStream) {
  const Graph g = make_cycle(10);
  const RunOutput out = run_adwise(g, 4, fixed_window(1000));
  EXPECT_EQ(out.assignments.size(), 10u);
}

TEST(AdwiseTest, WindowOfOneIsSingleEdgeStreaming) {
  // w = 1: the window never holds more than one edge, so assignments come
  // out in exact stream order.
  const Graph g = make_community_graph({.num_communities = 15, .seed = 2});
  const auto edges = ordered_edges(g, StreamOrder::kShuffled, 17);
  const RunOutput out = run_adwise(g, 4, fixed_window(1));
  ASSERT_EQ(out.assignments.size(), edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(canonical(out.assignments[i].edge), canonical(edges[i]));
  }
}

// --- Lazy traversal ---------------------------------------------------------------

TEST(AdwiseTest, LazyMatchesEagerWhenEverythingIsCandidate) {
  // With the threshold pushed to -inf (epsilon very negative) every edge is
  // a candidate, and with refresh interval 1 every candidate is re-scored
  // each round: the lazy path must reproduce eager decisions exactly.
  const Graph g = make_community_graph({.num_communities = 20, .seed = 6});
  AdwiseOptions lazy_opts = fixed_window(16);
  lazy_opts.lazy_traversal = true;
  lazy_opts.candidate_epsilon = -1e18;
  lazy_opts.candidate_refresh_interval = 1;
  AdwiseOptions eager_opts = fixed_window(16);
  eager_opts.lazy_traversal = false;

  const RunOutput lazy = run_adwise(g, 8, lazy_opts);
  const RunOutput eager = run_adwise(g, 8, eager_opts);
  ASSERT_EQ(lazy.assignments.size(), eager.assignments.size());
  for (std::size_t i = 0; i < lazy.assignments.size(); ++i) {
    EXPECT_EQ(lazy.assignments[i], eager.assignments[i]) << "at index " << i;
  }
}

TEST(AdwiseTest, LazyQualityCloseToEager) {
  const Graph g = make_community_graph({.num_communities = 60, .seed = 9});
  AdwiseOptions lazy_opts = fixed_window(64);
  AdwiseOptions eager_opts = fixed_window(64);
  eager_opts.lazy_traversal = false;
  const double rep_lazy =
      run_adwise(g, 8, lazy_opts).state.replication_degree();
  const double rep_eager =
      run_adwise(g, 8, eager_opts).state.replication_degree();
  EXPECT_LT(rep_lazy, rep_eager * 1.15);
}

TEST(AdwiseTest, LazySavesScoreComputations) {
  const Graph g = make_community_graph({.num_communities = 60, .seed = 9});
  AdwiseOptions lazy_opts = fixed_window(64);
  AdwiseOptions eager_opts = fixed_window(64);
  eager_opts.lazy_traversal = false;
  const auto lazy = run_adwise(g, 8, lazy_opts);
  const auto eager = run_adwise(g, 8, eager_opts);
  EXPECT_LT(lazy.report.score_computations,
            eager.report.score_computations / 2);
}

// --- Quality: the window pays off -------------------------------------------------

TEST(AdwiseTest, WindowImprovesOverSingleEdgeOnClusteredGraph) {
  const Graph g = make_community_graph({.num_communities = 80, .seed = 31});
  const double rep_w1 =
      run_adwise(g, 16, fixed_window(1)).state.replication_degree();
  const double rep_w128 =
      run_adwise(g, 16, fixed_window(128)).state.replication_degree();
  EXPECT_LT(rep_w128, rep_w1);
}

TEST(AdwiseTest, BeatsHdrfOnClusteredGraphGivenWindow) {
  const Graph g = make_community_graph({.num_communities = 80, .seed = 31});
  const auto edges = ordered_edges(g, StreamOrder::kShuffled, 17);

  HdrfPartitioner hdrf;
  PartitionState hdrf_state(16, g.num_vertices());
  VectorEdgeStream stream(edges);
  hdrf.partition(stream, hdrf_state);

  const double rep_adwise =
      run_adwise(g, 16, fixed_window(128)).state.replication_degree();
  EXPECT_LT(rep_adwise, hdrf_state.replication_degree());
}

TEST(AdwiseTest, StaysReasonablyBalanced) {
  const Graph g = make_community_graph({.num_communities = 80, .seed = 31});
  const RunOutput out = run_adwise(g, 16, fixed_window(64));
  // Paper reports all experiments end below 5% imbalance; allow slack for
  // the small graph.
  EXPECT_LT(out.state.imbalance(), 0.2);
}

// --- Adaptive window end-to-end -----------------------------------------------------

TEST(AdwiseTest, UnboundedPreferenceGrowsWindow) {
  const Graph g = make_community_graph({.num_communities = 60, .seed = 8});
  AdwiseOptions opts;
  opts.latency_preference_ms = -1;
  opts.max_window = 256;
  const RunOutput out = run_adwise(g, 8, opts);
  EXPECT_GT(out.report.max_window, 1u);
  EXPECT_GT(out.report.adaptations, 0u);
}

TEST(AdwiseTest, ZeroPreferenceStaysSingleEdge) {
  const Graph g = make_community_graph({.num_communities = 40, .seed = 8});
  AdwiseOptions opts;
  opts.latency_preference_ms = 0;
  const RunOutput out = run_adwise(g, 8, opts);
  EXPECT_EQ(out.report.max_window, 1u);
}

TEST(AdwiseTest, GenerousBudgetNotGrosslyExceeded) {
  // Not a micro-benchmark: just verify the controller reacts to a real
  // budget on a real clock. The paper overshoots by at most ~7%; we allow
  // a wide margin for CI noise.
  const Graph g = make_community_graph({.num_communities = 200, .seed = 5});
  AdwiseOptions opts;
  opts.latency_preference_ms = 400;
  opts.max_window = 1 << 14;
  const RunOutput out = run_adwise(g, 16, opts);
  EXPECT_EQ(out.state.assigned_edges(), g.num_edges());
  EXPECT_LT(out.report.seconds, 2.0);
}

// --- Report bookkeeping ----------------------------------------------------------------

TEST(AdwiseTest, MaxWindowCapRespected) {
  const Graph g = make_community_graph({.num_communities = 60, .seed = 8});
  AdwiseOptions opts;
  opts.latency_preference_ms = -1;  // grow as fast as C1 allows
  opts.max_window = 32;
  const RunOutput out = run_adwise(g, 8, opts);
  EXPECT_LE(out.report.max_window, 32u);
}

TEST(AdwiseTest, ReportCountsAreCoherent) {
  const Graph g = make_community_graph({.num_communities = 30, .seed = 4});
  const RunOutput out = run_adwise(g, 8, fixed_window(32));
  EXPECT_EQ(out.report.assignments, g.num_edges());
  EXPECT_GE(out.report.score_computations, out.report.assignments);
  EXPECT_GE(out.report.final_lambda, 0.4);
  EXPECT_LE(out.report.final_lambda, 5.0);
}

TEST(AdwiseTest, BatchTelemetryIsCoherent) {
  const Graph g = make_community_graph({.num_communities = 30, .seed = 4});
  const RunOutput out = run_adwise(g, 8, fixed_window(32));
  const auto& r = out.report;
  // Every batch lands in exactly one histogram bucket.
  std::uint64_t hist_total = 0;
  for (const std::uint64_t b : r.batch_size_hist) hist_total += b;
  EXPECT_EQ(hist_total, r.score_batches);
  // Batch-scored items are a subset of all score computations; pool items
  // a subset of batch items; refill items (kExact default batches every
  // refill) cover exactly the streamed edges.
  EXPECT_LE(r.batch_items, r.score_computations);
  EXPECT_LE(r.pool_batch_items, r.batch_items);
  EXPECT_EQ(r.refill_batch_items, g.num_edges());
  EXPECT_LE(r.refill_batch_items, r.batch_items);
  EXPECT_GE(r.parallel_fraction(), 0.0);
  EXPECT_LE(r.parallel_fraction(), 1.0);
  // Serial run: nothing may have been routed to a pool.
  EXPECT_EQ(r.pool_batches, 0u);
  // Adapted thresholds are reported and respect their floors.
  EXPECT_GE(r.final_drain_budget, 1u);
  EXPECT_GE(r.final_sweep_interval, 1u);
  EXPECT_GE(r.final_batch_cutoff, 2u);
}

TEST(AdwiseTest, HandlesGraphWithIsolatedVertices) {
  // Vertices 50..99 have no edges; the window index must simply never see
  // them and metrics must ignore them.
  Graph g(100, {});
  for (VertexId i = 0; i + 1 < 50; ++i) g.add_edge(i, i + 1);
  const RunOutput out = run_adwise(g, 4, fixed_window(16));
  EXPECT_EQ(out.assignments.size(), 49u);
  for (VertexId v = 50; v < 100; ++v) {
    EXPECT_TRUE(out.state.replicas(v).empty());
  }
}

TEST(AdwiseTest, DuplicateEdgesInStreamAreAssignedEachTime) {
  // Streaming partitioners see whatever the stream contains; a repeated
  // edge is just another assignment (real files contain duplicates).
  Graph g(3, {{0, 1}, {0, 1}, {1, 2}});
  const RunOutput out = run_adwise(g, 4, fixed_window(8),
                                   StreamOrder::kNatural);
  EXPECT_EQ(out.assignments.size(), 3u);
  EXPECT_EQ(out.state.assigned_edges(), 3u);
}

TEST(AdwiseTest, DeterministicAcrossRuns) {
  const Graph g = make_community_graph({.num_communities = 30, .seed = 4});
  const RunOutput a = run_adwise(g, 8, fixed_window(32));
  const RunOutput b = run_adwise(g, 8, fixed_window(32));
  ASSERT_EQ(a.assignments.size(), b.assignments.size());
  for (std::size_t i = 0; i < a.assignments.size(); ++i) {
    EXPECT_EQ(a.assignments[i], b.assignments[i]);
  }
}

}  // namespace
}  // namespace adwise
