// Tests for the work-stealing thread pool behind the parallel batch scorer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <functional>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/common/thread_pool.h"

namespace adwise {
namespace {

TEST(ThreadPoolTest, CompletesAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  EXPECT_EQ(pool.num_slots(), 5u);
  std::atomic<int> done{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 1000);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // nothing submitted: must not hang
  pool.wait_idle();
}

TEST(ThreadPoolTest, PropagatesFirstTaskException) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&done, i] {
      if (i == 25) throw std::runtime_error("task 25 failed");
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed: the pool stays usable and a clean batch does
  // not re-throw the stale exception.
  pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 100; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&total] { total.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    ASSERT_EQ(total.load(), (batch + 1) * 20) << "batch " << batch;
  }
}

TEST(ThreadPoolTest, StressSubmitFromPoolCallbacks) {
  // Tasks fan out recursively from inside worker callbacks; wait_idle must
  // not return before the whole submission tree has completed. 3 levels of
  // fan-out 4 from 64 roots = 64 * (4 + 16 + 64) leaves-and-branches.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::function<void(int)> spawn = [&](int depth) {
    done.fetch_add(1, std::memory_order_relaxed);
    if (depth == 0) return;
    for (int i = 0; i < 4; ++i) {
      pool.submit([&spawn, depth] { spawn(depth - 1); });
    }
  };
  for (int root = 0; root < 64; ++root) {
    pool.submit([&spawn] { spawn(3); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 64 * (1 + 4 + 16 + 64));
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  std::atomic<unsigned> max_slot{0};
  pool.parallel_for(kN, [&](std::size_t begin, std::size_t end,
                            unsigned slot) {
    unsigned seen = max_slot.load(std::memory_order_relaxed);
    while (slot > seen &&
           !max_slot.compare_exchange_weak(seen, slot,
                                           std::memory_order_relaxed)) {
    }
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  EXPECT_LT(max_slot.load(), pool.num_slots());
}

TEST(ThreadPoolTest, ParallelForSlotsNeverRunConcurrently) {
  // Each slot id may migrate between threads but must have at most one
  // user at a time — that is what makes per-slot scratch buffers safe.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> in_use(pool.num_slots());
  std::atomic<bool> overlapped{false};
  std::atomic<long> sink{0};
  pool.parallel_for(5'000, [&](std::size_t begin, std::size_t end,
                               unsigned slot) {
    if (in_use[slot].fetch_add(1, std::memory_order_acq_rel) != 0) {
      overlapped.store(true, std::memory_order_relaxed);
    }
    for (std::size_t i = begin; i < end; ++i) {
      sink.fetch_add(static_cast<long>(i % 7), std::memory_order_relaxed);
    }
    in_use[slot].fetch_sub(1, std::memory_order_acq_rel);
  });
  EXPECT_FALSE(overlapped.load());
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(1'000,
                        [&](std::size_t begin, std::size_t, unsigned) {
                          if (begin >= 500) {
                            throw std::runtime_error("shard failed");
                          }
                        }),
      std::runtime_error);
  // Still usable afterwards.
  std::atomic<int> covered{0};
  pool.parallel_for(100, [&](std::size_t begin, std::size_t end, unsigned) {
    covered.fetch_add(static_cast<int>(end - begin),
                      std::memory_order_relaxed);
  });
  EXPECT_EQ(covered.load(), 100);
}

TEST(ThreadPoolTest, ZeroWorkersDegradesToInlineExecution) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  int done = 0;
  pool.submit([&done] { ++done; });
  EXPECT_EQ(done, 1);  // ran inline
  pool.wait_idle();
  std::vector<int> hits(64, 0);
  const auto caller = std::this_thread::get_id();
  pool.parallel_for(hits.size(), [&](std::size_t begin, std::size_t end,
                                     unsigned slot) {
    EXPECT_EQ(slot, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t, unsigned) {
    called = true;
  });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace adwise
