// Crash-mid-write matrix: every on-disk artifact (.adw v1/v2, .adws
// manifest, .adwk checkpoint) is truncated at every possible length and
// bit-flipped at every detectable byte offset, and the readers must reject
// each mutation with a clear error instead of resuming from garbage.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/graph/edge_stream.h"
#include "src/io/adw_format.h"
#include "src/io/adw_shards.h"
#include "src/io/binary_stream.h"
#include "src/io/checkpoint.h"
#include "src/io/io_error.h"

namespace adwise {
namespace {

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class CrashMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "crash_matrix_" +
            std::to_string(static_cast<long>(::getpid())) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
  }

  void TearDown() override {
    for (const std::string& p : cleanup_) std::remove(p.c_str());
  }

  std::string track(const std::string& path) {
    cleanup_.push_back(path);
    return path;
  }

  std::string base_;
  std::vector<std::string> cleanup_;
};

const std::vector<Edge> kEdges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};

TEST_F(CrashMatrixTest, AdwV1TruncatedAtEveryLength) {
  const std::string good = track(base_ + "_v1.adw");
  const std::string bad = track(base_ + "_v1_trunc.adw");
  write_adw_file(good, kEdges);
  const std::string bytes = read_bytes(good);
  ASSERT_EQ(bytes.size(), kAdwHeaderBytes + kEdges.size() * kAdwRecordBytes);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    write_bytes(bad, bytes.substr(0, len));
    EXPECT_THROW((void)read_adw_header(bad), std::runtime_error)
        << "accepted a v1 file truncated to " << len << " bytes";
  }
}

TEST_F(CrashMatrixTest, AdwV2TruncatedAtEveryLength) {
  const std::string good = track(base_ + "_v2.adw");
  const std::string bad = track(base_ + "_v2_trunc.adw");
  AdwWriter::Options wopts;
  wopts.with_crc = true;
  wopts.crc_block_bytes = 8;  // one CRC per record: every region is multi-byte
  write_adw_file(good, kEdges, wopts);
  const std::string bytes = read_bytes(good);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    write_bytes(bad, bytes.substr(0, len));
    EXPECT_THROW((void)read_adw_header(bad), std::runtime_error)
        << "accepted a v2 file truncated to " << len << " bytes";
  }
}

TEST_F(CrashMatrixTest, AdwV2BitFlippedAtEveryByte) {
  const std::string good = track(base_ + "_v2f.adw");
  const std::string bad = track(base_ + "_v2f_flip.adw");
  AdwWriter::Options wopts;
  wopts.with_crc = true;
  wopts.crc_block_bytes = 8;
  write_adw_file(good, kEdges, wopts);
  const std::string bytes = read_bytes(good);
  // No exempted ranges: header bytes 0..15 fail structural validation,
  // records and footer fail their CRCs, and max_vertex_id (bytes 16..23,
  // the one field outside every checksum) fails the observed-maximum
  // cross-check at end of stream — a raised bound no longer matches the
  // maximum the chunk scan saw, a lowered one trips the per-chunk upper
  // bound.
  for (std::size_t off = 0; off < bytes.size(); ++off) {
    std::string flipped = bytes;
    flipped[off] = static_cast<char>(flipped[off] ^ 0x40);
    write_bytes(bad, flipped);
    EXPECT_THROW(
        {
          BinaryEdgeStream stream(bad);
          Edge e;
          while (stream.next(e)) {
          }
        },
        std::runtime_error)
        << "accepted a v2 file with byte " << off << " flipped";
  }
}

TEST_F(CrashMatrixTest, AdwZeroEdgeFileWithNonzeroMaxVertexIdRejected) {
  // Empty files have no records to scan, so the end-of-stream cross-check
  // never sees a maximum; the header check itself must pin max_vertex_id
  // to 0 (the only value AdwWriter ever produces for an empty graph).
  const std::string bad = track(base_ + "_empty_badmax.adw");
  std::byte raw[kAdwHeaderBytes];
  adw_encode_header({.num_edges = 0, .max_vertex_id = 7}, raw);
  std::string bytes(reinterpret_cast<const char*>(raw), kAdwHeaderBytes);
  write_bytes(bad, bytes);
  EXPECT_THROW((void)read_adw_header(bad), std::runtime_error);

  const std::string good = track(base_ + "_empty_ok.adw");
  adw_encode_header({.num_edges = 0, .max_vertex_id = 0}, raw);
  write_bytes(good,
              std::string(reinterpret_cast<const char*>(raw), kAdwHeaderBytes));
  EXPECT_EQ(read_adw_header(good).max_vertex_id, 0u);
}

TEST_F(CrashMatrixTest, AdwsManifestTruncatedAtEveryLength) {
  const std::string manifest = track(base_ + ".adws");
  const AdwManifest written = write_sharded_adw(manifest, kEdges, 2);
  for (std::uint32_t s = 0; s < written.num_shards(); ++s) {
    track(adw_shard_path(manifest, s));
  }
  const std::string bytes = read_bytes(manifest);
  const std::string bad = track(base_ + "_trunc.adws");
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    write_bytes(bad, bytes.substr(0, len));
    EXPECT_THROW((void)read_adw_manifest(bad), std::runtime_error)
        << "accepted a manifest truncated to " << len << " bytes";
  }
}

TEST_F(CrashMatrixTest, AdwsManifestBitFlippedAtEveryByte) {
  const std::string manifest = track(base_ + "_f.adws");
  const AdwManifest written = write_sharded_adw(manifest, kEdges, 2);
  for (std::uint32_t s = 0; s < written.num_shards(); ++s) {
    track(adw_shard_path(manifest, s));
  }
  const std::string bytes = read_bytes(manifest);
  const std::string bad = track(base_ + "_flip.adws");
  // The trailing whole-file CRC covers every preceding byte (and a flip in
  // the CRC itself mismatches), so every single flip must be rejected.
  for (std::size_t off = 0; off < bytes.size(); ++off) {
    std::string flipped = bytes;
    flipped[off] = static_cast<char>(flipped[off] ^ 0x40);
    write_bytes(bad, flipped);
    EXPECT_THROW((void)read_adw_manifest(bad), std::runtime_error)
        << "accepted a manifest with byte " << off << " flipped";
  }
}

TEST_F(CrashMatrixTest, AdwsShardMismatchRejectedByCrossCheck) {
  const std::string manifest = track(base_ + "_x.adws");
  const AdwManifest written = write_sharded_adw(manifest, kEdges, 2);
  for (std::uint32_t s = 0; s < written.num_shards(); ++s) {
    track(adw_shard_path(manifest, s));
  }
  // Swap in a shard with different contents: the manifest alone still
  // validates, but the cross-check must catch the disagreement.
  const std::vector<Edge> other = {{7, 9}};
  write_adw_file(adw_shard_path(manifest, 1), other);
  EXPECT_NO_THROW((void)read_adw_manifest(manifest));
  EXPECT_THROW((void)read_and_validate_adw_manifest(manifest),
               std::runtime_error);
}

Checkpoint sample_checkpoint() {
  Checkpoint c;
  c.meta.algorithm = "adwise";
  c.meta.k = 8;
  c.meta.num_vertices = 512;
  c.meta.total_edges = 4096;
  c.meta.edges_consumed = 2048;
  c.meta.assignments = 2000;
  c.meta.sink_bytes = 12345;
  c.partition_state = {std::byte{1}, std::byte{2}, std::byte{3}, std::byte{4}};
  c.algorithm_state = {std::byte{5}, std::byte{6}};
  return c;
}

TEST_F(CrashMatrixTest, CheckpointTruncatedAtEveryLength) {
  const std::string good = track(base_ + ".adwk");
  const std::string bad = track(base_ + "_trunc.adwk");
  write_checkpoint_file(good, sample_checkpoint());
  const std::string bytes = read_bytes(good);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    write_bytes(bad, bytes.substr(0, len));
    EXPECT_THROW((void)read_checkpoint_file(bad), std::runtime_error)
        << "accepted a checkpoint truncated to " << len << " bytes";
  }
}

TEST_F(CrashMatrixTest, CheckpointBitFlippedAtEveryByte) {
  const std::string good = track(base_ + "_f.adwk");
  const std::string bad = track(base_ + "_flip.adwk");
  write_checkpoint_file(good, sample_checkpoint());
  const std::string bytes = read_bytes(good);
  // Header bytes are covered by header_crc, section headers by the exact
  // structure check, payloads by their per-section CRCs: no byte of a
  // checkpoint may flip undetected — a bad resume silently corrupts the
  // whole partition output downstream.
  for (std::size_t off = 0; off < bytes.size(); ++off) {
    std::string flipped = bytes;
    flipped[off] = static_cast<char>(flipped[off] ^ 0x40);
    write_bytes(bad, flipped);
    EXPECT_THROW((void)read_checkpoint_file(bad), std::runtime_error)
        << "accepted a checkpoint with byte " << off << " flipped";
  }
}

TEST_F(CrashMatrixTest, CheckpointTrailingBytesRejected) {
  const std::string good = track(base_ + "_t.adwk");
  write_checkpoint_file(good, sample_checkpoint());
  std::string bytes = read_bytes(good);
  bytes.push_back('\0');
  write_bytes(good, bytes);
  EXPECT_THROW((void)read_checkpoint_file(good), std::runtime_error);
}

TEST_F(CrashMatrixTest, CheckpointMissingFileFailsOpenly) {
  EXPECT_FALSE(is_checkpoint_file(base_ + "_missing.adwk"));
  EXPECT_THROW((void)read_checkpoint_file(base_ + "_missing.adwk"),
               std::runtime_error);
}

TEST_F(CrashMatrixTest, ErrorsNamePathAndOffsets) {
  // Satellite: I/O errors must carry enough context to debug from the
  // message alone — the path and expected-vs-actual values.
  const std::string good = track(base_ + "_msg.adwk");
  write_checkpoint_file(good, sample_checkpoint());
  std::string bytes = read_bytes(good);
  bytes.resize(bytes.size() / 2);
  write_bytes(good, bytes);
  try {
    (void)read_checkpoint_file(good);
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(good), std::string::npos)
        << e.what();
  }

  const std::string adw = track(base_ + "_msg.adw");
  write_adw_file(adw, kEdges);
  std::string abytes = read_bytes(adw);
  abytes.resize(abytes.size() - 3);
  write_bytes(adw, abytes);
  try {
    (void)read_adw_header(adw);
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(adw), std::string::npos) << msg;
    // Expected-vs-actual: both the well-formed size and the real size.
    EXPECT_NE(msg.find(std::to_string(abytes.size())), std::string::npos)
        << msg;
  }
}

}  // namespace
}  // namespace adwise
