// Seeded end-to-end chaos harness, in-process edition: the full pipeline
// (convert → shard → checkpointed partition → crash → resume → verify)
// runs under a per-seed randomized fault schedule injected through the
// process-global injector — the same chokepoint tools/run_chaos.py drives
// against the real binaries. The contract under ANY schedule:
//  - every phase either completes or fails with a typed error
//    (DiskFullError / TransientIoError), never an untyped one;
//  - a failed phase leaves no torn destination and no orphan temp file,
//    so simply retrying the phase recovers;
//  - degraded-mode checkpoint write failures never abort partitioning;
//  - a crashed-and-resumed run finishes bit-identical to an undisturbed
//    one.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/edge_stream.h"
#include "src/graph/generators.h"
#include "src/io/adw_format.h"
#include "src/io/adw_shards.h"
#include "src/io/binary_stream.h"
#include "src/io/checkpoint.h"
#include "src/io/fault_injection.h"
#include "src/io/io_error.h"
#include "src/partition/checkpoint_run.h"
#include "src/partition/hdrf_partitioner.h"
#include "src/partition/partition_state.h"

namespace adwise {
namespace {

using Placement = std::pair<Edge, PartitionId>;

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

// Models the process dying mid-partition (everything in memory is lost;
// only durable files survive). Deliberately NOT a std::exception: nothing
// in the pipeline may accidentally catch and absorb a crash.
struct CrashSignal {};

class ChaosPipelineTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kParts = 8;
  static constexpr std::uint32_t kShards = 4;
  static constexpr std::uint64_t kEvery = 97;

  void SetUp() override {
    base_ = ::testing::TempDir() + "chaos_" +
            std::to_string(static_cast<long>(::getpid())) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
  }

  void TearDown() override {
    for (const std::string& p : cleanup_) std::remove(p.c_str());
  }

  std::string track(const std::string& path) {
    cleanup_.push_back(path);
    cleanup_.push_back(path + ".tmp");
    cleanup_.push_back(path + ".inband.tmp");
    return path;
  }

  // No phase may leave a temp file behind, success or failure.
  void expect_no_temp_litter(const std::string& when) {
    for (const std::string& p : cleanup_) {
      if (p.size() > 4 && p.compare(p.size() - 4, 4, ".tmp") == 0) {
        EXPECT_FALSE(file_exists(p)) << "orphan temp file " << p << " " << when;
      }
    }
  }

  // Retries `phase` until it succeeds. Failures must be typed; the seeded
  // injector fires each (op, key) failpoint at most once, so every retry
  // makes progress and the loop provably terminates.
  void run_phase_to_completion(const std::string& name,
                               const std::function<void()>& phase) {
    for (int attempt = 1;; ++attempt) {
      ASSERT_LE(attempt, 100) << name << " did not converge";
      try {
        phase();
        return;
      } catch (const DiskFullError& e) {
        EXPECT_NE(std::string(e.what()).find("disk full"), std::string::npos);
      } catch (const TransientIoError&) {
      }
      // Either typed failure: nothing torn may be left behind.
      expect_no_temp_litter("after failed " + name + " attempt " +
                            std::to_string(attempt));
    }
  }

  std::string base_;
  std::vector<std::string> cleanup_;
};

TEST_F(ChaosPipelineTest, PipelineSurvivesSeededFaultSchedules) {
  for (std::uint32_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const std::string tag = base_ + "_s" + std::to_string(seed);
    const std::string adw_path = track(tag + ".adw");
    const std::string manifest_path = track(tag + ".adws");
    for (std::uint32_t s = 0; s < kShards; ++s) {
      track(adw_shard_path(manifest_path, s));
    }
    const std::string ckpt_path = track(tag + ".adwk");

    const Graph g = make_erdos_renyi(300, 3500, seed);
    const VertexId n = g.num_vertices();

    // Fault-free reference run.
    std::vector<Placement> reference;
    {
      HdrfPartitioner partitioner;
      PartitionState state(kParts, n);
      VectorEdgeStream stream(g.edges());
      partitioner.partition(stream, state, [&](const Edge& e, PartitionId p) {
        reference.emplace_back(e, p);
      });
    }

    // Per-seed randomized schedule over both directions of the I/O path.
    SeededFaultInjector::Options fopts;
    fopts.seed = seed * 7919;
    fopts.eintr_probability = 0.05;
    fopts.eagain_probability = 0.05;
    fopts.write_eintr_probability = 0.08;
    fopts.write_eio_probability = 0.05;
    if (seed % 2 == 0) {
      fopts.short_read_probability = 0.05;
      fopts.short_write_probability = 0.08;
    }
    if (seed % 3 == 0) fopts.enospc_probability = 0.05;
    SeededFaultInjector injector(fopts);
    // The process-global hook: every AtomicFileWriter in the pipeline sees
    // the schedule without any injector threading — exactly what the
    // subprocess chaos runs rely on.
    ScopedProcessFaultInjector scope(&injector);

    // Phase 1: convert the edge list to a CRC-protected .adw.
    AdwWriter::Options wopts;
    wopts.with_crc = true;
    run_phase_to_completion(
        "convert", [&] { write_adw_file(adw_path, g.edges(), wopts); });

    // Phase 2: reshard the .adw into a manifest + shard chunk files.
    run_phase_to_completion("shard", [&] {
      (void)adw_to_sharded_adw(adw_path, manifest_path, kShards);
    });
    {
      const AdwManifest manifest =
          read_and_validate_adw_manifest(manifest_path);
      EXPECT_EQ(manifest.num_edges(), g.num_edges());
      EXPECT_EQ(manifest.num_shards(), kShards);
    }

    // Phase 3: checkpointed partitioning of the .adw under read faults,
    // write faults on every checkpoint, and repeated mid-run crashes.
    // Crash points are seed-derived and NOT aligned to checkpoint
    // boundaries; each attempt survives a little longer, so the loop
    // terminates even if every single checkpoint write fails.
    std::vector<Placement> placements;
    int crashes = 0;
    for (int attempt = 1;; ++attempt) {
      ASSERT_LE(attempt, 200) << "crash/resume loop did not converge";
      HdrfPartitioner partitioner;
      PartitionState state(kParts, n);
      BinaryEdgeStream::Options bopts;
      bopts.chunk_edges = 256;
      bopts.fault_injector = &injector;
      bopts.retry.sleeper = [](unsigned) {};
      BinaryEdgeStream stream(adw_path, bopts);

      Checkpoint resume;
      const Checkpoint* resume_ptr = nullptr;
      if (is_checkpoint_file(ckpt_path)) {
        resume = read_checkpoint_file(ckpt_path);
        validate_checkpoint(resume.meta, partitioner.name(), kParts, n);
        placements.resize(resume.meta.sink_bytes);
        resume_ptr = &resume;
      } else {
        placements.clear();
      }

      CheckpointRunOptions copts;
      copts.checkpoint_path = ckpt_path;
      copts.every = kEvery;
      copts.async_io = true;  // degraded mode is the default
      copts.durable_sink_bytes = [&] { return placements.size(); };
      const std::size_t crash_after =
          (137 + 211 * static_cast<std::size_t>(attempt)) * (seed % 3 + 1);
      try {
        run_with_checkpoints(
            partitioner, stream, state,
            [&](const Edge& e, PartitionId p) {
              placements.emplace_back(e, p);
              if (placements.size() >= crash_after) throw CrashSignal{};
            },
            copts, resume_ptr);
      } catch (const CrashSignal&) {
        ++crashes;
        continue;
      }
      break;
    }

    EXPECT_GT(crashes, 0) << "no attempt ever crashed — chaos is vacuous";
    // Bit-identity: the faulted, crashed, resumed run must match the
    // undisturbed reference placement for placement.
    EXPECT_EQ(placements, reference);
    expect_no_temp_litter("after the pipeline for seed " +
                          std::to_string(seed));

    const auto c = injector.counters();
    EXPECT_GT(c.eintrs + c.eagains + c.short_reads + c.write_eintrs +
                  c.write_eios + c.short_writes + c.enospcs,
              0u)
        << "schedule injected nothing — chaos is vacuous";
  }
}

}  // namespace
}  // namespace adwise
