// Deterministic fault-injection tests for the out-of-core I/O path:
// transient pread/open failures are retried and never change the delivered
// edge sequence, corruption is detected (never retried), a dead prefetch
// worker degrades to synchronous reads, and the whole schedule is a pure
// function of the injector seed.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/edge_stream.h"
#include "src/graph/generators.h"
#include "src/io/adw_format.h"
#include "src/io/binary_stream.h"
#include "src/io/fault_injection.h"
#include "src/io/io_error.h"

namespace adwise {
namespace {

std::vector<Edge> drain(EdgeStream& stream) {
  std::vector<Edge> out;
  Edge e;
  while (stream.next(e)) out.push_back(e);
  return out;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "fault_test_" +
            std::to_string(static_cast<long>(::getpid())) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".adw";
    graph_ = make_erdos_renyi(300, 5000, 13);
    AdwWriter::Options wopts;
    wopts.with_crc = true;
    wopts.crc_block_bytes = 1u << 10;  // many blocks, many offsets to fault
    write_adw_file(path_, graph_.edges(), wopts);
    clean_ = [this] {
      BinaryEdgeStream stream(path_);
      return drain(stream);
    }();
  }

  void TearDown() override { std::remove(path_.c_str()); }

  // Small chunks so a drain performs many preads (many fault sites).
  static BinaryEdgeStream::Options chunked(FaultInjector* injector) {
    BinaryEdgeStream::Options opts;
    opts.chunk_edges = 128;
    opts.fault_injector = injector;
    opts.retry.sleeper = [](unsigned) {};  // never actually sleep in tests
    return opts;
  }

  Graph graph_;
  std::vector<Edge> clean_;
  std::string path_;
};

TEST_F(FaultInjectionTest, TransientPreadFaultsAreInvisibleToTheConsumer) {
  SeededFaultInjector::Options fopts;
  fopts.seed = 42;
  fopts.short_read_probability = 0.2;
  fopts.eintr_probability = 0.2;
  fopts.eagain_probability = 0.2;
  SeededFaultInjector injector(fopts);

  BinaryEdgeStream stream(path_, chunked(&injector));
  EXPECT_EQ(drain(stream), clean_);

  const auto counters = injector.counters();
  EXPECT_GT(counters.short_reads + counters.eintrs + counters.eagains, 0u)
      << "seed injected nothing — test is vacuous";
  EXPECT_GT(stream.io_retries(), 0u);
  EXPECT_FALSE(stream.prefetch_degraded());
}

TEST_F(FaultInjectionTest, TransientFaultsSurviveRewind) {
  SeededFaultInjector::Options fopts;
  fopts.seed = 7;
  fopts.eintr_probability = 0.3;
  SeededFaultInjector injector(fopts);
  BinaryEdgeStream stream(path_, chunked(&injector));
  EXPECT_EQ(drain(stream), clean_);
  stream.rewind();
  EXPECT_EQ(drain(stream), clean_);
}

TEST_F(FaultInjectionTest, TransientOpenFailuresAreRetried) {
  SeededFaultInjector::Options fopts;
  fopts.fail_opens = 2;
  SeededFaultInjector injector(fopts);
  BinaryEdgeStream::Options opts = chunked(&injector);
  unsigned backoffs = 0;
  opts.retry.sleeper = [&](unsigned delay_us) {
    ++backoffs;
    EXPECT_GT(delay_us, 0u);
  };
  BinaryEdgeStream stream(path_, opts);  // must not throw
  EXPECT_EQ(drain(stream), clean_);
  EXPECT_EQ(injector.counters().failed_opens, 2u);
  EXPECT_GE(backoffs, 2u);
}

TEST_F(FaultInjectionTest, RetryBudgetExhaustionSurfacesTransientError) {
  // Unlike the seeded injector (each site faults at most once, so retries
  // always make progress), this one never relents — the stream must give
  // up after max_attempts and surface a TransientIoError, not spin.
  class AlwaysEagain final : public FaultInjector {
   public:
    PreadFault pread_fault(std::uint64_t) override {
      return PreadFault::kEagain;
    }
  };
  AlwaysEagain injector;
  BinaryEdgeStream::Options opts = chunked(&injector);
  opts.prefetch = false;  // surface the error on the construction path
  opts.retry.max_attempts = 3;
  unsigned backoffs = 0;
  unsigned last_delay = 0;
  opts.retry.sleeper = [&](unsigned delay_us) {
    ++backoffs;
    EXPECT_GE(delay_us, last_delay) << "backoff must not shrink";
    last_delay = delay_us;
  };
  try {
    BinaryEdgeStream stream(path_, opts);
    drain(stream);
    FAIL() << "expected TransientIoError";
  } catch (const TransientIoError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path_), std::string::npos) << msg;
  }
  // max_attempts - 1 backoffs between 3 attempts on the first failing pread.
  EXPECT_EQ(backoffs, 2u);
}

TEST_F(FaultInjectionTest, ExponentialBackoffDelaysDoubleUpToCap) {
  RetryPolicy policy;
  policy.base_delay_us = 100;
  policy.max_delay_us = 500;
  EXPECT_EQ(policy.delay_for_attempt(1), 100u);
  EXPECT_EQ(policy.delay_for_attempt(2), 200u);
  EXPECT_EQ(policy.delay_for_attempt(3), 400u);
  EXPECT_EQ(policy.delay_for_attempt(4), 500u);  // capped
  EXPECT_EQ(policy.delay_for_attempt(10), 500u);
}

TEST_F(FaultInjectionTest, BitflipsAreCaughtByCrcAndNeverRetried) {
  SeededFaultInjector::Options fopts;
  fopts.seed = 99;
  fopts.bitflip_probability = 0.5;
  SeededFaultInjector injector(fopts);
  try {
    // The first chunk is read during construction, so the throw may come
    // from the constructor or from the drain.
    BinaryEdgeStream stream(path_, chunked(&injector));
    drain(stream);
    FAIL() << "expected CorruptDataError (seed injected no flips?)";
  } catch (const CorruptDataError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path_), std::string::npos) << msg;
    EXPECT_NE(msg.find("CRC"), std::string::npos) << msg;
  }
  EXPECT_GT(injector.counters().bitflips, 0u);
}

TEST_F(FaultInjectionTest, PrefetchWorkerDeathDegradesToSyncReads) {
  SeededFaultInjector::Options fopts;
  fopts.kill_worker_after = 1;  // die on the second background fetch
  SeededFaultInjector injector(fopts);
  BinaryEdgeStream stream(path_, chunked(&injector));
  // The drain must still deliver every edge — the stream falls back to
  // synchronous reads instead of aborting the run.
  EXPECT_EQ(drain(stream), clean_);
  EXPECT_TRUE(stream.prefetch_degraded());
  EXPECT_EQ(injector.counters().worker_kills, 1u);
  // The degradation is sticky: a rewound pass stays synchronous and
  // still delivers the full sequence.
  stream.rewind();
  EXPECT_EQ(drain(stream), clean_);
}

TEST_F(FaultInjectionTest, SameSeedSameSchedule) {
  SeededFaultInjector::Options fopts;
  fopts.seed = 1234;
  fopts.short_read_probability = 0.15;
  fopts.eintr_probability = 0.15;
  fopts.eagain_probability = 0.15;

  auto run = [&] {
    SeededFaultInjector injector(fopts);
    BinaryEdgeStream stream(path_, chunked(&injector));
    EXPECT_EQ(drain(stream), clean_);
    return injector.counters();
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.short_reads, second.short_reads);
  EXPECT_EQ(first.eintrs, second.eintrs);
  EXPECT_EQ(first.eagains, second.eagains);
  EXPECT_GT(first.short_reads + first.eintrs + first.eagains, 0u);
}

TEST(FaultInjectingEdgeStreamTest, RetriedPositionsDeliverEveryEdgeOnce) {
  const Graph g = make_erdos_renyi(100, 2000, 3);
  VectorEdgeStream inner(g.edges());
  FaultInjectingEdgeStream::Options fopts;
  fopts.seed = 5;
  fopts.fault_probability = 0.01;
  FaultInjectingEdgeStream stream(inner, fopts);

  // Catch-and-retry: each position faults at most once, so simply calling
  // next() again after a TransientIoError makes progress and the loop
  // terminates with the exact underlying sequence.
  std::vector<Edge> out;
  Edge e;
  int faults = 0;
  for (;;) {
    try {
      if (!stream.next(e)) break;
      out.push_back(e);
    } catch (const TransientIoError&) {
      ASSERT_LE(++faults, 1000) << "fault loop did not terminate";
    }
  }
  EXPECT_EQ(out.size(), g.num_edges());
  EXPECT_TRUE(std::equal(out.begin(), out.end(), g.edges().begin()));
  EXPECT_GT(stream.faults_injected(), 0u);
  EXPECT_EQ(stream.faults_injected(), static_cast<std::uint64_t>(faults));
}

TEST(FaultInjectingEdgeStreamTest, ScheduleNotResetByRewind) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}};
  VectorEdgeStream inner(edges);
  FaultInjectingEdgeStream::Options fopts;
  fopts.seed = 1;
  fopts.fault_probability = 1.0;  // every position faults exactly once
  FaultInjectingEdgeStream stream(inner, fopts);

  Edge e;
  EXPECT_THROW((void)stream.next(e), TransientIoError);
  ASSERT_TRUE(stream.next(e));  // the retry sails through
  EXPECT_EQ(e, edges[0]);

  // After rewind the already-fired positions never fault again — the
  // property that makes any outer resume loop terminate.
  stream.rewind();
  ASSERT_TRUE(stream.next(e));
  EXPECT_EQ(e, edges[0]);
  EXPECT_THROW((void)stream.next(e), TransientIoError);  // fresh position
}

}  // namespace
}  // namespace adwise
