// Tests for the quality-report module and the degree oracle.
#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/partition/dbh_partitioner.h"
#include "src/partition/hdrf_partitioner.h"
#include "src/partition/quality.h"

namespace adwise {
namespace {

TEST(QualityReportTest, HandComputedExample) {
  PartitionState st(3, 6);
  st.assign({0, 1}, 0);
  st.assign({0, 2}, 1);
  st.assign({0, 3}, 2);
  st.assign({1, 2}, 0);
  const QualityReport report = analyze_quality(st);
  // Vertex 0: 3 replicas; 1: 1 (p0); 2: 2 (p0,p1); 3: 1; 4,5: 0.
  EXPECT_DOUBLE_EQ(report.replication_degree, 7.0 / 4.0);
  EXPECT_EQ(report.vertices_with_replicas, 4u);
  EXPECT_EQ(report.cut_vertices, 2u);
  EXPECT_EQ(report.max_replicas, 3u);
  EXPECT_EQ(report.communication_volume, 3u);  // (3-1) + (2-1)
  ASSERT_EQ(report.replica_histogram.size(), 4u);
  EXPECT_EQ(report.replica_histogram[0], 2u);
  EXPECT_EQ(report.replica_histogram[1], 2u);
  EXPECT_EQ(report.replica_histogram[2], 1u);
  EXPECT_EQ(report.replica_histogram[3], 1u);
  EXPECT_EQ(report.partition_sizes,
            (std::vector<std::uint64_t>{2, 1, 1}));
}

TEST(QualityReportTest, FromAssignmentsMatchesFromState) {
  const Graph g = make_community_graph({.num_communities = 30, .seed = 5});
  HdrfPartitioner hdrf;
  PartitionState st(8, g.num_vertices());
  std::vector<Assignment> assignments;
  VectorEdgeStream stream(g.edges());
  hdrf.partition(stream, st, [&](const Edge& e, PartitionId p) {
    assignments.push_back({e, p});
  });
  const QualityReport a = analyze_quality(st);
  const QualityReport b = analyze_quality(assignments, 8, g.num_vertices());
  EXPECT_DOUBLE_EQ(a.replication_degree, b.replication_degree);
  EXPECT_EQ(a.communication_volume, b.communication_volume);
  EXPECT_EQ(a.replica_histogram, b.replica_histogram);
  EXPECT_EQ(a.partition_sizes, b.partition_sizes);
}

TEST(QualityReportTest, HistogramMassEqualsVertexCount) {
  const Graph g = make_erdos_renyi(300, 1500, 3);
  HdrfPartitioner hdrf;
  PartitionState st(8, g.num_vertices());
  VectorEdgeStream stream(g.edges());
  hdrf.partition(stream, st);
  const QualityReport report = analyze_quality(st);
  std::uint64_t mass = 0;
  for (const auto count : report.replica_histogram) mass += count;
  EXPECT_EQ(mass, g.num_vertices());
}

TEST(QualityReportTest, EmptyState) {
  PartitionState st(4, 10);
  const QualityReport report = analyze_quality(st);
  EXPECT_DOUBLE_EQ(report.replication_degree, 0.0);
  EXPECT_EQ(report.cut_vertices, 0u);
  EXPECT_EQ(report.communication_volume, 0u);
  EXPECT_EQ(report.replica_histogram.size(), 1u);
  EXPECT_EQ(report.replica_histogram[0], 10u);
}

// --- Hardening: adversarial inputs ------------------------------------------------
// The leaderboard feeds analyze_quality whatever a partitioner produced;
// degenerate shapes (empty partitions, isolated vertices, duplicate edges,
// k > |E|, self-loops) must yield well-defined metrics, never NaN/inf or a
// divide-by-zero, and the state/assignments paths must agree on all of them.

TEST(QualityHardeningTest, EmptyPartitionsAreCharged) {
  // Everything on p0, three partitions empty: load balance is exactly
  // max / (assigned / k) = 2 / (2/4) = 4, imbalance is total.
  PartitionState st(4, 6);
  st.assign({0, 1}, 0);
  st.assign({1, 2}, 0);
  const QualityReport q = analyze_quality(st);
  EXPECT_DOUBLE_EQ(q.load_balance, 4.0);
  EXPECT_DOUBLE_EQ(q.vertex_balance, 4.0);  // 3 vertices, all on p0
  EXPECT_DOUBLE_EQ(q.imbalance, 1.0);
  EXPECT_EQ(q.partition_sizes, (std::vector<std::uint64_t>{2, 0, 0, 0}));
  EXPECT_EQ(q.vertices_per_partition,
            (std::vector<std::uint64_t>{3, 0, 0, 0}));
}

TEST(QualityHardeningTest, IsolatedVerticesStayOutOfEveryRatio) {
  // 98 of 100 vertices never appear: they sit in histogram bucket 0 and
  // must not dilute replication or the balance ratios.
  PartitionState st(2, 100);
  st.assign({0, 1}, 0);
  const QualityReport q = analyze_quality(st);
  EXPECT_DOUBLE_EQ(q.replication_degree, 1.0);
  EXPECT_EQ(q.replica_histogram[0], 98u);
  EXPECT_EQ(q.vertices_with_replicas, 2u);
  EXPECT_DOUBLE_EQ(q.load_balance, 2.0);
  EXPECT_DOUBLE_EQ(q.vertex_balance, 2.0);
}

TEST(QualityHardeningTest, DuplicateEdgesCountLoadNotReplicas) {
  // The same edge twice on one partition doubles the load but not the
  // replica sets; split across two partitions it doubles both endpoints.
  PartitionState same(2, 4);
  same.assign({0, 1}, 0);
  same.assign({0, 1}, 0);
  const QualityReport q_same = analyze_quality(same);
  EXPECT_EQ(q_same.partition_sizes[0], 2u);
  EXPECT_DOUBLE_EQ(q_same.replication_degree, 1.0);
  EXPECT_EQ(q_same.communication_volume, 0u);

  PartitionState split(2, 4);
  split.assign({0, 1}, 0);
  split.assign({0, 1}, 1);
  const QualityReport q_split = analyze_quality(split);
  EXPECT_DOUBLE_EQ(q_split.replication_degree, 2.0);
  EXPECT_EQ(q_split.communication_volume, 2u);
  EXPECT_DOUBLE_EQ(q_split.load_balance, 1.0);
}

TEST(QualityHardeningTest, KLargerThanEdgeCount) {
  // One edge, eight partitions: the normalized max load is k by
  // definition (the single loaded partition is k times the even share).
  PartitionState st(8, 4);
  st.assign({0, 1}, 3);
  const QualityReport q = analyze_quality(st);
  EXPECT_DOUBLE_EQ(q.load_balance, 8.0);
  EXPECT_DOUBLE_EQ(q.vertex_balance, 8.0);
  EXPECT_DOUBLE_EQ(q.replication_degree, 1.0);
}

TEST(QualityHardeningTest, SelfLoopReplicatesOnce) {
  PartitionState st(4, 8);
  st.assign({5, 5}, 2);
  const QualityReport q = analyze_quality(st);
  EXPECT_EQ(q.vertices_with_replicas, 1u);
  EXPECT_DOUBLE_EQ(q.replication_degree, 1.0);
  EXPECT_EQ(q.communication_volume, 0u);
  EXPECT_EQ(q.partition_sizes[2], 1u);
}

TEST(QualityHardeningTest, StateAndAssignmentPathsAgreeOnAdversarialMix) {
  // Duplicates + self-loop + isolated vertices through both entry points.
  const std::vector<Assignment> assignments{
      {{0, 1}, 0}, {{0, 1}, 1}, {{0, 1}, 1}, {{3, 3}, 2}, {{4, 5}, 3},
  };
  PartitionState st(4, 50);
  for (const Assignment& a : assignments) st.assign(a.edge, a.partition);
  const QualityReport a = analyze_quality(st);
  const QualityReport b = analyze_quality(assignments, 4, 50);
  EXPECT_DOUBLE_EQ(a.replication_degree, b.replication_degree);
  EXPECT_DOUBLE_EQ(a.load_balance, b.load_balance);
  EXPECT_DOUBLE_EQ(a.vertex_balance, b.vertex_balance);
  EXPECT_EQ(a.partition_sizes, b.partition_sizes);
  EXPECT_EQ(a.vertices_per_partition, b.vertices_per_partition);
  EXPECT_EQ(a.replica_histogram, b.replica_histogram);
}

TEST(QualityHardeningTest, EmptyStateBalancesDefaultToPerfect) {
  // Documented convention: no edges -> 1.0 (not 0, not NaN), so a
  // leaderboard row over an empty cell stays finite and comparable.
  PartitionState st(4, 10);
  const QualityReport q = analyze_quality(st);
  EXPECT_DOUBLE_EQ(q.load_balance, 1.0);
  EXPECT_DOUBLE_EQ(q.vertex_balance, 1.0);
}

// --- Degree oracle ---------------------------------------------------------------

TEST(DegreeOracleTest, OracleOverridesObservedDegrees) {
  PartitionState st(4, 5);
  st.set_degree_oracle({10, 20, 0, 0, 0});
  EXPECT_TRUE(st.has_degree_oracle());
  EXPECT_EQ(st.degree(0), 10u);
  EXPECT_EQ(st.degree(1), 20u);
  EXPECT_EQ(st.max_degree(), 20u);
  st.assign({0, 1}, 0);
  EXPECT_EQ(st.degree(0), 10u);           // oracle wins
  EXPECT_EQ(st.observed_degree(0), 1u);   // observation still tracked
}

TEST(DegreeOracleTest, ExactDegreesHelpDbhOnSkewedGraph) {
  // DBH's premise is hashing the LOWER-degree endpoint; with partial
  // degrees the first occurrence of a hub looks low-degree and gets hashed.
  // Exact degrees fix exactly that, so quality must not get worse.
  const Graph g = make_rmat({.scale = 11, .num_edges = 30000, .seed = 6});
  auto run_dbh = [&](bool oracle) {
    DbhPartitioner dbh;
    PartitionState st(16, g.num_vertices());
    if (oracle) st.set_degree_oracle(g.degrees());
    VectorEdgeStream stream(g.edges());
    dbh.partition(stream, st);
    return st.replication_degree();
  };
  EXPECT_LE(run_dbh(true), run_dbh(false) * 1.02);
}

}  // namespace
}  // namespace adwise
