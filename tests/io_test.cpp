// Tests for the out-of-core I/O subsystem: the .adw binary format
// (writer/reader round trips, golden bytes, corruption handling) and the
// prefetching BinaryEdgeStream.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/graph/file_stream.h"
#include "src/graph/generators.h"
#include "src/io/adw_format.h"
#include "src/io/binary_stream.h"
#include "src/partition/hdrf_partitioner.h"

namespace adwise {
namespace {

std::vector<Edge> drain(EdgeStream& stream) {
  std::vector<Edge> out;
  Edge e;
  while (stream.next(e)) out.push_back(e);
  return out;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

class AdwFormatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "adw_test_" +
            std::to_string(static_cast<long>(::getpid())) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
    adw_path_ = base_ + ".adw";
    text_path_ = base_ + ".txt";
  }

  void TearDown() override {
    std::remove(adw_path_.c_str());
    std::remove(text_path_.c_str());
  }

  void write_text(const std::string& contents) {
    std::ofstream out(text_path_);
    out << contents;
  }

  std::string base_, adw_path_, text_path_;
};

TEST_F(AdwFormatTest, GoldenBytes) {
  // Endianness pin: the exact on-disk bytes for two known edges. If this
  // breaks, .adw files written on one machine no longer read on another.
  write_adw_file(adw_path_, std::vector<Edge>{{1, 2}, {0x01020304, 5}});
  const std::string bytes = read_bytes(adw_path_);
  const unsigned char expected[] = {
      'A', 'D', 'W', 'F',              // magic
      1,   0,   0,   0,                // version 1, LE
      2,   0,   0,   0,   0, 0, 0, 0,  // num_edges = 2
      4,   3,   2,   1,   0, 0, 0, 0,  // max_vertex_id = 0x01020304
      1,   0,   0,   0,   2, 0, 0, 0,  // edge (1, 2)
      4,   3,   2,   1,   5, 0, 0, 0,  // edge (0x01020304, 5)
  };
  ASSERT_EQ(bytes.size(), sizeof(expected));
  for (std::size_t i = 0; i < sizeof(expected); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(bytes[i]), expected[i]) << "byte " << i;
  }
}

TEST_F(AdwFormatTest, GoldenBytesV2) {
  // Version-2 pin: same record region as version 1, then the CRC trailer.
  // With crc_block_bytes = 8 each record is its own CRC block, so every
  // trailer field appears with a known value. Quoted in docs/FORMATS.md.
  AdwWriter::Options opts;
  opts.with_crc = true;
  opts.crc_block_bytes = 8;
  write_adw_file(adw_path_, std::vector<Edge>{{1, 2}, {0x01020304, 5}}, opts);
  const std::string bytes = read_bytes(adw_path_);
  const unsigned char expected[] = {
      'A', 'D', 'W', 'F',                  // magic
      2,   0,   0,   0,                    // version 2, LE
      2,   0,   0,   0,   0,   0, 0, 0,    // num_edges = 2
      4,   3,   2,   1,   0,   0, 0, 0,    // max_vertex_id = 0x01020304
      1,   0,   0,   0,   2,   0, 0, 0,    // edge (1, 2)
      4,   3,   2,   1,   5,   0, 0, 0,    // edge (0x01020304, 5)
      124, 23,  129, 3,                    // crc32(record 0) = 0x0381177C
      135, 179, 246, 151,                  // crc32(record 1) = 0x97F6B387
      8,   0,   0,   0,                    // footer: crc_block_bytes = 8
      2,   0,   0,   0,                    //         num_blocks = 2
      76,  202, 243, 53,                   //         table_crc = 0x35F3CA4C
      'A', 'D', 'W', 'C',                  //         footer magic
  };
  ASSERT_EQ(bytes.size(), sizeof(expected));
  for (std::size_t i = 0; i < sizeof(expected); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(bytes[i]), expected[i]) << "byte " << i;
  }
}

TEST_F(AdwFormatTest, RoundTripEmpty) {
  write_adw_file(adw_path_, {});
  const AdwHeader header = read_adw_header(adw_path_);
  EXPECT_EQ(header.num_edges, 0u);
  EXPECT_EQ(header.max_vertex_id, 0u);
  BinaryEdgeStream stream(adw_path_);
  EXPECT_EQ(stream.size_hint(), 0u);
  Edge e;
  EXPECT_FALSE(stream.next(e));
  EXPECT_TRUE(stream.exhausted());
}

TEST_F(AdwFormatTest, RoundTripMatchesWrittenEdges) {
  const Graph g = make_rmat({.scale = 10, .num_edges = 20'000, .seed = 3});
  write_adw_file(adw_path_, g.edges());
  const AdwHeader header = read_adw_header(adw_path_);
  EXPECT_EQ(header.num_edges, g.num_edges());
  BinaryEdgeStream stream(adw_path_);
  const auto edges = drain(stream);
  ASSERT_EQ(edges.size(), g.num_edges());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    ASSERT_EQ(edges[i], g.edge(i)) << "edge " << i;
  }
}

TEST_F(AdwFormatTest, WriterDropsSelfLoops) {
  write_adw_file(adw_path_, std::vector<Edge>{{0, 1}, {7, 7}, {2, 3}});
  const AdwHeader header = read_adw_header(adw_path_);
  EXPECT_EQ(header.num_edges, 2u);
  BinaryEdgeStream stream(adw_path_);
  EXPECT_EQ(drain(stream), (std::vector<Edge>{{0, 1}, {2, 3}}));
}

TEST_F(AdwFormatTest, TruncatedHeaderThrows) {
  std::ofstream(adw_path_, std::ios::binary) << "ADWF\x01";
  EXPECT_THROW((void)read_adw_header(adw_path_), std::runtime_error);
  EXPECT_THROW(BinaryEdgeStream{adw_path_}, std::runtime_error);
}

TEST_F(AdwFormatTest, TruncatedRecordThrows) {
  write_adw_file(adw_path_, std::vector<Edge>{{0, 1}, {2, 3}});
  // Chop the last 3 bytes of the final record.
  std::string bytes = read_bytes(adw_path_);
  bytes.resize(bytes.size() - 3);
  std::ofstream(adw_path_, std::ios::binary | std::ios::trunc) << bytes;
  EXPECT_THROW((void)read_adw_header(adw_path_), std::runtime_error);
  EXPECT_THROW(BinaryEdgeStream{adw_path_}, std::runtime_error);
}

TEST_F(AdwFormatTest, BadMagicThrows) {
  write_adw_file(adw_path_, std::vector<Edge>{{0, 1}});
  std::string bytes = read_bytes(adw_path_);
  bytes[0] = 'X';
  std::ofstream(adw_path_, std::ios::binary | std::ios::trunc) << bytes;
  EXPECT_THROW((void)read_adw_header(adw_path_), std::runtime_error);
}

TEST_F(AdwFormatTest, UnsupportedVersionThrows) {
  write_adw_file(adw_path_, std::vector<Edge>{{0, 1}});
  std::string bytes = read_bytes(adw_path_);
  bytes[4] = 99;  // version field
  std::ofstream(adw_path_, std::ios::binary | std::ios::trunc) << bytes;
  EXPECT_THROW((void)read_adw_header(adw_path_), std::runtime_error);
}

TEST_F(AdwFormatTest, VersionTwoWithoutTrailerRejected) {
  // A v1-sized file claiming version 2 has no room for the CRC trailer —
  // it must be rejected as truncated, not read as a plain file.
  write_adw_file(adw_path_, std::vector<Edge>{{0, 1}});
  std::string bytes = read_bytes(adw_path_);
  bytes[4] = 2;  // version field, but no footer follows the records
  std::ofstream(adw_path_, std::ios::binary | std::ios::trunc) << bytes;
  EXPECT_THROW((void)read_adw_header(adw_path_), std::runtime_error);
}

TEST_F(AdwFormatTest, SniffDetectsAdwVsText) {
  write_adw_file(adw_path_, std::vector<Edge>{{0, 1}});
  write_text("0 1\n");
  EXPECT_TRUE(is_adw_file(adw_path_));
  EXPECT_FALSE(is_adw_file(text_path_));
  EXPECT_FALSE(is_adw_file(base_ + ".does_not_exist"));
}

TEST_F(AdwFormatTest, ConvertTextMatchesFileStream) {
  // Comments, CRLF, malformed lines, self-loops, no trailing newline — the
  // converter must replay exactly what the text parser streams.
  write_text("# header\n0 1\r\n5 5\nnot an edge\n\n2 3\n7 4");
  const AdwHeader header = edge_list_to_adw(text_path_, adw_path_);
  EXPECT_EQ(header.num_edges, 3u);
  EXPECT_EQ(header.max_vertex_id, 7u);

  const auto stats = FileEdgeStream::scan(text_path_);
  FileEdgeStream text_stream(text_path_, stats.num_edges);
  BinaryEdgeStream binary_stream(adw_path_);
  EXPECT_EQ(drain(text_stream), drain(binary_stream));
}

TEST_F(AdwFormatTest, ConvertThrowsOnOversizedVertexId) {
  write_text("0 99999999999\n");
  EXPECT_THROW((void)edge_list_to_adw(text_path_, adw_path_),
               std::runtime_error);
}

TEST_F(AdwFormatTest, OverflowingEdgeCountRejected) {
  // A header whose num_edges * 8 wraps uint64 would otherwise satisfy the
  // exact-size check (24 + 0 == 24) while promising 2^61 edges.
  std::byte raw[kAdwHeaderBytes];
  adw_encode_header({.num_edges = 0, .max_vertex_id = 0}, raw);
  adw_store_le64(std::uint64_t{1} << 61, raw + 8);  // patch num_edges
  std::ofstream(adw_path_, std::ios::binary)
      .write(reinterpret_cast<const char*>(raw), kAdwHeaderBytes);
  EXPECT_THROW((void)read_adw_header(adw_path_), std::runtime_error);
}

TEST_F(AdwFormatTest, AbandonedWriterLeavesInvalidFile) {
  // An AdwWriter destroyed without close() must not leave anything a
  // reader accepts — not even a valid-looking empty graph (the buffered
  // records were never flushed, so "empty" would be a lie).
  {
    AdwWriter writer(adw_path_);
    writer.add({0, 1});
  }
  EXPECT_FALSE(is_adw_file(adw_path_));
  EXPECT_THROW((void)read_adw_header(adw_path_), std::runtime_error);
}

TEST_F(AdwFormatTest, MissingInputDoesNotClobberExistingOutput) {
  write_adw_file(adw_path_, std::vector<Edge>{{0, 1}});
  EXPECT_THROW(
      (void)edge_list_to_adw(base_ + ".does_not_exist.txt", adw_path_),
      std::runtime_error);
  // The pre-existing converted file survives an input-open failure.
  EXPECT_EQ(read_adw_header(adw_path_).num_edges, 1u);
}

TEST_F(AdwFormatTest, FailedConversionLeavesNoOutputFile) {
  // A pipeline must not be able to pick up a half-converted graph: on a
  // mid-stream parse failure the partial .adw output is removed.
  write_text("0 1\n2 3\n0 99999999999\n4 5\n");
  EXPECT_THROW((void)edge_list_to_adw(text_path_, adw_path_),
               std::runtime_error);
  EXPECT_FALSE(std::ifstream(adw_path_).good());
}

TEST_F(AdwFormatTest, RecordExceedingHeaderMaxThrows) {
  // A corrupt (or hand-crafted) file whose records exceed the header's
  // max_vertex_id must fail instead of feeding out-of-range ids into
  // consumers' dense per-vertex arrays, which are sized from the header.
  write_adw_file(adw_path_, std::vector<Edge>{{0, 1}, {2, 9}});
  std::string bytes = read_bytes(adw_path_);
  bytes[16] = 5;  // patch max_vertex_id 9 -> 5; record (2, 9) now exceeds it
  std::ofstream(adw_path_, std::ios::binary | std::ios::trunc) << bytes;
  EXPECT_THROW(
      {
        BinaryEdgeStream stream(adw_path_);
        Edge e;
        while (stream.next(e)) {
        }
      },
      std::runtime_error);
}

class BinaryStreamTest : public AdwFormatTest {};

TEST_F(BinaryStreamTest, ChunkBoundariesAndPrefetchMatrix) {
  // The edge sequence must be identical for every chunk size (including
  // chunks that don't divide the edge count and chunk_edges = 1) with and
  // without the background prefetch worker.
  const Graph g = make_erdos_renyi(200, 1000, 5);
  write_adw_file(adw_path_, g.edges());
  const std::vector<Edge> expected(g.edges().begin(), g.edges().end());
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{64}, std::size_t{100'000}}) {
    for (const bool prefetch : {false, true}) {
      BinaryEdgeStream stream(adw_path_,
                              {.chunk_edges = chunk, .prefetch = prefetch});
      EXPECT_EQ(stream.size_hint(), expected.size());
      EXPECT_EQ(drain(stream), expected)
          << "chunk=" << chunk << " prefetch=" << prefetch;
    }
  }
}

TEST_F(BinaryStreamTest, SizeHintDecrements) {
  write_adw_file(adw_path_, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}});
  BinaryEdgeStream stream(adw_path_, {.chunk_edges = 2});
  Edge e;
  EXPECT_EQ(stream.size_hint(), 3u);
  ASSERT_TRUE(stream.next(e));
  EXPECT_EQ(stream.size_hint(), 2u);
  ASSERT_TRUE(stream.next(e));
  ASSERT_TRUE(stream.next(e));
  EXPECT_EQ(stream.size_hint(), 0u);
  EXPECT_FALSE(stream.next(e));
  EXPECT_TRUE(stream.exhausted());
}

TEST_F(BinaryStreamTest, PollingAfterEndStaysExhausted) {
  // Window partitioners poll next() again after the stream first reports
  // end-of-stream (their refill loop runs once per selection): the stream
  // must stay exhausted, not cycle back to a stale buffer.
  const Graph g = make_erdos_renyi(50, 300, 2);
  write_adw_file(adw_path_, g.edges());
  for (const bool prefetch : {false, true}) {
    BinaryEdgeStream stream(adw_path_, {.chunk_edges = 16, .prefetch = prefetch});
    Edge e;
    std::size_t seen = 0;
    while (stream.next(e)) ++seen;
    EXPECT_EQ(seen, g.num_edges());
    for (int i = 0; i < 5; ++i) {
      EXPECT_FALSE(stream.next(e));
      EXPECT_EQ(stream.size_hint(), 0u);
    }
    stream.rewind();  // still rewindable after the extra polls
    EXPECT_EQ(drain(stream).size(), g.num_edges());
  }
}

TEST_F(BinaryStreamTest, RewindReplaysIdentically) {
  const Graph g = make_erdos_renyi(100, 500, 8);
  write_adw_file(adw_path_, g.edges());
  for (const bool prefetch : {false, true}) {
    BinaryEdgeStream stream(adw_path_, {.chunk_edges = 7, .prefetch = prefetch});
    const auto first = drain(stream);
    EXPECT_EQ(first.size(), g.num_edges());
    stream.rewind();
    EXPECT_EQ(stream.size_hint(), g.num_edges());
    EXPECT_EQ(drain(stream), first);

    // Rewind mid-stream (with a prefetch potentially in flight).
    stream.rewind();
    Edge e;
    for (int i = 0; i < 20; ++i) ASSERT_TRUE(stream.next(e));
    stream.rewind();
    EXPECT_EQ(drain(stream), first);
  }
}

TEST_F(BinaryStreamTest, FileEdgeStreamRewindReplaysIdentically) {
  write_text("0 1\n# comment\n2 3\n4 5\n");
  const auto stats = FileEdgeStream::scan(text_path_);
  FileEdgeStream stream(text_path_, stats.num_edges);
  const auto first = drain(stream);
  EXPECT_EQ(first.size(), 3u);
  stream.rewind();
  EXPECT_EQ(stream.size_hint(), 3u);
  EXPECT_EQ(drain(stream), first);
}

TEST_F(BinaryStreamTest, PartitioningMatchesInMemory) {
  const Graph g = make_community_graph({.num_communities = 20, .seed = 4});
  write_adw_file(adw_path_, g.edges());

  HdrfPartitioner from_binary;
  PartitionState binary_state(8, g.num_vertices());
  BinaryEdgeStream binary_stream(adw_path_, {.chunk_edges = 512});
  from_binary.partition(binary_stream, binary_state);

  HdrfPartitioner in_memory;
  PartitionState mem_state(8, g.num_vertices());
  VectorEdgeStream mem_stream(g.edges());
  in_memory.partition(mem_stream, mem_state);

  EXPECT_DOUBLE_EQ(binary_state.replication_degree(),
                   mem_state.replication_degree());
  EXPECT_EQ(binary_state.max_partition_size(), mem_state.max_partition_size());
}

}  // namespace
}  // namespace adwise
