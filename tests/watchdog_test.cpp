// Stall-watchdog tests: deterministic detection semantics against a
// FakeClock, then the two production integrations — a wedged prefetch
// worker degrades the binary stream to synchronous reads, and a wedged
// checkpoint writer degrades the run to in-band synchronous commits. A
// stall must never corrupt data or hang the consumer forever.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/watchdog.h"
#include "src/graph/edge_stream.h"
#include "src/graph/generators.h"
#include "src/io/adw_format.h"
#include "src/io/binary_stream.h"
#include "src/io/checkpoint.h"
#include "src/io/fault_injection.h"
#include "src/obs/metrics.h"
#include "src/obs/obs_sink.h"
#include "src/partition/checkpoint_run.h"
#include "src/partition/hdrf_partitioner.h"
#include "src/partition/partition_state.h"

namespace adwise {
namespace {

using std::chrono::milliseconds;

Watchdog::Options fake_clock_options(const FakeClock& clock) {
  Watchdog::Options opts;
  opts.stall_timeout = milliseconds(100);
  opts.clock = &clock;
  return opts;
}

TEST(WatchdogTest, UnarmedHandleNeverStalls) {
  FakeClock clock;
  Watchdog wd(fake_clock_options(clock));
  int fired = 0;
  Watchdog::Handle& h = wd.watch("idle", [&] { ++fired; });
  clock.advance(milliseconds(1000));
  wd.poll();
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(h.stalled());
}

TEST(WatchdogTest, BeatsKeepAnArmedHandleAlive) {
  FakeClock clock;
  Watchdog wd(fake_clock_options(clock));
  int fired = 0;
  Watchdog::Handle& h = wd.watch("busy", [&] { ++fired; });
  h.arm();
  for (int i = 0; i < 20; ++i) {
    clock.advance(milliseconds(90));  // always inside the 100ms deadline
    h.beat();
    wd.poll();
  }
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(h.stalled());
}

TEST(WatchdogTest, StallFiresExactlyOncePerEpisode) {
  FakeClock clock;
  Watchdog wd(fake_clock_options(clock));
  int fired = 0;
  Watchdog::Handle& h = wd.watch("wedged", [&] { ++fired; });
  h.arm();
  clock.advance(milliseconds(101));
  wd.poll();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(h.stalled());
  // A quiet-but-already-flagged handle is not re-reported every poll.
  clock.advance(milliseconds(1000));
  wd.poll();
  wd.poll();
  EXPECT_EQ(fired, 1);
  // A beat ends the episode; a fresh stall is a fresh report.
  h.beat();
  EXPECT_FALSE(h.stalled());
  clock.advance(milliseconds(101));
  wd.poll();
  EXPECT_EQ(fired, 2);
}

TEST(WatchdogTest, DisarmedHandleIsNeverFlagged) {
  FakeClock clock;
  Watchdog wd(fake_clock_options(clock));
  int fired = 0;
  Watchdog::Handle& h = wd.watch("idle-again", [&] { ++fired; });
  h.arm();
  h.disarm();  // work finished before any stall
  clock.advance(milliseconds(1000));
  wd.poll();
  EXPECT_EQ(fired, 0);
}

TEST(WatchdogTest, DetachStopsCallbacks) {
  FakeClock clock;
  Watchdog wd(fake_clock_options(clock));
  int fired = 0;
  Watchdog::Handle& h = wd.watch("detached", [&] { ++fired; });
  h.arm();
  h.detach();
  clock.advance(milliseconds(1000));
  wd.poll();
  EXPECT_EQ(fired, 0);
}

TEST(WatchdogTest, WatchesMultipleHandlesIndependently) {
  FakeClock clock;
  Watchdog wd(fake_clock_options(clock));
  int a_fired = 0;
  int b_fired = 0;
  Watchdog::Handle& a = wd.watch("a", [&] { ++a_fired; });
  Watchdog::Handle& b = wd.watch("b", [&] { ++b_fired; });
  EXPECT_EQ(a.name(), "a");
  EXPECT_EQ(b.name(), "b");
  a.arm();
  b.arm();
  clock.advance(milliseconds(90));
  b.beat();  // only b makes progress
  clock.advance(milliseconds(90));
  wd.poll();
  EXPECT_EQ(a_fired, 1);
  EXPECT_EQ(b_fired, 0);
}

// --- DurableCheckpointWriter stall degradation ------------------------------

// Blocks the first checkpoint write on a gate the test opens later —
// a deterministic stand-in for an fsync wedged behind a dying disk.
class GateFirstWrite final : public FaultInjector {
 public:
  WriteFault write_fault(WriteOp op, std::uint64_t) override {
    if (op == WriteOp::kWrite && !released_.load()) {
      std::unique_lock<std::mutex> lock(mu_);
      blocked_.store(true);
      cv_.notify_all();
      cv_.wait(lock, [this] { return released_.load(); });
    }
    return WriteFault::kNone;
  }
  void wait_until_blocked() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return blocked_.load(); });
  }
  void release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_.store(true);
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<bool> blocked_{false};
  std::atomic<bool> released_{false};
};

Checkpoint small_checkpoint(std::uint64_t assignments) {
  Checkpoint ckpt;
  ckpt.meta.algorithm = "hdrf";
  ckpt.meta.k = 2;
  ckpt.meta.num_vertices = 4;
  ckpt.meta.assignments = assignments;
  return ckpt;
}

TEST(WatchdogCheckpointTest, StalledWriterRejectsHandoffsAndRecovers) {
  const std::string path = ::testing::TempDir() + "wd_writer_" +
                           std::to_string(static_cast<long>(::getpid())) +
                           ".adwk";
  FakeClock clock;
  Watchdog wd(fake_clock_options(clock));
  GateFirstWrite gate;
  AtomicFileWriter::Options io;
  io.fault_injector = &gate;
  {
    DurableCheckpointWriter writer(path, {}, nullptr, &wd, io);
    ASSERT_TRUE(writer.write(small_checkpoint(1)));
    gate.wait_until_blocked();  // the commit is now wedged mid-write

    clock.advance(milliseconds(101));
    wd.poll();
    EXPECT_TRUE(writer.stalled());
    // Producers are refused instead of blocking forever behind the wedge;
    // the snapshot is NOT queued.
    EXPECT_FALSE(writer.write(small_checkpoint(2)));
    // flush() with the commit still in flight must refuse to claim
    // durability for it.
    EXPECT_THROW(writer.flush(), std::runtime_error);

    // The wedge eventually clears: the in-flight commit completes and the
    // final flush succeeds — but stalled() stays sticky.
    gate.release();
    while (writer.committed() == 0) {
      std::this_thread::sleep_for(milliseconds(1));
    }
    EXPECT_NO_THROW(writer.flush());
    EXPECT_TRUE(writer.stalled());
    EXPECT_EQ(writer.committed(), 1u);
  }
  EXPECT_EQ(read_checkpoint_file(path).meta.assignments, 1u);
  std::remove(path.c_str());
}

TEST(WatchdogCheckpointTest, RunDegradesToInbandCommitsAfterWriterStall) {
  const Graph g = make_erdos_renyi(200, 3000, 9);
  const std::string path = ::testing::TempDir() + "wd_inband_" +
                           std::to_string(static_cast<long>(::getpid())) +
                           ".adwk";
  // Real clock + background polling: the partitioning thread is busy
  // inside run_with_checkpoints, so nobody could call poll() by hand.
  Watchdog::Options wopts;
  wopts.stall_timeout = milliseconds(50);
  wopts.poll_interval = milliseconds(5);
  Watchdog wd(wopts);
  wd.start();

  GateFirstWrite gate;
  std::thread opener([&] {
    gate.wait_until_blocked();
    // Hold the gate well past the stall deadline before releasing it.
    std::this_thread::sleep_for(milliseconds(120));
    gate.release();
  });

  obs::MetricsRegistry reg;
  obs::ObsSink sink;
  sink.metrics = &reg;
  HdrfPartitioner partitioner;
  PartitionState state(4, g.num_vertices());
  VectorEdgeStream stream(g.edges());
  CheckpointRunOptions copts;
  copts.checkpoint_path = path;
  copts.every = 256;
  copts.async_io = true;
  copts.watchdog = &wd;
  copts.obs = &sink;
  copts.ckpt_io.fault_injector = &gate;
  std::uint64_t written = 0;
  EXPECT_NO_THROW(
      written = run_with_checkpoints(partitioner, stream, state, {}, copts));
  opener.join();

  EXPECT_GE(reg.snapshot().value("watchdog.stalls", 0.0), 1.0);
  EXPECT_GE(reg.snapshot().value("checkpoint.inband_commits", 0.0), 1.0);
  EXPECT_GT(written, 0u);
  // Whatever interleaving of writer-thread and in-band commits happened,
  // the surviving checkpoint must be well-formed and belong to this run.
  const Checkpoint final_ckpt = read_checkpoint_file(path);
  EXPECT_EQ(final_ckpt.meta.algorithm, "hdrf");
  EXPECT_EQ(final_ckpt.meta.k, 4u);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  std::remove((path + ".inband.tmp").c_str());
}

// --- BinaryEdgeStream prefetch stall degradation ----------------------------

// Sleeps inside one background pread long enough to trip the watchdog —
// after the stalled fetch finally completes, the stream must go sticky
// synchronous and still deliver every edge. min_offset keeps the sleep off
// the synchronous first-chunk read during construction (the watchdog only
// arms around background fetches).
class SleepOnceInjector final : public FaultInjector {
 public:
  SleepOnceInjector(std::uint64_t min_offset, milliseconds delay)
      : min_offset_(min_offset), delay_(delay) {}
  PreadFault pread_fault(std::uint64_t offset) override {
    if (offset >= min_offset_ && !slept_.exchange(true)) {
      std::this_thread::sleep_for(delay_);
    }
    return PreadFault::kNone;
  }

 private:
  std::uint64_t min_offset_;
  std::atomic<bool> slept_{false};
  milliseconds delay_;
};

TEST(WatchdogStreamTest, PrefetchStallDegradesToSyncReads) {
  const Graph g = make_erdos_renyi(300, 5000, 13);
  const std::string path = ::testing::TempDir() + "wd_stream_" +
                           std::to_string(static_cast<long>(::getpid())) +
                           ".adw";
  write_adw_file(path, g.edges());
  std::vector<Edge> clean;
  {
    BinaryEdgeStream stream(path);
    Edge e;
    while (stream.next(e)) clean.push_back(e);
  }

  Watchdog::Options wopts;
  wopts.stall_timeout = milliseconds(40);
  wopts.poll_interval = milliseconds(5);
  Watchdog wd(wopts);
  wd.start();

  // 128-edge chunks are 1 KiB each; byte offset 4096+ is several chunks
  // in — by then fetches run on the prefetch worker.
  SleepOnceInjector injector(/*min_offset=*/4096, milliseconds(150));
  obs::MetricsRegistry reg;
  obs::ObsSink sink;
  sink.metrics = &reg;
  BinaryEdgeStream::Options opts;
  opts.chunk_edges = 128;  // many chunks: the sleep hits a background fetch
  opts.fault_injector = &injector;
  opts.watchdog = &wd;
  opts.obs = &sink;
  BinaryEdgeStream stream(path, opts);
  std::vector<Edge> out;
  Edge e;
  while (stream.next(e)) out.push_back(e);

  EXPECT_EQ(out, clean) << "stall degradation changed the edge sequence";
  EXPECT_TRUE(stream.prefetch_degraded());
  EXPECT_GE(reg.snapshot().value("watchdog.stalls", 0.0), 1.0);
  // Sticky: a rewound pass stays synchronous and still delivers everything.
  stream.rewind();
  out.clear();
  while (stream.next(e)) out.push_back(e);
  EXPECT_EQ(out, clean);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adwise
