// Tests for the streaming edge-list file reader.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/graph/file_stream.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/io/fault_injection.h"
#include "src/io/io_error.h"
#include "src/partition/hdrf_partitioner.h"

namespace adwise {
namespace {

class FileStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "file_stream_test_" +
            std::to_string(static_cast<long>(::getpid())) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".txt";
  }

  void TearDown() override { std::remove(path_.c_str()); }

  void write(const std::string& contents) {
    std::ofstream out(path_);
    out << contents;
  }

  std::string path_;
};

TEST_F(FileStreamTest, ScanCountsEdgesAndMaxId) {
  write("# comment\n0 1\n1 2\n\n7 3\n5 5\n");
  const auto stats = FileEdgeStream::scan(path_);
  EXPECT_EQ(stats.num_edges, 3u);  // self-loop 5-5 dropped
  EXPECT_EQ(stats.max_vertex_id, 7u);
}

TEST_F(FileStreamTest, StreamsEdgesInFileOrder) {
  write("0 1\n1 2\n7 3\n");
  FileEdgeStream stream(path_, 3);
  EXPECT_EQ(stream.size_hint(), 3u);
  Edge e;
  ASSERT_TRUE(stream.next(e));
  EXPECT_EQ(e, (Edge{0, 1}));
  EXPECT_EQ(stream.size_hint(), 2u);
  ASSERT_TRUE(stream.next(e));
  EXPECT_EQ(e, (Edge{1, 2}));
  ASSERT_TRUE(stream.next(e));
  EXPECT_EQ(e, (Edge{7, 3}));
  EXPECT_FALSE(stream.next(e));
  EXPECT_TRUE(stream.exhausted());
}

TEST_F(FileStreamTest, SkipsCommentsAndSelfLoops) {
  write("% header\n1 1\n# mid comment\n2 3\n");
  FileEdgeStream stream(path_, FileEdgeStream::scan(path_).num_edges);
  Edge e;
  ASSERT_TRUE(stream.next(e));
  EXPECT_EQ(e, (Edge{2, 3}));
  EXPECT_FALSE(stream.next(e));
}

TEST_F(FileStreamTest, EmptyFile) {
  write("");
  const auto stats = FileEdgeStream::scan(path_);
  EXPECT_EQ(stats.num_edges, 0u);
  FileEdgeStream stream(path_, 0);
  Edge e;
  EXPECT_FALSE(stream.next(e));
}

TEST_F(FileStreamTest, NoTrailingNewlineParsesLastEdge) {
  // The final line ends at EOF without '\n': it must still stream (and
  // scan must count it), or out-of-core readers would silently drop the
  // last edge of every file written without a trailing newline.
  write("0 1\n2 3");
  const auto stats = FileEdgeStream::scan(path_);
  EXPECT_EQ(stats.num_edges, 2u);
  EXPECT_EQ(stats.max_vertex_id, 3u);
  FileEdgeStream stream(path_, stats.num_edges);
  Edge e;
  ASSERT_TRUE(stream.next(e));
  EXPECT_EQ(e, (Edge{0, 1}));
  ASSERT_TRUE(stream.next(e));
  EXPECT_EQ(e, (Edge{2, 3}));
  EXPECT_FALSE(stream.next(e));
}

TEST_F(FileStreamTest, BlankAndTrailingNewlinesAreSkipped) {
  write("\n0 1\n\n\n2 3\n\n\n");
  const auto stats = FileEdgeStream::scan(path_);
  EXPECT_EQ(stats.num_edges, 2u);
  FileEdgeStream stream(path_, stats.num_edges);
  Edge e;
  ASSERT_TRUE(stream.next(e));
  EXPECT_EQ(e, (Edge{0, 1}));
  ASSERT_TRUE(stream.next(e));
  EXPECT_EQ(e, (Edge{2, 3}));
  EXPECT_FALSE(stream.next(e));
  EXPECT_TRUE(stream.exhausted());
}

TEST_F(FileStreamTest, CommentOnlyFileStreamsNothing) {
  write("# SNAP header\n% matrix-market header\n#\n%\n");
  const auto stats = FileEdgeStream::scan(path_);
  EXPECT_EQ(stats.num_edges, 0u);
  EXPECT_EQ(stats.max_vertex_id, 0u);
  FileEdgeStream stream(path_, stats.num_edges);
  Edge e;
  EXPECT_FALSE(stream.next(e));
}

TEST_F(FileStreamTest, CommentAtEofWithoutNewline) {
  write("0 1\n# trailing comment");
  const auto stats = FileEdgeStream::scan(path_);
  EXPECT_EQ(stats.num_edges, 1u);
  FileEdgeStream stream(path_, stats.num_edges);
  Edge e;
  ASSERT_TRUE(stream.next(e));
  EXPECT_EQ(e, (Edge{0, 1}));
  EXPECT_FALSE(stream.next(e));
}

TEST_F(FileStreamTest, LeadingWhitespaceAndTabSeparatorsParse) {
  write("  0\t1\n\t2  3\n");
  const auto stats = FileEdgeStream::scan(path_);
  EXPECT_EQ(stats.num_edges, 2u);
  FileEdgeStream stream(path_, stats.num_edges);
  Edge e;
  ASSERT_TRUE(stream.next(e));
  EXPECT_EQ(e, (Edge{0, 1}));
  ASSERT_TRUE(stream.next(e));
  EXPECT_EQ(e, (Edge{2, 3}));
}

TEST_F(FileStreamTest, MalformedLinesAreSkipped) {
  // Non-numeric tokens and a line with a single endpoint are not edges;
  // the parser must skip them, not desynchronize the stream.
  write("a b\n4\n0 1\nx 2\n2 3\n");
  const auto stats = FileEdgeStream::scan(path_);
  EXPECT_EQ(stats.num_edges, 2u);
  FileEdgeStream stream(path_, stats.num_edges);
  Edge e;
  ASSERT_TRUE(stream.next(e));
  EXPECT_EQ(e, (Edge{0, 1}));
  ASSERT_TRUE(stream.next(e));
  EXPECT_EQ(e, (Edge{2, 3}));
  EXPECT_FALSE(stream.next(e));
}

TEST_F(FileStreamTest, CarriageReturnLineEndingsParse) {
  // CRLF files leave a trailing '\r' on every getline; from_chars stops at
  // it, so the edges must still parse.
  write("0 1\r\n2 3\r\n");
  const auto stats = FileEdgeStream::scan(path_);
  EXPECT_EQ(stats.num_edges, 2u);
  FileEdgeStream stream(path_, stats.num_edges);
  Edge e;
  ASSERT_TRUE(stream.next(e));
  EXPECT_EQ(e, (Edge{0, 1}));
  ASSERT_TRUE(stream.next(e));
  EXPECT_EQ(e, (Edge{2, 3}));
}

TEST_F(FileStreamTest, SizeHintStopsAtRequestedEdgeCount) {
  // num_edges below the file's actual count bounds the stream — the
  // contract restreaming passes rely on (partial passes must terminate).
  write("0 1\n2 3\n4 5\n");
  FileEdgeStream stream(path_, 2);
  Edge e;
  ASSERT_TRUE(stream.next(e));
  ASSERT_TRUE(stream.next(e));
  EXPECT_EQ(e, (Edge{2, 3}));
  EXPECT_FALSE(stream.next(e));
  EXPECT_EQ(stream.size_hint(), 0u);
}

TEST_F(FileStreamTest, ThrowsOnMissingFile) {
  EXPECT_THROW((void)FileEdgeStream::scan("/nonexistent/graph.txt"),
               std::runtime_error);
  EXPECT_THROW(FileEdgeStream("/nonexistent/graph.txt", 5),
               std::runtime_error);
}

TEST_F(FileStreamTest, OversizedVertexIdThrowsInScanAndNext) {
  // scan() and next() must validate identically: if scan() merely counted
  // the oversized edge, size_hint() and the controller's |E'| would promise
  // an edge the stream then refuses to deliver.
  write("0 1\n0 99999999999\n");
  EXPECT_THROW((void)FileEdgeStream::scan(path_), std::runtime_error);
  FileEdgeStream stream(path_, 2);
  Edge e;
  ASSERT_TRUE(stream.next(e));
  EXPECT_THROW(stream.next(e), std::runtime_error);
}

TEST_F(FileStreamTest, PartitioningFromFileMatchesInMemory) {
  // End-to-end: write a generated graph, stream-partition it from disk, and
  // compare against partitioning the in-memory edge list.
  const Graph g = make_community_graph({.num_communities = 20, .seed = 4});
  {
    std::ofstream out(path_);
    write_edge_list(out, g);
  }
  const auto stats = FileEdgeStream::scan(path_);
  ASSERT_EQ(stats.num_edges, g.num_edges());

  HdrfPartitioner from_file;
  PartitionState file_state(8, static_cast<VertexId>(stats.max_vertex_id + 1));
  FileEdgeStream file_stream(path_, stats.num_edges);
  from_file.partition(file_stream, file_state);

  HdrfPartitioner in_memory;
  PartitionState mem_state(8, g.num_vertices());
  VectorEdgeStream mem_stream(g.edges());
  in_memory.partition(mem_stream, mem_state);

  EXPECT_DOUBLE_EQ(file_state.replication_degree(),
                   mem_state.replication_degree());
  EXPECT_EQ(file_state.max_partition_size(), mem_state.max_partition_size());
}

// --- Fault-injection parity with BinaryEdgeStream ---------------------------
// The text reader shares the binary stream's transient-failure policy;
// these tests pin that an injected EINTR/EAGAIN/short-read schedule is
// invisible to the consumer, including across chunk-boundary line
// assembly, and that the retry budget surfaces TransientIoError.

namespace {

std::vector<Edge> drain(FileEdgeStream& stream) {
  std::vector<Edge> out;
  Edge e;
  while (stream.next(e)) out.push_back(e);
  return out;
}

std::string many_edges(int n) {
  std::string text = "# generated\n";
  for (int i = 0; i < n; ++i) {
    text += std::to_string(i) + " " + std::to_string(i + 1) + "\n";
  }
  return text;
}

}  // namespace

TEST_F(FileStreamTest, TransientPreadFaultsAreInvisibleToTheConsumer) {
  write(many_edges(500));
  const auto stats = FileEdgeStream::scan(path_);
  std::vector<Edge> clean;
  {
    FileEdgeStream stream(path_, stats.num_edges);
    clean = drain(stream);
  }

  SeededFaultInjector::Options fopts;
  fopts.seed = 42;
  fopts.short_read_probability = 0.25;
  fopts.eintr_probability = 0.25;
  fopts.eagain_probability = 0.25;
  SeededFaultInjector injector(fopts);
  FileEdgeStream::Options opts;
  // Tiny chunks: faults land mid-line and lines span many refills.
  opts.buffer_bytes = 13;
  opts.fault_injector = &injector;
  opts.retry.sleeper = [](unsigned) {};  // never actually sleep in tests
  FileEdgeStream stream(path_, stats.num_edges, opts);
  EXPECT_EQ(drain(stream), clean);

  const auto c = injector.counters();
  EXPECT_GT(c.short_reads + c.eintrs + c.eagains, 0u)
      << "seed injected nothing — test is vacuous";
  EXPECT_GT(stream.io_retries(), 0u);

  // And the schedule survives a rewind without changing the sequence.
  stream.rewind();
  EXPECT_EQ(drain(stream), clean);
}

TEST_F(FileStreamTest, TransientOpenFailuresAreRetried) {
  write("0 1\n2 3\n");
  SeededFaultInjector::Options fopts;
  fopts.fail_opens = 2;
  SeededFaultInjector injector(fopts);
  FileEdgeStream::Options opts;
  opts.fault_injector = &injector;
  unsigned backoffs = 0;
  opts.retry.sleeper = [&](unsigned delay_us) {
    ++backoffs;
    EXPECT_GT(delay_us, 0u);
  };
  FileEdgeStream stream(path_, 2, opts);  // must not throw
  EXPECT_EQ(drain(stream).size(), 2u);
  EXPECT_EQ(injector.counters().failed_opens, 2u);
  EXPECT_GE(backoffs, 2u);
}

TEST_F(FileStreamTest, RetryBudgetExhaustionSurfacesTransientError) {
  write(many_edges(50));
  class AlwaysEagain final : public FaultInjector {
   public:
    PreadFault pread_fault(std::uint64_t) override {
      return PreadFault::kEagain;
    }
  };
  AlwaysEagain injector;
  FileEdgeStream::Options opts;
  opts.fault_injector = &injector;
  opts.retry.max_attempts = 3;
  unsigned backoffs = 0;
  unsigned last_delay = 0;
  opts.retry.sleeper = [&](unsigned delay_us) {
    ++backoffs;
    EXPECT_GE(delay_us, last_delay) << "backoff must not shrink";
    last_delay = delay_us;
  };
  FileEdgeStream stream(path_, 50, opts);
  Edge e;
  try {
    (void)stream.next(e);
    FAIL() << "expected TransientIoError";
  } catch (const TransientIoError& ex) {
    const std::string msg = ex.what();
    EXPECT_NE(msg.find(path_), std::string::npos) << msg;
  }
  EXPECT_EQ(backoffs, 2u);  // max_attempts - 1 backoffs between 3 attempts
}

TEST_F(FileStreamTest, FaultedStreamStillDeliversUnterminatedFinalLine) {
  // The no-trailing-newline and comment edge cases must hold under an
  // aggressive short-read schedule too — short reads change where chunk
  // boundaries fall, which is exactly what the line assembler must absorb.
  write("# header\n0 1\n\n2 3\r\n4 5");
  SeededFaultInjector::Options fopts;
  fopts.seed = 7;
  fopts.short_read_probability = 0.9;
  SeededFaultInjector injector(fopts);
  FileEdgeStream::Options opts;
  opts.buffer_bytes = 5;
  opts.fault_injector = &injector;
  opts.retry.sleeper = [](unsigned) {};
  FileEdgeStream stream(path_, 3, opts);
  const auto out = drain(stream);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (Edge{0, 1}));
  EXPECT_EQ(out[1], (Edge{2, 3}));
  EXPECT_EQ(out[2], (Edge{4, 5}));
}

}  // namespace
}  // namespace adwise
