// Tests for src/common: rng, hashing, clock, replica sets, statistics.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <vector>

#include "src/common/clock.h"
#include "src/common/dense_replica_rows.h"
#include "src/common/hashing.h"
#include "src/common/replica_set.h"
#include "src/common/rng.h"
#include "src/common/stats.h"

namespace adwise {
namespace {

using namespace std::chrono_literals;

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.next_bool(0.3)) ++hits;
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, ExtremeProbabilities) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

// --- Hashing -----------------------------------------------------------------

TEST(HashingTest, SplitMixIsDeterministic) {
  EXPECT_EQ(splitmix64(123), splitmix64(123));
  EXPECT_NE(splitmix64(123), splitmix64(124));
}

TEST(HashingTest, EdgeHashIsSymmetric) {
  EXPECT_EQ(hash_edge(3, 9, 1), hash_edge(9, 3, 1));
  EXPECT_EQ(hash_edge(0, 0, 5), hash_edge(0, 0, 5));
}

TEST(HashingTest, SeedChangesEdgeHash) {
  EXPECT_NE(hash_edge(3, 9, 1), hash_edge(3, 9, 2));
}

TEST(HashingTest, HashSpreadsAcrossBuckets) {
  std::vector<int> buckets(16, 0);
  for (std::uint64_t v = 0; v < 16000; ++v) {
    ++buckets[hash_u64(v) % 16];
  }
  for (const int count : buckets) {
    EXPECT_GT(count, 700);
    EXPECT_LT(count, 1300);
  }
}

// --- Clock -------------------------------------------------------------------

TEST(ClockTest, SteadyClockAdvances) {
  SteadyClock clock;
  const auto t0 = clock.now();
  const auto t1 = clock.now();
  EXPECT_GE(t1, t0);
}

TEST(ClockTest, FakeClockIsManual) {
  FakeClock clock;
  EXPECT_EQ(clock.now(), 0ns);
  clock.advance(10ms);
  EXPECT_EQ(clock.now(), 10ms);
  clock.set(1s);
  EXPECT_EQ(clock.now(), 1s);
}

TEST(ClockTest, StopwatchMeasuresFakeTime) {
  FakeClock clock;
  Stopwatch watch(clock);
  clock.advance(250ms);
  EXPECT_DOUBLE_EQ(watch.elapsed_seconds(), 0.25);
  watch.restart();
  EXPECT_DOUBLE_EQ(watch.elapsed_seconds(), 0.0);
}

// --- ReplicaSet --------------------------------------------------------------

TEST(ReplicaSetTest, StartsEmpty) {
  ReplicaSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains(0));
}

TEST(ReplicaSetTest, InsertAndContains) {
  ReplicaSet set;
  EXPECT_TRUE(set.insert(5));
  EXPECT_FALSE(set.insert(5));  // duplicate
  EXPECT_TRUE(set.contains(5));
  EXPECT_FALSE(set.contains(6));
  EXPECT_EQ(set.size(), 1u);
}

TEST(ReplicaSetTest, EraseRemoves) {
  ReplicaSet set;
  set.insert(3);
  EXPECT_TRUE(set.erase(3));
  EXPECT_FALSE(set.erase(3));
  EXPECT_TRUE(set.empty());
}

TEST(ReplicaSetTest, SpillsBeyond64) {
  ReplicaSet set;
  for (std::uint32_t id : {0u, 63u, 64u, 127u, 128u, 500u}) {
    EXPECT_TRUE(set.insert(id));
  }
  EXPECT_EQ(set.size(), 6u);
  for (std::uint32_t id : {0u, 63u, 64u, 127u, 128u, 500u}) {
    EXPECT_TRUE(set.contains(id));
  }
  EXPECT_FALSE(set.contains(65));
  EXPECT_FALSE(set.contains(501));
}

TEST(ReplicaSetTest, ForEachVisitsAscending) {
  ReplicaSet set;
  for (std::uint32_t id : {70u, 3u, 0u, 65u, 31u}) set.insert(id);
  std::vector<std::uint32_t> visited;
  set.for_each([&](std::uint32_t id) { visited.push_back(id); });
  EXPECT_EQ(visited, (std::vector<std::uint32_t>{0, 3, 31, 65, 70}));
}

TEST(ReplicaSetTest, FirstReturnsSmallest) {
  ReplicaSet set;
  set.insert(40);
  EXPECT_EQ(set.first(), 40u);
  set.insert(7);
  EXPECT_EQ(set.first(), 7u);
  ReplicaSet high;
  high.insert(100);
  EXPECT_EQ(high.first(), 100u);
}

TEST(ReplicaSetTest, IntersectionSize) {
  ReplicaSet a;
  ReplicaSet b;
  for (std::uint32_t id : {1u, 2u, 3u, 70u}) a.insert(id);
  for (std::uint32_t id : {2u, 3u, 4u, 70u, 90u}) b.insert(id);
  EXPECT_EQ(a.intersection_size(b), 3u);
  EXPECT_TRUE(a.intersects(b));
}

TEST(ReplicaSetTest, DisjointSetsDoNotIntersect) {
  ReplicaSet a;
  ReplicaSet b;
  a.insert(1);
  b.insert(2);
  EXPECT_FALSE(a.intersects(b));
  EXPECT_EQ(a.intersection_size(b), 0u);
}

TEST(ReplicaSetTest, EqualityIgnoresSpillCapacity) {
  ReplicaSet a;
  ReplicaSet b;
  a.insert(100);
  a.erase(100);
  a.insert(5);
  b.insert(5);
  EXPECT_TRUE(a == b);
}

TEST(ReplicaSetTest, ClearResets) {
  ReplicaSet set;
  set.insert(1);
  set.insert(99);
  set.clear();
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.contains(1));
  EXPECT_FALSE(set.contains(99));
}

// Spill-boundary hardening: ids 63/64/127/128 sit on the inline-word /
// spill-word and spill-word / spill-word edges, where an off-by-one in the
// word arithmetic flips membership of the neighboring id. DenseReplicaRows
// must match this behavior bit-for-bit, so each boundary op is pinned.
TEST(ReplicaSetTest, SpillBoundaryInsertEraseContains) {
  const std::uint32_t boundaries[] = {63u, 64u, 127u, 128u};
  for (const std::uint32_t id : boundaries) {
    ReplicaSet set;
    EXPECT_TRUE(set.insert(id)) << id;
    EXPECT_FALSE(set.insert(id)) << id;
    EXPECT_TRUE(set.contains(id)) << id;
    EXPECT_FALSE(set.contains(id - 1)) << id;
    EXPECT_FALSE(set.contains(id + 1)) << id;
    EXPECT_EQ(set.size(), 1u) << id;
    EXPECT_EQ(set.first(), id) << id;
    EXPECT_TRUE(set.erase(id)) << id;
    EXPECT_FALSE(set.erase(id)) << id;
    EXPECT_FALSE(set.contains(id)) << id;
    EXPECT_TRUE(set.empty()) << id;
  }
}

TEST(ReplicaSetTest, SpillBoundaryForEachAndIntersection) {
  ReplicaSet set;
  for (const std::uint32_t id : {63u, 64u, 127u, 128u}) set.insert(id);
  std::vector<std::uint32_t> visited;
  set.for_each([&](std::uint32_t id) { visited.push_back(id); });
  EXPECT_EQ(visited, (std::vector<std::uint32_t>{63, 64, 127, 128}));
  EXPECT_EQ(set.first(), 63u);

  ReplicaSet other;
  other.insert(64);
  other.insert(128);
  EXPECT_EQ(set.intersection_size(other), 2u);
  EXPECT_TRUE(set.intersects(other));
  EXPECT_TRUE(other.intersects(set));

  ReplicaSet off_by_one;
  off_by_one.insert(62);
  off_by_one.insert(65);
  off_by_one.insert(126);
  off_by_one.insert(129);
  EXPECT_EQ(set.intersection_size(off_by_one), 0u);
  EXPECT_FALSE(set.intersects(off_by_one));
}

// erase() leaves trailing all-zero spill words behind — the invariant is
// that every observer treats a missing spill word and a zero spill word
// identically. DenseReplicaRows rows are fixed-width, so its trailing words
// are literally zero; the two representations agree by this invariant.
TEST(ReplicaSetTest, TrailingZeroSpillWordsAreEquivalentToAbsent) {
  ReplicaSet shrunk;  // grows spill to 3 words, then erases them all
  shrunk.insert(200);
  shrunk.insert(130);
  shrunk.insert(5);
  shrunk.erase(200);
  shrunk.erase(130);
  ReplicaSet fresh;  // never spilled
  fresh.insert(5);
  EXPECT_TRUE(shrunk == fresh);
  EXPECT_TRUE(fresh == shrunk);

  // intersects/intersection_size iterate min(spill sizes): trailing zeros
  // on one side must not manufacture or hide an intersection.
  ReplicaSet wide;
  wide.insert(300);
  wide.erase(300);
  wide.insert(5);
  EXPECT_TRUE(wide.intersects(fresh));
  EXPECT_EQ(wide.intersection_size(fresh), 1u);
  wide.erase(5);
  wide.insert(6);
  EXPECT_FALSE(wide.intersects(fresh));
  EXPECT_EQ(wide.intersection_size(fresh), 0u);

  // for_each and first skip the trailing zeros rather than reporting them.
  std::vector<std::uint32_t> visited;
  shrunk.for_each([&](std::uint32_t id) { visited.push_back(id); });
  EXPECT_EQ(visited, (std::vector<std::uint32_t>{5}));
  EXPECT_EQ(shrunk.first(), 5u);
  EXPECT_EQ(shrunk.size(), 1u);
}

// --- DenseReplicaRows --------------------------------------------------------

TEST(DenseReplicaRowsTest, InsertEraseContainsMirrorsReplicaSet) {
  DenseReplicaRows rows(256, 4);
  ReplicaSet ref;
  for (const std::uint32_t p : {0u, 63u, 64u, 127u, 128u, 255u}) {
    EXPECT_TRUE(rows.insert(1, p));
    EXPECT_FALSE(rows.insert(1, p));
    ref.insert(p);
  }
  EXPECT_EQ(rows.count(1), 6u);
  EXPECT_TRUE(rows.row_equals(1, ref));
  EXPECT_TRUE(rows.row_equals(0, ReplicaSet{}));  // untouched rows stay empty

  EXPECT_TRUE(rows.erase(1, 64));
  EXPECT_FALSE(rows.erase(1, 64));
  ref.erase(64);
  EXPECT_FALSE(rows.contains(1, 64));
  EXPECT_TRUE(rows.contains(1, 63));
  EXPECT_TRUE(rows.contains(1, 127));
  EXPECT_TRUE(rows.row_equals(1, ref));
}

TEST(DenseReplicaRowsTest, RowWordsMatchReplicaSetBits) {
  // Bit-for-bit: word w of a dense row must equal the ReplicaSet's logical
  // word w (inline word for w = 0, spill words — absent means zero — after
  // erase left trailing zeros behind).
  DenseReplicaRows rows(256, 2);
  ReplicaSet ref;
  for (const std::uint32_t p : {3u, 63u, 64u, 200u}) {
    rows.insert(0, p);
    ref.insert(p);
  }
  rows.erase(0, 200);
  ref.erase(200);  // ReplicaSet keeps a zero spill word; the row is zero too
  const std::uint64_t* row = rows.row(0);
  ASSERT_EQ(rows.words_per_row(), 4u);
  for (std::uint32_t w = 0; w < rows.words_per_row(); ++w) {
    std::uint64_t expected = 0;
    ref.for_each([&](std::uint32_t p) {
      if (p / 64 == w) expected |= std::uint64_t{1} << (p % 64);
    });
    EXPECT_EQ(row[w], expected) << "word " << w;
  }
  EXPECT_TRUE(rows.row_equals(0, ref));
}

TEST(DenseReplicaRowsTest, RebuildFromReplicaSets) {
  std::vector<ReplicaSet> replicas(3);
  replicas[0].insert(0);
  replicas[0].insert(255);
  replicas[2].insert(128);
  replicas[2].insert(129);
  DenseReplicaRows rows(256, 3);
  rows.insert(1, 7);  // stale content the rebuild must wipe
  rows.rebuild_from(replicas);
  for (std::size_t v = 0; v < replicas.size(); ++v) {
    EXPECT_TRUE(rows.row_equals(v, replicas[v])) << "vertex " << v;
  }
  EXPECT_FALSE(rows.contains(1, 7));
  EXPECT_EQ(rows.count(0), 2u);
  EXPECT_EQ(rows.count(1), 0u);
  EXPECT_EQ(rows.count(2), 2u);
}

TEST(DenseReplicaRowsTest, RowsAreContiguousPerVertex) {
  DenseReplicaRows rows(100, 3);  // 100 partitions -> 2 words per row
  EXPECT_EQ(rows.words_per_row(), 2u);
  rows.insert(0, 99);
  rows.insert(1, 0);
  rows.insert(2, 65);
  const std::uint64_t* base = rows.data();
  EXPECT_EQ(base[1], std::uint64_t{1} << 35);   // vertex 0, word 1: bit 99
  EXPECT_EQ(base[2], std::uint64_t{1});         // vertex 1, word 0: bit 0
  EXPECT_EQ(base[5], std::uint64_t{1} << 1);    // vertex 2, word 1: bit 65
  EXPECT_EQ(rows.row(2), base + 4);
  EXPECT_EQ(rows.counts_data()[2], 1u);
}

// --- Stats -------------------------------------------------------------------

TEST(StatsTest, RunningMean) {
  RunningMean mean;
  mean.add(2.0);
  mean.add(4.0);
  mean.add(6.0);
  EXPECT_DOUBLE_EQ(mean.mean(), 4.0);
  EXPECT_EQ(mean.count(), 3u);
  mean.reset();
  EXPECT_EQ(mean.count(), 0u);
}

TEST(StatsTest, EwmaTracksFirstSample) {
  Ewma ewma(0.5);
  EXPECT_FALSE(ewma.initialized());
  ewma.add(10.0);
  EXPECT_TRUE(ewma.initialized());
  EXPECT_DOUBLE_EQ(ewma.value(), 10.0);
  ewma.add(20.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 15.0);
}

TEST(StatsTest, SummaryQuantiles) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.p50, 50.5, 0.01);
  EXPECT_NEAR(s.p99, 99.01, 0.1);
}

TEST(StatsTest, SummaryOfEmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

}  // namespace
}  // namespace adwise
