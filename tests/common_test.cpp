// Tests for src/common: rng, hashing, clock, replica sets, statistics.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <vector>

#include "src/common/clock.h"
#include "src/common/hashing.h"
#include "src/common/replica_set.h"
#include "src/common/rng.h"
#include "src/common/stats.h"

namespace adwise {
namespace {

using namespace std::chrono_literals;

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.next_bool(0.3)) ++hits;
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, ExtremeProbabilities) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

// --- Hashing -----------------------------------------------------------------

TEST(HashingTest, SplitMixIsDeterministic) {
  EXPECT_EQ(splitmix64(123), splitmix64(123));
  EXPECT_NE(splitmix64(123), splitmix64(124));
}

TEST(HashingTest, EdgeHashIsSymmetric) {
  EXPECT_EQ(hash_edge(3, 9, 1), hash_edge(9, 3, 1));
  EXPECT_EQ(hash_edge(0, 0, 5), hash_edge(0, 0, 5));
}

TEST(HashingTest, SeedChangesEdgeHash) {
  EXPECT_NE(hash_edge(3, 9, 1), hash_edge(3, 9, 2));
}

TEST(HashingTest, HashSpreadsAcrossBuckets) {
  std::vector<int> buckets(16, 0);
  for (std::uint64_t v = 0; v < 16000; ++v) {
    ++buckets[hash_u64(v) % 16];
  }
  for (const int count : buckets) {
    EXPECT_GT(count, 700);
    EXPECT_LT(count, 1300);
  }
}

// --- Clock -------------------------------------------------------------------

TEST(ClockTest, SteadyClockAdvances) {
  SteadyClock clock;
  const auto t0 = clock.now();
  const auto t1 = clock.now();
  EXPECT_GE(t1, t0);
}

TEST(ClockTest, FakeClockIsManual) {
  FakeClock clock;
  EXPECT_EQ(clock.now(), 0ns);
  clock.advance(10ms);
  EXPECT_EQ(clock.now(), 10ms);
  clock.set(1s);
  EXPECT_EQ(clock.now(), 1s);
}

TEST(ClockTest, StopwatchMeasuresFakeTime) {
  FakeClock clock;
  Stopwatch watch(clock);
  clock.advance(250ms);
  EXPECT_DOUBLE_EQ(watch.elapsed_seconds(), 0.25);
  watch.restart();
  EXPECT_DOUBLE_EQ(watch.elapsed_seconds(), 0.0);
}

// --- ReplicaSet --------------------------------------------------------------

TEST(ReplicaSetTest, StartsEmpty) {
  ReplicaSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains(0));
}

TEST(ReplicaSetTest, InsertAndContains) {
  ReplicaSet set;
  EXPECT_TRUE(set.insert(5));
  EXPECT_FALSE(set.insert(5));  // duplicate
  EXPECT_TRUE(set.contains(5));
  EXPECT_FALSE(set.contains(6));
  EXPECT_EQ(set.size(), 1u);
}

TEST(ReplicaSetTest, EraseRemoves) {
  ReplicaSet set;
  set.insert(3);
  EXPECT_TRUE(set.erase(3));
  EXPECT_FALSE(set.erase(3));
  EXPECT_TRUE(set.empty());
}

TEST(ReplicaSetTest, SpillsBeyond64) {
  ReplicaSet set;
  for (std::uint32_t id : {0u, 63u, 64u, 127u, 128u, 500u}) {
    EXPECT_TRUE(set.insert(id));
  }
  EXPECT_EQ(set.size(), 6u);
  for (std::uint32_t id : {0u, 63u, 64u, 127u, 128u, 500u}) {
    EXPECT_TRUE(set.contains(id));
  }
  EXPECT_FALSE(set.contains(65));
  EXPECT_FALSE(set.contains(501));
}

TEST(ReplicaSetTest, ForEachVisitsAscending) {
  ReplicaSet set;
  for (std::uint32_t id : {70u, 3u, 0u, 65u, 31u}) set.insert(id);
  std::vector<std::uint32_t> visited;
  set.for_each([&](std::uint32_t id) { visited.push_back(id); });
  EXPECT_EQ(visited, (std::vector<std::uint32_t>{0, 3, 31, 65, 70}));
}

TEST(ReplicaSetTest, FirstReturnsSmallest) {
  ReplicaSet set;
  set.insert(40);
  EXPECT_EQ(set.first(), 40u);
  set.insert(7);
  EXPECT_EQ(set.first(), 7u);
  ReplicaSet high;
  high.insert(100);
  EXPECT_EQ(high.first(), 100u);
}

TEST(ReplicaSetTest, IntersectionSize) {
  ReplicaSet a;
  ReplicaSet b;
  for (std::uint32_t id : {1u, 2u, 3u, 70u}) a.insert(id);
  for (std::uint32_t id : {2u, 3u, 4u, 70u, 90u}) b.insert(id);
  EXPECT_EQ(a.intersection_size(b), 3u);
  EXPECT_TRUE(a.intersects(b));
}

TEST(ReplicaSetTest, DisjointSetsDoNotIntersect) {
  ReplicaSet a;
  ReplicaSet b;
  a.insert(1);
  b.insert(2);
  EXPECT_FALSE(a.intersects(b));
  EXPECT_EQ(a.intersection_size(b), 0u);
}

TEST(ReplicaSetTest, EqualityIgnoresSpillCapacity) {
  ReplicaSet a;
  ReplicaSet b;
  a.insert(100);
  a.erase(100);
  a.insert(5);
  b.insert(5);
  EXPECT_TRUE(a == b);
}

TEST(ReplicaSetTest, ClearResets) {
  ReplicaSet set;
  set.insert(1);
  set.insert(99);
  set.clear();
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.contains(1));
  EXPECT_FALSE(set.contains(99));
}

// --- Stats -------------------------------------------------------------------

TEST(StatsTest, RunningMean) {
  RunningMean mean;
  mean.add(2.0);
  mean.add(4.0);
  mean.add(6.0);
  EXPECT_DOUBLE_EQ(mean.mean(), 4.0);
  EXPECT_EQ(mean.count(), 3u);
  mean.reset();
  EXPECT_EQ(mean.count(), 0u);
}

TEST(StatsTest, EwmaTracksFirstSample) {
  Ewma ewma(0.5);
  EXPECT_FALSE(ewma.initialized());
  ewma.add(10.0);
  EXPECT_TRUE(ewma.initialized());
  EXPECT_DOUBLE_EQ(ewma.value(), 10.0);
  ewma.add(20.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 15.0);
}

TEST(StatsTest, SummaryQuantiles) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.p50, 50.5, 0.01);
  EXPECT_NEAR(s.p99, 99.01, 0.1);
}

TEST(StatsTest, SummaryOfEmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

}  // namespace
}  // namespace adwise
