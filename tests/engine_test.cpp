// Tests for the processing-engine substrate: replica directory, cost model,
// message accounting, and PageRank correctness against the reference.
#include <gtest/gtest.h>

#include <cmath>

#include "src/apps/pagerank.h"
#include "src/engine/cluster_model.h"
#include "src/engine/engine.h"
#include "src/engine/replica_directory.h"
#include "src/graph/generators.h"
#include "src/partition/registry.h"

namespace adwise {
namespace {

std::vector<Assignment> assign_all_to(const Graph& g, PartitionId p) {
  std::vector<Assignment> out;
  for (const Edge& e : g.edges()) out.push_back({e, p});
  return out;
}

std::vector<Assignment> assign_round_robin(const Graph& g, std::uint32_t k) {
  std::vector<Assignment> out;
  PartitionId p = 0;
  for (const Edge& e : g.edges()) {
    out.push_back({e, p});
    p = (p + 1) % k;
  }
  return out;
}

std::vector<Assignment> assign_with(const Graph& g, const char* algo,
                                    std::uint32_t k) {
  auto partitioner = make_baseline_partitioner(algo, k, 1);
  PartitionState st(k, g.num_vertices());
  VectorEdgeStream stream(g.edges());
  std::vector<Assignment> out;
  partitioner->partition(stream, st, [&](const Edge& e, PartitionId p) {
    out.push_back({e, p});
  });
  return out;
}

// --- ReplicaDirectory ------------------------------------------------------------

TEST(ReplicaDirectoryTest, MachinesFollowPartitionAssignments) {
  const Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  // Partitions 0..2 on 2 machines: p0 -> m0, p1 -> m1, p2 -> m0.
  const std::vector<Assignment> assignments = {
      {{0, 1}, 0}, {{1, 2}, 1}, {{2, 3}, 2}};
  const ReplicaDirectory dir(assignments, 4, 2);
  EXPECT_EQ(dir.machine_of_partition(0), 0u);
  EXPECT_EQ(dir.machine_of_partition(1), 1u);
  EXPECT_EQ(dir.machine_of_partition(2), 0u);
  EXPECT_EQ(dir.machines(0).size(), 1u);
  EXPECT_TRUE(dir.machines(0).contains(0));
  EXPECT_EQ(dir.machines(1).size(), 2u);  // edges on m0 and m1
  EXPECT_EQ(dir.machines(2).size(), 2u);  // m1 (p1) and m0 (p2)
  EXPECT_EQ(dir.machines(3).size(), 1u);
}

TEST(ReplicaDirectoryTest, MasterIsAmongReplicas) {
  const Graph g = make_erdos_renyi(100, 400, 3);
  const auto assignments = assign_round_robin(g, 8);
  const ReplicaDirectory dir(assignments, g.num_vertices(), 4);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (dir.machines(v).empty()) continue;
    EXPECT_TRUE(dir.machines(v).contains(dir.master_of(v)));
  }
}

TEST(ReplicaDirectoryTest, SinglePartitionMeansNoReplication) {
  const Graph g = make_cycle(20);
  const ReplicaDirectory dir(assign_all_to(g, 0), g.num_vertices(), 4);
  EXPECT_DOUBLE_EQ(dir.machine_replication_degree(), 1.0);
}

TEST(ReplicaDirectoryTest, IsolatedVerticesIgnoredInDegree) {
  const Graph g(10, {{0, 1}});
  const std::vector<Assignment> assignments = {{{0, 1}, 0}};
  const ReplicaDirectory dir(assignments, 10, 4);
  EXPECT_DOUBLE_EQ(dir.machine_replication_degree(), 1.0);
}

// --- Cost model --------------------------------------------------------------------

TEST(ClusterModelTest, SuperstepSecondsHandComputed) {
  ClusterModel model;
  model.num_machines = 2;
  model.bandwidth_bytes_per_sec = 1000.0;
  model.per_edge_op_seconds = 0.001;
  model.per_vertex_op_seconds = 0.0;
  model.barrier_seconds = 0.5;
  std::vector<MachineLoad> loads(2);
  loads[0].compute_ops = 100;    // 0.1 s
  loads[0].bytes_out = 2000;     // 2 s
  loads[1].compute_ops = 300;    // 0.3 s  (max)
  loads[1].bytes_in = 1000;      // 1 s
  // max compute 0.3 + max network 2.0 + barrier 0.5
  EXPECT_NEAR(superstep_seconds(model, loads), 2.8, 1e-12);
}

TEST(ClusterModelTest, EmptyLoadsCostOnlyBarrier) {
  ClusterModel model;
  std::vector<MachineLoad> loads(model.num_machines);
  EXPECT_DOUBLE_EQ(superstep_seconds(model, loads), model.barrier_seconds);
}

// --- Engine + PageRank ----------------------------------------------------------------

TEST(EngineTest, PageRankOnRegularGraphIsUniform) {
  // On a cycle every vertex has degree 2: PageRank is exactly 1 everywhere.
  const Graph g = make_cycle(50);
  const auto assignments = assign_round_robin(g, 8);
  std::vector<double> ranks;
  const auto result = run_pagerank_blocks(g, assignments, ClusterModel{}, 1,
                                          20, &ranks);
  ASSERT_EQ(ranks.size(), 50u);
  for (const double r : ranks) EXPECT_NEAR(r, 1.0, 1e-9);
  EXPECT_EQ(result.total.supersteps, 20u);
}

TEST(EngineTest, PageRankMatchesReference) {
  const Graph g = make_erdos_renyi(150, 500, 7);
  const auto assignments = assign_with(g, "hash", 8);
  std::vector<double> ranks;
  (void)run_pagerank_blocks(g, assignments, ClusterModel{}, 1, 13, &ranks);
  // 13 supersteps = initial scatter + 12 rank updates.
  const auto expected = reference_pagerank(g, 12);
  const auto degrees = g.degrees();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (degrees[v] == 0) continue;  // engine never activates isolated ones
    EXPECT_NEAR(ranks[v], expected[v], 1e-9) << "vertex " << v;
  }
}

TEST(EngineTest, PageRankIndependentOfPartitioning) {
  const Graph g = make_erdos_renyi(120, 400, 9);
  std::vector<double> ranks_single, ranks_spread;
  (void)run_pagerank_blocks(g, assign_all_to(g, 0), ClusterModel{}, 1, 10,
                      &ranks_single);
  (void)run_pagerank_blocks(g, assign_round_robin(g, 32), ClusterModel{}, 1, 10,
                      &ranks_spread);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(ranks_single[v], ranks_spread[v], 1e-9);
  }
}

TEST(EngineTest, SinglePartitionProducesNoNetworkTraffic) {
  const Graph g = make_cycle(30);
  const auto result =
      run_pagerank_blocks(g, assign_all_to(g, 0), ClusterModel{}, 1, 5);
  EXPECT_EQ(result.total.network_messages, 0u);
  EXPECT_EQ(result.total.network_bytes, 0u);
  EXPECT_GT(result.total.local_messages, 0u);
}

TEST(EngineTest, ReplicationDrivesNetworkTraffic) {
  const Graph g = make_community_graph({.num_communities = 30, .seed = 10});
  const auto scattered = assign_round_robin(g, 32);  // max replication
  const auto clustered = assign_with(g, "hdrf", 32);
  const auto traffic_scattered =
      run_pagerank_blocks(g, scattered, ClusterModel{}, 1, 10);
  const auto traffic_clustered =
      run_pagerank_blocks(g, clustered, ClusterModel{}, 1, 10);
  EXPECT_GT(traffic_scattered.total.network_bytes,
            traffic_clustered.total.network_bytes);
  // And the simulated latency follows the byte count.
  EXPECT_GT(traffic_scattered.total.seconds,
            traffic_clustered.total.seconds);
}

TEST(EngineTest, BlocksAreResumable) {
  const Graph g = make_erdos_renyi(100, 300, 4);
  const auto assignments = assign_with(g, "hash", 8);
  std::vector<double> ranks_blocked, ranks_straight;
  (void)run_pagerank_blocks(g, assignments, ClusterModel{}, 3, 5, &ranks_blocked);
  (void)run_pagerank_blocks(g, assignments, ClusterModel{}, 1, 15, &ranks_straight);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(ranks_blocked[v], ranks_straight[v], 1e-12);
  }
}

TEST(EngineTest, CumulativeLoadsExposeStragglers) {
  // All edges on partition 0 -> machine 0 does all compute; the other
  // machines stay idle (straggler ratio is maximal).
  const Graph g = make_cycle(40);
  PageRankProgram program(g.degrees());
  Engine<PageRankProgram> engine(g, assign_all_to(g, 0), ClusterModel{},
                                 std::move(program));
  engine.activate_all();
  (void)engine.run(5);
  const auto& loads = engine.cumulative_loads();
  ASSERT_EQ(loads.size(), 8u);
  EXPECT_GT(loads[0].compute_ops, 0u);
  std::uint64_t scatter_elsewhere = 0;
  for (std::size_t m = 1; m < loads.size(); ++m) {
    scatter_elsewhere += loads[m].compute_ops - loads[m].applied_vertices;
    EXPECT_EQ(loads[m].bytes_in, 0u);
    EXPECT_EQ(loads[m].bytes_out, 0u);
  }
  // No machine but 0 hosts edges, so no scatter work lands elsewhere.
  EXPECT_EQ(scatter_elsewhere, 0u);
}

TEST(EngineTest, SingleMachineClusterHasNoNetworkTraffic) {
  // With one machine every master and mirror coincide: all traffic is local
  // no matter how scattered the partitioning is.
  const Graph g = make_community_graph({.num_communities = 10, .seed = 6});
  ClusterModel model;
  model.num_machines = 1;
  const auto result =
      run_pagerank_blocks(g, assign_round_robin(g, 32), model, 1, 5);
  EXPECT_EQ(result.total.network_messages, 0u);
  EXPECT_EQ(result.total.network_bytes, 0u);
}

TEST(EngineTest, PageRankMassConservedOnEngine) {
  const Graph g = make_community_graph({.num_communities = 12, .seed = 2});
  std::vector<double> ranks;
  (void)run_pagerank_blocks(g, assign_with(g, "hdrf", 8), ClusterModel{}, 1,
                            25, &ranks);
  // All vertices in a community graph have degree >= 1, so total rank mass
  // stays at |V| through every iteration.
  double total = 0.0;
  for (const double r : ranks) total += r;
  EXPECT_NEAR(total, static_cast<double>(g.num_vertices()),
              g.num_vertices() * 1e-9);
}

TEST(EngineTest, SupersepSecondsArePositiveAndAccumulate) {
  const Graph g = make_erdos_renyi(100, 300, 4);
  const auto result = run_pagerank_blocks(g, assign_with(g, "hash", 8),
                                          ClusterModel{}, 2, 5);
  ASSERT_EQ(result.block_seconds.size(), 2u);
  EXPECT_GT(result.block_seconds[0], 0.0);
  EXPECT_GT(result.block_seconds[1], 0.0);
  EXPECT_NEAR(result.block_seconds[0] + result.block_seconds[1],
              result.total.seconds, 1e-12);
}

}  // namespace
}  // namespace adwise
