// Write-path fault-injection tests: every AtomicFileWriter-backed artifact
// must absorb transient write faults invisibly, surface disk-full as the
// typed DiskFullError with path + byte context, and never leave a torn
// destination or an orphaned temp file behind a failed commit.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "src/graph/generators.h"
#include "src/io/adw_format.h"
#include "src/io/atomic_file.h"
#include "src/io/binary_stream.h"
#include "src/io/checkpoint.h"
#include "src/io/fault_injection.h"
#include "src/io/io_error.h"

namespace adwise {
namespace {

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spill(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  ASSERT_TRUE(out.good());
}

// Injects one specific fault on the n-th occurrence of one WriteOp; all
// other operations pass through clean.
class FailNthOp final : public FaultInjector {
 public:
  FailNthOp(WriteOp op, std::uint64_t n, WriteFault fault)
      : op_(op), n_(n), fault_(fault) {}
  WriteFault write_fault(WriteOp op, std::uint64_t) override {
    if (op != op_) return WriteFault::kNone;
    return ++seen_ == n_ ? fault_ : WriteFault::kNone;
  }

 private:
  WriteOp op_;
  std::uint64_t seen_ = 0;
  std::uint64_t n_;
  WriteFault fault_;
};

class WriteFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "write_fault_" +
            std::to_string(static_cast<long>(::getpid())) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
  }
  void TearDown() override {
    std::remove(dest().c_str());
    std::remove((dest() + ".tmp").c_str());
  }

  [[nodiscard]] std::string dest() const { return base_ + ".bin"; }

  static AtomicFileWriter::Options with(FaultInjector* injector) {
    AtomicFileWriter::Options opts;
    opts.fault_injector = injector;
    opts.retry.sleeper = [](unsigned) {};  // never actually sleep in tests
    return opts;
  }

  std::string base_;
};

TEST_F(WriteFaultTest, TransientWriteFaultsAreInvisible) {
  // Short writes and EINTR are invisible on EVERY write-side op (EINTR on
  // fsync is retried too). EIO is deliberately excluded: an EIO'd commit
  // fsync is terminal by design (dirty pages may already be gone), so it
  // belongs in the retry-budget and failed-commit tests, not here.
  SeededFaultInjector::Options fopts;
  fopts.seed = 42;
  fopts.short_write_probability = 0.3;
  fopts.write_eintr_probability = 0.3;
  SeededFaultInjector injector(fopts);

  std::string payload;
  for (int i = 0; i < 200; ++i) payload += "chunk-" + std::to_string(i) + "\n";

  AtomicFileWriter out(dest(), with(&injector));
  // Many small appends = many write syscalls = many fault sites.
  for (std::size_t i = 0; i < payload.size(); i += 37) {
    out.append(payload.data() + i, std::min<std::size_t>(37, payload.size() - i));
  }
  out.commit();

  EXPECT_EQ(slurp(dest()), payload) << "faults changed the committed bytes";
  const auto c = injector.counters();
  EXPECT_GT(c.short_writes, 0u) << "seed injected no short writes";
  EXPECT_GT(c.write_eintrs, 0u) << "seed injected no EINTRs";
  EXPECT_GT(out.io_retries(), 0u);
  EXPECT_FALSE(file_exists(dest() + ".tmp"));
}

TEST_F(WriteFaultTest, EnospcThrowsDiskFullErrorWithPathAndBytes) {
  FailNthOp injector(FaultInjector::WriteOp::kWrite, 2,
                     FaultInjector::WriteFault::kEnospc);
  AtomicFileWriter out(dest(), with(&injector));
  const std::string first(64, 'a');
  out.append(first.data(), first.size());
  try {
    const std::string second(64, 'b');
    out.append(second.data(), second.size());
    FAIL() << "expected DiskFullError";
  } catch (const DiskFullError& e) {
    EXPECT_EQ(e.path(), dest());
    EXPECT_EQ(e.bytes_written(), first.size());
    const std::string msg = e.what();
    EXPECT_NE(msg.find(dest()), std::string::npos) << msg;
    EXPECT_NE(msg.find("64 bytes"), std::string::npos) << msg;
  }
}

TEST_F(WriteFaultTest, DiskFullIsNotRetried) {
  // Backoff cannot create free space: ENOSPC must throw on the first hit,
  // not burn the retry budget first.
  FailNthOp injector(FaultInjector::WriteOp::kWrite, 1,
                     FaultInjector::WriteFault::kEnospc);
  auto opts = with(&injector);
  unsigned backoffs = 0;
  opts.retry.sleeper = [&](unsigned) { ++backoffs; };
  AtomicFileWriter out(dest(), opts);
  EXPECT_THROW(out.append("x", 1), DiskFullError);
  EXPECT_EQ(backoffs, 0u);
}

TEST_F(WriteFaultTest, RetryBudgetExhaustionSurfacesTransientError) {
  class AlwaysEio final : public FaultInjector {
   public:
    WriteFault write_fault(WriteOp op, std::uint64_t) override {
      return op == WriteOp::kWrite ? WriteFault::kEio : WriteFault::kNone;
    }
  };
  AlwaysEio injector;
  auto opts = with(&injector);
  opts.retry.max_attempts = 3;
  unsigned backoffs = 0;
  unsigned last_delay = 0;
  opts.retry.sleeper = [&](unsigned delay_us) {
    ++backoffs;
    EXPECT_GE(delay_us, last_delay) << "backoff must not shrink";
    last_delay = delay_us;
  };
  AtomicFileWriter out(dest(), opts);
  try {
    out.append("payload", 7);
    FAIL() << "expected TransientIoError";
  } catch (const TransientIoError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(dest()), std::string::npos) << msg;
  }
  EXPECT_EQ(backoffs, 2u);  // max_attempts - 1 backoffs between 3 attempts
}

// The satellite pin: on ANY commit failure the temp file is unlinked and a
// pre-existing destination is untouched — a reader can never observe a
// torn or half-renamed artifact.
TEST_F(WriteFaultTest, FailedCommitUnlinksTmpAndPreservesDestination) {
  // fsync EIO is terminal-by-design (dirty pages may already be gone) and
  // close EIO has no fd left to retry — both must abort the commit as a
  // typed transient error, unlink the temp file, and leave the previous
  // destination byte-identical.
  const std::string previous = "previous generation, must survive";
  for (const auto op :
       {FaultInjector::WriteOp::kFsync, FaultInjector::WriteOp::kClose}) {
    spill(dest(), previous);
    FailNthOp injector(op, 1, FaultInjector::WriteFault::kEio);
    {
      AtomicFileWriter out(dest(), with(&injector));
      out.append("new generation", 14);
      EXPECT_THROW(out.commit(), TransientIoError);
    }
    EXPECT_FALSE(file_exists(dest() + ".tmp"))
        << "orphan temp file after failed commit (op " << static_cast<int>(op)
        << ")";
    EXPECT_EQ(slurp(dest()), previous)
        << "failed commit damaged the destination (op " << static_cast<int>(op)
        << ")";
  }
}

TEST_F(WriteFaultTest, TransientRenameFaultsAreRetriedAtCommit) {
  // Unlike fsync, a failed rename invalidates nothing — the temp file is
  // already durable — so one injected EIO must be absorbed by the retry
  // loop and the commit still lands.
  FailNthOp injector(FaultInjector::WriteOp::kRename, 1,
                     FaultInjector::WriteFault::kEio);
  AtomicFileWriter out(dest(), with(&injector));
  out.append("persistent", 10);
  out.commit();
  EXPECT_EQ(slurp(dest()), "persistent");
  EXPECT_GT(out.io_retries(), 0u);
  EXPECT_FALSE(file_exists(dest() + ".tmp"));
}

TEST_F(WriteFaultTest, EnospcOnRenameIsDiskFull) {
  FailNthOp injector(FaultInjector::WriteOp::kRename, 1,
                     FaultInjector::WriteFault::kEnospc);
  AtomicFileWriter out(dest(), with(&injector));
  out.append("doomed", 6);
  EXPECT_THROW(out.commit(), DiskFullError);
  EXPECT_FALSE(file_exists(dest()));
  EXPECT_FALSE(file_exists(dest() + ".tmp"));
}

TEST_F(WriteFaultTest, SameSeedSameWriteSchedule) {
  SeededFaultInjector::Options fopts;
  fopts.seed = 1234;
  fopts.short_write_probability = 0.2;
  fopts.write_eintr_probability = 0.2;
  fopts.write_eio_probability = 0.1;

  auto run = [&] {
    SeededFaultInjector injector(fopts);
    AtomicFileWriter out(dest(), with(&injector));
    for (int i = 0; i < 100; ++i) out.append("0123456789abcdef", 16);
    out.commit();
    return injector.counters();
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.short_writes, second.short_writes);
  EXPECT_EQ(first.write_eintrs, second.write_eintrs);
  EXPECT_EQ(first.write_eios, second.write_eios);
  EXPECT_GT(first.short_writes + first.write_eintrs + first.write_eios, 0u);
}

// The process-global injector reaches writers constructed deep inside
// library code with no injector threaded through — the chokepoint the
// chaos subprocess runs rely on.
TEST_F(WriteFaultTest, ProcessGlobalInjectorReachesImplicitWriters) {
  FailNthOp injector(FaultInjector::WriteOp::kWrite, 1,
                     FaultInjector::WriteFault::kEnospc);
  ScopedProcessFaultInjector scope(&injector);
  AtomicFileWriter out(dest());  // no per-instance injector
  EXPECT_THROW(out.append("x", 1), DiskFullError);
}

TEST_F(WriteFaultTest, ProcessGlobalInjectorScopeRestores) {
  {
    FailNthOp injector(FaultInjector::WriteOp::kWrite, 1,
                       FaultInjector::WriteFault::kEnospc);
    ScopedProcessFaultInjector scope(&injector);
    EXPECT_EQ(process_fault_injector(), &injector);
  }
  EXPECT_EQ(process_fault_injector(), nullptr);
  AtomicFileWriter out(dest());
  out.append("clean", 5);  // must not throw once the scope is gone
  out.commit();
  EXPECT_EQ(slurp(dest()), "clean");
}

// End-to-end through a real artifact: an .adw file written under a seeded
// transient-fault schedule must read back identical to a clean one.
TEST_F(WriteFaultTest, AdwFileSurvivesTransientWriteFaults) {
  const Graph g = make_erdos_renyi(200, 3000, 7);
  const std::string clean_path = base_ + "_clean.adw";
  const std::string faulty_path = base_ + "_faulty.adw";

  AdwWriter::Options clean_opts;
  clean_opts.with_crc = true;
  write_adw_file(clean_path, g.edges(), clean_opts);

  SeededFaultInjector::Options fopts;
  fopts.seed = 77;
  fopts.short_write_probability = 0.2;
  fopts.write_eintr_probability = 0.2;
  fopts.write_eio_probability = 0.1;
  SeededFaultInjector injector(fopts);
  AdwWriter::Options faulty_opts;
  faulty_opts.with_crc = true;
  faulty_opts.io.fault_injector = &injector;
  faulty_opts.io.retry.sleeper = [](unsigned) {};
  write_adw_file(faulty_path, g.edges(), faulty_opts);

  EXPECT_EQ(slurp(faulty_path), slurp(clean_path));
  const auto c = injector.counters();
  EXPECT_GT(c.short_writes + c.write_eintrs + c.write_eios, 0u)
      << "seed injected nothing — test is vacuous";

  // And the faulty-written file passes a full CRC-verified drain.
  BinaryEdgeStream stream(faulty_path);
  Edge e;
  std::size_t n = 0;
  while (stream.next(e)) ++n;
  EXPECT_EQ(n, g.num_edges());

  std::remove(clean_path.c_str());
  std::remove(faulty_path.c_str());
}

// Same end-to-end guarantee for the checkpoint artifact: a failed durable
// write leaves the previous checkpoint intact, byte for byte.
TEST_F(WriteFaultTest, FailedCheckpointWritePreservesPreviousCheckpoint) {
  const std::string path = base_ + ".adwk";
  Checkpoint ckpt;
  ckpt.meta.algorithm = "hdrf";
  ckpt.meta.k = 4;
  ckpt.meta.num_vertices = 10;
  ckpt.meta.assignments = 123;
  write_checkpoint_file(path, ckpt);
  const std::string previous = slurp(path);
  ASSERT_FALSE(previous.empty());

  ckpt.meta.assignments = 456;
  FailNthOp injector(FaultInjector::WriteOp::kFsync, 1,
                     FaultInjector::WriteFault::kEnospc);
  AtomicFileWriter::Options io;
  io.fault_injector = &injector;
  EXPECT_THROW(write_checkpoint_file(path, ckpt, io), DiskFullError);
  EXPECT_EQ(slurp(path), previous);
  EXPECT_FALSE(file_exists(path + ".tmp"));
  EXPECT_EQ(read_checkpoint_file(path).meta.assignments, 123u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adwise
