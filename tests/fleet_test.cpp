// Baseline-fleet property tests (the ISSUE-10 guarantees):
//
//  1. Every registry algorithm — and ADWISE itself — is bit-identical
//     across reruns AND across the three edge-delivery backends
//     (VectorEdgeStream, FileEdgeStream over a text edge list,
//     BinaryEdgeStream over a CRC-checked .adw file). A partitioner whose
//     placements depend on HOW the same edges arrive would make every
//     leaderboard number backend-dependent.
//  2. The vertex->edge lifting rule (vertex2edgepart) on hand-checkable
//     fixtures: the free lift_edge_to_partition() unit cases, and a stub
//     VertexAssigner pushed through Vertex2EdgePartitioner end to end.
//  3. Per-baseline unit behavior: the EBV placement rule on crafted
//     states, Fennel's hard capacity, LDG's balance fallback, and 2PS's
//     phase-2 balance guard.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/adwise_partitioner.h"
#include "src/graph/edge_stream.h"
#include "src/graph/file_stream.h"
#include "src/graph/generators.h"
#include "src/io/adw_format.h"
#include "src/io/binary_stream.h"
#include "src/partition/ebv_partitioner.h"
#include "src/partition/fennel_partitioner.h"
#include "src/partition/ldg_partitioner.h"
#include "src/partition/quality.h"
#include "src/partition/registry.h"
#include "src/partition/twops_partitioner.h"
#include "src/partition/vertex2edgepart.h"

namespace adwise {
namespace {

std::vector<Assignment> run_stream(EdgePartitioner& partitioner,
                                   EdgeStream& stream, std::uint32_t k,
                                   VertexId n) {
  PartitionState state(k, n);
  std::vector<Assignment> assignments;
  partitioner.partition(stream, state, [&](const Edge& e, PartitionId p) {
    assignments.push_back({e, p});
  });
  return assignments;
}

void expect_same(const std::vector<Assignment>& a,
                 const std::vector<Assignment>& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].edge.u, b[i].edge.u) << what << " at " << i;
    ASSERT_EQ(a[i].edge.v, b[i].edge.v) << what << " at " << i;
    ASSERT_EQ(a[i].partition, b[i].partition) << what << " at " << i;
  }
}

// One partitioner instance per run: several baselines carry per-run
// scratch, and determinism must hold for FRESH instances, which is how the
// leaderboard and the CLI construct them.
std::unique_ptr<EdgePartitioner> make_algorithm(const std::string& name) {
  if (name == "adwise") {
    AdwiseOptions opts;
    return std::make_unique<AdwisePartitioner>(opts);
  }
  return make_baseline_partitioner(name, /*k=*/8, /*seed=*/1);
}

class FleetStreamIdentityTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    // Parameterized test names contain '/'; flatten for use as a filename.
    std::string name = ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name();
    for (char& c : name) {
      if (c == '/') c = '_';
    }
    base_ = ::testing::TempDir() + "fleet_" + name;
    txt_path_ = base_ + ".txt";
    adw_path_ = base_ + ".adw";
    graph_ = make_community_graph({.num_communities = 25, .seed = 17});

    std::ofstream txt(txt_path_);
    for (const Edge& e : graph_.edges()) {
      txt << e.u << "\t" << e.v << "\n";
    }
    txt.close();
    AdwWriter::Options wopts;
    wopts.with_crc = true;
    write_adw_file(adw_path_, graph_.edges(), wopts);
  }

  void TearDown() override {
    std::remove(txt_path_.c_str());
    std::remove(adw_path_.c_str());
  }

  std::string base_, txt_path_, adw_path_;
  Graph graph_;
};

TEST_P(FleetStreamIdentityTest, RerunsAndBackendsBitIdentical) {
  const std::string& algo = GetParam();
  const std::uint32_t k = 8;
  const VertexId n = graph_.num_vertices();

  auto run_vector = [&] {
    VectorEdgeStream stream(graph_.edges());
    auto partitioner = make_algorithm(algo);
    return run_stream(*partitioner, stream, k, n);
  };
  const std::vector<Assignment> first = run_vector();
  ASSERT_EQ(first.size(), graph_.num_edges());

  expect_same(first, run_vector(), algo + ": rerun");

  {
    const auto stats = FileEdgeStream::scan(txt_path_);
    ASSERT_EQ(stats.num_edges, graph_.num_edges());
    FileEdgeStream stream(txt_path_, stats.num_edges);
    auto partitioner = make_algorithm(algo);
    expect_same(first, run_stream(*partitioner, stream, k, n),
                algo + ": FileEdgeStream");
  }
  {
    BinaryEdgeStream stream(adw_path_);
    auto partitioner = make_algorithm(algo);
    expect_same(first, run_stream(*partitioner, stream, k, n),
                algo + ": BinaryEdgeStream");
  }
}

std::vector<std::string> fleet_names() {
  std::vector<std::string> names{"adwise"};
  for (const auto name : baseline_partitioner_names()) {
    names.emplace_back(name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    WholeFleet, FleetStreamIdentityTest, ::testing::ValuesIn(fleet_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param == "2ps" ? std::string("twops")
                                 : (info.param == "1d" ? std::string("oned")
                                                       : info.param);
    });

// --- Lifting rule fixtures --------------------------------------------------------

TEST(LiftEdgeTest, SamePartitionTrivial) {
  PartitionState st(4, 10);
  EXPECT_EQ(lift_edge_to_partition(2, 2, st), 2u);
}

TEST(LiftEdgeTest, LowerLoadEndpointWins) {
  PartitionState st(4, 10);
  st.assign({0, 1}, 0);
  st.assign({2, 3}, 0);
  st.assign({4, 5}, 1);
  // Partition 0 holds 2 edges, partition 1 holds 1: the edge follows the
  // lighter side regardless of argument order.
  EXPECT_EQ(lift_edge_to_partition(0, 1, st), 1u);
  EXPECT_EQ(lift_edge_to_partition(1, 0, st), 1u);
}

TEST(LiftEdgeTest, ExactTieTakesSmallerId) {
  PartitionState st(4, 10);
  st.assign({0, 1}, 2);
  st.assign({2, 3}, 3);
  EXPECT_EQ(lift_edge_to_partition(3, 2, st), 2u);
  EXPECT_EQ(lift_edge_to_partition(2, 3, st), 2u);
}

// Stub assigner: vertex v goes to v % k. With k=2 on a path 0-1-2-3 the
// lifted assignment is hand-checkable edge by edge.
class ModuloAssigner final : public VertexAssigner {
 public:
  [[nodiscard]] std::string_view name() const override { return "modulo"; }
  [[nodiscard]] PartitionId place_vertex(
      VertexId v, std::span<const VertexId> /*neighbors*/,
      const VertexAssignView& view) override {
    return static_cast<PartitionId>(v % view.k);
  }
};

TEST(Vertex2EdgePartTest, HandCheckableFixture) {
  // Path 0-1-2-3, k=2. Vertex partition: {0,2}->p0, {1,3}->p1.
  // Edge (0,1): loads 0/0, tie -> p0. Edge (1,2): p1 load 0 < p0 load 1
  // -> p1. Edge (2,3): p0 load 1 = p1 load 1, tie -> p0? No: endpoints map
  // to p0 (v=2) and p1 (v=3); both hold 1 edge, tie -> smaller id p0.
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 3}};
  Vertex2EdgePartitioner lifter(std::make_unique<ModuloAssigner>());
  PartitionState state(2, 4);
  std::vector<Assignment> assignments;
  VectorEdgeStream stream(edges);
  lifter.partition(stream, state, [&](const Edge& e, PartitionId p) {
    assignments.push_back({e, p});
  });

  const std::vector<PartitionId> expected_vparts{0, 1, 0, 1};
  EXPECT_EQ(lifter.last_vertex_parts(), expected_vparts);

  ASSERT_EQ(assignments.size(), 3u);
  EXPECT_EQ(assignments[0].partition, 0u);
  EXPECT_EQ(assignments[1].partition, 1u);
  EXPECT_EQ(assignments[2].partition, 0u);

  // Replica sets follow the lifting: only cut vertices replicate, and no
  // vertex lands outside {its partition} ∪ {neighbor partitions}.
  EXPECT_EQ(state.assigned_edges(), 3u);
  EXPECT_LE(state.replicas(0).size(), 1u);
  EXPECT_LE(state.replicas(3).size(), 1u);
}

TEST(Vertex2EdgePartTest, TotalVerticesCountsDistinctEndpoints) {
  // Sparse id space: 3 distinct vertices in a 1000-id state. A capacity
  // computed over num_vertices would never bind; the view must expose the
  // participant count instead. The recording assigner captures the view.
  struct RecordingAssigner final : VertexAssigner {
    VertexId seen_total = 0;
    std::uint64_t seen_edges = 0;
    [[nodiscard]] std::string_view name() const override { return "rec"; }
    [[nodiscard]] PartitionId place_vertex(
        VertexId /*v*/, std::span<const VertexId> /*neighbors*/,
        const VertexAssignView& view) override {
      seen_total = view.total_vertices;
      seen_edges = view.num_edges;
      return 0;
    }
  };
  auto owned = std::make_unique<RecordingAssigner>();
  RecordingAssigner* rec = owned.get();
  Vertex2EdgePartitioner lifter(std::move(owned));
  PartitionState state(4, 1000);
  const std::vector<Edge> edges{{10, 900}, {900, 500}};
  VectorEdgeStream stream(edges);
  lifter.partition(stream, state, {});
  EXPECT_EQ(rec->seen_total, 3u);
  EXPECT_EQ(rec->seen_edges, 2u);
}

// --- EBV placement rule -----------------------------------------------------------

TEST(EbvPartitionerTest, PrefersPartitionHoldingBothEndpoints) {
  EbvPartitioner ebv;
  PartitionState st(3, 12);
  st.assign({0, 1}, 1);  // both 0 and 1 replicated on p1
  st.assign({2, 3}, 0);
  st.assign({6, 7}, 0);
  st.assign({4, 5}, 2);
  st.assign({8, 9}, 2);
  std::vector<std::uint64_t> vcounts{4, 2, 4};
  // p1 saves two replica creations: cost 0 + 1·3/6 + 2·3/11 ≈ 1.05 versus
  // 2 + 2·3/6 + 4·3/11 ≈ 4.09 on either rival.
  EXPECT_EQ(ebv.place({0, 1}, st, vcounts, 10), 1u);
}

TEST(EbvPartitionerTest, BalanceTermsBreakReplicationTies) {
  EbvPartitioner ebv;
  PartitionState st(2, 10);
  st.assign({0, 1}, 0);
  st.assign({2, 3}, 0);
  st.assign({4, 5}, 1);
  std::vector<std::uint64_t> vcounts{4, 2};
  // Fresh edge (8,9): replication cost 2 everywhere; p1 has fewer edges
  // AND fewer vertices, so both balance terms point the same way.
  EXPECT_EQ(ebv.place({8, 9}, st, vcounts, 6), 1u);
}

TEST(EbvPartitionerTest, SelfLoopCountsEndpointOnce) {
  // Self-loop (0,0): placing it on an empty partition creates ONE replica,
  // not two. The state is tuned so the outcome flips if the indicator were
  // double-counted: p0 (holding vertex 0) costs its balance penalties
  // 1·3/5 + 2·3/9 ≈ 1.267; an empty p1 costs exactly the replication
  // indicator — 1.0 single-counted (p1 wins), 2.0 double-counted (p0
  // would win).
  EbvPartitioner ebv;
  PartitionState st(3, 10);
  st.assign({0, 1}, 0);
  st.assign({2, 3}, 2);
  st.assign({4, 5}, 2);
  st.assign({6, 7}, 2);
  std::vector<std::uint64_t> vcounts{2, 0, 6};
  EXPECT_EQ(ebv.place({0, 0}, st, vcounts, 8), 1u);
}

TEST(EbvPartitionerTest, MatchesStreamedStateAfterRestreamSeed) {
  // place() + the partition() loop must agree with counts rebuilt from a
  // pre-seeded state: run once, then continue on a copy via partition()
  // and via manual place()+assign — identical placements.
  const Graph g = make_erdos_renyi(200, 1200, 21);
  const auto edges = g.edges();
  const std::size_t half = edges.size() / 2;

  PartitionState seeded(4, g.num_vertices());
  {
    EbvPartitioner ebv;
    VectorEdgeStream first_half(std::span<const Edge>(edges.data(), half));
    ebv.partition(first_half, seeded);
  }

  // Continue with partition() on the seeded state.
  PartitionState via_partition = seeded;
  std::vector<Assignment> got;
  {
    EbvPartitioner ebv;
    VectorEdgeStream rest(
        std::span<const Edge>(edges.data() + half, edges.size() - half));
    ebv.partition(rest, via_partition, [&](const Edge& e, PartitionId p) {
      got.push_back({e, p});
    });
  }

  // Continue manually, maintaining counts by hand from replica sets.
  PartitionState manual = seeded;
  std::vector<std::uint64_t> vcounts(4, 0);
  std::uint64_t seen = 0;
  for (VertexId v = 0; v < manual.num_vertices(); ++v) {
    const auto r = manual.replicas(v);
    if (r.size() > 0) ++seen;
    r.for_each([&](std::uint32_t p) { ++vcounts[p]; });
  }
  EbvPartitioner ebv;
  std::size_t i = 0;
  for (std::size_t idx = half; idx < edges.size(); ++idx, ++i) {
    const Edge& e = edges[idx];
    const PartitionId p = ebv.place(e, manual, vcounts, seen);
    ASSERT_EQ(p, got[i].partition) << "edge " << idx;
    const PartitionState::AssignEffect effect = manual.assign(e, p);
    if (effect.new_replica_u) {
      ++vcounts[p];
      if (manual.replicas(e.u).size() == 1) ++seen;
    }
    if (effect.new_replica_v) {
      ++vcounts[p];
      if (manual.replicas(e.v).size() == 1) ++seen;
    }
  }
}

// --- Fennel capacity / LDG fallback ------------------------------------------------

TEST(FennelPartitionerTest, CapacityKeepsVertexBalanceTight) {
  // A hub-heavy graph begs Fennel to pile everything onto one partition;
  // the ν = 1.1 capacity over PARTICIPANTS must cap the vertex imbalance
  // near ν even when ids are sparse relative to the state size.
  const Graph g = make_rmat({.scale = 12, .num_edges = 20000, .seed = 31});
  auto fennel = make_fennel_partitioner();
  PartitionState st(8, g.num_vertices());
  VectorEdgeStream stream(g.edges());
  fennel->partition(stream, st);
  const QualityReport q = analyze_quality(st);
  EXPECT_LE(q.vertex_balance, 1.25) << "capacity did not bind";
  EXPECT_EQ(st.assigned_edges(), g.num_edges());
}

TEST(LdgPartitionerTest, FallbackFillsFewestVertices) {
  // A star: the hub lands first (all-zero scores -> fallback), then every
  // spoke prefers the hub's partition until the (1 - |P|/C) factor zeroes
  // out at capacity — from there the fewest-vertices fallback must spread
  // the rest, keeping vertex balance near perfect instead of piling on.
  const Graph g = make_star(64);
  auto ldg = make_ldg_partitioner();
  PartitionState st(4, g.num_vertices());
  VectorEdgeStream stream(g.edges());
  ldg->partition(stream, st);
  const QualityReport q = analyze_quality(st);
  EXPECT_LE(q.vertex_balance, 1.2);
}

// --- 2PS balance guard -------------------------------------------------------------

TEST(TwoPsPartitionerTest, CommunityGraphStaysBalanced) {
  const Graph g = make_community_graph({.num_communities = 40, .seed = 13});
  TwoPsPartitioner twops;
  PartitionState st(8, g.num_vertices());
  VectorEdgeStream stream(g.edges());
  twops.partition(stream, st);
  EXPECT_EQ(st.assigned_edges(), g.num_edges());
  const QualityReport q = analyze_quality(st);
  // Phase-2 static cap is 1.1·|E|/k: the max partition cannot exceed it.
  EXPECT_LE(q.load_balance, 1.12);
}

TEST(TwoPsPartitionerTest, GridBeatsHashQuality) {
  // Grids cluster perfectly: 2PS's clustering phase should land far below
  // hash replication.
  const Graph g = make_grid(60, 60);
  TwoPsPartitioner twops;
  PartitionState st_2ps(8, g.num_vertices());
  {
    VectorEdgeStream stream(g.edges());
    twops.partition(stream, st_2ps);
  }
  auto hash = make_baseline_partitioner("hash", 8);
  PartitionState st_hash(8, g.num_vertices());
  {
    VectorEdgeStream stream(g.edges());
    hash->partition(stream, st_hash);
  }
  EXPECT_LT(st_2ps.replication_degree(),
            st_hash.replication_degree() * 0.8);
}

TEST(TwoPsPartitionerTest, RefusesCheckpointing) {
  // Mid-stream state is a half-built clustering nobody can resume from;
  // the refusal must be loud (false), never a silent no-op hook.
  TwoPsPartitioner twops;
  CheckpointHook hook;
  hook.every = 100;
  hook.emit = [](std::uint64_t, std::uint64_t, std::span<const std::byte>) {};
  EXPECT_FALSE(twops.enable_checkpoints(std::move(hook)));
}

}  // namespace
}  // namespace adwise
