// Tests for the adaptive window controller: C1/C2 growth and shrink rules,
// latency budgets via FakeClock (§III-A, Algorithm 1 lines 11-17).
#include <gtest/gtest.h>

#include <chrono>

#include "src/core/adaptive_controller.h"

namespace adwise {
namespace {

using namespace std::chrono_literals;

AdwiseOptions options_with(std::int64_t latency_ms,
                           std::uint64_t initial = 1,
                           std::uint64_t max_window = 1 << 16) {
  AdwiseOptions opts;
  opts.latency_preference_ms = latency_ms;
  opts.initial_window = initial;
  opts.max_window = max_window;
  return opts;
}

TEST(ControllerTest, StartsAtInitialWindow) {
  FakeClock clock;
  AdaptiveController ctrl(options_with(-1, 4), clock, 1000);
  EXPECT_EQ(ctrl.window_size(), 4u);
}

TEST(ControllerTest, ZeroInitialWindowClampsToOne) {
  FakeClock clock;
  AdaptiveController ctrl(options_with(-1, 0), clock, 1000);
  EXPECT_EQ(ctrl.window_size(), 1u);
}

TEST(ControllerTest, GrowsWhenUnconstrainedAndScoresHold) {
  FakeClock clock;
  AdaptiveController ctrl(options_with(-1), clock, 1000);
  // Constant scores: C1 holds (non-degrading); no latency preference: C2
  // holds. Window doubles after each full batch.
  std::uint64_t assigned = 0;
  for (int batch = 0; batch < 4; ++batch) {
    const std::uint64_t w = ctrl.window_size();
    for (std::uint64_t i = 0; i < w; ++i) {
      ctrl.on_assignment(1.0, ++assigned);
    }
  }
  EXPECT_EQ(ctrl.window_size(), 16u);
  EXPECT_EQ(ctrl.adaptations(), 4u);
}

TEST(ControllerTest, GrowthCappedAtMaxWindow) {
  FakeClock clock;
  AdaptiveController ctrl(options_with(-1, 1, 8), clock, 100000);
  std::uint64_t assigned = 0;
  for (int batch = 0; batch < 10; ++batch) {
    const std::uint64_t w = ctrl.window_size();
    for (std::uint64_t i = 0; i < w; ++i) {
      ctrl.on_assignment(1.0, ++assigned);
    }
  }
  EXPECT_EQ(ctrl.window_size(), 8u);
}

TEST(ControllerTest, DegradedScoresBlockGrowth) {
  FakeClock clock;
  AdaptiveController ctrl(options_with(-1, 4), clock, 1000);
  std::uint64_t assigned = 0;
  // First batch: high scores.
  for (int i = 0; i < 4; ++i) ctrl.on_assignment(10.0, ++assigned);
  EXPECT_EQ(ctrl.window_size(), 8u);  // C1 vacuous on the first batch
  // Second batch: much worse scores -> C1 fails -> hold (C2 true).
  for (int i = 0; i < 8; ++i) ctrl.on_assignment(1.0, ++assigned);
  EXPECT_EQ(ctrl.window_size(), 8u);
}

TEST(ControllerTest, ZeroLatencyPreferenceCollapsesToSingleEdge) {
  // Paper: "if the latency preference L is too tight (e.g. 0 seconds), the
  // algorithm decreases w until w = 1".
  FakeClock clock;
  AdaptiveController ctrl(options_with(0, 32), clock, 1000);
  std::uint64_t assigned = 0;
  for (int batch = 0; batch < 8; ++batch) {
    const std::uint64_t w = ctrl.window_size();
    for (std::uint64_t i = 0; i < w; ++i) {
      clock.advance(1ms);  // any nonzero latency violates a zero budget
      ctrl.on_assignment(1.0, ++assigned);
    }
  }
  EXPECT_EQ(ctrl.window_size(), 1u);
}

TEST(ControllerTest, ShrinksWhenPerEdgeLatencyExceedsBudget) {
  // Budget: 100 ms for 1000 edges => 0.1 ms/edge. Simulate 1 ms/edge.
  FakeClock clock;
  AdaptiveController ctrl(options_with(100, 8), clock, 1000);
  std::uint64_t assigned = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    clock.advance(1ms);
    ctrl.on_assignment(1.0, ++assigned);
  }
  EXPECT_EQ(ctrl.window_size(), 4u);
}

TEST(ControllerTest, GrowsWhenWellUnderBudget) {
  // Budget: 10 s for 1000 edges => 10 ms/edge. Simulate 0.01 ms/edge.
  FakeClock clock;
  AdaptiveController ctrl(options_with(10000, 4), clock, 1000);
  std::uint64_t assigned = 0;
  for (std::uint64_t i = 0; i < 4; ++i) {
    clock.advance(10us);
    ctrl.on_assignment(1.0, ++assigned);
  }
  EXPECT_EQ(ctrl.window_size(), 8u);
}

TEST(ControllerTest, HoldsWindowWhenBudgetOkButScoresDegrade) {
  FakeClock clock;
  AdaptiveController ctrl(options_with(10000, 4), clock, 1000);
  std::uint64_t assigned = 0;
  for (std::uint64_t i = 0; i < 4; ++i) {
    clock.advance(10us);
    ctrl.on_assignment(5.0, ++assigned);
  }
  ASSERT_EQ(ctrl.window_size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    clock.advance(10us);
    ctrl.on_assignment(1.0, ++assigned);  // worse scores, good latency
  }
  EXPECT_EQ(ctrl.window_size(), 8u);  // hold: ¬C1 but C2
}

TEST(ControllerTest, WindowNeverBelowOne) {
  FakeClock clock;
  AdaptiveController ctrl(options_with(1, 1), clock, 10);
  std::uint64_t assigned = 0;
  for (int i = 0; i < 6; ++i) {
    clock.advance(100ms);
    ctrl.on_assignment(1.0, ++assigned);
  }
  EXPECT_EQ(ctrl.window_size(), 1u);
}

TEST(ControllerTest, ExhaustedBudgetForcesShrink) {
  FakeClock clock;
  AdaptiveController ctrl(options_with(50, 4), clock, 1000);
  clock.advance(60ms);  // already over the 50 ms preference
  std::uint64_t assigned = 0;
  for (std::uint64_t i = 0; i < 4; ++i) ctrl.on_assignment(1.0, ++assigned);
  EXPECT_EQ(ctrl.window_size(), 2u);
}

TEST(ControllerTest, ExhaustedStreamFreezesWindow) {
  FakeClock clock;
  AdaptiveController ctrl(options_with(10, 2), clock, 4);
  clock.advance(1s);  // far over budget, but the stream is finished
  ctrl.on_assignment(1.0, 4);
  ctrl.on_assignment(1.0, 4);
  // The window neither grows nor shrinks while it only drains.
  EXPECT_EQ(ctrl.window_size(), 2u);
}

TEST(ControllerTest, AdaptiveWindowDisabledKeepsSize) {
  FakeClock clock;
  AdwiseOptions opts = options_with(-1, 16);
  opts.adaptive_window = false;
  AdaptiveController ctrl(opts, clock, 1000);
  std::uint64_t assigned = 0;
  for (int i = 0; i < 100; ++i) ctrl.on_assignment(1.0, ++assigned);
  EXPECT_EQ(ctrl.window_size(), 16u);
  EXPECT_EQ(ctrl.adaptations(), 0u);
}

TEST(ControllerTest, MaxWindowReachedIsTracked) {
  FakeClock clock;
  AdaptiveController ctrl(options_with(-1, 1), clock, 1000);
  std::uint64_t assigned = 0;
  for (int batch = 0; batch < 3; ++batch) {
    const std::uint64_t w = ctrl.window_size();
    for (std::uint64_t i = 0; i < w; ++i) ctrl.on_assignment(1.0, ++assigned);
  }
  EXPECT_EQ(ctrl.max_window_reached(), 8u);
}

}  // namespace
}  // namespace adwise
