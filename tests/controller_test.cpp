// Tests for the adaptive window controller: C1/C2 growth and shrink rules,
// latency budgets via FakeClock (§III-A, Algorithm 1 lines 11-17).
#include <gtest/gtest.h>

#include <chrono>

#include "src/core/adaptive_controller.h"

namespace adwise {
namespace {

using namespace std::chrono_literals;

AdwiseOptions options_with(std::int64_t latency_ms,
                           std::uint64_t initial = 1,
                           std::uint64_t max_window = 1 << 16) {
  AdwiseOptions opts;
  opts.latency_preference_ms = latency_ms;
  opts.initial_window = initial;
  opts.max_window = max_window;
  return opts;
}

TEST(ControllerTest, StartsAtInitialWindow) {
  FakeClock clock;
  AdaptiveController ctrl(options_with(-1, 4), clock, 1000);
  EXPECT_EQ(ctrl.window_size(), 4u);
}

TEST(ControllerTest, ZeroInitialWindowClampsToOne) {
  FakeClock clock;
  AdaptiveController ctrl(options_with(-1, 0), clock, 1000);
  EXPECT_EQ(ctrl.window_size(), 1u);
}

TEST(ControllerTest, GrowsWhenUnconstrainedAndScoresHold) {
  FakeClock clock;
  AdaptiveController ctrl(options_with(-1), clock, 1000);
  // Constant scores: C1 holds (non-degrading); no latency preference: C2
  // holds. Window doubles after each full batch.
  std::uint64_t assigned = 0;
  for (int batch = 0; batch < 4; ++batch) {
    const std::uint64_t w = ctrl.window_size();
    for (std::uint64_t i = 0; i < w; ++i) {
      ctrl.on_assignment(1.0, ++assigned);
    }
  }
  EXPECT_EQ(ctrl.window_size(), 16u);
  EXPECT_EQ(ctrl.adaptations(), 4u);
}

TEST(ControllerTest, GrowthCappedAtMaxWindow) {
  FakeClock clock;
  AdaptiveController ctrl(options_with(-1, 1, 8), clock, 100000);
  std::uint64_t assigned = 0;
  for (int batch = 0; batch < 10; ++batch) {
    const std::uint64_t w = ctrl.window_size();
    for (std::uint64_t i = 0; i < w; ++i) {
      ctrl.on_assignment(1.0, ++assigned);
    }
  }
  EXPECT_EQ(ctrl.window_size(), 8u);
}

TEST(ControllerTest, DegradedScoresBlockGrowth) {
  FakeClock clock;
  AdaptiveController ctrl(options_with(-1, 4), clock, 1000);
  std::uint64_t assigned = 0;
  // First batch: high scores.
  for (int i = 0; i < 4; ++i) ctrl.on_assignment(10.0, ++assigned);
  EXPECT_EQ(ctrl.window_size(), 8u);  // C1 vacuous on the first batch
  // Second batch: much worse scores -> C1 fails -> hold (C2 true).
  for (int i = 0; i < 8; ++i) ctrl.on_assignment(1.0, ++assigned);
  EXPECT_EQ(ctrl.window_size(), 8u);
}

TEST(ControllerTest, ZeroLatencyPreferenceCollapsesToSingleEdge) {
  // Paper: "if the latency preference L is too tight (e.g. 0 seconds), the
  // algorithm decreases w until w = 1".
  FakeClock clock;
  AdaptiveController ctrl(options_with(0, 32), clock, 1000);
  std::uint64_t assigned = 0;
  for (int batch = 0; batch < 8; ++batch) {
    const std::uint64_t w = ctrl.window_size();
    for (std::uint64_t i = 0; i < w; ++i) {
      clock.advance(1ms);  // any nonzero latency violates a zero budget
      ctrl.on_assignment(1.0, ++assigned);
    }
  }
  EXPECT_EQ(ctrl.window_size(), 1u);
}

TEST(ControllerTest, ShrinksWhenPerEdgeLatencyExceedsBudget) {
  // Budget: 100 ms for 1000 edges => 0.1 ms/edge. Simulate 1 ms/edge.
  FakeClock clock;
  AdaptiveController ctrl(options_with(100, 8), clock, 1000);
  std::uint64_t assigned = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    clock.advance(1ms);
    ctrl.on_assignment(1.0, ++assigned);
  }
  EXPECT_EQ(ctrl.window_size(), 4u);
}

TEST(ControllerTest, GrowsWhenWellUnderBudget) {
  // Budget: 10 s for 1000 edges => 10 ms/edge. Simulate 0.01 ms/edge.
  FakeClock clock;
  AdaptiveController ctrl(options_with(10000, 4), clock, 1000);
  std::uint64_t assigned = 0;
  for (std::uint64_t i = 0; i < 4; ++i) {
    clock.advance(10us);
    ctrl.on_assignment(1.0, ++assigned);
  }
  EXPECT_EQ(ctrl.window_size(), 8u);
}

TEST(ControllerTest, HoldsWindowWhenBudgetOkButScoresDegrade) {
  FakeClock clock;
  AdaptiveController ctrl(options_with(10000, 4), clock, 1000);
  std::uint64_t assigned = 0;
  for (std::uint64_t i = 0; i < 4; ++i) {
    clock.advance(10us);
    ctrl.on_assignment(5.0, ++assigned);
  }
  ASSERT_EQ(ctrl.window_size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    clock.advance(10us);
    ctrl.on_assignment(1.0, ++assigned);  // worse scores, good latency
  }
  EXPECT_EQ(ctrl.window_size(), 8u);  // hold: ¬C1 but C2
}

TEST(ControllerTest, WindowNeverBelowOne) {
  FakeClock clock;
  AdaptiveController ctrl(options_with(1, 1), clock, 10);
  std::uint64_t assigned = 0;
  for (int i = 0; i < 6; ++i) {
    clock.advance(100ms);
    ctrl.on_assignment(1.0, ++assigned);
  }
  EXPECT_EQ(ctrl.window_size(), 1u);
}

TEST(ControllerTest, ExhaustedBudgetForcesShrink) {
  FakeClock clock;
  AdaptiveController ctrl(options_with(50, 4), clock, 1000);
  clock.advance(60ms);  // already over the 50 ms preference
  std::uint64_t assigned = 0;
  for (std::uint64_t i = 0; i < 4; ++i) ctrl.on_assignment(1.0, ++assigned);
  EXPECT_EQ(ctrl.window_size(), 2u);
}

TEST(ControllerTest, ExhaustedStreamFreezesWindow) {
  FakeClock clock;
  AdaptiveController ctrl(options_with(10, 2), clock, 4);
  clock.advance(1s);  // far over budget, but the stream is finished
  ctrl.on_assignment(1.0, 4);
  ctrl.on_assignment(1.0, 4);
  // The window neither grows nor shrinks while it only drains.
  EXPECT_EQ(ctrl.window_size(), 2u);
}

TEST(ControllerTest, AdaptiveWindowDisabledKeepsSize) {
  FakeClock clock;
  AdwiseOptions opts = options_with(-1, 16);
  opts.adaptive_window = false;
  AdaptiveController ctrl(opts, clock, 1000);
  std::uint64_t assigned = 0;
  for (int i = 0; i < 100; ++i) ctrl.on_assignment(1.0, ++assigned);
  EXPECT_EQ(ctrl.window_size(), 16u);
  EXPECT_EQ(ctrl.adaptations(), 0u);
}

TEST(ControllerTest, MaxWindowReachedIsTracked) {
  FakeClock clock;
  AdaptiveController ctrl(options_with(-1, 1), clock, 1000);
  std::uint64_t assigned = 0;
  for (int batch = 0; batch < 3; ++batch) {
    const std::uint64_t w = ctrl.window_size();
    for (std::uint64_t i = 0; i < w; ++i) ctrl.on_assignment(1.0, ++assigned);
  }
  EXPECT_EQ(ctrl.max_window_reached(), 8u);
}

// --- BatchCutoffController -----------------------------------------------------------

using std::chrono::nanoseconds;

TEST(BatchCutoffTest, DisabledPinsConfiguredCutoff) {
  AdwiseOptions opts;
  opts.adaptive_batch_cutoff = false;
  opts.parallel_batch_min = 24;
  BatchCutoffController ctl(opts, /*slots=*/4);
  EXPECT_EQ(ctl.cutoff(), 24u);
  EXPECT_FALSE(ctl.probe(8));
  for (int i = 0; i < 100; ++i) {
    ctl.observe(8, /*pooled=*/false, nanoseconds(8'000));
    ctl.observe(64, /*pooled=*/true, nanoseconds(40'000));
  }
  EXPECT_EQ(ctl.cutoff(), 24u);
  EXPECT_EQ(ctl.adaptations(), 0u);
}

TEST(BatchCutoffTest, SettlesAtBreakEvenBatchSize) {
  AdwiseOptions opts;  // adaptive by default, parallel_batch_min = 16
  BatchCutoffController ctl(opts, /*slots=*/4);
  // Synthetic cost model: 1000 ns per item serially; the pool pays a
  // 6000 ns fan-out on top of perfectly parallel scoring. Break-even:
  // n* = 6000 / (1000 * (1 - 1/4)) = 8.
  for (int i = 0; i < 200; ++i) {
    ctl.observe(10, /*pooled=*/false, nanoseconds(10'000));
    ctl.observe(64, /*pooled=*/true, nanoseconds(6'000 + 64'000 / 4));
  }
  EXPECT_EQ(ctl.cutoff(), 8u);
  EXPECT_GT(ctl.adaptations(), 0u);
}

TEST(BatchCutoffTest, ExpensiveFanOutRaisesCutoff) {
  AdwiseOptions opts;
  BatchCutoffController ctl(opts, /*slots=*/4);
  // 100 ns per item, 60 us fan-out: n* = 60000 / 75 = 800 — pooling tiny
  // batches on this host would be a loss and the cutoff says so.
  for (int i = 0; i < 200; ++i) {
    ctl.observe(10, /*pooled=*/false, nanoseconds(1'000));
    ctl.observe(64, /*pooled=*/true, nanoseconds(60'000 + 6'400 / 4));
  }
  EXPECT_EQ(ctl.cutoff(), 800u);
}

TEST(BatchCutoffTest, ZeroElapsedSamplesAreIgnored) {
  AdwiseOptions opts;
  BatchCutoffController ctl(opts, /*slots=*/4);
  // FakeClock regime: every timing reads zero; the cutoff must not move.
  for (int i = 0; i < 300; ++i) {
    ctl.observe(8, /*pooled=*/false, nanoseconds(0));
    ctl.observe(64, /*pooled=*/true, nanoseconds(0));
  }
  EXPECT_EQ(ctl.cutoff(), 16u);
  EXPECT_EQ(ctl.adaptations(), 0u);
}

TEST(BatchCutoffTest, ProbesSubCutoffBatchesPeriodically) {
  AdwiseOptions opts;
  BatchCutoffController ctl(opts, /*slots=*/4);
  int probes = 0;
  for (int i = 0; i < 640; ++i) {
    if (ctl.probe(8)) ++probes;
  }
  EXPECT_EQ(probes, 10);  // every 64th sub-cutoff batch
  // Batches at or above the cutoff never need a probe, nor do singletons.
  EXPECT_FALSE(ctl.probe(16));
  EXPECT_FALSE(ctl.probe(1));
}

// --- DrainController -----------------------------------------------------------------

namespace {

AdwiseOptions drain_opts(bool adaptive) {
  AdwiseOptions opts;
  opts.adaptive_drain = adaptive;
  opts.drain_rescore_budget = 8;
  opts.demotion_sweep_interval = 16;
  return opts;
}

// Feeds one full decision period (64 drains) with the given forced /
// budget-limited pattern.
void feed_period(DrainController& ctl, int forced, int limited) {
  for (int i = 0; i < 64; ++i) {
    ctl.observe_drain(i < forced, i < limited);
  }
}

}  // namespace

TEST(DrainControllerTest, DisabledPinsConfiguredValues) {
  DrainController ctl(drain_opts(false));
  feed_period(ctl, 64, 64);
  feed_period(ctl, 64, 64);
  EXPECT_EQ(ctl.rescore_budget(), 8u);
  EXPECT_EQ(ctl.sweep_interval(), 16u);
  EXPECT_EQ(ctl.adaptations(), 0u);
}

TEST(DrainControllerTest, KeepsGrowthThatReducesForcedRate) {
  DrainController ctl(drain_opts(true));
  // Starved and budget-limited: the controller trials a doubled budget.
  feed_period(ctl, 60, 60);
  EXPECT_EQ(ctl.rescore_budget(), 16u);
  EXPECT_EQ(ctl.sweep_interval(), 32u);
  // The trial pays off (forced rate halves): the growth sticks.
  feed_period(ctl, 30, 30);
  EXPECT_EQ(ctl.rescore_budget(), 16u);
  EXPECT_EQ(ctl.adaptations(), 1u);
}

TEST(DrainControllerTest, RevertsGrowthThatDoesNotPayOff) {
  DrainController ctl(drain_opts(true));
  feed_period(ctl, 60, 60);
  EXPECT_EQ(ctl.rescore_budget(), 16u);
  // Forced rate barely moves: restore the floor and back off.
  feed_period(ctl, 56, 56);
  EXPECT_EQ(ctl.rescore_budget(), 8u);
  EXPECT_EQ(ctl.sweep_interval(), 16u);
  // Cooldown: the next starved periods do not immediately re-trial.
  feed_period(ctl, 60, 60);
  EXPECT_EQ(ctl.rescore_budget(), 8u);
}

TEST(DrainControllerTest, ThetaLimitedDrainsNeverGrow) {
  DrainController ctl(drain_opts(true));
  // All forced but none budget-limited (the walk ran the heap dry): a
  // bigger budget cannot help, so no trial fires.
  for (int i = 0; i < 10; ++i) feed_period(ctl, 64, 0);
  EXPECT_EQ(ctl.rescore_budget(), 8u);
  EXPECT_EQ(ctl.adaptations(), 0u);
}

TEST(DrainControllerTest, GrowthIsCappedAtFourTimesFloor) {
  DrainController ctl(drain_opts(true));
  // Every trial halves the forced rate, so every doubling sticks — but
  // growth stops at 4x the configured floor.
  feed_period(ctl, 64, 64);
  feed_period(ctl, 32, 32);  // keep 16
  feed_period(ctl, 32, 32);  // trial 32
  feed_period(ctl, 16, 16);  // keep 32
  feed_period(ctl, 16, 16);  // at cap: no further trial
  feed_period(ctl, 16, 16);
  EXPECT_EQ(ctl.rescore_budget(), 32u);
  EXPECT_EQ(ctl.sweep_interval(), 64u);
}

TEST(DrainControllerTest, LowForcedRateDecaysTowardFloors) {
  DrainController ctl(drain_opts(true));
  feed_period(ctl, 64, 64);
  feed_period(ctl, 30, 30);  // keep 16 / 32
  EXPECT_EQ(ctl.rescore_budget(), 16u);
  // Healthy stretch (<= 12.5% forced): decay back to the floors.
  feed_period(ctl, 4, 0);
  EXPECT_EQ(ctl.rescore_budget(), 8u);
  EXPECT_EQ(ctl.sweep_interval(), 16u);
}

}  // namespace
}  // namespace adwise
