// Tests for the EdgeWindow: slot lifecycle, incidence lists, candidate set,
// and window-local neighborhood collection.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/core/window.h"

namespace adwise {
namespace {

std::vector<std::uint32_t> incident_slots(const EdgeWindow& w, VertexId v) {
  std::vector<std::uint32_t> out;
  w.for_each_incident(v, [&](std::uint32_t id) { out.push_back(id); });
  return out;
}

std::vector<VertexId> neighbors(const EdgeWindow& w, const Edge& e,
                                std::uint32_t exclude,
                                std::uint32_t cap = 64) {
  std::vector<VertexId> out;
  w.collect_neighbors(e, exclude, cap, out);
  return out;
}

TEST(EdgeWindowTest, InsertAndRemove) {
  EdgeWindow w(10);
  EXPECT_TRUE(w.empty());
  const auto s1 = w.insert({0, 1});
  const auto s2 = w.insert({1, 2});
  EXPECT_EQ(w.size(), 2u);
  EXPECT_EQ(w.slot(s1).edge, (Edge{0, 1}));
  w.remove(s1);
  EXPECT_EQ(w.size(), 1u);
  w.remove(s2);
  EXPECT_TRUE(w.empty());
}

TEST(EdgeWindowTest, SlotsAreRecycled) {
  EdgeWindow w(10);
  const auto s1 = w.insert({0, 1});
  w.remove(s1);
  const auto s2 = w.insert({2, 3});
  EXPECT_EQ(s1, s2);  // free list reuse
}

TEST(EdgeWindowTest, IncidenceListsTrackBothEndpoints) {
  EdgeWindow w(10);
  const auto s1 = w.insert({0, 1});
  const auto s2 = w.insert({1, 2});
  const auto s3 = w.insert({2, 3});
  EXPECT_EQ(incident_slots(w, 0), (std::vector<std::uint32_t>{s1}));
  const auto at1 = incident_slots(w, 1);
  EXPECT_EQ(std::set<std::uint32_t>(at1.begin(), at1.end()),
            (std::set<std::uint32_t>{s1, s2}));
  const auto at2 = incident_slots(w, 2);
  EXPECT_EQ(std::set<std::uint32_t>(at2.begin(), at2.end()),
            (std::set<std::uint32_t>{s2, s3}));
  EXPECT_TRUE(incident_slots(w, 5).empty());
}

TEST(EdgeWindowTest, RemovalUnlinksFromBothLists) {
  EdgeWindow w(10);
  w.insert({0, 1});
  const auto s2 = w.insert({1, 2});
  w.insert({1, 3});
  w.remove(s2);
  const auto at1 = incident_slots(w, 1);
  EXPECT_EQ(at1.size(), 2u);
  EXPECT_TRUE(incident_slots(w, 2).empty());
}

TEST(EdgeWindowTest, RemoveMiddleOfChain) {
  EdgeWindow w(10);
  const auto a = w.insert({5, 1});
  const auto b = w.insert({5, 2});
  const auto c = w.insert({5, 3});
  w.remove(b);
  const auto at5 = incident_slots(w, 5);
  EXPECT_EQ(std::set<std::uint32_t>(at5.begin(), at5.end()),
            (std::set<std::uint32_t>{a, c}));
}

TEST(EdgeWindowTest, CandidateSetAddRemove) {
  EdgeWindow w(10);
  const auto s1 = w.insert({0, 1});
  const auto s2 = w.insert({1, 2});
  const auto s3 = w.insert({2, 3});
  EXPECT_TRUE(w.candidates().empty());
  w.set_candidate(s1, true);
  w.set_candidate(s3, true);
  EXPECT_EQ(w.candidates().size(), 2u);
  EXPECT_TRUE(w.is_candidate(s1));
  EXPECT_FALSE(w.is_candidate(s2));
  w.set_candidate(s1, false);
  EXPECT_EQ(w.candidates().size(), 1u);
  EXPECT_EQ(w.candidates()[0], s3);
}

TEST(EdgeWindowTest, CandidateSetIdempotent) {
  EdgeWindow w(10);
  const auto s1 = w.insert({0, 1});
  w.set_candidate(s1, true);
  w.set_candidate(s1, true);
  EXPECT_EQ(w.candidates().size(), 1u);
  w.set_candidate(s1, false);
  w.set_candidate(s1, false);
  EXPECT_TRUE(w.candidates().empty());
}

TEST(EdgeWindowTest, RemoveDropsCandidate) {
  EdgeWindow w(10);
  const auto s1 = w.insert({0, 1});
  w.set_candidate(s1, true);
  w.remove(s1);
  EXPECT_TRUE(w.candidates().empty());
}

TEST(EdgeWindowTest, SwapRemoveKeepsPositionsConsistent) {
  EdgeWindow w(10);
  const auto s1 = w.insert({0, 1});
  const auto s2 = w.insert({1, 2});
  const auto s3 = w.insert({2, 3});
  w.set_candidate(s1, true);
  w.set_candidate(s2, true);
  w.set_candidate(s3, true);
  w.set_candidate(s1, false);  // s3 swaps into s1's slot
  w.set_candidate(s3, false);
  EXPECT_EQ(w.candidates().size(), 1u);
  EXPECT_EQ(w.candidates()[0], s2);
  EXPECT_TRUE(w.is_candidate(s2));
}

TEST(EdgeWindowTest, ForEachSlotVisitsAllOccupied) {
  EdgeWindow w(10);
  w.insert({0, 1});
  const auto s2 = w.insert({1, 2});
  w.insert({2, 3});
  w.remove(s2);
  std::size_t count = 0;
  w.for_each_slot([&](std::uint32_t) { ++count; });
  EXPECT_EQ(count, 2u);
}

// --- Neighborhood collection (clustering score input, Eq. 6) ------------------

TEST(EdgeWindowTest, CollectNeighborsExcludesOwnSlot) {
  EdgeWindow w(10);
  const auto se = w.insert({0, 1});
  w.insert({0, 2});
  w.insert({1, 3});
  const auto nbrs = neighbors(w, {0, 1}, se);
  EXPECT_EQ(nbrs, (std::vector<VertexId>{2, 3}));
}

TEST(EdgeWindowTest, CollectNeighborsDeduplicatesUnion) {
  EdgeWindow w(10);
  const auto se = w.insert({0, 1});
  // Vertex 4 neighbors BOTH endpoints: must appear once (|N(u) ∪ N(v)|).
  w.insert({0, 4});
  w.insert({1, 4});
  const auto nbrs = neighbors(w, {0, 1}, se);
  EXPECT_EQ(nbrs, (std::vector<VertexId>{4}));
}

TEST(EdgeWindowTest, CollectNeighborsHonorsCap) {
  EdgeWindow w(100);
  const auto se = w.insert({0, 1});
  for (VertexId t = 2; t < 50; ++t) w.insert({0, t});
  const auto nbrs = neighbors(w, {0, 1}, se, /*cap=*/8);
  EXPECT_LE(nbrs.size(), 8u);
  EXPECT_FALSE(nbrs.empty());
}

TEST(EdgeWindowTest, CollectNeighborsOnEmptyWindowIsEmpty) {
  EdgeWindow w(10);
  const auto nbrs = neighbors(w, {0, 1}, EdgeWindow::npos);
  EXPECT_TRUE(nbrs.empty());
}

TEST(EdgeWindowTest, FigureSixScenario) {
  // Paper Fig. 6: u's window neighborhood has three vertices clustered on
  // p1 and one on p2; here we just verify the neighborhood enumeration.
  EdgeWindow w(20);
  const auto se = w.insert({10, 11});  // edge (u=10, v=11)
  w.insert({10, 1});
  w.insert({10, 2});
  w.insert({10, 3});
  w.insert({10, 4});
  const auto nbrs = neighbors(w, {10, 11}, se);
  EXPECT_EQ(nbrs, (std::vector<VertexId>{1, 2, 3, 4}));
}

}  // namespace
}  // namespace adwise
