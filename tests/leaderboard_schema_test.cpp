// Golden-structure tests for the quality-leaderboard pipeline:
//
//  - bench_leaderboard (run at a tiny scale on a small cell) must emit the
//    schema check_bench_guardrail.py --leaderboard consumes: one JSON
//    document, schema_version 1, one row per (algorithm x dataset x k)
//    with every metric field present;
//  - the guardrail's --leaderboard mode must pass a crafted JSON where
//    ADWISE wins within the pinned ratio, and fail (exit 1) when ADWISE's
//    replication exceeds 1.05x the best balanced streaming rival, when its
//    load balance degrades, and when coverage floors are not met.
//
// Binary and script paths are injected at compile time; each prerequisite
// that is missing skips rather than fails (examples-off builds, containers
// without python3).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace adwise {
namespace {

#if !defined(ADWISE_BENCH_LEADERBOARD_BIN) || !defined(ADWISE_GUARDRAIL_SCRIPT)

TEST(LeaderboardSchemaTest, RequiresLeaderboardBinary) {
  GTEST_SKIP() << "bench_leaderboard / guardrail script not configured";
}

#else

int exit_code(const std::string& command) {
  const int status = std::system(command.c_str());
  if (!WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

bool python3_available() {
  return exit_code("python3 -c 'pass' 2> /dev/null") == 0;
}

class LeaderboardSchemaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "leaderboard_" +
            std::to_string(static_cast<long>(::getpid())) + "_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name());
  }

  void TearDown() override {
    std::remove((base_ + ".json").c_str());
    std::remove((base_ + ".err").c_str());
  }

  std::string base_;
};

TEST_F(LeaderboardSchemaTest, TinyRunEmitsOneRowPerCell) {
  const std::string out = base_ + ".json";
  const std::string cmd = std::string(ADWISE_BENCH_LEADERBOARD_BIN) +
                          " --scale 0.05 --ks 2,4 --datasets grid"
                          " --algorithms adwise,hash,hdrf --out " +
                          out + " 2> " + base_ + ".err";
  ASSERT_EQ(exit_code(cmd), 0) << read_file(base_ + ".err");

  const std::string json = read_file(out);
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rows\""), std::string::npos);

  // 3 algorithms x 1 dataset x 2 ks = 6 rows, one "algorithm" key each.
  EXPECT_EQ(count_occurrences(json, "\"algorithm\""), 6u);
  for (const char* field :
       {"\"rival_class\"", "\"dataset\"", "\"power_law\"", "\"k\"", "\"n\"",
        "\"m\"", "\"replication\"", "\"imbalance\"", "\"load_balance\"",
        "\"vertex_balance\"", "\"seconds\"", "\"edges_per_second\""}) {
    EXPECT_EQ(count_occurrences(json, field), 6u) << field;
  }
  EXPECT_EQ(count_occurrences(json, "\"adwise\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"reference\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"streaming\""), 4u);
}

TEST_F(LeaderboardSchemaTest, UsageErrorsExitTwo) {
  EXPECT_EQ(exit_code(std::string(ADWISE_BENCH_LEADERBOARD_BIN) +
                      " --no-such-flag 2> /dev/null"),
            2);
  EXPECT_EQ(exit_code(std::string(ADWISE_BENCH_LEADERBOARD_BIN) +
                      " --datasets no_such_dataset 2> /dev/null"),
            2);
  EXPECT_EQ(exit_code(std::string(ADWISE_BENCH_LEADERBOARD_BIN) +
                      " --algorithms no_such_algo 2> /dev/null"),
            2);
}

// --- Guardrail --leaderboard pass/fail ---------------------------------------------

// Crafted leaderboard meeting the coverage floors (8 algorithms x 4
// datasets x 2 ks) with configurable ADWISE metrics on the power-law
// dataset, so each gate can be flipped independently.
std::string crafted_leaderboard(double adwise_replication,
                                double adwise_load_balance,
                                int num_algorithms = 8) {
  const char* algorithms[] = {"adwise", "hdrf",   "hash", "dbh",
                              "greedy", "grid",   "ebv",  "1d"};
  const char* classes[] = {"reference", "streaming", "streaming", "streaming",
                           "streaming", "streaming", "streaming", "streaming"};
  const char* datasets[] = {"rmat", "ba", "ws", "grid"};
  const bool power_law[] = {true, false, false, false};
  const int ks[] = {8, 32};

  std::ostringstream out;
  out << "{\n  \"schema_version\": 1,\n  \"scale\": 1.0,\n  \"rows\": [";
  bool first = true;
  for (int a = 0; a < num_algorithms; ++a) {
    for (int d = 0; d < 4; ++d) {
      for (const int k : ks) {
        const bool is_adwise = a == 0;
        const double rep = is_adwise ? adwise_replication : 2.0;
        const double lb = is_adwise ? adwise_load_balance : 1.05;
        if (!first) out << ",";
        first = false;
        out << "\n    {\"algorithm\": \"" << algorithms[a]
            << "\", \"rival_class\": \"" << classes[a] << "\", \"dataset\": \""
            << datasets[d] << "\", \"power_law\": "
            << (power_law[d] ? "true" : "false") << ", \"k\": " << k
            << ", \"n\": 1000, \"m\": 10000, \"replication\": " << rep
            << ", \"imbalance\": 0.01, \"load_balance\": " << lb
            << ", \"vertex_balance\": 1.1, \"seconds\": 0.5,"
               " \"edges_per_second\": 20000.0}";
      }
    }
  }
  out << "\n  ]\n}\n";
  return out.str();
}

class GuardrailLeaderboardTest : public LeaderboardSchemaTest {
 protected:
  int run_guardrail(const std::string& json) {
    const std::string path = base_ + ".json";
    std::ofstream(path) << json;
    return exit_code("python3 " + std::string(ADWISE_GUARDRAIL_SCRIPT) +
                     " --leaderboard " + path + " > " + base_ + ".err 2>&1");
  }

  [[nodiscard]] std::string output() const { return read_file(base_ + ".err"); }
};

TEST_F(GuardrailLeaderboardTest, WinningLeaderboardPasses) {
  if (!python3_available()) GTEST_SKIP() << "python3 not available";
  // ADWISE replication 1.5 vs rivals' 2.0: ratio 0.75 <= 1.05.
  EXPECT_EQ(run_guardrail(crafted_leaderboard(1.5, 1.0)), 0) << output();
}

TEST_F(GuardrailLeaderboardTest, QualityRegressionFails) {
  if (!python3_available()) GTEST_SKIP() << "python3 not available";
  // 3.0 vs 2.0: ratio 1.5 > 1.05 on the power-law dataset at k = 32.
  EXPECT_EQ(run_guardrail(crafted_leaderboard(3.0, 1.0)), 1) << output();
  EXPECT_NE(output().find("rmat"), std::string::npos) << output();
}

TEST_F(GuardrailLeaderboardTest, AdwiseImbalanceFails) {
  if (!python3_available()) GTEST_SKIP() << "python3 not available";
  // Quality fine, but ADWISE load balance 1.4 > the 1.1 pin.
  EXPECT_EQ(run_guardrail(crafted_leaderboard(1.5, 1.4)), 1) << output();
  EXPECT_NE(output().find("load"), std::string::npos) << output();
}

TEST_F(GuardrailLeaderboardTest, CoverageFloorFails) {
  if (!python3_available()) GTEST_SKIP() << "python3 not available";
  // Only 5 algorithms < the 8-algorithm coverage floor.
  EXPECT_EQ(run_guardrail(crafted_leaderboard(1.5, 1.0, 5)), 1) << output();
}

#endif  // ADWISE_BENCH_LEADERBOARD_BIN && ADWISE_GUARDRAIL_SCRIPT

}  // namespace
}  // namespace adwise
