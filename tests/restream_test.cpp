// Tests for multi-pass (restreaming) partitioning.
#include <gtest/gtest.h>

#include "src/core/adwise_partitioner.h"
#include "src/graph/edge_stream.h"
#include "src/graph/generators.h"
#include "src/partition/registry.h"
#include "src/partition/restream.h"

namespace adwise {
namespace {

RestreamFactory hdrf_factory() {
  return [] { return make_baseline_partitioner("hdrf", 8); };
}

TEST(RestreamTest, SinglePassMatchesDirectRun) {
  const Graph g = make_community_graph({.num_communities = 40, .seed = 7});
  const auto edges = ordered_edges(g, StreamOrder::kShuffled, 3);
  const auto result =
      restream_partition(edges, g.num_vertices(), 8, hdrf_factory(), 1);

  auto direct = make_baseline_partitioner("hdrf", 8);
  PartitionState st(8, g.num_vertices());
  VectorEdgeStream stream(edges);
  direct->partition(stream, st);

  EXPECT_DOUBLE_EQ(result.final_state.replication_degree(),
                   st.replication_degree());
  EXPECT_EQ(result.assignments.size(), g.num_edges());
}

TEST(RestreamTest, EveryPassAssignsAllEdges) {
  const Graph g = make_erdos_renyi(300, 2000, 9);
  const auto result = restream_partition(g.edges(), g.num_vertices(), 8,
                                         hdrf_factory(), 3);
  EXPECT_EQ(result.assignments.size(), g.num_edges());
  EXPECT_EQ(result.final_state.assigned_edges(), g.num_edges());
  EXPECT_EQ(result.pass_replication.size(), 3u);
}

TEST(RestreamTest, QualityDoesNotDegradeAcrossPasses) {
  // On a shuffled clustered stream the second pass knows every vertex's
  // whereabouts: replication must improve (or at worst stay put).
  const Graph g = make_community_graph({.num_communities = 80, .seed = 11});
  const auto edges = ordered_edges(g, StreamOrder::kShuffled, 5);
  const auto result =
      restream_partition(edges, g.num_vertices(), 8, hdrf_factory(), 3);
  EXPECT_LE(result.pass_replication[1], result.pass_replication[0]);
  EXPECT_LE(result.pass_replication[2], result.pass_replication[0]);
}

TEST(RestreamTest, FinalStateMatchesLastPassMetric) {
  const Graph g = make_community_graph({.num_communities = 30, .seed = 2});
  const auto result = restream_partition(g.edges(), g.num_vertices(), 4,
                                         hdrf_factory(), 2);
  EXPECT_DOUBLE_EQ(result.final_state.replication_degree(),
                   result.pass_replication.back());
}

TEST(RestreamTest, WorksWithAdwise) {
  const Graph g = make_community_graph({.num_communities = 40, .seed = 13});
  const auto edges = ordered_edges(g, StreamOrder::kShuffled, 7);
  const auto result = restream_partition(
      edges, g.num_vertices(), 8,
      [] {
        AdwiseOptions opts;
        opts.adaptive_window = false;
        opts.initial_window = 32;
        return std::make_unique<AdwisePartitioner>(opts);
      },
      2);
  EXPECT_EQ(result.assignments.size(), g.num_edges());
  EXPECT_LE(result.pass_replication[1], result.pass_replication[0] * 1.02);
}

}  // namespace
}  // namespace adwise
