// Tests for multi-pass (restreaming) partitioning, including the
// out-of-core paths: restreaming from a text file or a binary .adw file
// must be bit-identical to the in-memory edge-span path.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/core/adwise_partitioner.h"
#include "src/graph/edge_stream.h"
#include "src/graph/file_stream.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/io/adw_format.h"
#include "src/io/binary_stream.h"
#include "src/partition/registry.h"
#include "src/partition/restream.h"

namespace adwise {
namespace {

RestreamFactory hdrf_factory() {
  return [] { return make_baseline_partitioner("hdrf", 8); };
}

TEST(RestreamTest, SinglePassMatchesDirectRun) {
  const Graph g = make_community_graph({.num_communities = 40, .seed = 7});
  const auto edges = ordered_edges(g, StreamOrder::kShuffled, 3);
  const auto result =
      restream_partition(edges, g.num_vertices(), 8, hdrf_factory(), 1);

  auto direct = make_baseline_partitioner("hdrf", 8);
  PartitionState st(8, g.num_vertices());
  VectorEdgeStream stream(edges);
  direct->partition(stream, st);

  EXPECT_DOUBLE_EQ(result.final_state.replication_degree(),
                   st.replication_degree());
  EXPECT_EQ(result.assignments.size(), g.num_edges());
}

TEST(RestreamTest, EveryPassAssignsAllEdges) {
  const Graph g = make_erdos_renyi(300, 2000, 9);
  const auto result = restream_partition(g.edges(), g.num_vertices(), 8,
                                         hdrf_factory(), 3);
  EXPECT_EQ(result.assignments.size(), g.num_edges());
  EXPECT_EQ(result.final_state.assigned_edges(), g.num_edges());
  EXPECT_EQ(result.pass_replication.size(), 3u);
}

TEST(RestreamTest, QualityDoesNotDegradeAcrossPasses) {
  // On a shuffled clustered stream the second pass knows every vertex's
  // whereabouts: replication must improve (or at worst stay put).
  const Graph g = make_community_graph({.num_communities = 80, .seed = 11});
  const auto edges = ordered_edges(g, StreamOrder::kShuffled, 5);
  const auto result =
      restream_partition(edges, g.num_vertices(), 8, hdrf_factory(), 3);
  EXPECT_LE(result.pass_replication[1], result.pass_replication[0]);
  EXPECT_LE(result.pass_replication[2], result.pass_replication[0]);
}

TEST(RestreamTest, FinalStateMatchesLastPassMetric) {
  const Graph g = make_community_graph({.num_communities = 30, .seed = 2});
  const auto result = restream_partition(g.edges(), g.num_vertices(), 4,
                                         hdrf_factory(), 2);
  EXPECT_DOUBLE_EQ(result.final_state.replication_degree(),
                   result.pass_replication.back());
}

TEST(RestreamTest, WorksWithAdwise) {
  const Graph g = make_community_graph({.num_communities = 40, .seed = 13});
  const auto edges = ordered_edges(g, StreamOrder::kShuffled, 7);
  const auto result = restream_partition(
      edges, g.num_vertices(), 8,
      [] {
        AdwiseOptions opts;
        opts.adaptive_window = false;
        opts.initial_window = 32;
        return std::make_unique<AdwisePartitioner>(opts);
      },
      2);
  EXPECT_EQ(result.assignments.size(), g.num_edges());
  EXPECT_LE(result.pass_replication[1], result.pass_replication[0] * 1.02);
}

// --- Disk-backed restreaming ------------------------------------------------

class OutOfCoreRestreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "restream_ooc_" +
            std::to_string(static_cast<long>(::getpid())) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
    text_path_ = base_ + ".txt";
    adw_path_ = base_ + ".adw";
  }

  void TearDown() override {
    std::remove(text_path_.c_str());
    std::remove(adw_path_.c_str());
  }

  std::string base_, text_path_, adw_path_;
};

// Pass metrics and final assignments must be bit-identical between the
// in-memory span path and the rewindable file/binary streams, for both a
// single-edge partitioner (HDRF) and the windowed ADWISE.
TEST_F(OutOfCoreRestreamTest, FileAndBinaryMatchInMemory) {
  const Graph g = make_community_graph({.num_communities = 30, .seed = 21});
  const auto edges = ordered_edges(g, StreamOrder::kShuffled, 9);
  {
    std::ofstream out(text_path_);
    for (const Edge& e : edges) out << e.u << ' ' << e.v << '\n';
  }
  write_adw_file(adw_path_, edges);

  struct Algo {
    const char* label;
    RestreamFactory factory;
  };
  const Algo algos[] = {
      {"hdrf", hdrf_factory()},
      {"adwise",
       [] {
         AdwiseOptions opts;
         opts.adaptive_window = false;
         opts.initial_window = 32;
         return std::make_unique<AdwisePartitioner>(opts);
       }},
  };

  for (const Algo& algo : algos) {
    const auto in_memory =
        restream_partition(edges, g.num_vertices(), 8, algo.factory, 3);

    FileEdgeStream text_stream(text_path_, edges.size());
    const auto from_text = restream_partition(text_stream, g.num_vertices(),
                                              8, algo.factory, 3);

    // Tiny chunks force many refills + prefetch handoffs per pass; peak
    // resident edge data in the stream is 2 * 64 records regardless of |E|.
    BinaryEdgeStream binary_stream(adw_path_, {.chunk_edges = 64});
    const auto from_binary = restream_partition(
        binary_stream, g.num_vertices(), 8, algo.factory, 3);

    for (const auto* other : {&from_text, &from_binary}) {
      SCOPED_TRACE(algo.label);
      EXPECT_EQ(other->pass_replication, in_memory.pass_replication);
      ASSERT_EQ(other->assignments.size(), in_memory.assignments.size());
      EXPECT_EQ(other->assignments, in_memory.assignments);
      EXPECT_DOUBLE_EQ(other->final_state.replication_degree(),
                       in_memory.final_state.replication_degree());
    }
  }
}

// With a final sink nothing |E|-sized is retained in the result: the sink
// observes exactly the assignments the collecting mode would have stored.
TEST_F(OutOfCoreRestreamTest, FinalSinkSuppressesMaterialization) {
  const Graph g = make_erdos_renyi(200, 1500, 17);
  write_adw_file(adw_path_, g.edges());

  const auto collected =
      restream_partition(g.edges(), g.num_vertices(), 8, hdrf_factory(), 2);

  BinaryEdgeStream stream(adw_path_, {.chunk_edges = 128});
  std::vector<Assignment> sunk;
  const auto result = restream_partition(
      stream, g.num_vertices(), 8, hdrf_factory(), 2,
      [&](const Edge& e, PartitionId p) { sunk.push_back({e, p}); });

  EXPECT_TRUE(result.assignments.empty());
  EXPECT_EQ(sunk, collected.assignments);
  EXPECT_EQ(result.pass_replication, collected.pass_replication);
  EXPECT_DOUBLE_EQ(result.final_state.replication_degree(),
                   collected.final_state.replication_degree());
}

// The rewound stream must report the full |E'| again: the adaptive
// controller's condition C2 consumes size_hint() every pass.
TEST_F(OutOfCoreRestreamTest, SizeHintExactAcrossPasses) {
  const Graph g = make_erdos_renyi(100, 800, 3);
  write_adw_file(adw_path_, g.edges());
  BinaryEdgeStream stream(adw_path_, {.chunk_edges = 32});
  for (int pass = 0; pass < 3; ++pass) {
    if (pass > 0) stream.rewind();
    EXPECT_EQ(stream.size_hint(), g.num_edges());
    Edge e;
    std::size_t seen = 0;
    while (stream.next(e)) ++seen;
    EXPECT_EQ(seen, g.num_edges());
    EXPECT_EQ(stream.size_hint(), 0u);
  }
}

}  // namespace
}  // namespace adwise
