// Cross-module integration: the full paper pipeline — generate graph,
// stream-partition (baselines, ADWISE, spotlight), run workloads on the
// engine — and the qualitative relationships the paper's evaluation rests on.
#include <gtest/gtest.h>

#include "src/apps/pagerank.h"
#include "src/core/adwise_partitioner.h"
#include "src/graph/generators.h"
#include "src/graph/metrics.h"
#include "src/partition/registry.h"
#include "src/partition/spotlight.h"

namespace adwise {
namespace {

struct PipelineOutput {
  PartitionState state;
  std::vector<Assignment> assignments;
};

PipelineOutput partition_with(EdgePartitioner& partitioner, const Graph& g,
                              std::uint32_t k,
                              StreamOrder order = StreamOrder::kShuffled) {
  PipelineOutput out{PartitionState(k, g.num_vertices()), {}};
  const auto edges = ordered_edges(g, order, 23);
  VectorEdgeStream stream(edges);
  partitioner.partition(stream, out.state, [&](const Edge& e, PartitionId p) {
    out.assignments.push_back({e, p});
  });
  return out;
}

AdwiseOptions adwise_fixed(std::uint64_t w) {
  AdwiseOptions opts;
  opts.adaptive_window = false;
  opts.initial_window = w;
  return opts;
}

TEST(IntegrationTest, StandInsReproduceTableTwoClusteringOrdering) {
  const auto orkut = make_orkut_like(0.05);
  const auto brain = make_brain_like(0.05);
  const auto web = make_web_like(0.05);
  const double cc_orkut = clustering_coefficient(Csr(orkut.graph));
  const double cc_brain = clustering_coefficient(Csr(brain.graph));
  const double cc_web = clustering_coefficient(Csr(web.graph));
  EXPECT_LT(cc_orkut, cc_brain);
  EXPECT_LT(cc_brain, cc_web);
}

TEST(IntegrationTest, QualityOrderingOnClusteredGraph) {
  // The Fig. 7g-i relationship: ADWISE (windowed) <= HDRF < Hash, with DBH
  // between HDRF and Hash.
  const Graph g = make_brain_like(0.05).graph;
  const std::uint32_t k = 16;

  auto hash = make_baseline_partitioner("hash", k);
  auto dbh = make_baseline_partitioner("dbh", k);
  auto hdrf = make_baseline_partitioner("hdrf", k);
  AdwisePartitioner adw(adwise_fixed(128));

  const double rep_hash = partition_with(*hash, g, k).state.replication_degree();
  const double rep_dbh = partition_with(*dbh, g, k).state.replication_degree();
  const double rep_hdrf = partition_with(*hdrf, g, k).state.replication_degree();
  const double rep_adw = partition_with(adw, g, k).state.replication_degree();

  EXPECT_LT(rep_dbh, rep_hash);
  EXPECT_LT(rep_hdrf, rep_hash);
  EXPECT_LT(rep_adw, rep_hdrf);
}

TEST(IntegrationTest, BetterPartitioningMeansFasterProcessing) {
  // The central coupling of the paper: lower replication degree => less
  // replica synchronization => lower simulated processing latency.
  const Graph g = make_brain_like(0.04).graph;
  const std::uint32_t k = 32;

  auto hash = make_baseline_partitioner("hash", k);
  AdwisePartitioner adw(adwise_fixed(128));
  const auto out_hash = partition_with(*hash, g, k);
  const auto out_adw = partition_with(adw, g, k);
  ASSERT_LT(out_adw.state.replication_degree(),
            out_hash.state.replication_degree());

  const auto lat_hash =
      run_pagerank_blocks(g, out_hash.assignments, ClusterModel{}, 1, 20);
  const auto lat_adw =
      run_pagerank_blocks(g, out_adw.assignments, ClusterModel{}, 1, 20);
  EXPECT_LT(lat_adw.total.seconds, lat_hash.total.seconds);
  EXPECT_LT(lat_adw.total.network_bytes, lat_hash.total.network_bytes);
}

TEST(IntegrationTest, SpotlightWithAdwiseInstances) {
  const Graph g = make_brain_like(0.03).graph;
  SpotlightOptions opts{.k = 16, .num_partitioners = 4, .spread = 4};
  const auto result = run_spotlight(
      g.edges(), g.num_vertices(),
      [](std::uint32_t, std::uint32_t local_k) {
        AdwiseOptions o;
        o.adaptive_window = false;
        o.initial_window = 32;
        (void)local_k;
        return std::make_unique<AdwisePartitioner>(o);
      },
      opts);
  EXPECT_EQ(result.merged.assigned_edges(), g.num_edges());
  EXPECT_GE(result.merged.replication_degree(), 1.0);

  // The merged assignment must drive the engine without issues.
  const auto lat =
      run_pagerank_blocks(g, result.assignments, ClusterModel{}, 1, 5);
  EXPECT_GT(lat.total.seconds, 0.0);
}

TEST(IntegrationTest, SpotlightReducesReplicationForAdwiseToo) {
  const Graph g = make_brain_like(0.03).graph;
  auto factory = [](std::uint32_t, std::uint32_t) {
    AdwiseOptions o;
    o.adaptive_window = false;
    o.initial_window = 16;
    return std::make_unique<AdwisePartitioner>(o);
  };
  SpotlightOptions wide{.k = 16, .num_partitioners = 4, .spread = 16};
  SpotlightOptions narrow{.k = 16, .num_partitioners = 4, .spread = 4};
  const double rep_wide =
      run_spotlight(g.edges(), g.num_vertices(), factory, wide)
          .merged.replication_degree();
  const double rep_narrow =
      run_spotlight(g.edges(), g.num_vertices(), factory, narrow)
          .merged.replication_degree();
  EXPECT_LT(rep_narrow, rep_wide);
}

TEST(IntegrationTest, LatencyPreferenceControlsWindowGrowth) {
  const Graph g = make_brain_like(0.02).graph;
  AdwiseOptions tight;
  tight.latency_preference_ms = 0;
  AdwiseOptions loose;
  loose.latency_preference_ms = -1;
  loose.max_window = 512;

  AdwisePartitioner p_tight(tight);
  AdwisePartitioner p_loose(loose);
  partition_with(p_tight, g, 8);
  partition_with(p_loose, g, 8);
  EXPECT_EQ(p_tight.last_report().max_window, 1u);
  EXPECT_GT(p_loose.last_report().max_window, 8u);
}

TEST(IntegrationTest, LargerWindowsImproveQualityMonotonically) {
  // The window-size → quality relation that motivates the whole paper.
  // Monotonicity can wobble on tiny graphs, so compare the endpoints.
  const Graph g = make_web_like(0.03).graph;
  const double rep_small =
      [&] {
        AdwisePartitioner p(adwise_fixed(1));
        return partition_with(p, g, 16).state.replication_degree();
      }();
  const double rep_large =
      [&] {
        AdwisePartitioner p(adwise_fixed(256));
        return partition_with(p, g, 16).state.replication_degree();
      }();
  EXPECT_LT(rep_large, rep_small * 0.95);
}

}  // namespace
}  // namespace adwise
