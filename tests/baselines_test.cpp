// Tests for the single-edge baselines (hash, grid, dbh, greedy, hdrf), the
// NE all-edge baseline, and the shared partitioner-invariant property suite.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/graph/edge_stream.h"
#include "src/graph/generators.h"
#include "src/partition/dbh_partitioner.h"
#include "src/partition/greedy_partitioner.h"
#include "src/partition/grid_partitioner.h"
#include "src/partition/hash_partitioner.h"
#include "src/partition/hdrf_partitioner.h"
#include "src/partition/ne_partitioner.h"
#include "src/partition/registry.h"

namespace adwise {
namespace {

struct RunOutput {
  PartitionState state;
  std::vector<Assignment> assignments;
};

RunOutput run(EdgePartitioner& partitioner, const Graph& graph,
              std::uint32_t k, StreamOrder order = StreamOrder::kNatural) {
  RunOutput out{PartitionState(k, graph.num_vertices()), {}};
  const auto edges = ordered_edges(graph, order, 7);
  VectorEdgeStream stream(edges);
  partitioner.partition(stream, out.state, [&](const Edge& e, PartitionId p) {
    out.assignments.push_back({e, p});
  });
  return out;
}

// --- Shared invariants, parameterized over (algorithm, graph, k) -------------

struct PropertyCase {
  std::string algorithm;
  std::string graph_name;
  std::uint32_t k;
};

class PartitionerPropertyTest
    : public ::testing::TestWithParam<PropertyCase> {
 protected:
  static Graph graph_for(const std::string& name) {
    if (name == "er") return make_erdos_renyi(600, 3000, 11);
    if (name == "community") {
      return make_community_graph({.num_communities = 60, .seed = 3});
    }
    if (name == "rmat") {
      return make_rmat({.scale = 10, .num_edges = 4000, .seed = 5});
    }
    if (name == "grid") return make_grid(20, 30);
    return make_path(100);
  }
};

TEST_P(PartitionerPropertyTest, Invariants) {
  const auto& param = GetParam();
  const Graph graph = graph_for(param.graph_name);
  auto partitioner =
      make_baseline_partitioner(param.algorithm, param.k, /*seed=*/1);
  ASSERT_NE(partitioner, nullptr);

  const RunOutput out = run(*partitioner, graph, param.k);

  // Every edge assigned exactly once.
  EXPECT_EQ(out.assignments.size(), graph.num_edges());
  EXPECT_EQ(out.state.assigned_edges(), graph.num_edges());

  // Partition ids in range; per-partition counts match the sink.
  std::vector<std::uint64_t> counts(param.k, 0);
  for (const Assignment& a : out.assignments) {
    ASSERT_LT(a.partition, param.k);
    ++counts[a.partition];
    // Replica-set consistency: both endpoints replicated where assigned.
    EXPECT_TRUE(out.state.replicas(a.edge.u).contains(a.partition));
    EXPECT_TRUE(out.state.replicas(a.edge.v).contains(a.partition));
  }
  for (PartitionId p = 0; p < param.k; ++p) {
    EXPECT_EQ(counts[p], out.state.edges_on(p));
  }

  // Replication degree is at least 1 and at most k.
  const double rep = out.state.replication_degree();
  EXPECT_GE(rep, 1.0);
  EXPECT_LE(rep, static_cast<double>(param.k));
}

std::vector<PropertyCase> property_cases() {
  std::vector<PropertyCase> cases;
  for (const char* algo : {"hash", "1d", "grid", "dbh", "greedy", "hdrf",
                           "ne", "ebv", "fennel", "ldg", "2ps"}) {
    for (const char* graph : {"er", "community", "rmat", "grid", "path"}) {
      for (const std::uint32_t k : {2u, 4u, 8u, 32u}) {
        cases.push_back({algo, graph, k});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, PartitionerPropertyTest,
    ::testing::ValuesIn(property_cases()),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      // Test names must be identifiers: "2ps" cannot lead with a digit.
      const std::string algo =
          info.param.algorithm == "2ps" ? "twops" : info.param.algorithm;
      return algo + "_" + info.param.graph_name + "_k" +
             std::to_string(info.param.k);
    });

// --- Hash -----------------------------------------------------------------------

TEST(HashPartitionerTest, DeterministicPerEdge) {
  HashPartitioner a(3);
  HashPartitioner b(3);
  PartitionState st(8, 100);
  for (VertexId u = 0; u < 20; ++u) {
    EXPECT_EQ(a.place({u, u + 1}, st), b.place({u, u + 1}, st));
  }
}

TEST(HashPartitionerTest, OrientationIndependent) {
  HashPartitioner h;
  PartitionState st(8, 100);
  EXPECT_EQ(h.place({3, 9}, st), h.place({9, 3}, st));
}

TEST(HashPartitionerTest, RoughlyBalancedOnRandomGraph) {
  const Graph g = make_erdos_renyi(2000, 20000, 1);
  HashPartitioner h;
  const RunOutput out = run(h, g, 8);
  EXPECT_LT(out.state.imbalance(), 0.2);
}

// --- Grid -----------------------------------------------------------------------

TEST(GridPartitionerTest, FactorizesMostSquare) {
  EXPECT_EQ(GridPartitioner(16).rows(), 4u);
  EXPECT_EQ(GridPartitioner(16).cols(), 4u);
  EXPECT_EQ(GridPartitioner(32).rows(), 4u);
  EXPECT_EQ(GridPartitioner(32).cols(), 8u);
  EXPECT_EQ(GridPartitioner(7).rows(), 1u);  // prime: degenerate row
}

TEST(GridPartitionerTest, ReplicasBoundedByConstraintSet) {
  const Graph g = make_erdos_renyi(500, 8000, 2);
  GridPartitioner grid(16, 1);
  const RunOutput out = run(grid, g, 16);
  // Constraint set has rows + cols - 1 = 7 cells for k=16.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(out.state.replicas(v).size(), 7u);
  }
}

// --- DBH ------------------------------------------------------------------------

TEST(DbhPartitionerTest, SpokesOfStarStayUnreplicated) {
  // Stream the star twice so the hub's high degree is already observed the
  // second time: every spoke has degree 1 < hub degree, so DBH hashes the
  // spoke and each spoke keeps exactly one replica.
  const Graph g = make_star(200);
  DbhPartitioner dbh;
  PartitionState st(8, g.num_vertices());
  VectorEdgeStream warmup(g.edges());
  dbh.partition(warmup, st);
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    EXPECT_EQ(st.replicas(v).size(), 1u);
  }
  // The hub collects replicas on many partitions instead.
  EXPECT_GT(st.replicas(0).size(), 4u);
}

TEST(DbhPartitionerTest, BetterThanHashOnSkewedGraph) {
  const Graph g = make_rmat({.scale = 11, .num_edges = 20000, .seed = 4});
  HashPartitioner hash;
  DbhPartitioner dbh;
  const double rep_hash = run(hash, g, 16).state.replication_degree();
  const double rep_dbh = run(dbh, g, 16).state.replication_degree();
  EXPECT_LT(rep_dbh, rep_hash);
}

// --- Greedy ----------------------------------------------------------------------

TEST(GreedyPartitionerTest, PathCollapsesToOnePartition) {
  // With case-3 chaining, a path streamed in order never leaves the first
  // partition: replication degree is exactly 1.
  const Graph g = make_path(500);
  GreedyPartitioner greedy;
  const RunOutput out = run(greedy, g, 8);
  EXPECT_DOUBLE_EQ(out.state.replication_degree(), 1.0);
}

TEST(GreedyPartitionerTest, PrefersSharedPartition) {
  GreedyPartitioner greedy;
  PartitionState st(4, 10);
  st.assign({0, 1}, 2);
  st.assign({1, 2}, 2);
  // Both endpoints of (0,2) are replicated on partition 2.
  EXPECT_EQ(greedy.place({0, 2}, st), 2u);
}

TEST(GreedyPartitionerTest, FreshEdgeGoesToLeastLoaded) {
  GreedyPartitioner greedy;
  PartitionState st(3, 10);
  st.assign({0, 1}, 0);
  st.assign({1, 2}, 0);
  EXPECT_EQ(greedy.place({5, 6}, st), 1u);  // least loaded, smallest id
}

// --- HDRF ------------------------------------------------------------------------

TEST(HdrfPartitionerTest, PrefersPartitionWithBothReplicas) {
  HdrfPartitioner hdrf;
  PartitionState st(4, 10);
  st.assign({0, 1}, 1);
  st.assign({2, 3}, 2);
  st.assign({9, 8}, 0);
  st.assign({9, 7}, 3);
  // Vertex 0 and 2 meet: partition 1 holds 0, partition 2 holds 2; both are
  // single-replica scores, so balance breaks the tie toward the less loaded
  // of {1, 2}; both hold 1 edge, so either is acceptable — but a partition
  // holding BOTH endpoints must win if it exists.
  st.assign({0, 2}, 1);
  EXPECT_EQ(hdrf.place({0, 2}, st), 1u);
}

TEST(HdrfPartitionerTest, StaysBalancedOnAdversarialOrder) {
  const Graph g = make_community_graph({.num_communities = 50, .seed = 9});
  HdrfPartitioner hdrf;
  const RunOutput out = run(hdrf, g, 8);
  EXPECT_LT(out.state.imbalance(), 0.3);
}

TEST(HdrfPartitionerTest, BeatsHashOnCommunityGraph) {
  const Graph g = make_community_graph({.num_communities = 80, .seed = 12});
  HashPartitioner hash;
  HdrfPartitioner hdrf;
  const double rep_hash = run(hash, g, 16).state.replication_degree();
  const double rep_hdrf = run(hdrf, g, 16).state.replication_degree();
  EXPECT_LT(rep_hdrf, rep_hash);
}

TEST(HdrfPartitionerTest, HighDegreeVerticesReplicatedFirst) {
  // Star + ring: the hub (high degree) should accumulate more replicas than
  // the low-degree ring vertices on average.
  Graph g = make_star(300);
  for (VertexId i = 1; i + 1 < 300; ++i) g.add_edge(i, i + 1);
  HdrfPartitioner hdrf;
  const RunOutput out = run(hdrf, g, 8);
  double spoke_replicas = 0;
  for (VertexId v = 1; v < 300; ++v) {
    spoke_replicas += out.state.replicas(v).size();
  }
  spoke_replicas /= 299.0;
  EXPECT_GT(out.state.replicas(0).size(), spoke_replicas);
}

// --- NE --------------------------------------------------------------------------

TEST(NePartitionerTest, AssignsEverythingWithBalancedTargets) {
  const Graph g = make_community_graph({.num_communities = 40, .seed = 8});
  NePartitioner ne(3);
  const RunOutput out = run(ne, g, 8);
  EXPECT_EQ(out.state.assigned_edges(), g.num_edges());
  // Expansion caps each partition at ceil(m/k); min can lag slightly.
  EXPECT_LE(out.state.max_partition_size(),
            (g.num_edges() + 7) / 8 + 1);
}

TEST(NePartitionerTest, BeatsHashOnCliqueChain) {
  const Graph g = make_clique_chain(40, 8);
  HashPartitioner hash;
  NePartitioner ne(3);
  const double rep_hash = run(hash, g, 8).state.replication_degree();
  const double rep_ne = run(ne, g, 8).state.replication_degree();
  EXPECT_LT(rep_ne, rep_hash * 0.7);
}

// --- Registry ----------------------------------------------------------------------

TEST(RegistryTest, KnowsAllBaselines) {
  for (const auto name : baseline_partitioner_names()) {
    const auto partitioner = make_baseline_partitioner(name, 8);
    ASSERT_NE(partitioner, nullptr) << name;
    EXPECT_EQ(partitioner->name(), name);
  }
}

TEST(RegistryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(make_baseline_partitioner("metis", 8), nullptr);
}

}  // namespace
}  // namespace adwise
