// Tests for src/graph: graph type, CSR, streams, generators, io, metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "src/graph/csr.h"
#include "src/graph/edge_stream.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/graph/io.h"
#include "src/graph/metrics.h"

namespace adwise {
namespace {

// --- Graph -------------------------------------------------------------------

TEST(GraphTest, AddEdgeGrowsVertexRange) {
  Graph g;
  g.add_edge(0, 5);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphTest, DegreesCountBothEndpoints) {
  Graph g = make_path(4);  // 0-1-2-3
  const auto deg = g.degrees();
  EXPECT_EQ(deg[0], 1u);
  EXPECT_EQ(deg[1], 2u);
  EXPECT_EQ(deg[2], 2u);
  EXPECT_EQ(deg[3], 1u);
}

TEST(GraphTest, MakeSimpleRemovesDuplicatesAndLoops) {
  Graph g(4, {{0, 1}, {1, 0}, {2, 2}, {1, 2}, {0, 1}});
  g.make_simple();
  EXPECT_EQ(g.num_edges(), 2u);  // (0,1) and (1,2)
  for (const Edge& e : g.edges()) {
    EXPECT_NE(e.u, e.v);
    EXPECT_LE(e.u, e.v);
  }
}

TEST(GraphTest, CanonicalOrdersEndpoints) {
  EXPECT_EQ(canonical({5, 2}), (Edge{2, 5}));
  EXPECT_EQ(canonical({2, 5}), (Edge{2, 5}));
}

// --- Csr ---------------------------------------------------------------------

TEST(CsrTest, NeighborsOfPath) {
  const Csr csr(make_path(4));
  EXPECT_EQ(csr.degree(0), 1u);
  EXPECT_EQ(csr.degree(1), 2u);
  const auto nbrs = csr.neighbors(1);
  EXPECT_EQ(std::vector<VertexId>(nbrs.begin(), nbrs.end()),
            (std::vector<VertexId>{0, 2}));
}

TEST(CsrTest, HasEdge) {
  const Csr csr(make_cycle(5));
  EXPECT_TRUE(csr.has_edge(0, 1));
  EXPECT_TRUE(csr.has_edge(4, 0));
  EXPECT_FALSE(csr.has_edge(0, 2));
}

TEST(CsrTest, IncidentEdgeIdsMatchGraph) {
  const Graph g = make_star(5);
  const Csr csr(g);
  for (const std::uint32_t id : csr.incident_edges(0)) {
    const Edge& e = g.edge(id);
    EXPECT_TRUE(e.u == 0 || e.v == 0);
  }
  EXPECT_EQ(csr.incident_edges(0).size(), 4u);
}

TEST(CsrTest, TotalAdjacencyIsTwiceEdges) {
  const Graph g = make_grid(4, 5);
  const Csr csr(g);
  std::size_t total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) total += csr.degree(v);
  EXPECT_EQ(total, 2 * g.num_edges());
}

// --- Structured generators ----------------------------------------------------

TEST(GeneratorsTest, PathCycleStarCompleteSizes) {
  EXPECT_EQ(make_path(10).num_edges(), 9u);
  EXPECT_EQ(make_cycle(10).num_edges(), 10u);
  EXPECT_EQ(make_star(10).num_edges(), 9u);
  EXPECT_EQ(make_complete(6).num_edges(), 15u);
}

TEST(GeneratorsTest, GridSize) {
  const Graph g = make_grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  // 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8
  EXPECT_EQ(g.num_edges(), 17u);
}

TEST(GeneratorsTest, CliqueChain) {
  const Graph g = make_clique_chain(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  // 3 cliques of C(4,2)=6 edges plus 2 bridges.
  EXPECT_EQ(g.num_edges(), 3 * 6 + 2u);
}

// --- Random generators ---------------------------------------------------------

TEST(GeneratorsTest, ErdosRenyiIsSimpleAndDeterministic) {
  const Graph a = make_erdos_renyi(1000, 5000, 42);
  const Graph b = make_erdos_renyi(1000, 5000, 42);
  EXPECT_EQ(a.num_edges(), 5000u);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.num_edges(); ++i) {
    EXPECT_EQ(a.edge(i), b.edge(i));
  }
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const Edge& e : a.edges()) {
    EXPECT_NE(e.u, e.v);
    EXPECT_TRUE(seen.insert({e.u, e.v}).second) << "duplicate edge";
  }
}

TEST(GeneratorsTest, RmatHasSkewedDegrees) {
  RmatParams params;
  params.scale = 12;
  params.num_edges = 30000;
  const Graph g = make_rmat(params);
  EXPECT_GT(g.num_edges(), 25000u);
  const DegreeStats stats = degree_stats(g);
  // Power-law-ish: the top 1% of vertices hold a large share of degree.
  EXPECT_GT(stats.top1pct_degree_share, 0.15);
  EXPECT_GT(stats.max, 100u);
}

TEST(GeneratorsTest, WattsStrogatzRingLatticeClustering) {
  // beta = 0: pure ring lattice with k=4 per side; analytic local
  // clustering coefficient is 3(k-1)/(2(2k-1)) = 9/14 ~ 0.643.
  const Graph g = make_watts_strogatz(2000, 4, 0.0, 1);
  const Csr csr(g);
  ClusteringOptions opts;
  opts.vertex_sample = 3000;  // exhaustive
  const double cc = clustering_coefficient(csr, opts);
  EXPECT_NEAR(cc, 9.0 / 14.0, 0.02);
}

TEST(GeneratorsTest, WattsStrogatzRewiringLowersClustering) {
  const Csr lattice(make_watts_strogatz(2000, 4, 0.0, 1));
  const Csr rewired(make_watts_strogatz(2000, 4, 0.8, 1));
  ClusteringOptions opts;
  opts.vertex_sample = 3000;
  EXPECT_LT(clustering_coefficient(rewired, opts),
            clustering_coefficient(lattice, opts) / 2);
}

TEST(GeneratorsTest, BarabasiAlbertDegreeTail) {
  const Graph g = make_barabasi_albert(3000, 4, 11);
  // Simple graph with roughly n*m edges (duplicates removed).
  EXPECT_GT(g.num_edges(), 3000u * 3);
  EXPECT_LE(g.num_edges(), 3000u * 4 + 20);
  const DegreeStats stats = degree_stats(g);
  // Preferential attachment: heavy tail, hubs well above the mean.
  EXPECT_GT(stats.max, 50u);
  EXPECT_GT(stats.top1pct_degree_share, 0.08);
}

TEST(GeneratorsTest, BarabasiAlbertDeterministicAndSimple) {
  const Graph a = make_barabasi_albert(500, 3, 7);
  const Graph b = make_barabasi_albert(500, 3, 7);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  std::set<std::pair<VertexId, VertexId>> seen;
  for (std::size_t i = 0; i < a.num_edges(); ++i) {
    EXPECT_EQ(a.edge(i), b.edge(i));
    EXPECT_NE(a.edge(i).u, a.edge(i).v);
    EXPECT_TRUE(seen.insert({a.edge(i).u, a.edge(i).v}).second);
  }
}

TEST(GeneratorsTest, BarabasiAlbertTinyInputs) {
  EXPECT_EQ(make_barabasi_albert(0, 3, 1).num_edges(), 0u);
  const Graph g = make_barabasi_albert(2, 3, 1);
  EXPECT_EQ(g.num_edges(), 1u);  // just the seed pair
}

TEST(GeneratorsTest, CommunityGraphIsClustered) {
  CommunityParams params;
  params.num_communities = 100;
  params.intra_density = 0.8;
  params.seed = 5;
  const Graph g = make_community_graph(params);
  const Csr csr(g);
  EXPECT_GT(clustering_coefficient(csr), 0.5);
}

// --- Table II stand-ins ---------------------------------------------------------

TEST(GeneratorsTest, OrkutLikeHasLowClustering) {
  // "Low" relative to the other stand-ins (the ordering across all three is
  // asserted in integration_test); small scales read a little higher than
  // the full-size preset.
  const NamedGraph named = make_orkut_like(0.05);
  const Csr csr(named.graph);
  ClusteringOptions opts;
  opts.vertex_sample = 4000;
  EXPECT_LT(clustering_coefficient(csr, opts), 0.25);
  EXPECT_EQ(named.kind, "Social");
}

TEST(GeneratorsTest, BrainLikeHasModerateClustering) {
  const NamedGraph named = make_brain_like(0.05);
  const Csr csr(named.graph);
  const double cc = clustering_coefficient(csr);
  EXPECT_GT(cc, 0.25);
  EXPECT_LT(cc, 0.7);
}

TEST(GeneratorsTest, WebLikeHasHighClustering) {
  const NamedGraph named = make_web_like(0.05);
  const Csr csr(named.graph);
  EXPECT_GT(clustering_coefficient(csr), 0.6);
}

TEST(GeneratorsTest, StandInsScaleWithParameter) {
  const auto small = make_brain_like(0.02);
  const auto large = make_brain_like(0.08);
  EXPECT_GT(large.graph.num_edges(), 2 * small.graph.num_edges());
}

// --- Metrics ---------------------------------------------------------------------

TEST(MetricsTest, CompleteGraphClusteringIsOne) {
  const Csr csr(make_complete(12));
  EXPECT_DOUBLE_EQ(clustering_coefficient(csr), 1.0);
}

TEST(MetricsTest, StarClusteringIsZero) {
  const Csr csr(make_star(20));
  EXPECT_DOUBLE_EQ(clustering_coefficient(csr), 0.0);
}

TEST(MetricsTest, TriangleClusteringIsOne) {
  const Csr csr(make_cycle(3));
  EXPECT_DOUBLE_EQ(clustering_coefficient(csr), 1.0);
}

TEST(MetricsTest, DegreeStatsOnStar) {
  const DegreeStats stats = degree_stats(make_star(101));
  EXPECT_EQ(stats.max, 100u);
  EXPECT_NEAR(stats.mean, 200.0 / 101.0, 1e-9);
  // Vertex 0 is the single top-1% vertex and holds half the degree mass.
  EXPECT_NEAR(stats.top1pct_degree_share, 0.5, 0.01);
}

// --- Edge streams -----------------------------------------------------------------

TEST(EdgeStreamTest, VectorStreamDrains) {
  const Graph g = make_path(5);
  VectorEdgeStream stream(g.edges());
  EXPECT_EQ(stream.size_hint(), 4u);
  Edge e;
  std::size_t count = 0;
  while (stream.next(e)) ++count;
  EXPECT_EQ(count, 4u);
  EXPECT_TRUE(stream.exhausted());
  stream.reset();
  EXPECT_EQ(stream.size_hint(), 4u);
}

TEST(EdgeStreamTest, ShuffledIsPermutation) {
  const Graph g = make_grid(10, 10);
  auto natural = ordered_edges(g, StreamOrder::kNatural);
  auto shuffled = ordered_edges(g, StreamOrder::kShuffled, 3);
  ASSERT_EQ(natural.size(), shuffled.size());
  auto key = [](const Edge& e) { return std::pair(e.u, e.v); };
  std::multiset<std::pair<VertexId, VertexId>> a, b;
  for (const Edge& e : natural) a.insert(key(e));
  for (const Edge& e : shuffled) b.insert(key(e));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(std::equal(natural.begin(), natural.end(), shuffled.begin(),
                          [](const Edge& x, const Edge& y) {
                            return x.u == y.u && x.v == y.v;
                          }));
}

TEST(EdgeStreamTest, ShuffleDeterministicPerSeed) {
  const Graph g = make_grid(8, 8);
  const auto a = ordered_edges(g, StreamOrder::kShuffled, 9);
  const auto b = ordered_edges(g, StreamOrder::kShuffled, 9);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(),
                         [](const Edge& x, const Edge& y) {
                           return x.u == y.u && x.v == y.v;
                         }));
}

TEST(EdgeStreamTest, BfsCoversAllEdgesOnce) {
  const Graph g = make_community_graph({.num_communities = 20, .seed = 2});
  const auto bfs = ordered_edges(g, StreamOrder::kBfs, 1);
  EXPECT_EQ(bfs.size(), g.num_edges());
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const Edge& e : bfs) {
    const Edge c = canonical(e);
    EXPECT_TRUE(seen.insert({c.u, c.v}).second);
  }
}

TEST(EdgeStreamTest, BfsCoversDisconnectedComponents) {
  Graph g(6, {{0, 1}, {2, 3}, {4, 5}});
  const auto bfs = ordered_edges(g, StreamOrder::kBfs, 7);
  EXPECT_EQ(bfs.size(), 3u);
}

TEST(EdgeStreamTest, ChunksPartitionTheStream) {
  const Graph g = make_path(101);  // 100 edges
  const auto chunks = chunk_edges(g.edges(), 8);
  ASSERT_EQ(chunks.size(), 8u);
  std::size_t total = 0;
  for (const auto& chunk : chunks) {
    EXPECT_GE(chunk.size(), 12u);
    EXPECT_LE(chunk.size(), 13u);
    total += chunk.size();
  }
  EXPECT_EQ(total, 100u);
}

TEST(EdgeStreamTest, ChunkCountLargerThanEdges) {
  const Graph g = make_path(3);  // 2 edges
  const auto chunks = chunk_edges(g.edges(), 5);
  ASSERT_EQ(chunks.size(), 5u);
  std::size_t total = 0;
  for (const auto& chunk : chunks) total += chunk.size();
  EXPECT_EQ(total, 2u);
}

// --- IO ------------------------------------------------------------------------

TEST(IoTest, RoundTrip) {
  const Graph g = make_grid(5, 5);
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const LoadResult loaded = read_edge_list(buffer);
  EXPECT_EQ(loaded.graph.num_edges(), g.num_edges());
  EXPECT_EQ(loaded.graph.num_vertices(), g.num_vertices());
}

TEST(IoTest, SkipsCommentsAndBlankLines) {
  std::stringstream in("# comment\n\n% other comment\n1 2\n3 4\n");
  const LoadResult loaded = read_edge_list(in);
  EXPECT_EQ(loaded.graph.num_edges(), 2u);
}

TEST(IoTest, DensifiesSparseIds) {
  std::stringstream in("1000000 2000000\n2000000 3000000\n");
  const LoadResult loaded = read_edge_list(in);
  EXPECT_EQ(loaded.graph.num_vertices(), 3u);
  EXPECT_EQ(loaded.original_id.size(), 3u);
  EXPECT_EQ(loaded.original_id[0], 1000000u);
}

TEST(IoTest, DropsSelfLoops) {
  std::stringstream in("1 1\n1 2\n");
  const LoadResult loaded = read_edge_list(in);
  EXPECT_EQ(loaded.graph.num_edges(), 1u);
}

TEST(IoTest, ThrowsOnMalformedLine) {
  std::stringstream in("1 2\nnot an edge\n");
  EXPECT_THROW(read_edge_list(in), std::runtime_error);
}

TEST(IoTest, ThrowsOnMissingFile) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/path/graph.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace adwise
