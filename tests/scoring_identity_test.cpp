// Dense-rows / SoA / SIMD scoring identity matrix.
//
// The cache-compact scoring core (DenseReplicaRows mirror, the
// structure-of-arrays PartitionSnapshot and the AVX2/NEON kernels in
// src/common/simd.h) is a pure representation/arithmetic change: every
// placement and every counter must be bit-identical to the sparse-layout
// scalar reference. This matrix pins that across rmat/ba graphs,
// lazy/eager traversal, k in {4, 32, 100, 256} (below the inline
// ReplicaSet range, mid, non-multiple-of-4 with spill, and the dense-row
// maximum) and 1/2/8 scoring threads — so the suite also runs under TSan
// in CI, where the threaded runs exercise the shared snapshot rows.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/adwise_partitioner.h"
#include "src/graph/edge_stream.h"
#include "src/graph/generators.h"
#include "src/partition/partition_state.h"

namespace adwise {
namespace {

struct IdentityCase {
  std::string graph;  // "rmat" (skewed) or "ba" (power-law tail)
  bool lazy = true;
  std::uint32_t k = 32;
  std::uint32_t threads = 1;
};

class ScoringIdentityTest : public ::testing::TestWithParam<IdentityCase> {
 protected:
  static Graph graph_for(const std::string& name) {
    if (name == "rmat") {
      return make_rmat({.scale = 10, .num_edges = 4000, .seed = 21});
    }
    return make_barabasi_albert(900, 4, 23);
  }

  struct Run {
    std::vector<Assignment> assignments;
    double replication = 0.0;
    double imbalance = 0.0;
    AdwisePartitioner::Report report;
  };

  // accelerated == true runs the tentpole configuration (dense-rows mirror
  // plus SIMD kernels); false runs the sparse-layout scalar reference. The
  // scoring_path routing is shared, so the per-call dense/sparse crossover
  // decisions — and with them every counter — must line up exactly.
  static Run run(const Graph& graph, const IdentityCase& c, bool accelerated,
                 ScoringPath path = ScoringPath::kAuto) {
    AdwiseOptions opts;
    opts.adaptive_window = false;
    opts.initial_window = 32;
    opts.lazy_traversal = c.lazy;
    opts.scoring_path = path;
    opts.num_score_threads = c.threads;
    opts.parallel_batch_min = 2;
    opts.replica_layout =
        accelerated ? ReplicaLayout::kAuto : ReplicaLayout::kSparse;
    opts.simd_scoring = accelerated;
    AdwisePartitioner partitioner(opts);
    PartitionState state(c.k, graph.num_vertices());
    const auto edges = ordered_edges(graph, StreamOrder::kShuffled, 13);
    VectorEdgeStream stream(edges);
    Run out;
    partitioner.partition(stream, state, [&](const Edge& e, PartitionId p) {
      out.assignments.push_back({e, p});
    });
    out.replication = state.replication_degree();
    out.imbalance = state.imbalance();
    out.report = partitioner.last_report();
    return out;
  }

  static void expect_identical(const Run& accel, const Run& ref,
                               std::size_t num_edges) {
    ASSERT_EQ(ref.assignments.size(), num_edges);
    ASSERT_EQ(accel.assignments.size(), ref.assignments.size());
    for (std::size_t i = 0; i < ref.assignments.size(); ++i) {
      ASSERT_EQ(accel.assignments[i], ref.assignments[i])
          << "diverged at assignment " << i;
    }
    EXPECT_DOUBLE_EQ(accel.replication, ref.replication);
    EXPECT_DOUBLE_EQ(accel.imbalance, ref.imbalance);
    // Full counter trace: the accelerated core must not only place every
    // edge identically but walk the identical decision path — same score
    // computations, same candidate scans, same dense/sparse crossover
    // split, same heap and controller trajectories.
    EXPECT_EQ(accel.report.score_computations, ref.report.score_computations);
    EXPECT_EQ(accel.report.candidate_partitions,
              ref.report.candidate_partitions);
    EXPECT_EQ(accel.report.dense_placements, ref.report.dense_placements);
    EXPECT_EQ(accel.report.sparse_placements, ref.report.sparse_placements);
    EXPECT_EQ(accel.report.secondary_rescans, ref.report.secondary_rescans);
    EXPECT_EQ(accel.report.forced_secondary, ref.report.forced_secondary);
    EXPECT_EQ(accel.report.event_reassessments,
              ref.report.event_reassessments);
    EXPECT_EQ(accel.report.heap_pops, ref.report.heap_pops);
    EXPECT_EQ(accel.report.demotion_sweeps, ref.report.demotion_sweeps);
    EXPECT_EQ(accel.report.refill_batches, ref.report.refill_batches);
    EXPECT_EQ(accel.report.refill_batch_items, ref.report.refill_batch_items);
    EXPECT_EQ(accel.report.final_drain_budget, ref.report.final_drain_budget);
    EXPECT_EQ(accel.report.final_sweep_interval,
              ref.report.final_sweep_interval);
    EXPECT_DOUBLE_EQ(accel.report.final_lambda, ref.report.final_lambda);
  }
};

TEST_P(ScoringIdentityTest, DenseRowsAndSimdMatchScalarReference) {
  const auto& c = GetParam();
  const Graph graph = graph_for(c.graph);
  const Run ref = run(graph, c, /*accelerated=*/false);
  const Run accel = run(graph, c, /*accelerated=*/true);
  expect_identical(accel, ref, graph.num_edges());
}

TEST_P(ScoringIdentityTest, PinnedDensePathMatchesScalarReference) {
  // The guardrail's >= 2x claim is measured on the pinned dense path, so
  // its identity is pinned separately from the kAuto crossover mix.
  const auto& c = GetParam();
  const Graph graph = graph_for(c.graph);
  const Run ref = run(graph, c, /*accelerated=*/false, ScoringPath::kDense);
  const Run accel = run(graph, c, /*accelerated=*/true, ScoringPath::kDense);
  expect_identical(accel, ref, graph.num_edges());
  EXPECT_EQ(accel.report.sparse_placements, 0u);
}

std::vector<IdentityCase> identity_cases() {
  std::vector<IdentityCase> cases;
  for (const char* graph : {"rmat", "ba"}) {
    for (const bool lazy : {true, false}) {
      for (const std::uint32_t k : {4u, 32u, 100u, 256u}) {
        for (const std::uint32_t threads : {1u, 2u, 8u}) {
          cases.push_back({graph, lazy, k, threads});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ScoringIdentityTest, ::testing::ValuesIn(identity_cases()),
    [](const ::testing::TestParamInfo<IdentityCase>& info) {
      return info.param.graph + (info.param.lazy ? "_lazy" : "_eager") + "_k" +
             std::to_string(info.param.k) + "_t" +
             std::to_string(info.param.threads);
    });

}  // namespace
}  // namespace adwise
