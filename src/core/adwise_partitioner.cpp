#include "src/core/adwise_partitioner.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <deque>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/common/thread_pool.h"
#include "src/obs/metric_names.h"
#include "src/obs/obs_sink.h"

namespace adwise {

namespace {

// Running estimate of the average window-edge score g_avg defining the
// candidate threshold Theta = g_avg + epsilon (§III-B). An EWMA tracks the
// drift of score magnitudes through the stream.
class ThresholdTracker {
 public:
  explicit ThresholdTracker(double epsilon) : epsilon_(epsilon), avg_(0.05) {}

  void observe(double score) { avg_.add(score); }

  // Theta; -inf until the first observation so initial edges all qualify.
  [[nodiscard]] double theta() const {
    if (!avg_.initialized()) return -std::numeric_limits<double>::infinity();
    return avg_.value() + epsilon_;
  }

  void save(ByteWriter& out) const {
    out.f64(avg_.value());
    out.boolean(avg_.initialized());
  }
  void load(ByteReader& in) {
    const double value = in.f64();
    avg_.restore(value, in.boolean());
  }

 private:
  double epsilon_;
  Ewma avg_;
};

// Lazy max-heap over window slots, ordered by (score desc, sequence asc) —
// the same total order the linear scan's FIFO tie-break implements. Entries
// are never erased in place: a slot's latest score_version invalidates all
// earlier entries, and pop_valid() discards stale entries (removed slots,
// slots that switched sets, superseded scores) on the way out. One instance
// tracks the candidate set, a second the secondary set Q (want_candidate
// distinguishes them at validation time).
class LazySlotHeap {
 public:
  struct Entry {
    double score = 0.0;
    std::uint64_t sequence = 0;
    std::uint32_t slot = 0;
    std::uint64_t version = 0;
  };

  // The candidate heap orders by the cached full score g (the paper's
  // argmax); the secondary heap orders by the structural component R + CS,
  // which stays meaningful while partition loads drift between rescores.
  explicit LazySlotHeap(bool want_candidate)
      : want_candidate_(want_candidate) {}

  void push(const EdgeWindow& window, std::uint32_t id) {
    const auto& s = window.slot(id);
    entries_.push_back({want_candidate_ ? s.best_score : s.structural_score,
                        s.sequence, id, s.score_version});
    std::push_heap(entries_.begin(), entries_.end(), less_);
  }

  // Pops until the top entry reflects a live slot's current score (in the
  // tracked set); returns EdgeWindow::npos when the heap runs dry. pops
  // counts every entry discarded or returned (stale-entry overhead metric).
  std::uint32_t pop_valid(const EdgeWindow& window, std::uint64_t& pops) {
    while (!entries_.empty()) {
      const Entry top = entries_.front();
      std::pop_heap(entries_.begin(), entries_.end(), less_);
      entries_.pop_back();
      ++pops;
      const auto& s = window.slot(top.slot);
      if (s.occupied && window.is_candidate(top.slot) == want_candidate_ &&
          s.score_version == top.version) {
        return top.slot;
      }
    }
    return EdgeWindow::npos;
  }

  // Drops every entry and re-seeds from the live slots of the tracked set
  // (used by the demotion sweep / compaction to shed stale entries).
  void rebuild(const EdgeWindow& window) {
    entries_.clear();
    window.for_each_slot([&](std::uint32_t id) {
      if (window.is_candidate(id) != want_candidate_) return;
      const auto& s = window.slot(id);
      entries_.push_back({want_candidate_ ? s.best_score : s.structural_score,
                         s.sequence, id, s.score_version});
    });
    std::make_heap(entries_.begin(), entries_.end(), less_);
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  // Entries are serialized verbatim in array order: the vector already
  // satisfies the heap property, so load() needs no make_heap, and future
  // push/pop sequences replay exactly.
  void save(ByteWriter& out) const {
    out.u64(entries_.size());
    for (const Entry& e : entries_) {
      out.f64(e.score);
      out.u64(e.sequence);
      out.u32(e.slot);
      out.u64(e.version);
    }
  }
  void load(ByteReader& in) {
    entries_.resize(static_cast<std::size_t>(in.u64()));
    for (Entry& e : entries_) {
      e.score = in.f64();
      e.sequence = in.u64();
      e.slot = in.u32();
      e.version = in.u64();
    }
  }

 private:
  static bool less(const Entry& a, const Entry& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.sequence > b.sequence;  // FIFO: earlier insertion wins ties
  }

  static constexpr auto less_ = &LazySlotHeap::less;
  bool want_candidate_;
  std::vector<Entry> entries_;
};

// Layout tag of the opaque ADWISE state blob a CheckpointHook carries.
constexpr std::uint32_t kAdwiseStateVersion = 1;

}  // namespace

bool AdwisePartitioner::enable_checkpoints(CheckpointHook hook) {
  if (opts_.latency_preference_ms >= 0) return false;
  if (opts_.num_score_threads > 1) return false;
  ckpt_ = std::move(hook);
  return true;
}

bool AdwisePartitioner::restore_algorithm_state(
    std::span<const std::byte> state) {
  if (state.size() < 4) return false;  // ADWISE always emits a tagged blob
  // Sniff the layout tag up front so an alien blob is rejected at restore
  // time, not deep inside the next partition() call.
  ByteReader in(state);
  if (in.u32() != kAdwiseStateVersion) return false;
  resume_state_.assign(state.begin(), state.end());
  return true;
}

void AdwisePartitioner::Report::merge_from(const Report& other) {
  assignments += other.assignments;
  score_computations += other.score_computations;
  candidate_partitions += other.candidate_partitions;
  dense_placements += other.dense_placements;
  sparse_placements += other.sparse_placements;
  secondary_rescans += other.secondary_rescans;
  forced_secondary += other.forced_secondary;
  event_reassessments += other.event_reassessments;
  heap_pops += other.heap_pops;
  demotion_sweeps += other.demotion_sweeps;
  max_window = std::max(max_window, other.max_window);
  adaptations += other.adaptations;
  seconds += other.seconds;
  for (std::size_t i = 0; i < kBatchHistBuckets; ++i) {
    batch_size_hist[i] += other.batch_size_hist[i];
  }
  score_batches += other.score_batches;
  batch_items += other.batch_items;
  pool_batches += other.pool_batches;
  pool_batch_items += other.pool_batch_items;
  refill_batches += other.refill_batches;
  refill_batch_items += other.refill_batch_items;
  batch_cutoff_adaptations += other.batch_cutoff_adaptations;
  drain_adaptations += other.drain_adaptations;
}

void AdwisePartitioner::Report::publish(obs::MetricsRegistry& reg) const {
  namespace names = obs::names;
  reg.counter(names::kAdwiseAssignments).add(assignments);
  reg.counter(names::kAdwiseScoreComputations).add(score_computations);
  reg.counter(names::kAdwiseCandidatePartitions).add(candidate_partitions);
  reg.counter(names::kAdwiseDensePlacements).add(dense_placements);
  reg.counter(names::kAdwiseSparsePlacements).add(sparse_placements);
  reg.counter(names::kAdwiseSecondaryRescans).add(secondary_rescans);
  reg.counter(names::kAdwiseForcedSecondary).add(forced_secondary);
  reg.counter(names::kAdwiseEventReassessments).add(event_reassessments);
  reg.counter(names::kAdwiseHeapPops).add(heap_pops);
  reg.counter(names::kAdwiseDemotionSweeps).add(demotion_sweeps);
  reg.counter(names::kAdwiseAdaptations).add(adaptations);
  reg.counter(names::kAdwiseScoreBatches).add(score_batches);
  reg.counter(names::kAdwiseBatchItems).add(batch_items);
  reg.counter(names::kAdwisePoolBatches).add(pool_batches);
  reg.counter(names::kAdwisePoolBatchItems).add(pool_batch_items);
  reg.counter(names::kAdwiseRefillBatches).add(refill_batches);
  reg.counter(names::kAdwiseRefillBatchItems).add(refill_batch_items);
  reg.counter(names::kAdwiseBatchCutoffAdaptations)
      .add(batch_cutoff_adaptations);
  reg.counter(names::kAdwiseDrainAdaptations).add(drain_adaptations);
  reg.gauge(names::kAdwiseMaxWindow).set(static_cast<double>(max_window));
  reg.gauge(names::kAdwiseFinalLambda).set(final_lambda);
  reg.gauge(names::kAdwiseFinalBatchCutoff)
      .set(static_cast<double>(final_batch_cutoff));
  reg.gauge(names::kAdwiseFinalDrainBudget)
      .set(static_cast<double>(final_drain_budget));
  reg.gauge(names::kAdwiseFinalSweepInterval)
      .set(static_cast<double>(final_sweep_interval));
  reg.gauge(names::kAdwiseSeconds).set(seconds);
  obs::Histogram& hist = reg.histogram(names::kAdwiseBatchSizeHist);
  for (std::size_t i = 0; i < kBatchHistBuckets; ++i) {
    if (batch_size_hist[i] != 0) hist.add_bucket(i, batch_size_hist[i]);
  }
}

void AdwisePartitioner::partition(EdgeStream& stream, PartitionState& state,
                                  const AssignmentSink& sink) {
  report_ = Report{};
  const Clock& clock = opts_.clock ? *opts_.clock : SteadyClock::instance();
  const std::size_t total_edges = stream.size_hint();

  // Replica layout: build (or drop) the dense bit-row mirror before any
  // snapshot is taken. enable_dense_rows() refuses k > 256 on its own, so
  // kAuto and kDense can share the call. Decisions are unaffected either
  // way — the mirror holds the same bits the ReplicaSet array does.
  if (opts_.replica_layout == ReplicaLayout::kSparse) {
    state.disable_dense_rows();
  } else {
    state.enable_dense_rows();
  }

  AdwiseScorer scorer(state, opts_, total_edges);
  AdaptiveController controller(opts_, clock, total_edges);
  EdgeWindow window(state.num_vertices());
  ThresholdTracker threshold(opts_.candidate_epsilon);
  Stopwatch watch(clock);

  // Observability is strictly read-only w.r.t. decisions: spans and
  // counters observe the run; nothing below may branch on them.
  obs::ObsSink* const obs_sink = opts_.obs;
  obs::TraceSession* const trace = obs::trace_of(obs_sink);
  if (trace != nullptr) trace->name_current_thread("partition");

  std::uint64_t round = 0;
  std::uint64_t score_version = 0;
  // Scores computed after this version saw the current partition state: a
  // slot with score_version above it is exactly fresh (modulo window-local
  // CS drift, which the linear path tolerates identically).
  std::uint64_t version_at_last_assign = 0;

  // Parallel batch scoring: n - 1 pool workers plus this thread score
  // rescore batches against a frozen PartitionSnapshot; every decision is
  // still applied serially below, so placements are bit-identical to the
  // serial path (snapshot-consistency invariant, scoring.h).
  const std::uint32_t score_threads = std::max<std::uint32_t>(
      opts_.num_score_threads, 1);
  std::unique_ptr<ThreadPool> pool;
  std::vector<ScoreScratch> shard_scratch;
  if (score_threads > 1) {
    pool = std::make_unique<ThreadPool>(score_threads - 1);
    shard_scratch.resize(score_threads);
    for (ScoreScratch& s : shard_scratch) s.reset(state.k());
  }
  std::vector<std::uint32_t> batch_ids;
  std::vector<ScoredPlacement> batch_results;
  // Self-adapting pool cutoff: replaces the fixed parallel_batch_min with a
  // measured break-even batch size. Timing a batch costs two clock reads,
  // only paid when a pool exists and adaptation is on.
  BatchCutoffController cutoff_ctl(opts_,
                                   pool ? pool->num_slots() : score_threads);
  const bool time_batches = pool && opts_.adaptive_batch_cutoff;

  // Scores every slot in ids into batch_results (same index) against the
  // current partition state. The parallel and the serial loop compute
  // identical results: scoring never reads the slot fields or threshold
  // statistics that applying a score mutates, and the state is frozen until
  // the next assignment — so the pool-vs-serial routing (and hence the
  // adaptive cutoff) only moves throughput, never decisions.
  auto score_batch = [&](const std::vector<std::uint32_t>& ids) {
    batch_results.resize(ids.size());
    if (ids.empty()) return;
    // Span real batches only: the steady-state single-edge rescore fires
    // every round and would be a per-edge span.
    obs::TraceSpan rescore_span(ids.size() > 1 ? trace : nullptr,
                                obs::names::kSpanBatchRescore);
    ++report_.score_batches;
    report_.batch_items += ids.size();
    ++report_.batch_size_hist[log2_bucket(ids.size(),
                                          Report::kBatchHistBuckets)];
    const bool pooled =
        pool && (ids.size() >= cutoff_ctl.cutoff() ||
                 cutoff_ctl.probe(ids.size()));
    std::chrono::nanoseconds batch_start{};
    if (time_batches) batch_start = clock.now();
    if (pooled) {
      ++report_.pool_batches;
      report_.pool_batch_items += ids.size();
      const PartitionSnapshot snap = state.snapshot();
      pool->parallel_for(
          ids.size(), [&](std::size_t begin, std::size_t end, unsigned slot) {
            // First-label-wins: pool workers get named here, the calling
            // thread keeps its "partition" label.
            if (trace != nullptr) trace->name_current_thread("score-worker");
            ScoreScratch& scratch = shard_scratch[slot];
            for (std::size_t i = begin; i < end; ++i) {
              const std::uint32_t id = ids[i];
              batch_results[i] = scorer.best_placement(
                  window.slot(id).edge, &window, id, snap, scratch);
            }
          });
      for (ScoreScratch& s : shard_scratch) scorer.absorb(s);
    } else {
      for (std::size_t i = 0; i < ids.size(); ++i) {
        const std::uint32_t id = ids[i];
        batch_results[i] =
            scorer.best_placement(window.slot(id).edge, &window, id);
      }
    }
    if (time_batches) {
      cutoff_ctl.observe(ids.size(), pooled, clock.now() - batch_start);
    }
  };

  const bool heap_mode = opts_.lazy_traversal && opts_.heap_selection;
  LazySlotHeap heap(/*want_candidate=*/true);
  // Secondary set Q ordered by last-known score: at drain time slots are
  // rescored in stale-score order instead of rescanning all of Q.
  LazySlotHeap secondary(/*want_candidate=*/false);
  // (slot, version, scored_at) in push order; scored_at is monotone, so the
  // front is always the entry closest to its refresh deadline.
  struct AgingEntry {
    std::uint32_t slot;
    std::uint64_t version;
    std::uint64_t scored_at;
  };
  std::deque<AgingEntry> aging;
  // Candidates whose incident replica sets changed since their last score.
  std::vector<std::uint32_t> dirty_slots;
  // Slots popped during a drain walk that must be re-pushed afterwards.
  std::vector<std::uint32_t> drain_scratch;
  // The drain walk's pop sequence: slot and whether it needs a rescore
  // (recorded in phase 1, scored in phase 2, replayed in phase 3).
  struct DrainPop {
    std::uint32_t slot;
    bool stale;
  };
  std::vector<DrainPop> drain_walk;
  std::uint64_t last_sweep = 0;
  // Self-adapting drain heuristics (budget + sweep interval) driven by the
  // forced-secondary rate. Counter-based and deterministic.
  DrainController drain_ctl(opts_);

  // Applies a computed placement to a slot and refreshes the candidate
  // threshold statistics — the single serial merge point of both the inline
  // and the batched (possibly parallel) rescore paths, so version numbers
  // and EWMA updates always happen in deterministic batch order.
  auto apply_scored = [&](std::uint32_t id, const ScoredPlacement& placed) {
    auto& s = window.slot(id);
    s.best_score = placed.score;
    s.structural_score = placed.structural;
    s.best_partition = placed.partition;
    s.dirty = false;
    s.scored_at = round;
    s.score_version = ++score_version;
    threshold.observe(placed.score);
    ++report_.score_computations;
  };

  // Recomputes the cached best placement of a single slot inline.
  auto rescore = [&](std::uint32_t id) {
    apply_scored(id, scorer.best_placement(window.slot(id).edge, &window, id));
  };

  // Publishes a candidate's current score to the heap (and schedules its
  // staleness refresh). Invariant in heap mode: every live candidate has a
  // heap entry carrying its latest score_version.
  auto publish = [&](std::uint32_t id) {
    if (!heap_mode) return;
    heap.push(window, id);
    aging.push_back({id, window.slot(id).score_version, round});
  };

  // Routes a freshly scored edge to the candidate or secondary set — the
  // shared tail of the serial and the batched classify paths. Must run
  // after the slot's score was applied (the threshold already observed it,
  // exactly like the serial interleaving).
  auto route_classified = [&](std::uint32_t id) {
    const bool high =
        !opts_.lazy_traversal ||
        window.slot(id).best_score > threshold.theta();
    window.set_candidate(id, high);
    if (high) {
      publish(id);
    } else if (heap_mode) {
      secondary.push(window, id);
    }
  };

  // Scores a freshly inserted edge inline and routes it (BatchedRefill::kOff).
  auto classify = [&](std::uint32_t id) {
    rescore(id);
    route_classified(id);
  };

  // Batched refill classification: the pending refill burst is scored as
  // one (possibly parallel) batch, then scores, threshold observations and
  // routing decisions are applied serially in insertion order — the exact
  // order the serial classify interleaves them in.
  std::vector<std::uint32_t> refill_ids;
  auto classify_batch = [&]() {
    if (refill_ids.empty()) return;
    ++report_.refill_batches;
    report_.refill_batch_items += refill_ids.size();
    score_batch(refill_ids);
    for (std::size_t i = 0; i < refill_ids.size(); ++i) {
      apply_scored(refill_ids[i], batch_results[i]);
      route_classified(refill_ids[i]);
    }
    refill_ids.clear();
  };

  // kExact conflict detection: epoch-stamped endpoint marks of the pending
  // batch. An edge in the batch can only have its score changed by a
  // batch-mate sharing an endpoint (CS reads the window neighborhood of its
  // endpoints; the partition state is frozen during refill), so flushing
  // the pending batch before inserting a conflicting edge keeps every
  // score — and hence every decision — identical to serial classification.
  std::vector<std::uint64_t> touch_epoch;
  std::uint64_t touch_round = 1;  // 0 marks "never touched"
  if (opts_.batched_refill == BatchedRefill::kExact) {
    touch_epoch.assign(state.num_vertices(), 0);
  }

  // Refills the window up to the current size w (Algorithm 1 lines 5, 14).
  // Trace spans cover bulk refills only (initial fill, post-drain deficits,
  // block refills) — the steady-state one-edge top-up of the kOff/kExact
  // modes would be a per-edge span, swamping the trace with micro-events.
  auto refill = [&](Edge& incoming) {
    const std::uint64_t w = controller.window_size();
    switch (opts_.batched_refill) {
      case BatchedRefill::kOff: {
        obs::TraceSpan refill_span(window.size() + 1 < w ? trace : nullptr,
                                   obs::names::kSpanWindowRefill);
        while (window.size() < w && stream.next(incoming)) {
          classify(window.insert(incoming));
        }
        return;
      }
      case BatchedRefill::kExact: {
        obs::TraceSpan refill_span(window.size() + 1 < w ? trace : nullptr,
                                   obs::names::kSpanWindowRefill);
        while (window.size() < w && stream.next(incoming)) {
          if (!refill_ids.empty() &&
              (touch_epoch[incoming.u] == touch_round ||
               touch_epoch[incoming.v] == touch_round)) {
            classify_batch();
            ++touch_round;
          }
          refill_ids.push_back(window.insert(incoming));
          touch_epoch[incoming.u] = touch_round;
          touch_epoch[incoming.v] = touch_round;
        }
        classify_batch();
        ++touch_round;
        return;
      }
      case BatchedRefill::kFull: {
        // Hysteresis: only pull the next refill once a whole block has
        // drained, so steady-state refills arrive as real batches instead
        // of single edges. The effective window breathes in [w - block, w].
        // A starved candidate set overrides the hysteresis: with no fresh
        // high scorers arriving, every select until the next block would
        // pay a full drain walk (measured as a ~2x rescore storm).
        const double fraction =
            std::clamp(opts_.refill_block_fraction, 0.0, 1.0);
        const std::uint64_t block = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   static_cast<double>(w) * fraction));
        const bool starved =
            opts_.lazy_traversal && window.candidates().empty();
        if (window.size() + block > w && !(starved && window.size() < w)) {
          return;
        }
        // Past the hysteresis check a real block refill happens — span it.
        obs::TraceSpan refill_span(trace, obs::names::kSpanWindowRefill);
        while (window.size() < w && stream.next(incoming)) {
          refill_ids.push_back(window.insert(incoming));
        }
        classify_batch();
        return;
      }
    }
  };

  auto consider = [&](std::uint32_t id, std::uint32_t& best_slot,
                      double& best_score, std::uint64_t& best_sequence) {
    const auto& s = window.slot(id);
    // Ties resolve FIFO so lazy and eager traversal agree exactly.
    if (best_slot == EdgeWindow::npos || s.best_score > best_score ||
        (s.best_score == best_score && s.sequence < best_sequence)) {
      best_slot = id;
      best_score = s.best_score;
      best_sequence = s.sequence;
    }
  };

  // Candidate set drained: rescan the secondary set, promoting everything
  // above Theta (§III-B step two). Returns the best secondary slot for the
  // forced-progress case; promoted counts the slots that re-entered C.
  auto secondary_rescan = [&](std::size_t& promoted) -> std::uint32_t {
    ++report_.secondary_rescans;
    std::uint32_t best_slot = EdgeWindow::npos;
    double best_score = -std::numeric_limits<double>::infinity();
    std::uint64_t best_sequence = 0;
    window.for_each_slot([&](std::uint32_t id) {
      if (window.is_candidate(id)) return;
      rescore(id);
      if (window.slot(id).best_score > threshold.theta()) {
        window.set_candidate(id, true);
        ++promoted;
      }
      consider(id, best_slot, best_score, best_sequence);
    });
    return best_slot;
  };

  // Linear reference selection: scan the whole candidate set, rescore dirty
  // and stale entries, demote below-threshold candidates every round.
  auto select_linear = [&]() -> std::uint32_t {
    std::uint32_t best_slot = EdgeWindow::npos;
    double best_score = -std::numeric_limits<double>::infinity();
    std::uint64_t best_sequence = 0;

    const auto cands = window.candidates();
    for (std::size_t i = 0; i < cands.size(); ++i) {
      const std::uint32_t id = cands[i];
      auto& s = window.slot(id);
      if (s.dirty || round - s.scored_at >= opts_.candidate_refresh_interval) {
        rescore(id);
      }
      consider(id, best_slot, best_score, best_sequence);
    }
    if (best_slot != EdgeWindow::npos) {
      // Demote candidates that fell strictly below the threshold — except
      // the winner, which is about to be assigned anyway.
      const double theta = threshold.theta();
      for (std::size_t i = window.candidates().size(); i-- > 0;) {
        const std::uint32_t id = window.candidates()[i];
        if (id != best_slot && window.slot(id).best_score < theta) {
          window.set_candidate(id, false);
        }
      }
      return best_slot;
    }

    std::size_t promoted = 0;
    const std::uint32_t best_secondary = secondary_rescan(promoted);
    if (promoted > 0) {
      // Re-select among the promoted candidates.
      best_slot = EdgeWindow::npos;
      best_score = -std::numeric_limits<double>::infinity();
      for (const std::uint32_t id : window.candidates()) {
        consider(id, best_slot, best_score, best_sequence);
      }
      return best_slot;
    }
    // Everything scored below average: make progress with the best
    // secondary edge regardless.
    ++report_.forced_secondary;
    return best_secondary;
  };

  // Heap selection: O(dirty + stale + log |C|) per assignment instead of
  // O(|C|). Dirty and overdue candidates are rescored (publishing fresh
  // heap entries), below-threshold candidates are demoted in periodic
  // sweeps, and the winner is popped off the heap.
  auto select_heap = [&]() -> std::uint32_t {
    // Replica-change events since the last selection, batched and deduped:
    // affected candidates re-enter the heap with fresh scores, affected
    // secondary slots get their (only) promotion check. Overdue staleness
    // refreshes from the aging queue join the same batch: the whole batch
    // is scored in one (possibly parallel) sweep against the frozen state,
    // then the scores are applied and the promotion decisions taken in push
    // order — dirty slots first, aging entries second, the order the
    // serial loop used.
    batch_ids.clear();
    for (const std::uint32_t id : dirty_slots) {
      const auto& s = window.slot(id);
      if (s.occupied && s.dirty) batch_ids.push_back(id);
    }
    dirty_slots.clear();
    const std::size_t dirty_count = batch_ids.size();

    // Staleness refresh: the aging queue is in scored_at order, so only the
    // overdue prefix is touched. Interval floor 1: entries republished this
    // round must not come due within the same select call. The validity
    // check runs at collect time; excluding dirty slots keeps it exact —
    // a slot in the dirty section gets its version bumped when the batch
    // is applied, which is precisely the slots whose aging entries the
    // serial interleaving would find superseded.
    const std::uint64_t refresh =
        std::max<std::uint64_t>(opts_.candidate_refresh_interval, 1);
    while (!aging.empty() && round - aging.front().scored_at >= refresh) {
      const AgingEntry age = aging.front();
      aging.pop_front();
      const auto& s = window.slot(age.slot);
      if (s.occupied && window.is_candidate(age.slot) &&
          s.score_version == age.version && !s.dirty) {
        batch_ids.push_back(age.slot);
      }
    }

    score_batch(batch_ids);
    for (std::size_t i = 0; i < batch_ids.size(); ++i) {
      const std::uint32_t id = batch_ids[i];
      apply_scored(id, batch_results[i]);
      if (i >= dirty_count || window.is_candidate(id)) {
        publish(id);
      } else if (window.slot(id).best_score > threshold.theta()) {
        window.set_candidate(id, true);
        publish(id);
      } else {
        secondary.push(window, id);
      }
    }

    // Periodic demotion sweep: shed candidates that sank below Theta and
    // compact both heaps' stale entries in one pass. The interval adapts
    // with the forced-secondary rate (DrainController).
    if (round - last_sweep >= drain_ctl.sweep_interval() ||
        heap.size() > 4 * window.candidates().size() + 64) {
      last_sweep = round;
      ++report_.demotion_sweeps;
      const double theta = threshold.theta();
      bool demoted = false;
      for (std::size_t i = window.candidates().size(); i-- > 0;) {
        const std::uint32_t id = window.candidates()[i];
        if (window.slot(id).best_score < theta) {
          window.set_candidate(id, false);
          demoted = true;
        }
      }
      if (demoted || heap.size() > 4 * window.candidates().size() + 64) {
        heap.rebuild(window);
      }
      if (demoted || secondary.size() > 4 * window.size() + 64) {
        secondary.rebuild(window);
      }
    }

    // Pop with rescore-on-pop: cached scores only order the heap; a winner
    // whose score predates the last assignment is rescored, re-pushed and
    // re-popped, so the assignment decision itself is always fresh. Each
    // slot is rescored at most once per select (rescoring makes it fresh),
    // bounding the loop; typically the top survives in one or two pops.
    while (true) {
      const std::uint32_t popped = heap.pop_valid(window, report_.heap_pops);
      if (popped == EdgeWindow::npos) break;
      const auto& s = window.slot(popped);
      if (s.score_version > version_at_last_assign && !s.dirty) return popped;
      rescore(popped);
      publish(popped);
    }

    // Candidate set drained (§III-B step two). Instead of rescanning all of
    // Q like the linear path, walk the secondary heap in structural-score
    // order, rescoring stale slots up to a small budget, then assign the
    // fresh argmax — promoted if it clears Theta, forced otherwise.
    //
    // The walk runs in three phases so the budgeted rescores can go through
    // the parallel batch scorer: (1) pop the walk — which slots come off
    // the heap depends only on the budget and entry validity, never on
    // rescore outcomes, so the pop sequence matches the serial walk
    // exactly; (2) batch-score the stale slots against the frozen state;
    // (3) replay the walk in pop order, applying scores, threshold updates
    // and promotion decisions in the serial order.
    obs::TraceSpan drain_span(trace, obs::names::kSpanDrainWalk);
    ++report_.secondary_rescans;
    std::uint32_t best_fresh = EdgeWindow::npos;
    double best_fresh_score = -std::numeric_limits<double>::infinity();
    std::uint64_t best_fresh_sequence = 0;
    std::uint64_t rescored = 0;
    // The budget adapts with the forced-secondary rate (DrainController,
    // floor 1): with no rescore allowed the walk could end with neither a
    // fresh slot nor a promotion and stall the stream.
    const std::uint64_t drain_budget = drain_ctl.rescore_budget();
    bool promoted = false;
    drain_scratch.clear();  // popped slots to re-push when not returned
    drain_walk.clear();
    // Stale slot that exhausted the budget: popped and re-pushed, never
    // rescored (exactly the serial walk's break case).
    std::uint32_t over_budget_slot = EdgeWindow::npos;
    while (true) {
      const std::uint32_t id = secondary.pop_valid(window, report_.heap_pops);
      if (id == EdgeWindow::npos) break;
      const auto& s = window.slot(id);
      const bool fresh =
          s.score_version > version_at_last_assign && !s.dirty;
      if (!fresh && rescored >= drain_budget) {
        over_budget_slot = id;
        break;
      }
      if (!fresh) ++rescored;
      drain_walk.push_back({id, /*stale=*/!fresh});
    }
    batch_ids.clear();
    for (const DrainPop& p : drain_walk) {
      if (p.stale) batch_ids.push_back(p.slot);
    }
    score_batch(batch_ids);
    std::size_t stale_index = 0;
    for (const DrainPop& p : drain_walk) {
      if (p.stale) apply_scored(p.slot, batch_results[stale_index++]);
      const auto& s = window.slot(p.slot);
      if (s.best_score > threshold.theta()) {
        // Promote and keep walking: refilling C with everything the budget
        // surfaces spaces out future drains (the linear rescan promotes
        // every qualifying slot too).
        window.set_candidate(p.slot, true);
        publish(p.slot);
        promoted = true;
        continue;
      }
      consider(p.slot, best_fresh, best_fresh_score, best_fresh_sequence);
      drain_scratch.push_back(p.slot);
    }
    if (over_budget_slot != EdgeWindow::npos) {
      drain_scratch.push_back(over_budget_slot);
    }
    for (const std::uint32_t id : drain_scratch) {
      if (id != best_fresh || promoted) secondary.push(window, id);
    }
    const bool budget_limited = over_budget_slot != EdgeWindow::npos;
    if (promoted) {
      drain_ctl.observe_drain(/*forced=*/false, budget_limited);
      return heap.pop_valid(window, report_.heap_pops);
    }
    if (best_fresh == EdgeWindow::npos) return EdgeWindow::npos;  // empty
    drain_ctl.observe_drain(/*forced=*/true, budget_limited);
    ++report_.forced_secondary;
    return best_fresh;
  };

  // Selects the slot to assign next. Returns EdgeWindow::npos iff the
  // window is empty.
  auto select = [&]() -> std::uint32_t {
    if (window.empty()) return EdgeWindow::npos;

    if (!opts_.lazy_traversal) {
      // Eager traversal: recompute every window edge, take the argmax. The
      // full-window rescan is the largest batch there is — score it in one
      // (possibly parallel) sweep, then apply in ascending slot order like
      // the serial loop.
      batch_ids.clear();
      window.for_each_slot(
          [&](std::uint32_t id) { batch_ids.push_back(id); });
      score_batch(batch_ids);
      std::uint32_t best_slot = EdgeWindow::npos;
      double best_score = -std::numeric_limits<double>::infinity();
      std::uint64_t best_sequence = 0;
      for (std::size_t i = 0; i < batch_ids.size(); ++i) {
        apply_scored(batch_ids[i], batch_results[i]);
        consider(batch_ids[i], best_slot, best_score, best_sequence);
      }
      return best_slot;
    }
    return opts_.heap_selection ? select_heap() : select_linear();
  };

  // Replica-set growth re-opens the question whether incident secondary
  // edges now belong in the candidate set (§III-B step three).
  auto reassess_incident = [&](VertexId x) {
    window.for_each_incident(x, [&](std::uint32_t id) {
      ++report_.event_reassessments;
      if (window.is_candidate(id)) {
        if (heap_mode && !window.slot(id).dirty) dirty_slots.push_back(id);
        window.slot(id).dirty = true;
        return;
      }
      if (heap_mode) {
        // Defer to the next select's batched dirty pass (deduped per
        // round) instead of rescoring inline on every replica event.
        if (!window.slot(id).dirty) dirty_slots.push_back(id);
        window.slot(id).dirty = true;
        return;
      }
      rescore(id);
      if (window.slot(id).best_score > threshold.theta()) {
        window.set_candidate(id, true);
      }
    });
  };

  // --- Checkpoint support ---------------------------------------------------
  // The safe boundary is the bottom of the assignment loop: refill_ids is
  // empty (classify_batch always drains it), every scratch vector is
  // cleared before use, and the kExact touch marks are all stale (refill
  // bumps touch_round past them before returning) — so the complete
  // algorithm state is the named structures below plus the loop counters.
  // Wall time accumulated before the last crash, so a resumed run's report
  // shows total time across attempts.
  double base_seconds = 0.0;

  auto save_report_counters = [&](ByteWriter& out) {
    out.u64(report_.score_computations);
    out.u64(report_.secondary_rescans);
    out.u64(report_.forced_secondary);
    out.u64(report_.event_reassessments);
    out.u64(report_.heap_pops);
    out.u64(report_.demotion_sweeps);
    out.u64(report_.score_batches);
    out.u64(report_.batch_items);
    out.u64(report_.pool_batches);
    out.u64(report_.pool_batch_items);
    out.u64(report_.refill_batches);
    out.u64(report_.refill_batch_items);
    for (const std::uint64_t b : report_.batch_size_hist) out.u64(b);
  };
  auto load_report_counters = [&](ByteReader& in) {
    report_.score_computations = in.u64();
    report_.secondary_rescans = in.u64();
    report_.forced_secondary = in.u64();
    report_.event_reassessments = in.u64();
    report_.heap_pops = in.u64();
    report_.demotion_sweeps = in.u64();
    report_.score_batches = in.u64();
    report_.batch_items = in.u64();
    report_.pool_batches = in.u64();
    report_.pool_batch_items = in.u64();
    report_.refill_batches = in.u64();
    report_.refill_batch_items = in.u64();
    for (std::uint64_t& b : report_.batch_size_hist) b = in.u64();
  };

  auto save_state = [&](ByteWriter& out) {
    out.u32(kAdwiseStateVersion);
    out.u64(round);
    out.u64(score_version);
    out.u64(version_at_last_assign);
    out.u64(last_sweep);
    out.f64(base_seconds + watch.elapsed_seconds());
    save_report_counters(out);
    threshold.save(out);
    scorer.save(out);
    controller.save(out);
    drain_ctl.save(out);
    window.save(out);
    heap.save(out);
    secondary.save(out);
    out.u64(aging.size());
    for (const AgingEntry& a : aging) {
      out.u32(a.slot);
      out.u64(a.version);
      out.u64(a.scored_at);
    }
    out.u64(dirty_slots.size());
    for (const std::uint32_t id : dirty_slots) out.u32(id);
  };

  if (!resume_state_.empty()) {
    ByteReader in(resume_state_);
    if (in.u32() != kAdwiseStateVersion) {
      throw std::runtime_error("adwise resume state has an unknown version");
    }
    round = in.u64();
    score_version = in.u64();
    version_at_last_assign = in.u64();
    last_sweep = in.u64();
    base_seconds = in.f64();
    load_report_counters(in);
    threshold.load(in);
    scorer.load(in);
    controller.load(in);
    drain_ctl.load(in);
    window.load(in);
    heap.load(in);
    secondary.load(in);
    aging.clear();
    const std::uint64_t num_aging = in.u64();
    for (std::uint64_t i = 0; i < num_aging; ++i) {
      AgingEntry a;
      a.slot = in.u32();
      a.version = in.u64();
      a.scored_at = in.u64();
      aging.push_back(a);
    }
    dirty_slots.resize(static_cast<std::size_t>(in.u64()));
    for (std::uint32_t& id : dirty_slots) id = in.u32();
    in.expect_end();
    resume_state_.clear();
  }

  Edge incoming;
  while (true) {
    refill(incoming);

    const std::uint32_t chosen = select();
    if (chosen == EdgeWindow::npos) break;

    // One slot lookup for all three reads; the values are copied out before
    // remove() recycles the slot.
    const EdgeWindow::Slot& chosen_slot = window.slot(chosen);
    const Edge edge = chosen_slot.edge;
    const PartitionId target = chosen_slot.best_partition;
    const double chosen_score = chosen_slot.best_score;
    window.remove(chosen);

    const auto effect = state.assign(edge, target);
    if (sink) sink(edge, target);
    scorer.on_assignment();
    ++round;
    version_at_last_assign = score_version;

    if (opts_.lazy_traversal) {
      if (effect.new_replica_u) reassess_incident(edge.u);
      if (effect.new_replica_v) reassess_incident(edge.v);
    }

    controller.on_assignment(chosen_score, state.assigned_edges());

    // round counts assignments absolutely (restored across resumes), and
    // round + window.size() is exactly the number of stream edges consumed:
    // each is either assigned or still held in the window.
    if (ckpt_.every != 0 && ckpt_.emit && round % ckpt_.every == 0) {
      obs::TraceSpan ckpt_span(trace, obs::names::kSpanCheckpointSnapshot);
      ByteWriter blob;
      save_state(blob);
      ckpt_.emit(round, round + window.size(),
                 std::span<const std::byte>(blob.data()));
    }

    if (obs_sink != nullptr && obs_sink->progress_every != 0 &&
        obs_sink->on_progress &&
        round % obs_sink->progress_every == 0) {
      obs::ProgressSample p;
      p.edges_assigned = round;
      p.seconds = base_seconds + watch.elapsed_seconds();
      p.edges_per_sec =
          p.seconds > 0.0 ? static_cast<double>(round) / p.seconds : 0.0;
      p.replication = state.replication_degree();
      p.window_size = window.size();
      p.window_target = static_cast<std::size_t>(controller.window_size());
      p.candidate_heap = heap.size();
      p.secondary_heap = secondary.size();
      obs_sink->on_progress(p);
    }
  }

  report_.assignments = round;
  report_.candidate_partitions = scorer.partitions_considered();
  report_.dense_placements = scorer.dense_placements();
  report_.sparse_placements = scorer.sparse_placements();
  report_.max_window = controller.max_window_reached();
  report_.adaptations = controller.adaptations();
  report_.final_lambda = scorer.lambda();
  report_.final_batch_cutoff = cutoff_ctl.cutoff();
  report_.batch_cutoff_adaptations = cutoff_ctl.adaptations();
  report_.final_drain_budget = drain_ctl.rescore_budget();
  report_.final_sweep_interval = drain_ctl.sweep_interval();
  report_.drain_adaptations = drain_ctl.adaptations();
  report_.seconds = base_seconds + watch.elapsed_seconds();
  report_.window_trace = controller.trace();

  if (obs::MetricsRegistry* reg = obs::metrics_of(obs_sink)) {
    report_.publish(*reg);
    if (pool) {
      const auto stats = pool->worker_stats();
      for (std::size_t i = 0; i < stats.size(); ++i) {
        const unsigned w = static_cast<unsigned>(i);
        namespace names = obs::names;
        reg->gauge(names::pool_metric("score", w, names::kPoolExecuted))
            .set(static_cast<double>(stats[i].executed));
        reg->gauge(names::pool_metric("score", w, names::kPoolStolen))
            .set(static_cast<double>(stats[i].stolen));
        reg->gauge(names::pool_metric("score", w, names::kPoolSleeps))
            .set(static_cast<double>(stats[i].sleeps));
      }
    }
  }
}

}  // namespace adwise
