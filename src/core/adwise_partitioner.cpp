#include "src/core/adwise_partitioner.h"

#include <cassert>
#include <limits>

namespace adwise {

namespace {

// Running estimate of the average window-edge score g_avg defining the
// candidate threshold Theta = g_avg + epsilon (§III-B). An EWMA tracks the
// drift of score magnitudes through the stream.
class ThresholdTracker {
 public:
  explicit ThresholdTracker(double epsilon) : epsilon_(epsilon), avg_(0.05) {}

  void observe(double score) { avg_.add(score); }

  // Theta; -inf until the first observation so initial edges all qualify.
  [[nodiscard]] double theta() const {
    if (!avg_.initialized()) return -std::numeric_limits<double>::infinity();
    return avg_.value() + epsilon_;
  }

 private:
  double epsilon_;
  Ewma avg_;
};

}  // namespace

void AdwisePartitioner::partition(EdgeStream& stream, PartitionState& state,
                                  const AssignmentSink& sink) {
  report_ = Report{};
  const Clock& clock = opts_.clock ? *opts_.clock : SteadyClock::instance();
  const std::size_t total_edges = stream.size_hint();

  AdwiseScorer scorer(state, opts_, total_edges);
  AdaptiveController controller(opts_, clock, total_edges);
  EdgeWindow window(state.num_vertices());
  ThresholdTracker threshold(opts_.candidate_epsilon);
  Stopwatch watch(clock);

  std::uint64_t round = 0;

  // Recomputes the cached best placement of a slot and refreshes the
  // candidate threshold statistics.
  auto rescore = [&](std::uint32_t id) {
    auto& s = window.slot(id);
    const ScoredPlacement placed =
        scorer.best_placement(s.edge, &window, id);
    s.best_score = placed.score;
    s.best_partition = placed.partition;
    s.dirty = false;
    s.scored_at = round;
    threshold.observe(placed.score);
    ++report_.score_computations;
  };

  // Scores a freshly inserted edge and routes it to the candidate or
  // secondary set.
  auto classify = [&](std::uint32_t id) {
    rescore(id);
    const bool high =
        !opts_.lazy_traversal ||
        window.slot(id).best_score > threshold.theta();
    window.set_candidate(id, high);
  };

  // Selects the slot to assign next. Returns EdgeWindow::npos iff the
  // window is empty.
  auto select = [&]() -> std::uint32_t {
    if (window.empty()) return EdgeWindow::npos;

    std::uint32_t best_slot = EdgeWindow::npos;
    double best_score = -std::numeric_limits<double>::infinity();
    std::uint64_t best_sequence = 0;
    auto consider = [&](std::uint32_t id) {
      const auto& s = window.slot(id);
      // Ties resolve FIFO so lazy and eager traversal agree exactly.
      if (best_slot == EdgeWindow::npos || s.best_score > best_score ||
          (s.best_score == best_score && s.sequence < best_sequence)) {
        best_slot = id;
        best_score = s.best_score;
        best_sequence = s.sequence;
      }
    };

    if (!opts_.lazy_traversal) {
      // Eager traversal: recompute every window edge, take the argmax.
      window.for_each_slot([&](std::uint32_t id) {
        rescore(id);
        consider(id);
      });
      return best_slot;
    }

    // Lazy traversal: only candidates are (re-)scored. Cached scores are
    // reused unless the slot is dirty (incident replica change) or stale
    // (balance term drift).
    const auto cands = window.candidates();
    for (std::size_t i = 0; i < cands.size(); ++i) {
      const std::uint32_t id = cands[i];
      auto& s = window.slot(id);
      if (s.dirty || round - s.scored_at >= opts_.candidate_refresh_interval) {
        rescore(id);
      }
      consider(id);
    }
    if (best_slot != EdgeWindow::npos) {
      // Demote candidates that fell strictly below the threshold — except
      // the winner, which is about to be assigned anyway.
      const double theta = threshold.theta();
      for (std::size_t i = window.candidates().size(); i-- > 0;) {
        const std::uint32_t id = window.candidates()[i];
        if (id != best_slot && window.slot(id).best_score < theta) {
          window.set_candidate(id, false);
        }
      }
      return best_slot;
    }

    // Candidate set drained: rescan the secondary set, promoting everything
    // above Theta (§III-B step two).
    ++report_.secondary_rescans;
    window.for_each_slot([&](std::uint32_t id) {
      if (window.is_candidate(id)) return;
      rescore(id);
      if (window.slot(id).best_score > threshold.theta()) {
        window.set_candidate(id, true);
      }
      consider(id);
    });
    if (!window.candidates().empty()) {
      // Re-select among the promoted candidates.
      best_slot = EdgeWindow::npos;
      best_score = -std::numeric_limits<double>::infinity();
      for (const std::uint32_t id : window.candidates()) consider(id);
    } else {
      // Everything scored below average: make progress with the best
      // secondary edge regardless.
      ++report_.forced_secondary;
    }
    return best_slot;
  };

  // Replica-set growth re-opens the question whether incident secondary
  // edges now belong in the candidate set (§III-B step three).
  auto reassess_incident = [&](VertexId x) {
    window.for_each_incident(x, [&](std::uint32_t id) {
      ++report_.event_reassessments;
      if (window.is_candidate(id)) {
        window.slot(id).dirty = true;
        return;
      }
      rescore(id);
      if (window.slot(id).best_score > threshold.theta()) {
        window.set_candidate(id, true);
      }
    });
  };

  Edge incoming;
  while (true) {
    // Refill the window up to the current size w (Algorithm 1 lines 5, 14).
    while (window.size() < controller.window_size() &&
           stream.next(incoming)) {
      classify(window.insert(incoming));
    }

    const std::uint32_t chosen = select();
    if (chosen == EdgeWindow::npos) break;

    const Edge edge = window.slot(chosen).edge;
    const PartitionId target = window.slot(chosen).best_partition;
    const double chosen_score = window.slot(chosen).best_score;
    window.remove(chosen);

    const auto effect = state.assign(edge, target);
    if (sink) sink(edge, target);
    scorer.on_assignment();
    ++round;

    if (opts_.lazy_traversal) {
      if (effect.new_replica_u) reassess_incident(edge.u);
      if (effect.new_replica_v) reassess_incident(edge.v);
    }

    controller.on_assignment(chosen_score, state.assigned_edges());
  }

  report_.assignments = round;
  report_.max_window = controller.max_window_reached();
  report_.adaptations = controller.adaptations();
  report_.final_lambda = scorer.lambda();
  report_.seconds = watch.elapsed_seconds();
  report_.window_trace = controller.trace();
}

}  // namespace adwise
