#include "src/core/adaptive_controller.h"

#include <algorithm>

namespace adwise {

AdaptiveController::AdaptiveController(const AdwiseOptions& opts,
                                       const Clock& clock,
                                       std::size_t total_edges)
    : opts_(opts),
      clock_(&clock),
      total_edges_(total_edges),
      start_(clock.now()),
      batch_start_(start_),
      window_(std::max<std::uint64_t>(1, opts.initial_window)),
      max_seen_(window_) {}

void AdaptiveController::on_assignment(double score, std::uint64_t assigned) {
  batch_score_.add(score);
  ++batch_count_;
  if (!opts_.adaptive_window) return;
  if (batch_count_ < window_) return;
  adapt(assigned);
}

void AdaptiveController::adapt(std::uint64_t assigned) {
  const auto now = clock_->now();
  const double batch_seconds =
      std::chrono::duration<double>(now - batch_start_).count();
  const double lat_w =
      batch_seconds / static_cast<double>(std::max<std::uint64_t>(
                          batch_count_, 1));

  const std::uint64_t remaining =
      total_edges_ > assigned ? total_edges_ - assigned : 0;
  if (remaining == 0) {
    // The stream is exhausted; the window only drains from here, so growing
    // or shrinking it would be meaningless (and would distort the report).
    prev_batch_score_ = batch_score_.mean();
    has_prev_batch_ = true;
    batch_score_.reset();
    batch_count_ = 0;
    batch_start_ = now;
    return;
  }

  bool c2;
  if (opts_.latency_preference_ms < 0) {
    c2 = true;  // no preference: latency never vetoes growth
  } else {
    const double budget_seconds =
        static_cast<double>(opts_.latency_preference_ms) / 1e3;
    const double elapsed =
        std::chrono::duration<double>(now - start_).count();
    const double l_prime = budget_seconds - elapsed;
    c2 = l_prime > 0.0 &&
         lat_w < l_prime / static_cast<double>(remaining);
  }

  // C1: the current batch's decisions were at least as good as the previous
  // batch's (mean best-score did not degrade).
  const bool c1 = !has_prev_batch_ || batch_score_.mean() >= prev_batch_score_;

  if (c1 && c2) {
    window_ = std::min(window_ * 2, opts_.max_window);
  } else if (!c2) {
    window_ = std::max<std::uint64_t>(window_ / 2, 1);
  }
  max_seen_ = std::max(max_seen_, window_);
  ++adaptations_;
  trace_.push_back({assigned, window_});

  prev_batch_score_ = batch_score_.mean();
  has_prev_batch_ = true;
  batch_score_.reset();
  batch_count_ = 0;
  batch_start_ = now;
}

}  // namespace adwise
