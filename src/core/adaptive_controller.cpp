#include "src/core/adaptive_controller.h"

#include <algorithm>
#include <cmath>

namespace adwise {

BatchCutoffController::BatchCutoffController(const AdwiseOptions& opts,
                                             unsigned slots)
    : adaptive_(opts.adaptive_batch_cutoff),
      slots_(static_cast<double>(std::max(slots, 2u))),
      cutoff_(std::max<std::uint64_t>(opts.parallel_batch_min, kMinCutoff)) {}

bool BatchCutoffController::probe(std::size_t n) {
  if (!adaptive_ || n < kMinCutoff || n >= cutoff_) return false;
  return ++serial_batches_ % kProbeInterval == 0;
}

void BatchCutoffController::observe(std::size_t n, bool pooled,
                                    std::chrono::nanoseconds elapsed) {
  if (!adaptive_ || n == 0) return;
  const double ns = static_cast<double>(elapsed.count());
  // Sub-resolution samples (FakeClock, or a batch under the clock's tick)
  // carry no cost signal; folding zeros in would drive the model to a
  // degenerate cutoff.
  if (ns <= 0.0) return;
  if (!pooled) {
    per_item_ns_.add(ns / static_cast<double>(n));
    return;
  }
  if (!per_item_ns_.initialized()) return;
  // o = t_pool - n*c/s: what the batch paid beyond perfectly parallel
  // scoring. Clamped at zero — super-linear luck (cache effects) is not
  // negative overhead.
  const double ideal = static_cast<double>(n) * per_item_ns_.value() / slots_;
  overhead_ns_.add(std::max(0.0, ns - ideal));
  const double c = per_item_ns_.value();
  if (c < 1.0) return;
  const double breakeven = overhead_ns_.value() / (c * (1.0 - 1.0 / slots_));
  const auto next = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(std::ceil(breakeven)), kMinCutoff,
      kMaxCutoff);
  if (next != cutoff_) {
    cutoff_ = next;
    ++adaptations_;
  }
}

DrainController::DrainController(const AdwiseOptions& opts)
    : adaptive_(opts.adaptive_drain),
      budget_floor_(std::max<std::uint64_t>(opts.drain_rescore_budget, 1)),
      interval_floor_(
          std::max<std::uint64_t>(opts.demotion_sweep_interval, 1)),
      budget_cap_(budget_floor_ * kGrowthCap),
      interval_cap_(interval_floor_ * kGrowthCap),
      budget_(budget_floor_),
      interval_(interval_floor_) {}

void DrainController::observe_drain(bool forced, bool budget_limited) {
  if (!adaptive_) return;
  ++drains_;
  if (forced) ++forced_;
  if (budget_limited) ++limited_;
  if (drains_ >= kPeriod) end_period();
}

void DrainController::end_period() {
  const double rate =
      static_cast<double>(forced_) / static_cast<double>(drains_);
  if (trial_) {
    // C1-style check: the grown budget/interval survive only if the forced
    // rate actually dropped; otherwise restore and back off before the
    // next attempt.
    trial_ = false;
    if (rate < trial_baseline_ * (1.0 - kImprovementFraction)) {
      ++adaptations_;
    } else {
      budget_ = trial_budget_;
      interval_ = trial_interval_;
      cooldown_ = kCooldown;
    }
  } else if (cooldown_ > 0) {
    --cooldown_;
  } else if (forced_ * 2 >= drains_ && limited_ * 2 >= drains_ &&
             budget_ < budget_cap_) {
    // Starved and budget-limited: a deeper walk could surface promotable
    // slots. Try one period at double depth / half the demotion pressure.
    trial_budget_ = budget_;
    trial_interval_ = interval_;
    trial_baseline_ = rate;
    budget_ = std::min(budget_ * 2, budget_cap_);
    interval_ = std::min(interval_ * 2, interval_cap_);
    trial_ = true;
  } else if (forced_ * 8 <= drains_ &&
             (budget_ > budget_floor_ || interval_ > interval_floor_)) {
    budget_ = std::max(budget_ / 2, budget_floor_);
    interval_ = std::max(interval_ / 2, interval_floor_);
    ++adaptations_;
  }
  drains_ = 0;
  forced_ = 0;
  limited_ = 0;
}

void DrainController::save(ByteWriter& out) const {
  out.u64(budget_);
  out.u64(interval_);
  out.u64(drains_);
  out.u64(forced_);
  out.u64(limited_);
  out.boolean(trial_);
  out.u64(trial_budget_);
  out.u64(trial_interval_);
  out.f64(trial_baseline_);
  out.u64(cooldown_);
  out.u64(adaptations_);
}

void DrainController::load(ByteReader& in) {
  budget_ = in.u64();
  interval_ = in.u64();
  drains_ = in.u64();
  forced_ = in.u64();
  limited_ = in.u64();
  trial_ = in.boolean();
  trial_budget_ = in.u64();
  trial_interval_ = in.u64();
  trial_baseline_ = in.f64();
  cooldown_ = in.u64();
  adaptations_ = in.u64();
}

AdaptiveController::AdaptiveController(const AdwiseOptions& opts,
                                       const Clock& clock,
                                       std::size_t total_edges)
    : opts_(opts),
      clock_(&clock),
      total_edges_(total_edges),
      start_(clock.now()),
      batch_start_(start_),
      window_(std::max<std::uint64_t>(1, opts.initial_window)),
      max_seen_(window_) {}

void AdaptiveController::save(ByteWriter& out) const {
  out.u64(total_edges_);
  out.u64(batch_score_.count());
  out.f64(batch_score_.mean());
  out.f64(prev_batch_score_);
  out.boolean(has_prev_batch_);
  out.u64(window_);
  out.u64(batch_count_);
  out.u64(adaptations_);
  out.u64(max_seen_);
  out.u64(trace_.size());
  for (const TracePoint& t : trace_) {
    out.u64(t.assigned);
    out.u64(t.window);
  }
}

void AdaptiveController::load(ByteReader& in) {
  total_edges_ = static_cast<std::size_t>(in.u64());
  const std::uint64_t score_count = in.u64();
  const double score_mean = in.f64();
  batch_score_.restore(score_count, score_mean);
  prev_batch_score_ = in.f64();
  has_prev_batch_ = in.boolean();
  window_ = in.u64();
  batch_count_ = in.u64();
  adaptations_ = in.u64();
  max_seen_ = in.u64();
  trace_.resize(static_cast<std::size_t>(in.u64()));
  for (TracePoint& t : trace_) {
    t.assigned = in.u64();
    t.window = in.u64();
  }
  // Re-based, not restored: exact only for clock-free runs (header note).
  start_ = batch_start_ = clock_->now();
}

void AdaptiveController::on_assignment(double score, std::uint64_t assigned) {
  batch_score_.add(score);
  ++batch_count_;
  if (!opts_.adaptive_window) return;
  if (batch_count_ < window_) return;
  adapt(assigned);
}

void AdaptiveController::adapt(std::uint64_t assigned) {
  const auto now = clock_->now();
  const double batch_seconds =
      std::chrono::duration<double>(now - batch_start_).count();
  const double lat_w =
      batch_seconds / static_cast<double>(std::max<std::uint64_t>(
                          batch_count_, 1));

  const std::uint64_t remaining =
      total_edges_ > assigned ? total_edges_ - assigned : 0;
  if (remaining == 0) {
    // The stream is exhausted; the window only drains from here, so growing
    // or shrinking it would be meaningless (and would distort the report).
    prev_batch_score_ = batch_score_.mean();
    has_prev_batch_ = true;
    batch_score_.reset();
    batch_count_ = 0;
    batch_start_ = now;
    return;
  }

  bool c2;
  if (opts_.latency_preference_ms < 0) {
    c2 = true;  // no preference: latency never vetoes growth
  } else {
    const double budget_seconds =
        static_cast<double>(opts_.latency_preference_ms) / 1e3;
    const double elapsed =
        std::chrono::duration<double>(now - start_).count();
    const double l_prime = budget_seconds - elapsed;
    c2 = l_prime > 0.0 &&
         lat_w < l_prime / static_cast<double>(remaining);
  }

  // C1: the current batch's decisions were at least as good as the previous
  // batch's (mean best-score did not degrade).
  const bool c1 = !has_prev_batch_ || batch_score_.mean() >= prev_batch_score_;

  if (c1 && c2) {
    window_ = std::min(window_ * 2, opts_.max_window);
  } else if (!c2) {
    window_ = std::max<std::uint64_t>(window_ / 2, 1);
  }
  max_seen_ = std::max(max_seen_, window_);
  ++adaptations_;
  trace_.push_back({assigned, window_});

  prev_batch_score_ = batch_score_.mean();
  has_prev_batch_ = true;
  batch_score_.reset();
  batch_count_ = 0;
  batch_start_ = now;
}

}  // namespace adwise
