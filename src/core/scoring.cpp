#include "src/core/scoring.h"

#include <algorithm>
#include <cassert>

namespace adwise {

namespace {

// Shared argmax predicate: the dense loop iterates ids in ascending order
// and the sparse loop visits candidates in arbitrary order, so the explicit
// id tie-break makes both implement the same total order
// (score desc, load asc, id asc).
struct RunningBest {
  ScoredPlacement placement;
  std::uint64_t load = 0;

  void consider(PartitionId p, double g, std::uint64_t l) {
    if (placement.partition == kInvalidPartition || g > placement.score ||
        (g == placement.score &&
         (l < load || (l == load && p < placement.partition)))) {
      placement = {p, g};
      load = l;
    }
  }
};

}  // namespace

AdwiseScorer::AdwiseScorer(const PartitionState& state,
                           const AdwiseOptions& opts, std::size_t total_edges)
    : state_(&state),
      opts_(opts),
      total_edges_(total_edges),
      lambda_(std::clamp(opts.lambda_init, opts.lambda_min, opts.lambda_max)),
      scratch_(state.k()),
      assigned_baseline_(state.assigned_edges()) {
  // The sparse argmax confinement (header comment) needs λ·B(p) monotone
  // decreasing in partition load, i.e. λ ≥ 0 over the whole run. A negative
  // lambda_min (or a fixed negative lambda) could violate that silently in
  // release builds, so such configurations fall back to the dense scan.
  if (opts_.lambda_min < 0.0 || lambda_ < 0.0) {
    opts_.scoring_path = ScoringPath::kDense;
  }
}

double AdwiseScorer::replica_weight(VertexId x,
                                    const PartitionSnapshot& snap) const {
  if (!opts_.degree_weighting) return 1.0;
  // Observed partial degree including the edge being scored; maxDegree is
  // the running maximum, so Ψ ∈ (0, 0.5] and the weight lies in [1.5, 2).
  const double deg = static_cast<double>(snap.degree(x)) + 1.0;
  const double max_deg =
      std::max(deg, static_cast<double>(snap.max_degree()));
  const double psi = deg / (2.0 * max_deg);
  return 2.0 - psi;
}

std::size_t AdwiseScorer::prepare_clustering(const Edge& e,
                                             const EdgeWindow* window,
                                             std::uint32_t exclude_slot,
                                             const PartitionSnapshot& snap,
                                             ScoreScratch& scratch) const {
  // Reset the previous edge's counts by walking the touched list — O(|C|)
  // of the last call, not O(k), and free when CS was off or had no window.
  for (const PartitionId p : scratch.cs_touched) scratch.cs_counts[p] = 0.0;
  scratch.cs_touched.clear();
  if (!opts_.clustering_score || window == nullptr) return 0;
  window->collect_neighbors(e, exclude_slot, opts_.clustering_neighbor_cap,
                            scratch.neighbors);
  for (const VertexId n : scratch.neighbors) {
    snap.replicas(n).for_each([&](std::uint32_t p) {
      if (scratch.cs_counts[p] == 0.0) scratch.cs_touched.push_back(p);
      scratch.cs_counts[p] += 1.0;
    });
  }
  return scratch.neighbors.size();
}

AdwiseScorer::EdgeContext AdwiseScorer::make_context(
    const Edge& e, const EdgeWindow* window, std::uint32_t exclude_slot,
    const PartitionSnapshot& snap, ScoreScratch& scratch) const {
  EdgeContext ctx;
  ctx.maxsize = static_cast<double>(snap.max_partition_size());
  const auto minsize = static_cast<double>(snap.min_partition_size());
  ctx.bal_denom = ctx.maxsize - minsize + opts_.balance_epsilon;
  ctx.wu = replica_weight(e.u, snap);
  ctx.wv = replica_weight(e.v, snap);
  ctx.lambda = lambda_;
  ctx.ru = &snap.replicas(e.u);
  ctx.rv = &snap.replicas(e.v);
  ctx.cs_counts = scratch.cs_counts.data();
  ctx.self_loop = e.v == e.u;
  const std::size_t num_neighbors =
      prepare_clustering(e, window, exclude_slot, snap, scratch);
  ctx.cs_norm =
      num_neighbors > 0 ? 1.0 / static_cast<double>(num_neighbors) : 0.0;
  return ctx;
}

double AdwiseScorer::score_partition(const EdgeContext& ctx, PartitionId p,
                                     const PartitionSnapshot& snap) {
  const double balance =
      (ctx.maxsize - static_cast<double>(snap.edges_on(p))) / ctx.bal_denom;
  double g = ctx.lambda * balance;
  if (ctx.ru->contains(p)) g += ctx.wu;
  if (!ctx.self_loop && ctx.rv->contains(p)) g += ctx.wv;
  g += ctx.cs_counts[p] * ctx.cs_norm;
  return g;
}

ScoredPlacement AdwiseScorer::best_placement(const Edge& e,
                                             const EdgeWindow* window,
                                             std::uint32_t exclude_slot) {
  return best_placement(e, window, exclude_slot, state_->snapshot(), scratch_);
}

ScoredPlacement AdwiseScorer::best_placement(const Edge& e,
                                             const EdgeWindow* window,
                                             std::uint32_t exclude_slot,
                                             const PartitionSnapshot& snap,
                                             ScoreScratch& scratch) const {
  const EdgeContext ctx = make_context(e, window, exclude_slot, snap, scratch);
  ScoringPath path = opts_.scoring_path;
  if (path == ScoringPath::kAuto) {
    // Crossover: the sparse walk visits at most |R_u| + |R_v| + |touched|
    // (+1 for least-loaded) scattered partitions with dedup overhead; once
    // that bound reaches k, the sequential dense loop is cheaper.
    const std::size_t bound = ctx.ru->size() +
                              (ctx.self_loop ? 0 : ctx.rv->size()) +
                              scratch.cs_touched.size();
    path = bound >= snap.k() ? ScoringPath::kDense : ScoringPath::kSparse;
  }
  ScoredPlacement best = path == ScoringPath::kSparse
                             ? best_placement_sparse(ctx, snap, scratch)
                             : best_placement_dense(ctx, snap, scratch);
  if (best.partition != kInvalidPartition) {
    const double balance =
        (ctx.maxsize - static_cast<double>(snap.edges_on(best.partition))) /
        ctx.bal_denom;
    best.structural = best.score - ctx.lambda * balance;
  }
  return best;
}

ScoredPlacement AdwiseScorer::best_placement_dense(
    const EdgeContext& ctx, const PartitionSnapshot& snap,
    ScoreScratch& scratch) const {
  RunningBest best;
  for (PartitionId p = 0; p < snap.k(); ++p) {
    best.consider(p, score_partition(ctx, p, snap), snap.edges_on(p));
  }
  scratch.partitions_considered += snap.k();
  ++scratch.dense_placements;
  return best.placement;
}

ScoredPlacement AdwiseScorer::best_placement_sparse(
    const EdgeContext& ctx, const PartitionSnapshot& snap,
    ScoreScratch& scratch) const {
  // Candidate partitions: R_u ∪ R_v ∪ {replicas of window neighbors} ∪
  // {least-loaded}. Everything else scores exactly λ·B(p) and is dominated
  // by the least-loaded partition (see the invariant in scoring.h).
  ++scratch.mark_epoch;
  RunningBest best;
  auto consider = [&](PartitionId p) {
    if (scratch.mark[p] == scratch.mark_epoch) return;
    scratch.mark[p] = scratch.mark_epoch;
    ++scratch.partitions_considered;
    best.consider(p, score_partition(ctx, p, snap), snap.edges_on(p));
  };
  ctx.ru->for_each(consider);
  if (!ctx.self_loop) ctx.rv->for_each(consider);
  for (const PartitionId p : scratch.cs_touched) consider(p);
  consider(snap.least_loaded());
  ++scratch.sparse_placements;
  return best.placement;
}

double AdwiseScorer::score(const Edge& e, PartitionId p,
                           const EdgeWindow* window,
                           std::uint32_t exclude_slot) {
  assert(p < state_->k());
  const PartitionSnapshot snap = state_->snapshot();
  const EdgeContext ctx = make_context(e, window, exclude_slot, snap, scratch_);
  return score_partition(ctx, p, snap);
}

void AdwiseScorer::absorb(ScoreScratch& worker) {
  scratch_.partitions_considered += worker.partitions_considered;
  scratch_.dense_placements += worker.dense_placements;
  scratch_.sparse_placements += worker.sparse_placements;
  worker.partitions_considered = 0;
  worker.dense_placements = 0;
  worker.sparse_placements = 0;
}

void AdwiseScorer::on_assignment() {
  if (!opts_.adaptive_balance) return;
  // Stream progress α = |E'|/m (Eq. 4) counts edges assigned by THIS run:
  // under restreaming the state carries prior passes' assignments, which
  // must not start α at 1 (λ would ratchet to λ_max immediately).
  const double assigned =
      static_cast<double>(state_->assigned_edges() - assigned_baseline_);
  const double m = static_cast<double>(std::max<std::size_t>(total_edges_, 1));
  const double alpha = std::min(1.0, assigned / m);
  const double tolerance = std::max(0.0, 1.0 - alpha);
  const double iota = state_->imbalance();
  lambda_ = std::clamp(lambda_ + (iota - tolerance), opts_.lambda_min,
                       opts_.lambda_max);
}

}  // namespace adwise
