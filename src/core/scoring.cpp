#include "src/core/scoring.h"

#include <algorithm>
#include <cassert>

namespace adwise {

namespace {

// Shared argmax predicate: the dense loop iterates ids in ascending order
// and the sparse loop visits candidates in arbitrary order, so the explicit
// id tie-break makes both implement the same total order
// (score desc, load asc, id asc).
struct RunningBest {
  ScoredPlacement placement;
  std::uint64_t load = 0;

  void consider(PartitionId p, double g, std::uint64_t l) {
    if (placement.partition == kInvalidPartition || g > placement.score ||
        (g == placement.score &&
         (l < load || (l == load && p < placement.partition)))) {
      placement = {p, g};
      load = l;
    }
  }
};

}  // namespace

AdwiseScorer::AdwiseScorer(const PartitionState& state,
                           const AdwiseOptions& opts, std::size_t total_edges)
    : state_(&state),
      opts_(opts),
      total_edges_(total_edges),
      lambda_(std::clamp(opts.lambda_init, opts.lambda_min, opts.lambda_max)),
      cs_counts_(state.k(), 0.0),
      mark_(state.k(), 0),
      assigned_baseline_(state.assigned_edges()) {
  // The sparse argmax confinement (header comment) needs λ·B(p) monotone
  // decreasing in partition load, i.e. λ ≥ 0 over the whole run. A negative
  // lambda_min (or a fixed negative lambda) could violate that silently in
  // release builds, so such configurations fall back to the dense scan.
  if (opts_.lambda_min < 0.0 || lambda_ < 0.0) opts_.sparse_scoring = false;
}

double AdwiseScorer::replica_weight(VertexId x) const {
  if (!opts_.degree_weighting) return 1.0;
  // Observed partial degree including the edge being scored; maxDegree is
  // the running maximum, so Ψ ∈ (0, 0.5] and the weight lies in [1.5, 2).
  const double deg = static_cast<double>(state_->degree(x)) + 1.0;
  const double max_deg =
      std::max(deg, static_cast<double>(state_->max_degree()));
  const double psi = deg / (2.0 * max_deg);
  return 2.0 - psi;
}

std::size_t AdwiseScorer::prepare_clustering(const Edge& e,
                                             const EdgeWindow* window,
                                             std::uint32_t exclude_slot) {
  // Reset the previous edge's counts by walking the touched list — O(|C|)
  // of the last call, not O(k), and free when CS was off or had no window.
  for (const PartitionId p : cs_touched_) cs_counts_[p] = 0.0;
  cs_touched_.clear();
  if (!opts_.clustering_score || window == nullptr) return 0;
  window->collect_neighbors(e, exclude_slot, opts_.clustering_neighbor_cap,
                            neighbor_scratch_);
  for (const VertexId n : neighbor_scratch_) {
    state_->replicas(n).for_each([&](std::uint32_t p) {
      if (cs_counts_[p] == 0.0) cs_touched_.push_back(p);
      cs_counts_[p] += 1.0;
    });
  }
  return neighbor_scratch_.size();
}

AdwiseScorer::EdgeContext AdwiseScorer::make_context(
    const Edge& e, const EdgeWindow* window, std::uint32_t exclude_slot) {
  EdgeContext ctx;
  ctx.maxsize = static_cast<double>(state_->max_partition_size());
  const auto minsize = static_cast<double>(state_->min_partition_size());
  ctx.bal_denom = ctx.maxsize - minsize + opts_.balance_epsilon;
  ctx.wu = replica_weight(e.u);
  ctx.wv = replica_weight(e.v);
  ctx.ru = &state_->replicas(e.u);
  ctx.rv = &state_->replicas(e.v);
  ctx.self_loop = e.v == e.u;
  const std::size_t num_neighbors = prepare_clustering(e, window, exclude_slot);
  ctx.cs_norm =
      num_neighbors > 0 ? 1.0 / static_cast<double>(num_neighbors) : 0.0;
  return ctx;
}

double AdwiseScorer::score_partition(const EdgeContext& ctx,
                                     PartitionId p) const {
  const double balance =
      (ctx.maxsize - static_cast<double>(state_->edges_on(p))) / ctx.bal_denom;
  double g = lambda_ * balance;
  if (ctx.ru->contains(p)) g += ctx.wu;
  if (!ctx.self_loop && ctx.rv->contains(p)) g += ctx.wv;
  g += cs_counts_[p] * ctx.cs_norm;
  return g;
}

ScoredPlacement AdwiseScorer::best_placement(const Edge& e,
                                             const EdgeWindow* window,
                                             std::uint32_t exclude_slot) {
  const EdgeContext ctx = make_context(e, window, exclude_slot);
  ScoredPlacement best = opts_.sparse_scoring ? best_placement_sparse(ctx)
                                              : best_placement_dense(ctx);
  if (best.partition != kInvalidPartition) {
    const double balance =
        (ctx.maxsize - static_cast<double>(state_->edges_on(best.partition))) /
        ctx.bal_denom;
    best.structural = best.score - lambda_ * balance;
  }
  return best;
}

ScoredPlacement AdwiseScorer::best_placement_dense(const EdgeContext& ctx) {
  RunningBest best;
  for (PartitionId p = 0; p < state_->k(); ++p) {
    best.consider(p, score_partition(ctx, p), state_->edges_on(p));
  }
  partitions_considered_ += state_->k();
  return best.placement;
}

ScoredPlacement AdwiseScorer::best_placement_sparse(const EdgeContext& ctx) {
  // Candidate partitions: R_u ∪ R_v ∪ {replicas of window neighbors} ∪
  // {least-loaded}. Everything else scores exactly λ·B(p) and is dominated
  // by the least-loaded partition (see the invariant in scoring.h).
  ++mark_epoch_;
  RunningBest best;
  auto consider = [&](PartitionId p) {
    if (mark_[p] == mark_epoch_) return;
    mark_[p] = mark_epoch_;
    ++partitions_considered_;
    best.consider(p, score_partition(ctx, p), state_->edges_on(p));
  };
  ctx.ru->for_each(consider);
  if (!ctx.self_loop) ctx.rv->for_each(consider);
  for (const PartitionId p : cs_touched_) consider(p);
  consider(state_->least_loaded());
  return best.placement;
}

double AdwiseScorer::score(const Edge& e, PartitionId p,
                           const EdgeWindow* window,
                           std::uint32_t exclude_slot) {
  assert(p < state_->k());
  const EdgeContext ctx = make_context(e, window, exclude_slot);
  return score_partition(ctx, p);
}

void AdwiseScorer::on_assignment() {
  if (!opts_.adaptive_balance) return;
  // Stream progress α = |E'|/m (Eq. 4) counts edges assigned by THIS run:
  // under restreaming the state carries prior passes' assignments, which
  // must not start α at 1 (λ would ratchet to λ_max immediately).
  const double assigned =
      static_cast<double>(state_->assigned_edges() - assigned_baseline_);
  const double m = static_cast<double>(std::max<std::size_t>(total_edges_, 1));
  const double alpha = std::min(1.0, assigned / m);
  const double tolerance = std::max(0.0, 1.0 - alpha);
  const double iota = state_->imbalance();
  lambda_ = std::clamp(lambda_ + (iota - tolerance), opts_.lambda_min,
                       opts_.lambda_max);
}

}  // namespace adwise
