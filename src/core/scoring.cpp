#include "src/core/scoring.h"

#include <algorithm>
#include <cassert>

#include "src/common/simd.h"

namespace adwise {

namespace {

// Shared argmax predicate: the dense loop iterates ids in ascending order
// and the sparse loop visits candidates in arbitrary order, so the explicit
// id tie-break makes both implement the same total order
// (score desc, load asc, id asc).
struct RunningBest {
  ScoredPlacement placement;
  std::uint64_t load = 0;

  void consider(PartitionId p, double g, std::uint64_t l) {
    if (placement.partition == kInvalidPartition || g > placement.score ||
        (g == placement.score &&
         (l < load || (l == load && p < placement.partition)))) {
      placement = {p, g};
      load = l;
    }
  }
};

// Membership bit of partition p: the dense bit row when the mirror is in
// the snapshot, ReplicaSet::contains otherwise. Same bits by the mirror
// invariant.
inline unsigned membership_bit(const std::uint64_t* row, const ReplicaSet* set,
                               std::uint32_t p) {
  if (row != nullptr) return (row[p >> 6] >> (p & 63)) & 1u;
  return set->contains(p) ? 1u : 0u;
}

// 4-bit membership mask for the aligned partition block [p, p+4). p is a
// multiple of 4 and 4 divides 64, so the nibble never straddles a row word.
inline unsigned membership_nibble(const std::uint64_t* row,
                                  const ReplicaSet* set, std::uint32_t p) {
  if (row != nullptr) {
    return static_cast<unsigned>((row[p >> 6] >> (p & 63)) & 0xF);
  }
  return static_cast<unsigned>(set->contains(p)) |
         (static_cast<unsigned>(set->contains(p + 1)) << 1) |
         (static_cast<unsigned>(set->contains(p + 2)) << 2) |
         (static_cast<unsigned>(set->contains(p + 3)) << 3);
}

// Broadcast per-edge scoring constants, hoisted out of both SIMD loops.
struct EdgeVectors {
  simd::F64x4 maxsize, denom, lambda, wu, wv, cs_norm;
};

inline EdgeVectors broadcast_context(double maxsize, double bal_denom,
                                     double lambda, double wu, double wv,
                                     double cs_norm) {
  return {simd::broadcast(maxsize), simd::broadcast(bal_denom),
          simd::broadcast(lambda),  simd::broadcast(wu),
          simd::broadcast(wv),      simd::broadcast(cs_norm)};
}

}  // namespace

AdwiseScorer::AdwiseScorer(const PartitionState& state,
                           const AdwiseOptions& opts, std::size_t total_edges)
    : state_(&state),
      opts_(opts),
      total_edges_(total_edges),
      lambda_(std::clamp(opts.lambda_init, opts.lambda_min, opts.lambda_max)),
      scratch_(state.k()),
      assigned_baseline_(state.assigned_edges()) {
  // The sparse argmax confinement (header comment) needs λ·B(p) monotone
  // decreasing in partition load, i.e. λ ≥ 0 over the whole run. A negative
  // lambda_min (or a fixed negative lambda) could violate that silently in
  // release builds, so such configurations fall back to the dense scan.
  if (opts_.lambda_min < 0.0 || lambda_ < 0.0) {
    opts_.scoring_path = ScoringPath::kDense;
  }
}

double AdwiseScorer::replica_weight(VertexId x,
                                    const PartitionSnapshot& snap) const {
  if (!opts_.degree_weighting) return 1.0;
  // Observed partial degree including the edge being scored; maxDegree is
  // the running maximum, so Ψ ∈ (0, 0.5] and the weight lies in [1.5, 2).
  const double deg = static_cast<double>(snap.degree(x)) + 1.0;
  const double max_deg =
      std::max(deg, static_cast<double>(snap.max_degree()));
  const double psi = deg / (2.0 * max_deg);
  return 2.0 - psi;
}

std::size_t AdwiseScorer::prepare_clustering(const Edge& e,
                                             const EdgeWindow* window,
                                             std::uint32_t exclude_slot,
                                             const PartitionSnapshot& snap,
                                             ScoreScratch& scratch) const {
  // Reset the previous edge's counts by walking the touched list — O(|C|)
  // of the last call, not O(k), and free when CS was off or had no window.
  for (const PartitionId p : scratch.cs_touched) scratch.cs_counts[p] = 0.0;
  scratch.cs_touched.clear();
  if (!opts_.clustering_score || window == nullptr) return 0;
  window->collect_neighbors(e, exclude_slot, opts_.clustering_neighbor_cap,
                            scratch.neighbors);
  for (const VertexId n : scratch.neighbors) {
    snap.replicas(n).for_each([&](std::uint32_t p) {
      if (scratch.cs_counts[p] == 0.0) scratch.cs_touched.push_back(p);
      scratch.cs_counts[p] += 1.0;
    });
  }
  return scratch.neighbors.size();
}

AdwiseScorer::EdgeContext AdwiseScorer::make_context(
    const Edge& e, const EdgeWindow* window, std::uint32_t exclude_slot,
    const PartitionSnapshot& snap, ScoreScratch& scratch) const {
  EdgeContext ctx;
  ctx.maxsize = static_cast<double>(snap.max_partition_size());
  const auto minsize = static_cast<double>(snap.min_partition_size());
  ctx.bal_denom = ctx.maxsize - minsize + opts_.balance_epsilon;
  ctx.wu = replica_weight(e.u, snap);
  ctx.wv = replica_weight(e.v, snap);
  ctx.lambda = lambda_;
  ctx.ru = &snap.replicas(e.u);
  ctx.rv = &snap.replicas(e.v);
  ctx.row_u = snap.replica_row(e.u);
  ctx.row_v = snap.replica_row(e.v);
  ctx.cs_counts = scratch.cs_counts.data();
  ctx.self_loop = e.v == e.u;
  const std::size_t num_neighbors =
      prepare_clustering(e, window, exclude_slot, snap, scratch);
  ctx.cs_norm =
      num_neighbors > 0 ? 1.0 / static_cast<double>(num_neighbors) : 0.0;
  return ctx;
}

double AdwiseScorer::score_partition(const EdgeContext& ctx, PartitionId p,
                                     const PartitionSnapshot& snap) {
  const double balance =
      (ctx.maxsize - static_cast<double>(snap.edges_on(p))) / ctx.bal_denom;
  double g = ctx.lambda * balance;
  if (ctx.ru->contains(p)) g += ctx.wu;
  if (!ctx.self_loop && ctx.rv->contains(p)) g += ctx.wv;
  g += ctx.cs_counts[p] * ctx.cs_norm;
  return g;
}

ScoredPlacement AdwiseScorer::best_placement(const Edge& e,
                                             const EdgeWindow* window,
                                             std::uint32_t exclude_slot) {
  return best_placement(e, window, exclude_slot, state_->snapshot(), scratch_);
}

ScoredPlacement AdwiseScorer::best_placement(const Edge& e,
                                             const EdgeWindow* window,
                                             std::uint32_t exclude_slot,
                                             const PartitionSnapshot& snap,
                                             ScoreScratch& scratch) const {
  const EdgeContext ctx = make_context(e, window, exclude_slot, snap, scratch);
  ScoringPath path = opts_.scoring_path;
  if (path == ScoringPath::kAuto) {
    // Crossover: the sparse walk visits at most |R_u| + |R_v| + |touched|
    // (+1 for least-loaded) scattered partitions with dedup overhead; once
    // that bound reaches k, the sequential dense loop is cheaper.
    const std::size_t bound = ctx.ru->size() +
                              (ctx.self_loop ? 0 : ctx.rv->size()) +
                              scratch.cs_touched.size();
    path = bound >= snap.k() ? ScoringPath::kDense : ScoringPath::kSparse;
  }
  ScoredPlacement best =
      path == ScoringPath::kSparse
          ? (opts_.simd_scoring ? best_placement_sparse_simd(ctx, snap, scratch)
                                : best_placement_sparse(ctx, snap, scratch))
          : (opts_.simd_scoring ? best_placement_dense_simd(ctx, snap, scratch)
                                : best_placement_dense(ctx, snap, scratch));
  if (best.partition != kInvalidPartition) {
    const double balance =
        (ctx.maxsize - static_cast<double>(snap.edges_on(best.partition))) /
        ctx.bal_denom;
    best.structural = best.score - ctx.lambda * balance;
  }
  return best;
}

ScoredPlacement AdwiseScorer::best_placement_dense(
    const EdgeContext& ctx, const PartitionSnapshot& snap,
    ScoreScratch& scratch) const {
  RunningBest best;
  for (PartitionId p = 0; p < snap.k(); ++p) {
    best.consider(p, score_partition(ctx, p, snap), snap.edges_on(p));
  }
  scratch.partitions_considered += snap.k();
  ++scratch.dense_placements;
  return best.placement;
}

ScoredPlacement AdwiseScorer::best_placement_sparse(
    const EdgeContext& ctx, const PartitionSnapshot& snap,
    ScoreScratch& scratch) const {
  // Candidate partitions: R_u ∪ R_v ∪ {replicas of window neighbors} ∪
  // {least-loaded}. Everything else scores exactly λ·B(p) and is dominated
  // by the least-loaded partition (see the invariant in scoring.h).
  ++scratch.mark_epoch;
  RunningBest best;
  auto consider = [&](PartitionId p) {
    if (scratch.mark[p] == scratch.mark_epoch) return;
    scratch.mark[p] = scratch.mark_epoch;
    ++scratch.partitions_considered;
    best.consider(p, score_partition(ctx, p, snap), snap.edges_on(p));
  };
  ctx.ru->for_each(consider);
  if (!ctx.self_loop) ctx.rv->for_each(consider);
  for (const PartitionId p : scratch.cs_touched) consider(p);
  consider(snap.least_loaded());
  ++scratch.sparse_placements;
  return best.placement;
}

ScoredPlacement AdwiseScorer::best_placement_dense_simd(
    const EdgeContext& ctx, const PartitionSnapshot& snap,
    ScoreScratch& scratch) const {
  // Four partitions per step over the contiguous SoA size array; the op
  // order per lane is exactly score_partition's (sub, div, mul, two
  // blended adds, mul, add), so every staged score is the bit-identical
  // scalar value. The argmax then replays the canonical ascending-id scan.
  const std::uint32_t k = snap.k();
  const double* sizes = snap.partition_sizes_f64();
  double* scores = scratch.scores.data();
  const EdgeVectors ev =
      broadcast_context(ctx.maxsize, ctx.bal_denom, ctx.lambda, ctx.wu,
                        ctx.wv, ctx.cs_norm);
  std::uint32_t p = 0;
  for (; p + simd::kLanes <= k; p += simd::kLanes) {
    simd::F64x4 g = simd::mul(
        ev.lambda,
        simd::div(simd::sub(ev.maxsize, simd::load(sizes + p)), ev.denom));
    g = simd::blend(g, simd::add(g, ev.wu),
                    membership_nibble(ctx.row_u, ctx.ru, p));
    if (!ctx.self_loop) {
      g = simd::blend(g, simd::add(g, ev.wv),
                      membership_nibble(ctx.row_v, ctx.rv, p));
    }
    g = simd::add(g, simd::mul(simd::load(ctx.cs_counts + p), ev.cs_norm));
    simd::store(scores + p, g);
  }
  for (; p < k; ++p) scores[p] = score_partition(ctx, p, snap);
  RunningBest best;
  for (std::uint32_t q = 0; q < k; ++q) {
    best.consider(q, scores[q], snap.edges_on(q));
  }
  scratch.partitions_considered += k;
  ++scratch.dense_placements;
  return best.placement;
}

ScoredPlacement AdwiseScorer::best_placement_sparse_simd(
    const EdgeContext& ctx, const PartitionSnapshot& snap,
    ScoreScratch& scratch) const {
  // Identical candidate set, visit order, dedup and counters as the scalar
  // sparse walk — only the score arithmetic is packed four candidates per
  // vector (lane gathers from the SoA arrays; the vector divide is the
  // win at |C| >= 4, i.e. k >= 32 workloads where replica sets are wide).
  ++scratch.mark_epoch;
  auto& cand = scratch.candidates;
  cand.clear();
  auto collect = [&](PartitionId p) {
    if (scratch.mark[p] == scratch.mark_epoch) return;
    scratch.mark[p] = scratch.mark_epoch;
    cand.push_back(p);
  };
  ctx.ru->for_each(collect);
  if (!ctx.self_loop) ctx.rv->for_each(collect);
  for (const PartitionId p : scratch.cs_touched) collect(p);
  collect(snap.least_loaded());
  scratch.partitions_considered += cand.size();

  const double* sizes = snap.partition_sizes_f64();
  double* scores = scratch.scores.data();
  const std::size_t n = cand.size();
  const EdgeVectors ev =
      broadcast_context(ctx.maxsize, ctx.bal_denom, ctx.lambda, ctx.wu,
                        ctx.wv, ctx.cs_norm);
  std::size_t i = 0;
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    const PartitionId c0 = cand[i], c1 = cand[i + 1], c2 = cand[i + 2],
                      c3 = cand[i + 3];
    simd::F64x4 g = simd::mul(
        ev.lambda,
        simd::div(simd::sub(ev.maxsize, simd::gather(sizes, c0, c1, c2, c3)),
                  ev.denom));
    const unsigned nu = membership_bit(ctx.row_u, ctx.ru, c0) |
                        (membership_bit(ctx.row_u, ctx.ru, c1) << 1) |
                        (membership_bit(ctx.row_u, ctx.ru, c2) << 2) |
                        (membership_bit(ctx.row_u, ctx.ru, c3) << 3);
    g = simd::blend(g, simd::add(g, ev.wu), nu);
    if (!ctx.self_loop) {
      const unsigned nv = membership_bit(ctx.row_v, ctx.rv, c0) |
                          (membership_bit(ctx.row_v, ctx.rv, c1) << 1) |
                          (membership_bit(ctx.row_v, ctx.rv, c2) << 2) |
                          (membership_bit(ctx.row_v, ctx.rv, c3) << 3);
      g = simd::blend(g, simd::add(g, ev.wv), nv);
    }
    g = simd::add(
        g, simd::mul(simd::gather(ctx.cs_counts, c0, c1, c2, c3), ev.cs_norm));
    simd::store(scores + i, g);
  }
  for (; i < n; ++i) scores[i] = score_partition(ctx, cand[i], snap);
  RunningBest best;
  for (std::size_t j = 0; j < n; ++j) {
    best.consider(cand[j], scores[j], snap.edges_on(cand[j]));
  }
  ++scratch.sparse_placements;
  return best.placement;
}

double AdwiseScorer::score(const Edge& e, PartitionId p,
                           const EdgeWindow* window,
                           std::uint32_t exclude_slot) {
  assert(p < state_->k());
  const PartitionSnapshot snap = state_->snapshot();
  const EdgeContext ctx = make_context(e, window, exclude_slot, snap, scratch_);
  return score_partition(ctx, p, snap);
}

void AdwiseScorer::absorb(ScoreScratch& worker) {
  scratch_.partitions_considered += worker.partitions_considered;
  scratch_.dense_placements += worker.dense_placements;
  scratch_.sparse_placements += worker.sparse_placements;
  worker.partitions_considered = 0;
  worker.dense_placements = 0;
  worker.sparse_placements = 0;
}

void AdwiseScorer::on_assignment() {
  if (!opts_.adaptive_balance) return;
  // Stream progress α = |E'|/m (Eq. 4) counts edges assigned by THIS run:
  // under restreaming the state carries prior passes' assignments, which
  // must not start α at 1 (λ would ratchet to λ_max immediately).
  const double assigned =
      static_cast<double>(state_->assigned_edges() - assigned_baseline_);
  const double m = static_cast<double>(std::max<std::size_t>(total_edges_, 1));
  const double alpha = std::min(1.0, assigned / m);
  const double tolerance = std::max(0.0, 1.0 - alpha);
  const double iota = state_->imbalance();
  lambda_ = std::clamp(lambda_ + (iota - tolerance), opts_.lambda_min,
                       opts_.lambda_max);
}

}  // namespace adwise
