#include "src/core/scoring.h"

#include <algorithm>
#include <cassert>

namespace adwise {

AdwiseScorer::AdwiseScorer(const PartitionState& state,
                           const AdwiseOptions& opts, std::size_t total_edges)
    : state_(&state),
      opts_(opts),
      total_edges_(total_edges),
      lambda_(std::clamp(opts.lambda_init, opts.lambda_min, opts.lambda_max)),
      cs_counts_(state.k(), 0.0) {}

double AdwiseScorer::replica_weight(VertexId x) const {
  if (!opts_.degree_weighting) return 1.0;
  // Observed partial degree including the edge being scored; maxDegree is
  // the running maximum, so Ψ ∈ (0, 0.5] and the weight lies in [1.5, 2).
  const double deg = static_cast<double>(state_->degree(x)) + 1.0;
  const double max_deg =
      std::max(deg, static_cast<double>(state_->max_degree()));
  const double psi = deg / (2.0 * max_deg);
  return 2.0 - psi;
}

std::size_t AdwiseScorer::prepare_clustering(const Edge& e,
                                             const EdgeWindow* window,
                                             std::uint32_t exclude_slot) {
  std::fill(cs_counts_.begin(), cs_counts_.end(), 0.0);
  if (!opts_.clustering_score || window == nullptr) return 0;
  window->collect_neighbors(e, exclude_slot, opts_.clustering_neighbor_cap,
                            neighbor_scratch_);
  for (const VertexId n : neighbor_scratch_) {
    state_->replicas(n).for_each([&](std::uint32_t p) { cs_counts_[p] += 1.0; });
  }
  return neighbor_scratch_.size();
}

ScoredPlacement AdwiseScorer::best_placement(const Edge& e,
                                             const EdgeWindow* window,
                                             std::uint32_t exclude_slot) {
  const auto maxsize = static_cast<double>(state_->max_partition_size());
  const auto minsize = static_cast<double>(state_->min_partition_size());
  const double bal_denom = maxsize - minsize + opts_.balance_epsilon;
  const double wu = replica_weight(e.u);
  const double wv = replica_weight(e.v);
  const ReplicaSet& ru = state_->replicas(e.u);
  const ReplicaSet& rv = state_->replicas(e.v);
  const std::size_t num_neighbors = prepare_clustering(e, window, exclude_slot);
  const double cs_norm =
      num_neighbors > 0 ? 1.0 / static_cast<double>(num_neighbors) : 0.0;

  ScoredPlacement best;
  std::uint64_t best_load = 0;
  for (PartitionId p = 0; p < state_->k(); ++p) {
    const double balance =
        (maxsize - static_cast<double>(state_->edges_on(p))) / bal_denom;
    double g = lambda_ * balance;
    if (ru.contains(p)) g += wu;
    if (e.v != e.u && rv.contains(p)) g += wv;
    g += cs_counts_[p] * cs_norm;
    const std::uint64_t load = state_->edges_on(p);
    if (best.partition == kInvalidPartition || g > best.score ||
        (g == best.score && load < best_load)) {
      best = {p, g};
      best_load = load;
    }
  }
  return best;
}

double AdwiseScorer::score(const Edge& e, PartitionId p,
                           const EdgeWindow* window,
                           std::uint32_t exclude_slot) {
  assert(p < state_->k());
  const auto maxsize = static_cast<double>(state_->max_partition_size());
  const auto minsize = static_cast<double>(state_->min_partition_size());
  const double balance =
      (maxsize - static_cast<double>(state_->edges_on(p))) /
      (maxsize - minsize + opts_.balance_epsilon);
  double g = lambda_ * balance;
  if (state_->replicas(e.u).contains(p)) g += replica_weight(e.u);
  if (e.v != e.u && state_->replicas(e.v).contains(p)) g += replica_weight(e.v);
  const std::size_t num_neighbors = prepare_clustering(e, window, exclude_slot);
  if (num_neighbors > 0) {
    g += cs_counts_[p] / static_cast<double>(num_neighbors);
  }
  return g;
}

void AdwiseScorer::on_assignment() {
  if (!opts_.adaptive_balance) return;
  const double assigned = static_cast<double>(state_->assigned_edges());
  const double m = static_cast<double>(std::max<std::size_t>(total_edges_, 1));
  const double alpha = std::min(1.0, assigned / m);
  const double tolerance = std::max(0.0, 1.0 - alpha);
  const double iota = state_->imbalance();
  lambda_ = std::clamp(lambda_ + (iota - tolerance), opts_.lambda_min,
                       opts_.lambda_max);
}

}  // namespace adwise
