#include "src/core/window.h"

#include <algorithm>
#include <cassert>

namespace adwise {

std::uint32_t EdgeWindow::insert(const Edge& e) {
  assert(e.u < heads_.size() && e.v < heads_.size());
  std::uint32_t id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
  } else {
    id = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[id];
  s = Slot{};
  s.edge = e;
  s.occupied = true;
  s.sequence = next_sequence_++;
  link(id, 0, e.u);
  if (e.v != e.u) link(id, 1, e.v);
  ++size_;
  return id;
}

void EdgeWindow::remove(std::uint32_t id) {
  Slot& s = slots_[id];
  assert(s.occupied);
  set_candidate(id, false);
  unlink(id, 0, s.edge.u);
  if (s.edge.v != s.edge.u) unlink(id, 1, s.edge.v);
  s.occupied = false;
  free_.push_back(id);
  --size_;
}

void EdgeWindow::set_candidate(std::uint32_t id, bool candidate) {
  Slot& s = slots_[id];
  const bool is_cand = s.candidate_pos != npos;
  if (candidate == is_cand) return;
  if (candidate) {
    s.candidate_pos = static_cast<std::uint32_t>(candidates_.size());
    candidates_.push_back(id);
  } else {
    const std::uint32_t pos = s.candidate_pos;
    const std::uint32_t moved = candidates_.back();
    candidates_[pos] = moved;
    slots_[moved].candidate_pos = pos;
    candidates_.pop_back();
    s.candidate_pos = npos;
  }
}

void EdgeWindow::collect_neighbors(const Edge& e, std::uint32_t exclude_slot,
                                   std::uint32_t cap,
                                   std::vector<VertexId>& out) const {
  out.clear();
  auto gather = [&](VertexId v) {
    std::uint32_t id = heads_[v];
    while (id != npos && out.size() < cap) {
      const Slot& s = slots_[id];
      const int side = s.edge.u == v ? 0 : 1;
      if (id != exclude_slot) {
        out.push_back(side == 0 ? s.edge.v : s.edge.u);
      }
      id = s.next[side];
    }
  };
  gather(e.u);
  if (e.v != e.u) gather(e.v);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

void EdgeWindow::link(std::uint32_t id, int side, VertexId v) {
  Slot& s = slots_[id];
  s.prev[side] = npos;
  s.next[side] = heads_[v];
  if (heads_[v] != npos) {
    Slot& head = slots_[heads_[v]];
    const int head_side = head.edge.u == v ? 0 : 1;
    head.prev[head_side] = id;
  }
  heads_[v] = id;
}

void EdgeWindow::unlink(std::uint32_t id, int side, VertexId v) {
  Slot& s = slots_[id];
  const std::uint32_t prev = s.prev[side];
  const std::uint32_t next = s.next[side];
  if (prev != npos) {
    Slot& ps = slots_[prev];
    const int pside = ps.edge.u == v ? 0 : 1;
    ps.next[pside] = next;
  } else {
    heads_[v] = next;
  }
  if (next != npos) {
    Slot& ns = slots_[next];
    const int nside = ns.edge.u == v ? 0 : 1;
    ns.prev[nside] = prev;
  }
  s.prev[side] = npos;
  s.next[side] = npos;
}

}  // namespace adwise
