#include "src/core/window.h"

#include <algorithm>
#include <cassert>

namespace adwise {

std::uint32_t EdgeWindow::insert(const Edge& e) {
  assert(e.u < heads_.size() && e.v < heads_.size());
  std::uint32_t id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
  } else {
    id = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[id];
  s = Slot{};
  s.edge = e;
  s.occupied = true;
  s.sequence = next_sequence_++;
  link(id, 0, e.u);
  if (e.v != e.u) link(id, 1, e.v);
  ++size_;
  return id;
}

void EdgeWindow::remove(std::uint32_t id) {
  Slot& s = slots_[id];
  assert(s.occupied);
  set_candidate(id, false);
  unlink(id, 0, s.edge.u);
  if (s.edge.v != s.edge.u) unlink(id, 1, s.edge.v);
  s.occupied = false;
  free_.push_back(id);
  --size_;
}

void EdgeWindow::set_candidate(std::uint32_t id, bool candidate) {
  Slot& s = slots_[id];
  const bool is_cand = s.candidate_pos != npos;
  if (candidate == is_cand) return;
  if (candidate) {
    s.candidate_pos = static_cast<std::uint32_t>(candidates_.size());
    candidates_.push_back(id);
  } else {
    const std::uint32_t pos = s.candidate_pos;
    const std::uint32_t moved = candidates_.back();
    candidates_[pos] = moved;
    slots_[moved].candidate_pos = pos;
    candidates_.pop_back();
    s.candidate_pos = npos;
  }
}

void EdgeWindow::collect_neighbors(const Edge& e, std::uint32_t exclude_slot,
                                   std::uint32_t cap,
                                   std::vector<VertexId>& out) const {
  out.clear();
  auto gather = [&](VertexId v) {
    std::uint32_t id = heads_[v];
    while (id != npos && out.size() < cap) {
      const Slot& s = slots_[id];
      const int side = s.edge.u == v ? 0 : 1;
      if (id != exclude_slot) {
        out.push_back(side == 0 ? s.edge.v : s.edge.u);
      }
      id = s.next[side];
    }
  };
  gather(e.u);
  if (e.v != e.u) gather(e.v);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

void EdgeWindow::save(ByteWriter& out) const {
  out.u64(slots_.size());
  for (const Slot& s : slots_) {
    out.u32(s.edge.u);
    out.u32(s.edge.v);
    out.f64(s.best_score);
    out.f64(s.structural_score);
    out.u32(s.best_partition);
    out.boolean(s.occupied);
    out.boolean(s.dirty);
    out.u64(s.scored_at);
    out.u64(s.score_version);
    out.u64(s.sequence);
    out.u32(s.next[0]);
    out.u32(s.next[1]);
    out.u32(s.prev[0]);
    out.u32(s.prev[1]);
    out.u32(s.candidate_pos);
  }
  out.u64(free_.size());
  for (const std::uint32_t id : free_) out.u32(id);
  out.u64(candidates_.size());
  for (const std::uint32_t id : candidates_) out.u32(id);
  out.u64(size_);
  out.u64(next_sequence_);
}

void EdgeWindow::load(ByteReader& in) {
  const std::uint64_t num_slots = in.u64();
  slots_.assign(static_cast<std::size_t>(num_slots), Slot{});
  for (Slot& s : slots_) {
    s.edge.u = in.u32();
    s.edge.v = in.u32();
    s.best_score = in.f64();
    s.structural_score = in.f64();
    s.best_partition = in.u32();
    s.occupied = in.boolean();
    s.dirty = in.boolean();
    s.scored_at = in.u64();
    s.score_version = in.u64();
    s.sequence = in.u64();
    s.next[0] = in.u32();
    s.next[1] = in.u32();
    s.prev[0] = in.u32();
    s.prev[1] = in.u32();
    s.candidate_pos = in.u32();
  }
  const std::uint64_t num_free = in.u64();
  free_.resize(static_cast<std::size_t>(num_free));
  for (std::uint32_t& id : free_) id = in.u32();
  const std::uint64_t num_candidates = in.u64();
  candidates_.resize(static_cast<std::size_t>(num_candidates));
  for (std::uint32_t& id : candidates_) id = in.u32();
  size_ = static_cast<std::size_t>(in.u64());
  next_sequence_ = in.u64();
  // Rebuild the incidence heads from the slot links: a slot whose prev on
  // one side is npos heads that endpoint's list.
  std::fill(heads_.begin(), heads_.end(), npos);
  for (std::uint32_t id = 0; id < slots_.size(); ++id) {
    const Slot& s = slots_[id];
    if (!s.occupied) continue;
    if (s.prev[0] == npos) heads_[s.edge.u] = id;
    if (s.edge.v != s.edge.u && s.prev[1] == npos) heads_[s.edge.v] = id;
  }
}

void EdgeWindow::link(std::uint32_t id, int side, VertexId v) {
  Slot& s = slots_[id];
  s.prev[side] = npos;
  s.next[side] = heads_[v];
  if (heads_[v] != npos) {
    Slot& head = slots_[heads_[v]];
    const int head_side = head.edge.u == v ? 0 : 1;
    head.prev[head_side] = id;
  }
  heads_[v] = id;
}

void EdgeWindow::unlink(std::uint32_t id, int side, VertexId v) {
  Slot& s = slots_[id];
  const std::uint32_t prev = s.prev[side];
  const std::uint32_t next = s.next[side];
  if (prev != npos) {
    Slot& ps = slots_[prev];
    const int pside = ps.edge.u == v ? 0 : 1;
    ps.next[pside] = next;
  } else {
    heads_[v] = next;
  }
  if (next != npos) {
    Slot& ns = slots_[next];
    const int nside = ns.edge.u == v ? 0 : 1;
    ns.prev[nside] = prev;
  }
  s.prev[side] = npos;
  s.next[side] = npos;
}

}  // namespace adwise
