// Edge window — the widened "edge universe" of ADWISE (§II-C, §III).
//
// Holds up to w in-flight edges with:
//   - per-vertex incidence lists (intrusive doubly-linked through the slots)
//     so replica-set changes can touch exactly the affected window edges and
//     the clustering score can enumerate window-local neighborhoods N(u);
//   - an explicit candidate set (high-score edges, §III-B) with O(1)
//     add/remove; every non-candidate slot is implicitly in the secondary
//     set Q.
//
// Slot ids are stable for the lifetime of an edge in the window and are
// recycled through a free list afterwards.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "src/common/bytes.h"
#include "src/graph/graph.h"
#include "src/partition/types.h"

namespace adwise {

class EdgeWindow {
 public:
  static constexpr std::uint32_t npos = std::numeric_limits<std::uint32_t>::max();

  struct Slot {
    Edge edge;
    double best_score = 0.0;
    // Balance-independent component of best_score (R + CS): the drift-
    // immune priority the heap selector uses for the secondary set.
    double structural_score = 0.0;
    PartitionId best_partition = kInvalidPartition;
    bool occupied = false;
    // Incident replica sets changed since best_score was computed.
    bool dirty = false;
    // Assignment round at which best_score was last computed (staleness
    // bound for the cached balance term).
    std::uint64_t scored_at = 0;
    // Bumped on every (re-)score; heap entries carry the version they were
    // pushed with, so stale entries are recognized and skipped on pop.
    std::uint64_t score_version = 0;
    // Monotone insertion number: score ties resolve FIFO (stream order), so
    // lazy and eager traversal make identical decisions.
    std::uint64_t sequence = 0;
    // Links of the two per-endpoint incidence lists; index 0 chains slots
    // through edge.u's list, index 1 through edge.v's list.
    std::uint32_t next[2] = {npos, npos};
    std::uint32_t prev[2] = {npos, npos};
    // Position in the candidate vector, npos when in the secondary set.
    std::uint32_t candidate_pos = npos;
  };

  explicit EdgeWindow(VertexId num_vertices)
      : heads_(num_vertices, npos) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  // Inserts e; returns its slot id. e's endpoints must be < num_vertices.
  std::uint32_t insert(const Edge& e);

  // Removes the edge in the given slot (also from the candidate set).
  void remove(std::uint32_t slot_id);

  [[nodiscard]] Slot& slot(std::uint32_t id) { return slots_[id]; }
  [[nodiscard]] const Slot& slot(std::uint32_t id) const { return slots_[id]; }

  [[nodiscard]] bool is_candidate(std::uint32_t id) const {
    return slots_[id].candidate_pos != npos;
  }
  void set_candidate(std::uint32_t id, bool candidate);

  [[nodiscard]] std::span<const std::uint32_t> candidates() const {
    return candidates_;
  }

  // Calls fn(slot_id) for every occupied slot.
  template <typename Fn>
  void for_each_slot(Fn&& fn) const {
    for (std::uint32_t id = 0; id < slots_.size(); ++id) {
      if (slots_[id].occupied) fn(id);
    }
  }

  // Calls fn(slot_id) for every window edge incident to v.
  template <typename Fn>
  void for_each_incident(VertexId v, Fn&& fn) const {
    std::uint32_t id = heads_[v];
    while (id != npos) {
      const Slot& s = slots_[id];
      const int side = s.edge.u == v ? 0 : 1;
      const std::uint32_t next = s.next[side];
      fn(id);
      id = next;
    }
  }

  // Window-local neighborhood N(u) ∪ N(v) of edge e (Eq. 6): the other
  // endpoints of window edges incident to e's endpoints, excluding
  // exclude_slot (the slot of e itself), deduplicated, capped at cap
  // entries. Results are appended to out (cleared first).
  void collect_neighbors(const Edge& e, std::uint32_t exclude_slot,
                         std::uint32_t cap, std::vector<VertexId>& out) const;

  // Checkpoint support. Slots are serialized verbatim — including
  // unoccupied ones, whose recycled content is behaviorally irrelevant but
  // whose ids sit in the free list, so the free-list order and
  // next_sequence_ must round-trip exactly for future insertions to pick
  // the same slots and sequence numbers. The per-vertex incidence heads
  // are not stored: load() rebuilds them from the slot links (an occupied
  // slot with prev[side] == npos is the head of that endpoint's list).
  void save(ByteWriter& out) const;
  // The window must have been constructed with the same num_vertices.
  void load(ByteReader& in);

 private:
  void link(std::uint32_t id, int side, VertexId v);
  void unlink(std::uint32_t id, int side, VertexId v);

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::vector<std::uint32_t> heads_;
  std::vector<std::uint32_t> candidates_;
  std::size_t size_ = 0;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace adwise
