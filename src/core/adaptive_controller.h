// Adaptive window controller (paper §III-A, Algorithm 1 lines 11–17).
//
// After every w assignments the controller revisits the window size:
//   w <- 2w     if (C1) the mean best-score of the batch did not degrade
//               relative to the previous batch AND (C2) the measured mean
//               per-edge latency lat_w stays below the per-edge budget
//               L' / |E'| (remaining budget over remaining edges);
//   w <- w/2    if C2 is violated;
//   w unchanged otherwise.
// A latency preference of 0 never satisfies C2, so w collapses to 1 —
// single-edge streaming, exactly as the paper notes.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "src/common/clock.h"
#include "src/common/stats.h"
#include "src/core/options.h"

namespace adwise {

class AdaptiveController {
 public:
  AdaptiveController(const AdwiseOptions& opts, const Clock& clock,
                     std::size_t total_edges);

  // Reports one completed assignment with its chosen score; assigned is the
  // total number of assignments so far. Performs the adaptive step when a
  // full batch of window_size() assignments has been observed.
  void on_assignment(double score, std::uint64_t assigned);

  [[nodiscard]] std::uint64_t window_size() const { return window_; }

  // Introspection (used by tests and by the partitioner's report).
  [[nodiscard]] std::uint64_t adaptations() const { return adaptations_; }
  [[nodiscard]] std::uint64_t max_window_reached() const { return max_seen_; }

  // One sample per adaptation step: the window size chosen after seeing
  // `assigned` assignments. Lets users plot the controller's trajectory
  // (ramp-up, equilibrium, end-of-budget shrink).
  struct TracePoint {
    std::uint64_t assigned;
    std::uint64_t window;
  };
  [[nodiscard]] const std::vector<TracePoint>& trace() const { return trace_; }

 private:
  void adapt(std::uint64_t assigned);

  const AdwiseOptions opts_;
  const Clock* clock_;
  std::size_t total_edges_;
  std::chrono::nanoseconds start_;
  std::chrono::nanoseconds batch_start_;
  RunningMean batch_score_;
  double prev_batch_score_ = 0.0;
  bool has_prev_batch_ = false;
  std::uint64_t window_;
  std::uint64_t batch_count_ = 0;
  std::uint64_t adaptations_ = 0;
  std::uint64_t max_seen_;
  std::vector<TracePoint> trace_;
};

}  // namespace adwise
