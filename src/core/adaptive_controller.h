// Adaptive window controller (paper §III-A, Algorithm 1 lines 11–17).
//
// After every w assignments the controller revisits the window size:
//   w <- 2w     if (C1) the mean best-score of the batch did not degrade
//               relative to the previous batch AND (C2) the measured mean
//               per-edge latency lat_w stays below the per-edge budget
//               L' / |E'| (remaining budget over remaining edges);
//   w <- w/2    if C2 is violated;
//   w unchanged otherwise.
// A latency preference of 0 never satisfies C2, so w collapses to 1 —
// single-edge streaming, exactly as the paper notes.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/stats.h"
#include "src/core/options.h"

namespace adwise {

// Adapts the parallel scorer's batch-size cutoff (the smallest batch worth
// handing to the thread pool) from measured batch timings, the same
// measure-and-steer style as the window controller above.
//
// Model: scoring a batch of n items costs n*c serially and o + n*c/s on the
// pool (c = per-item cost, o = fan-out overhead, s = concurrency slots), so
// the pool wins once n exceeds n* = o / (c * (1 - 1/s)). Both c and o are
// EWMAs of observed batch timings; because small-batch regimes would never
// sample o, every probe_interval-th sub-cutoff batch is routed to the pool
// as a probe. Zero-length timing samples (FakeClock) are ignored, so runs
// under an injected test clock keep the configured cutoff — and the cutoff
// never affects placement decisions anyway (pool == serial, scoring.h).
class BatchCutoffController {
 public:
  BatchCutoffController(const AdwiseOptions& opts, unsigned slots);

  // Current cutoff: batches of at least this many items go to the pool.
  [[nodiscard]] std::uint64_t cutoff() const { return cutoff_; }

  // True when a batch of n items below the cutoff should be routed to the
  // pool anyway to sample the fan-out overhead.
  [[nodiscard]] bool probe(std::size_t n);

  // Records a completed batch scoring pass and re-derives the cutoff.
  void observe(std::size_t n, bool pooled, std::chrono::nanoseconds elapsed);

  [[nodiscard]] std::uint64_t adaptations() const { return adaptations_; }
  [[nodiscard]] double per_item_ns() const { return per_item_ns_.value(); }
  [[nodiscard]] double overhead_ns() const { return overhead_ns_.value(); }

 private:
  static constexpr std::uint64_t kMinCutoff = 2;
  static constexpr std::uint64_t kMaxCutoff = 4096;
  static constexpr std::uint64_t kProbeInterval = 64;

  bool adaptive_;
  double slots_;
  std::uint64_t cutoff_;
  Ewma per_item_ns_{0.2};   // serial per-item scoring cost
  Ewma overhead_ns_{0.2};   // pool fan-out overhead per batch
  std::uint64_t serial_batches_ = 0;
  std::uint64_t adaptations_ = 0;
};

// Adapts the heap selector's drain heuristics — drain_rescore_budget and
// demotion_sweep_interval — from the observed forced-secondary rate, with
// the window controller's trial-and-check discipline (§III-A, C1): a
// speculative change sticks only if the feedback signal actually improves.
//
// A drain walk that ends without promoting anything (the forced-secondary
// case) can mean two very different things. If the walk exhausted its
// rescore budget, a deeper walk might have surfaced a promotable slot — a
// budget-limited drain. If the walk ran the secondary heap dry, no budget
// helps: every score is simply below Theta. Growing on the forced rate
// alone therefore runs away on theta-limited workloads (measured: budget
// pinned at the cap, 8x the rescore work, no quality gain), so growth is
// gated on the drains being budget-limited AND run as a one-period trial:
// if the forced rate does not drop, the previous budget/interval are
// restored and retries back off. A persistently low forced rate decays
// both values back toward the configured floors. Purely counter-driven —
// no clock — so runs with identical options adapt identically and the
// serial/parallel decision identity is preserved.
class DrainController {
 public:
  explicit DrainController(const AdwiseOptions& opts);

  [[nodiscard]] std::uint64_t rescore_budget() const { return budget_; }
  [[nodiscard]] std::uint64_t sweep_interval() const { return interval_; }

  // Reports one completed drain walk. forced = it ended without promoting
  // anything; budget_limited = it stopped because the rescore budget ran
  // out (rather than the secondary heap running dry).
  void observe_drain(bool forced, bool budget_limited);

  [[nodiscard]] std::uint64_t adaptations() const { return adaptations_; }

  // Checkpoint support: every counter the purely counter-driven adaptation
  // reads (floors/caps are reconstructed from options at construction).
  void save(ByteWriter& out) const;
  void load(ByteReader& in);

 private:
  // Drains per decision: large enough that a 25% forced-rate drop clears
  // the period's sampling noise (sigma ~ sqrt(p(1-p)/64) ~ 0.06) — with
  // short periods, lucky trials pass the check and a useless doubled
  // budget sticks forever.
  static constexpr std::uint64_t kPeriod = 64;
  static constexpr std::uint64_t kCooldown = 4;    // periods after a revert
  // Growth is bounded to 4x the configured floors: each kept doubling
  // buys a >= 25% forced-rate drop but doubles the per-drain rescore bill,
  // and past 4x the compounding cost dominates any remaining quality gain
  // on every workload measured (this is a latency-first default; raise
  // drain_rescore_budget itself to spend more).
  static constexpr std::uint64_t kGrowthCap = 4;
  // A growth trial doubles the drain cost, so it must buy a proportionate
  // drop in the forced rate to stick — a marginal drop (measured: ~13% per
  // doubling on theta-limited workloads) would compound into an 8x-cost
  // budget for sub-percent quality.
  static constexpr double kImprovementFraction = 0.25;

  void end_period();

  bool adaptive_;
  std::uint64_t budget_floor_;
  std::uint64_t interval_floor_;
  std::uint64_t budget_cap_;
  std::uint64_t interval_cap_;
  std::uint64_t budget_;
  std::uint64_t interval_;
  std::uint64_t drains_ = 0;
  std::uint64_t forced_ = 0;
  std::uint64_t limited_ = 0;
  // In-flight growth trial: the values to restore and the forced rate the
  // trial must beat.
  bool trial_ = false;
  std::uint64_t trial_budget_ = 0;
  std::uint64_t trial_interval_ = 0;
  double trial_baseline_ = 0.0;
  std::uint64_t cooldown_ = 0;
  std::uint64_t adaptations_ = 0;
};

class AdaptiveController {
 public:
  AdaptiveController(const AdwiseOptions& opts, const Clock& clock,
                     std::size_t total_edges);

  // Reports one completed assignment with its chosen score; assigned is the
  // total number of assignments so far. Performs the adaptive step when a
  // full batch of window_size() assignments has been observed.
  void on_assignment(double score, std::uint64_t assigned);

  [[nodiscard]] std::uint64_t window_size() const { return window_; }

  // Introspection (used by tests and by the partitioner's report).
  [[nodiscard]] std::uint64_t adaptations() const { return adaptations_; }
  [[nodiscard]] std::uint64_t max_window_reached() const { return max_seen_; }

  // One sample per adaptation step: the window size chosen after seeing
  // `assigned` assignments. Lets users plot the controller's trajectory
  // (ramp-up, equilibrium, end-of-budget shrink).
  struct TracePoint {
    std::uint64_t assigned;
    std::uint64_t window;
  };
  [[nodiscard]] const std::vector<TracePoint>& trace() const { return trace_; }

  // Checkpoint support. The clock anchors (start_, batch_start_) are NOT
  // serialized: load() re-bases both to clock->now(). That is only exact
  // for clock-free runs (latency_preference_ms < 0, where C2 never consults
  // them) — which is precisely the precondition under which the partitioner
  // offers checkpointing at all.
  void save(ByteWriter& out) const;
  void load(ByteReader& in);

 private:
  void adapt(std::uint64_t assigned);

  const AdwiseOptions opts_;
  const Clock* clock_;
  std::size_t total_edges_;
  std::chrono::nanoseconds start_;
  std::chrono::nanoseconds batch_start_;
  RunningMean batch_score_;
  double prev_batch_score_ = 0.0;
  bool has_prev_batch_ = false;
  std::uint64_t window_;
  std::uint64_t batch_count_ = 0;
  std::uint64_t adaptations_ = 0;
  std::uint64_t max_seen_;
  std::vector<TracePoint> trace_;
};

}  // namespace adwise
