// Configuration of the ADWISE partitioner.
#pragma once

#include <cstdint>

#include "src/common/clock.h"

namespace adwise {

// Placement-search implementation of AdwiseScorer::best_placement. All
// three produce bit-identical decisions (the sparse confinement is exact —
// see the invariant note in scoring.h); they differ only in cost.
enum class ScoringPath : std::uint8_t {
  // Per call: the dense O(k) scan when |R_u| + |R_v| + |touched window
  // neighbors| >= k (a sequential loop over k loads beats a scattered
  // candidate walk of the same size), the sparse enumeration otherwise.
  kAuto,
  // Always the candidate-partition enumeration.
  kSparse,
  // Always the dense O(k) reference scan (decision-identity tests).
  kDense,
};

struct AdwiseOptions {
  // --- Latency preference (paper: L, §III-A) -------------------------------
  // Wall-clock budget for the whole partitioning pass, in milliseconds.
  // Negative values mean "no preference": the window grows whenever C1 holds
  // (bounded by max_window). 0 forces single-edge behaviour (C2 never holds).
  std::int64_t latency_preference_ms = -1;

  // --- Window (§III-A) ------------------------------------------------------
  std::uint64_t initial_window = 1;
  std::uint64_t max_window = std::uint64_t{1} << 16;
  // false pins the window at initial_window (ablation: raw window-size
  // versus quality curve without the controller).
  bool adaptive_window = true;

  // --- Lazy traversal (§III-B) ----------------------------------------------
  bool lazy_traversal = true;
  // epsilon in Theta = g_avg + epsilon: only edges scoring above the running
  // average (plus this slack) enter the candidate set.
  double candidate_epsilon = 0.1;
  // Cached candidate scores are refreshed at least every this many
  // assignment rounds (bounds staleness of the balance term; replica-set
  // changes trigger immediate re-scoring regardless).
  std::uint64_t candidate_refresh_interval = 32;

  // --- Hot-path implementation selection ------------------------------------
  // Placement-search path: kAuto picks dense vs. sparse per best_placement
  // call from the candidate-set size bound; kSparse/kDense pin one
  // implementation (decision-identical either way — see the invariant note
  // in scoring.h; the property tests compare all of them bit-for-bit).
  ScoringPath scoring_path = ScoringPath::kAuto;

  // Heap-based candidate selection: select() pops the argmax from a lazy,
  // stale-entry-tolerant max-heap (O(log |C|) per assignment) instead of
  // linearly scanning the candidate set. false selects the linear reference
  // scan. Only affects lazy traversal; the eager path always rescans.
  bool heap_selection = true;

  // With heap selection, candidates scoring below the threshold Theta are
  // demoted in periodic sweeps every this many assignments (the linear path
  // demotes every round). The sweep also compacts the heap.
  std::uint64_t demotion_sweep_interval = 16;

  // With heap selection, a candidate-set drain walks the secondary set in
  // structural-score order and rescores at most this many stale slots
  // before settling for the fresh argmax (the linear path rescans all of
  // Q on every drain).
  std::uint64_t drain_rescore_budget = 8;

  // --- Parallel batch scoring ------------------------------------------------
  // Threads that score a rescore batch (dirty batches, drain walks, eager
  // full-window rescans), including the calling thread: 0 and 1 both mean
  // fully serial; n >= 2 spawns a work-stealing pool of n - 1 workers that
  // the calling thread joins. Placement decisions are bit-identical for
  // every value — workers only compute scores against a frozen
  // PartitionSnapshot and the main thread applies all effects in serial
  // batch order (see "Parallel scoring" in scoring.h).
  std::uint32_t num_score_threads = 0;
  // Batches smaller than this are scored on the calling thread even when a
  // pool exists (fan-out overhead beats the win on tiny batches).
  std::uint64_t parallel_batch_min = 16;

  // --- Scoring (§III-C) ------------------------------------------------------
  // Adaptive balancing: lambda evolves per Eq. 4 within [lambda_min,
  // lambda_max]; disabled => lambda stays at lambda_init (HDRF-style fixed
  // parameter, the ablation baseline).
  bool adaptive_balance = true;
  double lambda_init = 1.0;
  double lambda_min = 0.4;
  double lambda_max = 5.0;
  double balance_epsilon = 1e-9;  // epsilon in B(p), Eq. 3

  // Degree-aware replication score R (Eq. 5); disabled => indicator-only
  // replication score (Greedy-style).
  bool degree_weighting = true;

  // Clustering score CS (Eq. 6); the paper switches it off for graphs with
  // negligible clustering (Orkut, §IV-A3).
  bool clustering_score = true;
  // Cap on enumerated window neighbors per edge (bounds hub cost).
  std::uint32_t clustering_neighbor_cap = 64;

  // --- Infrastructure --------------------------------------------------------
  // Time source; null => process steady clock. Tests inject FakeClock.
  const Clock* clock = nullptr;
};

}  // namespace adwise
