// Configuration of the ADWISE partitioner.
#pragma once

#include <cstdint>

#include "src/common/clock.h"

namespace adwise {

namespace obs {
struct ObsSink;
}  // namespace obs

// Placement-search implementation of AdwiseScorer::best_placement. All
// three produce bit-identical decisions (the sparse confinement is exact —
// see the invariant note in scoring.h); they differ only in cost.
enum class ScoringPath : std::uint8_t {
  // Per call: the dense O(k) scan when |R_u| + |R_v| + |touched window
  // neighbors| >= k (a sequential loop over k loads beats a scattered
  // candidate walk of the same size), the sparse enumeration otherwise.
  kAuto,
  // Always the candidate-partition enumeration.
  kSparse,
  // Always the dense O(k) reference scan (decision-identity tests).
  kDense,
};

// How refill-time classification of freshly streamed edges is scored.
// Serial classification (kOff) scores each inserted edge inline; the batched
// modes collect a refill burst into one rescore batch so the parallel batch
// scorer can fan it out — the lazy path's largest unclaimed batch source
// (window-growth bursts insert w edges at once).
enum class BatchedRefill : std::uint8_t {
  // Classify every inserted edge inline before the next one is read.
  kOff,
  // Batch the burst, splitting at endpoint conflicts: an edge's score can
  // only be changed by a batch-mate sharing an endpoint (the CS term reads
  // the window neighborhood; the partition state is frozen during refill),
  // so scoring endpoint-disjoint groups after inserting them and applying
  // thresholds/routing in insertion order is provably decision-identical to
  // kOff. The property matrix enforces the identity bit-for-bit.
  kExact,
  // Let the window drain by a block of refill_block_fraction * w edges,
  // then insert and score the whole block against one snapshot. Steady-state
  // refills become real batches (the lazy path's parallel fraction rises
  // from a few percent to the refill share of rescore work), at the cost of
  // decisions that may differ from kOff: the effective window breathes
  // between (1 - refill_block_fraction) * w and w, and an edge's clustering
  // score sees the whole block. Quality deltas are pinned within a
  // tolerance band by tests.
  kFull,
};

// Replica-membership representation the scoring core reads. The sparse
// per-vertex ReplicaSet array always stays authoritative (checkpoints and
// quality metrics read it unchanged); kAuto/kDense additionally maintain the
// DenseReplicaRows mirror — one fixed-width bit row per cached vertex, a
// single cache line at k = 256 — so the dense k-loop and candidate scoring
// walk contiguous memory instead of pointer-chasing spill vectors. Logical
// content is identical bit-for-bit, so decisions never depend on the layout
// (pinned by tests/scoring_identity_test.cpp).
enum class ReplicaLayout : std::uint8_t {
  // Dense rows whenever k <= DenseReplicaRows::kMaxK (256), sparse-only
  // otherwise.
  kAuto,
  // Never build the mirror — the reference layout for identity tests.
  kSparse,
  // Request the mirror; silently sparse-only when k > 256.
  kDense,
};

struct AdwiseOptions {
  // --- Latency preference (paper: L, §III-A) -------------------------------
  // Wall-clock budget for the whole partitioning pass, in milliseconds.
  // Negative values mean "no preference": the window grows whenever C1 holds
  // (bounded by max_window). 0 forces single-edge behaviour (C2 never holds).
  std::int64_t latency_preference_ms = -1;

  // --- Window (§III-A) ------------------------------------------------------
  std::uint64_t initial_window = 1;
  std::uint64_t max_window = std::uint64_t{1} << 16;
  // false pins the window at initial_window (ablation: raw window-size
  // versus quality curve without the controller).
  bool adaptive_window = true;

  // --- Lazy traversal (§III-B) ----------------------------------------------
  bool lazy_traversal = true;
  // epsilon in Theta = g_avg + epsilon: only edges scoring above the running
  // average (plus this slack) enter the candidate set.
  double candidate_epsilon = 0.1;
  // Cached candidate scores are refreshed at least every this many
  // assignment rounds (bounds staleness of the balance term; replica-set
  // changes trigger immediate re-scoring regardless).
  std::uint64_t candidate_refresh_interval = 32;

  // --- Hot-path implementation selection ------------------------------------
  // Placement-search path: kAuto picks dense vs. sparse per best_placement
  // call from the candidate-set size bound; kSparse/kDense pin one
  // implementation (decision-identical either way — see the invariant note
  // in scoring.h; the property tests compare all of them bit-for-bit).
  ScoringPath scoring_path = ScoringPath::kAuto;

  // Replica-membership layout (see ReplicaLayout above). Decision-identical
  // for every value; kAuto only moves throughput.
  ReplicaLayout replica_layout = ReplicaLayout::kAuto;

  // Vectorized scoring kernels (AVX2/NEON via src/common/simd.h, compiled
  // scalar under -DADWISE_SIMD=OFF): the dense k-loop and the sparse
  // candidate list are scored four partitions per step. Arithmetic maps
  // one-to-one onto the scalar ops per lane (no FMA, no reassociation), so
  // placements and counters are bit-identical either way — false selects
  // the scalar kernels, the baseline of the bench_ablation_scoring
  // guardrail and the reference of the identity matrix.
  bool simd_scoring = true;

  // Heap-based candidate selection: select() pops the argmax from a lazy,
  // stale-entry-tolerant max-heap (O(log |C|) per assignment) instead of
  // linearly scanning the candidate set. false selects the linear reference
  // scan. Only affects lazy traversal; the eager path always rescans.
  bool heap_selection = true;

  // With heap selection, candidates scoring below the threshold Theta are
  // demoted in periodic sweeps every this many assignments (the linear path
  // demotes every round). The sweep also compacts the heap. With
  // adaptive_drain this is the starting point and floor of the adapted
  // interval.
  std::uint64_t demotion_sweep_interval = 16;

  // With heap selection, a candidate-set drain walks the secondary set in
  // structural-score order and rescores at most this many stale slots
  // before settling for the fresh argmax (the linear path rescans all of
  // Q on every drain). With adaptive_drain this is the starting point and
  // floor of the adapted budget.
  std::uint64_t drain_rescore_budget = 8;

  // Adapt drain_rescore_budget and demotion_sweep_interval from the
  // observed forced-secondary rate (DrainController): drains that keep
  // ending without a promotion double the budget (rescore deeper into Q)
  // and the sweep interval (stop churning the thin candidate set); a low
  // forced rate decays both back toward the configured floors. The
  // adaptation reads only decision counters — never the clock — so runs
  // with identical options remain deterministic and serial/parallel
  // identity is preserved. Disable to pin the configured constants
  // (bit-identical to the pre-adaptive behavior).
  bool adaptive_drain = true;

  // --- Parallel batch scoring ------------------------------------------------
  // Threads that score a rescore batch (dirty batches, drain walks, eager
  // full-window rescans), including the calling thread: 0 and 1 both mean
  // fully serial; n >= 2 spawns a work-stealing pool of n - 1 workers that
  // the calling thread joins. Placement decisions are bit-identical for
  // every value — workers only compute scores against a frozen
  // PartitionSnapshot and the main thread applies all effects in serial
  // batch order (see "Parallel scoring" in scoring.h).
  std::uint32_t num_score_threads = 0;
  // Batches smaller than the current cutoff are scored on the calling
  // thread even when a pool exists (fan-out overhead beats the win on tiny
  // batches). This is the initial cutoff; with adaptive_batch_cutoff the
  // BatchCutoffController moves it from measured batch timings.
  std::uint64_t parallel_batch_min = 16;
  // Adapt the pool cutoff from the observed per-item scoring cost and
  // per-batch fan-out overhead (EWMAs of measured batch timings, same
  // feedback style as the §III-A window controller): the cutoff settles at
  // the break-even batch size n* = overhead / (per_item * (1 - 1/slots)).
  // Occasional sub-cutoff batches are routed to the pool as probes so the
  // overhead estimate stays live. Decisions are unaffected either way —
  // pool and serial scoring are bit-identical (snapshot-consistency
  // invariant) — so this only moves throughput. Disable to pin
  // parallel_batch_min for reproducible batch routing.
  bool adaptive_batch_cutoff = true;
  // kFull batched refill: the window drains by max(1, fraction * w) edges
  // before the next refill block is pulled and batch-classified. Clamped to
  // (0, 1]; larger blocks parallelize better but shrink the effective
  // window floor. Ignored by kOff/kExact (they refill every assignment).
  double refill_block_fraction = 0.25;
  // Refill-time classification batching (see BatchedRefill). kExact is
  // decision-identical to kOff and is the default.
  BatchedRefill batched_refill = BatchedRefill::kExact;

  // --- Scoring (§III-C) ------------------------------------------------------
  // Adaptive balancing: lambda evolves per Eq. 4 within [lambda_min,
  // lambda_max]; disabled => lambda stays at lambda_init (HDRF-style fixed
  // parameter, the ablation baseline).
  bool adaptive_balance = true;
  double lambda_init = 1.0;
  double lambda_min = 0.4;
  double lambda_max = 5.0;
  double balance_epsilon = 1e-9;  // epsilon in B(p), Eq. 3

  // Degree-aware replication score R (Eq. 5); disabled => indicator-only
  // replication score (Greedy-style).
  bool degree_weighting = true;

  // Clustering score CS (Eq. 6); the paper switches it off for graphs with
  // negligible clustering (Orkut, §IV-A3).
  bool clustering_score = true;
  // Cap on enumerated window neighbors per edge (bounds hub cost).
  std::uint32_t clustering_neighbor_cap = 64;

  // --- Infrastructure --------------------------------------------------------
  // Time source; null => process steady clock. Tests inject FakeClock.
  const Clock* clock = nullptr;

  // Optional observability sink (metrics registry, trace session, progress
  // callback); must outlive partition(). Strictly read-only with respect to
  // decisions: placements, counter traces and checkpoint bytes are
  // bit-identical with or without a sink attached.
  obs::ObsSink* obs = nullptr;
};

}  // namespace adwise
