// Configuration of the ADWISE partitioner.
#pragma once

#include <cstdint>

#include "src/common/clock.h"

namespace adwise {

struct AdwiseOptions {
  // --- Latency preference (paper: L, §III-A) -------------------------------
  // Wall-clock budget for the whole partitioning pass, in milliseconds.
  // Negative values mean "no preference": the window grows whenever C1 holds
  // (bounded by max_window). 0 forces single-edge behaviour (C2 never holds).
  std::int64_t latency_preference_ms = -1;

  // --- Window (§III-A) ------------------------------------------------------
  std::uint64_t initial_window = 1;
  std::uint64_t max_window = std::uint64_t{1} << 16;
  // false pins the window at initial_window (ablation: raw window-size
  // versus quality curve without the controller).
  bool adaptive_window = true;

  // --- Lazy traversal (§III-B) ----------------------------------------------
  bool lazy_traversal = true;
  // epsilon in Theta = g_avg + epsilon: only edges scoring above the running
  // average (plus this slack) enter the candidate set.
  double candidate_epsilon = 0.1;
  // Cached candidate scores are refreshed at least every this many
  // assignment rounds (bounds staleness of the balance term; replica-set
  // changes trigger immediate re-scoring regardless).
  std::uint64_t candidate_refresh_interval = 32;

  // --- Hot-path implementation selection ------------------------------------
  // Sparse placement search: best_placement enumerates only the candidate
  // partitions R_u ∪ R_v ∪ {window-neighbor replicas} ∪ {least-loaded}
  // instead of all k (decision-identical to the dense scan — see the
  // invariant note in scoring.h). false selects the O(k) dense reference
  // path the property tests compare against.
  bool sparse_scoring = true;

  // Heap-based candidate selection: select() pops the argmax from a lazy,
  // stale-entry-tolerant max-heap (O(log |C|) per assignment) instead of
  // linearly scanning the candidate set. false selects the linear reference
  // scan. Only affects lazy traversal; the eager path always rescans.
  bool heap_selection = true;

  // With heap selection, candidates scoring below the threshold Theta are
  // demoted in periodic sweeps every this many assignments (the linear path
  // demotes every round). The sweep also compacts the heap.
  std::uint64_t demotion_sweep_interval = 16;

  // With heap selection, a candidate-set drain walks the secondary set in
  // structural-score order and rescores at most this many stale slots
  // before settling for the fresh argmax (the linear path rescans all of
  // Q on every drain).
  std::uint64_t drain_rescore_budget = 8;

  // --- Scoring (§III-C) ------------------------------------------------------
  // Adaptive balancing: lambda evolves per Eq. 4 within [lambda_min,
  // lambda_max]; disabled => lambda stays at lambda_init (HDRF-style fixed
  // parameter, the ablation baseline).
  bool adaptive_balance = true;
  double lambda_init = 1.0;
  double lambda_min = 0.4;
  double lambda_max = 5.0;
  double balance_epsilon = 1e-9;  // epsilon in B(p), Eq. 3

  // Degree-aware replication score R (Eq. 5); disabled => indicator-only
  // replication score (Greedy-style).
  bool degree_weighting = true;

  // Clustering score CS (Eq. 6); the paper switches it off for graphs with
  // negligible clustering (Orkut, §IV-A3).
  bool clustering_score = true;
  // Cap on enumerated window neighbors per edge (bounds hub cost).
  std::uint32_t clustering_neighbor_cap = 64;

  // --- Infrastructure --------------------------------------------------------
  // Time source; null => process steady clock. Tests inject FakeClock.
  const Clock* clock = nullptr;
};

}  // namespace adwise
