// ADWISE scoring function (paper §III-C, Eq. 3–7).
//
//   g(e, p) = lambda(iota, alpha) * B(p) + R(e, p) + CS(e, p)
//
//   B(p)  — balancing score, Eq. 3: (maxsize − |p|) / (maxsize − minsize + ε)
//   λ     — adaptive balancing parameter, Eq. 4: after every assignment
//           λ += (ι − tolerance(α)), clamped to [0.4, 5], where
//           ι = (maxsize−minsize)/maxsize and tolerance(α) = max(0, 1−α)
//   R     — degree-aware replication score, Eq. 5:
//           1{p∈R_u}(2−Ψ_u) + 1{p∈R_v}(2−Ψ_v), Ψ_u = deg(u)/(2·maxDegree)
//   CS    — clustering score, Eq. 6: fraction of the window-local
//           neighborhood N(u)∪N(v) already replicated on p
//
// Every term is individually switchable for the ablation benches.
#pragma once

#include <vector>

#include "src/core/options.h"
#include "src/core/window.h"
#include "src/partition/partition_state.h"

namespace adwise {

struct ScoredPlacement {
  PartitionId partition = kInvalidPartition;
  double score = 0.0;
};

class AdwiseScorer {
 public:
  // state must outlive the scorer. total_edges is m in Eq. 4's
  // α = |E'|/m (the paper obtains it from the graph file's line count).
  AdwiseScorer(const PartitionState& state, const AdwiseOptions& opts,
               std::size_t total_edges);

  // Scores e against all partitions in one pass and returns the argmax
  // (ties: least-loaded partition, then smallest id). window supplies the
  // clustering neighborhoods; exclude_slot is e's own slot (or
  // EdgeWindow::npos). Passing window == nullptr disables CS for this call.
  [[nodiscard]] ScoredPlacement best_placement(const Edge& e,
                                               const EdgeWindow* window,
                                               std::uint32_t exclude_slot);

  // Single-pair score g(e, p) — exercised directly by tests.
  [[nodiscard]] double score(const Edge& e, PartitionId p,
                             const EdgeWindow* window,
                             std::uint32_t exclude_slot);

  // Adapts lambda (Eq. 4); call after every edge assignment.
  void on_assignment();

  [[nodiscard]] double lambda() const { return lambda_; }

 private:
  // Fills cs_counts_[p] with |{u' ∈ N : p ∈ R_u'}| and returns |N|.
  std::size_t prepare_clustering(const Edge& e, const EdgeWindow* window,
                                 std::uint32_t exclude_slot);

  // (2 − Ψ_x) weight of endpoint x, honoring the degree_weighting switch.
  [[nodiscard]] double replica_weight(VertexId x) const;

  const PartitionState* state_;
  AdwiseOptions opts_;
  std::size_t total_edges_;
  double lambda_;
  std::vector<double> cs_counts_;
  std::vector<VertexId> neighbor_scratch_;
};

}  // namespace adwise
