// ADWISE scoring function (paper §III-C, Eq. 3–7).
//
//   g(e, p) = lambda(iota, alpha) * B(p) + R(e, p) + CS(e, p)
//
//   B(p)  — balancing score, Eq. 3: (maxsize − |p|) / (maxsize − minsize + ε)
//   λ     — adaptive balancing parameter, Eq. 4: after every assignment
//           λ += (ι − tolerance(α)), clamped to [0.4, 5], where
//           ι = (maxsize−minsize)/maxsize and tolerance(α) = max(0, 1−α)
//   R     — degree-aware replication score, Eq. 5:
//           1{p∈R_u}(2−Ψ_u) + 1{p∈R_v}(2−Ψ_v), Ψ_u = deg(u)/(2·maxDegree)
//   CS    — clustering score, Eq. 6: fraction of the window-local
//           neighborhood N(u)∪N(v) already replicated on p
//
// Every term is individually switchable for the ablation benches.
//
// Sparse placement search (the default, AdwiseOptions::sparse_scoring).
// The argmax over all k partitions is confined to the candidate-partition set
//
//   C(e) = R_u ∪ R_v ∪ { p : p holds a replica of a window neighbor of e }
//          ∪ { least-loaded partition },
//
// so best_placement() only scores |C(e)| partitions instead of k. Why this
// is exact: for any partition outside C(e) both R and CS are zero, so its
// score is exactly λ·B(p). B is strictly decreasing in |p|, hence among
// partitions outside C(e) the score is maximized by the least-loaded one —
// and equal scores imply equal loads, so the tie-break (lower load, then
// lower id) is also won by least_loaded(), which PartitionState tracks as
// the smallest id at the minimum size. Since R and CS are nonnegative and
// λ ≥ 0 (lambda_min must be ≥ 0), every partition outside C(e) is dominated
// by least_loaded() ∈ C(e) under the total order (score desc, load asc,
// id asc), and max over C(e) equals the max over all k. The same argument
// underlies HDRF's sparse placement (replication term zero outside R_u∪R_v)
// — see HdrfPartitioner. The dense O(k) reference path is kept
// option-selectable so tests can assert decision identity bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/options.h"
#include "src/core/window.h"
#include "src/partition/partition_state.h"

namespace adwise {

struct ScoredPlacement {
  PartitionId partition = kInvalidPartition;
  double score = 0.0;
  // Balance-independent part of score (R + CS at the chosen partition).
  // The heap-based selector orders the secondary set by this key: unlike
  // the full g it does not rot as partition loads drift, so stale entries
  // keep a meaningful priority between rescores.
  double structural = 0.0;
};

class AdwiseScorer {
 public:
  // state must outlive the scorer. total_edges is m in Eq. 4's
  // α = |E'|/m (the paper obtains it from the graph file's line count).
  AdwiseScorer(const PartitionState& state, const AdwiseOptions& opts,
               std::size_t total_edges);

  // Scores e against the candidate-partition set (or all partitions on the
  // dense reference path) and returns the argmax (ties: least-loaded
  // partition, then smallest id). window supplies the clustering
  // neighborhoods; exclude_slot is e's own slot (or EdgeWindow::npos).
  // Passing window == nullptr disables CS for this call.
  [[nodiscard]] ScoredPlacement best_placement(const Edge& e,
                                               const EdgeWindow* window,
                                               std::uint32_t exclude_slot);

  // Single-pair score g(e, p) — exercised directly by tests.
  [[nodiscard]] double score(const Edge& e, PartitionId p,
                             const EdgeWindow* window,
                             std::uint32_t exclude_slot);

  // Adapts lambda (Eq. 4); call after every edge assignment.
  void on_assignment();

  [[nodiscard]] double lambda() const { return lambda_; }

  // Total partitions scored across all best_placement() calls — the
  // sparsity measure the micro benches report (dense path adds k per call).
  [[nodiscard]] std::uint64_t partitions_considered() const {
    return partitions_considered_;
  }

 private:
  // Per-edge terms shared by every partition score: balance denominator,
  // replica weights, clustering normalizer and the endpoint replica sets.
  // Building it runs prepare_clustering, so cs_counts_ / cs_touched_ hold
  // e's window-neighborhood replica counts while the context is live.
  struct EdgeContext {
    double maxsize = 0.0;
    double bal_denom = 1.0;
    double wu = 0.0, wv = 0.0;
    double cs_norm = 0.0;
    const ReplicaSet* ru = nullptr;
    const ReplicaSet* rv = nullptr;
    bool self_loop = false;
  };
  [[nodiscard]] EdgeContext make_context(const Edge& e,
                                         const EdgeWindow* window,
                                         std::uint32_t exclude_slot);

  // g(e, p) given the precomputed context — the single definition of the
  // score arithmetic used by score(), the dense loop and the sparse loop.
  [[nodiscard]] double score_partition(const EdgeContext& ctx,
                                       PartitionId p) const;

  [[nodiscard]] ScoredPlacement best_placement_dense(const EdgeContext& ctx);
  [[nodiscard]] ScoredPlacement best_placement_sparse(const EdgeContext& ctx);

  // Fills cs_counts_[p] with |{u' ∈ N : p ∈ R_u'}| (recording touched
  // partitions in cs_touched_) and returns |N|. Resets the previous call's
  // counts by walking cs_touched_, never an O(k) fill.
  std::size_t prepare_clustering(const Edge& e, const EdgeWindow* window,
                                 std::uint32_t exclude_slot);

  // (2 − Ψ_x) weight of endpoint x, honoring the degree_weighting switch.
  [[nodiscard]] double replica_weight(VertexId x) const;

  const PartitionState* state_;
  AdwiseOptions opts_;
  std::size_t total_edges_;
  double lambda_;
  std::vector<double> cs_counts_;
  std::vector<PartitionId> cs_touched_;
  std::vector<VertexId> neighbor_scratch_;
  // Per-placement dedup of candidate partitions (epoch-stamped, no clears).
  std::vector<std::uint64_t> mark_;
  std::uint64_t mark_epoch_ = 0;
  std::uint64_t partitions_considered_ = 0;
  // assigned_edges() of the state when this scorer was created: Eq. 4's α
  // measures progress of THIS stream, not of a carried restream state.
  std::uint64_t assigned_baseline_ = 0;
};

}  // namespace adwise
