// ADWISE scoring function (paper §III-C, Eq. 3–7).
//
//   g(e, p) = lambda(iota, alpha) * B(p) + R(e, p) + CS(e, p)
//
//   B(p)  — balancing score, Eq. 3: (maxsize − |p|) / (maxsize − minsize + ε)
//   λ     — adaptive balancing parameter, Eq. 4: after every assignment
//           λ += (ι − tolerance(α)), clamped to [0.4, 5], where
//           ι = (maxsize−minsize)/maxsize and tolerance(α) = max(0, 1−α)
//   R     — degree-aware replication score, Eq. 5:
//           1{p∈R_u}(2−Ψ_u) + 1{p∈R_v}(2−Ψ_v), Ψ_u = deg(u)/(2·maxDegree)
//   CS    — clustering score, Eq. 6: fraction of the window-local
//           neighborhood N(u)∪N(v) already replicated on p
//
// Every term is individually switchable for the ablation benches.
//
// Sparse placement search (AdwiseOptions::scoring_path). The argmax over all
// k partitions is confined to the candidate-partition set
//
//   C(e) = R_u ∪ R_v ∪ { p : p holds a replica of a window neighbor of e }
//          ∪ { least-loaded partition },
//
// so best_placement() only scores |C(e)| partitions instead of k. Why this
// is exact: for any partition outside C(e) both R and CS are zero, so its
// score is exactly λ·B(p). B is strictly decreasing in |p|, hence among
// partitions outside C(e) the score is maximized by the least-loaded one —
// and equal scores imply equal loads, so the tie-break (lower load, then
// lower id) is also won by least_loaded(), which PartitionState tracks as
// the smallest id at the minimum size. Since R and CS are nonnegative and
// λ ≥ 0 (lambda_min must be ≥ 0), every partition outside C(e) is dominated
// by least_loaded() ∈ C(e) under the total order (score desc, load asc,
// id asc), and max over C(e) equals the max over all k. The same argument
// underlies HDRF's sparse placement (replication term zero outside R_u∪R_v)
// — see HdrfPartitioner. The dense O(k) reference path is kept
// option-selectable so tests can assert decision identity bit-for-bit, and
// ScoringPath::kAuto picks the cheaper implementation per call: once the
// candidate-set size bound |R_u| + |R_v| + |touched| reaches k, the
// sequential dense loop wins over the scattered candidate walk.
//
// Parallel scoring — the snapshot-consistency invariant.
//
// best_placement() has a const, thread-safe overload taking a
// PartitionSnapshot and a caller-owned ScoreScratch. Scoring reads ONLY
//   (a) the snapshot (partition loads, replica sets, degrees — frozen:
//       PartitionState mutates solely inside assign(), and no assignment
//       happens while a rescore batch is in flight), and
//   (b) the window's edge/incidence structure (frozen during a batch:
//       insert/remove only happen between selections)
// and writes ONLY the scratch. It never reads the per-slot cached fields
// (best_score, score_version, dirty, candidate membership) or the
// threshold/λ accumulators that applying a score mutates. Scores in a batch
// are therefore independent of the order they are computed in: workers can
// evaluate any shard of the batch concurrently, and the main thread merges
// results back in the serial batch order — bumping score_version, feeding
// the threshold EWMA, and taking promotion decisions exactly as the
// single-threaded code would. That merge discipline, not luck, is what the
// parallel ≡ serial property matrix in tests/property_test.cpp pins.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/core/options.h"
#include "src/core/window.h"
#include "src/partition/partition_state.h"

namespace adwise {

struct ScoredPlacement {
  PartitionId partition = kInvalidPartition;
  double score = 0.0;
  // Balance-independent part of score (R + CS at the chosen partition).
  // The heap-based selector orders the secondary set by this key: unlike
  // the full g it does not rot as partition loads drift, so stale entries
  // keep a meaningful priority between rescores.
  double structural = 0.0;
};

// Per-thread scoring workspace: clustering counters, candidate-partition
// dedup marks, and the hot-path statistics counters. The scorer owns one
// for serial use; the parallel batch driver owns one per worker slot and
// folds the counters back with AdwiseScorer::absorb() after every batch.
struct ScoreScratch {
  ScoreScratch() = default;
  explicit ScoreScratch(std::uint32_t k) { reset(k); }

  void reset(std::uint32_t k) {
    cs_counts.assign(k, 0.0);
    cs_touched.clear();
    neighbors.clear();
    mark.assign(k, 0);
    mark_epoch = 0;
    scores.assign(k, 0.0);
    candidates.clear();
    partitions_considered = 0;
    dense_placements = 0;
    sparse_placements = 0;
  }

  std::vector<double> cs_counts;
  std::vector<PartitionId> cs_touched;
  std::vector<VertexId> neighbors;
  // SIMD kernel staging: all scores of a placement are materialized here
  // (dense: indexed by partition; sparse: by candidate position) before the
  // scalar argmax replays them in the canonical order. Candidate ids are
  // distinct partitions, so k entries always suffice.
  std::vector<double> scores;
  std::vector<PartitionId> candidates;
  // Per-placement dedup of candidate partitions (epoch-stamped, no clears).
  std::vector<std::uint64_t> mark;
  std::uint64_t mark_epoch = 0;
  // Total partitions scored across best_placement() calls — the sparsity
  // measure the micro benches report (dense path adds k per call).
  std::uint64_t partitions_considered = 0;
  // best_placement() calls resolved by each implementation (kAuto's
  // per-call crossover decision is observable through these).
  std::uint64_t dense_placements = 0;
  std::uint64_t sparse_placements = 0;
};

class AdwiseScorer {
 public:
  // state must outlive the scorer. total_edges is m in Eq. 4's
  // α = |E'|/m (the paper obtains it from the graph file's line count).
  AdwiseScorer(const PartitionState& state, const AdwiseOptions& opts,
               std::size_t total_edges);

  // Scores e against the candidate-partition set (or all partitions on the
  // dense reference path) and returns the argmax (ties: least-loaded
  // partition, then smallest id). window supplies the clustering
  // neighborhoods; exclude_slot is e's own slot (or EdgeWindow::npos).
  // Passing window == nullptr disables CS for this call.
  [[nodiscard]] ScoredPlacement best_placement(const Edge& e,
                                               const EdgeWindow* window,
                                               std::uint32_t exclude_slot);

  // Thread-safe overload for batch scoring: reads only snap and the window
  // structure, writes only scratch (snapshot-consistency invariant above).
  // Multiple threads may call it concurrently with distinct scratches as
  // long as the snapshot's PartitionState and the window are not mutated.
  [[nodiscard]] ScoredPlacement best_placement(const Edge& e,
                                               const EdgeWindow* window,
                                               std::uint32_t exclude_slot,
                                               const PartitionSnapshot& snap,
                                               ScoreScratch& scratch) const;

  // Single-pair score g(e, p) — exercised directly by tests.
  [[nodiscard]] double score(const Edge& e, PartitionId p,
                             const EdgeWindow* window,
                             std::uint32_t exclude_slot);

  // Adapts lambda (Eq. 4); call after every edge assignment.
  void on_assignment();

  [[nodiscard]] double lambda() const { return lambda_; }

  // Folds a worker scratch's statistics counters into the scorer's own
  // scratch (and zeroes them), so the accessors below stay the single
  // source of truth after parallel batches.
  void absorb(ScoreScratch& worker);

  [[nodiscard]] std::uint64_t partitions_considered() const {
    return scratch_.partitions_considered;
  }
  [[nodiscard]] std::uint64_t dense_placements() const {
    return scratch_.dense_placements;
  }
  [[nodiscard]] std::uint64_t sparse_placements() const {
    return scratch_.sparse_placements;
  }

  // Checkpoint support: λ, the α baseline and the statistics counters —
  // everything scoring decisions or the final report depend on that is not
  // reconstructed from options at construction.
  void save(ByteWriter& out) const {
    out.u64(total_edges_);
    out.f64(lambda_);
    out.u64(assigned_baseline_);
    out.u64(scratch_.partitions_considered);
    out.u64(scratch_.dense_placements);
    out.u64(scratch_.sparse_placements);
  }
  void load(ByteReader& in) {
    total_edges_ = static_cast<std::size_t>(in.u64());
    lambda_ = in.f64();
    assigned_baseline_ = in.u64();
    scratch_.partitions_considered = in.u64();
    scratch_.dense_placements = in.u64();
    scratch_.sparse_placements = in.u64();
  }

 private:
  // Per-edge terms shared by every partition score: balance denominator,
  // replica weights, clustering normalizer, λ, the endpoint replica sets
  // and a pointer to the scratch's clustering counters. Building it runs
  // prepare_clustering, so scratch.cs_counts / cs_touched hold e's
  // window-neighborhood replica counts while the context is live.
  struct EdgeContext {
    double maxsize = 0.0;
    double bal_denom = 1.0;
    double wu = 0.0, wv = 0.0;
    double cs_norm = 0.0;
    double lambda = 0.0;
    const ReplicaSet* ru = nullptr;
    const ReplicaSet* rv = nullptr;
    // Dense replica bit rows of the endpoints when the snapshot carries the
    // DenseReplicaRows mirror, nullptr otherwise (the kernels then fall
    // back to ReplicaSet::contains — same bits either way).
    const std::uint64_t* row_u = nullptr;
    const std::uint64_t* row_v = nullptr;
    const double* cs_counts = nullptr;
    bool self_loop = false;
  };
  [[nodiscard]] EdgeContext make_context(const Edge& e,
                                         const EdgeWindow* window,
                                         std::uint32_t exclude_slot,
                                         const PartitionSnapshot& snap,
                                         ScoreScratch& scratch) const;

  // g(e, p) given the precomputed context — the single definition of the
  // score arithmetic used by score(), the dense loop and the sparse loop.
  [[nodiscard]] static double score_partition(const EdgeContext& ctx,
                                              PartitionId p,
                                              const PartitionSnapshot& snap);

  [[nodiscard]] ScoredPlacement best_placement_dense(
      const EdgeContext& ctx, const PartitionSnapshot& snap,
      ScoreScratch& scratch) const;
  [[nodiscard]] ScoredPlacement best_placement_sparse(
      const EdgeContext& ctx, const PartitionSnapshot& snap,
      ScoreScratch& scratch) const;
  // Vectorized twins (simd_scoring == true): four partitions per step via
  // src/common/simd.h, scores staged in scratch.scores, argmax replayed by
  // the scalar RunningBest in the canonical order — placements and every
  // counter bit-identical to the scalar kernels above.
  [[nodiscard]] ScoredPlacement best_placement_dense_simd(
      const EdgeContext& ctx, const PartitionSnapshot& snap,
      ScoreScratch& scratch) const;
  [[nodiscard]] ScoredPlacement best_placement_sparse_simd(
      const EdgeContext& ctx, const PartitionSnapshot& snap,
      ScoreScratch& scratch) const;

  // Fills scratch.cs_counts[p] with |{u' ∈ N : p ∈ R_u'}| (recording
  // touched partitions in scratch.cs_touched) and returns |N|. Resets the
  // previous call's counts by walking cs_touched, never an O(k) fill.
  std::size_t prepare_clustering(const Edge& e, const EdgeWindow* window,
                                 std::uint32_t exclude_slot,
                                 const PartitionSnapshot& snap,
                                 ScoreScratch& scratch) const;

  // (2 − Ψ_x) weight of endpoint x, honoring the degree_weighting switch.
  [[nodiscard]] double replica_weight(VertexId x,
                                      const PartitionSnapshot& snap) const;

  const PartitionState* state_;
  AdwiseOptions opts_;
  std::size_t total_edges_;
  double lambda_;
  ScoreScratch scratch_;
  // assigned_edges() of the state when this scorer was created: Eq. 4's α
  // measures progress of THIS stream, not of a carried restream state.
  std::uint64_t assigned_baseline_ = 0;
};

}  // namespace adwise
