// ADWISE — ADaptive WIndow-based Streaming Edge partitioner (paper §III).
//
// Implements Algorithm 1: maintain a window W of up to w edges, repeatedly
// assign the window edge with the highest score g(e, p) to its best
// partition, refill from the stream, and adapt w every w assignments via
// conditions C1/C2 (AdaptiveController). The lazy window traversal of §III-B
// keeps score (re-)computations focused on the candidate set.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "src/core/adaptive_controller.h"
#include "src/core/options.h"
#include "src/core/scoring.h"
#include "src/core/window.h"
#include "src/partition/partitioner.h"

namespace adwise {

namespace obs {
class MetricsRegistry;
}  // namespace obs

class AdwisePartitioner final : public EdgePartitioner {
 public:
  explicit AdwisePartitioner(AdwiseOptions opts = {}) : opts_(opts) {}

  [[nodiscard]] std::string_view name() const override { return "adwise"; }

  void partition(EdgeStream& stream, PartitionState& state,
                 const AssignmentSink& sink = {}) override;

  // Introspection into the last partition() run.
  struct Report {
    std::uint64_t assignments = 0;
    std::uint64_t score_computations = 0;
    // Partitions actually scored across all placements: k per score
    // computation on the dense path, |candidate partitions| on the sparse
    // path — the sparsity measure the micro benches track.
    std::uint64_t candidate_partitions = 0;
    // best_placement calls resolved by each implementation (ScoringPath;
    // kAuto's per-call crossover splits between the two).
    std::uint64_t dense_placements = 0;
    std::uint64_t sparse_placements = 0;
    std::uint64_t secondary_rescans = 0;     // full Q scans (C drained)
    std::uint64_t forced_secondary = 0;      // assignments taken from Q
    std::uint64_t event_reassessments = 0;   // replica-change triggered
    std::uint64_t heap_pops = 0;             // entries popped (incl. stale)
    std::uint64_t demotion_sweeps = 0;       // periodic threshold sweeps
    std::uint64_t max_window = 0;
    std::uint64_t adaptations = 0;
    double final_lambda = 0.0;
    double seconds = 0.0;

    // --- Batch scoring telemetry --------------------------------------------
    // Every rescore that goes through a score_batch() pass (dirty batches,
    // drain walks, eager rescans, batched refills) lands in one histogram
    // bucket per batch: bucket i counts batches of size in [2^i, 2^(i+1)),
    // the last bucket is open-ended.
    static constexpr std::size_t kBatchHistBuckets = 16;
    std::array<std::uint64_t, kBatchHistBuckets> batch_size_hist{};
    std::uint64_t score_batches = 0;      // score_batch() passes (any size)
    std::uint64_t batch_items = 0;        // items scored through batches
    std::uint64_t pool_batches = 0;       // batches executed on the pool
    std::uint64_t pool_batch_items = 0;   // items in pool-executed batches
    std::uint64_t refill_batches = 0;     // batched refill classify passes
    std::uint64_t refill_batch_items = 0; // edges classified via batches
    // Self-adapting thresholds: the values the controllers settled on.
    std::uint64_t final_batch_cutoff = 0;
    std::uint64_t batch_cutoff_adaptations = 0;
    std::uint64_t final_drain_budget = 0;
    std::uint64_t final_sweep_interval = 0;
    std::uint64_t drain_adaptations = 0;

    // Share of all score computations that ran in pool-executed batches —
    // the parallel fraction of the rescore hot path (inline single
    // rescores and serially scored batches are the residue).
    [[nodiscard]] double parallel_fraction() const {
      if (score_computations == 0) return 0.0;
      return static_cast<double>(pool_batch_items) /
             static_cast<double>(score_computations);
    }

    // Window size after each adaptation step (controller trajectory).
    std::vector<AdaptiveController::TracePoint> window_trace;

    // Aggregates another instance's report into this one — per-instance
    // spotlight telemetry folded into fleet totals. Counters and histogram
    // buckets add, max_window takes the max, seconds accumulates total CPU
    // time across instances (the spotlight wall latency is the max over
    // instances and lives in SpotlightResult, not here). Terminal
    // per-instance values (final_lambda, final_* thresholds, window_trace)
    // are left untouched: they describe one controller's end state and
    // have no meaningful sum.
    void merge_from(const Report& other);

    // Adds every counter (and the batch-size histogram) into the registry
    // under the src/obs/metric_names.h constants and sets the terminal
    // gauges (final_lambda, final_* thresholds, seconds, max_window).
    // Publishing is additive, so repeated runs — or per-instance spotlight
    // reports — aggregate exactly like merge_from does.
    void publish(obs::MetricsRegistry& registry) const;
  };
  [[nodiscard]] const Report& last_report() const { return report_; }

  [[nodiscard]] const AdwiseOptions& options() const { return opts_; }

  // Checkpointing is supported only for configurations whose decisions are
  // a pure function of the consumed edge prefix:
  //   - latency_preference_ms < 0, so the window controller's C2 never
  //     reads the wall clock (the serialized controller re-bases its clock
  //     anchors on restore);
  //   - num_score_threads <= 1, so the batch-cutoff controller (driven by
  //     measured timings, deliberately not serialized) never routes work.
  // Any other configuration returns false — the caller must surface "no
  // durability" instead of silently pretending coverage.
  bool enable_checkpoints(CheckpointHook hook) override;

  // Accepts a blob emitted by this class's CheckpointHook; takes effect on
  // the next partition() call, which continues bit-identically (placements
  // and counter traces) from the checkpoint boundary provided the stream
  // was advanced past the first `edges_consumed` edges.
  bool restore_algorithm_state(std::span<const std::byte> state) override;

 private:
  AdwiseOptions opts_;
  Report report_;
  CheckpointHook ckpt_;
  std::vector<std::byte> resume_state_;
};

}  // namespace adwise
