// Deterministic fault injection for the out-of-core I/O path.
//
// Two layers:
//
//  - FaultInjector: failpoint hooks consulted by BinaryEdgeStream and
//    FileEdgeStream around open()/pread() — short reads, spurious
//    EINTR/EAGAIN, transient open failures, bit-flips in read buffers,
//    and prefetch-worker death — and by AtomicFileWriter around
//    write()/pwrite()/fsync()/rename()/close() — ENOSPC, EIO, EINTR and
//    short writes. The production code owns the recovery policy (bounded
//    retry with exponential backoff, CRC rejection, degradation to
//    synchronous reads, typed DiskFullError); the injector only decides
//    *when* something goes wrong.
//
//  - FaultInjectingEdgeStream: wraps any RewindableEdgeStream and throws
//    TransientIoError at seed-chosen edge positions, independent of the
//    underlying format — the harness for checkpoint/resume tests ("the
//    stream died mid-run at edge N, resume from the last checkpoint").
//
// Everything is driven by a fixed seed and position hashing, never by wall
// clock or call timing, so a failing configuration replays byte-for-byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "src/graph/edge_stream.h"
#include "src/io/io_error.h"

namespace adwise {

// Thrown inside the prefetch worker when a failpoint kills it;
// BinaryEdgeStream catches exactly this type and degrades to synchronous
// reads instead of aborting the run.
class PrefetchWorkerDeath : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Retry policy for transient I/O errors (real or injected): up to
// max_attempts tries with exponential backoff. The sleeper is injectable
// so tests can count backoffs instead of actually sleeping.
struct RetryPolicy {
  int max_attempts = 4;
  unsigned base_delay_us = 100;     // doubles per attempt, capped below
  unsigned max_delay_us = 100'000;
  std::function<void(unsigned delay_us)> sleeper;  // null = usleep

  [[nodiscard]] unsigned delay_for_attempt(int attempt) const {
    unsigned d = base_delay_us;
    for (int i = 1; i < attempt && d < max_delay_us; ++i) d *= 2;
    return d < max_delay_us ? d : max_delay_us;
  }
};

// Failpoint hooks. The default implementation injects nothing, so the
// production path can consult an injector unconditionally.
class FaultInjector {
 public:
  enum class PreadFault {
    kNone,
    kShortRead,  // deliver fewer bytes than asked
    kEintr,      // fail with errno == EINTR (retried immediately)
    kEagain,     // fail with errno == EAGAIN (retried with backoff)
  };

  // Write-side syscalls AtomicFileWriter consults a failpoint for. The
  // durability syscalls (fsync/rename/close) have no meaningful offset;
  // callers pass a per-writer sequence number instead so once-only
  // semantics still hold per call site.
  enum class WriteOp {
    kWrite,
    kPwrite,
    kFsync,
    kRename,
    kClose,
  };

  enum class WriteFault {
    kNone,
    kShortWrite,  // accept fewer bytes than offered (write/pwrite only)
    kEintr,       // fail with errno == EINTR (retried immediately)
    kEio,         // fail with errno == EIO (bounded backoff retry)
    kEnospc,      // fail with errno == ENOSPC (typed DiskFullError, no retry)
  };

  virtual ~FaultInjector() = default;

  // Consulted once per ::open attempt; true = simulate open failure.
  virtual bool fail_open() { return false; }

  // Consulted before each pread at the given absolute file offset.
  virtual PreadFault pread_fault(std::uint64_t offset) {
    (void)offset;
    return PreadFault::kNone;
  }

  // May corrupt bytes just read at the given absolute file offset.
  virtual void corrupt(std::byte* data, std::size_t len,
                       std::uint64_t offset) {
    (void)data;
    (void)len;
    (void)offset;
  }

  // Consulted at the start of each prefetched chunk fetch; true = the
  // worker dies (throws PrefetchWorkerDeath) before reading.
  virtual bool kill_prefetch_worker(std::uint64_t offset) {
    (void)offset;
    return false;
  }

  // Consulted before each write-side syscall. For kWrite/kPwrite the key
  // is the absolute file offset about to be written; for
  // kFsync/kRename/kClose it is a caller-maintained sequence number.
  virtual WriteFault write_fault(WriteOp op, std::uint64_t key) {
    (void)op;
    (void)key;
    return WriteFault::kNone;
  }
};

// Process-global injector consulted by write paths (AtomicFileWriter and
// the partition_file output sink) when no per-instance injector was given.
// Null by default — production binaries pay one load + branch. Installing
// is not thread-safe against concurrent I/O; do it at startup (or around a
// quiescent point in tests). The injector is borrowed, never owned.
FaultInjector* process_fault_injector() noexcept;
void install_process_fault_injector(FaultInjector* injector) noexcept;

// Builds a SeededFaultInjector from ADWISE_FAULT_* environment variables
// and installs it as the process-global injector, returning it (owned by a
// process-lifetime singleton). Returns nullptr and installs nothing when
// no ADWISE_FAULT_ variable is set. Recognized variables:
//   ADWISE_FAULT_SEED            uint64 schedule seed (default 1)
//   ADWISE_FAULT_READ_SHORT_P    ADWISE_FAULT_READ_EINTR_P
//   ADWISE_FAULT_READ_EAGAIN_P   ADWISE_FAULT_BITFLIP_P
//   ADWISE_FAULT_FAIL_OPENS      ADWISE_FAULT_KILL_WORKER_AFTER
//   ADWISE_FAULT_WRITE_SHORT_P   ADWISE_FAULT_WRITE_EINTR_P
//   ADWISE_FAULT_WRITE_EIO_P     ADWISE_FAULT_ENOSPC_P
// This is how subprocess tests and tools/run_chaos.py inject faults into
// unmodified CLI binaries.
FaultInjector* install_fault_injector_from_env();

// RAII guard for tests: installs an injector for the enclosing scope and
// restores the previous one on exit, so a test binary running many cases
// in one process cannot leak faults into its neighbours.
class ScopedProcessFaultInjector {
 public:
  explicit ScopedProcessFaultInjector(FaultInjector* injector)
      : previous_(process_fault_injector()) {
    install_process_fault_injector(injector);
  }
  ~ScopedProcessFaultInjector() {
    install_process_fault_injector(previous_);
  }
  ScopedProcessFaultInjector(const ScopedProcessFaultInjector&) = delete;
  ScopedProcessFaultInjector& operator=(const ScopedProcessFaultInjector&) =
      delete;

 private:
  FaultInjector* previous_;
};

// Seed-driven injector: each (operation, offset) pair faults at most once,
// decided by hashing seed and offset — so the schedule is a deterministic
// function of the seed and the access pattern, retries always make
// progress, and two runs with the same seed observe identical faults.
class SeededFaultInjector final : public FaultInjector {
 public:
  struct Options {
    std::uint64_t seed = 1;
    double short_read_probability = 0.0;
    double eintr_probability = 0.0;
    double eagain_probability = 0.0;
    double bitflip_probability = 0.0;
    int fail_opens = 0;            // fail the first N open attempts
    std::int64_t kill_worker_after = -1;  // kill the (N+1)-th fetch; -1 = never
    // Write-side schedule. Short writes and EINTR apply to write/pwrite
    // only; EIO and ENOSPC apply to every WriteOp (a rename can hit
    // ENOSPC on a full metadata block just like a write can).
    double short_write_probability = 0.0;
    double write_eintr_probability = 0.0;
    double write_eio_probability = 0.0;
    double enospc_probability = 0.0;
  };

  explicit SeededFaultInjector(const Options& options) : options_(options) {}

  bool fail_open() override;
  PreadFault pread_fault(std::uint64_t offset) override;
  void corrupt(std::byte* data, std::size_t len,
               std::uint64_t offset) override;
  bool kill_prefetch_worker(std::uint64_t offset) override;
  WriteFault write_fault(WriteOp op, std::uint64_t key) override;

  struct Counters {
    std::uint64_t short_reads = 0;
    std::uint64_t eintrs = 0;
    std::uint64_t eagains = 0;
    std::uint64_t bitflips = 0;
    std::uint64_t failed_opens = 0;
    std::uint64_t worker_kills = 0;
    std::uint64_t short_writes = 0;
    std::uint64_t write_eintrs = 0;
    std::uint64_t write_eios = 0;
    std::uint64_t enospcs = 0;
  };
  [[nodiscard]] Counters counters() const;

 private:
  [[nodiscard]] bool decide(std::uint64_t salt, std::uint64_t offset,
                            double probability);

  Options options_;
  // The stream's consumer and prefetch worker never call in concurrently,
  // but a mutex keeps the injector unconditionally safe (and TSan-clean)
  // either way — this is test machinery, not a hot path.
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, bool> fired_;
  std::uint64_t fetches_ = 0;
  bool worker_killed_ = false;
  Counters counters_;
};

// Wraps a rewindable stream and throws TransientIoError before delivering
// seed-chosen edge positions. Each position faults at most
// faults_per_position times across the wrapper's lifetime — deliberately
// NOT reset by rewind() — so any retry/resume loop terminates: a resumed
// run that re-skips past a previously faulted position sails through.
class FaultInjectingEdgeStream final : public RewindableEdgeStream {
 public:
  struct Options {
    std::uint64_t seed = 1;
    double fault_probability = 0.0;  // per edge position
    int faults_per_position = 1;
  };

  FaultInjectingEdgeStream(RewindableEdgeStream& inner, const Options& options)
      : inner_(&inner), options_(options) {}

  bool next(Edge& out) override;
  [[nodiscard]] std::size_t size_hint() const override {
    return inner_->size_hint();
  }
  void rewind() override {
    inner_->rewind();
    pos_ = 0;
  }

  [[nodiscard]] std::uint64_t faults_injected() const { return faults_; }

 private:
  RewindableEdgeStream* inner_;
  Options options_;
  std::uint64_t pos_ = 0;
  std::uint64_t faults_ = 0;
  std::unordered_map<std::uint64_t, int> fired_;
};

}  // namespace adwise
