#include "src/io/adw_shards.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "src/common/crc32.h"
#include "src/graph/edge_stream.h"
#include "src/graph/file_stream.h"
#include "src/io/atomic_file.h"
#include "src/io/binary_stream.h"
#include "src/io/io_error.h"

namespace adwise {

namespace {

// Keeps a crafted shard count from turning into a multi-GiB entry
// allocation before the exact-size check can reject the file.
constexpr std::uint64_t kMaxShards = std::uint64_t{1} << 20;

void encode_manifest_header(const AdwManifest& manifest, std::byte* out) {
  for (std::size_t i = 0; i < kAdwManifestMagic.size(); ++i) {
    out[i] = static_cast<std::byte>(kAdwManifestMagic[i]);
  }
  adw_store_le32(kAdwManifestVersion, out + 4);
  adw_store_le64(manifest.num_shards(), out + 8);
  adw_store_le64(manifest.num_edges(), out + 16);
  adw_store_le64(manifest.max_vertex_id(), out + 24);
}

// Removes the manifest and every shard file — failure cleanup, so a
// pipeline can never pick up a half-converted sharded graph.
void remove_sharded_outputs(const std::string& manifest_path,
                            std::uint32_t shards) {
  std::remove(manifest_path.c_str());
  for (std::uint32_t i = 0; i < shards; ++i) {
    std::remove(adw_shard_path(manifest_path, i).c_str());
  }
}

// Core splitter: writes the next chunk_sizes(total, shards) edges of `in`
// into one AdwWriter per shard, then the manifest. The caller guarantees
// `in` delivers no self-loops (text and binary streams both filter them),
// so every delivered edge becomes exactly one shard record and the chunk
// boundaries land where the spotlight runner expects them. Throws if the
// stream delivers fewer or more edges than `total` — a silently short
// shard would skew every instance load after it.
AdwManifest split_stream_to_shards(EdgeStream& in,
                                   const std::string& manifest_path,
                                   std::uint32_t shards, std::uint64_t total) {
  const auto sizes = chunk_sizes(static_cast<std::size_t>(total), shards);
  AdwManifest manifest;
  manifest.shards.reserve(shards);
  Edge e;
  for (std::uint32_t i = 0; i < shards; ++i) {
    AdwWriter writer(adw_shard_path(manifest_path, i));
    for (std::size_t j = 0; j < sizes[i]; ++j) {
      if (!in.next(e)) {
        throw std::runtime_error(
            "sharding " + manifest_path + ": stream ended after " +
            std::to_string(manifest.num_edges() + writer.header().num_edges) +
            " edges but the counting pass promised " + std::to_string(total));
      }
      writer.add(e);
    }
    writer.close();
    manifest.shards.push_back({writer.header().num_edges,
                               writer.header().max_vertex_id});
  }
  if (in.next(e)) {
    throw std::runtime_error("sharding " + manifest_path +
                             ": stream delivered more edges than the " +
                             std::to_string(total) +
                             " the counting pass promised");
  }
  write_adw_manifest(manifest_path, manifest);
  return manifest;
}

template <typename Fn>
AdwManifest shard_with_cleanup(const std::string& manifest_path,
                               std::uint32_t shards, Fn&& fn) {
  if (shards == 0) throw std::runtime_error("shard count must be >= 1");
  try {
    return fn();
  } catch (...) {
    remove_sharded_outputs(manifest_path, shards);
    throw;
  }
}

}  // namespace

std::uint64_t AdwManifest::num_edges() const {
  std::uint64_t total = 0;
  for (const AdwShardInfo& s : shards) total += s.num_edges;
  return total;
}

std::uint64_t AdwManifest::max_vertex_id() const {
  std::uint64_t max_id = 0;
  for (const AdwShardInfo& s : shards) {
    max_id = std::max(max_id, s.max_vertex_id);
  }
  return max_id;
}

std::string adw_shard_path(const std::string& manifest_path,
                           std::uint32_t shard) {
  constexpr std::string_view kExt = ".adws";
  std::string base = manifest_path;
  if (base.size() >= kExt.size() &&
      base.compare(base.size() - kExt.size(), kExt.size(), kExt) == 0) {
    base.resize(base.size() - kExt.size());
  }
  return base + ".shard" + std::to_string(shard) + ".adw";
}

void write_adw_manifest(const std::string& path, const AdwManifest& manifest) {
  std::vector<std::byte> raw(kAdwManifestHeaderBytes +
                             manifest.shards.size() * kAdwManifestEntryBytes +
                             kAdwManifestCrcBytes);
  encode_manifest_header(manifest, raw.data());
  std::byte* cursor = raw.data() + kAdwManifestHeaderBytes;
  for (const AdwShardInfo& s : manifest.shards) {
    adw_store_le64(s.num_edges, cursor);
    adw_store_le64(s.max_vertex_id, cursor + 8);
    cursor += kAdwManifestEntryBytes;
  }
  // Trailing CRC over everything before it, then an atomic tmp + fsync +
  // rename: readers can never see a torn manifest.
  adw_store_le32(crc32(raw.data(), raw.size() - kAdwManifestCrcBytes),
                 cursor);
  AtomicFileWriter out(path);
  out.append(raw.data(), raw.size());
  out.commit();
}

AdwManifest read_adw_manifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open manifest: " + path);
  std::byte raw[kAdwManifestHeaderBytes];
  in.read(reinterpret_cast<char*>(raw), kAdwManifestHeaderBytes);
  if (in.gcount() != static_cast<std::streamsize>(kAdwManifestHeaderBytes)) {
    throw CorruptDataError("truncated .adws manifest header in " + path +
                           ": wanted " +
                           std::to_string(kAdwManifestHeaderBytes) +
                           " bytes, got " + std::to_string(in.gcount()));
  }
  for (std::size_t i = 0; i < kAdwManifestMagic.size(); ++i) {
    if (std::to_integer<char>(raw[i]) != kAdwManifestMagic[i]) {
      throw CorruptDataError(
          "not an .adws manifest (bad magic at byte offset 0, expected "
          "'ADWS'): " +
          path);
    }
  }
  const std::uint32_t version = adw_load_le32(raw + 4);
  if (version != kAdwManifestVersionLegacy &&
      version != kAdwManifestVersion) {
    throw CorruptDataError("unsupported .adws manifest version " +
                           std::to_string(version) +
                           " (supported: 1, 2): " + path);
  }
  const std::uint64_t num_shards = adw_load_le64(raw + 8);
  const std::uint64_t stored_edges = adw_load_le64(raw + 16);
  const std::uint64_t stored_max_id = adw_load_le64(raw + 24);
  if (num_shards == 0 || num_shards > kMaxShards) {
    throw CorruptDataError("corrupt .adws manifest (shard count " +
                           std::to_string(num_shards) + " outside [1, " +
                           std::to_string(kMaxShards) + "]): " + path);
  }
  in.seekg(0, std::ios::end);
  const auto file_bytes = static_cast<std::uint64_t>(in.tellg());
  const std::uint64_t expected =
      kAdwManifestHeaderBytes + num_shards * kAdwManifestEntryBytes +
      (version >= kAdwManifestVersion ? kAdwManifestCrcBytes : 0);
  if (file_bytes != expected) {
    throw CorruptDataError(
        "corrupt .adws manifest (size " + std::to_string(file_bytes) +
        ", header implies " + std::to_string(expected) + "): " + path);
  }
  if (version >= kAdwManifestVersion) {
    // Whole-file CRC before trusting a single entry.
    std::vector<std::byte> all(static_cast<std::size_t>(file_bytes));
    in.seekg(0, std::ios::beg);
    in.read(reinterpret_cast<char*>(all.data()),
            static_cast<std::streamsize>(all.size()));
    if (in.gcount() != static_cast<std::streamsize>(all.size())) {
      throw CorruptDataError("truncated .adws manifest in " + path);
    }
    const std::uint32_t stored_crc =
        adw_load_le32(all.data() + all.size() - kAdwManifestCrcBytes);
    const std::uint32_t actual_crc =
        crc32(all.data(), all.size() - kAdwManifestCrcBytes);
    if (stored_crc != actual_crc) {
      throw CorruptDataError(
          "corrupt .adws manifest (CRC mismatch at byte offset " +
          std::to_string(file_bytes - kAdwManifestCrcBytes) + ": stored " +
          std::to_string(stored_crc) + ", contents hash to " +
          std::to_string(actual_crc) + "): " + path);
    }
  }
  in.seekg(kAdwManifestHeaderBytes, std::ios::beg);
  AdwManifest manifest;
  manifest.shards.resize(static_cast<std::size_t>(num_shards));
  for (AdwShardInfo& s : manifest.shards) {
    std::byte entry[kAdwManifestEntryBytes];
    in.read(reinterpret_cast<char*>(entry), kAdwManifestEntryBytes);
    if (in.gcount() != static_cast<std::streamsize>(kAdwManifestEntryBytes)) {
      throw CorruptDataError("truncated .adws manifest entries: " + path);
    }
    s.num_edges = adw_load_le64(entry);
    s.max_vertex_id = adw_load_le64(entry + 8);
  }
  if (manifest.num_edges() != stored_edges ||
      manifest.max_vertex_id() != stored_max_id) {
    throw CorruptDataError(
        "corrupt .adws manifest (header totals " +
        std::to_string(stored_edges) + " edges / max id " +
        std::to_string(stored_max_id) + " disagree with entry sums " +
        std::to_string(manifest.num_edges()) + " / " +
        std::to_string(manifest.max_vertex_id()) + "): " + path);
  }
  return manifest;
}

AdwManifest read_and_validate_adw_manifest(const std::string& path) {
  const AdwManifest manifest = read_adw_manifest(path);
  for (std::uint32_t i = 0; i < manifest.num_shards(); ++i) {
    const std::string shard = adw_shard_path(path, i);
    const AdwHeader header = read_adw_header(shard);
    if (header.num_edges != manifest.shards[i].num_edges ||
        header.max_vertex_id != manifest.shards[i].max_vertex_id) {
      throw std::runtime_error(
          "shard disagrees with manifest " + path + ": " + shard +
          " holds " + std::to_string(header.num_edges) + " edges (max id " +
          std::to_string(header.max_vertex_id) + "), manifest entry says " +
          std::to_string(manifest.shards[i].num_edges) + " (max id " +
          std::to_string(manifest.shards[i].max_vertex_id) + ")");
    }
  }
  return manifest;
}

bool is_adw_manifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[4];
  in.read(magic, 4);
  return in.gcount() == 4 &&
         std::equal(kAdwManifestMagic.begin(), kAdwManifestMagic.end(), magic);
}

AdwManifest edge_list_to_sharded_adw(const std::string& text_path,
                                     const std::string& manifest_path,
                                     std::uint32_t shards) {
  // Binary inputs fed to the text parser would have every line skipped as
  // malformed and shard into a valid empty graph — refuse instead of
  // silently discarding the input's edges.
  if (is_adw_file(text_path)) {
    throw std::runtime_error(
        "input is an .adw binary, not text (use adw_to_sharded_adw): " +
        text_path);
  }
  if (is_adw_manifest(text_path)) {
    throw std::runtime_error(
        "input is an .adws manifest, not text — reshard from the original "
        ".adw or text file: " +
        text_path);
  }
  // Pass 1 (scan) fixes the chunk boundaries; it counts exactly the edges
  // next() will deliver (malformed lines and self-loops excluded), so the
  // split matches chunk_sizes of the streamable count. Open the input
  // before touching any output: a bad input path must not clobber a
  // pre-existing sharded graph.
  const FileEdgeStream::Stats stats = FileEdgeStream::scan(text_path);
  FileEdgeStream in(text_path, stats.num_edges);
  return shard_with_cleanup(manifest_path, shards, [&] {
    return split_stream_to_shards(in, manifest_path, shards, stats.num_edges);
  });
}

AdwManifest adw_to_sharded_adw(const std::string& adw_path,
                               const std::string& manifest_path,
                               std::uint32_t shards) {
  BinaryEdgeStream in(adw_path);
  return shard_with_cleanup(manifest_path, shards, [&] {
    return split_stream_to_shards(in, manifest_path, shards,
                                  in.header().num_edges);
  });
}

AdwManifest write_sharded_adw(const std::string& manifest_path,
                              std::span<const Edge> edges,
                              std::uint32_t shards) {
  // Chunk boundaries are over the streamable (self-loop-free) sequence —
  // the same sequence write_adw_file would store.
  std::vector<Edge> filtered;
  filtered.reserve(edges.size());
  for (const Edge& e : edges) {
    if (e.u != e.v) filtered.push_back(e);
  }
  VectorEdgeStream in(filtered);
  return shard_with_cleanup(manifest_path, shards, [&] {
    return split_stream_to_shards(in, manifest_path, shards, filtered.size());
  });
}

}  // namespace adwise
