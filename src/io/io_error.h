// I/O failure taxonomy for the out-of-core subsystem.
//
// Transient errors (interrupted syscalls, momentary resource exhaustion,
// injected test faults) are worth retrying, and a checkpointed run can
// resume through them. Corrupt data (bad magic, size mismatches, CRC
// failures, truncation) must never be retried or silently accepted — the
// bytes are wrong, not the timing. Both derive from std::runtime_error so
// existing catch sites keep working; new callers can distinguish.
#pragma once

#include <stdexcept>

namespace adwise {

class TransientIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CorruptDataError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace adwise
