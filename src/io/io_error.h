// I/O failure taxonomy for the out-of-core subsystem.
//
// Transient errors (interrupted syscalls, momentary resource exhaustion,
// injected test faults) are worth retrying, and a checkpointed run can
// resume through them. Corrupt data (bad magic, size mismatches, CRC
// failures, truncation) must never be retried or silently accepted — the
// bytes are wrong, not the timing. Disk full is its own class: retrying in
// microseconds is pointless, but the caller (an operator, a supervisor
// daemon) can free space and restart from the last checkpoint, so the
// error carries the destination path and how far the write got. All derive
// from std::runtime_error so existing catch sites keep working; new
// callers can distinguish.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace adwise {

class TransientIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CorruptDataError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// The filesystem ran out of space (ENOSPC/EDQUOT) while writing `path`
// after `bytes_written` bytes had been accepted. Not retried — bounded
// backoff cannot create free space — but the write path guarantees no torn
// destination file exists when this propagates.
class DiskFullError : public std::runtime_error {
 public:
  DiskFullError(std::string path, std::uint64_t bytes_written,
                const std::string& detail)
      : std::runtime_error("disk full writing " + path + " after " +
                           std::to_string(bytes_written) + " bytes: " +
                           detail),
        path_(std::move(path)),
        bytes_written_(bytes_written) {}

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }

 private:
  std::string path_;
  std::uint64_t bytes_written_;
};

}  // namespace adwise
