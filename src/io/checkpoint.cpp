#include "src/io/checkpoint.h"

#include <algorithm>
#include <fstream>
#include <limits>

#include "src/common/bytes.h"
#include "src/common/crc32.h"
#include "src/io/adw_format.h"  // little-endian store/load primitives
#include "src/io/atomic_file.h"
#include "src/io/io_error.h"

namespace adwise {

namespace {

std::vector<std::byte> encode_meta(const CheckpointMeta& meta) {
  ByteWriter w;
  w.str(meta.algorithm);
  w.u32(meta.k);
  w.u64(meta.num_vertices);
  w.u64(meta.total_edges);
  w.u64(meta.edges_consumed);
  w.u64(meta.assignments);
  w.u64(meta.sink_bytes);
  return w.take();
}

CheckpointMeta decode_meta(std::span<const std::byte> raw,
                           const std::string& path) {
  try {
    ByteReader r(raw);
    CheckpointMeta meta;
    meta.algorithm = r.str();
    meta.k = r.u32();
    meta.num_vertices = r.u64();
    meta.total_edges = r.u64();
    meta.edges_consumed = r.u64();
    meta.assignments = r.u64();
    meta.sink_bytes = r.u64();
    r.expect_end();
    return meta;
  } catch (const std::exception& e) {
    throw CorruptDataError("corrupt checkpoint meta section in " + path +
                           ": " + e.what());
  }
}

void append_section(AtomicFileWriter& out, std::uint32_t id,
                    std::span<const std::byte> payload) {
  std::byte header[kCheckpointSectionHeaderBytes];
  adw_store_le32(id, header);
  adw_store_le64(payload.size(), header + 4);
  adw_store_le32(payload.empty() ? crc32(nullptr, 0)
                                 : crc32(payload.data(), payload.size()),
                 header + 12);
  out.append(header, kCheckpointSectionHeaderBytes);
  if (!payload.empty()) out.append(payload.data(), payload.size());
}

}  // namespace

void write_checkpoint_file(const std::string& path, const Checkpoint& ckpt,
                           const AtomicFileWriter::Options& io) {
  AtomicFileWriter out(path, io);
  std::byte header[kCheckpointHeaderBytes];
  for (std::size_t i = 0; i < kCheckpointMagic.size(); ++i) {
    header[i] = static_cast<std::byte>(kCheckpointMagic[i]);
  }
  adw_store_le32(kCheckpointVersion, header + 4);
  adw_store_le32(3, header + 8);  // section count
  adw_store_le32(crc32(header, 12), header + 12);
  out.append(header, kCheckpointHeaderBytes);
  const std::vector<std::byte> meta = encode_meta(ckpt.meta);
  append_section(out, kSectionMeta, meta);
  append_section(out, kSectionPartitionState, ckpt.partition_state);
  append_section(out, kSectionAlgorithmState, ckpt.algorithm_state);
  out.commit();
}

Checkpoint read_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open checkpoint: " + path);
  in.seekg(0, std::ios::end);
  const auto file_bytes = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  if (file_bytes < kCheckpointHeaderBytes) {
    throw CorruptDataError("truncated checkpoint " + path + ": " +
                           std::to_string(file_bytes) +
                           " bytes, header alone needs " +
                           std::to_string(kCheckpointHeaderBytes));
  }
  std::byte header[kCheckpointHeaderBytes];
  in.read(reinterpret_cast<char*>(header), kCheckpointHeaderBytes);
  if (in.gcount() != static_cast<std::streamsize>(kCheckpointHeaderBytes)) {
    throw CorruptDataError("truncated checkpoint header: " + path);
  }
  for (std::size_t i = 0; i < kCheckpointMagic.size(); ++i) {
    if (std::to_integer<char>(header[i]) != kCheckpointMagic[i]) {
      throw CorruptDataError(
          "not a checkpoint file (bad magic at byte offset 0, expected "
          "'ADWK'): " +
          path);
    }
  }
  const std::uint32_t version = adw_load_le32(header + 4);
  if (version != kCheckpointVersion) {
    throw CorruptDataError("unsupported checkpoint version " +
                           std::to_string(version) + " (supported: " +
                           std::to_string(kCheckpointVersion) +
                           "): " + path);
  }
  const std::uint32_t header_crc = adw_load_le32(header + 12);
  const std::uint32_t actual_header_crc = crc32(header, 12);
  if (header_crc != actual_header_crc) {
    throw CorruptDataError(
        "corrupt checkpoint header (CRC at byte offset 12: stored " +
        std::to_string(header_crc) + ", header hashes to " +
        std::to_string(actual_header_crc) + "): " + path);
  }
  const std::uint32_t section_count = adw_load_le32(header + 8);
  if (section_count != 3) {
    throw CorruptDataError("corrupt checkpoint (section count " +
                           std::to_string(section_count) +
                           ", expected 3): " + path);
  }

  Checkpoint ckpt;
  bool seen[4] = {false, false, false, false};
  std::uint64_t offset = kCheckpointHeaderBytes;
  for (std::uint32_t s = 0; s < section_count; ++s) {
    if (file_bytes - offset < kCheckpointSectionHeaderBytes) {
      throw CorruptDataError(
          "truncated checkpoint " + path + ": section header at byte "
          "offset " +
          std::to_string(offset) + " needs " +
          std::to_string(kCheckpointSectionHeaderBytes) + " bytes, file has " +
          std::to_string(file_bytes - offset));
    }
    std::byte shdr[kCheckpointSectionHeaderBytes];
    in.read(reinterpret_cast<char*>(shdr), kCheckpointSectionHeaderBytes);
    if (in.gcount() !=
        static_cast<std::streamsize>(kCheckpointSectionHeaderBytes)) {
      throw CorruptDataError("truncated checkpoint section header: " + path);
    }
    const std::uint32_t id = adw_load_le32(shdr);
    const std::uint64_t len = adw_load_le64(shdr + 4);
    const std::uint32_t stored_crc = adw_load_le32(shdr + 12);
    offset += kCheckpointSectionHeaderBytes;
    if (id < kSectionMeta || id > kSectionAlgorithmState) {
      throw CorruptDataError("corrupt checkpoint (unknown section id " +
                             std::to_string(id) + " at byte offset " +
                             std::to_string(offset -
                                            kCheckpointSectionHeaderBytes) +
                             "): " + path);
    }
    if (seen[id]) {
      throw CorruptDataError("corrupt checkpoint (duplicate section id " +
                             std::to_string(id) + "): " + path);
    }
    seen[id] = true;
    if (len > file_bytes - offset) {
      throw CorruptDataError(
          "truncated checkpoint " + path + ": section " + std::to_string(id) +
          " claims " + std::to_string(len) + " payload bytes at byte offset " +
          std::to_string(offset) + ", file has " +
          std::to_string(file_bytes - offset));
    }
    std::vector<std::byte> payload(static_cast<std::size_t>(len));
    if (len > 0) {
      in.read(reinterpret_cast<char*>(payload.data()),
              static_cast<std::streamsize>(len));
      if (in.gcount() != static_cast<std::streamsize>(len)) {
        throw CorruptDataError("truncated checkpoint section payload: " +
                               path);
      }
    }
    const std::uint32_t actual_crc =
        payload.empty() ? crc32(nullptr, 0)
                        : crc32(payload.data(), payload.size());
    if (actual_crc != stored_crc) {
      throw CorruptDataError(
          "corrupt checkpoint section " + std::to_string(id) +
          " (CRC mismatch over " + std::to_string(len) +
          " bytes at byte offset " + std::to_string(offset) + ": stored " +
          std::to_string(stored_crc) + ", payload hashes to " +
          std::to_string(actual_crc) + "): " + path);
    }
    offset += len;
    switch (id) {
      case kSectionMeta:
        ckpt.meta = decode_meta(payload, path);
        break;
      case kSectionPartitionState:
        ckpt.partition_state = std::move(payload);
        break;
      case kSectionAlgorithmState:
        ckpt.algorithm_state = std::move(payload);
        break;
      default:
        break;
    }
  }
  if (offset != file_bytes) {
    throw CorruptDataError("corrupt checkpoint (" +
                           std::to_string(file_bytes - offset) +
                           " trailing bytes after the last section): " +
                           path);
  }
  if (!seen[kSectionMeta] || !seen[kSectionPartitionState] ||
      !seen[kSectionAlgorithmState]) {
    throw CorruptDataError(
        "corrupt checkpoint (missing a required section): " + path);
  }
  return ckpt;
}

bool is_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[4];
  in.read(magic, 4);
  return in.gcount() == 4 &&
         std::equal(kCheckpointMagic.begin(), kCheckpointMagic.end(), magic);
}

}  // namespace adwise
