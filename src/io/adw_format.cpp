#include "src/io/adw_format.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "src/common/crc32.h"
#include "src/graph/file_stream.h"
#include "src/io/io_error.h"

namespace adwise {

namespace {

// Flush granularity for the streaming writer: 64K records (512 KiB).
constexpr std::size_t kWriterBufferRecords = std::size_t{1} << 16;

// Largest edge count whose expected-size product cannot overflow uint64.
constexpr std::uint64_t kMaxEdges =
    (std::numeric_limits<std::uint64_t>::max() - kAdwHeaderBytes) /
    kAdwRecordBytes;

void encode_footer(const AdwHeader& header, std::uint32_t table_crc,
                   std::byte* out) {
  adw_store_le32(header.crc_block_bytes, out);
  adw_store_le32(static_cast<std::uint32_t>(adw_num_crc_blocks(
                     header.num_edges * kAdwRecordBytes,
                     header.crc_block_bytes)),
                 out + 4);
  adw_store_le32(table_crc, out + 8);
  for (std::size_t i = 0; i < kAdwFooterMagic.size(); ++i) {
    out[12 + i] = static_cast<std::byte>(kAdwFooterMagic[i]);
  }
}

void read_exact_at(std::ifstream& in, const std::string& path,
                   std::uint64_t offset, std::byte* out, std::size_t len,
                   const char* what) {
  in.seekg(static_cast<std::streamoff>(offset), std::ios::beg);
  in.read(reinterpret_cast<char*>(out), static_cast<std::streamsize>(len));
  if (in.gcount() != static_cast<std::streamsize>(len)) {
    throw CorruptDataError("truncated .adw " + std::string(what) + " in " +
                           path + ": wanted " + std::to_string(len) +
                           " bytes at byte offset " + std::to_string(offset) +
                           ", got " + std::to_string(in.gcount()));
  }
}

}  // namespace

void adw_encode_header(const AdwHeader& header, std::byte* out) {
  for (std::size_t i = 0; i < kAdwMagic.size(); ++i) {
    out[i] = static_cast<std::byte>(kAdwMagic[i]);
  }
  adw_store_le32(header.version, out + 4);
  adw_store_le64(header.num_edges, out + 8);
  adw_store_le64(header.max_vertex_id, out + 16);
}

AdwHeader adw_decode_header(const std::byte* in) {
  for (std::size_t i = 0; i < kAdwMagic.size(); ++i) {
    if (std::to_integer<char>(in[i]) != kAdwMagic[i]) {
      throw CorruptDataError(
          "not an .adw file (bad magic at byte offset 0: expected 'ADWF')");
    }
  }
  const std::uint32_t version = adw_load_le32(in + 4);
  if (version != kAdwVersion && version != kAdwVersionCrc) {
    throw CorruptDataError("unsupported .adw version " +
                           std::to_string(version) + " at byte offset 4 " +
                           "(supported: 1, 2)");
  }
  AdwHeader header;
  header.version = version;
  header.num_edges = adw_load_le64(in + 8);
  header.max_vertex_id = adw_load_le64(in + 16);
  return header;
}

AdwHeader read_adw_header(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open .adw file: " + path);
  std::byte raw[kAdwHeaderBytes];
  in.read(reinterpret_cast<char*>(raw), kAdwHeaderBytes);
  if (in.gcount() != static_cast<std::streamsize>(kAdwHeaderBytes)) {
    throw CorruptDataError(
        "truncated .adw header in " + path + ": wanted " +
        std::to_string(kAdwHeaderBytes) + " bytes, got " +
        std::to_string(in.gcount()));
  }
  AdwHeader header;
  try {
    header = adw_decode_header(raw);
  } catch (const CorruptDataError& e) {
    throw CorruptDataError(std::string(e.what()) + ": " + path);
  }
  in.seekg(0, std::ios::end);
  const auto file_bytes = static_cast<std::uint64_t>(in.tellg());
  if (header.num_edges > kMaxEdges) {
    // A crafted count this large would overflow the expected-size product
    // below and slip past the exact-size check.
    throw CorruptDataError("corrupt .adw file (absurd edge count " +
                           std::to_string(header.num_edges) + "): " + path);
  }
  if (header.num_edges == 0 && header.max_vertex_id != 0) {
    // The format pins max_vertex_id to 0 for empty files (AdwWriter only
    // raises it per added record). An empty file has no records to scan,
    // so this header check is what keeps bytes 16–23 tamper-evident in the
    // zero-edge case; non-empty files are covered by the stream's
    // observed-maximum cross-check at end of stream.
    throw CorruptDataError(
        "corrupt .adw file (num_edges == 0 but max_vertex_id " +
        std::to_string(header.max_vertex_id) +
        "; an empty graph must record max_vertex_id 0): " + path);
  }
  const std::uint64_t record_bytes = header.num_edges * kAdwRecordBytes;
  if (header.version == kAdwVersion) {
    const std::uint64_t expected = kAdwHeaderBytes + record_bytes;
    if (file_bytes != expected) {
      throw CorruptDataError(
          "corrupt .adw file (size " + std::to_string(file_bytes) +
          ", header implies " + std::to_string(expected) + "): " + path);
    }
    return header;
  }

  // Version 2: validate the footer before trusting any of its fields.
  if (file_bytes < kAdwHeaderBytes + record_bytes + kAdwFooterBytes) {
    throw CorruptDataError(
        "corrupt .adw v2 file (size " + std::to_string(file_bytes) +
        " smaller than records + footer, header implies at least " +
        std::to_string(kAdwHeaderBytes + record_bytes + kAdwFooterBytes) +
        "): " + path);
  }
  std::byte footer[kAdwFooterBytes];
  read_exact_at(in, path, file_bytes - kAdwFooterBytes, footer,
                kAdwFooterBytes, "footer");
  for (std::size_t i = 0; i < kAdwFooterMagic.size(); ++i) {
    if (std::to_integer<char>(footer[12 + i]) != kAdwFooterMagic[i]) {
      throw CorruptDataError(
          "corrupt .adw v2 file (bad footer magic at byte offset " +
          std::to_string(file_bytes - kAdwFooterBytes + 12) +
          ": expected 'ADWC'): " + path);
    }
  }
  header.crc_block_bytes = adw_load_le32(footer);
  const std::uint32_t footer_blocks = adw_load_le32(footer + 4);
  if (header.crc_block_bytes == 0 ||
      header.crc_block_bytes % kAdwRecordBytes != 0 ||
      header.crc_block_bytes > (1u << 30)) {
    throw CorruptDataError(
        "corrupt .adw v2 file (invalid crc_block_bytes " +
        std::to_string(header.crc_block_bytes) +
        ", expected a multiple of 8 in [8, 2^30]): " + path);
  }
  const std::uint64_t expected_blocks =
      adw_num_crc_blocks(record_bytes, header.crc_block_bytes);
  if (footer_blocks != expected_blocks) {
    throw CorruptDataError(
        "corrupt .adw v2 file (footer says " + std::to_string(footer_blocks) +
        " CRC blocks, record region implies " +
        std::to_string(expected_blocks) + "): " + path);
  }
  const std::uint64_t expected = kAdwHeaderBytes + record_bytes +
                                 expected_blocks * 4 + kAdwFooterBytes;
  if (file_bytes != expected) {
    throw CorruptDataError(
        "corrupt .adw v2 file (size " + std::to_string(file_bytes) +
        ", header + footer imply " + std::to_string(expected) + "): " + path);
  }
  // Verify the table's own checksum now so every consumer of the header can
  // trust the per-block CRCs it will read later.
  const std::uint64_t table_offset = kAdwHeaderBytes + record_bytes;
  std::vector<std::byte> table(expected_blocks * 4);
  read_exact_at(in, path, table_offset, table.data(), table.size(),
                "CRC table");
  const std::uint32_t actual_crc = crc32(table.data(), table.size());
  const std::uint32_t table_crc = adw_load_le32(footer + 8);
  if (actual_crc != table_crc) {
    throw CorruptDataError(
        "corrupt .adw v2 file (CRC table checksum mismatch at byte offset " +
        std::to_string(table_offset) + ": footer says " +
        std::to_string(table_crc) + ", table hashes to " +
        std::to_string(actual_crc) + "): " + path);
  }
  return header;
}

std::vector<std::uint32_t> read_adw_crc_table(const std::string& path,
                                              const AdwHeader& header) {
  if (header.version < kAdwVersionCrc) return {};
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open .adw file: " + path);
  const std::uint64_t record_bytes = header.num_edges * kAdwRecordBytes;
  const std::uint64_t num_blocks =
      adw_num_crc_blocks(record_bytes, header.crc_block_bytes);
  std::vector<std::byte> raw(num_blocks * 4);
  read_exact_at(in, path, kAdwHeaderBytes + record_bytes, raw.data(),
                raw.size(), "CRC table");
  std::byte footer[kAdwFooterBytes];
  read_exact_at(in, path,
                kAdwHeaderBytes + record_bytes + raw.size(), footer,
                kAdwFooterBytes, "footer");
  const std::uint32_t table_crc = adw_load_le32(footer + 8);
  const std::uint32_t actual_crc = crc32(raw.data(), raw.size());
  if (actual_crc != table_crc) {
    throw CorruptDataError(
        "corrupt .adw v2 file (CRC table checksum mismatch: footer says " +
        std::to_string(table_crc) + ", table hashes to " +
        std::to_string(actual_crc) + "): " + path);
  }
  std::vector<std::uint32_t> table(num_blocks);
  for (std::uint64_t i = 0; i < num_blocks; ++i) {
    table[i] = adw_load_le32(raw.data() + i * 4);
  }
  return table;
}

bool is_adw_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[4];
  in.read(magic, 4);
  return in.gcount() == 4 &&
         std::equal(kAdwMagic.begin(), kAdwMagic.end(), magic);
}

AdwWriter::AdwWriter(const std::string& path, const Options& options)
    : out_(path, options.io), options_(options), block_state_(crc32_init()) {
  if (options_.with_crc && (options_.crc_block_bytes == 0 ||
                            options_.crc_block_bytes % kAdwRecordBytes != 0 ||
                            options_.crc_block_bytes > (1u << 30))) {
    throw std::runtime_error(
        "AdwWriter: crc_block_bytes must be a multiple of 8 in [8, 2^30], "
        "got " +
        std::to_string(options_.crc_block_bytes));
  }
  header_.version = options_.with_crc ? kAdwVersionCrc : kAdwVersion;
  header_.crc_block_bytes = options_.with_crc ? options_.crc_block_bytes : 0;
  buffer_.reserve(kWriterBufferRecords * kAdwRecordBytes);
  // Zeroed placeholder: the real header is patched in close() once the
  // totals are known. The placeholder only ever exists in the temp file.
  const std::byte raw[kAdwHeaderBytes] = {};
  out_.append(raw, kAdwHeaderBytes);
}

AdwWriter::~AdwWriter() {
  // Deliberately no close(): an abandoned writer (scope exited without
  // close(), e.g. because conversion threw) drops its temp file and leaves
  // nothing under the destination name.
}

void AdwWriter::add(Edge e) {
  if (e.u == e.v) return;
  const std::size_t at = buffer_.size();
  buffer_.resize(at + kAdwRecordBytes);
  adw_encode_edge(e, buffer_.data() + at);
  ++header_.num_edges;
  header_.max_vertex_id =
      std::max<std::uint64_t>(header_.max_vertex_id, std::max(e.u, e.v));
  if (buffer_.size() >= kWriterBufferRecords * kAdwRecordBytes) {
    flush_records();
  }
}

void AdwWriter::feed_crc(const std::byte* data, std::size_t len) {
  // Accumulate per-block CRCs across arbitrary flush boundaries.
  while (len > 0) {
    const std::size_t room = options_.crc_block_bytes - block_fill_;
    const std::size_t take = std::min(len, room);
    block_state_ = crc32_feed(block_state_, data, take);
    block_fill_ += static_cast<std::uint32_t>(take);
    data += take;
    len -= take;
    if (block_fill_ == options_.crc_block_bytes) {
      block_crcs_.push_back(crc32_finish(block_state_));
      block_state_ = crc32_init();
      block_fill_ = 0;
    }
  }
}

void AdwWriter::flush_records() {
  if (buffer_.empty()) return;
  if (options_.with_crc) feed_crc(buffer_.data(), buffer_.size());
  out_.append(buffer_.data(), buffer_.size());
  buffer_.clear();
}

void AdwWriter::close() {
  if (closed_) return;
  flush_records();
  if (options_.with_crc) {
    if (block_fill_ > 0) {
      block_crcs_.push_back(crc32_finish(block_state_));
      block_state_ = crc32_init();
      block_fill_ = 0;
    }
    std::vector<std::byte> table(block_crcs_.size() * 4);
    for (std::size_t i = 0; i < block_crcs_.size(); ++i) {
      adw_store_le32(block_crcs_[i], table.data() + i * 4);
    }
    out_.append(table.data(), table.size());
    std::byte footer[kAdwFooterBytes];
    encode_footer(header_, crc32(table.data(), table.size()), footer);
    out_.append(footer, kAdwFooterBytes);
  }
  std::byte raw[kAdwHeaderBytes];
  adw_encode_header(header_, raw);
  out_.write_at(0, raw, kAdwHeaderBytes);
  out_.commit();
  closed_ = true;
}

void write_adw_file(const std::string& path, std::span<const Edge> edges,
                    const AdwWriter::Options& options) {
  AdwWriter writer(path, options);
  for (const Edge& e : edges) writer.add(e);
  writer.close();
}

AdwHeader edge_list_to_adw(const std::string& text_path,
                           const std::string& adw_path,
                           const AdwWriter::Options& options) {
  // A binary .adw fed to the text parser would have every line skipped as
  // malformed and be "converted" into a valid empty graph — refuse instead
  // of silently discarding the input's edges.
  if (is_adw_file(text_path)) {
    throw std::runtime_error("input is already an .adw file, not text: " +
                             text_path);
  }
  // Single text pass: the writer tracks count and max id itself, so no
  // counting pre-pass is needed. The cap only bounds size_hint(), which is
  // irrelevant here — next() stops at EOF regardless.
  // Open the input before touching the output: a bad input path must not
  // clobber a pre-existing converted file. On any mid-conversion failure
  // the atomic writer drops its temp file and a pre-existing output
  // survives untouched.
  FileEdgeStream in(text_path, std::numeric_limits<std::size_t>::max());
  AdwWriter out(adw_path, options);
  Edge e;
  while (in.next(e)) out.add(e);
  out.close();
  return out.header();
}

}  // namespace adwise
