#include "src/io/adw_format.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "src/graph/file_stream.h"

namespace adwise {

namespace {

// Flush granularity for the streaming writer: 64K records (512 KiB).
constexpr std::size_t kWriterBufferRecords = std::size_t{1} << 16;

}  // namespace

void adw_encode_header(const AdwHeader& header, std::byte* out) {
  for (std::size_t i = 0; i < kAdwMagic.size(); ++i) {
    out[i] = static_cast<std::byte>(kAdwMagic[i]);
  }
  adw_store_le32(kAdwVersion, out + 4);
  adw_store_le64(header.num_edges, out + 8);
  adw_store_le64(header.max_vertex_id, out + 16);
}

AdwHeader adw_decode_header(const std::byte* in) {
  for (std::size_t i = 0; i < kAdwMagic.size(); ++i) {
    if (std::to_integer<char>(in[i]) != kAdwMagic[i]) {
      throw std::runtime_error("not an .adw file (bad magic)");
    }
  }
  const std::uint32_t version = adw_load_le32(in + 4);
  if (version != kAdwVersion) {
    throw std::runtime_error("unsupported .adw version " +
                             std::to_string(version));
  }
  AdwHeader header;
  header.num_edges = adw_load_le64(in + 8);
  header.max_vertex_id = adw_load_le64(in + 16);
  return header;
}

AdwHeader read_adw_header(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open .adw file: " + path);
  std::byte raw[kAdwHeaderBytes];
  in.read(reinterpret_cast<char*>(raw), kAdwHeaderBytes);
  if (in.gcount() != static_cast<std::streamsize>(kAdwHeaderBytes)) {
    throw std::runtime_error("truncated .adw header: " + path);
  }
  const AdwHeader header = adw_decode_header(raw);
  in.seekg(0, std::ios::end);
  const auto file_bytes = static_cast<std::uint64_t>(in.tellg());
  constexpr std::uint64_t kMaxEdges =
      (std::numeric_limits<std::uint64_t>::max() - kAdwHeaderBytes) /
      kAdwRecordBytes;
  if (header.num_edges > kMaxEdges) {
    // A crafted count this large would overflow the expected-size product
    // below and slip past the exact-size check.
    throw std::runtime_error("corrupt .adw file (absurd edge count " +
                             std::to_string(header.num_edges) + "): " + path);
  }
  const std::uint64_t expected =
      kAdwHeaderBytes + header.num_edges * kAdwRecordBytes;
  if (file_bytes != expected) {
    throw std::runtime_error(
        "corrupt .adw file (size " + std::to_string(file_bytes) +
        ", header implies " + std::to_string(expected) + "): " + path);
  }
  return header;
}

bool is_adw_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[4];
  in.read(magic, 4);
  return in.gcount() == 4 &&
         std::equal(kAdwMagic.begin(), kAdwMagic.end(), magic);
}

AdwWriter::AdwWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path) {
  if (!out_) throw std::runtime_error("cannot create .adw file: " + path);
  buffer_.reserve(kWriterBufferRecords * kAdwRecordBytes);
  // Deliberately INVALID placeholder (zeroed, so the magic check fails):
  // only close() writes the real header, so a file abandoned mid-write can
  // never pass for a valid graph — not even as an empty one.
  const std::byte raw[kAdwHeaderBytes] = {};
  out_.write(reinterpret_cast<const char*>(raw), kAdwHeaderBytes);
}

AdwWriter::~AdwWriter() {
  // Deliberately no close(): an abandoned writer (scope exited without
  // close(), e.g. because conversion threw) leaves the zeroed placeholder
  // header, which every reader rejects. Callers that abandon mid-write
  // (edge_list_to_adw) additionally remove the file.
}

void AdwWriter::add(Edge e) {
  if (e.u == e.v) return;
  const std::size_t at = buffer_.size();
  buffer_.resize(at + kAdwRecordBytes);
  adw_encode_edge(e, buffer_.data() + at);
  ++header_.num_edges;
  header_.max_vertex_id =
      std::max<std::uint64_t>(header_.max_vertex_id, std::max(e.u, e.v));
  if (buffer_.size() >= kWriterBufferRecords * kAdwRecordBytes) {
    flush_records();
  }
}

void AdwWriter::flush_records() {
  if (buffer_.empty()) return;
  out_.write(reinterpret_cast<const char*>(buffer_.data()),
             static_cast<std::streamsize>(buffer_.size()));
  buffer_.clear();
}

void AdwWriter::close() {
  if (closed_) return;
  flush_records();
  out_.seekp(0, std::ios::beg);
  std::byte raw[kAdwHeaderBytes];
  adw_encode_header(header_, raw);
  out_.write(reinterpret_cast<const char*>(raw), kAdwHeaderBytes);
  out_.flush();
  if (!out_) throw std::runtime_error("failed writing .adw file: " + path_);
  out_.close();
  closed_ = true;
}

void write_adw_file(const std::string& path, std::span<const Edge> edges) {
  AdwWriter writer(path);
  for (const Edge& e : edges) writer.add(e);
  writer.close();
}

AdwHeader edge_list_to_adw(const std::string& text_path,
                           const std::string& adw_path) {
  // A binary .adw fed to the text parser would have every line skipped as
  // malformed and be "converted" into a valid empty graph — refuse instead
  // of silently discarding the input's edges.
  if (is_adw_file(text_path)) {
    throw std::runtime_error("input is already an .adw file, not text: " +
                             text_path);
  }
  // Single text pass: the writer tracks count and max id itself, so no
  // counting pre-pass is needed. The cap only bounds size_hint(), which is
  // irrelevant here — next() stops at EOF regardless.
  // Open the input before touching the output: a bad input path must not
  // clobber a pre-existing converted file.
  FileEdgeStream in(text_path, std::numeric_limits<std::size_t>::max());
  try {
    AdwWriter out(adw_path);
    Edge e;
    while (in.next(e)) out.add(e);
    out.close();
    return out.header();
  } catch (...) {
    // Never leave a partial output behind: a scripted pipeline must not be
    // able to pick up a half-converted graph.
    std::remove(adw_path.c_str());
    throw;
  }
}

}  // namespace adwise
