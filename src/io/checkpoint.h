// Durable partitioning checkpoints (.adwk) — the crash-tolerance anchor.
//
// A checkpoint captures everything needed to continue a partitioning run
// bit-identically after a crash: run metadata (algorithm, k, |V|, |E|, the
// exact stream edge offset, durable output bytes), the serialized
// PartitionState, and the algorithm's opaque state blob (for ADWISE: the
// window, lazy heaps, EWMA threshold, controller state and all report
// counters — see AdwisePartitioner::restore_algorithm_state).
//
// Layout (all integers little-endian):
//
//   offset  size  field
//        0     4  magic 'A' 'D' 'W' 'K'
//        4     4  format version (uint32, currently 1)
//        8     4  section_count  (uint32)
//       12     4  header_crc     (CRC-32 of bytes [0, 12))
//   then section_count sections, each:
//       +0     4  section id     (uint32; see kSection*)
//       +4     8  payload length (uint64)
//      +12     4  payload_crc    (CRC-32 of the payload bytes)
//      +16     -  payload
//
// Every section is independently CRC-protected and the file must contain
// exactly the three known sections with no trailing bytes — a truncated,
// bit-flipped or concatenated file is rejected, never partially resumed.
// Files are written through AtomicFileWriter (tmp + fsync + rename), so a
// crash mid-checkpoint leaves the previous checkpoint intact.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/io/atomic_file.h"

namespace adwise {

inline constexpr std::array<char, 4> kCheckpointMagic = {'A', 'D', 'W', 'K'};
inline constexpr std::uint32_t kCheckpointVersion = 1;
inline constexpr std::size_t kCheckpointHeaderBytes = 16;
inline constexpr std::size_t kCheckpointSectionHeaderBytes = 16;

inline constexpr std::uint32_t kSectionMeta = 1;
inline constexpr std::uint32_t kSectionPartitionState = 2;
inline constexpr std::uint32_t kSectionAlgorithmState = 3;

struct CheckpointMeta {
  std::string algorithm;        // EdgePartitioner::name() of the run
  std::uint32_t k = 0;          // number of partitions
  std::uint64_t num_vertices = 0;
  std::uint64_t total_edges = 0;     // stream size_hint at run start
  std::uint64_t edges_consumed = 0;  // stream edges to skip on resume
  std::uint64_t assignments = 0;     // sink calls already made
  std::uint64_t sink_bytes = 0;      // durable output bytes at checkpoint

  friend bool operator==(const CheckpointMeta&, const CheckpointMeta&) =
      default;
};

struct Checkpoint {
  CheckpointMeta meta;
  std::vector<std::byte> partition_state;
  std::vector<std::byte> algorithm_state;  // empty for stateless algorithms

  friend bool operator==(const Checkpoint&, const Checkpoint&) = default;
};

// Atomically writes the checkpoint to path. Throws std::runtime_error on
// I/O failure (DiskFullError / TransientIoError for the typed classes).
// `io` carries failpoints, retry policy and the temp-file suffix — the
// in-band degraded commit path uses a distinct suffix so it can never
// collide with a stalled writer thread's temp file.
void write_checkpoint_file(const std::string& path, const Checkpoint& ckpt,
                           const AtomicFileWriter::Options& io = {});

// Reads and fully validates a checkpoint: magic, version, header CRC,
// exact section structure, per-section CRCs, no trailing bytes. Throws
// std::runtime_error on open failure and CorruptDataError (with path,
// offsets and expected-vs-actual values) on malformed content.
[[nodiscard]] Checkpoint read_checkpoint_file(const std::string& path);

// True iff the file exists and begins with the checkpoint magic.
[[nodiscard]] bool is_checkpoint_file(const std::string& path);

}  // namespace adwise
