#include "src/io/fault_injection.h"

#include <string>

namespace adwise {

namespace {

// splitmix64: the standard 64-bit finalizer — full avalanche, so adjacent
// offsets decorrelate completely.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool hash_below(std::uint64_t seed, std::uint64_t salt, std::uint64_t key,
                double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  const std::uint64_t h = mix64(seed ^ mix64(salt) ^ mix64(key));
  // Top 53 bits → uniform double in [0, 1).
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  return unit < probability;
}

constexpr std::uint64_t kSaltShortRead = 0x5348u;  // arbitrary distinct salts
constexpr std::uint64_t kSaltEintr = 0x4549u;
constexpr std::uint64_t kSaltEagain = 0x4541u;
constexpr std::uint64_t kSaltBitflip = 0x4246u;

}  // namespace

bool SeededFaultInjector::decide(std::uint64_t salt, std::uint64_t offset,
                                 double probability) {
  if (!hash_below(options_.seed, salt, offset, probability)) return false;
  // One shot per (operation, offset): the retry after an injected fault
  // must succeed, otherwise no retry policy could ever make progress.
  bool& fired = fired_[mix64(salt) ^ offset];
  if (fired) return false;
  fired = true;
  return true;
}

bool SeededFaultInjector::fail_open() {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.failed_opens <
      static_cast<std::uint64_t>(options_.fail_opens < 0 ? 0
                                                         : options_.fail_opens)) {
    ++counters_.failed_opens;
    return true;
  }
  return false;
}

FaultInjector::PreadFault SeededFaultInjector::pread_fault(
    std::uint64_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  if (decide(kSaltEintr, offset, options_.eintr_probability)) {
    ++counters_.eintrs;
    return PreadFault::kEintr;
  }
  if (decide(kSaltEagain, offset, options_.eagain_probability)) {
    ++counters_.eagains;
    return PreadFault::kEagain;
  }
  if (decide(kSaltShortRead, offset, options_.short_read_probability)) {
    ++counters_.short_reads;
    return PreadFault::kShortRead;
  }
  return PreadFault::kNone;
}

void SeededFaultInjector::corrupt(std::byte* data, std::size_t len,
                                  std::uint64_t offset) {
  if (len == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!decide(kSaltBitflip, offset, options_.bitflip_probability)) return;
  const std::uint64_t bit =
      mix64(options_.seed ^ mix64(kSaltBitflip + 1) ^ mix64(offset)) %
      (static_cast<std::uint64_t>(len) * 8);
  data[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
  ++counters_.bitflips;
}

bool SeededFaultInjector::kill_prefetch_worker(std::uint64_t offset) {
  (void)offset;
  std::lock_guard<std::mutex> lock(mu_);
  if (worker_killed_ || options_.kill_worker_after < 0) {
    ++fetches_;
    return false;
  }
  if (fetches_++ ==
      static_cast<std::uint64_t>(options_.kill_worker_after)) {
    worker_killed_ = true;
    ++counters_.worker_kills;
    return true;
  }
  return false;
}

SeededFaultInjector::Counters SeededFaultInjector::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

bool FaultInjectingEdgeStream::next(Edge& out) {
  if (hash_below(options_.seed, 0x4553u, pos_, options_.fault_probability)) {
    int& thrown = fired_[pos_];
    if (thrown < options_.faults_per_position) {
      ++thrown;
      ++faults_;
      throw TransientIoError(
          "injected transient stream fault before edge position " +
          std::to_string(pos_));
    }
  }
  if (!inner_->next(out)) return false;
  ++pos_;
  return true;
}

}  // namespace adwise
