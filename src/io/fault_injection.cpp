#include "src/io/fault_injection.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>

namespace adwise {

namespace {

// splitmix64: the standard 64-bit finalizer — full avalanche, so adjacent
// offsets decorrelate completely.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool hash_below(std::uint64_t seed, std::uint64_t salt, std::uint64_t key,
                double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  const std::uint64_t h = mix64(seed ^ mix64(salt) ^ mix64(key));
  // Top 53 bits → uniform double in [0, 1).
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  return unit < probability;
}

constexpr std::uint64_t kSaltShortRead = 0x5348u;  // arbitrary distinct salts
constexpr std::uint64_t kSaltEintr = 0x4549u;
constexpr std::uint64_t kSaltEagain = 0x4541u;
constexpr std::uint64_t kSaltBitflip = 0x4246u;
constexpr std::uint64_t kSaltShortWrite = 0x5357u;
constexpr std::uint64_t kSaltWriteEintr = 0x5745u;
constexpr std::uint64_t kSaltWriteEio = 0x5749u;
constexpr std::uint64_t kSaltEnospc = 0x454eu;

// Each WriteOp gets its own fired_ keyspace so e.g. the first fsync and a
// pwrite at offset 0 cannot shadow each other's once-only slots.
std::uint64_t write_op_salt(FaultInjector::WriteOp op) {
  return 0x574f0000u + static_cast<std::uint64_t>(op);
}

std::atomic<FaultInjector*> g_process_injector{nullptr};

double env_probability(const char* name, bool* any) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return 0.0;
  *any = true;
  return std::strtod(v, nullptr);
}

std::int64_t env_int(const char* name, std::int64_t fallback, bool* any) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  *any = true;
  return std::strtoll(v, nullptr, 10);
}

}  // namespace

FaultInjector* process_fault_injector() noexcept {
  return g_process_injector.load(std::memory_order_acquire);
}

void install_process_fault_injector(FaultInjector* injector) noexcept {
  g_process_injector.store(injector, std::memory_order_release);
}

FaultInjector* install_fault_injector_from_env() {
  bool any = false;
  SeededFaultInjector::Options o;
  o.seed = static_cast<std::uint64_t>(env_int("ADWISE_FAULT_SEED", 1, &any));
  o.short_read_probability = env_probability("ADWISE_FAULT_READ_SHORT_P", &any);
  o.eintr_probability = env_probability("ADWISE_FAULT_READ_EINTR_P", &any);
  o.eagain_probability = env_probability("ADWISE_FAULT_READ_EAGAIN_P", &any);
  o.bitflip_probability = env_probability("ADWISE_FAULT_BITFLIP_P", &any);
  o.fail_opens =
      static_cast<int>(env_int("ADWISE_FAULT_FAIL_OPENS", 0, &any));
  o.kill_worker_after = env_int("ADWISE_FAULT_KILL_WORKER_AFTER", -1, &any);
  o.short_write_probability =
      env_probability("ADWISE_FAULT_WRITE_SHORT_P", &any);
  o.write_eintr_probability =
      env_probability("ADWISE_FAULT_WRITE_EINTR_P", &any);
  o.write_eio_probability = env_probability("ADWISE_FAULT_WRITE_EIO_P", &any);
  o.enospc_probability = env_probability("ADWISE_FAULT_ENOSPC_P", &any);
  if (!any) return nullptr;
  // Leaked on purpose: the injector must outlive every stream and writer
  // in the process, including those torn down during static destruction.
  static std::unique_ptr<SeededFaultInjector> owner;
  owner = std::make_unique<SeededFaultInjector>(o);
  install_process_fault_injector(owner.get());
  return owner.get();
}

bool SeededFaultInjector::decide(std::uint64_t salt, std::uint64_t offset,
                                 double probability) {
  if (!hash_below(options_.seed, salt, offset, probability)) return false;
  // One shot per (operation, offset): the retry after an injected fault
  // must succeed, otherwise no retry policy could ever make progress.
  bool& fired = fired_[mix64(salt) ^ offset];
  if (fired) return false;
  fired = true;
  return true;
}

bool SeededFaultInjector::fail_open() {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.failed_opens <
      static_cast<std::uint64_t>(options_.fail_opens < 0 ? 0
                                                         : options_.fail_opens)) {
    ++counters_.failed_opens;
    return true;
  }
  return false;
}

FaultInjector::PreadFault SeededFaultInjector::pread_fault(
    std::uint64_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  if (decide(kSaltEintr, offset, options_.eintr_probability)) {
    ++counters_.eintrs;
    return PreadFault::kEintr;
  }
  if (decide(kSaltEagain, offset, options_.eagain_probability)) {
    ++counters_.eagains;
    return PreadFault::kEagain;
  }
  if (decide(kSaltShortRead, offset, options_.short_read_probability)) {
    ++counters_.short_reads;
    return PreadFault::kShortRead;
  }
  return PreadFault::kNone;
}

void SeededFaultInjector::corrupt(std::byte* data, std::size_t len,
                                  std::uint64_t offset) {
  if (len == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!decide(kSaltBitflip, offset, options_.bitflip_probability)) return;
  const std::uint64_t bit =
      mix64(options_.seed ^ mix64(kSaltBitflip + 1) ^ mix64(offset)) %
      (static_cast<std::uint64_t>(len) * 8);
  data[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
  ++counters_.bitflips;
}

bool SeededFaultInjector::kill_prefetch_worker(std::uint64_t offset) {
  (void)offset;
  std::lock_guard<std::mutex> lock(mu_);
  if (worker_killed_ || options_.kill_worker_after < 0) {
    ++fetches_;
    return false;
  }
  if (fetches_++ ==
      static_cast<std::uint64_t>(options_.kill_worker_after)) {
    worker_killed_ = true;
    ++counters_.worker_kills;
    return true;
  }
  return false;
}

FaultInjector::WriteFault SeededFaultInjector::write_fault(
    WriteOp op, std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  // The key is hashed together with a per-op salt so each (op, key) pair
  // has its own once-only slot and its own schedule.
  const std::uint64_t opkey = mix64(write_op_salt(op)) ^ key;
  if (op == WriteOp::kWrite || op == WriteOp::kPwrite) {
    if (decide(kSaltWriteEintr, opkey, options_.write_eintr_probability)) {
      ++counters_.write_eintrs;
      return WriteFault::kEintr;
    }
    if (decide(kSaltShortWrite, opkey, options_.short_write_probability)) {
      ++counters_.short_writes;
      return WriteFault::kShortWrite;
    }
  }
  if (decide(kSaltWriteEio, opkey, options_.write_eio_probability)) {
    ++counters_.write_eios;
    return WriteFault::kEio;
  }
  if (decide(kSaltEnospc, opkey, options_.enospc_probability)) {
    ++counters_.enospcs;
    return WriteFault::kEnospc;
  }
  return WriteFault::kNone;
}

SeededFaultInjector::Counters SeededFaultInjector::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

bool FaultInjectingEdgeStream::next(Edge& out) {
  if (hash_below(options_.seed, 0x4553u, pos_, options_.fault_probability)) {
    int& thrown = fired_[pos_];
    if (thrown < options_.faults_per_position) {
      ++thrown;
      ++faults_;
      throw TransientIoError(
          "injected transient stream fault before edge position " +
          std::to_string(pos_));
    }
  }
  if (!inner_->next(out)) return false;
  ++pos_;
  return true;
}

}  // namespace adwise
