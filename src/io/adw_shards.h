// Sharded .adw layout — one manifest plus z per-instance chunk files (the
// paper's §III-D parallel loading model on disk).
//
// A sharded graph is a small manifest file (conventionally *.adws) next to
// z ordinary .adw shard files. Shard i holds the i-th contiguous chunk of
// the edge sequence, with chunk boundaries from chunk_sizes(|E|, z) — the
// exact split the spotlight runner uses — so concatenating the shards in
// order replays the single-file edge sequence bit-for-bit, and each
// spotlight instance can open its own shard with its own BinaryEdgeStream
// and read genuinely concurrently.
//
// Manifest layout (all integers little-endian, like .adw):
//
//   offset  size  field
//        0     4  magic 'A' 'D' 'W' 'S'
//        4     4  format version (uint32: 2; version-1 files still read)
//        8     8  num_shards     (uint64)
//       16     8  num_edges      (uint64; sum over shards)
//       24     8  max_vertex_id  (uint64; max over shards, 0 when empty)
//       32     -  per-shard entries, 16 bytes each:
//                   num_edges (uint64), max_vertex_id (uint64)
//      end-4    4  CRC-32 of every preceding byte (version >= 2 only)
//
// A valid version-2 manifest is exactly 32 + 16 * num_shards + 4 bytes
// (version 1: without the trailing checksum); the writer always produces
// version 2, atomically (tmp + fsync + rename). Shard files are
// named from the manifest path (adw_shard_path): "graph.adws" owns
// "graph.shard0.adw" ... "graph.shard<z-1>.adw" — each a fully valid
// standalone .adw file, so every single-file tool and reader works on a
// shard unchanged. The manifest's per-shard entries duplicate the shard
// headers; read_and_validate_adw_manifest cross-checks them (and each
// shard's exact file size) so a truncated or swapped-out shard fails loudly
// before any instance starts streaming.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/io/adw_format.h"

namespace adwise {

inline constexpr std::array<char, 4> kAdwManifestMagic = {'A', 'D', 'W', 'S'};
inline constexpr std::uint32_t kAdwManifestVersionLegacy = 1;
inline constexpr std::uint32_t kAdwManifestVersion = 2;
inline constexpr std::size_t kAdwManifestHeaderBytes = 32;
inline constexpr std::size_t kAdwManifestEntryBytes = 16;
inline constexpr std::size_t kAdwManifestCrcBytes = 4;

struct AdwShardInfo {
  std::uint64_t num_edges = 0;
  std::uint64_t max_vertex_id = 0;  // 0 when the shard has no edges

  friend bool operator==(const AdwShardInfo&, const AdwShardInfo&) = default;
};

struct AdwManifest {
  std::vector<AdwShardInfo> shards;

  [[nodiscard]] std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shards.size());
  }
  // Sum over shards — the |E| the adaptive controller needs up front.
  [[nodiscard]] std::uint64_t num_edges() const;
  // Max over shards — sizes consumers' dense per-vertex arrays.
  [[nodiscard]] std::uint64_t max_vertex_id() const;

  friend bool operator==(const AdwManifest&, const AdwManifest&) = default;
};

// Path of shard i relative to its manifest: a trailing ".adws" extension is
// replaced, so "graph.adws" owns "graph.shard3.adw" (sibling files — the
// manifest never stores paths, keeping it relocatable as a directory).
[[nodiscard]] std::string adw_shard_path(const std::string& manifest_path,
                                         std::uint32_t shard);

// Writes the manifest file (version 2, CRC-protected) atomically. Throws
// std::runtime_error on I/O failure.
void write_adw_manifest(const std::string& path, const AdwManifest& manifest);

// Reads and validates the manifest file alone: magic, version, exact size,
// the trailing CRC (version 2), and that the stored totals equal the
// per-shard sums. Does not touch the shard files. Throws
// std::runtime_error (CorruptDataError for malformed content) on any
// failure.
[[nodiscard]] AdwManifest read_adw_manifest(const std::string& path);

// read_adw_manifest plus a cross-check of every shard file: the shard's
// .adw header (which read_adw_header verifies against the shard's exact
// file size) must match the manifest entry. A truncated, corrupt, missing
// or swapped shard therefore fails here, before any instance streams it.
[[nodiscard]] AdwManifest read_and_validate_adw_manifest(
    const std::string& path);

// True iff the file exists and begins with the manifest magic.
[[nodiscard]] bool is_adw_manifest(const std::string& path);

// Converts a SNAP-style text edge list into `shards` chunk files plus a
// manifest at manifest_path. Two streaming passes, O(1) memory: a counting
// scan fixes the chunk boundaries (chunk_sizes of the streamable edge
// count), then the stream is replayed into one AdwWriter per shard. The
// manifest is written last and every partial output is removed on failure,
// so a pipeline can never pick up a half-converted sharded graph. Returns
// the manifest. Throws std::runtime_error on parse or I/O failure.
AdwManifest edge_list_to_sharded_adw(const std::string& text_path,
                                     const std::string& manifest_path,
                                     std::uint32_t shards);

// Reshards an existing single-file .adw (single pass; the header already
// knows |E|). Same failure guarantees as edge_list_to_sharded_adw.
AdwManifest adw_to_sharded_adw(const std::string& adw_path,
                               const std::string& manifest_path,
                               std::uint32_t shards);

// In-memory convenience (tests, benches): writes edges minus self-loops
// into `shards` chunk files plus the manifest.
AdwManifest write_sharded_adw(const std::string& manifest_path,
                              std::span<const Edge> edges,
                              std::uint32_t shards);

}  // namespace adwise
