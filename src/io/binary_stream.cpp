#include "src/io/binary_stream.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "src/common/clock.h"
#include "src/common/crc32.h"
#include "src/common/thread_pool.h"
#include "src/io/io_error.h"
#include "src/obs/metric_names.h"
#include "src/obs/obs_sink.h"

namespace adwise {

namespace {

// Conditions worth retrying: the bytes on disk are (presumably) fine, the
// syscall just failed this instant.
bool is_transient_errno(int err) {
  return err == EINTR || err == EAGAIN || err == EIO || err == EMFILE ||
         err == ENFILE;
}

}  // namespace

BinaryEdgeStream::BinaryEdgeStream(const std::string& path)
    : BinaryEdgeStream(path, Options{}) {}

BinaryEdgeStream::BinaryEdgeStream(const std::string& path, Options options)
    : header_(read_adw_header(path)), options_(options), path_(path) {
  options_.chunk_edges = std::max<std::size_t>(1, options_.chunk_edges);
  open_with_retry(path);
  try {
    file_bytes_ = kAdwHeaderBytes + header_.num_edges * kAdwRecordBytes;
    std::size_t chunk_bytes = options_.chunk_edges * kAdwRecordBytes;
    if (header_.crc_block_bytes != 0 && options_.verify_crc) {
      crc_table_ = read_adw_crc_table(path, header_);
      // Round each chunk up to whole CRC blocks so every fill covers
      // complete blocks (the last block of the file may still be short).
      const std::size_t bs = header_.crc_block_bytes;
      chunk_bytes = (chunk_bytes + bs - 1) / bs * bs;
    }
    for (Buffer& b : buffers_) b.bytes.resize(chunk_bytes);
    // Resolve metric handles before prime() — the first fill() may run
    // immediately (sync path) or on the worker.
    if (obs::MetricsRegistry* reg = obs::metrics_of(options_.obs)) {
      m_bytes_read_ = &reg->counter(obs::names::kStreamBytesRead);
      m_preads_ = &reg->counter(obs::names::kStreamPreads);
      m_pread_ns_ = &reg->histogram(obs::names::kStreamPreadNs);
      m_prefetch_waits_ = &reg->counter(obs::names::kStreamPrefetchWaits);
      m_prefetch_wait_ns_ = &reg->counter(obs::names::kStreamPrefetchWaitNs);
      m_chunk_consume_ns_ =
          &reg->histogram(obs::names::kStreamChunkConsumeNs);
      m_io_retries_ = &reg->counter(obs::names::kStreamIoRetries);
      m_prefetch_degraded_ =
          &reg->counter(obs::names::kStreamPrefetchDegraded);
      m_watchdog_stalls_ = &reg->counter(obs::names::kWatchdogStalls);
    }
    trace_ = obs::trace_of(options_.obs);
    if (options_.prefetch) pool_ = std::make_unique<ThreadPool>(1);
    if (options_.prefetch && options_.watchdog != nullptr) {
      wd_ = &options_.watchdog->watch("io-prefetch", [this] {
        // Watchdog thread: remember the verdict; the consumer acts on it
        // at the next buffer handoff (there is no safe way to interrupt a
        // thread wedged inside a syscall).
        wd_stall_flagged_.store(true, std::memory_order_release);
        if (m_watchdog_stalls_ != nullptr) m_watchdog_stalls_->add();
      });
    }
    prime();
  } catch (...) {
    pool_.reset();
    ::close(fd_);
    throw;
  }
}

BinaryEdgeStream::~BinaryEdgeStream() {
  if (wd_ != nullptr) wd_->detach();
  if (pool_ != nullptr && fetch_pending_) {
    try {
      pool_->wait_idle();
    } catch (...) {
      // Worker I/O errors are reported by next()/rewind(); in teardown the
      // buffer is being discarded anyway.
    }
  }
  pool_.reset();  // join before the buffers the worker writes go away
  if (fd_ >= 0) ::close(fd_);
}

void BinaryEdgeStream::backoff(int attempt) const {
  io_retries_.fetch_add(1, std::memory_order_relaxed);
  if (m_io_retries_ != nullptr) m_io_retries_->add();
  const unsigned delay = options_.retry.delay_for_attempt(attempt);
  if (options_.retry.sleeper) {
    options_.retry.sleeper(delay);
  } else {
    ::usleep(delay);
  }
}

void BinaryEdgeStream::open_with_retry(const std::string& path) {
  int attempts = 0;
  while (true) {
    int err;
    if (options_.fault_injector != nullptr &&
        options_.fault_injector->fail_open()) {
      fd_ = -1;
      err = EIO;
    } else {
      fd_ = ::open(path.c_str(), O_RDONLY);
      err = errno;
    }
    if (fd_ >= 0) return;
    if (!is_transient_errno(err)) {
      throw std::runtime_error("cannot open .adw file " + path + ": " +
                               std::strerror(err));
    }
    if (++attempts >= options_.retry.max_attempts) {
      throw TransientIoError(
          "cannot open .adw file " + path + " after " +
          std::to_string(attempts) + " attempts: " + std::strerror(err));
    }
    backoff(attempts);
  }
}

void BinaryEdgeStream::fill(Buffer& buf, std::uint64_t offset) const {
  // Spans both the prefetch worker (normal) and the consumer (sync /
  // degraded path) — whichever thread runs the fill owns the span.
  obs::TraceSpan span(trace_, obs::names::kSpanPrefetchFill);
  const std::int64_t fill_start_ns =
      m_pread_ns_ != nullptr ? monotonic_now_ns() : 0;
  const auto want = static_cast<std::size_t>(
      std::min<std::uint64_t>(buf.bytes.size(), file_bytes_ - offset));
  std::size_t got = 0;
  int attempts = 0;
  while (got < want) {
    std::size_t ask = want - got;
    int injected_errno = 0;
    if (options_.fault_injector != nullptr) {
      switch (options_.fault_injector->pread_fault(offset + got)) {
        case FaultInjector::PreadFault::kNone:
          break;
        case FaultInjector::PreadFault::kShortRead:
          ask = std::max<std::size_t>(kAdwRecordBytes, ask / 2);
          break;
        case FaultInjector::PreadFault::kEintr:
          injected_errno = EINTR;
          break;
        case FaultInjector::PreadFault::kEagain:
          injected_errno = EAGAIN;
          break;
      }
    }
    ssize_t r;
    if (injected_errno != 0) {
      r = -1;
      errno = injected_errno;
    } else {
      r = ::pread(fd_, buf.bytes.data() + got, ask,
                  static_cast<off_t>(offset + got));
    }
    if (r < 0) {
      const int err = errno;
      if (err == EINTR) {
        // Interrupted before any bytes moved: retry immediately, no budget
        // spent — this is normal signal behavior, not a failure.
        io_retries_.fetch_add(1, std::memory_order_relaxed);
        if (m_io_retries_ != nullptr) m_io_retries_->add();
        continue;
      }
      if (!is_transient_errno(err)) {
        throw std::runtime_error(
            "pread failed on .adw file " + path_ + " at byte offset " +
            std::to_string(offset + got) + ": " + std::strerror(err));
      }
      if (++attempts >= options_.retry.max_attempts) {
        throw TransientIoError(
            "pread failed on .adw file " + path_ + " at byte offset " +
            std::to_string(offset + got) + " after " +
            std::to_string(attempts) + " attempts: " + std::strerror(err));
      }
      backoff(attempts);
      continue;
    }
    if (r == 0) {
      // The header promised more records than the file now holds.
      throw CorruptDataError(
          ".adw file truncated while streaming: " + path_ +
          " (pread at byte offset " + std::to_string(offset + got) +
          " hit end of file, wanted " + std::to_string(want - got) +
          " more bytes)");
    }
    if (options_.fault_injector != nullptr) {
      options_.fault_injector->corrupt(buf.bytes.data() + got,
                                       static_cast<std::size_t>(r),
                                       offset + got);
    }
    got += static_cast<std::size_t>(r);
    attempts = 0;  // progress resets the budget
    if (wd_ != nullptr) wd_->beat();  // per-pread progress heartbeat
    if (m_preads_ != nullptr) m_preads_->add();
  }
  if (m_pread_ns_ != nullptr) {
    m_pread_ns_->record(
        static_cast<std::uint64_t>(monotonic_now_ns() - fill_start_ns));
    m_bytes_read_->add(want);
  }
  // CRC blocks are the authoritative integrity check: verify them before
  // the id bound check so corruption is reported as corruption, not as a
  // coincidental out-of-range id.
  if (!crc_table_.empty()) verify_chunk_crcs(buf, offset, want);
  // Scan every id in the chunk (each 4-byte word of a record is a vertex
  // id). This runs on the prefetch worker, overlapped with the consumer,
  // and the simple word loop vectorizes — the hot next() path stays
  // check-free because no out-of-bound id can reach it. The running
  // observed maximum doubles as the header cross-check: at end of stream
  // it must equal header max_vertex_id exactly (see next_refill), which is
  // what makes bytes 16–23 of the header — the one field no CRC covers —
  // tamper-evident in both directions.
  {
    // One whole-record load per iteration with independent per-endpoint
    // accumulators: ~2.5 ops per id, and no loop-carried dependency between
    // the two max chains.
    std::uint64_t max_u = 0;
    std::uint64_t max_v = 0;
    for (std::size_t i = 0; i + kAdwRecordBytes <= want;
         i += kAdwRecordBytes) {
      std::uint64_t w;
      if constexpr (std::endian::native == std::endian::little) {
        std::memcpy(&w, buf.bytes.data() + i, kAdwRecordBytes);
      } else {
        w = adw_load_le64(buf.bytes.data() + i);
      }
      max_u = std::max<std::uint64_t>(max_u, w & 0xffffffffull);
      max_v = std::max<std::uint64_t>(max_v, w >> 32);
    }
    const std::uint64_t worst = std::max(max_u, max_v);
    if (worst > header_.max_vertex_id) {
      throw CorruptDataError(
          ".adw record vertex id " + std::to_string(worst) +
          " exceeds header max_vertex_id " +
          std::to_string(header_.max_vertex_id) + " in " + path_ +
          " (chunk at byte offset " + std::to_string(offset) + ")");
    }
    // At most one fill() runs at a time (the prefetch worker and the sync
    // path never overlap), so a relaxed read-modify-write cannot race;
    // atomic only because the consumer reads it from another thread.
    const std::uint64_t prev =
        observed_max_id_.load(std::memory_order_relaxed);
    if (worst > prev) {
      observed_max_id_.store(worst, std::memory_order_relaxed);
    }
  }
  buf.size = want;
}

void BinaryEdgeStream::verify_chunk_crcs(const Buffer& buf,
                                         std::uint64_t offset,
                                         std::size_t want) const {
  // Chunks are block-aligned by construction (see the constructor), so the
  // chunk start always coincides with a block start; only the file's final
  // block may be short.
  const std::uint32_t bs = header_.crc_block_bytes;
  const std::uint64_t rec_off = offset - kAdwHeaderBytes;
  for (std::size_t i = 0; i < want; i += bs) {
    const std::uint64_t block = (rec_off + i) / bs;
    const std::size_t len = std::min<std::size_t>(bs, want - i);
    const std::uint32_t actual = crc32(buf.bytes.data() + i, len);
    if (actual != crc_table_[block]) {
      throw CorruptDataError(
          "CRC mismatch in .adw file " + path_ + ": block " +
          std::to_string(block) + " at byte offset " +
          std::to_string(offset + i) + " expected " +
          std::to_string(crc_table_[block]) + ", read data hashes to " +
          std::to_string(actual));
    }
  }
}

void BinaryEdgeStream::schedule_fetch() {
  Buffer& target = buffers_[1 - active_];
  if (next_offset_ >= file_bytes_) {
    target.size = 0;
    return;
  }
  const std::uint64_t offset = next_offset_;
  // fill() reads a deterministic min(chunk, rest-of-file) bytes, so the
  // offset can advance before the worker runs.
  next_offset_ +=
      std::min<std::uint64_t>(target.bytes.size(), file_bytes_ - offset);
  pending_offset_ = offset;
  fetch_pending_ = true;
  if (wd_ != nullptr) wd_->arm();  // stall detection covers this fetch
  pool_->submit([this, &target, offset] {
    if (trace_ != nullptr) trace_->name_current_thread("io-prefetch");
    if (options_.fault_injector != nullptr &&
        options_.fault_injector->kill_prefetch_worker(offset)) {
      throw PrefetchWorkerDeath(
          "prefetch worker killed by fault injector before fetching byte "
          "offset " +
          std::to_string(offset));
    }
    fill(target, offset);
  });
}

void BinaryEdgeStream::finish_pending_fetch() {
  const std::int64_t wait_start_ns =
      m_prefetch_wait_ns_ != nullptr ? monotonic_now_ns() : 0;
  try {
    pool_->wait_idle();  // rethrows any worker error
    if (m_prefetch_wait_ns_ != nullptr) {
      m_prefetch_wait_ns_->add(
          static_cast<std::uint64_t>(monotonic_now_ns() - wait_start_ns));
      m_prefetch_waits_->add();
    }
    if (wd_ != nullptr) wd_->disarm();
    if (wd_stall_flagged_.load(std::memory_order_acquire) && pool_ != nullptr) {
      // The fetch completed, but only after the watchdog flagged it as
      // stalled. The chunk it produced is valid — take it — but degrade
      // to synchronous reads from here on: a worker that wedged once may
      // wedge forever next time, and a hang on the consumer thread is at
      // least visible to callers.
      if (m_prefetch_degraded_ != nullptr) m_prefetch_degraded_->add();
      pool_.reset();
      options_.prefetch = false;
      degraded_ = true;
    }
  } catch (const PrefetchWorkerDeath&) {
    if (wd_ != nullptr) wd_->disarm();
    if (m_prefetch_degraded_ != nullptr) m_prefetch_degraded_->add();
    // The worker died before reading its chunk. Degrade: drop the pool,
    // refill the in-flight chunk on this thread, and run the rest of the
    // stream synchronously — slower, but the run survives.
    pool_.reset();
    options_.prefetch = false;
    degraded_ = true;
    Buffer& target = buffers_[1 - active_];
    if (pending_offset_ < file_bytes_) {
      fill(target, pending_offset_);
    } else {
      target.size = 0;
    }
  }
  fetch_pending_ = false;
}

bool BinaryEdgeStream::advance() {
  // The active buffer is consumed: zero it before it becomes the next
  // fetch target, so polling next() after end-of-stream keeps returning
  // false instead of re-delivering a stale chunk (window partitioners poll
  // the stream again after it first reports exhaustion).
  buffers_[active_].size = 0;
  Buffer& other = buffers_[1 - active_];
  if (fetch_pending_) {
    finish_pending_fetch();
  } else if (!options_.prefetch) {
    if (next_offset_ < file_bytes_) {
      fill(other, next_offset_);
      next_offset_ += other.size;
    } else {
      other.size = 0;
    }
  }
  consumed_before_active_ += static_cast<std::size_t>(cur_ - base_) /
                             kAdwRecordBytes;
  active_ = 1 - active_;
  base_ = cur_ = buffers_[active_].bytes.data();
  end_ = cur_ + buffers_[active_].size;
  if (m_chunk_consume_ns_ != nullptr) {
    // Time between chunk handoffs = decode + downstream consumer work; the
    // counterpart of prefetch_wait_ns in the drain-time split.
    const std::int64_t now_ns = monotonic_now_ns();
    if (last_handoff_ns_ != 0) {
      m_chunk_consume_ns_->record(
          static_cast<std::uint64_t>(now_ns - last_handoff_ns_));
    }
    last_handoff_ns_ = now_ns;
  }
  if (buffers_[active_].size == 0) return false;
  if (options_.prefetch) schedule_fetch();
  return true;
}

namespace {

inline Edge decode_record(const std::byte* rec) {
  if constexpr (std::endian::native == std::endian::little) {
    // On little-endian hosts an edge record is exactly the in-memory Edge
    // layout: decode is a single 8-byte load.
    static_assert(sizeof(Edge) == kAdwRecordBytes);
    Edge e;
    std::memcpy(&e, rec, kAdwRecordBytes);
    return e;
  } else {
    return adw_decode_edge(rec);
  }
}

}  // namespace

bool BinaryEdgeStream::next(Edge& out) {
  if (cur_ == end_) [[unlikely]] return next_refill(out);
  out = decode_record(cur_);
  cur_ += kAdwRecordBytes;
  return true;
}

bool BinaryEdgeStream::next_refill(Edge& out) {
  while (cur_ == end_) {
    if (!advance()) {
      // End of stream: every record has passed through fill()'s id scan, so
      // the observed maximum must now equal the header's claim exactly. A
      // raised max_vertex_id (bytes 16–23, outside every CRC) passes the
      // per-chunk upper-bound check but is caught here; a lowered one was
      // already caught by the bound check on the chunk holding the true
      // maximum. Writers record the exact maximum (AdwWriter tracks it per
      // add()), so valid files of either version never trip this.
      if (header_.num_edges > 0) {
        const std::uint64_t seen =
            observed_max_id_.load(std::memory_order_relaxed);
        if (seen != header_.max_vertex_id) {
          throw CorruptDataError(
              ".adw header max_vertex_id " +
              std::to_string(header_.max_vertex_id) +
              " does not match the maximum vertex id " +
              std::to_string(seen) + " observed in the records of " + path_ +
              " (header bytes 16-23 corrupt?)");
        }
      }
      // Pin the bookkeeping so size_hint() reads exactly zero from here on.
      consumed_before_active_ = static_cast<std::size_t>(header_.num_edges);
      base_ = cur_ = end_;
      return false;
    }
  }
  out = decode_record(cur_);
  cur_ += kAdwRecordBytes;
  return true;
}

void BinaryEdgeStream::prime() {
  next_offset_ = kAdwHeaderBytes;
  consumed_before_active_ = 0;
  last_handoff_ns_ = 0;
  observed_max_id_.store(0, std::memory_order_relaxed);
  if (options_.prefetch) {
    // Start on an empty active buffer and hand the first chunk straight to
    // the worker: the consuming thread never preads or validates at all,
    // it only swaps buffers in as they complete.
    active_ = 1;
    buffers_[1].size = 0;
    base_ = cur_ = end_ = buffers_[1].bytes.data();
    schedule_fetch();  // targets buffers_[0]
    return;
  }
  active_ = 0;
  if (next_offset_ < file_bytes_) {
    fill(buffers_[0], next_offset_);
    next_offset_ += buffers_[0].size;
  } else {
    buffers_[0].size = 0;
  }
  base_ = cur_ = buffers_[0].bytes.data();
  end_ = cur_ + buffers_[0].size;
}

void BinaryEdgeStream::rewind() {
  if (fetch_pending_) {
    // A dead worker degrades here exactly like in advance(); the refilled
    // chunk is then discarded by prime(), which is fine — rewind is not a
    // hot path.
    finish_pending_fetch();
  }
  prime();
}

}  // namespace adwise
