#include "src/io/binary_stream.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "src/common/thread_pool.h"

namespace adwise {

BinaryEdgeStream::BinaryEdgeStream(const std::string& path)
    : BinaryEdgeStream(path, Options{}) {}

BinaryEdgeStream::BinaryEdgeStream(const std::string& path, Options options)
    : header_(read_adw_header(path)), options_(options) {
  options_.chunk_edges = std::max<std::size_t>(1, options_.chunk_edges);
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) {
    throw std::runtime_error("cannot open .adw file: " + path);
  }
  try {
    file_bytes_ = kAdwHeaderBytes + header_.num_edges * kAdwRecordBytes;
    const std::size_t chunk_bytes = options_.chunk_edges * kAdwRecordBytes;
    for (Buffer& b : buffers_) b.bytes.resize(chunk_bytes);
    if (options_.prefetch) pool_ = std::make_unique<ThreadPool>(1);
    prime();
  } catch (...) {
    pool_.reset();
    ::close(fd_);
    throw;
  }
}

BinaryEdgeStream::~BinaryEdgeStream() {
  if (pool_ != nullptr && fetch_pending_) {
    try {
      pool_->wait_idle();
    } catch (...) {
      // Worker I/O errors are reported by next()/rewind(); in teardown the
      // buffer is being discarded anyway.
    }
  }
  pool_.reset();  // join before the buffers the worker writes go away
  if (fd_ >= 0) ::close(fd_);
}

void BinaryEdgeStream::fill(Buffer& buf, std::uint64_t offset) const {
  const auto want = static_cast<std::size_t>(
      std::min<std::uint64_t>(buf.bytes.size(), file_bytes_ - offset));
  std::size_t got = 0;
  while (got < want) {
    const ssize_t r = ::pread(fd_, buf.bytes.data() + got, want - got,
                              static_cast<off_t>(offset + got));
    if (r < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("pread failed on .adw file: ") +
                               std::strerror(errno));
    }
    if (r == 0) {
      // The header promised more records than the file now holds.
      throw std::runtime_error(".adw file truncated while streaming");
    }
    got += static_cast<std::size_t>(r);
  }
  // Bound-check every id in the chunk (each 4-byte word of a record is a
  // vertex id). This runs on the prefetch worker, overlapped with the
  // consumer, and the simple word loop vectorizes — the hot next() path
  // stays check-free because no out-of-bound id can reach it.
  if (header_.max_vertex_id <
      std::numeric_limits<std::uint32_t>::max()) {
    // One whole-record load per iteration with independent per-endpoint
    // accumulators: ~2.5 ops per id, and no loop-carried dependency between
    // the two max chains.
    std::uint64_t max_u = 0;
    std::uint64_t max_v = 0;
    for (std::size_t i = 0; i + kAdwRecordBytes <= want;
         i += kAdwRecordBytes) {
      std::uint64_t w;
      if constexpr (std::endian::native == std::endian::little) {
        std::memcpy(&w, buf.bytes.data() + i, kAdwRecordBytes);
      } else {
        w = adw_load_le64(buf.bytes.data() + i);
      }
      max_u = std::max<std::uint64_t>(max_u, w & 0xffffffffull);
      max_v = std::max<std::uint64_t>(max_v, w >> 32);
    }
    const std::uint64_t worst = std::max(max_u, max_v);
    if (worst > header_.max_vertex_id) {
      throw std::runtime_error(
          ".adw record vertex id " + std::to_string(worst) +
          " exceeds header max_vertex_id " +
          std::to_string(header_.max_vertex_id));
    }
  }
  buf.size = want;
}

void BinaryEdgeStream::schedule_fetch() {
  Buffer& target = buffers_[1 - active_];
  if (next_offset_ >= file_bytes_) {
    target.size = 0;
    return;
  }
  const std::uint64_t offset = next_offset_;
  // fill() reads a deterministic min(chunk, rest-of-file) bytes, so the
  // offset can advance before the worker runs.
  next_offset_ +=
      std::min<std::uint64_t>(target.bytes.size(), file_bytes_ - offset);
  fetch_pending_ = true;
  pool_->submit([this, &target, offset] { fill(target, offset); });
}

bool BinaryEdgeStream::advance() {
  // The active buffer is consumed: zero it before it becomes the next
  // fetch target, so polling next() after end-of-stream keeps returning
  // false instead of re-delivering a stale chunk (window partitioners poll
  // the stream again after it first reports exhaustion).
  buffers_[active_].size = 0;
  Buffer& other = buffers_[1 - active_];
  if (fetch_pending_) {
    pool_->wait_idle();  // rethrows any worker I/O error
    fetch_pending_ = false;
  } else if (!options_.prefetch) {
    if (next_offset_ < file_bytes_) {
      fill(other, next_offset_);
      next_offset_ += other.size;
    } else {
      other.size = 0;
    }
  }
  consumed_before_active_ += static_cast<std::size_t>(cur_ - base_) /
                             kAdwRecordBytes;
  active_ = 1 - active_;
  base_ = cur_ = buffers_[active_].bytes.data();
  end_ = cur_ + buffers_[active_].size;
  if (buffers_[active_].size == 0) return false;
  if (options_.prefetch) schedule_fetch();
  return true;
}

namespace {

inline Edge decode_record(const std::byte* rec) {
  if constexpr (std::endian::native == std::endian::little) {
    // On little-endian hosts an edge record is exactly the in-memory Edge
    // layout: decode is a single 8-byte load.
    static_assert(sizeof(Edge) == kAdwRecordBytes);
    Edge e;
    std::memcpy(&e, rec, kAdwRecordBytes);
    return e;
  } else {
    return adw_decode_edge(rec);
  }
}

}  // namespace

bool BinaryEdgeStream::next(Edge& out) {
  if (cur_ == end_) [[unlikely]] return next_refill(out);
  out = decode_record(cur_);
  cur_ += kAdwRecordBytes;
  return true;
}

bool BinaryEdgeStream::next_refill(Edge& out) {
  while (cur_ == end_) {
    if (!advance()) {
      // Pin the bookkeeping so size_hint() reads exactly zero from here on.
      consumed_before_active_ = static_cast<std::size_t>(header_.num_edges);
      base_ = cur_ = end_;
      return false;
    }
  }
  out = decode_record(cur_);
  cur_ += kAdwRecordBytes;
  return true;
}

void BinaryEdgeStream::prime() {
  next_offset_ = kAdwHeaderBytes;
  consumed_before_active_ = 0;
  if (options_.prefetch) {
    // Start on an empty active buffer and hand the first chunk straight to
    // the worker: the consuming thread never preads or validates at all,
    // it only swaps buffers in as they complete.
    active_ = 1;
    buffers_[1].size = 0;
    base_ = cur_ = end_ = buffers_[1].bytes.data();
    schedule_fetch();  // targets buffers_[0]
    return;
  }
  active_ = 0;
  if (next_offset_ < file_bytes_) {
    fill(buffers_[0], next_offset_);
    next_offset_ += buffers_[0].size;
  } else {
    buffers_[0].size = 0;
  }
  base_ = cur_ = buffers_[0].bytes.data();
  end_ = cur_ + buffers_[0].size;
}

void BinaryEdgeStream::rewind() {
  if (fetch_pending_) {
    pool_->wait_idle();
    fetch_pending_ = false;
  }
  prime();
}

}  // namespace adwise
