// Atomic, durable file writes: data goes to `<path><tmp_suffix>`, and
// commit() fsyncs the data, renames over the destination and fsyncs the
// parent directory. A reader can therefore never observe a torn file — it
// sees either the previous contents (or no file) or the complete new one.
// Every on-disk artifact a crash could corrupt mid-write (.adw chunks,
// .adws manifests, .adwk checkpoints, partition output) goes through this
// class.
//
// Failure semantics (the write-path mirror of BinaryEdgeStream's read
// policy):
//  - EINTR is retried immediately and does not consume retry budget.
//  - Transient write errors (EAGAIN, EIO) are retried with the shared
//    RetryPolicy's bounded exponential backoff; progress resets the
//    budget; exhaustion throws TransientIoError.
//  - ENOSPC/EDQUOT throw DiskFullError (path + bytes written) at once —
//    backoff cannot create free space.
//  - Any commit() failure (fsync/close/rename) unlinks the temp file
//    before rethrowing, so the destination is never torn and no orphan
//    temp survives; fsync/rename errors are not retried (a failed fsync
//    may already have dropped dirty pages — the fsyncgate lesson).
//
// If the writer is destroyed without commit() — an exception unwound
// through it, or the caller abandoned the write — the temp file is
// unlinked and the destination is left untouched.
//
// Faults are injected via an explicit per-writer FaultInjector or, when
// none is given, the process-global injector (see fault_injection.h),
// which is how chaos subprocess runs reach every writer in the binary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/io/fault_injection.h"

namespace adwise {

class AtomicFileWriter {
 public:
  struct Options {
    // Temp-file suffix. Distinct suffixes let two writers target the same
    // destination without clobbering each other's temp file — used by
    // in-band degraded checkpoint commits racing a stalled writer thread.
    std::string tmp_suffix = ".tmp";
    // Failpoints; null falls back to process_fault_injector().
    FaultInjector* fault_injector = nullptr;
    // Backoff schedule for transient (EAGAIN/EIO) write errors.
    RetryPolicy retry;
  };

  // Opens `<path><tmp_suffix>` for writing (truncating any stale temp file
  // left by a previous crash). Throws std::runtime_error with path and
  // errno detail on failure.
  explicit AtomicFileWriter(std::string path) : AtomicFileWriter(
      std::move(path), Options{}) {}
  AtomicFileWriter(std::string path, Options options);

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  // Abandons (unlinks the temp file) unless commit() already ran.
  ~AtomicFileWriter();

  // Appends at the current end of the temp file.
  void append(const void* data, std::size_t len);

  // Overwrites `len` bytes at an absolute offset — used to patch headers
  // whose totals are only known once the stream has been drained.
  void write_at(std::uint64_t offset, const void* data, std::size_t len);

  // Total bytes appended so far (write_at does not move this).
  [[nodiscard]] std::uint64_t bytes_appended() const { return appended_; }

  // Transient write errors absorbed by retry so far (EINTR + backoff).
  [[nodiscard]] std::uint64_t io_retries() const { return io_retries_; }

  // fsync + close + rename(tmp, path) + fsync(parent dir). After this the
  // file is durably in place under its final name. On failure the temp
  // file is unlinked before the error propagates: the pre-existing
  // destination (if any) is untouched and nothing torn is left behind.
  void commit();

  // Close and unlink the temp file, leaving the destination untouched.
  void abandon() noexcept;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  [[nodiscard]] FaultInjector* injector() const noexcept {
    return options_.fault_injector != nullptr ? options_.fault_injector
                                              : process_fault_injector();
  }
  void write_loop(const void* data, std::size_t len, std::uint64_t offset,
                  bool use_pwrite);
  void commit_impl();

  std::string path_;
  std::string tmp_path_;
  Options options_;
  int fd_ = -1;
  std::uint64_t appended_ = 0;
  std::uint64_t io_retries_ = 0;
  bool committed_ = false;
};

}  // namespace adwise
