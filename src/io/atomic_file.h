// Atomic, durable file writes: data goes to `<path>.tmp`, and commit()
// fsyncs the data, renames over the destination and fsyncs the parent
// directory. A reader can therefore never observe a torn file — it sees
// either the previous contents (or no file) or the complete new one. Every
// on-disk artifact a crash could corrupt mid-write (.adw chunks, .adws
// manifests, .adwk checkpoints, partition output) goes through this class.
//
// If the writer is destroyed without commit() — an exception unwound
// through it, or the caller abandoned the write — the temp file is
// unlinked and the destination is left untouched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace adwise {

class AtomicFileWriter {
 public:
  // Opens `<path>.tmp` for writing (truncating any stale temp file left by
  // a previous crash). Throws std::runtime_error with path and errno detail
  // on failure.
  explicit AtomicFileWriter(std::string path);

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  // Abandons (unlinks the temp file) unless commit() already ran.
  ~AtomicFileWriter();

  // Appends at the current end of the temp file.
  void append(const void* data, std::size_t len);

  // Overwrites `len` bytes at an absolute offset — used to patch headers
  // whose totals are only known once the stream has been drained.
  void write_at(std::uint64_t offset, const void* data, std::size_t len);

  // Total bytes appended so far (write_at does not move this).
  [[nodiscard]] std::uint64_t bytes_appended() const { return appended_; }

  // fsync + close + rename(tmp, path) + fsync(parent dir). After this the
  // file is durably in place under its final name.
  void commit();

  // Close and unlink the temp file, leaving the destination untouched.
  void abandon() noexcept;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::string tmp_path_;
  int fd_ = -1;
  std::uint64_t appended_ = 0;
  bool committed_ = false;
};

}  // namespace adwise
