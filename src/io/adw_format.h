// Compact binary edge-list format (.adw) — the on-disk interchange format
// for out-of-core streaming.
//
// Text edge lists cost a getline + from_chars per edge on the hot path; the
// .adw format stores fixed-width records so a reader can pread whole chunks
// and decode with two shifts per endpoint. Layout (all integers
// little-endian regardless of host, so files are portable and the test
// suite can pin golden bytes):
//
//   offset  size  field
//        0     4  magic 'A' 'D' 'W' 'F'
//        4     4  format version (uint32: 1 plain, 2 with CRC trailer)
//        8     8  num_edges      (uint64)
//       16     8  max_vertex_id  (uint64; 0 when num_edges == 0)
//       24     -  edge records: uint32 u, uint32 v — 8 bytes each
//
// A version-1 file is exactly 24 + 8 * num_edges bytes; readers treat any
// other size as truncation.
//
// Version 2 appends an integrity trailer AFTER the records, so the record
// region is byte-identical to version 1 and chunked readers keep the same
// offset arithmetic:
//
//   24 + 8E          CRC table: one uint32 CRC-32 per crc_block_bytes-sized
//                    block of the record region (last block may be short)
//   end-16           footer:
//                      +0   uint32 crc_block_bytes (multiple of 8)
//                      +4   uint32 num_blocks (= ceil(8E / crc_block_bytes))
//                      +8   uint32 table_crc (CRC-32 of the table bytes)
//                      +12  magic 'A' 'D' 'W' 'C'
//
// The leading magic is shared, so is_adw_file() sniffs both versions and
// version-1 readers reject version-2 files loudly rather than misparsing
// the trailer as records (the version field differs).
//
// Records never contain self-loops — the writer drops them, mirroring the
// text parser in src/graph/file_stream.cpp, so the header's num_edges is
// always the streamable edge count (the |E| the adaptive controller needs
// up front).
//
// Writers go through AtomicFileWriter (tmp + fsync + rename): an abandoned
// or crashed write leaves no file under the destination name at all, and a
// completed one appears atomically.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/io/atomic_file.h"

namespace adwise {

inline constexpr std::array<char, 4> kAdwMagic = {'A', 'D', 'W', 'F'};
inline constexpr std::array<char, 4> kAdwFooterMagic = {'A', 'D', 'W', 'C'};
inline constexpr std::uint32_t kAdwVersion = 1;
inline constexpr std::uint32_t kAdwVersionCrc = 2;
inline constexpr std::size_t kAdwHeaderBytes = 24;
inline constexpr std::size_t kAdwRecordBytes = 8;
inline constexpr std::size_t kAdwFooterBytes = 16;
inline constexpr std::uint32_t kAdwDefaultCrcBlockBytes = 1u << 16;

struct AdwHeader {
  std::uint64_t num_edges = 0;
  std::uint64_t max_vertex_id = 0;  // 0 if the file has no edges
  std::uint32_t version = kAdwVersion;
  std::uint32_t crc_block_bytes = 0;  // nonzero iff version >= 2

  friend bool operator==(const AdwHeader&, const AdwHeader&) = default;
};

// Number of CRC blocks covering `record_bytes` of records.
[[nodiscard]] constexpr std::uint64_t adw_num_crc_blocks(
    std::uint64_t record_bytes, std::uint32_t crc_block_bytes) {
  if (crc_block_bytes == 0) return 0;
  return (record_bytes + crc_block_bytes - 1) / crc_block_bytes;
}

// --- Little-endian primitives (inline: the record decode is a hot path) -----

inline void adw_store_le32(std::uint32_t x, std::byte* out) {
  out[0] = static_cast<std::byte>(x & 0xff);
  out[1] = static_cast<std::byte>((x >> 8) & 0xff);
  out[2] = static_cast<std::byte>((x >> 16) & 0xff);
  out[3] = static_cast<std::byte>((x >> 24) & 0xff);
}

inline void adw_store_le64(std::uint64_t x, std::byte* out) {
  adw_store_le32(static_cast<std::uint32_t>(x & 0xffffffffull), out);
  adw_store_le32(static_cast<std::uint32_t>(x >> 32), out + 4);
}

[[nodiscard]] inline std::uint32_t adw_load_le32(const std::byte* in) {
  return std::to_integer<std::uint32_t>(in[0]) |
         (std::to_integer<std::uint32_t>(in[1]) << 8) |
         (std::to_integer<std::uint32_t>(in[2]) << 16) |
         (std::to_integer<std::uint32_t>(in[3]) << 24);
}

[[nodiscard]] inline std::uint64_t adw_load_le64(const std::byte* in) {
  return static_cast<std::uint64_t>(adw_load_le32(in)) |
         (static_cast<std::uint64_t>(adw_load_le32(in + 4)) << 32);
}

inline void adw_encode_edge(Edge e, std::byte* out) {
  adw_store_le32(e.u, out);
  adw_store_le32(e.v, out + 4);
}

[[nodiscard]] inline Edge adw_decode_edge(const std::byte* in) {
  return {adw_load_le32(in), adw_load_le32(in + 4)};
}

void adw_encode_header(const AdwHeader& header, std::byte* out);

// Throws CorruptDataError on bad magic or unsupported version. Only the
// version field distinguishes v1 from v2 here; crc_block_bytes lives in the
// footer and is filled in by read_adw_header.
[[nodiscard]] AdwHeader adw_decode_header(const std::byte* in);

// --- File-level helpers ------------------------------------------------------

// Reads and validates the header of an .adw file: magic, version, exact
// file size for the version's layout, and — for version 2 — the footer and
// the CRC table's own checksum. Throws std::runtime_error (CorruptDataError
// for malformed content) with path, offsets and expected-vs-actual values.
[[nodiscard]] AdwHeader read_adw_header(const std::string& path);

// The per-block CRC table of a version-2 file (validated against the
// footer's table_crc); empty for version 1. `header` must come from
// read_adw_header(path).
[[nodiscard]] std::vector<std::uint32_t> read_adw_crc_table(
    const std::string& path, const AdwHeader& header);

// True iff the file exists and begins with the .adw magic — content sniff,
// not an extension check, so callers can auto-detect the format. Accepts
// both versions.
[[nodiscard]] bool is_adw_file(const std::string& path);

// Streaming .adw writer with O(1) memory: records are buffered in small
// batches and the header is patched on commit once the edge count and max
// vertex id are known. Self-loops are dropped (see the format note above).
class AdwWriter {
 public:
  struct Options {
    bool with_crc = false;  // write a version-2 CRC trailer
    std::uint32_t crc_block_bytes = kAdwDefaultCrcBlockBytes;
    // Failpoints + retry policy for the underlying AtomicFileWriter (the
    // default consults the process-global injector).
    AtomicFileWriter::Options io;
  };

  // Starts writing to `<path>.tmp`; throws std::runtime_error on failure.
  explicit AdwWriter(const std::string& path) : AdwWriter(path, Options{}) {}
  AdwWriter(const std::string& path, const Options& options);
  // Destroying a writer without close() abandons the write: the temp file
  // is unlinked and nothing ever appears under the destination name, so a
  // half-written file can never pass for a valid graph — not even an empty
  // one.
  ~AdwWriter();

  AdwWriter(const AdwWriter&) = delete;
  AdwWriter& operator=(const AdwWriter&) = delete;

  void add(Edge e);

  // Flushes buffered records, writes the trailer (v2) and final header,
  // fsyncs and atomically renames into place; throws std::runtime_error on
  // I/O failure. Idempotent.
  void close();

  // Running (after close(): final) header.
  [[nodiscard]] const AdwHeader& header() const { return header_; }

 private:
  void flush_records();
  void feed_crc(const std::byte* data, std::size_t len);

  AtomicFileWriter out_;
  Options options_;
  AdwHeader header_;
  std::vector<std::byte> buffer_;
  std::vector<std::uint32_t> block_crcs_;
  std::uint32_t block_state_;
  std::uint32_t block_fill_ = 0;
  bool closed_ = false;
};

// Writes edges (minus self-loops) to path in one call.
void write_adw_file(const std::string& path, std::span<const Edge> edges,
                    const AdwWriter::Options& options = {});

// Converts a SNAP-style text edge list to .adw in a single streaming pass
// (O(1) memory): comments/blank/malformed lines and self-loops are skipped
// and oversized vertex ids rejected, exactly like FileEdgeStream. Returns
// the final header. Throws std::runtime_error on parse or I/O failure; a
// pre-existing output file survives any failure untouched.
AdwHeader edge_list_to_adw(const std::string& text_path,
                           const std::string& adw_path,
                           const AdwWriter::Options& options = {});

}  // namespace adwise
