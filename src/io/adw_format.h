// Compact binary edge-list format (.adw) — the on-disk interchange format
// for out-of-core streaming.
//
// Text edge lists cost a getline + from_chars per edge on the hot path; the
// .adw format stores fixed-width records so a reader can pread whole chunks
// and decode with two shifts per endpoint. Layout (all integers
// little-endian regardless of host, so files are portable and the test
// suite can pin golden bytes):
//
//   offset  size  field
//        0     4  magic 'A' 'D' 'W' 'F'
//        4     4  format version (uint32, currently 1)
//        8     8  num_edges      (uint64)
//       16     8  max_vertex_id  (uint64; 0 when num_edges == 0)
//       24     -  edge records: uint32 u, uint32 v — 8 bytes each
//
// A valid file is exactly 24 + 8 * num_edges bytes; readers treat any other
// size as truncation. Records never contain self-loops — the writer drops
// them, mirroring the text parser in src/graph/file_stream.cpp, so the
// header's num_edges is always the streamable edge count (the |E| the
// adaptive controller needs up front).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "src/graph/graph.h"

namespace adwise {

inline constexpr std::array<char, 4> kAdwMagic = {'A', 'D', 'W', 'F'};
inline constexpr std::uint32_t kAdwVersion = 1;
inline constexpr std::size_t kAdwHeaderBytes = 24;
inline constexpr std::size_t kAdwRecordBytes = 8;

struct AdwHeader {
  std::uint64_t num_edges = 0;
  std::uint64_t max_vertex_id = 0;  // 0 if the file has no edges

  friend bool operator==(const AdwHeader&, const AdwHeader&) = default;
};

// --- Little-endian primitives (inline: the record decode is a hot path) -----

inline void adw_store_le32(std::uint32_t x, std::byte* out) {
  out[0] = static_cast<std::byte>(x & 0xff);
  out[1] = static_cast<std::byte>((x >> 8) & 0xff);
  out[2] = static_cast<std::byte>((x >> 16) & 0xff);
  out[3] = static_cast<std::byte>((x >> 24) & 0xff);
}

inline void adw_store_le64(std::uint64_t x, std::byte* out) {
  adw_store_le32(static_cast<std::uint32_t>(x & 0xffffffffull), out);
  adw_store_le32(static_cast<std::uint32_t>(x >> 32), out + 4);
}

[[nodiscard]] inline std::uint32_t adw_load_le32(const std::byte* in) {
  return std::to_integer<std::uint32_t>(in[0]) |
         (std::to_integer<std::uint32_t>(in[1]) << 8) |
         (std::to_integer<std::uint32_t>(in[2]) << 16) |
         (std::to_integer<std::uint32_t>(in[3]) << 24);
}

[[nodiscard]] inline std::uint64_t adw_load_le64(const std::byte* in) {
  return static_cast<std::uint64_t>(adw_load_le32(in)) |
         (static_cast<std::uint64_t>(adw_load_le32(in + 4)) << 32);
}

inline void adw_encode_edge(Edge e, std::byte* out) {
  adw_store_le32(e.u, out);
  adw_store_le32(e.v, out + 4);
}

[[nodiscard]] inline Edge adw_decode_edge(const std::byte* in) {
  return {adw_load_le32(in), adw_load_le32(in + 4)};
}

void adw_encode_header(const AdwHeader& header, std::byte* out);

// Throws std::runtime_error on bad magic or unsupported version.
[[nodiscard]] AdwHeader adw_decode_header(const std::byte* in);

// --- File-level helpers ------------------------------------------------------

// Reads and validates the header of an .adw file: magic, version, and that
// the file size is exactly kAdwHeaderBytes + num_edges * kAdwRecordBytes.
// Throws std::runtime_error on open failure, truncation, or trailing bytes.
[[nodiscard]] AdwHeader read_adw_header(const std::string& path);

// True iff the file exists and begins with the .adw magic — content sniff,
// not an extension check, so callers can auto-detect the format.
[[nodiscard]] bool is_adw_file(const std::string& path);

// Streaming .adw writer with O(1) memory: records are buffered in small
// batches and the header is patched on close() once the edge count and max
// vertex id are known. Self-loops are dropped (see the format note above).
class AdwWriter {
 public:
  // Creates/truncates path with a deliberately invalid (zeroed) header;
  // throws std::runtime_error on failure.
  explicit AdwWriter(const std::string& path);
  // Destroying a writer without close() abandons the output with its
  // invalid placeholder header still in place, so a half-written file can
  // never pass for a valid graph — not even an empty one.
  ~AdwWriter();

  AdwWriter(const AdwWriter&) = delete;
  AdwWriter& operator=(const AdwWriter&) = delete;

  void add(Edge e);

  // Flushes buffered records and writes the final header; throws
  // std::runtime_error on I/O failure. Idempotent.
  void close();

  // Running (after close(): final) header.
  [[nodiscard]] const AdwHeader& header() const { return header_; }

 private:
  void flush_records();

  std::ofstream out_;
  std::string path_;
  AdwHeader header_;
  std::vector<std::byte> buffer_;
  bool closed_ = false;
};

// Writes edges (minus self-loops) to path in one call.
void write_adw_file(const std::string& path, std::span<const Edge> edges);

// Converts a SNAP-style text edge list to .adw in a single streaming pass
// (O(1) memory): comments/blank/malformed lines and self-loops are skipped
// and oversized vertex ids rejected, exactly like FileEdgeStream. Returns
// the final header. Throws std::runtime_error on parse or I/O failure.
AdwHeader edge_list_to_adw(const std::string& text_path,
                           const std::string& adw_path);

}  // namespace adwise
