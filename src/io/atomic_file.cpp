#include "src/io/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace adwise {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

// fsync the directory containing `path` so the rename itself is durable.
// Some filesystems reject fsync on directory fds; that weakens durability
// but does not threaten atomicity, so those errors are ignored.
void fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  fd_ = ::open(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) fail("cannot create temp file", tmp_path_);
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) abandon();
}

void AtomicFileWriter::append(const void* data, std::size_t len) {
  const auto* p = static_cast<const char*>(data);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t r = ::write(fd_, p + done, len - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      fail("write failed on temp file", tmp_path_);
    }
    done += static_cast<std::size_t>(r);
  }
  appended_ += len;
}

void AtomicFileWriter::write_at(std::uint64_t offset, const void* data,
                                std::size_t len) {
  const auto* p = static_cast<const char*>(data);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t r = ::pwrite(fd_, p + done, len - done,
                               static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      fail("pwrite failed on temp file", tmp_path_);
    }
    done += static_cast<std::size_t>(r);
  }
}

void AtomicFileWriter::commit() {
  if (committed_) return;
  if (::fsync(fd_) != 0) fail("fsync failed on temp file", tmp_path_);
  if (::close(fd_) != 0) {
    fd_ = -1;
    fail("close failed on temp file", tmp_path_);
  }
  fd_ = -1;
  if (::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    fail("rename failed for", path_);
  }
  committed_ = true;
  fsync_parent_dir(path_);
}

void AtomicFileWriter::abandon() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!committed_) ::unlink(tmp_path_.c_str());
}

}  // namespace adwise
