#include "src/io/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "src/io/io_error.h"

namespace adwise {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path,
                       int err) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(err));
}

bool is_disk_full(int err) {
  return err == ENOSPC || err == EDQUOT;
}

// Transient write errno values worth a bounded backoff retry. EINTR is
// handled separately (free immediate retry); ENOSPC is terminal.
bool is_transient_write_errno(int err) {
  return err == EAGAIN || err == EIO || err == ENOBUFS;
}

void backoff(const RetryPolicy& retry, int attempt) {
  const unsigned d = retry.delay_for_attempt(attempt);
  if (retry.sleeper) {
    retry.sleeper(d);
  } else {
    ::usleep(d);
  }
}

// fsync the directory containing `path` so the rename itself is durable.
// Some filesystems reject fsync on directory fds; that weakens durability
// but does not threaten atomicity, so those errors are ignored.
void fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

AtomicFileWriter::AtomicFileWriter(std::string path, Options options)
    : path_(std::move(path)),
      tmp_path_(path_ + options.tmp_suffix),
      options_(std::move(options)) {
  fd_ = ::open(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) fail("cannot create temp file", tmp_path_, errno);
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) abandon();
}

void AtomicFileWriter::write_loop(const void* data, std::size_t len,
                                  std::uint64_t offset, bool use_pwrite) {
  const auto* p = static_cast<const char*>(data);
  FaultInjector* const inj = injector();
  const auto op = use_pwrite ? FaultInjector::WriteOp::kPwrite
                             : FaultInjector::WriteOp::kWrite;
  std::size_t done = 0;
  int attempt = 1;
  while (done < len) {
    std::size_t ask = len - done;
    int injected = 0;
    if (inj != nullptr) {
      switch (inj->write_fault(op, offset + done)) {
        case FaultInjector::WriteFault::kNone:
          break;
        case FaultInjector::WriteFault::kShortWrite:
          // A short write is a real write of a prefix: the kernel accepts
          // fewer bytes and the loop must come back for the rest.
          if (ask > 1) ask /= 2;
          break;
        case FaultInjector::WriteFault::kEintr:
          injected = EINTR;
          break;
        case FaultInjector::WriteFault::kEio:
          injected = EIO;
          break;
        case FaultInjector::WriteFault::kEnospc:
          injected = ENOSPC;
          break;
      }
    }
    ssize_t r;
    if (injected != 0) {
      r = -1;
      errno = injected;
    } else if (use_pwrite) {
      r = ::pwrite(fd_, p + done, ask, static_cast<off_t>(offset + done));
    } else {
      r = ::write(fd_, p + done, ask);
    }
    if (r < 0) {
      const int err = errno;
      if (err == EINTR) {
        ++io_retries_;
        continue;
      }
      if (is_disk_full(err)) {
        throw DiskFullError(path_, appended_ + (use_pwrite ? 0 : done),
                            std::string(std::strerror(err)) + " (temp file " +
                                tmp_path_ + ")");
      }
      if (is_transient_write_errno(err)) {
        if (attempt < options_.retry.max_attempts) {
          backoff(options_.retry, attempt);
          ++attempt;
          ++io_retries_;
          continue;
        }
        throw TransientIoError(
            "write failed on temp file " + tmp_path_ + " after " +
            std::to_string(attempt) + " attempts (" +
            std::to_string(appended_ + (use_pwrite ? 0 : done)) +
            " bytes written): " + std::strerror(err));
      }
      fail("write failed on temp file", tmp_path_, err);
    }
    if (r > 0) attempt = 1;  // progress resets the retry budget
    done += static_cast<std::size_t>(r);
  }
}

void AtomicFileWriter::append(const void* data, std::size_t len) {
  write_loop(data, len, appended_, /*use_pwrite=*/false);
  appended_ += len;
}

void AtomicFileWriter::write_at(std::uint64_t offset, const void* data,
                                std::size_t len) {
  write_loop(data, len, offset, /*use_pwrite=*/true);
}

void AtomicFileWriter::commit() {
  if (committed_) return;
  try {
    commit_impl();
  } catch (...) {
    // The commit guarantee: on any failure the temp file is gone and the
    // pre-existing destination (if any) is exactly as it was.
    abandon();
    throw;
  }
}

void AtomicFileWriter::commit_impl() {
  FaultInjector* const inj = injector();
  // Durability syscalls have no file offset; bytes appended keys their
  // failpoint so different artifacts get decorrelated schedules.
  const std::uint64_t key = appended_;
  const auto consult = [&](FaultInjector::WriteOp op) -> int {
    if (inj == nullptr) return 0;
    switch (inj->write_fault(op, key)) {
      case FaultInjector::WriteFault::kEintr:
        return EINTR;
      case FaultInjector::WriteFault::kEio:
        return EIO;
      case FaultInjector::WriteFault::kEnospc:
        return ENOSPC;
      default:
        return 0;
    }
  };

  // fsync: EINTR is retried; EIO is NOT retried in place — a failed fsync
  // may already have discarded dirty pages, so "retry until it works"
  // would report durability that never happened. It IS typed transient:
  // the commit contract (tmp unlinked, destination untouched) makes a
  // phase-level retry with a fresh writer safe.
  for (;;) {
    const int injected = consult(FaultInjector::WriteOp::kFsync);
    const int r = injected != 0 ? -1 : ::fsync(fd_);
    const int err = injected != 0 ? injected : errno;
    if (r == 0) break;
    if (err == EINTR) {
      ++io_retries_;
      continue;
    }
    if (is_disk_full(err)) {
      throw DiskFullError(path_, appended_,
                          std::string("fsync: ") + std::strerror(err));
    }
    if (is_transient_write_errno(err)) {
      throw TransientIoError("fsync failed on temp file " + tmp_path_ +
                             ": " + std::strerror(err));
    }
    fail("fsync failed on temp file", tmp_path_, err);
  }

  for (;;) {
    const int injected = consult(FaultInjector::WriteOp::kClose);
    int r;
    int err;
    if (injected != 0) {
      r = -1;
      err = injected;
    } else {
      r = ::close(fd_);
      err = errno;
      // After a real close() the fd is gone even on error (Linux); only
      // an injected EINTR may loop back to the real close.
      fd_ = -1;
    }
    if (r == 0) break;
    if (injected == EINTR) {
      ++io_retries_;
      continue;
    }
    if (is_disk_full(err)) {
      throw DiskFullError(path_, appended_,
                          std::string("close: ") + std::strerror(err));
    }
    if (is_transient_write_errno(err)) {
      // The fd is gone even on a failed close (Linux), so there is nothing
      // to retry in place — but as with fsync, re-running the whole write
      // is safe, so the failure is typed transient.
      throw TransientIoError("close failed on temp file " + tmp_path_ +
                             ": " + std::strerror(err));
    }
    fail("close failed on temp file", tmp_path_, err);
  }
  fd_ = -1;

  // rename: unlike fsync, nothing about a failed rename invalidates the
  // (already durable) temp file, so transient errors get the same bounded
  // backoff retry as writes before surfacing as TransientIoError.
  for (int attempt = 1;;) {
    const int injected = consult(FaultInjector::WriteOp::kRename);
    const int r =
        injected != 0 ? -1 : ::rename(tmp_path_.c_str(), path_.c_str());
    const int err = injected != 0 ? injected : errno;
    if (r == 0) break;
    if (err == EINTR) {
      ++io_retries_;
      continue;
    }
    if (is_disk_full(err)) {
      throw DiskFullError(path_, appended_,
                          std::string("rename: ") + std::strerror(err));
    }
    if (is_transient_write_errno(err)) {
      if (attempt < options_.retry.max_attempts) {
        backoff(options_.retry, attempt);
        ++attempt;
        ++io_retries_;
        continue;
      }
      throw TransientIoError("rename failed for " + path_ + " after " +
                             std::to_string(attempt) +
                             " attempts: " + std::strerror(err));
    }
    fail("rename failed for", path_, err);
  }
  committed_ = true;
  fsync_parent_dir(path_);
}

void AtomicFileWriter::abandon() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!committed_) ::unlink(tmp_path_.c_str());
}

}  // namespace adwise
