// Out-of-core edge stream over the .adw binary format.
//
// BinaryEdgeStream preads fixed-size chunks of records into two buffers:
// while the consumer decodes edges out of the active buffer, a single
// background worker (reusing src/common/thread_pool.h) preads the next
// chunk into the other one, so disk latency overlaps scoring and the
// partitioner sees in-memory-like throughput. Peak resident edge data is
// exactly two chunks (2 * chunk_edges * 8 bytes) no matter how large the
// graph file is — the property the paper's streaming model assumes.
//
// The stream is rewindable (multi-pass restreaming runs straight from
// disk) and size_hint() is exact from the header's edge count, which is
// what the adaptive controller's condition C2 (|E'|) consumes.
//
// Failure model (docs/ARCHITECTURE.md "Failure model"):
//  - transient pread/open errors (EINTR, EAGAIN, momentary fd exhaustion)
//    are retried with bounded exponential backoff (Options::retry); when
//    the budget is exhausted a TransientIoError surfaces — the caller can
//    resume from a checkpoint;
//  - a dead prefetch worker (PrefetchWorkerDeath) degrades the stream to
//    synchronous reads instead of aborting the run;
//  - corruption — truncation, out-of-range ids, CRC mismatches on
//    version-2 files — throws CorruptDataError and is never retried.
// The Options::fault_injector failpoint hook drives all of this
// deterministically in tests (src/io/fault_injection.h).
//
// Concurrency contract: at most one prefetch task is in flight; the
// consumer synchronizes with it through ThreadPool::wait_idle() before
// touching the prefetched buffer, so buffers are never accessed by two
// threads at once. I/O errors raised by the worker surface on the next
// next()/rewind() call.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/watchdog.h"
#include "src/graph/edge_stream.h"
#include "src/io/adw_format.h"
#include "src/io/fault_injection.h"

namespace adwise {

namespace obs {
struct ObsSink;
class Counter;
class Histogram;
class TraceSession;
}  // namespace obs

class ThreadPool;

class BinaryEdgeStream final : public RewindableEdgeStream {
 public:
  struct Options {
    // Records per buffer; 1 << 16 edges = 512 KiB per buffer (two buffers
    // resident). Clamped to >= 1, and rounded up so each chunk covers
    // whole CRC blocks on version-2 files.
    std::size_t chunk_edges = std::size_t{1} << 16;
    // When false, chunks are read synchronously on the consuming thread —
    // the ablation baseline (and a fallback for single-core boxes where a
    // prefetch thread only adds contention).
    bool prefetch = true;
    // Verify per-block CRC trailers on version-2 files (the check runs on
    // the prefetch worker, overlapped with the consumer).
    bool verify_crc = true;
    // Failpoint hook for tests; must outlive the stream. Null = no faults.
    FaultInjector* fault_injector = nullptr;
    // Retry budget for transient open/pread failures.
    RetryPolicy retry;
    // Optional observability sink (src/obs/obs_sink.h); must outlive the
    // stream. Metric handles are resolved once at construction; per-chunk
    // updates are relaxed atomic adds (never per-edge — the next() fast
    // path is untouched). Null = zero instrumentation.
    obs::ObsSink* obs = nullptr;
    // Optional stall watchdog; must outlive the stream. With prefetch on,
    // the stream registers an "io-prefetch" heartbeat armed around each
    // in-flight fetch and beaten per pread. A fetch stalled past the
    // deadline bumps watchdog.stalls; once it eventually completes, the
    // stream degrades to synchronous reads for the rest of its lifetime
    // (same sticky path a worker death takes) — a thread that wedged once
    // is never trusted with the next chunk.
    Watchdog* watchdog = nullptr;
  };

  // Opens and validates path (magic/version/size/CRC table — see
  // read_adw_header). Throws std::runtime_error on any failure
  // (TransientIoError when retries on a transient condition ran out,
  // CorruptDataError for malformed content).
  explicit BinaryEdgeStream(const std::string& path);
  BinaryEdgeStream(const std::string& path, Options options);
  ~BinaryEdgeStream() override;

  BinaryEdgeStream(const BinaryEdgeStream&) = delete;
  BinaryEdgeStream& operator=(const BinaryEdgeStream&) = delete;

  bool next(Edge& out) override;
  // Exact: total minus edges consumed (derived from the decode cursor, so
  // the per-edge fast path carries no counter update).
  [[nodiscard]] std::size_t size_hint() const override {
    return static_cast<std::size_t>(header_.num_edges) -
           consumed_before_active_ -
           static_cast<std::size_t>(cur_ - base_) / kAdwRecordBytes;
  }
  void rewind() override;

  // The validated file header (total edge count, max vertex id).
  [[nodiscard]] const AdwHeader& header() const { return header_; }

  // True once a prefetch-worker death forced the fallback to synchronous
  // reads for the rest of this stream's lifetime.
  [[nodiscard]] bool prefetch_degraded() const { return degraded_; }

  // Transient-failure retries performed so far (open + pread).
  [[nodiscard]] std::uint64_t io_retries() const {
    return io_retries_.load(std::memory_order_relaxed);
  }

 private:
  struct Buffer {
    std::vector<std::byte> bytes;
    std::size_t size = 0;  // valid bytes (multiple of kAdwRecordBytes)
  };

  // Buffer-boundary slow path of next(): swaps in the prefetched chunk and
  // retries. Kept out of line so the per-edge fast path compiles without a
  // register-saving prologue (inlining advance() into next() costs ~2x in
  // drain throughput).
  [[gnu::noinline]] bool next_refill(Edge& out);
  // Preads [offset, offset + capacity) into buf (short at EOF), verifies
  // the covered CRC blocks (v2), and validates every record id against the
  // header's max_vertex_id, so a corrupt or hand-crafted file cannot push
  // out-of-range ids into consumers' dense per-vertex arrays (sized
  // max_vertex_id + 1).
  void fill(Buffer& buf, std::uint64_t offset) const;
  void verify_chunk_crcs(const Buffer& buf, std::uint64_t offset,
                         std::size_t want) const;
  // Resets to the first record: fills buffers_[0] synchronously and hands
  // the next chunk to the worker. Shared by the constructor and rewind()
  // so first-pass and rewound-pass behavior cannot diverge.
  void prime();
  // Hands the inactive buffer to the worker (or fills it inline when
  // prefetch is off and it is needed).
  void schedule_fetch();
  // Swaps the prefetched buffer in; returns false at end of stream.
  bool advance();
  // Waits for the in-flight fetch; on PrefetchWorkerDeath degrades to
  // synchronous reads and refills the in-flight chunk inline. Other worker
  // errors propagate.
  void finish_pending_fetch();
  void open_with_retry(const std::string& path);
  void backoff(int attempt) const;

  int fd_ = -1;
  AdwHeader header_;
  Options options_;
  std::string path_;
  std::uint64_t file_bytes_ = 0;
  std::vector<std::uint32_t> crc_table_;  // empty for v1 / verify_crc off
  Buffer buffers_[2];
  int active_ = 0;
  // Decode cursor into the active buffer — raw pointers so the per-edge
  // hot path is one compare + one 8-byte load.
  const std::byte* cur_ = nullptr;
  const std::byte* end_ = nullptr;
  const std::byte* base_ = nullptr;  // active buffer start, for size_hint()
  // Edges consumed in all fully-drained chunks (set to num_edges at end of
  // stream so size_hint() reads zero).
  std::size_t consumed_before_active_ = 0;
  std::uint64_t next_offset_ = 0;  // file offset of the next unfetched chunk
  std::uint64_t pending_offset_ = 0;  // offset of the in-flight fetch
  bool fetch_pending_ = false;
  bool degraded_ = false;
  // Written by whichever thread runs fill() (worker or consumer), read by
  // the consumer — hence atomic.
  mutable std::atomic<std::uint64_t> io_retries_{0};
  // Largest vertex id seen by fill()'s chunk scan since the last prime().
  // Cross-checked against header max_vertex_id at end of stream — the
  // check that makes the un-CRC'd header bytes 16–23 tamper-evident. Same
  // single-writer discipline (and reason for atomic) as io_retries_.
  mutable std::atomic<std::uint64_t> observed_max_id_{0};
  std::unique_ptr<ThreadPool> pool_;  // one worker; null when !prefetch
  // Watchdog heartbeat for the prefetch worker (null when unwatched) and
  // the sticky stall verdict its on_stall callback sets.
  Watchdog::Handle* wd_ = nullptr;
  std::atomic<bool> wd_stall_flagged_{false};

  // Observability handles, resolved once in the constructor (all null when
  // Options::obs carries no registry/trace). The registry owns the
  // counters; updates are relaxed atomics, safe from whichever thread runs
  // fill().
  obs::Counter* m_bytes_read_ = nullptr;
  obs::Counter* m_preads_ = nullptr;
  obs::Histogram* m_pread_ns_ = nullptr;     // per-chunk pread-loop ns
  obs::Counter* m_prefetch_waits_ = nullptr;
  obs::Counter* m_prefetch_wait_ns_ = nullptr;
  obs::Histogram* m_chunk_consume_ns_ = nullptr;  // between chunk handoffs
  obs::Counter* m_io_retries_ = nullptr;
  obs::Counter* m_prefetch_degraded_ = nullptr;
  obs::Counter* m_watchdog_stalls_ = nullptr;
  obs::TraceSession* trace_ = nullptr;
  // Consumer-thread only: timestamp of the previous chunk handoff.
  std::int64_t last_handoff_ns_ = 0;
};

}  // namespace adwise
