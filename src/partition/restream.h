// Multi-pass (restreaming) partitioning.
//
// Nishimura & Ugander (KDD'13) showed that re-running a streaming
// partitioner with the previous pass's state as a hint improves quality at
// the cost of extra passes — the paper cites restreaming as related work on
// the latency/quality spectrum (§V). This module generalizes the idea to
// vertex-cut partitioners: the vertex cache (replica sets, degree table)
// carries over between passes, so pass i scores every edge with the
// information pass i-1 accumulated; the final pass's assignments are the
// result, and quality is measured on a clean replay of exactly those
// assignments.
//
// Passes run over a RewindableEdgeStream — rewound between passes — so
// restreaming is out-of-core when the stream is (FileEdgeStream,
// BinaryEdgeStream): per-pass metrics are accumulated edge-by-edge in the
// assignment callback and no pass ever materializes the edge list. Peak
// resident edge data is whatever the stream itself buffers (two chunks for
// BinaryEdgeStream).
//
// Works with any EdgePartitioner, including ADWISE.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/partition/partitioner.h"

namespace adwise {

namespace obs {
struct ObsSink;
}  // namespace obs

// Fresh partitioner per pass (partitioners may carry per-run state).
using RestreamFactory = std::function<std::unique_ptr<EdgePartitioner>()>;

struct RestreamResult {
  // Clean state replaying only the final pass's assignments.
  PartitionState final_state;
  // Final pass's assignments; left empty when a final_sink consumes them
  // instead (the out-of-core mode — nothing |E|-sized is retained).
  std::vector<Assignment> assignments;
  // Replication degree measured after each pass (clean replay per pass).
  std::vector<double> pass_replication;

  RestreamResult(std::uint32_t k, VertexId n) : final_state(k, n) {}
};

// Runs `passes` passes over the stream (rewinding between passes). The
// final pass's assignments go to final_sink when provided — letting callers
// write them straight to disk/stdout — and are collected into
// RestreamResult::assignments otherwise. A non-null obs sink records one
// restream_pass trace span per pass (per-pass partitioner/stream metrics
// come from wiring the same sink into their options).
[[nodiscard]] RestreamResult restream_partition(
    RewindableEdgeStream& stream, VertexId num_vertices, std::uint32_t k,
    const RestreamFactory& factory, std::uint32_t passes,
    const AssignmentSink& final_sink = {}, obs::ObsSink* obs = nullptr);

// In-memory convenience wrapper over a borrowed edge span.
[[nodiscard]] RestreamResult restream_partition(std::span<const Edge> edges,
                                                VertexId num_vertices,
                                                std::uint32_t k,
                                                const RestreamFactory& factory,
                                                std::uint32_t passes);

}  // namespace adwise
