#include "src/partition/grid_partitioner.h"

#include <array>

namespace adwise {

GridPartitioner::GridPartitioner(std::uint32_t k, std::uint64_t seed)
    : rows_(1), cols_(k), seed_(seed) {
  // Most square factorization r <= c with r * c == k.
  for (std::uint32_t r = 1; r * r <= k; ++r) {
    if (k % r == 0) {
      rows_ = r;
      cols_ = k / r;
    }
  }
}

PartitionId GridPartitioner::place(const Edge& e, const PartitionState& state) {
  const PartitionId cu = cell_of(e.u);
  const PartitionId cv = cell_of(e.v);
  const std::uint32_t ru = cu / cols_, ku = cu % cols_;
  const std::uint32_t rv = cv / cols_, kv = cv % cols_;

  // S(u) ∩ S(v) always contains the two "crossing" cells (row_u, col_v) and
  // (row_v, col_u); when u and v share a row or column the whole shared line
  // is legal. Enumerate the legal cells and pick the least loaded.
  PartitionId best = kInvalidPartition;
  std::uint64_t best_load = 0;
  auto consider = [&](PartitionId p) {
    const std::uint64_t load = state.edges_on(p);
    if (best == kInvalidPartition || load < best_load ||
        (load == best_load && p < best)) {
      best = p;
      best_load = load;
    }
  };

  if (ru == rv) {
    for (std::uint32_t c = 0; c < cols_; ++c) consider(ru * cols_ + c);
  }
  if (ku == kv) {
    for (std::uint32_t r = 0; r < rows_; ++r) consider(r * cols_ + ku);
  }
  consider(ru * cols_ + kv);
  consider(rv * cols_ + ku);
  return best;
}

}  // namespace adwise
