#include "src/partition/spotlight.h"

#include <cassert>
#include <thread>

#include "src/common/clock.h"
#include "src/graph/edge_stream.h"

namespace adwise {

std::vector<PartitionId> spotlight_group(const SpotlightOptions& opts,
                                         std::uint32_t instance) {
  std::vector<PartitionId> group;
  group.reserve(opts.spread);
  for (std::uint32_t j = 0; j < opts.spread; ++j) {
    group.push_back((instance * opts.spread + j) % opts.k);
  }
  return group;
}

SpotlightResult run_spotlight(std::span<const Edge> edges,
                              VertexId num_vertices,
                              const PartitionerFactory& factory,
                              const SpotlightOptions& opts) {
  assert(opts.spread >= 1 && opts.spread <= opts.k);
  assert(opts.num_partitioners >= 1);

  SpotlightResult result(opts.k, num_vertices);
  const auto chunks = chunk_edges(edges, opts.num_partitioners);

  struct InstanceOutput {
    std::vector<Assignment> assignments;
    double seconds = 0.0;
  };
  std::vector<InstanceOutput> outputs(opts.num_partitioners);

  auto run_instance = [&](std::uint32_t i) {
    const auto group = spotlight_group(opts, i);
    auto partitioner = factory(i, opts.spread);
    PartitionState local(opts.spread, num_vertices);
    VectorEdgeStream stream(chunks[i]);
    auto& out = outputs[i];
    out.assignments.reserve(chunks[i].size());
    Stopwatch watch;
    partitioner->partition(stream, local,
                           [&](const Edge& e, PartitionId local_p) {
                             out.assignments.push_back({e, group[local_p]});
                           });
    out.seconds = watch.elapsed_seconds();
  };

  if (opts.run_threads) {
    std::vector<std::thread> threads;
    threads.reserve(opts.num_partitioners);
    for (std::uint32_t i = 0; i < opts.num_partitioners; ++i) {
      threads.emplace_back(run_instance, i);
    }
    for (auto& t : threads) t.join();
  } else {
    for (std::uint32_t i = 0; i < opts.num_partitioners; ++i) {
      run_instance(i);
    }
  }

  // Deterministic merge in instance order; the merged state is the global
  // view used for quality metrics and by the processing engine.
  for (auto& out : outputs) {
    result.instance_seconds.push_back(out.seconds);
    result.wall_seconds = std::max(result.wall_seconds, out.seconds);
    for (const Assignment& a : out.assignments) {
      result.merged.assign(a.edge, a.partition);
      result.assignments.push_back(a);
    }
  }
  return result;
}

}  // namespace adwise
