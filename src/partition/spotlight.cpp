#include "src/partition/spotlight.h"

#include <cassert>
#include <thread>

#include "src/common/clock.h"
#include "src/graph/edge_stream.h"

namespace adwise {

std::vector<PartitionId> spotlight_group(const SpotlightOptions& opts,
                                         std::uint32_t instance) {
  std::vector<PartitionId> group;
  group.reserve(opts.spread);
  for (std::uint32_t j = 0; j < opts.spread; ++j) {
    group.push_back((instance * opts.spread + j) % opts.k);
  }
  return group;
}

namespace {

// EdgeStream view over the next `limit` edges of a shared underlying
// stream: each spotlight instance consumes exactly its chunk and leaves the
// read head at the next chunk's first edge.
class ChunkView final : public EdgeStream {
 public:
  ChunkView(EdgeStream& inner, std::size_t limit)
      : inner_(&inner), remaining_(limit) {}

  bool next(Edge& out) override {
    if (remaining_ == 0 || !inner_->next(out)) return false;
    --remaining_;
    return true;
  }

  [[nodiscard]] std::size_t size_hint() const override {
    return std::min(remaining_, inner_->size_hint());
  }

 private:
  EdgeStream* inner_;
  std::size_t remaining_;
};

}  // namespace

SpotlightResult run_spotlight(RewindableEdgeStream& stream,
                              VertexId num_vertices,
                              const PartitionerFactory& factory,
                              const SpotlightOptions& opts) {
  assert(opts.spread >= 1 && opts.spread <= opts.k);
  assert(opts.num_partitioners >= 1);

  SpotlightResult result(opts.k, num_vertices);
  stream.rewind();
  const auto sizes = chunk_sizes(stream.size_hint(), opts.num_partitioners);

  for (std::uint32_t i = 0; i < opts.num_partitioners; ++i) {
    const auto group = spotlight_group(opts, i);
    auto partitioner = factory(i, opts.spread);
    PartitionState local(opts.spread, num_vertices);
    ChunkView view(stream, sizes[i]);
    const std::size_t begin = result.assignments.size();
    Stopwatch watch;
    partitioner->partition(view, local,
                           [&](const Edge& e, PartitionId local_p) {
                             result.assignments.push_back({e, group[local_p]});
                           });
    const double seconds = watch.elapsed_seconds();
    result.instance_seconds.push_back(seconds);
    result.wall_seconds = std::max(result.wall_seconds, seconds);
    // Deterministic merge in instance order, outside the timed region like
    // the span overload; the merged state is the global view used for
    // quality metrics and by the processing engine.
    for (std::size_t j = begin; j < result.assignments.size(); ++j) {
      result.merged.assign(result.assignments[j].edge,
                           result.assignments[j].partition);
    }
  }
  return result;
}

SpotlightResult run_spotlight(std::span<const Edge> edges,
                              VertexId num_vertices,
                              const PartitionerFactory& factory,
                              const SpotlightOptions& opts) {
  assert(opts.spread >= 1 && opts.spread <= opts.k);
  assert(opts.num_partitioners >= 1);

  if (!opts.run_threads) {
    VectorEdgeStream stream(edges);
    return run_spotlight(stream, num_vertices, factory, opts);
  }

  SpotlightResult result(opts.k, num_vertices);
  const auto chunks = chunk_edges(edges, opts.num_partitioners);

  struct InstanceOutput {
    std::vector<Assignment> assignments;
    double seconds = 0.0;
  };
  std::vector<InstanceOutput> outputs(opts.num_partitioners);

  auto run_instance = [&](std::uint32_t i) {
    const auto group = spotlight_group(opts, i);
    auto partitioner = factory(i, opts.spread);
    PartitionState local(opts.spread, num_vertices);
    VectorEdgeStream stream(chunks[i]);
    auto& out = outputs[i];
    out.assignments.reserve(chunks[i].size());
    Stopwatch watch;
    partitioner->partition(stream, local,
                           [&](const Edge& e, PartitionId local_p) {
                             out.assignments.push_back({e, group[local_p]});
                           });
    out.seconds = watch.elapsed_seconds();
  };

  std::vector<std::thread> threads;
  threads.reserve(opts.num_partitioners);
  for (std::uint32_t i = 0; i < opts.num_partitioners; ++i) {
    threads.emplace_back(run_instance, i);
  }
  for (auto& t : threads) t.join();

  // Deterministic merge in instance order; the merged state is the global
  // view used for quality metrics and by the processing engine.
  for (auto& out : outputs) {
    result.instance_seconds.push_back(out.seconds);
    result.wall_seconds = std::max(result.wall_seconds, out.seconds);
    for (const Assignment& a : out.assignments) {
      result.merged.assign(a.edge, a.partition);
      result.assignments.push_back(a);
    }
  }
  return result;
}

}  // namespace adwise
