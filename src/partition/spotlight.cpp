#include "src/partition/spotlight.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "src/common/clock.h"
#include "src/common/thread_pool.h"
#include "src/graph/edge_stream.h"
#include "src/io/adw_shards.h"
#include "src/io/binary_stream.h"
#include "src/obs/metric_names.h"
#include "src/obs/obs_sink.h"

namespace adwise {

std::vector<PartitionId> spotlight_group(const SpotlightOptions& opts,
                                         std::uint32_t instance) {
  std::vector<PartitionId> group;
  group.reserve(opts.spread);
  for (std::uint32_t j = 0; j < opts.spread; ++j) {
    group.push_back((instance * opts.spread + j) % opts.k);
  }
  return group;
}

namespace {

// EdgeStream view over the next `limit` edges of a shared underlying
// stream: each spotlight instance consumes exactly its chunk and leaves the
// read head at the next chunk's first edge.
class ChunkView final : public EdgeStream {
 public:
  ChunkView(EdgeStream& inner, std::size_t limit)
      : inner_(&inner), remaining_(limit) {}

  bool next(Edge& out) override {
    if (remaining_ == 0 || !inner_->next(out)) return false;
    --remaining_;
    return true;
  }

  [[nodiscard]] std::size_t size_hint() const override {
    return std::min(remaining_, inner_->size_hint());
  }

 private:
  EdgeStream* inner_;
  std::size_t remaining_;
};

// What one instance produces before the deterministic merge. The
// partitioner outlives the timed region so on_instance_done can harvest
// telemetry from it.
struct InstanceOutput {
  std::vector<Assignment> assignments;
  double seconds = 0.0;
  std::unique_ptr<EdgePartitioner> partitioner;
};

// Deterministic merge in instance order, outside the timed region: the
// merged state is the global view used for quality metrics and by the
// processing engine, and the telemetry hook fires in the same order
// regardless of how the instances were scheduled.
void merge_instance_outputs(SpotlightResult& result,
                            std::vector<InstanceOutput>& outputs,
                            const SpotlightOptions& opts) {
  for (std::uint32_t i = 0; i < outputs.size(); ++i) {
    InstanceOutput& out = outputs[i];
    result.instance_seconds.push_back(out.seconds);
    result.wall_seconds = std::max(result.wall_seconds, out.seconds);
    for (const Assignment& a : out.assignments) {
      result.merged.assign(a.edge, a.partition);
      result.assignments.push_back(a);
    }
    if (opts.on_instance_done) opts.on_instance_done(i, *out.partitioner);
  }
}

}  // namespace

SpotlightResult run_spotlight(const InstanceStreamFactory& streams,
                              VertexId num_vertices,
                              const PartitionerFactory& factory,
                              const SpotlightOptions& opts) {
  assert(opts.spread >= 1 && opts.spread <= opts.k);
  assert(opts.num_partitioners >= 1);

  SpotlightResult result(opts.k, num_vertices);
  const std::uint32_t z = opts.num_partitioners;
  std::vector<InstanceOutput> outputs(z);

  obs::TraceSession* const trace = obs::trace_of(opts.obs);
  auto run_instance = [&](std::uint32_t i) {
    if (trace != nullptr) trace->name_current_thread("spotlight-instance");
    obs::TraceSpan span(trace, obs::names::kSpanSpotlightInstance);
    const auto group = spotlight_group(opts, i);
    auto partitioner = factory(i, opts.spread);
    PartitionState local(opts.spread, num_vertices);
    std::unique_ptr<EdgeStream> stream = streams(i);
    InstanceOutput& out = outputs[i];
    out.assignments.reserve(stream->size_hint());
    Stopwatch watch;
    partitioner->partition(*stream, local,
                           [&](const Edge& e, PartitionId local_p) {
                             out.assignments.push_back({e, group[local_p]});
                           });
    out.seconds = watch.elapsed_seconds();
    out.partitioner = std::move(partitioner);
  };

  if (opts.run_threads && z > 1) {
    const std::uint32_t workers =
        opts.num_threads == 0 ? z : std::min(opts.num_threads, z);
    ThreadPool pool(workers);
    for (std::uint32_t i = 0; i < z; ++i) {
      pool.submit([&run_instance, i] { run_instance(i); });
    }
    // Rethrows the first instance failure (stream open error, corrupt
    // shard, ...) after every instance has stopped.
    pool.wait_idle();
  } else {
    for (std::uint32_t i = 0; i < z; ++i) run_instance(i);
  }

  merge_instance_outputs(result, outputs, opts);
  return result;
}

SpotlightResult run_spotlight_sharded(const std::string& manifest_path,
                                      VertexId num_vertices,
                                      const PartitionerFactory& factory,
                                      const SpotlightOptions& opts) {
  const AdwManifest manifest = read_and_validate_adw_manifest(manifest_path);
  if (manifest.num_shards() != opts.num_partitioners) {
    throw std::runtime_error(
        "sharded spotlight: " + manifest_path + " has " +
        std::to_string(manifest.num_shards()) + " shards but options ask for " +
        std::to_string(opts.num_partitioners) +
        " instances — the sharding fixed the chunk boundaries, re-shard to "
        "change z");
  }
  if (manifest.num_edges() > 0 && manifest.max_vertex_id() >= num_vertices) {
    throw std::runtime_error(
        "sharded spotlight: " + manifest_path + " holds vertex id " +
        std::to_string(manifest.max_vertex_id()) + " but num_vertices is " +
        std::to_string(num_vertices));
  }
  return run_spotlight(
      [&manifest_path, &opts](std::uint32_t instance)
          -> std::unique_ptr<EdgeStream> {
        // Each instance opens (and validates) its own shard on its own
        // thread: pread, bound-checking and decode run per instance. The
        // registry is thread-safe, so per-shard stream metrics aggregate.
        BinaryEdgeStream::Options sopts;
        sopts.obs = opts.obs;
        return std::make_unique<BinaryEdgeStream>(
            adw_shard_path(manifest_path, instance), sopts);
      },
      num_vertices, factory, opts);
}

SpotlightResult run_spotlight(RewindableEdgeStream& stream,
                              VertexId num_vertices,
                              const PartitionerFactory& factory,
                              const SpotlightOptions& opts) {
  assert(opts.spread >= 1 && opts.spread <= opts.k);
  assert(opts.num_partitioners >= 1);

  SpotlightResult result(opts.k, num_vertices);
  stream.rewind();
  const std::size_t expected = stream.size_hint();
  const auto sizes = chunk_sizes(expected, opts.num_partitioners);

  obs::TraceSession* const trace = obs::trace_of(opts.obs);
  for (std::uint32_t i = 0; i < opts.num_partitioners; ++i) {
    obs::TraceSpan span(trace, obs::names::kSpanSpotlightInstance);
    const auto group = spotlight_group(opts, i);
    auto partitioner = factory(i, opts.spread);
    PartitionState local(opts.spread, num_vertices);
    ChunkView view(stream, sizes[i]);
    const std::size_t begin = result.assignments.size();
    Stopwatch watch;
    partitioner->partition(view, local,
                           [&](const Edge& e, PartitionId local_p) {
                             result.assignments.push_back({e, group[local_p]});
                           });
    const double seconds = watch.elapsed_seconds();
    result.instance_seconds.push_back(seconds);
    result.wall_seconds = std::max(result.wall_seconds, seconds);
    // Deterministic merge in instance order, outside the timed region like
    // the per-instance-stream overload.
    for (std::size_t j = begin; j < result.assignments.size(); ++j) {
      result.merged.assign(result.assignments[j].edge,
                           result.assignments[j].partition);
    }
    if (opts.on_instance_done) opts.on_instance_done(i, *partitioner);
  }

  // Chunk bounds were derived from size_hint() once, up front. A stream
  // that under-delivers starves the trailing instances and one that
  // over-delivers drops edges — either way the merged result would be
  // silently skewed, so refuse to return it.
  if (result.assignments.size() != expected) {
    throw std::runtime_error(
        "spotlight stream delivered " +
        std::to_string(result.assignments.size()) +
        " edges but size_hint() promised " + std::to_string(expected) +
        " — instance loads would be silently skewed (short shard?)");
  }
  Edge probe;
  if (stream.next(probe)) {
    throw std::runtime_error(
        "spotlight stream still has edges after the " +
        std::to_string(expected) +
        " its size_hint() promised — chunk bounds dropped the surplus");
  }
  return result;
}

SpotlightResult run_spotlight(std::span<const Edge> edges,
                              VertexId num_vertices,
                              const PartitionerFactory& factory,
                              const SpotlightOptions& opts) {
  assert(opts.spread >= 1 && opts.spread <= opts.k);
  assert(opts.num_partitioners >= 1);

  if (!opts.run_threads) {
    VectorEdgeStream stream(edges);
    return run_spotlight(stream, num_vertices, factory, opts);
  }

  const auto chunks = chunk_edges(edges, opts.num_partitioners);
  return run_spotlight(
      [&chunks](std::uint32_t instance) -> std::unique_ptr<EdgeStream> {
        return std::make_unique<VectorEdgeStream>(chunks[instance]);
      },
      num_vertices, factory, opts);
}

}  // namespace adwise
