#include "src/partition/restream.h"

#include <cassert>
#include <utility>

#include "src/obs/metric_names.h"
#include "src/obs/obs_sink.h"

namespace adwise {

RestreamResult restream_partition(RewindableEdgeStream& stream,
                                  VertexId num_vertices, std::uint32_t k,
                                  const RestreamFactory& factory,
                                  std::uint32_t passes,
                                  const AssignmentSink& final_sink,
                                  obs::ObsSink* obs) {
  assert(passes >= 1);
  RestreamResult result(k, num_vertices);

  // The carry state accumulates replica sets and degrees across passes —
  // this is the restreaming hint. Its balance counters keep growing, which
  // is harmless: balance scores are relative (max - |p| over max - min).
  PartitionState carry(k, num_vertices);
  for (std::uint32_t pass = 0; pass < passes; ++pass) {
    if (pass > 0) stream.rewind();
    obs::TraceSpan pass_span(obs::trace_of(obs),
                             obs::names::kSpanRestreamPass);
    const bool last = pass + 1 == passes;
    // Clean replay built inline in the sink: this pass's metrics reflect
    // only this pass's assignments, not the accumulated hint state, and no
    // per-pass assignment list is ever materialized.
    PartitionState replay(k, num_vertices);
    auto partitioner = factory();
    partitioner->partition(stream, carry,
                           [&](const Edge& e, PartitionId p) {
                             replay.assign(e, p);
                             if (!last) return;
                             if (final_sink) {
                               final_sink(e, p);
                             } else {
                               result.assignments.push_back({e, p});
                             }
                           });
    result.pass_replication.push_back(replay.replication_degree());
    if (last) result.final_state = std::move(replay);
  }
  return result;
}

RestreamResult restream_partition(std::span<const Edge> edges,
                                  VertexId num_vertices, std::uint32_t k,
                                  const RestreamFactory& factory,
                                  std::uint32_t passes) {
  VectorEdgeStream stream(edges);
  return restream_partition(stream, num_vertices, k, factory, passes);
}

}  // namespace adwise
