#include "src/partition/restream.h"

#include <cassert>

namespace adwise {

RestreamResult restream_partition(std::span<const Edge> edges,
                                  VertexId num_vertices, std::uint32_t k,
                                  const RestreamFactory& factory,
                                  std::uint32_t passes) {
  assert(passes >= 1);
  RestreamResult result(k, num_vertices);

  // The carry state accumulates replica sets and degrees across passes —
  // this is the restreaming hint. Its balance counters keep growing, which
  // is harmless: balance scores are relative (max - |p| over max - min).
  PartitionState carry(k, num_vertices);
  for (std::uint32_t pass = 0; pass < passes; ++pass) {
    result.assignments.clear();
    VectorEdgeStream stream(edges);
    auto partitioner = factory();
    partitioner->partition(stream, carry,
                           [&](const Edge& e, PartitionId p) {
                             result.assignments.push_back({e, p});
                           });
    // Clean replay: metrics for this pass reflect only this pass's
    // assignments, not the accumulated hint state.
    PartitionState replay(k, num_vertices);
    for (const Assignment& a : result.assignments) {
      replay.assign(a.edge, a.partition);
    }
    result.pass_replication.push_back(replay.replication_degree());
    if (pass + 1 == passes) {
      result.final_state = std::move(replay);
    }
  }
  return result;
}

}  // namespace adwise
