// Fennel — streaming vertex partitioning (Tsourakakis et al., WSDM 2014),
// lifted to an edge partitioning via Vertex2EdgePartitioner.
//
// Each vertex v, arriving in first-appearance order with its neighbor
// list, goes to the partition maximizing
//
//   score(p) = |N(v) ∩ P_p| - alpha * gamma * |P_p|^(gamma - 1)
//
// i.e. the interpolated cut objective: the neighbor term pulls v toward
// partitions already holding its neighbors, the degree-gamma penalty
// (gamma = 1.5, the authors' recommendation) pushes it away from crowded
// ones. alpha = sqrt(k) * |E| / |V|^1.5 is the paper's balanced operating
// point; both parameters are constructor-settable for experiments. The
// paper's hard balance constraint |S_p| ≤ ν·n/k is enforced with ν = 1.1:
// partitions at capacity leave the argmax (essential on graphs sparser
// than the objective's operating point, where the penalty term alone is
// too weak to spread the load). Only already-assigned neighbors count
// (one-pass streaming), so the score is exactly the paper's streamed
// objective. Ties break toward the partition with fewer vertices, then the
// smaller id — fully deterministic.
#pragma once

#include <memory>

#include "src/partition/vertex2edgepart.h"

namespace adwise {

class FennelVertexAssigner final : public VertexAssigner {
 public:
  explicit FennelVertexAssigner(double gamma = 1.5, double alpha = 0.0)
      : gamma_(gamma), alpha_override_(alpha) {}

  [[nodiscard]] std::string_view name() const override { return "fennel"; }

  [[nodiscard]] PartitionId place_vertex(
      VertexId v, std::span<const VertexId> neighbors,
      const VertexAssignView& view) override;

 private:
  double gamma_;
  double alpha_override_;  // 0 = derive sqrt(k) * |E| / |V|^1.5 per run
  // Per-decision scratch: neighbor counts per partition + touched list so
  // resets cost O(|touched|), not O(k).
  std::vector<std::uint32_t> neighbor_count_;
  std::vector<PartitionId> touched_;
};

// The registry entry: Fennel behind the vertex -> edge lifting rule.
[[nodiscard]] std::unique_ptr<EdgePartitioner> make_fennel_partitioner(
    double gamma = 1.5, double alpha = 0.0);

}  // namespace adwise
