// Partitioner interfaces.
//
// EdgePartitioner consumes an EdgeStream and records assignments into a
// PartitionState. Window-based algorithms (ADWISE) may emit assignments in a
// different order than the stream; single-edge algorithms assign in stream
// order and only need to implement place().
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string_view>
#include <utility>

#include "src/graph/edge_stream.h"
#include "src/partition/partition_state.h"
#include "src/partition/types.h"

namespace adwise {

// Optional per-assignment callback (used by spotlight to collect global
// assignments and by the engine builders).
using AssignmentSink = std::function<void(const Edge&, PartitionId)>;

// Crash-tolerance hook: a partitioner that supports checkpointing calls
// emit at a safe boundary after every `every` assignments. At that point
// exactly `assignments` sink calls have been made, the first
// `edges_consumed` stream edges are fully accounted for (assigned, or held
// inside the serialized algorithm state), and `state` is the algorithm's
// opaque state blob (empty for stateless algorithms). Resuming means:
// restore PartitionState, feed `state` back through
// restore_algorithm_state(), skip `edges_consumed` stream edges, and call
// partition() again — the continuation is bit-identical to the
// uninterrupted run.
struct CheckpointHook {
  std::uint64_t every = 0;  // 0 disables
  std::function<void(std::uint64_t assignments, std::uint64_t edges_consumed,
                     std::span<const std::byte> state)>
      emit;
};

class EdgePartitioner {
 public:
  virtual ~EdgePartitioner() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  // Drains the stream, assigning every edge exactly once.
  virtual void partition(EdgeStream& stream, PartitionState& state,
                         const AssignmentSink& sink = {}) = 0;

  // Opt-in crash tolerance. Returns false (and installs nothing) when the
  // algorithm cannot checkpoint — callers must treat that as "run without
  // durability", not silently assume coverage.
  virtual bool enable_checkpoints(CheckpointHook hook) {
    (void)hook;
    return false;
  }

  // Restores the opaque blob a CheckpointHook emitted, to take effect on
  // the next partition() call. Returns false if the algorithm cannot
  // restore this state (unsupported, or the blob shape is alien).
  virtual bool restore_algorithm_state(std::span<const std::byte> state) {
    (void)state;
    return false;
  }
};

// Base for the classic one-edge-at-a-time streaming algorithms (§II-B).
class SingleEdgePartitioner : public EdgePartitioner {
 public:
  // Chooses the partition for e given the current state. Must not mutate
  // anything; the framework applies the assignment.
  [[nodiscard]] virtual PartitionId place(const Edge& e,
                                          const PartitionState& state) = 0;

  void partition(EdgeStream& stream, PartitionState& state,
                 const AssignmentSink& sink = {}) final {
    Edge e;
    while (stream.next(e)) {
      const PartitionId p = place(e, state);
      state.assign(e, p);
      if (sink) sink(e, p);
      // Single-edge algorithms carry no state beyond PartitionState, so
      // the boundary after any assignment is safe and edges consumed ==
      // assignments (state.assigned_edges() is absolute, surviving resume
      // because the restored state carries the pre-crash count).
      if (ckpt_.every != 0 && ckpt_.emit &&
          state.assigned_edges() % ckpt_.every == 0) {
        ckpt_.emit(state.assigned_edges(), state.assigned_edges(), {});
      }
    }
  }

  // place() is a pure function of (edge, state), so any stateless
  // single-edge algorithm checkpoints for free.
  bool enable_checkpoints(CheckpointHook hook) final {
    ckpt_ = std::move(hook);
    return true;
  }

  bool restore_algorithm_state(std::span<const std::byte> state) final {
    return state.empty();
  }

 private:
  CheckpointHook ckpt_;
};

}  // namespace adwise
