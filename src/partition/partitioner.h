// Partitioner interfaces.
//
// EdgePartitioner consumes an EdgeStream and records assignments into a
// PartitionState. Window-based algorithms (ADWISE) may emit assignments in a
// different order than the stream; single-edge algorithms assign in stream
// order and only need to implement place().
#pragma once

#include <functional>
#include <string_view>

#include "src/graph/edge_stream.h"
#include "src/partition/partition_state.h"
#include "src/partition/types.h"

namespace adwise {

// Optional per-assignment callback (used by spotlight to collect global
// assignments and by the engine builders).
using AssignmentSink = std::function<void(const Edge&, PartitionId)>;

class EdgePartitioner {
 public:
  virtual ~EdgePartitioner() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  // Drains the stream, assigning every edge exactly once.
  virtual void partition(EdgeStream& stream, PartitionState& state,
                         const AssignmentSink& sink = {}) = 0;
};

// Base for the classic one-edge-at-a-time streaming algorithms (§II-B).
class SingleEdgePartitioner : public EdgePartitioner {
 public:
  // Chooses the partition for e given the current state. Must not mutate
  // anything; the framework applies the assignment.
  [[nodiscard]] virtual PartitionId place(const Edge& e,
                                          const PartitionState& state) = 0;

  void partition(EdgeStream& stream, PartitionState& state,
                 const AssignmentSink& sink = {}) final {
    Edge e;
    while (stream.next(e)) {
      const PartitionId p = place(e, state);
      state.assign(e, p);
      if (sink) sink(e, p);
    }
  }
};

}  // namespace adwise
