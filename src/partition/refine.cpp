#include "src/partition/refine.h"

#include <cassert>
#include <numeric>

#include "src/common/rng.h"

namespace adwise {

namespace {

// Dense (vertex x partition) incident-edge counters: count(v, p) is the
// number of v's edges currently assigned to p. A vertex holds a replica on
// p iff count(v, p) > 0, so moving an edge changes the global replica count
// by the number of freed minus newly created (vertex, partition) pairs.
class IncidenceCounts {
 public:
  IncidenceCounts(VertexId n, std::uint32_t k)
      : k_(k), counts_(static_cast<std::size_t>(n) * k, 0) {}

  [[nodiscard]] std::uint32_t count(VertexId v, PartitionId p) const {
    return counts_[static_cast<std::size_t>(v) * k_ + p];
  }

  void add(VertexId v, PartitionId p) {
    ++counts_[static_cast<std::size_t>(v) * k_ + p];
  }

  void remove(VertexId v, PartitionId p) {
    assert(count(v, p) > 0);
    --counts_[static_cast<std::size_t>(v) * k_ + p];
  }

 private:
  std::uint32_t k_;
  std::vector<std::uint32_t> counts_;
};

}  // namespace

RefineResult refine_partition(std::span<const Assignment> assignments,
                              std::uint32_t k, VertexId num_vertices,
                              const RefineOptions& options) {
  RefineResult result(k, num_vertices);
  result.assignments.assign(assignments.begin(), assignments.end());
  if (assignments.empty()) return result;

  IncidenceCounts counts(num_vertices, k);
  std::vector<std::uint64_t> partition_sizes(k, 0);
  for (const Assignment& a : result.assignments) {
    counts.add(a.edge.u, a.partition);
    if (a.edge.v != a.edge.u) counts.add(a.edge.v, a.partition);
    ++partition_sizes[a.partition];
  }
  const std::uint64_t cap = static_cast<std::uint64_t>(
      static_cast<double>((assignments.size() + k - 1) / k) *
      (1.0 + options.balance_slack));

  // Replica delta of moving edge (u,v) from p to q: freed replicas minus
  // created replicas across both endpoints.
  auto move_gain = [&](const Edge& e, PartitionId p, PartitionId q) {
    int gain = 0;
    if (counts.count(e.u, p) == 1) ++gain;   // p loses u's last edge
    if (counts.count(e.u, q) == 0) --gain;   // q gains a new replica of u
    if (e.v != e.u) {
      if (counts.count(e.v, p) == 1) ++gain;
      if (counts.count(e.v, q) == 0) --gain;
    }
    return gain;
  };

  Rng rng(options.seed);
  std::vector<std::size_t> order(result.assignments.size());
  std::iota(order.begin(), order.end(), 0);

  for (std::uint32_t round = 0; round < options.max_rounds; ++round) {
    // Fresh random visit order each round (hill climbing is order-biased).
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
    std::uint64_t moved = 0;
    for (const std::size_t idx : order) {
      Assignment& a = result.assignments[idx];
      const PartitionId p = a.partition;
      PartitionId best_q = p;
      int best_gain = 0;
      for (PartitionId q = 0; q < k; ++q) {
        if (q == p || partition_sizes[q] + 1 > cap) continue;
        const int gain = move_gain(a.edge, p, q);
        if (gain > best_gain) {
          best_gain = gain;
          best_q = q;
        }
      }
      if (best_q == p) continue;
      counts.remove(a.edge.u, p);
      counts.add(a.edge.u, best_q);
      if (a.edge.v != a.edge.u) {
        counts.remove(a.edge.v, p);
        counts.add(a.edge.v, best_q);
      }
      --partition_sizes[p];
      ++partition_sizes[best_q];
      a.partition = best_q;
      ++moved;
    }
    result.moves += moved;
    ++result.rounds;
    if (static_cast<double>(moved) <
        options.min_move_fraction *
            static_cast<double>(result.assignments.size())) {
      break;
    }
  }

  for (const Assignment& a : result.assignments) {
    result.state.assign(a.edge, a.partition);
  }
  return result;
}

}  // namespace adwise
