#include "src/partition/partition_state.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace adwise {

PartitionState::PartitionState(std::uint32_t k, VertexId num_vertices)
    : k_(k),
      replicas_(num_vertices),
      degree_(num_vertices, 0),
      part_edges_(k, 0),
      part_edges_f64_(k, 0.0),
      num_at_min_(k) {
  assert(k > 0);
}

bool PartitionState::enable_dense_rows() {
  if (k_ > DenseReplicaRows::kMaxK) {
    disable_dense_rows();
    return false;
  }
  dense_rows_ = DenseReplicaRows(k_, replicas_.size());
  dense_rows_.rebuild_from(replicas_);
  dense_rows_enabled_ = true;
  return true;
}

void PartitionState::disable_dense_rows() {
  dense_rows_ = DenseReplicaRows();
  dense_rows_enabled_ = false;
}

void PartitionState::set_degree_oracle(std::vector<std::uint32_t> degrees) {
  assert(degrees.size() == replicas_.size());
  degree_oracle_ = std::move(degrees);
  for (const std::uint32_t d : degree_oracle_) {
    max_degree_ = std::max(max_degree_, d);
  }
}

PartitionState::AssignEffect PartitionState::assign(const Edge& e,
                                                    PartitionId p) {
  assert(p < k_);
  assert(e.u < replicas_.size() && e.v < replicas_.size());

  AssignEffect effect;
  effect.new_replica_u = replicas_[e.u].insert(p);
  if (effect.new_replica_u) {
    ++total_replicas_;
    if (replicas_[e.u].size() == 1) ++replicated_vertices_;
    if (dense_rows_enabled_) dense_rows_.insert(e.u, p);
  }
  // Self-loops touch a single vertex; guard the double insert.
  if (e.v != e.u) {
    effect.new_replica_v = replicas_[e.v].insert(p);
    if (effect.new_replica_v) {
      ++total_replicas_;
      if (replicas_[e.v].size() == 1) ++replicated_vertices_;
      if (dense_rows_enabled_) dense_rows_.insert(e.v, p);
    }
  }

  ++degree_[e.u];
  if (e.v != e.u) ++degree_[e.v];
  max_degree_ = std::max({max_degree_, degree_[e.u], degree_[e.v]});

  const std::uint64_t old = part_edges_[p]++;
  part_edges_f64_[p] = static_cast<double>(part_edges_[p]);
  max_size_ = std::max(max_size_, part_edges_[p]);
  if (old == min_size_) {
    if (--num_at_min_ == 0) {
      // The last partition at the old minimum moved up; rescan (k is small,
      // and this happens at most once per minimum-size epoch).
      min_size_ = part_edges_[0];
      min_id_ = 0;
      for (PartitionId q = 1; q < k_; ++q) {
        if (part_edges_[q] < min_size_) {
          min_size_ = part_edges_[q];
          min_id_ = q;
        }
      }
      num_at_min_ = static_cast<std::uint32_t>(
          std::count(part_edges_.begin(), part_edges_.end(), min_size_));
    } else if (p == min_id_) {
      // Other partitions still sit at the minimum. Sizes only grow, so ids
      // below the old holder cannot have rejoined the minimum: scan forward.
      for (PartitionId q = p + 1; q < k_; ++q) {
        if (part_edges_[q] == min_size_) {
          min_id_ = q;
          break;
        }
      }
    }
  }
  ++assigned_;
  return effect;
}

double PartitionState::replication_degree() const {
  if (replicated_vertices_ == 0) return 0.0;
  return static_cast<double>(total_replicas_) /
         static_cast<double>(replicated_vertices_);
}

double PartitionState::imbalance() const {
  if (max_size_ == 0) return 0.0;
  return static_cast<double>(max_size_ - min_size_) /
         static_cast<double>(max_size_);
}

bool PartitionState::balanced(double tau) const {
  if (max_size_ == 0) return true;
  return static_cast<double>(min_size_) / static_cast<double>(max_size_) > tau;
}

void PartitionState::save(ByteWriter& out) const {
  out.u32(k_);
  out.u64(replicas_.size());
  // Gather the replica lists into one u32 scratch array ((count, ids...)
  // per vertex — the same byte layout as per-element writes) so the hot
  // checkpoint path costs a few bulk copies instead of ~|V| + Σ|R_v|
  // branchy per-integer appends. This runs every checkpoint interval; the
  // bench guardrail holds checkpointing to >= 0.9x drain throughput.
  std::vector<std::uint32_t> scratch;
  scratch.reserve(replicas_.size() +
                  static_cast<std::size_t>(total_replicas_));
  for (const ReplicaSet& r : replicas_) {
    scratch.push_back(r.size());
    r.for_each([&scratch](std::uint32_t id) { scratch.push_back(id); });
  }
  out.reserve((scratch.size() + degree_.size() + degree_oracle_.size()) *
                  sizeof(std::uint32_t) +
              (part_edges_.size() + 8) * sizeof(std::uint64_t));
  out.u32_span(scratch.data(), scratch.size());
  out.u32_span(degree_.data(), degree_.size());
  out.u64(degree_oracle_.size());
  out.u32_span(degree_oracle_.data(), degree_oracle_.size());
  out.u64_span(part_edges_.data(), part_edges_.size());
  out.u64(max_size_);
  out.u64(min_size_);
  out.u32(num_at_min_);
  out.u32(min_id_);
  out.u32(max_degree_);
  out.u64(assigned_);
  out.u64(total_replicas_);
  out.u64(replicated_vertices_);
}

void PartitionState::load(ByteReader& in) {
  const std::uint32_t k = in.u32();
  const std::uint64_t num_vertices = in.u64();
  if (k != k_ || num_vertices != replicas_.size()) {
    throw std::runtime_error(
        "checkpointed PartitionState shape mismatch: checkpoint has k=" +
        std::to_string(k) + ", |V|=" + std::to_string(num_vertices) +
        "; this run has k=" + std::to_string(k_) +
        ", |V|=" + std::to_string(replicas_.size()));
  }
  for (ReplicaSet& r : replicas_) {
    r.clear();
    const std::uint32_t count = in.u32();
    for (std::uint32_t i = 0; i < count; ++i) r.insert(in.u32());
  }
  in.u32_span(degree_.data(), degree_.size());
  const std::uint64_t oracle_size = in.u64();
  if (oracle_size != 0 && oracle_size != num_vertices) {
    throw std::runtime_error(
        "checkpointed PartitionState has a degree oracle of " +
        std::to_string(oracle_size) + " entries, expected 0 or " +
        std::to_string(num_vertices));
  }
  degree_oracle_.resize(static_cast<std::size_t>(oracle_size));
  in.u32_span(degree_oracle_.data(), degree_oracle_.size());
  in.u64_span(part_edges_.data(), part_edges_.size());
  for (std::size_t p = 0; p < part_edges_.size(); ++p) {
    part_edges_f64_[p] = static_cast<double>(part_edges_[p]);
  }
  if (dense_rows_enabled_) dense_rows_.rebuild_from(replicas_);
  max_size_ = in.u64();
  min_size_ = in.u64();
  num_at_min_ = in.u32();
  min_id_ = in.u32();
  max_degree_ = in.u32();
  assigned_ = in.u64();
  total_replicas_ = in.u64();
  replicated_vertices_ = in.u64();
}

}  // namespace adwise
