#include "src/partition/partition_state.h"

#include <algorithm>

namespace adwise {

PartitionState::PartitionState(std::uint32_t k, VertexId num_vertices)
    : k_(k),
      replicas_(num_vertices),
      degree_(num_vertices, 0),
      part_edges_(k, 0),
      num_at_min_(k) {
  assert(k > 0);
}

void PartitionState::set_degree_oracle(std::vector<std::uint32_t> degrees) {
  assert(degrees.size() == replicas_.size());
  degree_oracle_ = std::move(degrees);
  for (const std::uint32_t d : degree_oracle_) {
    max_degree_ = std::max(max_degree_, d);
  }
}

PartitionState::AssignEffect PartitionState::assign(const Edge& e,
                                                    PartitionId p) {
  assert(p < k_);
  assert(e.u < replicas_.size() && e.v < replicas_.size());

  AssignEffect effect;
  effect.new_replica_u = replicas_[e.u].insert(p);
  if (effect.new_replica_u) {
    ++total_replicas_;
    if (replicas_[e.u].size() == 1) ++replicated_vertices_;
  }
  // Self-loops touch a single vertex; guard the double insert.
  if (e.v != e.u) {
    effect.new_replica_v = replicas_[e.v].insert(p);
    if (effect.new_replica_v) {
      ++total_replicas_;
      if (replicas_[e.v].size() == 1) ++replicated_vertices_;
    }
  }

  ++degree_[e.u];
  if (e.v != e.u) ++degree_[e.v];
  max_degree_ = std::max({max_degree_, degree_[e.u], degree_[e.v]});

  const std::uint64_t old = part_edges_[p]++;
  max_size_ = std::max(max_size_, part_edges_[p]);
  if (old == min_size_) {
    if (--num_at_min_ == 0) {
      // The last partition at the old minimum moved up; rescan (k is small,
      // and this happens at most once per minimum-size epoch).
      min_size_ = part_edges_[0];
      min_id_ = 0;
      for (PartitionId q = 1; q < k_; ++q) {
        if (part_edges_[q] < min_size_) {
          min_size_ = part_edges_[q];
          min_id_ = q;
        }
      }
      num_at_min_ = static_cast<std::uint32_t>(
          std::count(part_edges_.begin(), part_edges_.end(), min_size_));
    } else if (p == min_id_) {
      // Other partitions still sit at the minimum. Sizes only grow, so ids
      // below the old holder cannot have rejoined the minimum: scan forward.
      for (PartitionId q = p + 1; q < k_; ++q) {
        if (part_edges_[q] == min_size_) {
          min_id_ = q;
          break;
        }
      }
    }
  }
  ++assigned_;
  return effect;
}

double PartitionState::replication_degree() const {
  if (replicated_vertices_ == 0) return 0.0;
  return static_cast<double>(total_replicas_) /
         static_cast<double>(replicated_vertices_);
}

double PartitionState::imbalance() const {
  if (max_size_ == 0) return 0.0;
  return static_cast<double>(max_size_ - min_size_) /
         static_cast<double>(max_size_);
}

bool PartitionState::balanced(double tau) const {
  if (max_size_ == 0) return true;
  return static_cast<double>(min_size_) / static_cast<double>(max_size_) > tau;
}

}  // namespace adwise
