// Iterative vertex-cut refinement (the super-linear family of Fig. 1).
//
// Stand-in for the iterative algorithms the paper's landscape cites —
// Ja-Be-Ja-VC (Rahmanian et al.) and H-move (Mayer et al.): starting from
// any edge partitioning, repeatedly move single edges to the partition that
// reduces the total replica count, subject to the Eq. 2 balance constraint.
// Hill climbing over the full edge set is super-linear and needs the whole
// assignment in memory — exactly the regime streaming partitioning avoids —
// which makes it the natural upper-quality/high-latency reference point.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/partition/partition_state.h"
#include "src/partition/types.h"

namespace adwise {

struct RefineOptions {
  std::uint32_t max_rounds = 5;
  // Stop early when a round moves fewer than this fraction of edges.
  double min_move_fraction = 0.001;
  // Balance constraint: no partition may exceed ceil(m/k) * (1 + slack).
  double balance_slack = 0.05;
  std::uint64_t seed = 1;
};

struct RefineResult {
  std::vector<Assignment> assignments;
  PartitionState state;  // clean replay of the refined assignments
  std::uint64_t moves = 0;
  std::uint32_t rounds = 0;

  RefineResult(std::uint32_t k, VertexId n) : state(k, n) {}
};

[[nodiscard]] RefineResult refine_partition(
    std::span<const Assignment> assignments, std::uint32_t k,
    VertexId num_vertices, const RefineOptions& options = {});

}  // namespace adwise
