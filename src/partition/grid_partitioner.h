// Grid-constrained hashing (GraphBuilder, Jain et al. 2013).
//
// Partitions are arranged in an r x c grid. Each vertex hashes to a cell;
// its constraint set S(u) is the union of that cell's row and column. An
// edge may only be placed in S(u) ∩ S(v), which is never empty because u's
// row always meets v's column. Among the legal cells the least-loaded
// partition is chosen. This bounds every vertex's replicas to r + c - 1.
#pragma once

#include <vector>

#include "src/common/hashing.h"
#include "src/partition/partitioner.h"

namespace adwise {

class GridPartitioner final : public SingleEdgePartitioner {
 public:
  // k: total number of partitions; factorized into the most square r x c
  // grid with r*c == k (r == 1 degenerates to unconstrained least-loaded).
  explicit GridPartitioner(std::uint32_t k, std::uint64_t seed = 0);

  [[nodiscard]] std::string_view name() const override { return "grid"; }

  [[nodiscard]] PartitionId place(const Edge& e,
                                  const PartitionState& state) override;

  [[nodiscard]] std::uint32_t rows() const { return rows_; }
  [[nodiscard]] std::uint32_t cols() const { return cols_; }

 private:
  [[nodiscard]] PartitionId cell_of(VertexId v) const {
    return static_cast<PartitionId>(hash_u64(v, seed_) % (rows_ * cols_));
  }

  std::uint32_t rows_;
  std::uint32_t cols_;
  std::uint64_t seed_;
};

}  // namespace adwise
