#include "src/partition/twops_partitioner.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "src/partition/restream.h"
#include "src/partition/vertex2edgepart.h"

namespace adwise {
namespace {

// Union-find with path halving. Roots are stable cluster ids; union is by
// volume with ties to the smaller root so the clustering is deterministic.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), VertexId{0});
  }

  VertexId find(VertexId v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  // Returns the surviving root.
  VertexId merge_into(VertexId winner, VertexId loser) {
    parent_[loser] = winner;
    return winner;
  }

 private:
  std::vector<VertexId> parent_;
};

// Phase-2 placer: every vertex already carries its cluster's partition;
// edges land via the shared lifting rule, under a hard balance guard — the
// 2PS family's second phase is explicitly balance-constrained, and without
// the guard a partition holding several hub clusters absorbs every edge
// between them. A cluster placement that would push the target past
// ν × the even share (ν = 1.1) falls back to the least-loaded partition.
class ClusterPlacer final : public SingleEdgePartitioner {
 public:
  // cap_edges = ν·|E|/k (ν = 1.1): the FINAL even share — known because the
  // edge sequence is buffered — not the running one, which would reject
  // perfectly good cluster placements all through the early stream.
  ClusterPlacer(const std::vector<PartitionId>* vertex_part,
                std::uint64_t cap_edges)
      : vertex_part_(vertex_part), cap_edges_(cap_edges) {}

  [[nodiscard]] std::string_view name() const override {
    return "2ps-placer";
  }

  [[nodiscard]] PartitionId place(const Edge& e,
                                  const PartitionState& state) override {
    const PartitionId p = lift_edge_to_partition(
        (*vertex_part_)[e.u], (*vertex_part_)[e.v], state);
    if (state.edges_on(p) >= cap_edges_) return state.least_loaded();
    return p;
  }

 private:
  const std::vector<PartitionId>* vertex_part_;
  std::uint64_t cap_edges_;
};

}  // namespace

void TwoPsPartitioner::partition(EdgeStream& stream, PartitionState& state,
                                 const AssignmentSink& sink) {
  const VertexId n = state.num_vertices();
  const std::uint32_t k = state.k();

  std::vector<Edge> edges;
  edges.reserve(stream.size_hint());
  Edge e;
  while (stream.next(e)) edges.push_back(e);

  // Phase 1: volume-capped union-find clustering. Volumes use EXACT
  // degrees (known because the sequence is buffered), so a cluster's
  // volume is fixed at init and only changes by merging — every cluster
  // stays under cap forever (except degree-> cap hub singletons), which is
  // what keeps the phase-1.5 mapping balanceable. An incremental
  // partial-degree variant lets early clusters keep absorbing volume long
  // after they stop merging, and one runaway cluster wrecks the layout.
  const std::uint64_t cap = std::max<std::uint64_t>(
      1, 2 * static_cast<std::uint64_t>(edges.size()) / k);
  UnionFind uf(n);
  std::vector<std::uint64_t> volume(n, 0);  // indexed by current root
  for (const Edge& edge : edges) {
    ++volume[edge.u];
    ++volume[edge.v];
  }
  for (const Edge& edge : edges) {
    VertexId ru = uf.find(edge.u);
    VertexId rv = uf.find(edge.v);
    if (ru == rv) continue;
    if (volume[ru] + volume[rv] > cap) continue;
    // Union by volume, ties to the smaller root id.
    if (volume[rv] > volume[ru] || (volume[rv] == volume[ru] && rv < ru)) {
      std::swap(ru, rv);
    }
    volume[ru] += volume[rv];
    uf.merge_into(ru, rv);
  }

  // Cluster -> partition: largest volume first onto the least-volume
  // partition (smallest id on ties). Zero-volume singletons (isolated or
  // absent vertices) follow the same rule, so every root gets a partition.
  std::vector<VertexId> roots;
  roots.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    if (uf.find(v) == v) roots.push_back(v);
  }
  std::sort(roots.begin(), roots.end(), [&](VertexId a, VertexId b) {
    if (volume[a] != volume[b]) return volume[a] > volume[b];
    return a < b;
  });
  std::vector<std::uint64_t> part_volume(k, 0);
  std::vector<PartitionId> root_part(n, 0);
  for (const VertexId r : roots) {
    PartitionId least = 0;
    for (PartitionId p = 1; p < k; ++p) {
      if (part_volume[p] < part_volume[least]) least = p;
    }
    root_part[r] = least;
    part_volume[least] += volume[r];
  }
  std::vector<PartitionId> vertex_part(n);
  for (VertexId v = 0; v < n; ++v) vertex_part[v] = root_part[uf.find(v)];

  // Phase 2: one placement pass through restream_partition; the final sink
  // routes every assignment into the caller's state.
  const auto cap_edges = static_cast<std::uint64_t>(
      1.1 * static_cast<double>(edges.size()) / static_cast<double>(k)) + 1;
  VectorEdgeStream replay(edges);
  const RestreamResult result = restream_partition(
      replay, n, k,
      [&vertex_part, cap_edges]() -> std::unique_ptr<EdgePartitioner> {
        return std::make_unique<ClusterPlacer>(&vertex_part, cap_edges);
      },
      /*passes=*/1,
      [&state, &sink](const Edge& edge, PartitionId p) {
        state.assign(edge, p);
        if (sink) sink(edge, p);
      });
  (void)result;
}

}  // namespace adwise
