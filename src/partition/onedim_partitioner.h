// 1D partitioning (GraphX's EdgePartition1D).
//
// Assigns every edge by hashing its source vertex only: all out-edges of a
// vertex land together, so the source side never replicates while the
// destination side replicates freely. Completes the hashing-family baselines
// (hash / 1D / grid a.k.a. 2D) from the paper's related work (§V).
#pragma once

#include "src/common/hashing.h"
#include "src/partition/partitioner.h"

namespace adwise {

class OneDimPartitioner final : public SingleEdgePartitioner {
 public:
  explicit OneDimPartitioner(std::uint64_t seed = 0) : seed_(seed) {}

  [[nodiscard]] std::string_view name() const override { return "1d"; }

  [[nodiscard]] PartitionId place(const Edge& e,
                                  const PartitionState& state) override {
    return static_cast<PartitionId>(hash_u64(e.u, seed_) % state.k());
  }

 private:
  std::uint64_t seed_;
};

}  // namespace adwise
