// HDRF — High-Degree (are) Replicated First (Petroni et al., CIKM 2015).
//
// The strongest single-edge streaming baseline in the paper's evaluation.
// Scores every partition as
//   C(u,v,p) = C_rep(u,v,p) + lambda * C_bal(p)
//   C_rep    = g(u,p) + g(v,p),  g(u,p) = 1{p in R_u} * (1 + (1 - theta_u))
//   theta_u  = deg(u) / (deg(u) + deg(v))       (partial degrees incl. e)
//   C_bal    = (maxsize - |p|) / (eps + maxsize - minsize)
// and assigns e to the argmax. lambda defaults to 1.1 (the authors'
// recommendation, used by the paper's experiments).
#pragma once

#include "src/partition/partitioner.h"

namespace adwise {

class HdrfPartitioner final : public SingleEdgePartitioner {
 public:
  explicit HdrfPartitioner(double lambda = 1.1, double epsilon = 1e-9)
      : lambda_(lambda), epsilon_(epsilon) {}

  [[nodiscard]] std::string_view name() const override { return "hdrf"; }

  [[nodiscard]] PartitionId place(const Edge& e,
                                  const PartitionState& state) override;

  [[nodiscard]] double lambda() const { return lambda_; }

 private:
  double lambda_;
  double epsilon_;
};

}  // namespace adwise
