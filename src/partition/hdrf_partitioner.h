// HDRF — High-Degree (are) Replicated First (Petroni et al., CIKM 2015).
//
// The strongest single-edge streaming baseline in the paper's evaluation.
// Scores every partition as
//   C(u,v,p) = C_rep(u,v,p) + lambda * C_bal(p)
//   C_rep    = g(u,p) + g(v,p),  g(u,p) = 1{p in R_u} * (1 + (1 - theta_u))
//   theta_u  = deg(u) / (deg(u) + deg(v))       (partial degrees incl. e)
//   C_bal    = (maxsize - |p|) / (eps + maxsize - minsize)
// and assigns e to the argmax. lambda defaults to 1.1 (the authors'
// recommendation, used by the paper's experiments).
//
// Sparse placement (default): C_rep is zero outside R_u ∪ R_v, so for every
// other partition the score is exactly lambda * C_bal(p) — maximized (with
// the lower-load, lower-id tie-break) by PartitionState's O(1)
// least_loaded(). The argmax is therefore confined to
// R_u ∪ R_v ∪ {least_loaded}, turning the O(k) scan into O(|R_u| + |R_v|).
// The dense reference scan stays selectable for decision-identity tests.
#pragma once

#include "src/partition/partitioner.h"

namespace adwise {

class HdrfPartitioner final : public SingleEdgePartitioner {
 public:
  explicit HdrfPartitioner(double lambda = 1.1, double epsilon = 1e-9,
                           bool sparse = true)
      : lambda_(lambda), epsilon_(epsilon), sparse_(sparse) {}

  [[nodiscard]] std::string_view name() const override { return "hdrf"; }

  [[nodiscard]] PartitionId place(const Edge& e,
                                  const PartitionState& state) override;

  [[nodiscard]] double lambda() const { return lambda_; }
  [[nodiscard]] bool sparse() const { return sparse_; }

 private:
  double lambda_;
  double epsilon_;
  bool sparse_;
};

}  // namespace adwise
