#include "src/partition/checkpoint_run.h"

#include <memory>
#include <stdexcept>
#include <utility>

#include "src/common/bytes.h"

namespace adwise {

DurableCheckpointWriter::DurableCheckpointWriter(
    std::string path, std::function<void(std::uint64_t)> on_commit)
    : path_(std::move(path)),
      on_commit_(std::move(on_commit)),
      thread_([this] { worker_loop(); }) {}

DurableCheckpointWriter::~DurableCheckpointWriter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void DurableCheckpointWriter::write(Checkpoint ckpt) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return (!has_job_ && !writing_) || error_; });
  if (error_) std::rethrow_exception(std::exchange(error_, nullptr));
  job_ = std::move(ckpt);
  has_job_ = true;
  lock.unlock();
  cv_.notify_all();
}

void DurableCheckpointWriter::flush() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return (!has_job_ && !writing_) || error_; });
  if (error_) std::rethrow_exception(std::exchange(error_, nullptr));
}

std::uint64_t DurableCheckpointWriter::committed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_;
}

void DurableCheckpointWriter::worker_loop() {
  for (;;) {
    Checkpoint ckpt;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return has_job_ || stop_; });
      if (!has_job_) return;  // stop requested, nothing queued
      ckpt = std::move(job_);
      has_job_ = false;
      writing_ = true;
    }
    cv_.notify_all();  // the handoff slot is free again
    std::uint64_t ordinal = 0;
    std::exception_ptr error;
    try {
      write_checkpoint_file(path_, ckpt);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      writing_ = false;
      if (error) {
        error_ = error;
      } else {
        ordinal = ++committed_;
      }
    }
    cv_.notify_all();
    if (!error && on_commit_) on_commit_(ordinal);
  }
}

void validate_checkpoint(const CheckpointMeta& meta,
                         std::string_view algorithm, std::uint32_t k,
                         std::uint64_t num_vertices) {
  std::string problems;
  if (meta.algorithm != algorithm) {
    problems += " algorithm=" + meta.algorithm + " (this run: " +
                std::string(algorithm) + ")";
  }
  if (meta.k != k) {
    problems += " k=" + std::to_string(meta.k) +
                " (this run: " + std::to_string(k) + ")";
  }
  if (meta.num_vertices != num_vertices) {
    problems += " |V|=" + std::to_string(meta.num_vertices) +
                " (this run: " + std::to_string(num_vertices) + ")";
  }
  if (!problems.empty()) {
    throw std::runtime_error("checkpoint does not match this run:" + problems);
  }
}

void skip_edges(EdgeStream& stream, std::uint64_t n) {
  Edge e;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!stream.next(e)) {
      throw std::runtime_error(
          "stream ended after " + std::to_string(i) + " of " +
          std::to_string(n) +
          " edges to skip — the checkpoint does not belong to this input");
    }
  }
}

std::uint64_t run_with_checkpoints(EdgePartitioner& partitioner,
                                   EdgeStream& stream, PartitionState& state,
                                   const AssignmentSink& sink,
                                   const CheckpointRunOptions& opts,
                                   const Checkpoint* resume) {
  if (opts.every == 0) {
    throw std::runtime_error("checkpoint interval must be > 0");
  }

  std::uint64_t total_edges = stream.size_hint();
  if (resume != nullptr) {
    total_edges = resume->meta.total_edges;
    ByteReader in(resume->partition_state);
    state.load(in);
    in.expect_end();
    if (!partitioner.restore_algorithm_state(resume->algorithm_state)) {
      throw std::runtime_error(
          "checkpointed algorithm state was rejected by " +
          std::string(partitioner.name()) +
          " — wrong algorithm, configuration or blob layout");
    }
    skip_edges(stream, resume->meta.edges_consumed);
  }

  std::uint64_t written = 0;
  // With async I/O the writer thread owns CRC/write/fsync/rename; the
  // partitioning thread only snapshots state and hands the blob off. The
  // writer lives in this frame, which outlives the partition() call.
  std::unique_ptr<DurableCheckpointWriter> writer;
  if (opts.async_io) {
    writer = std::make_unique<DurableCheckpointWriter>(opts.checkpoint_path,
                                                       opts.on_checkpoint);
  }
  CheckpointHook hook;
  hook.every = opts.every;
  // Small parts captured by value so the hook owns them; state, the writer
  // and the written counter stay references into this frame, which outlives
  // the partition() call below (the hook is disarmed before returning).
  hook.emit = [&state, &written, total_edges, async = writer.get(),
               algorithm = std::string(partitioner.name()),
               path = opts.checkpoint_path, durable = opts.durable_sink_bytes,
               notify = opts.on_checkpoint](
                  std::uint64_t assignments, std::uint64_t edges_consumed,
                  std::span<const std::byte> algo_state) {
    Checkpoint ckpt;
    ckpt.meta.algorithm = algorithm;
    ckpt.meta.k = state.k();
    ckpt.meta.num_vertices = state.num_vertices();
    ckpt.meta.total_edges = total_edges;
    ckpt.meta.edges_consumed = edges_consumed;
    ckpt.meta.assignments = assignments;
    // The sink output must be durable BEFORE the checkpoint that accounts
    // for it exists — otherwise a crash between the two could leave a
    // checkpoint claiming bytes the filesystem never persisted. (This
    // holds in async mode too: the rename happens strictly after this
    // call returns.)
    ckpt.meta.sink_bytes = durable ? durable() : 0;
    ByteWriter w;
    state.save(w);
    ckpt.partition_state = w.take();
    ckpt.algorithm_state.assign(algo_state.begin(), algo_state.end());
    if (async != nullptr) {
      async->write(std::move(ckpt));
    } else {
      write_checkpoint_file(path, ckpt);
      ++written;
      if (notify) notify(written);
    }
  };

  if (!partitioner.enable_checkpoints(std::move(hook))) {
    throw std::runtime_error(
        std::string(partitioner.name()) +
        " does not support checkpointing under this configuration");
  }

  partitioner.partition(stream, state, sink);
  if (writer) {
    writer->flush();  // surface writer-side errors before reporting success
    written = writer->committed();
  }
  // Disarm: the emit closure references this frame.
  partitioner.enable_checkpoints(CheckpointHook{});
  return written;
}

}  // namespace adwise
