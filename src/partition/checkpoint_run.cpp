#include "src/partition/checkpoint_run.h"

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <utility>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/obs/metric_names.h"
#include "src/obs/obs_sink.h"

namespace adwise {

namespace {

// Temp suffix for in-band commits on the partitioning thread. Distinct
// from AtomicFileWriter's default ".tmp" so a stalled-then-waking writer
// thread and an in-band commit can never write the same temp file; the
// worst interleaving is a well-formed older checkpoint renamed over a
// newer one — a stale but valid recovery point, never a torn file.
constexpr char kInbandTmpSuffix[] = ".inband.tmp";

}  // namespace

DurableCheckpointWriter::DurableCheckpointWriter(
    std::string path, std::function<void(std::uint64_t)> on_commit,
    obs::ObsSink* obs, Watchdog* watchdog, AtomicFileWriter::Options io)
    : path_(std::move(path)),
      on_commit_(std::move(on_commit)),
      io_(std::move(io)) {
  if (obs::MetricsRegistry* reg = obs::metrics_of(obs)) {
    m_commits_ = &reg->counter(obs::names::kCkptCommits);
    m_commit_ns_ = &reg->histogram(obs::names::kCkptCommitNs);
    m_queue_stalls_ = &reg->counter(obs::names::kCkptQueueStalls);
    m_queue_stall_ns_ = &reg->counter(obs::names::kCkptQueueStallNs);
    m_watchdog_stalls_ = &reg->counter(obs::names::kWatchdogStalls);
  }
  trace_ = obs::trace_of(obs);
  if (watchdog != nullptr) {
    wd_ = &watchdog->watch("ckpt-writer", [this] {
      // Runs on the watchdog thread: mark the writer unusable and wake
      // any producer blocked behind the wedged commit.
      stalled_.store(true, std::memory_order_release);
      if (m_watchdog_stalls_ != nullptr) m_watchdog_stalls_->add();
      cv_.notify_all();
    });
  }
  // Start the worker only after the handles exist — worker_loop reads them.
  thread_ = std::thread([this] { worker_loop(); });
}

DurableCheckpointWriter::~DurableCheckpointWriter() {
  if (wd_ != nullptr) wd_->detach();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

bool DurableCheckpointWriter::write(Checkpoint ckpt) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto free_slot = [this] {
    return (!has_job_ && !writing_) || error_ ||
           stalled_.load(std::memory_order_acquire);
  };
  if (!free_slot() && m_queue_stall_ns_ != nullptr) {
    // The partitioning thread is about to block behind a busy writer — the
    // "checkpoint interval shorter than commit latency" signal.
    const std::int64_t stall_start_ns = monotonic_now_ns();
    cv_.wait(lock, free_slot);
    m_queue_stall_ns_->add(
        static_cast<std::uint64_t>(monotonic_now_ns() - stall_start_ns));
    m_queue_stalls_->add();
  } else {
    cv_.wait(lock, free_slot);
  }
  if (error_) std::rethrow_exception(std::exchange(error_, nullptr));
  if (stalled_.load(std::memory_order_acquire)) return false;
  job_ = std::move(ckpt);
  has_job_ = true;
  if (wd_ != nullptr) wd_->arm();
  lock.unlock();
  cv_.notify_all();
  return true;
}

void DurableCheckpointWriter::flush() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    return (!has_job_ && !writing_) || error_ ||
           stalled_.load(std::memory_order_acquire);
  });
  if (error_) std::rethrow_exception(std::exchange(error_, nullptr));
  if (stalled_.load(std::memory_order_acquire) && (has_job_ || writing_)) {
    // The last handoff is wedged inside the writer thread: its durability
    // is unknown and must not be reported as success.
    throw std::runtime_error(
        "checkpoint writer stalled with a snapshot still in flight — the "
        "final checkpoint for " + path_ + " may not be durable");
  }
}

std::uint64_t DurableCheckpointWriter::committed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_;
}

void DurableCheckpointWriter::worker_loop() {
  for (;;) {
    Checkpoint ckpt;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return has_job_ || stop_; });
      if (!has_job_) return;  // stop requested, nothing queued
      ckpt = std::move(job_);
      has_job_ = false;
      writing_ = true;
    }
    if (wd_ != nullptr) wd_->beat();
    cv_.notify_all();  // the handoff slot is free again
    std::uint64_t ordinal = 0;
    std::exception_ptr error;
    try {
      if (trace_ != nullptr) trace_->name_current_thread("ckpt-writer");
      obs::TraceSpan span(trace_, obs::names::kSpanCheckpointWrite);
      const std::int64_t commit_start_ns =
          m_commit_ns_ != nullptr ? monotonic_now_ns() : 0;
      write_checkpoint_file(path_, ckpt, io_);
      if (m_commit_ns_ != nullptr) {
        m_commit_ns_->record(
            static_cast<std::uint64_t>(monotonic_now_ns() - commit_start_ns));
        m_commits_->add();
      }
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      writing_ = false;
      if (error) {
        error_ = error;
      } else {
        ordinal = ++committed_;
      }
      if (wd_ != nullptr) {
        if (has_job_) {
          wd_->beat();  // another snapshot is already queued: stay armed
        } else {
          wd_->disarm();
        }
      }
    }
    cv_.notify_all();
    if (!error && on_commit_) on_commit_(ordinal);
  }
}

void validate_checkpoint(const CheckpointMeta& meta,
                         std::string_view algorithm, std::uint32_t k,
                         std::uint64_t num_vertices) {
  std::string problems;
  if (meta.algorithm != algorithm) {
    problems += " algorithm=" + meta.algorithm + " (this run: " +
                std::string(algorithm) + ")";
  }
  if (meta.k != k) {
    problems += " k=" + std::to_string(meta.k) +
                " (this run: " + std::to_string(k) + ")";
  }
  if (meta.num_vertices != num_vertices) {
    problems += " |V|=" + std::to_string(meta.num_vertices) +
                " (this run: " + std::to_string(num_vertices) + ")";
  }
  if (!problems.empty()) {
    throw std::runtime_error("checkpoint does not match this run:" + problems);
  }
}

void skip_edges(EdgeStream& stream, std::uint64_t n) {
  Edge e;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!stream.next(e)) {
      throw std::runtime_error(
          "stream ended after " + std::to_string(i) + " of " +
          std::to_string(n) +
          " edges to skip — the checkpoint does not belong to this input");
    }
  }
}

std::uint64_t run_with_checkpoints(EdgePartitioner& partitioner,
                                   EdgeStream& stream, PartitionState& state,
                                   const AssignmentSink& sink,
                                   const CheckpointRunOptions& opts,
                                   const Checkpoint* resume) {
  if (opts.every == 0) {
    throw std::runtime_error("checkpoint interval must be > 0");
  }

  std::uint64_t total_edges = stream.size_hint();
  if (resume != nullptr) {
    total_edges = resume->meta.total_edges;
    ByteReader in(resume->partition_state);
    state.load(in);
    in.expect_end();
    if (!partitioner.restore_algorithm_state(resume->algorithm_state)) {
      throw std::runtime_error(
          "checkpointed algorithm state was rejected by " +
          std::string(partitioner.name()) +
          " — wrong algorithm, configuration or blob layout");
    }
    skip_edges(stream, resume->meta.edges_consumed);
  }

  // Checkpoints committed synchronously (sync mode) or in-band after a
  // writer stall (async mode); the async writer counts its own commits.
  std::uint64_t written = 0;
  // With async I/O the writer thread owns CRC/write/fsync/rename; the
  // partitioning thread only snapshots state and hands the blob off. The
  // writer lives in this frame, which outlives the partition() call.
  std::unique_ptr<DurableCheckpointWriter> writer;
  if (opts.async_io) {
    AtomicFileWriter::Options io = opts.ckpt_io;
    io.tmp_suffix = ".tmp";
    writer = std::make_unique<DurableCheckpointWriter>(
        opts.checkpoint_path, opts.on_checkpoint, opts.obs, opts.watchdog,
        std::move(io));
  }
  // Snapshot-side handles (partitioning thread); the writer resolves its
  // commit-side handles itself. Sync-path and in-band commits are
  // recorded here too.
  obs::Counter* m_snapshots = nullptr;
  obs::Histogram* m_snapshot_ns = nullptr;
  obs::Counter* m_commits = nullptr;
  obs::Histogram* m_commit_ns = nullptr;
  obs::Counter* m_write_failures = nullptr;
  obs::Counter* m_skipped = nullptr;
  obs::Counter* m_inband = nullptr;
  if (obs::MetricsRegistry* reg = obs::metrics_of(opts.obs)) {
    m_snapshots = &reg->counter(obs::names::kCkptSnapshots);
    m_snapshot_ns = &reg->histogram(obs::names::kCkptSnapshotNs);
    m_write_failures = &reg->counter(obs::names::kCkptWriteFailures);
    m_skipped = &reg->counter(obs::names::kCkptSkipped);
    if (!opts.async_io) {
      m_commits = &reg->counter(obs::names::kCkptCommits);
      m_commit_ns = &reg->histogram(obs::names::kCkptCommitNs);
    } else {
      m_inband = &reg->counter(obs::names::kCkptInbandCommits);
    }
  }
  obs::TraceSession* const trace = obs::trace_of(opts.obs);

  // A checkpoint write failure at one boundary, handled per opts.strict.
  // Degraded mode deliberately keeps the run alive: the recovery point
  // ages but hours of streaming work survive transient disk pressure.
  const auto on_ckpt_failure = [strict = opts.strict, m_write_failures,
                                m_skipped](std::exception_ptr err,
                                           const char* what) {
    if (m_write_failures != nullptr) m_write_failures->add();
    if (m_skipped != nullptr) m_skipped->add();
    if (strict) std::rethrow_exception(err);
    std::fprintf(stderr,
                 "warning: durable checkpoint failed (%s) — continuing "
                 "without a fresh recovery point\n",
                 what);
  };

  CheckpointHook hook;
  hook.every = opts.every;
  // Small parts captured by value so the hook owns them; state, the writer
  // and the written counter stay references into this frame, which outlives
  // the partition() call below (the hook is disarmed before returning).
  hook.emit = [&state, &written, total_edges, async = writer.get(),
               algorithm = std::string(partitioner.name()),
               path = opts.checkpoint_path, durable = opts.durable_sink_bytes,
               notify = opts.on_checkpoint, ckpt_io = opts.ckpt_io,
               on_ckpt_failure, m_snapshots, m_snapshot_ns, m_commits,
               m_commit_ns, m_inband, trace](
                  std::uint64_t assignments, std::uint64_t edges_consumed,
                  std::span<const std::byte> algo_state) {
    Checkpoint ckpt;
    ckpt.meta.algorithm = algorithm;
    ckpt.meta.k = state.k();
    ckpt.meta.num_vertices = state.num_vertices();
    ckpt.meta.total_edges = total_edges;
    ckpt.meta.edges_consumed = edges_consumed;
    ckpt.meta.assignments = assignments;
    // The sink output must be durable BEFORE the checkpoint that accounts
    // for it exists — otherwise a crash between the two could leave a
    // checkpoint claiming bytes the filesystem never persisted. (This
    // holds in async mode too: the rename happens strictly after this
    // call returns.) Sink durability failures propagate unconditionally:
    // an unaccountable sink voids every future recovery point.
    ckpt.meta.sink_bytes = durable ? durable() : 0;
    const std::int64_t snap_start_ns =
        m_snapshot_ns != nullptr ? monotonic_now_ns() : 0;
    ByteWriter w;
    state.save(w);
    ckpt.partition_state = w.take();
    ckpt.algorithm_state.assign(algo_state.begin(), algo_state.end());
    if (m_snapshot_ns != nullptr) {
      m_snapshot_ns->record(
          static_cast<std::uint64_t>(monotonic_now_ns() - snap_start_ns));
      m_snapshots->add();
    }
    if (async != nullptr && !async->stalled()) {
      bool queued = false;
      bool failed = false;
      try {
        queued = async->write(std::move(ckpt));
      } catch (const std::runtime_error& e) {
        failed = true;
        on_ckpt_failure(std::current_exception(), e.what());
      }
      if (!queued && !failed) {
        // The writer stalled while we were blocked on the handoff; the
        // snapshot is gone but the next boundary will commit in-band.
        on_ckpt_failure(std::make_exception_ptr(std::runtime_error(
                            "async checkpoint writer stalled mid-handoff")),
                        "async writer stalled mid-handoff");
      }
    } else if (async != nullptr) {
      // Sticky writer stall: commit synchronously on this thread with a
      // distinct temp suffix (see kInbandTmpSuffix above).
      try {
        obs::TraceSpan span(trace, obs::names::kSpanCheckpointWrite);
        AtomicFileWriter::Options io = ckpt_io;
        io.tmp_suffix = kInbandTmpSuffix;
        write_checkpoint_file(path, ckpt, io);
        if (m_inband != nullptr) m_inband->add();
        ++written;
        if (notify) notify(async->committed() + written);
      } catch (const std::runtime_error& e) {
        on_ckpt_failure(std::current_exception(), e.what());
      }
    } else {
      try {
        obs::TraceSpan span(trace, obs::names::kSpanCheckpointWrite);
        const std::int64_t commit_start_ns =
            m_commit_ns != nullptr ? monotonic_now_ns() : 0;
        write_checkpoint_file(path, ckpt, ckpt_io);
        if (m_commit_ns != nullptr) {
          m_commit_ns->record(
              static_cast<std::uint64_t>(monotonic_now_ns() -
                                         commit_start_ns));
          m_commits->add();
        }
        ++written;
        if (notify) notify(written);
      } catch (const std::runtime_error& e) {
        on_ckpt_failure(std::current_exception(), e.what());
      }
    }
  };

  if (!partitioner.enable_checkpoints(std::move(hook))) {
    throw std::runtime_error(
        std::string(partitioner.name()) +
        " does not support checkpointing under this configuration");
  }

  // The emit closure references this frame: disarm on every exit path,
  // including exceptions, or the partitioner would keep a dangling hook.
  struct DisarmGuard {
    EdgePartitioner* p;
    ~DisarmGuard() { p->enable_checkpoints(CheckpointHook{}); }
  } disarm{&partitioner};

  partitioner.partition(stream, state, sink);
  if (writer) {
    // Surface writer-side errors before reporting success. The error of
    // the FINAL handoff can only appear here — degraded mode still logs
    // and counts it, strict mode aborts loudly.
    try {
      writer->flush();
    } catch (const std::runtime_error& e) {
      on_ckpt_failure(std::current_exception(), e.what());
    }
    written += writer->committed();
  }
  return written;
}

}  // namespace adwise
