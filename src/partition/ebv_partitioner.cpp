#include "src/partition/ebv_partitioner.h"

namespace adwise {

PartitionId EbvPartitioner::place(const Edge& e, const PartitionState& state,
                                  const std::vector<std::uint64_t>&
                                      vertex_counts,
                                  std::uint64_t seen_vertices) const {
  const ReplicaSet& ru = state.replicas(e.u);
  const ReplicaSet& rv = state.replicas(e.v);
  const double k = static_cast<double>(state.k());
  const double edge_norm =
      k / static_cast<double>(state.assigned_edges() + 1);
  const double vertex_norm = k / static_cast<double>(seen_vertices + 1);

  PartitionId best = kInvalidPartition;
  double best_cost = 0.0;
  std::uint64_t best_load = 0;
  for (PartitionId p = 0; p < state.k(); ++p) {
    double cost = alpha_ * static_cast<double>(state.edges_on(p)) *
                      edge_norm +
                  beta_ * static_cast<double>(vertex_counts[p]) * vertex_norm;
    if (!ru.contains(p)) cost += 1.0;
    if (e.v != e.u && !rv.contains(p)) cost += 1.0;
    const std::uint64_t load = state.edges_on(p);
    if (best == kInvalidPartition || cost < best_cost ||
        (cost == best_cost &&
         (load < best_load || (load == best_load && p < best)))) {
      best = p;
      best_cost = cost;
      best_load = load;
    }
  }
  return best;
}

void EbvPartitioner::partition(EdgeStream& stream, PartitionState& state,
                               const AssignmentSink& sink) {
  // Rebuild the derived counts from the authoritative replica sets: a
  // fresh state yields zeros, a restream/resume state yields exactly the
  // counts the interrupted run maintained.
  std::vector<std::uint64_t> vertex_counts(state.k(), 0);
  std::uint64_t seen_vertices = 0;
  for (VertexId v = 0; v < state.num_vertices(); ++v) {
    const ReplicaSet& r = state.replicas(v);
    if (r.size() == 0) continue;
    ++seen_vertices;
    r.for_each([&](std::uint32_t p) { ++vertex_counts[p]; });
  }

  Edge e;
  while (stream.next(e)) {
    const PartitionId p = place(e, state, vertex_counts, seen_vertices);
    const PartitionState::AssignEffect effect = state.assign(e, p);
    if (effect.new_replica_u) {
      ++vertex_counts[p];
      if (state.replicas(e.u).size() == 1) ++seen_vertices;
    }
    if (effect.new_replica_v) {
      ++vertex_counts[p];
      if (state.replicas(e.v).size() == 1) ++seen_vertices;
    }
    if (sink) sink(e, p);
    if (ckpt_.every != 0 && ckpt_.emit &&
        state.assigned_edges() % ckpt_.every == 0) {
      ckpt_.emit(state.assigned_edges(), state.assigned_edges(), {});
    }
  }
}

}  // namespace adwise
