// 2PS-style two-phase streaming edge partitioning (after Mayer et al.'s
// Two-Phase Streaming family: cluster first, place second), windowless.
//
// Phase 1 — streaming clustering: a union-find over the buffered edge
// sequence merges the endpoint clusters of each edge when their combined
// volume (sum of member degrees) stays within cap = max(1, 2|E|/k), i.e.
// a perfectly even share of the total volume 2|E|. Merges are
// union-by-volume with ties to the smaller root id, so the clustering is a
// pure function of the edge sequence. Clusters are then mapped onto the k
// partitions greedily — largest volume first onto the least-volume
// partition — which seeds phase 2 with a balanced community layout.
//
// Phase 2 — placement: a single restream_partition() pass over the same
// edge sequence places each edge with lift_edge_to_partition() on the
// endpoints' cluster partitions: intra-cluster edges land on their
// cluster's partition, cross-cluster edges go to the lower-loaded side,
// and a hard balance guard (load past 1.1 × the even share falls back to
// the least-loaded partition) keeps hub-cluster pileups bounded — the 2PS
// family's second phase is balance-constrained by construction. All
// assignments reach the caller's PartitionState through the final_sink, so
// the result is indistinguishable from any other EdgePartitioner run.
//
// The edge sequence is buffered once (NE memory class — same trade as the
// lifted vertex-streaming baselines) so both phases see the identical
// sequence regardless of the stream backend; that is what keeps the
// Vector/File/Binary stream-equivalence property trivially true.
//
// Two-phase algorithms have no single-edge safe boundary, so this
// partitioner does not opt into checkpointing (enable_checkpoints stays
// false and run_with_checkpoints refuses it loudly).
#pragma once

#include "src/partition/partitioner.h"

namespace adwise {

class TwoPsPartitioner final : public EdgePartitioner {
 public:
  [[nodiscard]] std::string_view name() const override { return "2ps"; }

  void partition(EdgeStream& stream, PartitionState& state,
                 const AssignmentSink& sink = {}) override;
};

}  // namespace adwise
