// Shared partitioning vocabulary types.
#pragma once

#include <cstdint>
#include <limits>

#include "src/graph/graph.h"

namespace adwise {

using PartitionId = std::uint32_t;

inline constexpr PartitionId kInvalidPartition =
    std::numeric_limits<PartitionId>::max();

struct Assignment {
  Edge edge;
  PartitionId partition = kInvalidPartition;

  friend bool operator==(const Assignment&, const Assignment&) = default;
};

}  // namespace adwise
