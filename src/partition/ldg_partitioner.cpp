#include "src/partition/ldg_partitioner.h"

#include <algorithm>

namespace adwise {

PartitionId LdgVertexAssigner::place_vertex(VertexId /*v*/,
                                            std::span<const VertexId>
                                                neighbors,
                                            const VertexAssignView& view) {
  const double capacity = static_cast<double>(
      (static_cast<std::uint64_t>(std::max<VertexId>(view.total_vertices, 1)) +
       view.k - 1) /
      view.k);

  if (neighbor_count_.size() != view.k) neighbor_count_.assign(view.k, 0);
  touched_.clear();
  for (const VertexId n : neighbors) {
    const PartitionId p = view.vertex_part[n];
    if (p == kInvalidPartition) continue;
    if (neighbor_count_[p]++ == 0) touched_.push_back(p);
  }

  PartitionId best = kInvalidPartition;
  double best_score = 0.0;
  std::uint64_t best_vcount = 0;
  for (PartitionId p = 0; p < view.k; ++p) {
    const auto vcount = static_cast<double>(view.vertex_counts[p]);
    const double score = static_cast<double>(neighbor_count_[p]) *
                         (1.0 - vcount / capacity);
    if (score <= 0.0) continue;
    if (best == kInvalidPartition || score > best_score ||
        (score == best_score &&
         (view.vertex_counts[p] < best_vcount ||
          (view.vertex_counts[p] == best_vcount && p < best)))) {
      best = p;
      best_score = score;
      best_vcount = view.vertex_counts[p];
    }
  }
  for (const PartitionId p : touched_) neighbor_count_[p] = 0;
  if (best != kInvalidPartition) return best;

  // Balance fallback: fewest vertices, smallest id.
  PartitionId least = 0;
  for (PartitionId p = 1; p < view.k; ++p) {
    if (view.vertex_counts[p] < view.vertex_counts[least]) least = p;
  }
  return least;
}

std::unique_ptr<EdgePartitioner> make_ldg_partitioner() {
  return std::make_unique<Vertex2EdgePartitioner>(
      std::make_unique<LdgVertexAssigner>());
}

}  // namespace adwise
