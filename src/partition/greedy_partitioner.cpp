#include "src/partition/greedy_partitioner.h"

namespace adwise {

namespace {

// Least loaded partition within a replica set (smallest id on ties).
PartitionId least_loaded_in(const ReplicaSet& set, const PartitionState& state) {
  PartitionId best = kInvalidPartition;
  std::uint64_t best_load = 0;
  set.for_each([&](std::uint32_t p) {
    const std::uint64_t load = state.edges_on(p);
    if (best == kInvalidPartition || load < best_load) {
      best = p;
      best_load = load;
    }
  });
  return best;
}

}  // namespace

PartitionId GreedyPartitioner::place(const Edge& e,
                                     const PartitionState& state) {
  const ReplicaSet& ru = state.replicas(e.u);
  const ReplicaSet& rv = state.replicas(e.v);

  if (!ru.empty() && !rv.empty()) {
    if (ru.intersects(rv)) {
      // Case 1: least loaded partition holding both endpoints. Enumerate
      // the smaller replica set and membership-test against the other.
      const bool u_smaller = ru.size() <= rv.size();
      const ReplicaSet& outer = u_smaller ? ru : rv;
      const ReplicaSet& inner = u_smaller ? rv : ru;
      PartitionId best = kInvalidPartition;
      std::uint64_t best_load = 0;
      outer.for_each([&](std::uint32_t p) {
        if (!inner.contains(p)) return;
        const std::uint64_t load = state.edges_on(p);
        if (best == kInvalidPartition || load < best_load) {
          best = p;
          best_load = load;
        }
      });
      return best;
    }
    // Case 2: disjoint replica sets — follow the endpoint with the higher
    // observed degree (it is the more expensive vertex to replicate again).
    const bool follow_u = state.degree(e.u) >= state.degree(e.v);
    return least_loaded_in(follow_u ? ru : rv, state);
  }
  if (!ru.empty()) return least_loaded_in(ru, state);  // Case 3
  if (!rv.empty()) return least_loaded_in(rv, state);  // Case 3
  return state.least_loaded();                          // Case 4 (O(1))
}

}  // namespace adwise
