// Hash partitioner (PowerGraph/GraphX "random" baseline).
//
// Assigns each edge by hashing its endpoint pair: fast, perfectly balanced
// in expectation, oblivious to locality — the high-replication end of the
// Fig. 1 landscape.
#pragma once

#include "src/common/hashing.h"
#include "src/partition/partitioner.h"

namespace adwise {

class HashPartitioner final : public SingleEdgePartitioner {
 public:
  explicit HashPartitioner(std::uint64_t seed = 0) : seed_(seed) {}

  [[nodiscard]] std::string_view name() const override { return "hash"; }

  [[nodiscard]] PartitionId place(const Edge& e,
                                  const PartitionState& state) override {
    return static_cast<PartitionId>(hash_edge(e.u, e.v, seed_) % state.k());
  }

 private:
  std::uint64_t seed_;
};

}  // namespace adwise
