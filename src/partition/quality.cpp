#include "src/partition/quality.h"

#include <algorithm>

namespace adwise {

QualityReport analyze_quality(const PartitionState& state) {
  QualityReport report;
  report.replication_degree = state.replication_degree();
  report.imbalance = state.imbalance();
  report.partition_sizes.reserve(state.k());
  for (PartitionId p = 0; p < state.k(); ++p) {
    report.partition_sizes.push_back(state.edges_on(p));
  }
  report.vertices_per_partition.assign(state.k(), 0);
  for (VertexId v = 0; v < state.num_vertices(); ++v) {
    const ReplicaSet& r = state.replicas(v);
    const std::uint32_t replicas = r.size();
    if (replicas >= report.replica_histogram.size()) {
      report.replica_histogram.resize(replicas + 1, 0);
    }
    ++report.replica_histogram[replicas];
    report.max_replicas = std::max(report.max_replicas, replicas);
    if (replicas >= 1) {
      ++report.vertices_with_replicas;
      report.communication_volume += replicas - 1;
      r.for_each([&](std::uint32_t p) {
        ++report.vertices_per_partition[p];
      });
    }
    if (replicas > 1) ++report.cut_vertices;
  }

  // Normalized max loads; guard every zero denominator (empty state, k-only
  // construction) so the report never divides by zero.
  if (state.assigned_edges() > 0) {
    const double even_edges = static_cast<double>(state.assigned_edges()) /
                              static_cast<double>(state.k());
    report.load_balance =
        static_cast<double>(state.max_partition_size()) / even_edges;
  }
  std::uint64_t replica_mass = 0;
  std::uint64_t max_vertices = 0;
  for (const std::uint64_t count : report.vertices_per_partition) {
    replica_mass += count;
    max_vertices = std::max(max_vertices, count);
  }
  if (replica_mass > 0) {
    const double even_vertices = static_cast<double>(replica_mass) /
                                 static_cast<double>(state.k());
    report.vertex_balance = static_cast<double>(max_vertices) / even_vertices;
  }
  return report;
}

QualityReport analyze_quality(std::span<const Assignment> assignments,
                              std::uint32_t k, VertexId num_vertices) {
  PartitionState state(k, num_vertices);
  for (const Assignment& a : assignments) {
    state.assign(a.edge, a.partition);
  }
  return analyze_quality(state);
}

}  // namespace adwise
