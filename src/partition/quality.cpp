#include "src/partition/quality.h"

#include <algorithm>

namespace adwise {

QualityReport analyze_quality(const PartitionState& state) {
  QualityReport report;
  report.replication_degree = state.replication_degree();
  report.imbalance = state.imbalance();
  report.partition_sizes.reserve(state.k());
  for (PartitionId p = 0; p < state.k(); ++p) {
    report.partition_sizes.push_back(state.edges_on(p));
  }
  for (VertexId v = 0; v < state.num_vertices(); ++v) {
    const std::uint32_t replicas = state.replicas(v).size();
    if (replicas >= report.replica_histogram.size()) {
      report.replica_histogram.resize(replicas + 1, 0);
    }
    ++report.replica_histogram[replicas];
    report.max_replicas = std::max(report.max_replicas, replicas);
    if (replicas >= 1) {
      ++report.vertices_with_replicas;
      report.communication_volume += replicas - 1;
    }
    if (replicas > 1) ++report.cut_vertices;
  }
  return report;
}

QualityReport analyze_quality(std::span<const Assignment> assignments,
                              std::uint32_t k, VertexId num_vertices) {
  PartitionState state(k, num_vertices);
  for (const Assignment& a : assignments) {
    state.assign(a.edge, a.partition);
  }
  return analyze_quality(state);
}

}  // namespace adwise
