#include "src/partition/registry.h"

#include <sstream>

#include "src/partition/dbh_partitioner.h"
#include "src/partition/ebv_partitioner.h"
#include "src/partition/fennel_partitioner.h"
#include "src/partition/greedy_partitioner.h"
#include "src/partition/grid_partitioner.h"
#include "src/partition/hash_partitioner.h"
#include "src/partition/hdrf_partitioner.h"
#include "src/partition/ldg_partitioner.h"
#include "src/partition/ne_partitioner.h"
#include "src/partition/onedim_partitioner.h"
#include "src/partition/twops_partitioner.h"

namespace adwise {

std::unique_ptr<EdgePartitioner> make_baseline_partitioner(
    std::string_view name, std::uint32_t k, std::uint64_t seed) {
  if (name == "hash") return std::make_unique<HashPartitioner>(seed);
  if (name == "1d") return std::make_unique<OneDimPartitioner>(seed);
  if (name == "grid") return std::make_unique<GridPartitioner>(k, seed);
  if (name == "dbh") return std::make_unique<DbhPartitioner>(seed);
  if (name == "greedy") return std::make_unique<GreedyPartitioner>();
  if (name == "hdrf") return std::make_unique<HdrfPartitioner>();
  if (name == "ne") return std::make_unique<NePartitioner>(seed);
  if (name == "fennel") return make_fennel_partitioner();
  if (name == "ldg") return make_ldg_partitioner();
  if (name == "ebv") return std::make_unique<EbvPartitioner>();
  if (name == "2ps") return std::make_unique<TwoPsPartitioner>();
  return nullptr;
}

std::vector<std::string_view> baseline_partitioner_names() {
  return {"hash", "1d",  "grid",   "dbh", "greedy", "hdrf",
          "ne",   "ebv", "fennel", "ldg", "2ps"};
}

std::string baseline_partitioner_names_csv() {
  std::ostringstream out;
  bool first = true;
  for (const std::string_view name : baseline_partitioner_names()) {
    if (!first) out << ", ";
    out << name;
    first = false;
  }
  return out.str();
}

}  // namespace adwise
