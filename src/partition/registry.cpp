#include "src/partition/registry.h"

#include "src/partition/dbh_partitioner.h"
#include "src/partition/greedy_partitioner.h"
#include "src/partition/grid_partitioner.h"
#include "src/partition/hash_partitioner.h"
#include "src/partition/hdrf_partitioner.h"
#include "src/partition/ne_partitioner.h"
#include "src/partition/onedim_partitioner.h"

namespace adwise {

std::unique_ptr<EdgePartitioner> make_baseline_partitioner(
    std::string_view name, std::uint32_t k, std::uint64_t seed) {
  if (name == "hash") return std::make_unique<HashPartitioner>(seed);
  if (name == "1d") return std::make_unique<OneDimPartitioner>(seed);
  if (name == "grid") return std::make_unique<GridPartitioner>(k, seed);
  if (name == "dbh") return std::make_unique<DbhPartitioner>(seed);
  if (name == "greedy") return std::make_unique<GreedyPartitioner>();
  if (name == "hdrf") return std::make_unique<HdrfPartitioner>();
  if (name == "ne") return std::make_unique<NePartitioner>(seed);
  return nullptr;
}

std::vector<std::string_view> baseline_partitioner_names() {
  return {"hash", "1d", "grid", "dbh", "greedy", "hdrf", "ne"};
}

}  // namespace adwise
