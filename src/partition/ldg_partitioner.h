// LDG — Linear Deterministic Greedy streaming vertex partitioning
// (Stanton & Kliot, KDD 2012), lifted to an edge partitioning via
// Vertex2EdgePartitioner.
//
// Each vertex v, arriving in first-appearance order with its neighbor
// list, goes to the partition maximizing
//
//   score(p) = |N(v) ∩ P_p| * (1 - |P_p| / C),    C = ceil(|V| / k)
//
// the classic weighted-greedy rule: neighbor affinity discounted linearly
// by how full the partition already is relative to its capacity C. When
// every score is zero (no assigned neighbors, or all candidate partitions
// full) the vertex falls back to the partition with the fewest vertices —
// the rule's standard balance fallback. Ties break toward fewer vertices,
// then the smaller id, so placement is fully deterministic. Only
// already-assigned neighbors count (one-pass streaming).
#pragma once

#include <memory>

#include "src/partition/vertex2edgepart.h"

namespace adwise {

class LdgVertexAssigner final : public VertexAssigner {
 public:
  [[nodiscard]] std::string_view name() const override { return "ldg"; }

  [[nodiscard]] PartitionId place_vertex(
      VertexId v, std::span<const VertexId> neighbors,
      const VertexAssignView& view) override;

 private:
  std::vector<std::uint32_t> neighbor_count_;
  std::vector<PartitionId> touched_;
};

// The registry entry: LDG behind the vertex -> edge lifting rule.
[[nodiscard]] std::unique_ptr<EdgePartitioner> make_ldg_partitioner();

}  // namespace adwise
