// Greedy vertex-cut placement (PowerGraph, Gonzalez et al., OSDI 2012).
//
// Case analysis on the replica sets of the two endpoints:
//   1. both endpoints share partitions       -> least loaded shared partition
//   2. both placed, but disjoint replica sets -> least loaded replica of the
//      endpoint with the higher observed degree (streaming stand-in for
//      PowerGraph's "most unassigned edges" rule, which needs full degrees)
//   3. exactly one endpoint placed            -> least loaded of its replicas
//   4. neither placed                          -> globally least loaded
#pragma once

#include "src/partition/partitioner.h"

namespace adwise {

class GreedyPartitioner final : public SingleEdgePartitioner {
 public:
  [[nodiscard]] std::string_view name() const override { return "greedy"; }

  [[nodiscard]] PartitionId place(const Edge& e,
                                  const PartitionState& state) override;
};

}  // namespace adwise
