#include "src/partition/vertex2edgepart.h"

#include <algorithm>

namespace adwise {

PartitionId lift_edge_to_partition(PartitionId pu, PartitionId pv,
                                   const PartitionState& state) {
  if (pu == pv) return pu;
  const std::uint64_t lu = state.edges_on(pu);
  const std::uint64_t lv = state.edges_on(pv);
  if (lu != lv) return lu < lv ? pu : pv;
  return std::min(pu, pv);
}

void Vertex2EdgePartitioner::partition(EdgeStream& stream,
                                       PartitionState& state,
                                       const AssignmentSink& sink) {
  // Buffer the edge sequence: the induced vertex stream needs complete
  // neighbor lists, and the lifting pass replays the edges in stream order.
  std::vector<Edge> edges;
  edges.reserve(stream.size_hint());
  Edge e;
  while (stream.next(e)) edges.push_back(e);

  const VertexId n = state.num_vertices();
  const std::uint32_t k = state.k();

  // CSR adjacency over the buffered sequence (both directions; self-loops
  // contribute no neighbor entry but still get lifted below).
  std::vector<std::uint32_t> adj_offset(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& edge : edges) {
    if (edge.u == edge.v) continue;
    ++adj_offset[edge.u + 1];
    ++adj_offset[edge.v + 1];
  }
  for (std::size_t i = 1; i < adj_offset.size(); ++i) {
    adj_offset[i] += adj_offset[i - 1];
  }
  std::vector<VertexId> adj(adj_offset.back());
  {
    std::vector<std::uint32_t> cursor(adj_offset.begin(),
                                      adj_offset.end() - 1);
    for (const Edge& edge : edges) {
      if (edge.u == edge.v) continue;
      adj[cursor[edge.u]++] = edge.v;
      adj[cursor[edge.v]++] = edge.u;
    }
  }

  // Distinct endpoints (self-loop-only vertices included: they appear in
  // the stream and get assigned).
  VertexId total_vertices = 0;
  {
    std::vector<bool> seen(n, false);
    for (const Edge& edge : edges) {
      if (!seen[edge.u]) {
        seen[edge.u] = true;
        ++total_vertices;
      }
      if (!seen[edge.v]) {
        seen[edge.v] = true;
        ++total_vertices;
      }
    }
  }

  // Vertex pass: first-appearance order over the edge sequence, complete
  // neighbor lists from the CSR.
  vertex_part_.assign(n, kInvalidPartition);
  std::vector<std::uint64_t> vertex_counts(k, 0);
  VertexAssignView view;
  view.k = k;
  view.num_vertices = n;
  view.total_vertices = total_vertices;
  view.num_edges = edges.size();
  view.vertex_counts = vertex_counts.data();
  view.vertex_part = vertex_part_.data();
  const auto assign_vertex = [&](VertexId v) {
    if (vertex_part_[v] != kInvalidPartition) return;
    const std::span<const VertexId> neighbors(adj.data() + adj_offset[v],
                                              adj_offset[v + 1] -
                                                  adj_offset[v]);
    const PartitionId p = assigner_->place_vertex(v, neighbors, view);
    vertex_part_[v] = p;
    ++vertex_counts[p];
    ++view.assigned_vertices;
  };
  for (const Edge& edge : edges) {
    assign_vertex(edge.u);
    assign_vertex(edge.v);
  }

  // Lifting pass: edges in stream order, each to the lower-load endpoint
  // partition.
  for (const Edge& edge : edges) {
    const PartitionId p = lift_edge_to_partition(vertex_part_[edge.u],
                                                 vertex_part_[edge.v], state);
    state.assign(edge, p);
    if (sink) sink(edge, p);
  }
}

}  // namespace adwise
