// Vertex-partitioning-to-edge-partitioning adapter.
//
// Fennel and LDG are streaming VERTEX partitioners: they consume a vertex
// stream (each vertex arriving with its neighbor list) and assign every
// vertex to exactly one partition. ADWISE's tables are about EDGE
// partitionings (replication factor, edge balance), so to let the
// vertex-partitioner class compete in the same leaderboard this adapter
// lifts any vertex partitioning into an edge partitioning:
//
//   lifting rule: edge (u, v) goes to the partition of its LOWER-edge-load
//   endpoint — part(u) if |P_part(u)| < |P_part(v)|, part(v) if the load is
//   higher on part(u)'s side, and the smaller partition id on exact ties.
//   (When both endpoints map to the same partition the edge trivially goes
//   there.) Loads are read from the live PartitionState, so the rule
//   spreads each cut vertex's edge mass toward whichever side is lighter
//   at placement time.
//
// Under this lifting a vertex's replica set is a subset of
// {part(v)} ∪ {part(n) : n ∈ N(v)}: only CUT vertices (endpoints of edges
// whose two endpoint partitions differ) can replicate, which is exactly
// how the edge-cut metric of a vertex partitioner translates into
// replication factor.
//
// The vertex stream itself is induced from the edge stream: vertices enter
// in order of first appearance, each carrying its complete neighbor list.
// Deriving complete neighborhoods from an edge sequence requires buffering
// it, so adapted vertex partitioners are all-edge algorithms in the NE
// memory class — they trade the streaming memory bound for the classic
// Fennel/LDG quality the literature evaluates. Everything downstream of
// the buffered sequence is deterministic, so placements are bit-identical
// across reruns and across Vector/File/Binary delivery of the same edges.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/partition/partitioner.h"

namespace adwise {

// Read-only context handed to a vertex-assignment rule for one decision.
struct VertexAssignView {
  std::uint32_t k = 0;
  VertexId num_vertices = 0;       // dense id space of the run (max id + 1)
  // Distinct vertices appearing in the buffered sequence — the number of
  // place_vertex calls this run will make. Capacity terms must divide this,
  // not num_vertices: sparse id spaces (generators, subgraph streams) leave
  // most ids untouched, and a capacity computed from the id space never
  // binds.
  VertexId total_vertices = 0;
  std::uint64_t num_edges = 0;     // edges in the buffered sequence
  std::uint64_t assigned_vertices = 0;  // vertices assigned before this one
  // Per-partition vertex counts (k entries, maintained by the adapter).
  const std::uint64_t* vertex_counts = nullptr;
  // Current vertex -> partition map (kInvalidPartition when unassigned).
  const PartitionId* vertex_part = nullptr;
};

// A streaming vertex-assignment rule: called once per vertex, in first-
// appearance order, with the vertex's complete neighbor list. Must return
// a partition in [0, k) and must be deterministic in its inputs.
class VertexAssigner {
 public:
  virtual ~VertexAssigner() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  [[nodiscard]] virtual PartitionId place_vertex(
      VertexId v, std::span<const VertexId> neighbors,
      const VertexAssignView& view) = 0;
};

// EdgePartitioner wrapper: runs the assigner over the induced vertex
// stream, then replays the buffered edges in stream order through the
// lifting rule above.
class Vertex2EdgePartitioner final : public EdgePartitioner {
 public:
  explicit Vertex2EdgePartitioner(std::unique_ptr<VertexAssigner> assigner)
      : assigner_(std::move(assigner)), name_(assigner_->name()) {}

  [[nodiscard]] std::string_view name() const override { return name_; }

  void partition(EdgeStream& stream, PartitionState& state,
                 const AssignmentSink& sink = {}) override;

  // Exposed for tests: the vertex partition the last partition() computed.
  [[nodiscard]] const std::vector<PartitionId>& last_vertex_parts() const {
    return vertex_part_;
  }

 private:
  std::unique_ptr<VertexAssigner> assigner_;
  std::string name_;
  std::vector<PartitionId> vertex_part_;
};

// The lifting rule alone (unit-testable): the partition for edge (u, v)
// given both endpoint partitions and the current per-partition edge loads.
[[nodiscard]] PartitionId lift_edge_to_partition(PartitionId pu,
                                                 PartitionId pv,
                                                 const PartitionState& state);

}  // namespace adwise
