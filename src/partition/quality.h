// Partitioning quality analysis beyond the two headline numbers.
//
// The paper reports replication degree (Eq. 1) and balance (Eq. 2); real
// deployments additionally care about where the replication mass sits
// (histogram), how much synchronization traffic it implies (communication
// volume, the quantity the engine charges per superstep), and which
// partitions are hot.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/partition/partition_state.h"
#include "src/partition/types.h"

namespace adwise {

struct QualityReport {
  double replication_degree = 0.0;  // Eq. 1
  double imbalance = 0.0;           // (max-min)/max
  std::uint64_t vertices_with_replicas = 0;
  std::uint64_t cut_vertices = 0;   // |R_v| > 1
  std::uint32_t max_replicas = 0;   // worst vertex
  // replica_histogram[i] = #vertices with exactly i replicas (index 0 holds
  // vertices never touched by an edge).
  std::vector<std::uint64_t> replica_histogram;
  // Σ_v (|R_v| - 1): mirror count — one synchronization message per mirror
  // per superstep, the engine's dominant traffic term.
  std::uint64_t communication_volume = 0;
  std::vector<std::uint64_t> partition_sizes;
  // Normalized maximum loads, the leaderboard's balance columns: the largest
  // partition relative to a perfectly even split (λ ≥ 1, 1 = perfect).
  // load_balance divides max_p |P_p| by |E|/k; vertex_balance divides
  // max_p |V(P_p)| by Σ_p |V(P_p)| / k (replica mass, not distinct
  // vertices). Both report 1.0 when nothing is assigned — an empty
  // partitioning is trivially balanced, not infinitely skewed.
  double load_balance = 1.0;
  double vertex_balance = 1.0;
  // |V(P_p)|: vertices with a replica on p (the per-partition vertex sets).
  std::vector<std::uint64_t> vertices_per_partition;
};

[[nodiscard]] QualityReport analyze_quality(const PartitionState& state);

// Builds the report directly from an assignment list (k partitions over
// num_vertices vertices) — for consumers that only kept the assignments.
[[nodiscard]] QualityReport analyze_quality(
    std::span<const Assignment> assignments, std::uint32_t k,
    VertexId num_vertices);

}  // namespace adwise
