#include "src/partition/fennel_partitioner.h"

#include <cmath>

namespace adwise {

PartitionId FennelVertexAssigner::place_vertex(VertexId /*v*/,
                                               std::span<const VertexId>
                                                   neighbors,
                                               const VertexAssignView& view) {
  const auto participants = std::max<VertexId>(view.total_vertices, 1);
  const double alpha =
      alpha_override_ > 0.0
          ? alpha_override_
          : std::sqrt(static_cast<double>(view.k)) *
                static_cast<double>(view.num_edges) /
                std::pow(static_cast<double>(participants), 1.5);

  // Count already-assigned neighbors per partition (scratch reused across
  // calls; touched entries reset on the way out).
  if (neighbor_count_.size() != view.k) neighbor_count_.assign(view.k, 0);
  touched_.clear();
  for (const VertexId n : neighbors) {
    const PartitionId p = view.vertex_part[n];
    if (p == kInvalidPartition) continue;
    if (neighbor_count_[p]++ == 0) touched_.push_back(p);
  }

  // Hard capacity ν·n/k (ν = 1.1, n = participating vertices): the paper's
  // balance constraint. Without it the interpolated objective happily piles
  // a sparse graph onto a few partitions (the penalty term vanishes when
  // m ≪ n^1.5). Cannot exclude every partition: total assigned vertices
  // stay below ν·n.
  const double capacity = 1.1 * static_cast<double>(participants) /
                          static_cast<double>(view.k);

  PartitionId best = 0;
  double best_score = 0.0;
  std::uint64_t best_vcount = 0;
  bool have_best = false;
  for (PartitionId p = 0; p < view.k; ++p) {
    const auto vcount = static_cast<double>(view.vertex_counts[p]);
    if (vcount + 1.0 > capacity) continue;
    const double score =
        static_cast<double>(neighbor_count_[p]) -
        alpha * gamma_ * std::pow(vcount, gamma_ - 1.0);
    if (!have_best || score > best_score ||
        (score == best_score &&
         (view.vertex_counts[p] < best_vcount ||
          (view.vertex_counts[p] == best_vcount && p < best)))) {
      best = p;
      best_score = score;
      best_vcount = view.vertex_counts[p];
      have_best = true;
    }
  }
  for (const PartitionId p : touched_) neighbor_count_[p] = 0;
  if (have_best) return best;
  // All candidates at capacity (only possible transiently from rounding):
  // fewest vertices, smallest id.
  PartitionId least = 0;
  for (PartitionId p = 1; p < view.k; ++p) {
    if (view.vertex_counts[p] < view.vertex_counts[least]) least = p;
  }
  return least;
}

std::unique_ptr<EdgePartitioner> make_fennel_partitioner(double gamma,
                                                         double alpha) {
  return std::make_unique<Vertex2EdgePartitioner>(
      std::make_unique<FennelVertexAssigner>(gamma, alpha));
}

}  // namespace adwise
