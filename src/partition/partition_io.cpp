#include "src/partition/partition_io.h"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "src/io/atomic_file.h"

namespace adwise {

namespace {

constexpr std::array<char, 4> kMagic = {'A', 'D', 'W', 'P'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("truncated assignment file");
  return value;
}

}  // namespace

void write_assignments(std::ostream& out,
                       std::span<const Assignment> assignments,
                       std::uint32_t k) {
  out.write(kMagic.data(), kMagic.size());
  write_pod(out, kVersion);
  write_pod(out, k);
  write_pod(out, static_cast<std::uint64_t>(assignments.size()));
  for (const Assignment& a : assignments) {
    write_pod(out, a.edge.u);
    write_pod(out, a.edge.v);
    write_pod(out, a.partition);
  }
  if (!out) throw std::runtime_error("failed writing assignment stream");
}

void write_assignments_file(const std::string& path,
                            std::span<const Assignment> assignments,
                            std::uint32_t k) {
  // Through AtomicFileWriter: a crash or write failure mid-file can never
  // leave a torn assignment file under the destination name, and ENOSPC /
  // transient errors surface as the typed io_error.h hierarchy with the
  // write-side failpoints applied (same policy as every other artifact).
  AtomicFileWriter out(path);
  out.append(kMagic.data(), kMagic.size());
  out.append(&kVersion, sizeof(kVersion));
  out.append(&k, sizeof(k));
  const auto count = static_cast<std::uint64_t>(assignments.size());
  out.append(&count, sizeof(count));
  // Serialize in bounded batches so huge runs keep O(1) extra memory.
  std::vector<char> batch;
  constexpr std::size_t kRecordBytes =
      sizeof(VertexId) * 2 + sizeof(PartitionId);
  constexpr std::size_t kBatchRecords = 8192;
  batch.reserve(kBatchRecords * kRecordBytes);
  for (const Assignment& a : assignments) {
    const char* u = reinterpret_cast<const char*>(&a.edge.u);
    const char* v = reinterpret_cast<const char*>(&a.edge.v);
    const char* p = reinterpret_cast<const char*>(&a.partition);
    batch.insert(batch.end(), u, u + sizeof(a.edge.u));
    batch.insert(batch.end(), v, v + sizeof(a.edge.v));
    batch.insert(batch.end(), p, p + sizeof(a.partition));
    if (batch.size() >= kBatchRecords * kRecordBytes) {
      out.append(batch.data(), batch.size());
      batch.clear();
    }
  }
  if (!batch.empty()) out.append(batch.data(), batch.size());
  out.commit();
}

AssignmentFile read_assignments(std::istream& in) {
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw std::runtime_error("not an adwise assignment file (bad magic)");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("unsupported assignment file version " +
                             std::to_string(version));
  }
  AssignmentFile file;
  file.k = read_pod<std::uint32_t>(in);
  const auto count = read_pod<std::uint64_t>(in);
  file.assignments.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Assignment a;
    a.edge.u = read_pod<VertexId>(in);
    a.edge.v = read_pod<VertexId>(in);
    a.partition = read_pod<PartitionId>(in);
    if (a.partition >= file.k) {
      throw std::runtime_error("assignment file: partition id out of range");
    }
    file.assignments.push_back(a);
  }
  return file;
}

AssignmentFile read_assignments_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open assignment file: " + path);
  return read_assignments(in);
}

}  // namespace adwise
