// Mutable state of a (streaming) vertex-cut partitioning run.
//
// This is the paper's "vertex cache" (Fig. 3, building block iii) plus the
// per-partition balance bookkeeping every scoring function reads:
//   - replica set R_v per vertex (Table I),
//   - observed partial degree per vertex (HDRF-style degree table),
//   - edge count |P_i| per partition with O(1) max/min tracking,
//   - running replication-degree numerator (Eq. 1).
//
// Partition sizes only ever grow during streaming, which makes exact
// max/min maintenance cheap: max is monotone, and min only advances when the
// last partition at the current minimum leaves it (amortized O(k) per bump).
//
// least_loaded() is O(1): the smallest partition id at the current minimum
// size is maintained incrementally. Because sizes are monotone, when the
// current holder leaves the minimum the next holder can only have a larger
// id, so a forward scan from the old holder suffices — each id is visited at
// most once per minimum-size epoch, amortizing to O(1) per assign(). Every
// scoring fallback (ADWISE sparse placement, HDRF, Greedy case 4) reads it
// on the per-edge hot path.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/dense_replica_rows.h"
#include "src/common/replica_set.h"
#include "src/partition/types.h"

namespace adwise {

class PartitionSnapshot;

class PartitionState {
 public:
  PartitionState(std::uint32_t k, VertexId num_vertices);

  struct AssignEffect {
    bool new_replica_u = false;
    bool new_replica_v = false;
  };

  // Records the assignment of e to partition p, updating replica sets,
  // degrees and balance. Returns which endpoints gained a replica.
  AssignEffect assign(const Edge& e, PartitionId p);

  [[nodiscard]] std::uint32_t k() const { return k_; }
  [[nodiscard]] VertexId num_vertices() const {
    return static_cast<VertexId>(replicas_.size());
  }

  [[nodiscard]] const ReplicaSet& replicas(VertexId v) const {
    return replicas_[v];
  }

  // Degree as seen by scoring functions: the observed-so-far partial degree
  // (single-pass streaming, the paper's setting) or the exact degree when a
  // degree oracle was installed (two-pass mode).
  [[nodiscard]] std::uint32_t degree(VertexId v) const {
    return degree_oracle_.empty() ? degree_[v] : degree_oracle_[v];
  }
  [[nodiscard]] std::uint32_t observed_degree(VertexId v) const {
    return degree_[v];
  }
  [[nodiscard]] std::uint32_t max_degree() const { return max_degree_; }

  // Installs exact degrees known ahead of streaming (e.g. from a counting
  // pre-pass). DBH and HDRF were originally formulated with full degree
  // knowledge; the oracle lets the degree-aware scores use it.
  void set_degree_oracle(std::vector<std::uint32_t> degrees);
  [[nodiscard]] bool has_degree_oracle() const {
    return !degree_oracle_.empty();
  }

  [[nodiscard]] std::uint64_t edges_on(PartitionId p) const {
    return part_edges_[p];
  }
  [[nodiscard]] std::uint64_t max_partition_size() const { return max_size_; }
  [[nodiscard]] std::uint64_t min_partition_size() const { return min_size_; }
  [[nodiscard]] std::uint64_t assigned_edges() const { return assigned_; }

  // Least-loaded partition among all k, smallest id on ties. O(1): tracked
  // incrementally by assign().
  [[nodiscard]] PartitionId least_loaded() const { return min_id_; }

  // Mean replica count over vertices with at least one replica (Eq. 1; for
  // graphs without isolated vertices this equals the paper's 1/|V| Σ|R_v|).
  [[nodiscard]] double replication_degree() const;

  // ι = (maxsize - minsize) / maxsize; 0 when nothing is assigned.
  [[nodiscard]] double imbalance() const;

  // Eq. 2 check: min/max > tau for every partition pair, i.e. overall.
  [[nodiscard]] bool balanced(double tau) const;

  // Read-snapshot for batch scoring (see PartitionSnapshot below). O(1):
  // captures the scalar aggregates and aliases the per-vertex/per-partition
  // arrays, which are immutable between assign() calls.
  [[nodiscard]] PartitionSnapshot snapshot() const;

  // Dense-rows mirror (src/common/dense_replica_rows.h): a contiguous
  // fixed-width bit row per vertex that assign() keeps in lockstep with the
  // authoritative ReplicaSet array. Returns false (and stays disabled) when
  // k exceeds DenseReplicaRows::kMaxK. Enabling rebuilds the mirror from
  // the replica sets, so it is safe mid-stream and after load(). The mirror
  // never changes any observable state — only the scoring core reads it.
  bool enable_dense_rows();
  void disable_dense_rows();
  [[nodiscard]] const DenseReplicaRows* dense_rows() const {
    return dense_rows_enabled_ ? &dense_rows_ : nullptr;
  }

  // Structure-of-arrays accessors for PartitionSnapshot: per-partition
  // sizes (u64 and the pre-cast f64 twin assign() maintains), and the
  // effective degree array (oracle when installed, observed otherwise).
  [[nodiscard]] const std::uint64_t* part_edges_data() const {
    return part_edges_.data();
  }
  [[nodiscard]] const double* part_edges_f64_data() const {
    return part_edges_f64_.data();
  }
  [[nodiscard]] const std::uint32_t* effective_degrees_data() const {
    return degree_oracle_.empty() ? degree_.data() : degree_oracle_.data();
  }

  // Checkpoint support: serializes the complete state — replica sets,
  // degrees, oracle, per-partition loads and every balance aggregate.
  // load() restores into a state constructed with the same (k,
  // num_vertices) and throws std::runtime_error on any shape mismatch, so
  // a checkpoint can never be silently applied to the wrong run. The dense
  // mirror and the f64 size twin are derived data and are rebuilt by
  // load(), never serialized — the checkpoint byte layout is unchanged.
  void save(ByteWriter& out) const;
  void load(ByteReader& in);

 private:
  std::uint32_t k_;
  std::vector<ReplicaSet> replicas_;
  DenseReplicaRows dense_rows_;
  bool dense_rows_enabled_ = false;
  std::vector<std::uint32_t> degree_;
  std::vector<std::uint32_t> degree_oracle_;
  std::vector<std::uint64_t> part_edges_;
  // static_cast<double>(part_edges_[p]) maintained per assign(): the SIMD
  // balance kernel loads doubles directly instead of converting per score.
  std::vector<double> part_edges_f64_;
  std::uint64_t max_size_ = 0;
  std::uint64_t min_size_ = 0;
  std::uint32_t num_at_min_;
  PartitionId min_id_ = 0;  // smallest id with part_edges_ == min_size_
  std::uint32_t max_degree_ = 1;
  std::uint64_t assigned_ = 0;
  std::uint64_t total_replicas_ = 0;
  std::uint64_t replicated_vertices_ = 0;
};

// Immutable read-view of a PartitionState, frozen at construction time.
//
// PartitionState only mutates inside assign(); between two assignments every
// array and aggregate is constant. A snapshot captures the scalar aggregates
// (max/min size, least-loaded, max degree) by value and the hot per-partition
// and per-vertex arrays as raw structure-of-arrays pointers: the u64 and f64
// partition sizes, the effective degree array (oracle resolved once instead
// of per call), and — when the dense mirror is enabled — the replica bit
// rows. A batch rescore therefore walks contiguous memory with no
// indirection through the state. Cheap to take per scoring batch and safe to
// read from many threads concurrently as long as no assign() runs while the
// snapshot is live. The parallel batch scorer hands one snapshot to all
// workers so every score in a batch sees the exact same partition state,
// which is what keeps parallel placement decisions bit-identical to the
// serial path.
class PartitionSnapshot {
 public:
  explicit PartitionSnapshot(const PartitionState& state)
      : state_(&state),
        k_(state.k()),
        part_edges_(state.part_edges_data()),
        part_edges_f64_(state.part_edges_f64_data()),
        degrees_(state.effective_degrees_data()),
        row_data_(state.dense_rows() ? state.dense_rows()->data() : nullptr),
        row_words_(state.dense_rows() ? state.dense_rows()->words_per_row()
                                      : 0),
        max_size_(state.max_partition_size()),
        min_size_(state.min_partition_size()),
        least_loaded_(state.least_loaded()),
        max_degree_(state.max_degree()) {}

  [[nodiscard]] std::uint32_t k() const { return k_; }
  [[nodiscard]] const ReplicaSet& replicas(VertexId v) const {
    return state_->replicas(v);
  }
  [[nodiscard]] std::uint32_t degree(VertexId v) const { return degrees_[v]; }
  [[nodiscard]] std::uint32_t max_degree() const { return max_degree_; }
  [[nodiscard]] std::uint64_t edges_on(PartitionId p) const {
    return part_edges_[p];
  }
  [[nodiscard]] std::uint64_t max_partition_size() const { return max_size_; }
  [[nodiscard]] std::uint64_t min_partition_size() const { return min_size_; }
  [[nodiscard]] PartitionId least_loaded() const { return least_loaded_; }

  // SoA views for the vectorized kernels.
  [[nodiscard]] const std::uint64_t* partition_sizes() const {
    return part_edges_;
  }
  [[nodiscard]] const double* partition_sizes_f64() const {
    return part_edges_f64_;
  }
  // Dense replica bit row of v, or nullptr when the mirror is disabled.
  [[nodiscard]] const std::uint64_t* replica_row(VertexId v) const {
    return row_data_ == nullptr
               ? nullptr
               : row_data_ + static_cast<std::size_t>(v) * row_words_;
  }
  [[nodiscard]] std::uint32_t row_words() const { return row_words_; }

 private:
  const PartitionState* state_;
  std::uint32_t k_;
  const std::uint64_t* part_edges_;
  const double* part_edges_f64_;
  const std::uint32_t* degrees_;
  const std::uint64_t* row_data_;
  std::uint32_t row_words_;
  std::uint64_t max_size_;
  std::uint64_t min_size_;
  PartitionId least_loaded_;
  std::uint32_t max_degree_;
};

inline PartitionSnapshot PartitionState::snapshot() const {
  return PartitionSnapshot(*this);
}

}  // namespace adwise
