// Spotlight partitioning (paper §III-D, evaluated in §IV-B / Fig. 8).
//
// Parallel loading runs z independent partitioner instances, each streaming
// a contiguous chunk of the edge list with its own private vertex cache.
// Conventionally every instance may fill all k partitions (spread = k);
// spotlight restricts instance i to the partition group
//   { (i*spread + j) mod k : j in [0, spread) },
// which is disjoint across instances when z * spread == k. Smaller spread
// preserves stream locality inside each instance and drastically lowers the
// merged replication degree — for any underlying strategy.
//
// Execution models, from most to least concurrent:
//   - run_spotlight_sharded(manifest, ...): each instance opens its own
//     BinaryEdgeStream over its own .adw shard file (src/io/adw_shards.h),
//     so I/O, decode and scoring are genuinely concurrent end to end when
//     run_threads is set.
//   - run_spotlight(InstanceStreamFactory, ...): the general form — any
//     per-instance stream source, threaded or serial.
//   - run_spotlight(RewindableEdgeStream&, ...): one shared read head,
//     consumed sequentially through bounded chunk views (a single stream
//     has a single read position; use shards for concurrent reading).
//   - run_spotlight(span, ...): in-memory chunks; threads share storage.
// All four produce bit-identical merged results for the same edge sequence
// and z: chunk boundaries always come from chunk_sizes(|E|, z), instances
// are fed the same chunks, and the merge is deterministic in instance
// order. Threaded instances run on the shared work-stealing ThreadPool.
//
// Cluster model: instances run on separate machines in the paper, so the
// reported wall latency is the maximum over per-instance latencies whether
// or not the instances actually execute concurrently here.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/graph/edge_stream.h"
#include "src/partition/partitioner.h"

namespace adwise {

namespace obs {
struct ObsSink;
}  // namespace obs

struct SpotlightOptions {
  std::uint32_t k = 32;                // global partition count
  std::uint32_t num_partitioners = 8;  // z
  std::uint32_t spread = 4;            // partitions each instance may fill
  bool run_threads = false;            // execute instances on threads
  // Instance threads when run_threads (0 = one per instance). Instances
  // queue on the pool when fewer threads than instances are available.
  std::uint32_t num_threads = 0;
  // Called serially in instance order during the merge — outside the timed
  // region — with each instance's partitioner after it drained its chunk.
  // Telemetry collection hook: a caller that builds AdwisePartitioners can
  // downcast and aggregate the per-instance Reports (Report::merge_from).
  std::function<void(std::uint32_t instance, EdgePartitioner& partitioner)>
      on_instance_done;
  // Optional observability sink; must outlive the run. Each instance's
  // drain is wrapped in a spotlight_instance trace span — with run_threads
  // the instances land on distinct thread tracks. Per-instance partitioner
  // metrics come from wiring the same sink into the factory's options (the
  // registry is thread-safe; counters aggregate across instances).
  obs::ObsSink* obs = nullptr;
};

// Builds the partitioner for one instance. local_k == spread: instances see
// a private, zero-based partition space that spotlight maps onto the global
// group, so any EdgePartitioner works unmodified. With run_threads the
// factory is invoked concurrently from instance threads and must be
// thread-safe (stateless factories trivially are).
using PartitionerFactory = std::function<std::unique_ptr<EdgePartitioner>(
    std::uint32_t instance, std::uint32_t local_k)>;

// Opens instance i's private edge stream — its contiguous chunk of the
// global edge sequence. With run_threads it is invoked concurrently from
// instance threads and must be thread-safe; the returned stream is used by
// that instance's thread only.
using InstanceStreamFactory =
    std::function<std::unique_ptr<EdgeStream>(std::uint32_t instance)>;

struct SpotlightResult {
  // Global state over all k partitions, merged from every instance.
  PartitionState merged;
  // Every edge with its global partition id (input stream order per chunk).
  std::vector<Assignment> assignments;
  std::vector<double> instance_seconds;
  // max(instance_seconds): the parallel-loading wall latency.
  double wall_seconds = 0.0;

  explicit SpotlightResult(std::uint32_t k, VertexId n) : merged(k, n) {}
};

// Global partition ids owned by instance i.
[[nodiscard]] std::vector<PartitionId> spotlight_group(
    const SpotlightOptions& opts, std::uint32_t instance);

// Per-instance streams: instance i drains streams(i) completely. With
// run_threads the instances execute concurrently on a ThreadPool (the real
// §III-D model: per-instance I/O and scoring overlap) and per-instance
// wall-clock is measured on the instance's own thread; without it they run
// sequentially — results are bit-identical either way, because assignments
// and state merge deterministically in instance order outside the timed
// region. An exception thrown by any instance (stream open failure, corrupt
// shard, ...) propagates to the caller.
[[nodiscard]] SpotlightResult run_spotlight(const InstanceStreamFactory& streams,
                                            VertexId num_vertices,
                                            const PartitionerFactory& factory,
                                            const SpotlightOptions& opts);

// Sharded .adw graph (src/io/adw_shards.h): validates every shard against
// the manifest (a truncated or swapped shard fails loudly before any
// instance streams), then runs one BinaryEdgeStream per instance over its
// own shard file. opts.num_partitioners must equal the manifest's shard
// count — the sharding fixed the chunk boundaries — and the manifest's max
// vertex id must fit num_vertices. Throws std::runtime_error otherwise.
[[nodiscard]] SpotlightResult run_spotlight_sharded(
    const std::string& manifest_path, VertexId num_vertices,
    const PartitionerFactory& factory, const SpotlightOptions& opts);

// Streaming parallel loading over ONE shared read head: rewinds the stream
// once and feeds each instance its contiguous chunk (chunk_sizes of
// size_hint) through a bounded view, so .adw / text streams are consumed
// without densifying the edge list. Instances necessarily run sequentially
// here — one stream has one read position (shard the file to get real
// concurrency) — but the reported wall latency keeps the paper's
// cluster-model meaning (max over per-instance latencies) either way.
// Throws std::runtime_error if the stream delivers a different number of
// edges than size_hint() promised after rewind: chunk bounds derive from
// the hint, so a short stream would silently starve the trailing instances
// instead of loading them — fail loudly instead.
[[nodiscard]] SpotlightResult run_spotlight(RewindableEdgeStream& stream,
                                            VertexId num_vertices,
                                            const PartitionerFactory& factory,
                                            const SpotlightOptions& opts);

// In-memory overload. Without run_threads it delegates to the shared-stream
// overload through a VectorEdgeStream view; with run_threads the instances
// execute on threads over per-chunk spans of the shared storage.
[[nodiscard]] SpotlightResult run_spotlight(std::span<const Edge> edges,
                                            VertexId num_vertices,
                                            const PartitionerFactory& factory,
                                            const SpotlightOptions& opts);

}  // namespace adwise
