// Spotlight partitioning (paper §III-D, evaluated in §IV-B / Fig. 8).
//
// Parallel loading runs z independent partitioner instances, each streaming
// a contiguous chunk of the edge list with its own private vertex cache.
// Conventionally every instance may fill all k partitions (spread = k);
// spotlight restricts instance i to the partition group
//   { (i*spread + j) mod k : j in [0, spread) },
// which is disjoint across instances when z * spread == k. Smaller spread
// preserves stream locality inside each instance and drastically lowers the
// merged replication degree — for any underlying strategy.
//
// Cluster model: instances run on separate machines in the paper, so the
// reported wall latency is the maximum over per-instance latencies whether
// or not the instances actually execute concurrently here.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/graph/edge_stream.h"
#include "src/partition/partitioner.h"

namespace adwise {

struct SpotlightOptions {
  std::uint32_t k = 32;                // global partition count
  std::uint32_t num_partitioners = 8;  // z
  std::uint32_t spread = 4;            // partitions each instance may fill
  bool run_threads = false;            // execute instances on threads
};

// Builds the partitioner for one instance. local_k == spread: instances see
// a private, zero-based partition space that spotlight maps onto the global
// group, so any EdgePartitioner works unmodified.
using PartitionerFactory = std::function<std::unique_ptr<EdgePartitioner>(
    std::uint32_t instance, std::uint32_t local_k)>;

struct SpotlightResult {
  // Global state over all k partitions, merged from every instance.
  PartitionState merged;
  // Every edge with its global partition id (input stream order per chunk).
  std::vector<Assignment> assignments;
  std::vector<double> instance_seconds;
  // max(instance_seconds): the parallel-loading wall latency.
  double wall_seconds = 0.0;

  explicit SpotlightResult(std::uint32_t k, VertexId n) : merged(k, n) {}
};

// Global partition ids owned by instance i.
[[nodiscard]] std::vector<PartitionId> spotlight_group(
    const SpotlightOptions& opts, std::uint32_t instance);

// Streaming parallel loading: rewinds the stream once and feeds each
// instance its contiguous chunk (chunk_sizes of size_hint) through a
// bounded view of the shared read head, so .adw / text streams are
// consumed without densifying the edge list. Instances necessarily run
// sequentially here — one stream has one read position — but the reported
// wall latency keeps the paper's cluster-model meaning (max over
// per-instance latencies) either way; run_threads only affects the span
// overload, which can share its storage across threads.
[[nodiscard]] SpotlightResult run_spotlight(RewindableEdgeStream& stream,
                                            VertexId num_vertices,
                                            const PartitionerFactory& factory,
                                            const SpotlightOptions& opts);

// In-memory overload. Without run_threads it delegates to the stream
// overload through a VectorEdgeStream view; with run_threads it executes
// the instances on real threads over per-chunk spans.
[[nodiscard]] SpotlightResult run_spotlight(std::span<const Edge> edges,
                                            VertexId num_vertices,
                                            const PartitionerFactory& factory,
                                            const SpotlightOptions& opts);

}  // namespace adwise
