// Degree-Based Hashing (Xie et al., NIPS 2014).
//
// Hashes the endpoint with the smaller (partial, observed-so-far) degree:
// high-degree vertices get replicated across partitions while low-degree
// vertices stay together, which suits power-law graphs. One of the two
// baselines in the paper's evaluation (§IV).
#pragma once

#include "src/common/hashing.h"
#include "src/partition/partitioner.h"

namespace adwise {

class DbhPartitioner final : public SingleEdgePartitioner {
 public:
  explicit DbhPartitioner(std::uint64_t seed = 0) : seed_(seed) {}

  [[nodiscard]] std::string_view name() const override { return "dbh"; }

  [[nodiscard]] PartitionId place(const Edge& e,
                                  const PartitionState& state) override {
    const std::uint32_t du = state.degree(e.u);
    const std::uint32_t dv = state.degree(e.v);
    VertexId hashed = e.u;
    if (dv < du) {
      hashed = e.v;
    } else if (dv == du) {
      hashed = e.u < e.v ? e.u : e.v;  // deterministic tie-break
    }
    return static_cast<PartitionId>(hash_u64(hashed, seed_) % state.k());
  }

 private:
  std::uint64_t seed_;
};

}  // namespace adwise
