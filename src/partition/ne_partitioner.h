// Neighborhood Expansion (NE) — all-edge baseline.
//
// Simplified reimplementation of Zhang et al., "Graph Edge Partitioning via
// Neighborhood Heuristic" (KDD 2017): the whole edge set is buffered, then
// each partition is grown from a seed vertex by repeatedly absorbing the
// boundary vertex with the fewest unassigned external edges. This is the
// "all-edge, super-linear" end of the Fig. 1 landscape: much slower than
// streaming but with substantially lower replication.
//
// Documented simplifications versus the paper: one pass (no sampling /
// restreaming) and a lazy priority on boundary vertices (re-evaluated on
// pop) instead of exact decremental bookkeeping.
#pragma once

#include "src/partition/partitioner.h"

namespace adwise {

class NePartitioner final : public EdgePartitioner {
 public:
  explicit NePartitioner(std::uint64_t seed = 1) : seed_(seed) {}

  [[nodiscard]] std::string_view name() const override { return "ne"; }

  void partition(EdgeStream& stream, PartitionState& state,
                 const AssignmentSink& sink = {}) override;

 private:
  std::uint64_t seed_;
};

}  // namespace adwise
