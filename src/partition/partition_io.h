// Binary persistence for edge-partition assignments.
//
// A partitioning of a billion-edge graph is itself gigabytes of data; the
// text format of examples/partition_file is for interop, this compact
// binary format is for round-tripping between a partitioning run and the
// processing engine (or a later analysis session).
//
// Layout (little-endian): magic "ADWP", u32 version, u32 k,
// u64 count, then count * (u32 u, u32 v, u32 partition).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "src/partition/types.h"

namespace adwise {

struct AssignmentFile {
  std::uint32_t k = 0;
  std::vector<Assignment> assignments;
};

// Throws std::runtime_error on I/O failure.
void write_assignments(std::ostream& out,
                       std::span<const Assignment> assignments,
                       std::uint32_t k);
void write_assignments_file(const std::string& path,
                            std::span<const Assignment> assignments,
                            std::uint32_t k);

// Throws std::runtime_error on bad magic, version, or truncation.
[[nodiscard]] AssignmentFile read_assignments(std::istream& in);
[[nodiscard]] AssignmentFile read_assignments_file(const std::string& path);

}  // namespace adwise
