#include "src/partition/ne_partitioner.h"

#include <queue>
#include <vector>

#include "src/common/rng.h"
#include "src/graph/csr.h"

namespace adwise {

void NePartitioner::partition(EdgeStream& stream, PartitionState& state,
                              const AssignmentSink& sink) {
  // All-edge algorithm: buffer the entire stream.
  std::vector<Edge> edges;
  edges.reserve(stream.size_hint());
  Edge e;
  VertexId max_vertex = 0;
  while (stream.next(e)) {
    edges.push_back(e);
    max_vertex = std::max({max_vertex, e.u, e.v});
  }
  if (edges.empty()) return;

  const Graph graph(std::max<VertexId>(max_vertex + 1, state.num_vertices()),
                    edges);
  const Csr csr(graph);
  const std::size_t m = edges.size();
  const std::uint32_t k = state.k();
  const std::size_t target = (m + k - 1) / k;

  std::vector<bool> edge_assigned(m, false);
  std::vector<std::uint32_t> unassigned_degree(graph.num_vertices(), 0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    unassigned_degree[v] = csr.degree(v);
  }
  Rng rng(seed_);

  auto assign_edge = [&](std::uint32_t id, PartitionId p) {
    edge_assigned[id] = true;
    const Edge& ae = graph.edge(id);
    --unassigned_degree[ae.u];
    if (ae.v != ae.u) --unassigned_degree[ae.v];
    state.assign(ae, p);
    if (sink) sink(ae, p);
  };

  VertexId seed_cursor = 0;
  std::size_t remaining = m;
  for (PartitionId p = 0; p < k && remaining > 0; ++p) {
    const std::size_t budget = (p + 1 == k) ? remaining : target;
    std::size_t placed = 0;

    // Min-heap on (unassigned external degree at push time, vertex). The
    // priority is lazy: entries are re-checked against the live count on pop.
    using Entry = std::pair<std::uint32_t, VertexId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> boundary;
    std::vector<bool> in_core(graph.num_vertices(), false);

    auto expand = [&](VertexId x) {
      in_core[x] = true;
      const auto ids = csr.incident_edges(x);
      const auto nbrs = csr.neighbors(x);
      for (std::size_t i = 0; i < ids.size() && placed < budget; ++i) {
        if (edge_assigned[ids[i]]) continue;
        assign_edge(ids[i], p);
        ++placed;
        --remaining;
        if (!in_core[nbrs[i]]) {
          boundary.emplace(unassigned_degree[nbrs[i]], nbrs[i]);
        }
      }
    };

    while (placed < budget && remaining > 0) {
      if (boundary.empty()) {
        // Fresh seed: first vertex (from a random starting point) that still
        // has unassigned incident edges.
        if (seed_cursor == 0) {
          seed_cursor = static_cast<VertexId>(
              rng.next_below(graph.num_vertices()));
        }
        VertexId probe = seed_cursor;
        for (VertexId step = 0; step < graph.num_vertices(); ++step) {
          if (unassigned_degree[probe] > 0 && !in_core[probe]) break;
          probe = probe + 1 == graph.num_vertices() ? 0 : probe + 1;
        }
        seed_cursor = probe;
        expand(probe);
        continue;
      }
      const auto [stale_priority, x] = boundary.top();
      boundary.pop();
      if (in_core[x]) continue;
      // Lazy priority: if the vertex got cheaper since push, its stale entry
      // still dominates correctness (we only ever absorb boundary vertices).
      if (unassigned_degree[x] == 0) continue;
      expand(x);
    }
  }
}

}  // namespace adwise
