// Name-based construction of the baseline partitioners.
//
// The ADWISE partitioner lives in src/core (it depends on this library);
// bench/bench_common.h exposes a combined registry that includes it.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/partition/partitioner.h"

namespace adwise {

// Supported names: "hash", "1d", "grid", "dbh", "greedy", "hdrf", "ne",
// "ebv", "fennel", "ldg", "2ps". Returns nullptr for unknown names.
[[nodiscard]] std::unique_ptr<EdgePartitioner> make_baseline_partitioner(
    std::string_view name, std::uint32_t k, std::uint64_t seed = 0);

[[nodiscard]] std::vector<std::string_view> baseline_partitioner_names();

// Comma-separated names for error messages ("unknown algorithm" paths).
[[nodiscard]] std::string baseline_partitioner_names_csv();

}  // namespace adwise
