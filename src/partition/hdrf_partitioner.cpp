#include "src/partition/hdrf_partitioner.h"

namespace adwise {

PartitionId HdrfPartitioner::place(const Edge& e, const PartitionState& state) {
  // Partial degrees including the edge under placement, as in the reference
  // implementation (degree counters are bumped before scoring).
  const double du = static_cast<double>(state.degree(e.u)) + 1.0;
  const double dv = static_cast<double>(state.degree(e.v)) + 1.0;
  const double theta_u = du / (du + dv);
  const double theta_v = 1.0 - theta_u;

  const ReplicaSet& ru = state.replicas(e.u);
  const ReplicaSet& rv = state.replicas(e.v);

  const auto maxsize = static_cast<double>(state.max_partition_size());
  const auto minsize = static_cast<double>(state.min_partition_size());
  const double bal_denom = epsilon_ + maxsize - minsize;

  PartitionId best = 0;
  double best_score = -1.0;
  std::uint64_t best_load = 0;
  for (PartitionId p = 0; p < state.k(); ++p) {
    double rep = 0.0;
    if (ru.contains(p)) rep += 1.0 + (1.0 - theta_u);
    if (rv.contains(p)) rep += 1.0 + (1.0 - theta_v);
    const double bal =
        (maxsize - static_cast<double>(state.edges_on(p))) / bal_denom;
    const double score = rep + lambda_ * bal;
    const std::uint64_t load = state.edges_on(p);
    if (score > best_score ||
        (score == best_score && load < best_load)) {
      best = p;
      best_score = score;
      best_load = load;
    }
  }
  return best;
}

}  // namespace adwise
