#include "src/partition/hdrf_partitioner.h"

namespace adwise {

PartitionId HdrfPartitioner::place(const Edge& e, const PartitionState& state) {
  // Partial degrees including the edge under placement, as in the reference
  // implementation (degree counters are bumped before scoring).
  const double du = static_cast<double>(state.degree(e.u)) + 1.0;
  const double dv = static_cast<double>(state.degree(e.v)) + 1.0;
  const double theta_u = du / (du + dv);
  const double theta_v = 1.0 - theta_u;

  const ReplicaSet& ru = state.replicas(e.u);
  const ReplicaSet& rv = state.replicas(e.v);

  const auto maxsize = static_cast<double>(state.max_partition_size());
  const auto minsize = static_cast<double>(state.min_partition_size());
  const double bal_denom = epsilon_ + maxsize - minsize;

  // Single definition of the per-partition score and of the argmax total
  // order (score desc, load asc, id asc) shared by both paths.
  auto score_on = [&](PartitionId p) {
    double rep = 0.0;
    if (ru.contains(p)) rep += 1.0 + (1.0 - theta_u);
    if (rv.contains(p)) rep += 1.0 + (1.0 - theta_v);
    const double bal =
        (maxsize - static_cast<double>(state.edges_on(p))) / bal_denom;
    return rep + lambda_ * bal;
  };

  PartitionId best = kInvalidPartition;
  double best_score = 0.0;
  std::uint64_t best_load = 0;
  auto consider = [&](PartitionId p) {
    const double score = score_on(p);
    const std::uint64_t load = state.edges_on(p);
    if (best == kInvalidPartition || score > best_score ||
        (score == best_score &&
         (load < best_load || (load == best_load && p < best)))) {
      best = p;
      best_score = score;
      best_load = load;
    }
  };

  // The sparse confinement argument below needs lambda * C_bal monotone
  // decreasing in partition load, i.e. lambda >= 0; exotic negative lambdas
  // get the dense scan so every configuration stays decision-correct.
  if (!sparse_ || lambda_ < 0.0) {
    // Dense reference scan over all k partitions.
    for (PartitionId p = 0; p < state.k(); ++p) consider(p);
    return best;
  }

  // Sparse placement: C_rep vanishes outside R_u ∪ R_v, so every other
  // partition scores exactly lambda * C_bal(p) and is dominated by the
  // least-loaded partition under the argmax total order (equal scores imply
  // equal loads, and least_loaded() is the smallest id at minimum load).
  ru.for_each([&](std::uint32_t p) { consider(p); });
  rv.for_each([&](std::uint32_t p) {
    if (!ru.contains(p)) consider(p);
  });
  const PartitionId fallback = state.least_loaded();
  if (!ru.contains(fallback) && !rv.contains(fallback)) consider(fallback);
  return best;
}

}  // namespace adwise
