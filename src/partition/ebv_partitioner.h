// EBV — Efficient and Balanced Vertex-cut streaming edge partitioning
// (Zhang et al., "Efficient and Balanced Vertex-Cut Partitioning", as
// carried by the split-merge-partitioner baseline fleet).
//
// Single-edge streaming rule: edge (u, v) goes to the partition MINIMIZING
//
//   cost(p) = 1{u ∉ R_p} + 1{v ∉ R_p}
//           + alpha * |P_p|      * k / (assigned + 1)
//           + beta  * |V(P_p)|   * k / (seen_vertices + 1)
//
// the replication term counts the new replicas the placement would create;
// the two normalized balance terms charge the partition's share of edges
// and of vertex replicas relative to a perfectly even split of everything
// streamed so far. alpha = beta = 1.0 (the authors' defaults). Unlike HDRF
// the vertex-balance term needs per-partition vertex counts, which
// PartitionState does not track — partition() maintains them from the
// AssignEffect replica deltas, rebuilding from the replica sets at entry so
// restreaming, resumed and pre-seeded states all start consistent (the
// counts are derived data, which also keeps checkpoints blob-free exactly
// like the stateless single-edge baselines).
#pragma once

#include <vector>

#include "src/partition/partitioner.h"

namespace adwise {

class EbvPartitioner final : public EdgePartitioner {
 public:
  explicit EbvPartitioner(double alpha = 1.0, double beta = 1.0)
      : alpha_(alpha), beta_(beta) {}

  [[nodiscard]] std::string_view name() const override { return "ebv"; }

  void partition(EdgeStream& stream, PartitionState& state,
                 const AssignmentSink& sink = {}) override;

  // Derived per-partition vertex counts rebuild at partition() entry, so
  // the checkpoint blob is empty — same contract as SingleEdgePartitioner.
  bool enable_checkpoints(CheckpointHook hook) override {
    ckpt_ = std::move(hook);
    return true;
  }
  bool restore_algorithm_state(std::span<const std::byte> state) override {
    return state.empty();
  }

  // The placement rule alone (unit-testable, reads only state + counts).
  [[nodiscard]] PartitionId place(const Edge& e, const PartitionState& state,
                                  const std::vector<std::uint64_t>&
                                      vertex_counts,
                                  std::uint64_t seen_vertices) const;

 private:
  double alpha_;
  double beta_;
  CheckpointHook ckpt_;
};

}  // namespace adwise
