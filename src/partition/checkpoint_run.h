// Checkpointed partitioning driver — glue between an EdgePartitioner's
// CheckpointHook and the durable .adwk checkpoint files.
//
// run_with_checkpoints() wraps a single partition() call so that every
// `every` assignments a complete checkpoint (run metadata, PartitionState,
// algorithm state blob) is written atomically to disk, and a run restored
// from such a checkpoint continues bit-identically — same placements, same
// counter traces — as if it had never been interrupted. The caller supplies
// the durability boundary for its own output (durable_sink_bytes): it is
// invoked immediately before each checkpoint is written and must make all
// sink output produced so far durable (flush + fsync), returning the number
// of durable bytes, so a resumer can truncate a partially written output
// file back to exactly the data the checkpoint accounts for.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "src/graph/edge_stream.h"
#include "src/io/checkpoint.h"
#include "src/partition/partition_state.h"
#include "src/partition/partitioner.h"

namespace adwise {

namespace obs {
struct ObsSink;
class Counter;
class Histogram;
class TraceSession;
}  // namespace obs

struct CheckpointRunOptions {
  // Destination of the (single, atomically replaced) checkpoint file.
  std::string checkpoint_path;
  // Checkpoint after every `every` assignments. Must be > 0.
  std::uint64_t every = std::uint64_t{1} << 16;
  // Overlap checkpoint I/O with partitioning: the partitioning thread only
  // snapshots the state; CRC, write, fsync and rename happen on a
  // DurableCheckpointWriter thread. A crash can then lose at most the
  // newest in-flight checkpoint (the previous one stays valid — same
  // recovery contract, older recovery point). When true, on_checkpoint
  // fires on the writer thread and MUST NOT throw.
  bool async_io = false;
  // Makes the caller's sink output durable and returns the durable byte
  // count, recorded as CheckpointMeta::sink_bytes. Optional: when absent,
  // sink_bytes is 0 and resumers must treat the output as rebuildable.
  // Always invoked on the partitioning thread at the checkpoint boundary,
  // BEFORE the checkpoint that accounts for those bytes can hit the disk.
  std::function<std::uint64_t()> durable_sink_bytes;
  // Called after the n-th checkpoint of THIS process has been durably
  // written (1-based). Test hook: the SIGKILL crash tests raise their
  // signal here. With async_io it runs on the writer thread.
  std::function<void(std::uint64_t ordinal)> on_checkpoint;
  // Optional observability sink; must outlive the run. Records snapshot
  // time (partitioning thread), durable-commit time and queue stalls
  // (writer handoff), plus checkpoint_write trace spans on whichever
  // thread performs the durable write. Null = zero instrumentation.
  obs::ObsSink* obs = nullptr;
};

// Background checkpoint committer: a single worker thread that turns
// Checkpoint snapshots into durable .adwk files (CRC + write + fsync +
// atomic rename) while the caller keeps partitioning. Handoff is a
// blocking single slot — at most one snapshot is queued behind the one
// being written, so memory stays bounded and checkpoints land in order.
// Writer-side failures (disk full, permission) are captured and rethrown
// on the caller's thread from the next write() or flush().
class DurableCheckpointWriter {
 public:
  // `on_commit`, when non-null, runs on the writer thread after each
  // durable commit with the 1-based ordinal; it must not throw. `obs`,
  // when non-null, must outlive the writer and receives commit latency,
  // queue-stall counters and checkpoint_write trace spans.
  DurableCheckpointWriter(std::string path,
                          std::function<void(std::uint64_t)> on_commit = {},
                          obs::ObsSink* obs = nullptr);
  // Drains any handed-off snapshot, then joins. Errors discovered during
  // the drain are swallowed (call flush() first to observe them).
  ~DurableCheckpointWriter();

  DurableCheckpointWriter(const DurableCheckpointWriter&) = delete;
  DurableCheckpointWriter& operator=(const DurableCheckpointWriter&) = delete;

  // Hands a snapshot to the writer thread, blocking until the previous
  // snapshot (if any) is durable. Rethrows earlier writer-side errors.
  void write(Checkpoint ckpt);
  // Blocks until every handed-off snapshot is durable; rethrows errors.
  void flush();
  // Number of checkpoints durably committed so far.
  [[nodiscard]] std::uint64_t committed() const;

 private:
  void worker_loop();

  std::string path_;
  std::function<void(std::uint64_t)> on_commit_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool has_job_ = false;
  bool writing_ = false;
  bool stop_ = false;
  Checkpoint job_;
  std::uint64_t committed_ = 0;
  std::exception_ptr error_;
  // Observability handles resolved at construction (null without a sink).
  obs::Counter* m_commits_ = nullptr;
  obs::Histogram* m_commit_ns_ = nullptr;
  obs::Counter* m_queue_stalls_ = nullptr;
  obs::Counter* m_queue_stall_ns_ = nullptr;
  obs::TraceSession* trace_ = nullptr;
  std::thread thread_;
};

// Throws std::runtime_error (mentioning every mismatching field) unless the
// checkpoint was taken by a run with this algorithm name, partition count
// and vertex count — a checkpoint must never be silently applied to the
// wrong run.
void validate_checkpoint(const CheckpointMeta& meta,
                         std::string_view algorithm, std::uint32_t k,
                         std::uint64_t num_vertices);

// Advances the stream past its first n edges; throws std::runtime_error if
// the stream ends earlier (the checkpoint does not belong to this input).
void skip_edges(EdgeStream& stream, std::uint64_t n);

// Runs partitioner over stream with durable checkpoints (written inline at
// each boundary, or overlapped via a DurableCheckpointWriter when
// opts.async_io is set). When resume is
// non-null it must already be validated against this run's shape; the
// PartitionState and algorithm state are restored and the stream is
// advanced past meta.edges_consumed edges before partitioning continues.
// Throws std::runtime_error when the partitioner rejects checkpointing
// under its current configuration (see AdwisePartitioner's preconditions).
// Returns the number of checkpoints written by this call.
std::uint64_t run_with_checkpoints(EdgePartitioner& partitioner,
                                   EdgeStream& stream, PartitionState& state,
                                   const AssignmentSink& sink,
                                   const CheckpointRunOptions& opts,
                                   const Checkpoint* resume = nullptr);

}  // namespace adwise
