// Checkpointed partitioning driver — glue between an EdgePartitioner's
// CheckpointHook and the durable .adwk checkpoint files.
//
// run_with_checkpoints() wraps a single partition() call so that every
// `every` assignments a complete checkpoint (run metadata, PartitionState,
// algorithm state blob) is written atomically to disk, and a run restored
// from such a checkpoint continues bit-identically — same placements, same
// counter traces — as if it had never been interrupted. The caller supplies
// the durability boundary for its own output (durable_sink_bytes): it is
// invoked immediately before each checkpoint is written and must make all
// sink output produced so far durable (flush + fsync), returning the number
// of durable bytes, so a resumer can truncate a partially written output
// file back to exactly the data the checkpoint accounts for.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "src/common/watchdog.h"
#include "src/graph/edge_stream.h"
#include "src/io/checkpoint.h"
#include "src/partition/partition_state.h"
#include "src/partition/partitioner.h"

namespace adwise {

namespace obs {
struct ObsSink;
class Counter;
class Histogram;
class TraceSession;
}  // namespace obs

struct CheckpointRunOptions {
  // Destination of the (single, atomically replaced) checkpoint file.
  std::string checkpoint_path;
  // Checkpoint after every `every` assignments. Must be > 0.
  std::uint64_t every = std::uint64_t{1} << 16;
  // Overlap checkpoint I/O with partitioning: the partitioning thread only
  // snapshots the state; CRC, write, fsync and rename happen on a
  // DurableCheckpointWriter thread. A crash can then lose at most the
  // newest in-flight checkpoint (the previous one stays valid — same
  // recovery contract, older recovery point). When true, on_checkpoint
  // fires on the writer thread and MUST NOT throw.
  bool async_io = false;
  // Makes the caller's sink output durable and returns the durable byte
  // count, recorded as CheckpointMeta::sink_bytes. Optional: when absent,
  // sink_bytes is 0 and resumers must treat the output as rebuildable.
  // Always invoked on the partitioning thread at the checkpoint boundary,
  // BEFORE the checkpoint that accounts for those bytes can hit the disk.
  std::function<std::uint64_t()> durable_sink_bytes;
  // Called after the n-th checkpoint of THIS process has been durably
  // written (1-based). Test hook: the SIGKILL crash tests raise their
  // signal here. With async_io it runs on the writer thread.
  std::function<void(std::uint64_t ordinal)> on_checkpoint;
  // Optional observability sink; must outlive the run. Records snapshot
  // time (partitioning thread), durable-commit time and queue stalls
  // (writer handoff), plus checkpoint_write trace spans on whichever
  // thread performs the durable write. Null = zero instrumentation.
  obs::ObsSink* obs = nullptr;
  // Checkpoint write failure policy. Degraded (the default): a failed
  // durable checkpoint write logs, bumps checkpoint.write_failures /
  // checkpoint.skipped and the run keeps partitioning — the next boundary
  // tries again; the recovery point just ages. Strict: any checkpoint
  // write failure aborts the run (the pre-existing behavior). Failures of
  // durable_sink_bytes always abort in both modes: the checkpoint
  // accounts for sink output, so a sink that cannot be made durable
  // invalidates every future recovery point.
  bool strict = false;
  // Optional stall watchdog; must outlive the run. When set with
  // async_io, the DurableCheckpointWriter registers a heartbeat handle:
  // if a durable commit stalls past the watchdog deadline, the
  // partitioning thread stops handing off to the writer (permanently —
  // the wedged thread may never come back) and commits checkpoints
  // in-band on its own thread instead, with a distinct temp-file suffix
  // so a later-waking writer can never interleave with an in-band commit.
  Watchdog* watchdog = nullptr;
  // Failpoints + retry policy for checkpoint file writes only (the
  // tmp_suffix field is ignored — the run chooses suffixes). This is how
  // tests target the checkpoint path without faulting the caller's sink.
  AtomicFileWriter::Options ckpt_io;
};

// Background checkpoint committer: a single worker thread that turns
// Checkpoint snapshots into durable .adwk files (CRC + write + fsync +
// atomic rename) while the caller keeps partitioning. Handoff is a
// blocking single slot — at most one snapshot is queued behind the one
// being written, so memory stays bounded and checkpoints land in order.
// Writer-side failures (disk full, permission) are captured and rethrown
// on the caller's thread from the next write() or flush().
class DurableCheckpointWriter {
 public:
  // `on_commit`, when non-null, runs on the writer thread after each
  // durable commit with the 1-based ordinal; it must not throw. `obs`,
  // when non-null, must outlive the writer and receives commit latency,
  // queue-stall counters and checkpoint_write trace spans. `watchdog`,
  // when non-null, must outlive the writer and watches each in-flight
  // durable commit: past the stall deadline the writer is marked
  // stalled() — write() callers blocked on the wedged thread wake up and
  // are told the snapshot was not accepted. `io` carries failpoints and
  // retry policy for the checkpoint file writes.
  DurableCheckpointWriter(std::string path,
                          std::function<void(std::uint64_t)> on_commit = {},
                          obs::ObsSink* obs = nullptr,
                          Watchdog* watchdog = nullptr,
                          AtomicFileWriter::Options io = {});
  // Drains any handed-off snapshot, then joins. Errors discovered during
  // the drain are swallowed (call flush() first to observe them). NOTE: a
  // writer thread wedged in a syscall cannot be joined — the chaos tests
  // only simulate stalls with gates that eventually open.
  ~DurableCheckpointWriter();

  DurableCheckpointWriter(const DurableCheckpointWriter&) = delete;
  DurableCheckpointWriter& operator=(const DurableCheckpointWriter&) = delete;

  // Hands a snapshot to the writer thread, blocking until the previous
  // snapshot (if any) is durable. Rethrows earlier writer-side errors.
  // Returns false — with the snapshot NOT queued — when the writer is
  // stalled past the watchdog deadline; the caller owns degradation
  // (skip, or commit in-band via write_checkpoint_file).
  bool write(Checkpoint ckpt);
  // Blocks until every handed-off snapshot is durable; rethrows errors.
  // Throws std::runtime_error if the writer stalled with a snapshot still
  // in flight — the final handoff may never have become durable, and that
  // must surface at shutdown rather than be silently dropped.
  void flush();
  // Number of checkpoints durably committed so far.
  [[nodiscard]] std::uint64_t committed() const;
  // Sticky: the watchdog flagged a durable commit as stalled. Once set,
  // callers should stop handing off snapshots (the thread may be wedged
  // in a syscall forever).
  [[nodiscard]] bool stalled() const noexcept {
    return stalled_.load(std::memory_order_acquire);
  }

 private:
  void worker_loop();

  std::string path_;
  std::function<void(std::uint64_t)> on_commit_;
  AtomicFileWriter::Options io_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool has_job_ = false;
  bool writing_ = false;
  bool stop_ = false;
  Checkpoint job_;
  std::uint64_t committed_ = 0;
  std::exception_ptr error_;
  std::atomic<bool> stalled_{false};
  Watchdog::Handle* wd_ = nullptr;
  // Observability handles resolved at construction (null without a sink).
  obs::Counter* m_commits_ = nullptr;
  obs::Histogram* m_commit_ns_ = nullptr;
  obs::Counter* m_queue_stalls_ = nullptr;
  obs::Counter* m_queue_stall_ns_ = nullptr;
  obs::Counter* m_watchdog_stalls_ = nullptr;
  obs::TraceSession* trace_ = nullptr;
  std::thread thread_;
};

// Throws std::runtime_error (mentioning every mismatching field) unless the
// checkpoint was taken by a run with this algorithm name, partition count
// and vertex count — a checkpoint must never be silently applied to the
// wrong run.
void validate_checkpoint(const CheckpointMeta& meta,
                         std::string_view algorithm, std::uint32_t k,
                         std::uint64_t num_vertices);

// Advances the stream past its first n edges; throws std::runtime_error if
// the stream ends earlier (the checkpoint does not belong to this input).
void skip_edges(EdgeStream& stream, std::uint64_t n);

// Runs partitioner over stream with durable checkpoints (written inline at
// each boundary, or overlapped via a DurableCheckpointWriter when
// opts.async_io is set). Checkpoint write failures follow opts.strict:
// degraded (default) logs + counts and retries at the next boundary,
// strict aborts; sink durability failures always abort. When resume is
// non-null it must already be validated against this run's shape; the
// PartitionState and algorithm state are restored and the stream is
// advanced past meta.edges_consumed edges before partitioning continues.
// Throws std::runtime_error when the partitioner rejects checkpointing
// under its current configuration (see AdwisePartitioner's preconditions).
// Returns the number of checkpoints written by this call.
std::uint64_t run_with_checkpoints(EdgePartitioner& partitioner,
                                   EdgeStream& stream, PartitionState& state,
                                   const AssignmentSink& sink,
                                   const CheckpointRunOptions& opts,
                                   const Checkpoint* resume = nullptr);

}  // namespace adwise
