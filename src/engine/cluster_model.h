// Cluster cost model for the graph-processing engine simulator.
//
// The paper runs GrapH on 8 machines (8 cores each) connected by 1-Gigabit
// Ethernet. This repository executes the same vertex programs in-process
// with exact message/compute accounting and converts the counts to seconds
// via this model (DESIGN.md §4 explains why that preserves the
// partitioning-quality → processing-latency coupling).
#pragma once

#include <cstdint>
#include <vector>

namespace adwise {

struct ClusterModel {
  std::uint32_t num_machines = 8;
  // Per-machine full-duplex link bandwidth (1 GbE ≈ 125 MB/s).
  double bandwidth_bytes_per_sec = 125.0e6;
  // Serialization/framing overhead charged per network message.
  double per_message_overhead_bytes = 48.0;
  // Seconds per elementary edge/message operation (gather, scatter, apply
  // per inbox entry). ~4 ns models a few-GHz core doing cache-resident work.
  double per_edge_op_seconds = 4.0e-9;
  // Seconds per applied vertex (apply dispatch, activation bookkeeping).
  double per_vertex_op_seconds = 20.0e-9;
  // Synchronization barrier between supersteps (BSP).
  double barrier_seconds = 2.0e-3;
};

// Accounting for one superstep, aggregated per machine by the engine.
struct MachineLoad {
  std::uint64_t compute_ops = 0;
  std::uint64_t applied_vertices = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

// Simulated duration of a superstep: stragglers dominate, so both the
// compute and the network phase are max-over-machines; they do not overlap
// (BSP phases), and every superstep pays one barrier.
[[nodiscard]] double superstep_seconds(const ClusterModel& model,
                                       const std::vector<MachineLoad>& loads);

// Cluster model calibrated for in-process benchmarking. The default
// ClusterModel mirrors the paper's 8-node 1-GbE testbed; however, this
// repository's partitioners run in memory without the disk/network ingest of
// the paper's loader and are therefore orders of magnitude faster relative
// to graph size. To preserve the paper's *trade-off shape* — single-edge
// partitioning latency : 300-iteration PageRank processing latency of
// roughly 1:10-50 — the calibrated model scales the simulated cluster's
// rates up by a constant. Absolute seconds are not comparable to the paper;
// ratios and crossovers are (see EXPERIMENTS.md, "Calibration").
[[nodiscard]] ClusterModel calibrated_cluster_model();

// Cumulative statistics of an engine run.
struct RunStats {
  std::uint64_t supersteps = 0;
  double seconds = 0.0;
  std::uint64_t network_messages = 0;
  std::uint64_t network_bytes = 0;
  std::uint64_t local_messages = 0;
  std::uint64_t total_applies = 0;

  RunStats& operator+=(const RunStats& other) {
    supersteps += other.supersteps;
    seconds += other.seconds;
    network_messages += other.network_messages;
    network_bytes += other.network_bytes;
    local_messages += other.local_messages;
    total_applies += other.total_applies;
    return *this;
  }
};

}  // namespace adwise
