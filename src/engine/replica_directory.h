// Vertex replica placement derived from an edge partitioning.
//
// Partitions map onto machines round-robin (p mod M, matching the paper's 32
// partitions on 8 machines). A vertex is replicated on every machine that
// holds at least one of its incident edges; one replica is designated master
// (it aggregates messages and applies the vertex program). The machine-level
// replica sets determine all replica-synchronization traffic — the channel
// through which partitioning quality becomes processing latency.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/replica_set.h"
#include "src/graph/graph.h"
#include "src/partition/types.h"

namespace adwise {

class ReplicaDirectory {
 public:
  ReplicaDirectory(std::span<const Assignment> assignments,
                   VertexId num_vertices, std::uint32_t num_machines);

  [[nodiscard]] std::uint32_t num_machines() const { return num_machines_; }

  [[nodiscard]] std::uint32_t machine_of_partition(PartitionId p) const {
    return p % num_machines_;
  }

  // Machines holding a replica of v (empty for isolated vertices).
  [[nodiscard]] const ReplicaSet& machines(VertexId v) const {
    return machines_[v];
  }

  // Master machine of v; undefined (0) for isolated vertices.
  [[nodiscard]] std::uint32_t master_of(VertexId v) const {
    return master_[v];
  }

  // Mean machine-level replica count over vertices with >= 1 replica.
  [[nodiscard]] double machine_replication_degree() const;

 private:
  std::uint32_t num_machines_;
  std::vector<ReplicaSet> machines_;
  std::vector<std::uint32_t> master_;
};

}  // namespace adwise
