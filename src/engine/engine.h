// Vertex-cut BSP graph-processing engine (simulator).
//
// Executes a vertex program over a partitioned graph exactly as a
// PowerGraph/GrapH-style distributed engine would, while charging every
// network byte to a ClusterModel instead of real sockets:
//
//   superstep =  apply   — masters aggregate their inbox and update values
//              + sync    — changed values broadcast master -> mirrors
//                          ((|machines(v)|-1) messages: THE channel through
//                           which replication degree becomes latency)
//              + scatter — every machine walks the arcs of active vertices
//                          it hosts and emits messages toward the targets'
//                          masters (sender-side combining when the program
//                          provides a combiner).
//
// Program contract (duck-typed; see src/apps/ for four implementations):
//   using Value;  using Message;
//   static constexpr bool kHasCombiner;
//   Value init(VertexId v, std::uint32_t degree) const;
//   Value apply(VertexId v, const Value& current,
//               std::span<const Message> inbox, ApplyInfo* info,
//               EngineContext& ctx) const/non-const;
//   void scatter(VertexId u, const Value& value, VertexId neighbor,
//                EngineContext& ctx, EmitFn emit) — emit(Message) 0+ times;
//   Message combine(Message a, const Message& b) const;       (if combiner)
//   static std::size_t message_bytes(const Message&);
//   static std::size_t value_bytes(const Value&);
#pragma once

#include <cassert>
#include <span>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/engine/cluster_model.h"
#include "src/engine/replica_directory.h"
#include "src/graph/graph.h"
#include "src/partition/types.h"

namespace adwise {

struct ApplyInfo {
  bool activate = false;       // vertex scatters this superstep
  bool value_changed = true;   // mirrors need the new value (sync traffic)
};

struct EngineContext {
  std::uint64_t superstep = 0;
  Rng* rng = nullptr;
};

template <typename Program>
class Engine {
 public:
  using Value = typename Program::Value;
  using Message = typename Program::Message;

  Engine(const Graph& graph, std::span<const Assignment> assignments,
         ClusterModel model, Program program, std::uint64_t seed = 42)
      : model_(model),
        program_(std::move(program)),
        directory_(assignments, graph.num_vertices(), model.num_machines),
        num_vertices_(graph.num_vertices()),
        rng_(seed) {
    build_machine_graphs(assignments);
    values_.reserve(num_vertices_);
    const auto degrees = graph.degrees();
    for (VertexId v = 0; v < num_vertices_; ++v) {
      values_.push_back(program_.init(v, degrees[v]));
    }
    active_flag_.assign(num_vertices_, 0);
    inbox_.assign(num_vertices_, {});
    inbox_flag_.assign(num_vertices_, 0);
    if constexpr (Program::kHasCombiner) {
      staged_values_.assign(model_.num_machines, {});
      staged_epoch_.assign(model_.num_machines, {});
      staged_targets_.assign(model_.num_machines, {});
      for (std::uint32_t m = 0; m < model_.num_machines; ++m) {
        staged_values_[m].resize(num_vertices_);
        staged_epoch_[m].assign(num_vertices_, 0);
      }
    }
  }

  // --- Pre-run control -------------------------------------------------------

  void activate(VertexId v) {
    if (!active_flag_[v]) {
      active_flag_[v] = 1;
      active_list_.push_back(v);
    }
  }

  void activate_all() {
    for (VertexId v = 0; v < num_vertices_; ++v) {
      if (!directory_.machines(v).empty()) activate(v);
    }
  }

  // Seeds a message into v's inbox without network cost (query injection).
  void deliver_local(VertexId v, Message msg) {
    inbox_[v].push_back(std::move(msg));
    if (!inbox_flag_[v]) {
      inbox_flag_[v] = 1;
      inbox_targets_.push_back(v);
    }
  }

  [[nodiscard]] bool idle() const {
    return active_list_.empty() && inbox_targets_.empty();
  }

  // --- Execution --------------------------------------------------------------

  // Runs up to max_supersteps (or until idle); resumable across calls.
  RunStats run(std::uint64_t max_supersteps) {
    RunStats stats;
    for (std::uint64_t step = 0; step < max_supersteps && !idle(); ++step) {
      run_superstep(stats);
    }
    return stats;
  }

  // --- Inspection ---------------------------------------------------------------

  [[nodiscard]] const std::vector<Value>& values() const { return values_; }
  [[nodiscard]] Value& value_mut(VertexId v) { return values_[v]; }
  [[nodiscard]] const ReplicaDirectory& directory() const { return directory_; }
  [[nodiscard]] Program& program() { return program_; }
  [[nodiscard]] std::uint64_t superstep() const { return superstep_; }
  [[nodiscard]] std::size_t active_count() const { return active_list_.size(); }

  // Per-machine loads accumulated over every superstep so far — straggler
  // analysis (max/mean compute and traffic across machines).
  [[nodiscard]] const std::vector<MachineLoad>& cumulative_loads() const {
    return cumulative_loads_;
  }

 private:
  struct MachineGraph {
    std::vector<std::size_t> offsets;  // per vertex
    std::vector<VertexId> targets;

    [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
      return {&targets[offsets[v]], offsets[v + 1] - offsets[v]};
    }
  };

  void build_machine_graphs(std::span<const Assignment> assignments) {
    const std::uint32_t num_m = model_.num_machines;
    machine_graphs_.resize(num_m);
    std::vector<std::vector<std::size_t>> counts(
        num_m, std::vector<std::size_t>(num_vertices_ + 1, 0));
    for (const Assignment& a : assignments) {
      const std::uint32_t m = directory_.machine_of_partition(a.partition);
      ++counts[m][a.edge.u + 1];
      if (a.edge.v != a.edge.u) ++counts[m][a.edge.v + 1];
    }
    for (std::uint32_t m = 0; m < num_m; ++m) {
      auto& mg = machine_graphs_[m];
      mg.offsets = std::move(counts[m]);
      for (std::size_t i = 1; i < mg.offsets.size(); ++i) {
        mg.offsets[i] += mg.offsets[i - 1];
      }
      mg.targets.resize(mg.offsets.back());
    }
    std::vector<std::vector<std::size_t>> cursor(num_m);
    for (std::uint32_t m = 0; m < num_m; ++m) {
      cursor[m].assign(machine_graphs_[m].offsets.begin(),
                       machine_graphs_[m].offsets.end() - 1);
    }
    for (const Assignment& a : assignments) {
      const std::uint32_t m = directory_.machine_of_partition(a.partition);
      auto& mg = machine_graphs_[m];
      mg.targets[cursor[m][a.edge.u]++] = a.edge.v;
      if (a.edge.v != a.edge.u) mg.targets[cursor[m][a.edge.v]++] = a.edge.u;
    }
  }

  void run_superstep(RunStats& stats) {
    loads_.assign(model_.num_machines, MachineLoad{});
    EngineContext ctx{superstep_, &rng_};

    // ---- Apply phase: masters process inboxes and active vertices. ----
    // The two seed lists may overlap; active_flag_/inbox_flag_ dedupe.
    apply_targets_.clear();
    for (const VertexId v : inbox_targets_) apply_targets_.push_back(v);
    for (const VertexId v : active_list_) {
      if (!inbox_flag_[v]) apply_targets_.push_back(v);
    }
    for (const VertexId v : active_list_) active_flag_[v] = 0;
    active_list_.clear();

    for (const VertexId v : apply_targets_) {
      const std::uint32_t master = directory_.master_of(v);
      auto& load = loads_[master];
      load.compute_ops += 1 + inbox_[v].size();
      load.applied_vertices += 1;
      ++stats.total_applies;

      ApplyInfo info;
      Value next = program_.apply(v, values_[v], std::span(inbox_[v]), &info, ctx);
      values_[v] = std::move(next);
      inbox_[v].clear();
      inbox_flag_[v] = 0;

      if (info.value_changed) charge_value_sync(v, master, stats);
      if (info.activate) activate(v);
    }
    inbox_targets_.clear();

    // ---- Scatter phase: every machine walks its arcs of active vertices. ----
    for (const VertexId v : active_list_) {
      const Value& value = values_[v];
      directory_.machines(v).for_each([&](std::uint32_t m) {
        const auto nbrs = machine_graphs_[m].neighbors(v);
        loads_[m].compute_ops += nbrs.size();
        for (const VertexId t : nbrs) {
          program_.scatter(v, value, t, ctx, [&](Message msg) {
            route_message(m, t, std::move(msg), stats);
          });
        }
      });
    }
    if constexpr (Program::kHasCombiner) flush_staging(stats);

    if (cumulative_loads_.size() != loads_.size()) {
      cumulative_loads_.assign(loads_.size(), MachineLoad{});
    }
    for (std::size_t m = 0; m < loads_.size(); ++m) {
      cumulative_loads_[m].compute_ops += loads_[m].compute_ops;
      cumulative_loads_[m].applied_vertices += loads_[m].applied_vertices;
      cumulative_loads_[m].bytes_in += loads_[m].bytes_in;
      cumulative_loads_[m].bytes_out += loads_[m].bytes_out;
    }
    stats.seconds += superstep_seconds(model_, loads_);
    ++stats.supersteps;
    ++superstep_;
  }

  void charge_value_sync(VertexId v, std::uint32_t master, RunStats& stats) {
    const ReplicaSet& machines = directory_.machines(v);
    if (machines.size() <= 1) return;
    const std::uint64_t copies = machines.size() - 1;
    const auto bytes = static_cast<std::uint64_t>(
        Program::value_bytes(values_[v]) + model_.per_message_overhead_bytes);
    loads_[master].bytes_out += copies * bytes;
    machines.for_each([&](std::uint32_t m) {
      if (m != master) loads_[m].bytes_in += bytes;
    });
    stats.network_messages += copies;
    stats.network_bytes += copies * bytes;
  }

  void route_message(std::uint32_t source_machine, VertexId target,
                     Message msg, RunStats& stats) {
    if constexpr (Program::kHasCombiner) {
      // Sender-side combining: one message per (machine, target) pair.
      auto& epoch = staged_epoch_[source_machine];
      auto& vals = staged_values_[source_machine];
      if (epoch[target] != staging_epoch_current_) {
        epoch[target] = staging_epoch_current_;
        vals[target] = std::move(msg);
        staged_targets_[source_machine].push_back(target);
      } else {
        vals[target] = program_.combine(std::move(vals[target]), msg);
      }
      loads_[source_machine].compute_ops += 1;
    } else {
      deliver(source_machine, target, std::move(msg), stats);
    }
  }

  void deliver(std::uint32_t source_machine, VertexId target, Message msg,
               RunStats& stats) {
    const std::uint32_t dest = directory_.master_of(target);
    if (dest != source_machine) {
      const auto bytes = static_cast<std::uint64_t>(
          Program::message_bytes(msg) + model_.per_message_overhead_bytes);
      loads_[source_machine].bytes_out += bytes;
      loads_[dest].bytes_in += bytes;
      stats.network_bytes += bytes;
      ++stats.network_messages;
    } else {
      ++stats.local_messages;
    }
    deliver_local(target, std::move(msg));
  }

  void flush_staging(RunStats& stats) {
    for (std::uint32_t m = 0; m < model_.num_machines; ++m) {
      for (const VertexId t : staged_targets_[m]) {
        deliver(m, t, std::move(staged_values_[m][t]), stats);
      }
      staged_targets_[m].clear();
    }
    ++staging_epoch_current_;
  }

  ClusterModel model_;
  Program program_;
  ReplicaDirectory directory_;
  VertexId num_vertices_;
  Rng rng_;

  std::vector<MachineGraph> machine_graphs_;
  std::vector<Value> values_;

  std::vector<std::uint8_t> active_flag_;
  std::vector<VertexId> active_list_;
  std::vector<std::vector<Message>> inbox_;
  std::vector<std::uint8_t> inbox_flag_;
  std::vector<VertexId> inbox_targets_;
  std::vector<VertexId> apply_targets_;

  // Combiner staging (dense per machine, epoch-tagged).
  std::vector<std::vector<Message>> staged_values_;
  std::vector<std::vector<std::uint32_t>> staged_epoch_;
  std::vector<std::vector<VertexId>> staged_targets_;
  std::uint32_t staging_epoch_current_ = 1;

  std::vector<MachineLoad> loads_;
  std::vector<MachineLoad> cumulative_loads_;
  std::uint64_t superstep_ = 0;
};

}  // namespace adwise
