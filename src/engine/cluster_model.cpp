#include "src/engine/cluster_model.h"

#include <algorithm>

namespace adwise {

ClusterModel calibrated_cluster_model() {
  ClusterModel model;
  model.num_machines = 8;
  model.bandwidth_bytes_per_sec = 1.5e9;
  model.per_message_overhead_bytes = 24.0;
  model.per_edge_op_seconds = 5.0e-10;
  model.per_vertex_op_seconds = 2.0e-9;
  model.barrier_seconds = 5.0e-5;
  return model;
}

double superstep_seconds(const ClusterModel& model,
                         const std::vector<MachineLoad>& loads) {
  double max_compute = 0.0;
  double max_network = 0.0;
  for (const MachineLoad& load : loads) {
    const double compute =
        static_cast<double>(load.compute_ops) * model.per_edge_op_seconds +
        static_cast<double>(load.applied_vertices) *
            model.per_vertex_op_seconds;
    const double network =
        static_cast<double>(std::max(load.bytes_in, load.bytes_out)) /
        model.bandwidth_bytes_per_sec;
    max_compute = std::max(max_compute, compute);
    max_network = std::max(max_network, network);
  }
  return max_compute + max_network + model.barrier_seconds;
}

}  // namespace adwise
