#include "src/engine/replica_directory.h"

#include "src/common/hashing.h"

namespace adwise {

ReplicaDirectory::ReplicaDirectory(std::span<const Assignment> assignments,
                                   VertexId num_vertices,
                                   std::uint32_t num_machines)
    : num_machines_(num_machines),
      machines_(num_vertices),
      master_(num_vertices, 0) {
  for (const Assignment& a : assignments) {
    const std::uint32_t m = machine_of_partition(a.partition);
    machines_[a.edge.u].insert(m);
    machines_[a.edge.v].insert(m);
  }
  // Master selection: a deterministic hash spreads masters across replicas
  // so no machine concentrates the apply work.
  for (VertexId v = 0; v < num_vertices; ++v) {
    const ReplicaSet& set = machines_[v];
    if (set.empty()) continue;
    const std::uint32_t pick =
        static_cast<std::uint32_t>(hash_u64(v, 0xadce) % set.size());
    std::uint32_t index = 0;
    set.for_each([&](std::uint32_t m) {
      if (index++ == pick) master_[v] = m;
    });
  }
}

double ReplicaDirectory::machine_replication_degree() const {
  std::uint64_t total = 0;
  std::uint64_t counted = 0;
  for (const ReplicaSet& set : machines_) {
    if (set.empty()) continue;
    total += set.size();
    ++counted;
  }
  return counted == 0
             ? 0.0
             : static_cast<double>(total) / static_cast<double>(counted);
}

}  // namespace adwise
