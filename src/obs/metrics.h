// Lock-free runtime metrics: counters, gauges and log2 histograms behind a
// named registry.
//
// Hot-path contract: instrumented code resolves its Counter&/Histogram&
// references ONCE (registration takes a mutex and a linear name scan) and
// then updates them with single relaxed atomic RMWs — no locks, no
// allocation, no branches beyond a null check on the optional ObsSink.
// Snapshot/write_json are called off the hot path (end of run, per bench
// capture) and read the same atomics relaxed; totals are exact once the
// producing threads have been joined or quiesced.
//
// Compile-out: configuring with -DADWISE_OBS=OFF defines ADWISE_OBS_OFF and
// swaps every type below for an empty-inline shell with the same API, so
// instrumentation sites compile away entirely (the ISSUE's "compile-out
// path"); call sites need no #ifdefs.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/stats.h"

#if defined(ADWISE_OBS_OFF)
#define ADWISE_OBS_ENABLED 0
#else
#define ADWISE_OBS_ENABLED 1
#endif

namespace adwise::obs {

// Enough log2 buckets to cover nanosecond latencies up to ~days; the Report
// batch-size histogram's 16 buckets embed as a prefix of the same rule
// (log2_bucket in stats.h).
inline constexpr std::size_t kHistBuckets = 48;

// One entry of a point-in-time registry snapshot.
struct MetricEntry {
  std::string name;
  enum class Kind { kCounter, kGauge, kHistogram } kind = Kind::kCounter;
  double value = 0.0;  // counter total / gauge value / histogram sum
  // Histogram-only: total samples and per-bucket counts (log2 buckets).
  std::uint64_t count = 0;
  std::vector<std::uint64_t> buckets;
};

struct MetricsSnapshot {
  std::vector<MetricEntry> entries;

  [[nodiscard]] const MetricEntry* find(std::string_view name) const;
  // Counter total / gauge value / histogram sum, or `fallback` when absent.
  [[nodiscard]] double value(std::string_view name,
                             double fallback = 0.0) const;
};

#if ADWISE_OBS_ENABLED

// Monotonic event count. add() is a single relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Last-write-wins instantaneous value (window fill, final lambda, ...).
class Gauge {
 public:
  void set(double x) { v_.store(x, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

// Log2 histogram, same shape as Report::batch_size_hist: bucket i counts
// samples in [2^i, 2^(i+1)), last bucket open-ended. record() is two relaxed
// fetch_adds.
class Histogram {
 public:
  void record(std::uint64_t value) {
    buckets_[log2_bucket(value, kHistBuckets)].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  // Folds n pre-bucketed samples into bucket i — publishing an existing
  // log2 histogram (e.g. Report::batch_size_hist) without replaying every
  // sample. The value sum is unknown for such samples and stays unchanged.
  void add_bucket(std::size_t i, std::uint64_t n) {
    buckets_[std::min(i, kHistBuckets - 1)].fetch_add(
        n, std::memory_order_relaxed);
    count_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> count_{0};
};

// Named metric registry. counter()/gauge()/histogram() return a stable
// reference (deque storage never reallocates) that stays valid for the
// registry's lifetime; calling twice with the same name returns the same
// object, so independent components (e.g. two streams) naturally aggregate.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  // Flat JSON object: {"name": value, ...; "name.count": N and
  // "name.bucket<i>": c for histograms (zero buckets omitted)}.
  void write_json(std::ostream& out) const;
  // Returns false (and writes nothing durable) on I/O failure.
  bool write_json_file(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, Histogram>> histograms_;
};

#else  // !ADWISE_OBS_ENABLED — empty shells, everything inlines to nothing.

class Counter {
 public:
  void add(std::uint64_t = 1) {}
  [[nodiscard]] std::uint64_t value() const { return 0; }
};

class Gauge {
 public:
  void set(double) {}
  [[nodiscard]] double value() const { return 0.0; }
};

class Histogram {
 public:
  void record(std::uint64_t) {}
  void add_bucket(std::size_t, std::uint64_t) {}
  [[nodiscard]] std::uint64_t count() const { return 0; }
  [[nodiscard]] std::uint64_t sum() const { return 0; }
  [[nodiscard]] std::uint64_t bucket(std::size_t) const { return 0; }
};

class MetricsRegistry {
 public:
  Counter& counter(std::string_view) { return counter_; }
  Gauge& gauge(std::string_view) { return gauge_; }
  Histogram& histogram(std::string_view) { return histogram_; }
  [[nodiscard]] MetricsSnapshot snapshot() const { return {}; }
  void write_json(std::ostream& out) const;
  bool write_json_file(const std::string& path) const;

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

#endif  // ADWISE_OBS_ENABLED

}  // namespace adwise::obs
