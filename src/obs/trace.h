// Phase-scoped tracing to Chrome trace-event JSON.
//
// A TraceSession buffers begin/end ("B"/"E") events into per-thread tracks:
// the first event a thread records registers a track (one mutex hit per
// thread for the session's lifetime), after which recording is a
// thread-local append — one monotonic clock read plus a vector push_back,
// no locks. write_json() emits the classic `{"traceEvents": [...]}` array
// that chrome://tracing and Perfetto load directly; each track becomes a
// distinct tid, so pool workers, the prefetch worker and the checkpoint
// writer show up as separate timelines.
//
// Span names must have static storage duration (the session stores
// string_views; the constants in metric_names.h qualify). Every track is
// capped (default 256k events): once full, new spans are suppressed as
// whole B/E pairs — never a B without its E — so the "balanced pairs"
// invariant survives truncation; dropped() reports how many were lost.
//
// With -DADWISE_OBS=OFF the whole session compiles to an empty shell (see
// metrics.h for the switch).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/obs/metrics.h"  // ADWISE_OBS_ENABLED

namespace adwise::obs {

#if ADWISE_OBS_ENABLED

class TraceSession {
 public:
  static constexpr std::size_t kDefaultMaxEventsPerTrack = 256 * 1024;

  explicit TraceSession(
      std::size_t max_events_per_track = kDefaultMaxEventsPerTrack);

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  // Opens/closes a span on the calling thread's track. Prefer TraceSpan.
  void begin(std::string_view name);
  void end(std::string_view name);

  // Labels the calling thread's track in the trace viewer ("io-prefetch",
  // "score-worker-0", ...). First label wins; later calls are no-ops, so
  // per-chunk call sites stay cheap and idempotent.
  void name_current_thread(std::string_view label);

  // Spans suppressed because a track hit its cap.
  [[nodiscard]] std::uint64_t dropped() const;

  // One event object per line inside "traceEvents" — loadable by Perfetto
  // and trivially parseable line-wise by tests. Call after the traced
  // threads have quiesced (concurrent recording may be partially missed).
  void write_json(std::ostream& out) const;
  bool write_json_file(const std::string& path) const;

 private:
  struct Event {
    std::string_view name;
    char ph;             // 'B' or 'E'
    std::int64_t ts_ns;  // relative to session start
  };
  struct Track {
    std::vector<Event> events;
    std::string label;
    int tid = 0;
    // Open spans whose B was suppressed by the cap: their E must be
    // suppressed too. Owned exclusively by the track's thread.
    std::size_t suppressed_depth = 0;
  };

  Track& track_for_current_thread();

  const std::size_t max_events_per_track_;
  const std::int64_t start_ns_;
  const std::uint64_t session_id_;  // keys the thread-local track cache

  mutable std::mutex mutex_;
  std::deque<Track> tracks_;  // stable addresses for cached pointers
  std::atomic<std::uint64_t> dropped_{0};
};

// RAII span: records B at construction and E at destruction; a null session
// makes both no-ops, so hot paths pay one predictable branch when tracing
// is off.
class TraceSpan {
 public:
  TraceSpan(TraceSession* session, std::string_view name)
      : session_(session), name_(name) {
    if (session_ != nullptr) session_->begin(name_);
  }
  ~TraceSpan() {
    if (session_ != nullptr) session_->end(name_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceSession* session_;
  std::string_view name_;
};

#else  // !ADWISE_OBS_ENABLED

class TraceSession {
 public:
  static constexpr std::size_t kDefaultMaxEventsPerTrack = 0;
  explicit TraceSession(std::size_t = 0) {}
  void begin(std::string_view) {}
  void end(std::string_view) {}
  void name_current_thread(std::string_view) {}
  [[nodiscard]] std::uint64_t dropped() const { return 0; }
  void write_json(std::ostream& out) const;
  bool write_json_file(const std::string& path) const;
};

class TraceSpan {
 public:
  TraceSpan(TraceSession*, std::string_view) {}
};

#endif  // ADWISE_OBS_ENABLED

}  // namespace adwise::obs
