#include "src/obs/metrics.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace adwise::obs {

const MetricEntry* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricEntry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

double MetricsSnapshot::value(std::string_view name, double fallback) const {
  const MetricEntry* e = find(name);
  return e != nullptr ? e->value : fallback;
}

namespace {

// Doubles that are integral (the common case: counter totals) print as
// integers so the JSON is stable and diff-friendly.
void write_number(std::ostream& out, double v) {
  const auto as_int = static_cast<long long>(v);
  if (static_cast<double>(as_int) == v) {
    out << as_int;
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out << buf;
  }
}

void write_entries(std::ostream& out, const MetricsSnapshot& snap) {
  out << "{";
  bool first = true;
  auto emit = [&](std::string_view name, double v) {
    if (!first) out << ",";
    first = false;
    out << "\n  \"" << name << "\": ";
    write_number(out, v);
  };
  for (const MetricEntry& e : snap.entries) {
    emit(e.name, e.value);
    if (e.kind == MetricEntry::Kind::kHistogram) {
      emit(e.name + ".count", static_cast<double>(e.count));
      for (std::size_t i = 0; i < e.buckets.size(); ++i) {
        if (e.buckets[i] == 0) continue;
        emit(e.name + ".bucket" + std::to_string(i),
             static_cast<double>(e.buckets[i]));
      }
    }
  }
  out << "\n}\n";
}

bool write_stream_to_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << body;
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace

#if ADWISE_OBS_ENABLED

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mutex_);
  for (auto& [n, c] : counters_) {
    if (n == name) return c;
  }
  counters_.emplace_back(std::piecewise_construct,
                         std::forward_as_tuple(name), std::forward_as_tuple());
  return counters_.back().second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mutex_);
  for (auto& [n, g] : gauges_) {
    if (n == name) return g;
  }
  gauges_.emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                       std::forward_as_tuple());
  return gauges_.back().second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lk(mutex_);
  for (auto& [n, h] : histograms_) {
    if (n == name) return h;
  }
  histograms_.emplace_back(std::piecewise_construct,
                           std::forward_as_tuple(name),
                           std::forward_as_tuple());
  return histograms_.back().second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mutex_);
  MetricsSnapshot snap;
  snap.entries.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricEntry e;
    e.name = name;
    e.kind = MetricEntry::Kind::kCounter;
    e.value = static_cast<double>(c.value());
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, g] : gauges_) {
    MetricEntry e;
    e.name = name;
    e.kind = MetricEntry::Kind::kGauge;
    e.value = g.value();
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, h] : histograms_) {
    MetricEntry e;
    e.name = name;
    e.kind = MetricEntry::Kind::kHistogram;
    e.value = static_cast<double>(h.sum());
    e.count = h.count();
    e.buckets.resize(kHistBuckets);
    for (std::size_t i = 0; i < kHistBuckets; ++i) e.buckets[i] = h.bucket(i);
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  write_entries(out, snapshot());
}

bool MetricsRegistry::write_json_file(const std::string& path) const {
  std::ostringstream body;
  write_json(body);
  return write_stream_to_file(path, body.str());
}

#else  // !ADWISE_OBS_ENABLED

void MetricsRegistry::write_json(std::ostream& out) const {
  write_entries(out, MetricsSnapshot{});
}

bool MetricsRegistry::write_json_file(const std::string& path) const {
  std::ostringstream body;
  write_json(body);
  return write_stream_to_file(path, body.str());
}

#endif  // ADWISE_OBS_ENABLED

}  // namespace adwise::obs
