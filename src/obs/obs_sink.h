// ObsSink: the single optional handle instrumented components accept.
//
// A null ObsSink* (the default everywhere) means "no observability" and
// costs one branch per instrumentation site. A non-null sink can carry any
// subset: metrics only (bench guardrails), trace only (chrome://tracing
// deep dives), or both plus a progress callback (partition_file
// --progress-every). The sink does not own the registry/session — the
// caller does, because their lifetime must span every component wired to
// them (streams, pools, the checkpoint writer thread).
//
// Invariant: observability is strictly read-only with respect to
// partitioning decisions. Instrumented code may read clocks and bump
// counters but must never let the sink influence placements, counter traces
// or checkpoint bytes — the bit-identity guarantees (serial vs parallel,
// resumed vs uninterrupted) hold with any sink attached.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace adwise::obs {

// Periodic in-flight snapshot from AdwisePartitioner's main loop.
struct ProgressSample {
  std::uint64_t edges_assigned = 0;
  double seconds = 0.0;            // since partition() started
  double edges_per_sec = 0.0;      // cumulative average
  double replication = 0.0;        // replication degree so far
  std::size_t window_size = 0;     // edges currently buffered
  std::size_t window_target = 0;   // controller's current w
  std::size_t candidate_heap = 0;  // lazy candidate-set heap |C|
  std::size_t secondary_heap = 0;  // lazy secondary heap |Q|
};

struct ObsSink {
  MetricsRegistry* metrics = nullptr;
  TraceSession* trace = nullptr;

  // When non-zero (and on_progress set), the partitioner invokes
  // on_progress every `progress_every` assignments. The callback runs on
  // the partitioning thread — keep it cheap (partition_file prints a line
  // to stderr).
  std::uint64_t progress_every = 0;
  std::function<void(const ProgressSample&)> on_progress;
};

// Null-tolerant accessors so call sites read as one expression.
[[nodiscard]] inline MetricsRegistry* metrics_of(ObsSink* obs) {
  return obs != nullptr ? obs->metrics : nullptr;
}
[[nodiscard]] inline TraceSession* trace_of(ObsSink* obs) {
  return obs != nullptr ? obs->trace : nullptr;
}

}  // namespace adwise::obs
