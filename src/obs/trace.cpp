#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace adwise::obs {

namespace {

bool write_stream_to_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << body;
  out.flush();
  return static_cast<bool>(out);
}

void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

}  // namespace

#if ADWISE_OBS_ENABLED

namespace {
std::uint64_t next_session_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

TraceSession::TraceSession(std::size_t max_events_per_track)
    : max_events_per_track_(max_events_per_track),
      start_ns_(monotonic_now_ns()),
      session_id_(next_session_id()) {}

TraceSession::Track& TraceSession::track_for_current_thread() {
  // Keyed by session id, not pointer: a new session allocated at a dead
  // session's address must not reuse the stale cached track.
  struct Cache {
    std::uint64_t session_id = 0;
    Track* track = nullptr;
  };
  static thread_local Cache cache;
  if (cache.session_id == session_id_ && cache.track != nullptr) {
    return *cache.track;
  }
  std::lock_guard<std::mutex> lk(mutex_);
  tracks_.emplace_back();
  Track& t = tracks_.back();
  t.tid = static_cast<int>(tracks_.size());
  t.events.reserve(std::min<std::size_t>(max_events_per_track_, 4096));
  cache = {session_id_, &t};
  return t;
}

void TraceSession::begin(std::string_view name) {
  Track& t = track_for_current_thread();
  if (t.events.size() >= max_events_per_track_) {
    ++t.suppressed_depth;
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  t.events.push_back({name, 'B', monotonic_now_ns() - start_ns_});
}

void TraceSession::end(std::string_view name) {
  Track& t = track_for_current_thread();
  if (t.suppressed_depth > 0) {
    --t.suppressed_depth;
    return;
  }
  // The matching B was recorded, so record the E even if the cap was hit in
  // between — pairs stay balanced, overshoot is at most the open depth.
  t.events.push_back({name, 'E', monotonic_now_ns() - start_ns_});
}

void TraceSession::name_current_thread(std::string_view label) {
  Track& t = track_for_current_thread();
  if (!t.label.empty()) return;  // cheap idempotence for per-chunk callers
  std::lock_guard<std::mutex> lk(mutex_);
  t.label.assign(label);
}

std::uint64_t TraceSession::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

void TraceSession::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lk(mutex_);
  out << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };
  for (const Track& t : tracks_) {
    sep();
    out << R"({"name":"thread_name","ph":"M","pid":0,"tid":)" << t.tid
        << R"(,"args":{"name":)";
    write_json_string(out,
                      t.label.empty() ? "thread-" + std::to_string(t.tid)
                                      : t.label);
    out << "}}";
  }
  for (const Track& t : tracks_) {
    for (const Event& e : t.events) {
      sep();
      out << "{\"name\":";
      write_json_string(out, e.name);
      out << ",\"ph\":\"" << e.ph << "\",\"pid\":0,\"tid\":" << t.tid
          << ",\"ts\":";
      // Chrome trace ts is in microseconds; keep ns resolution as a decimal.
      const std::int64_t us = e.ts_ns / 1000;
      const std::int64_t frac = e.ts_ns % 1000;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                    static_cast<long long>(us), static_cast<long long>(frac));
      out << buf << "}";
    }
  }
  out << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
      << dropped() << "}}\n";
}

bool TraceSession::write_json_file(const std::string& path) const {
  std::ostringstream body;
  write_json(body);
  return write_stream_to_file(path, body.str());
}

#else  // !ADWISE_OBS_ENABLED

void TraceSession::write_json(std::ostream& out) const {
  out << "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\",\"otherData\":"
         "{\"dropped_events\":0}}\n";
}

bool TraceSession::write_json_file(const std::string& path) const {
  std::ostringstream body;
  write_json(body);
  return write_stream_to_file(path, body.str());
}

#endif  // ADWISE_OBS_ENABLED

}  // namespace adwise::obs
