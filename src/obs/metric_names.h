// Canonical metric and span name constants for the observability layer.
//
// Every producer (partitioner report publishing, BinaryEdgeStream, the
// checkpoint writer, thread-pool stats) and every consumer (bench guardrail
// snapshots, tools/check_obs_output.py via docs/OBSERVABILITY.md, tests)
// spells names through these constants, so a renamed metric breaks the
// build instead of silently un-gating a guardrail.
#pragma once

#include <string>
#include <string_view>

namespace adwise::obs::names {

// --- BinaryEdgeStream (counters unless noted) -------------------------------
inline constexpr std::string_view kStreamBytesRead = "stream.bytes_read";
inline constexpr std::string_view kStreamPreads = "stream.preads";
// Histogram: nanoseconds per pread() batch of one chunk fill.
inline constexpr std::string_view kStreamPreadNs = "stream.pread_ns";
// Time the consumer spent blocked waiting for the prefetch worker, vs the
// chunk-consume histogram (decode + downstream work per chunk) — together
// they split drain time into "waiting on io" and "doing work".
inline constexpr std::string_view kStreamPrefetchWaitNs =
    "stream.prefetch_wait_ns";
inline constexpr std::string_view kStreamPrefetchWaits =
    "stream.prefetch_waits";
// Histogram: nanoseconds between chunk handoffs (decode + consumer work).
inline constexpr std::string_view kStreamChunkConsumeNs =
    "stream.chunk_consume_ns";
inline constexpr std::string_view kStreamIoRetries = "stream.io_retries";
inline constexpr std::string_view kStreamPrefetchDegraded =
    "stream.prefetch_degraded";

// --- AdwisePartitioner (Report counters published at end of run) ------------
inline constexpr std::string_view kAdwiseAssignments = "adwise.assignments";
inline constexpr std::string_view kAdwiseScoreComputations =
    "adwise.score_computations";
inline constexpr std::string_view kAdwiseCandidatePartitions =
    "adwise.candidate_partitions";
inline constexpr std::string_view kAdwiseDensePlacements =
    "adwise.dense_placements";
inline constexpr std::string_view kAdwiseSparsePlacements =
    "adwise.sparse_placements";
inline constexpr std::string_view kAdwiseSecondaryRescans =
    "adwise.secondary_rescans";
// Candidate starvation: assignments that had to come from the secondary
// heap because the candidate set drained dry.
inline constexpr std::string_view kAdwiseForcedSecondary =
    "adwise.forced_secondary";
inline constexpr std::string_view kAdwiseEventReassessments =
    "adwise.event_reassessments";
inline constexpr std::string_view kAdwiseHeapPops = "adwise.heap_pops";
inline constexpr std::string_view kAdwiseDemotionSweeps =
    "adwise.demotion_sweeps";
inline constexpr std::string_view kAdwiseMaxWindow = "adwise.max_window";
inline constexpr std::string_view kAdwiseAdaptations = "adwise.adaptations";
inline constexpr std::string_view kAdwiseScoreBatches =
    "adwise.score_batches";
inline constexpr std::string_view kAdwiseBatchItems = "adwise.batch_items";
inline constexpr std::string_view kAdwisePoolBatches = "adwise.pool_batches";
inline constexpr std::string_view kAdwisePoolBatchItems =
    "adwise.pool_batch_items";
inline constexpr std::string_view kAdwiseRefillBatches =
    "adwise.refill_batches";
inline constexpr std::string_view kAdwiseRefillBatchItems =
    "adwise.refill_batch_items";
inline constexpr std::string_view kAdwiseBatchCutoffAdaptations =
    "adwise.batch_cutoff_adaptations";
inline constexpr std::string_view kAdwiseDrainAdaptations =
    "adwise.drain_adaptations";
// Gauges: terminal controller state of the most recent run.
inline constexpr std::string_view kAdwiseFinalLambda = "adwise.final_lambda";
inline constexpr std::string_view kAdwiseFinalBatchCutoff =
    "adwise.final_batch_cutoff";
inline constexpr std::string_view kAdwiseFinalDrainBudget =
    "adwise.final_drain_budget";
inline constexpr std::string_view kAdwiseFinalSweepInterval =
    "adwise.final_sweep_interval";
inline constexpr std::string_view kAdwiseSeconds = "adwise.seconds";
// Histogram: rescore batch sizes (same log2 shape as Report::batch_size_hist).
inline constexpr std::string_view kAdwiseBatchSizeHist =
    "adwise.batch_size_hist";

// --- Checkpointing ----------------------------------------------------------
inline constexpr std::string_view kCkptSnapshots = "checkpoint.snapshots";
// Histogram: nanoseconds to serialize state on the partitioning thread.
inline constexpr std::string_view kCkptSnapshotNs = "checkpoint.snapshot_ns";
inline constexpr std::string_view kCkptCommits = "checkpoint.commits";
// Histogram: nanoseconds per durable write+fsync+rename on the writer thread.
inline constexpr std::string_view kCkptCommitNs = "checkpoint.commit_ns";
// The partitioning thread blocked handing off to the busy writer.
inline constexpr std::string_view kCkptQueueStalls = "checkpoint.queue_stalls";
inline constexpr std::string_view kCkptQueueStallNs =
    "checkpoint.queue_stall_ns";
// Durable checkpoint write attempts that failed (degraded mode keeps
// partitioning and retries at the next boundary).
inline constexpr std::string_view kCkptWriteFailures =
    "checkpoint.write_failures";
// Checkpoint boundaries that ended without a durable checkpoint.
inline constexpr std::string_view kCkptSkipped = "checkpoint.skipped";
// Checkpoints committed synchronously on the partitioning thread because
// the async writer was stalled past the watchdog deadline.
inline constexpr std::string_view kCkptInbandCommits =
    "checkpoint.inband_commits";

// --- Watchdog ---------------------------------------------------------------
// Armed heartbeat handles that went quiet past the stall deadline (one per
// stall episode; a recovering beat re-arms detection).
inline constexpr std::string_view kWatchdogStalls = "watchdog.stalls";

// --- ThreadPool (per-worker gauges; see pool_metric()) ----------------------
inline constexpr std::string_view kPoolExecuted = "executed";
inline constexpr std::string_view kPoolStolen = "stolen";
inline constexpr std::string_view kPoolSleeps = "sleeps";

// Builds "pool.<pool>.worker<i>.<what>", e.g. pool_metric("score", 0,
// kPoolExecuted) -> "pool.score.worker0.executed".
[[nodiscard]] inline std::string pool_metric(std::string_view pool,
                                             unsigned worker,
                                             std::string_view what) {
  std::string s = "pool.";
  s.append(pool);
  s.append(".worker");
  s.append(std::to_string(worker));
  s.push_back('.');
  s.append(what);
  return s;
}

// --- Trace span names (Chrome trace-event "name" fields) --------------------
inline constexpr std::string_view kSpanWindowRefill = "window_refill";
inline constexpr std::string_view kSpanBatchRescore = "batch_rescore";
inline constexpr std::string_view kSpanDrainWalk = "drain_walk";
inline constexpr std::string_view kSpanCheckpointSnapshot =
    "checkpoint_snapshot";
inline constexpr std::string_view kSpanCheckpointWrite = "checkpoint_write";
inline constexpr std::string_view kSpanPrefetchFill = "prefetch_fill";
inline constexpr std::string_view kSpanSpotlightInstance =
    "spotlight_instance";
inline constexpr std::string_view kSpanRestreamPass = "restream_pass";

}  // namespace adwise::obs::names
