#include "src/graph/edge_stream.h"

#include <algorithm>
#include <deque>

#include "src/common/rng.h"
#include "src/graph/csr.h"

namespace adwise {

const char* to_string(StreamOrder order) {
  switch (order) {
    case StreamOrder::kNatural:
      return "natural";
    case StreamOrder::kShuffled:
      return "shuffled";
    case StreamOrder::kBfs:
      return "bfs";
  }
  return "unknown";
}

namespace {

std::vector<Edge> bfs_order(const Graph& graph, std::uint64_t seed) {
  const Csr csr(graph);
  const VertexId n = graph.num_vertices();
  std::vector<Edge> out;
  out.reserve(graph.num_edges());
  std::vector<bool> edge_seen(graph.num_edges(), false);
  std::vector<bool> vertex_seen(n, false);
  Rng rng(seed);
  std::deque<VertexId> queue;

  auto visit = [&](VertexId v) {
    vertex_seen[v] = true;
    queue.push_back(v);
  };

  // Cover all components: start from a random root, then sweep.
  if (n > 0) visit(static_cast<VertexId>(rng.next_below(n)));
  VertexId sweep = 0;
  while (true) {
    if (queue.empty()) {
      while (sweep < n && vertex_seen[sweep]) ++sweep;
      if (sweep == n) break;
      visit(sweep);
    }
    const VertexId v = queue.front();
    queue.pop_front();
    const auto nbrs = csr.neighbors(v);
    const auto ids = csr.incident_edges(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (!edge_seen[ids[i]]) {
        edge_seen[ids[i]] = true;
        out.push_back(graph.edge(ids[i]));
      }
      if (!vertex_seen[nbrs[i]]) visit(nbrs[i]);
    }
  }
  return out;
}

}  // namespace

std::vector<Edge> ordered_edges(const Graph& graph, StreamOrder order,
                                std::uint64_t seed) {
  switch (order) {
    case StreamOrder::kNatural: {
      return {graph.edges().begin(), graph.edges().end()};
    }
    case StreamOrder::kShuffled: {
      std::vector<Edge> edges(graph.edges().begin(), graph.edges().end());
      Rng rng(seed);
      for (std::size_t i = edges.size(); i > 1; --i) {
        std::swap(edges[i - 1], edges[rng.next_below(i)]);
      }
      return edges;
    }
    case StreamOrder::kBfs:
      return bfs_order(graph, seed);
  }
  return {};
}

std::vector<std::size_t> chunk_sizes(std::size_t total, std::uint32_t z) {
  std::vector<std::size_t> sizes;
  if (z == 0) return sizes;
  sizes.reserve(z);
  const std::size_t base = total / z;
  const std::size_t extra = total % z;
  for (std::uint32_t i = 0; i < z; ++i) {
    sizes.push_back(base + (i < extra ? 1 : 0));
  }
  return sizes;
}

std::vector<std::span<const Edge>> chunk_edges(std::span<const Edge> edges,
                                               std::uint32_t z) {
  std::vector<std::span<const Edge>> chunks;
  if (z == 0) return chunks;
  chunks.reserve(z);
  std::size_t offset = 0;
  for (const std::size_t len : chunk_sizes(edges.size(), z)) {
    chunks.push_back(edges.subspan(offset, len));
    offset += len;
  }
  return chunks;
}

}  // namespace adwise
