// SNAP-style edge-list I/O.
//
// Format: one "u v" pair per line, '#'-prefixed comment lines ignored.
// Vertex ids in files may be sparse; the loader densifies them and can
// return the mapping for callers that need to translate results back.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/graph/graph.h"

namespace adwise {

struct LoadResult {
  Graph graph;
  // original_id[i] is the file-level id of dense vertex i.
  std::vector<std::uint64_t> original_id;
};

// Parses an edge list from a stream. Throws std::runtime_error on malformed
// input. Self-loops are dropped; duplicate edges are kept (callers can
// Graph::make_simple() if they need a simple graph).
[[nodiscard]] LoadResult read_edge_list(std::istream& in);

// Convenience file wrapper; throws std::runtime_error if the file cannot be
// opened.
[[nodiscard]] LoadResult read_edge_list_file(const std::string& path);

// Writes "u v" lines with a provenance comment header.
void write_edge_list(std::ostream& out, const Graph& graph);
void write_edge_list_file(const std::string& path, const Graph& graph);

}  // namespace adwise
