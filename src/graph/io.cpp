#include "src/graph/io.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>

namespace adwise {

namespace {

// Parses one unsigned integer starting at *pos, advancing *pos past it.
// Returns false if no digits are found.
bool parse_u64(std::string_view line, std::size_t* pos, std::uint64_t* out) {
  while (*pos < line.size() && (line[*pos] == ' ' || line[*pos] == '\t')) {
    ++*pos;
  }
  const char* begin = line.data() + *pos;
  const char* end = line.data() + line.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  if (ec != std::errc{} || ptr == begin) return false;
  *pos += static_cast<std::size_t>(ptr - begin);
  return true;
}

}  // namespace

LoadResult read_edge_list(std::istream& in) {
  LoadResult result;
  std::unordered_map<std::uint64_t, VertexId> dense;
  auto densify = [&](std::uint64_t raw) -> VertexId {
    auto [it, inserted] =
        dense.try_emplace(raw, static_cast<VertexId>(result.original_id.size()));
    if (inserted) result.original_id.push_back(raw);
    return it->second;
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::size_t pos = 0;
    std::uint64_t raw_u = 0;
    std::uint64_t raw_v = 0;
    if (!parse_u64(line, &pos, &raw_u) || !parse_u64(line, &pos, &raw_v)) {
      throw std::runtime_error("malformed edge list at line " +
                               std::to_string(line_no) + ": '" + line + "'");
    }
    if (raw_u == raw_v) continue;  // drop self-loops
    // Two statements: argument evaluation order must not decide which
    // endpoint gets the smaller dense id.
    const VertexId du = densify(raw_u);
    const VertexId dv = densify(raw_v);
    result.graph.add_edge(du, dv);
  }
  // Vertices may exist without edges only via densify; ensure the count
  // covers all mapped ids.
  if (result.original_id.size() > result.graph.num_vertices()) {
    result.graph = Graph(static_cast<VertexId>(result.original_id.size()),
                         {result.graph.edges().begin(),
                          result.graph.edges().end()});
  }
  return result;
}

LoadResult read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);
  return read_edge_list(in);
}

void write_edge_list(std::ostream& out, const Graph& graph) {
  out << "# adwise edge list: " << graph.num_vertices() << " vertices, "
      << graph.num_edges() << " edges\n";
  for (const Edge& e : graph.edges()) {
    out << e.u << ' ' << e.v << '\n';
  }
}

void write_edge_list_file(const std::string& path, const Graph& graph) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open output file: " + path);
  write_edge_list(out, graph);
}

}  // namespace adwise
