#include "src/graph/file_stream.h"

#include <algorithm>
#include <charconv>
#include <limits>
#include <stdexcept>

namespace adwise {

namespace {

// Parses "u v" from a line; returns false for comments/blank/malformed.
bool parse_edge_line(const std::string& line, std::uint64_t* u,
                     std::uint64_t* v) {
  if (line.empty() || line[0] == '#' || line[0] == '%') return false;
  const char* ptr = line.data();
  const char* end = line.data() + line.size();
  while (ptr < end && (*ptr == ' ' || *ptr == '\t')) ++ptr;
  auto r1 = std::from_chars(ptr, end, *u);
  if (r1.ec != std::errc{}) return false;
  ptr = r1.ptr;
  while (ptr < end && (*ptr == ' ' || *ptr == '\t')) ++ptr;
  auto r2 = std::from_chars(ptr, end, *v);
  return r2.ec == std::errc{};
}

// Shared by scan() and next(): ids above the 32-bit VertexId range are an
// error in both, so the pre-pass count and the streamed count always agree.
void check_vertex_range(std::uint64_t u, std::uint64_t v,
                        const std::string& line) {
  if (u > std::numeric_limits<VertexId>::max() ||
      v > std::numeric_limits<VertexId>::max()) {
    throw std::runtime_error("vertex id exceeds 32-bit range: " + line);
  }
}

}  // namespace

FileEdgeStream::Stats FileEdgeStream::scan(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);
  Stats stats;
  std::string line;
  std::uint64_t u = 0;
  std::uint64_t v = 0;
  while (std::getline(in, line)) {
    if (!parse_edge_line(line, &u, &v)) continue;
    if (u == v) continue;
    check_vertex_range(u, v, line);
    ++stats.num_edges;
    stats.max_vertex_id = std::max({stats.max_vertex_id, u, v});
  }
  return stats;
}

FileEdgeStream::FileEdgeStream(const std::string& path, std::size_t num_edges)
    : in_(path), num_edges_(num_edges), remaining_(num_edges) {
  if (!in_) throw std::runtime_error("cannot open graph file: " + path);
}

bool FileEdgeStream::next(Edge& out) {
  if (remaining_ == 0) return false;
  std::uint64_t u = 0;
  std::uint64_t v = 0;
  while (std::getline(in_, line_)) {
    if (!parse_edge_line(line_, &u, &v)) continue;
    if (u == v) continue;
    check_vertex_range(u, v, line_);
    out = {static_cast<VertexId>(u), static_cast<VertexId>(v)};
    --remaining_;
    return true;
  }
  remaining_ = 0;
  return false;
}

void FileEdgeStream::rewind() {
  in_.clear();
  in_.seekg(0, std::ios::beg);
  if (!in_) throw std::runtime_error("cannot rewind graph file");
  remaining_ = num_edges_;
}

}  // namespace adwise
