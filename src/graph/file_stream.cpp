#include "src/graph/file_stream.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "src/io/io_error.h"

namespace adwise {

namespace {

// Parses "u v" from a line; returns false for comments/blank/malformed.
bool parse_edge_line(const std::string& line, std::uint64_t* u,
                     std::uint64_t* v) {
  if (line.empty() || line[0] == '#' || line[0] == '%') return false;
  const char* ptr = line.data();
  const char* end = line.data() + line.size();
  while (ptr < end && (*ptr == ' ' || *ptr == '\t')) ++ptr;
  auto r1 = std::from_chars(ptr, end, *u);
  if (r1.ec != std::errc{}) return false;
  ptr = r1.ptr;
  while (ptr < end && (*ptr == ' ' || *ptr == '\t')) ++ptr;
  auto r2 = std::from_chars(ptr, end, *v);
  return r2.ec == std::errc{};
}

// Shared by scan() and next(): ids above the 32-bit VertexId range are an
// error in both, so the pre-pass count and the streamed count always agree.
void check_vertex_range(std::uint64_t u, std::uint64_t v,
                        const std::string& line) {
  if (u > std::numeric_limits<VertexId>::max() ||
      v > std::numeric_limits<VertexId>::max()) {
    throw std::runtime_error("vertex id exceeds 32-bit range: " + line);
  }
}

// Same transient set as BinaryEdgeStream: the bytes on disk are
// (presumably) fine, the syscall just failed this instant.
bool is_transient_errno(int err) {
  return err == EINTR || err == EAGAIN || err == EIO || err == EMFILE ||
         err == ENFILE;
}

void backoff(const RetryPolicy& retry, int attempt) {
  const unsigned delay = retry.delay_for_attempt(attempt);
  if (retry.sleeper) {
    retry.sleeper(delay);
  } else {
    ::usleep(delay);
  }
}

}  // namespace

FileEdgeStream::Stats FileEdgeStream::scan(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);
  Stats stats;
  std::string line;
  std::uint64_t u = 0;
  std::uint64_t v = 0;
  while (std::getline(in, line)) {
    if (!parse_edge_line(line, &u, &v)) continue;
    if (u == v) continue;
    check_vertex_range(u, v, line);
    ++stats.num_edges;
    stats.max_vertex_id = std::max({stats.max_vertex_id, u, v});
  }
  return stats;
}

FileEdgeStream::FileEdgeStream(const std::string& path, std::size_t num_edges,
                               Options options)
    : path_(path),
      options_(std::move(options)),
      num_edges_(num_edges),
      remaining_(num_edges) {
  options_.buffer_bytes = std::max<std::size_t>(1, options_.buffer_bytes);
  open_with_retry(path);
  buf_.resize(options_.buffer_bytes);
}

FileEdgeStream::~FileEdgeStream() {
  if (fd_ >= 0) ::close(fd_);
}

void FileEdgeStream::open_with_retry(const std::string& path) {
  int attempts = 0;
  while (true) {
    int err;
    if (options_.fault_injector != nullptr &&
        options_.fault_injector->fail_open()) {
      fd_ = -1;
      err = EIO;
    } else {
      fd_ = ::open(path.c_str(), O_RDONLY);
      err = errno;
    }
    if (fd_ >= 0) return;
    if (!is_transient_errno(err)) {
      throw std::runtime_error("cannot open graph file: " + path + ": " +
                               std::strerror(err));
    }
    if (++attempts >= options_.retry.max_attempts) {
      throw TransientIoError("cannot open graph file " + path + " after " +
                             std::to_string(attempts) +
                             " attempts: " + std::strerror(err));
    }
    ++io_retries_;
    backoff(options_.retry, attempts);
  }
}

bool FileEdgeStream::refill() {
  if (eof_) return false;
  int attempts = 0;
  for (;;) {
    std::size_t ask = buf_.size();
    int injected_errno = 0;
    if (options_.fault_injector != nullptr) {
      switch (options_.fault_injector->pread_fault(file_offset_)) {
        case FaultInjector::PreadFault::kNone:
          break;
        case FaultInjector::PreadFault::kShortRead:
          ask = std::max<std::size_t>(1, ask / 2);
          break;
        case FaultInjector::PreadFault::kEintr:
          injected_errno = EINTR;
          break;
        case FaultInjector::PreadFault::kEagain:
          injected_errno = EAGAIN;
          break;
      }
    }
    ssize_t r;
    if (injected_errno != 0) {
      r = -1;
      errno = injected_errno;
    } else {
      r = ::pread(fd_, buf_.data(), ask, static_cast<off_t>(file_offset_));
    }
    if (r < 0) {
      const int err = errno;
      if (err == EINTR) {
        // Interrupted before any bytes moved: retry immediately, no
        // budget spent — normal signal behavior, not a failure.
        ++io_retries_;
        continue;
      }
      if (!is_transient_errno(err)) {
        throw std::runtime_error(
            "read failed on graph file " + path_ + " at byte offset " +
            std::to_string(file_offset_) + ": " + std::strerror(err));
      }
      if (++attempts >= options_.retry.max_attempts) {
        throw TransientIoError(
            "read failed on graph file " + path_ + " at byte offset " +
            std::to_string(file_offset_) + " after " +
            std::to_string(attempts) + " attempts: " + std::strerror(err));
      }
      ++io_retries_;
      backoff(options_.retry, attempts);
      continue;
    }
    if (r == 0) {
      eof_ = true;
      return false;
    }
    file_offset_ += static_cast<std::uint64_t>(r);
    buf_len_ = static_cast<std::size_t>(r);
    buf_pos_ = 0;
    return true;
  }
}

bool FileEdgeStream::read_line() {
  line_.clear();
  for (;;) {
    if (buf_pos_ == buf_len_) {
      if (!refill()) {
        // End of file: deliver a final unterminated line, if any.
        return !line_.empty();
      }
    }
    const char* start = buf_.data() + buf_pos_;
    const auto* nl = static_cast<const char*>(
        std::memchr(start, '\n', buf_len_ - buf_pos_));
    if (nl != nullptr) {
      line_.append(start, static_cast<std::size_t>(nl - start));
      buf_pos_ = static_cast<std::size_t>(nl - buf_.data()) + 1;
      return true;
    }
    line_.append(start, buf_len_ - buf_pos_);
    buf_pos_ = buf_len_;
  }
}

bool FileEdgeStream::next(Edge& out) {
  if (remaining_ == 0) return false;
  std::uint64_t u = 0;
  std::uint64_t v = 0;
  while (read_line()) {
    if (!parse_edge_line(line_, &u, &v)) continue;
    if (u == v) continue;
    check_vertex_range(u, v, line_);
    out = {static_cast<VertexId>(u), static_cast<VertexId>(v)};
    --remaining_;
    return true;
  }
  remaining_ = 0;
  return false;
}

void FileEdgeStream::rewind() {
  // pread-based: no seek state to restore, just restart the cursor.
  file_offset_ = 0;
  buf_pos_ = 0;
  buf_len_ = 0;
  eof_ = false;
  remaining_ = num_edges_;
}

}  // namespace adwise
