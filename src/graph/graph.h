// In-memory graph representation.
//
// Graphs are undirected multigraph-free edge lists over dense vertex ids
// [0, num_vertices). The partitioners in this repository are *streaming*
// algorithms: they never see this structure, only an EdgeStream. The Graph
// type exists for generators, quality metrics, the processing engine, and
// tests.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace adwise {

using VertexId = std::uint32_t;

struct Edge {
  VertexId u = 0;
  VertexId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

// Canonical form with the smaller endpoint first; (u,v) and (v,u) denote the
// same undirected edge.
[[nodiscard]] constexpr Edge canonical(Edge e) {
  return e.u <= e.v ? e : Edge{e.v, e.u};
}

class Graph {
 public:
  Graph() = default;
  Graph(VertexId num_vertices, std::vector<Edge> edges)
      : num_vertices_(num_vertices), edges_(std::move(edges)) {}

  [[nodiscard]] VertexId num_vertices() const { return num_vertices_; }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }
  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }
  [[nodiscard]] const Edge& edge(std::size_t i) const { return edges_[i]; }

  // Appends an edge; grows the vertex range if needed.
  void add_edge(VertexId u, VertexId v) {
    edges_.push_back({u, v});
    const VertexId hi = std::max(u, v);
    if (hi >= num_vertices_) num_vertices_ = hi + 1;
  }

  void reserve_edges(std::size_t n) { edges_.reserve(n); }

  // Degree of every vertex (each undirected edge counts once per endpoint;
  // self-loops count twice).
  [[nodiscard]] std::vector<std::uint32_t> degrees() const;

  // Drops self-loops and duplicate undirected edges; sorts edges by
  // canonical (u,v). Generators call this to deliver simple graphs.
  void make_simple();

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

// A graph together with the provenance metadata Table II reports.
struct NamedGraph {
  std::string name;
  std::string kind;  // e.g. "Social", "Biological", "Web"
  Graph graph;
};

}  // namespace adwise
