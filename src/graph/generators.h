// Synthetic graph generators.
//
// The paper evaluates on Orkut (social, low clustering), Brain (biological,
// moderate clustering) and Web (very high clustering) — see Table II. Those
// datasets are not redistributable here, so presets at the bottom of this
// header generate scaled-down graphs that reproduce the properties the
// ADWISE evaluation depends on: degree skew, clustering coefficient, and
// community-local edge order in the stream (DESIGN.md §4 documents the
// substitution argument).
//
// All generators are deterministic in (parameters, seed) and return simple
// undirected graphs (no self-loops, no duplicate edges).
#pragma once

#include <cstdint>

#include "src/graph/graph.h"

namespace adwise {

// --- Structured graphs (used heavily by tests) ------------------------------

// 0-1-2-...-(n-1).
[[nodiscard]] Graph make_path(VertexId n);

// Path plus the closing edge (n-1, 0).
[[nodiscard]] Graph make_cycle(VertexId n);

// Vertex 0 connected to 1..n-1.
[[nodiscard]] Graph make_star(VertexId n);

// All pairs among n vertices.
[[nodiscard]] Graph make_complete(VertexId n);

// rows x cols lattice with 4-neighborhoods.
[[nodiscard]] Graph make_grid(VertexId rows, VertexId cols);

// num_cliques disjoint cliques of clique_size vertices, consecutive cliques
// joined by a single bridge edge.
[[nodiscard]] Graph make_clique_chain(VertexId num_cliques,
                                      VertexId clique_size);

// --- Random graph families ---------------------------------------------------

// G(n, m): m distinct uniform random edges.
[[nodiscard]] Graph make_erdos_renyi(VertexId n, std::size_t m,
                                     std::uint64_t seed);

struct RmatParams {
  std::uint32_t scale = 17;      // n = 2^scale vertices
  std::size_t num_edges = 1'000'000;
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1-a-b-c
  std::uint64_t seed = 1;
};

// Recursive-matrix power-law graph (Chakrabarti et al.); low clustering,
// heavily skewed degrees — the social-network regime.
[[nodiscard]] Graph make_rmat(const RmatParams& params);

// Watts–Strogatz small world: ring lattice with k neighbors per side,
// rewired with probability beta. High clustering for small beta.
[[nodiscard]] Graph make_watts_strogatz(VertexId n, std::uint32_t k,
                                        double beta, std::uint64_t seed);

// Barabási–Albert preferential attachment: each new vertex attaches m edges
// to existing vertices with probability proportional to degree. Power-law
// degree tail, low clustering.
[[nodiscard]] Graph make_barabasi_albert(VertexId n, std::uint32_t m,
                                         std::uint64_t seed);

struct CommunityParams {
  std::uint32_t num_communities = 1000;
  VertexId min_size = 8;
  VertexId max_size = 64;
  double size_exponent = 2.0;   // community sizes ~ power law
  double intra_density = 0.5;   // fraction of possible intra-community pairs
  double inter_fraction = 0.15; // inter-community edges / intra edges
  double hub_fraction = 0.002;  // fraction of vertices acting as global hubs
  std::uint64_t seed = 1;
};

// Planted overlapping-community graph: dense communities with contiguous
// vertex ids (so the natural stream order is community-local, like real
// dataset files), plus inter-community edges that preferentially attach to a
// small hub set (degree skew).
[[nodiscard]] Graph make_community_graph(const CommunityParams& params);

// --- Table II stand-ins -------------------------------------------------------

// scale = 1.0 gives roughly 1M edges per graph; edge counts grow linearly.
[[nodiscard]] NamedGraph make_orkut_like(double scale = 1.0,
                                         std::uint64_t seed = 1);
[[nodiscard]] NamedGraph make_brain_like(double scale = 1.0,
                                         std::uint64_t seed = 1);
[[nodiscard]] NamedGraph make_web_like(double scale = 1.0,
                                       std::uint64_t seed = 1);

}  // namespace adwise
