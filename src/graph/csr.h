// Compressed sparse row adjacency view of a Graph.
//
// Used by graph metrics (clustering coefficient), the NE all-edge baseline,
// the BFS stream ordering, and the processing engine. Neighbor lists are
// sorted, enabling O(log d) membership tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/graph.h"

namespace adwise {

class Csr {
 public:
  Csr() = default;

  // Builds the symmetric adjacency (each undirected edge appears in both
  // endpoint lists). edge_ids()[i] gives the index into graph.edges() of the
  // edge that produced the i-th adjacency entry.
  explicit Csr(const Graph& graph);

  [[nodiscard]] VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }

  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    return {&targets_[offsets_[v]], offsets_[v + 1] - offsets_[v]};
  }

  // Edge ids parallel to neighbors(v).
  [[nodiscard]] std::span<const std::uint32_t> incident_edges(VertexId v) const {
    return {&edge_ids_[offsets_[v]], offsets_[v + 1] - offsets_[v]};
  }

  [[nodiscard]] std::uint32_t degree(VertexId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  // True if u and v are adjacent (binary search on sorted neighbor list).
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

 private:
  std::vector<std::size_t> offsets_;
  std::vector<VertexId> targets_;
  std::vector<std::uint32_t> edge_ids_;
};

}  // namespace adwise
