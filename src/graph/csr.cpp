#include "src/graph/csr.h"

#include <algorithm>

namespace adwise {

Csr::Csr(const Graph& graph) {
  const VertexId n = graph.num_vertices();
  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : graph.edges()) {
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    offsets_[i] += offsets_[i - 1];
  }
  targets_.resize(offsets_.back());
  edge_ids_.resize(offsets_.back());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  const auto edges = graph.edges();
  for (std::uint32_t id = 0; id < edges.size(); ++id) {
    const Edge& e = edges[id];
    targets_[cursor[e.u]] = e.v;
    edge_ids_[cursor[e.u]++] = id;
    targets_[cursor[e.v]] = e.u;
    edge_ids_[cursor[e.v]++] = id;
  }
  // Sort each adjacency list (targets and edge ids in lockstep).
  for (VertexId v = 0; v < n; ++v) {
    const std::size_t lo = offsets_[v];
    const std::size_t hi = offsets_[v + 1];
    std::vector<std::pair<VertexId, std::uint32_t>> entries;
    entries.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      entries.emplace_back(targets_[i], edge_ids_[i]);
    }
    std::sort(entries.begin(), entries.end());
    for (std::size_t i = lo; i < hi; ++i) {
      targets_[i] = entries[i - lo].first;
      edge_ids_[i] = entries[i - lo].second;
    }
  }
}

bool Csr::has_edge(VertexId u, VertexId v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

}  // namespace adwise
