#include "src/graph/graph.h"

#include <algorithm>

namespace adwise {

std::vector<std::uint32_t> Graph::degrees() const {
  std::vector<std::uint32_t> deg(num_vertices_, 0);
  for (const Edge& e : edges_) {
    ++deg[e.u];
    ++deg[e.v];
  }
  return deg;
}

void Graph::make_simple() {
  for (Edge& e : edges_) e = canonical(e);
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  auto last = std::unique(edges_.begin(), edges_.end());
  edges_.erase(last, edges_.end());
  std::erase_if(edges_, [](const Edge& e) { return e.u == e.v; });
}

}  // namespace adwise
