// Edge streams — the only view of the graph a streaming partitioner gets.
//
// Models the paper's edge stream S = <e_1, ..., e_|E|> (§II-B). The adaptive
// window controller additionally needs the number of edges remaining
// (condition C2 uses |E'|), which the paper obtains from the graph file's
// line count; size_hint() plays that role here.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/graph.h"

namespace adwise {

class EdgeStream {
 public:
  virtual ~EdgeStream() = default;

  // Pops the next edge into out; returns false at end of stream.
  virtual bool next(Edge& out) = 0;

  // Edges remaining in the stream (exact for in-memory streams).
  [[nodiscard]] virtual std::size_t size_hint() const = 0;

  [[nodiscard]] bool exhausted() const { return size_hint() == 0; }
};

// A stream that can be replayed from the first edge — the contract multi-pass
// (restreaming) partitioning needs. After rewind() the stream yields exactly
// the same edge sequence again and size_hint() is exact (the full count),
// so every pass sees the same |E'| the controller's condition C2 uses.
class RewindableEdgeStream : public EdgeStream {
 public:
  virtual void rewind() = 0;
};

// Stream over a borrowed, in-memory edge sequence. The caller owns the
// storage and must keep it alive while the stream is in use.
class VectorEdgeStream final : public RewindableEdgeStream {
 public:
  explicit VectorEdgeStream(std::span<const Edge> edges) : edges_(edges) {}

  bool next(Edge& out) override {
    if (pos_ >= edges_.size()) return false;
    out = edges_[pos_++];
    return true;
  }

  [[nodiscard]] std::size_t size_hint() const override {
    return edges_.size() - pos_;
  }

  void rewind() override { pos_ = 0; }
  void reset() { rewind(); }

 private:
  std::span<const Edge> edges_;
  std::size_t pos_ = 0;
};

// How the edge sequence of a Graph is ordered before streaming. Real dataset
// files are roughly sorted by source vertex (kNatural); kShuffled models an
// adversarially scrambled stream; kBfs follows a breadth-first traversal,
// the most locality-friendly ordering.
enum class StreamOrder {
  kNatural,
  kShuffled,
  kBfs,
};

[[nodiscard]] const char* to_string(StreamOrder order);

// Materializes the graph's edges in the requested order. seed only affects
// kShuffled (and the BFS root choice).
[[nodiscard]] std::vector<Edge> ordered_edges(const Graph& graph,
                                              StreamOrder order,
                                              std::uint64_t seed = 1);

// Sizes of the z nearly equal contiguous chunks the parallel loading model
// (§III-D) hands to its partitioner instances: total/z each, the first
// total % z chunks one longer. chunk_edges() and the streaming spotlight
// path derive their chunk boundaries from the same partition.
[[nodiscard]] std::vector<std::size_t> chunk_sizes(std::size_t total,
                                                   std::uint32_t z);

// Splits edges into z nearly equal contiguous chunks (parallel loading model,
// §III-D: each of the z partitioner instances streams one chunk).
[[nodiscard]] std::vector<std::span<const Edge>> chunk_edges(
    std::span<const Edge> edges, std::uint32_t z);

}  // namespace adwise
