// Streaming edge-list file reader.
//
// A streaming partitioner should never need the whole graph in memory; this
// EdgeStream parses a SNAP-style edge list on the fly with a small buffer.
// The paper's adaptive controller needs the total edge count up front ("the
// graph size is usually known or can be determined efficiently using line
// count on the graph file", §III-A) — scan() is exactly that counting
// pre-pass and also reports the maximum vertex id so callers can size the
// vertex cache.
//
// The streaming reader is fd + pread based with an internal chunk buffer
// and line assembly across chunk boundaries, and shares the binary
// stream's transient-failure policy: injected or real EINTR is retried
// for free, EAGAIN/EIO with bounded exponential backoff (Options::retry),
// short reads simply deliver fewer bytes; budget exhaustion throws
// TransientIoError. Faults are driven deterministically through the
// Options::fault_injector hook (src/io/fault_injection.h), giving the
// text path the same fault-injection parity as BinaryEdgeStream.
//
// Vertex ids are used as-is (no densification): the dense arrays inside
// PartitionState assume ids are not wildly sparse. For sparse-id files load
// through read_edge_list_file() instead, which densifies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/edge_stream.h"
#include "src/io/fault_injection.h"

namespace adwise {

class FileEdgeStream final : public RewindableEdgeStream {
 public:
  struct Options {
    // Bytes per pread chunk; lines are assembled across chunk boundaries.
    std::size_t buffer_bytes = std::size_t{64} * 1024;
    // Failpoint hook for tests; must outlive the stream. Null = no faults.
    FaultInjector* fault_injector = nullptr;
    // Retry budget for transient open/pread failures.
    RetryPolicy retry;
  };

  struct Stats {
    std::size_t num_edges = 0;        // parseable, non-self-loop edges
    std::uint64_t max_vertex_id = 0;  // 0 if the file has no edges
  };

  // Counting pre-pass; throws std::runtime_error if the file cannot be read
  // or if a vertex id exceeds the 32-bit VertexId range — the same
  // validation next() applies, so the counted |E| always matches what the
  // stream will actually deliver.
  [[nodiscard]] static Stats scan(const std::string& path);

  // Opens the file for streaming. num_edges must come from scan() (it is
  // returned by size_hint() and decremented as edges are consumed). Throws
  // std::runtime_error if the file cannot be opened (TransientIoError once
  // the retry budget for a transient open failure runs out).
  FileEdgeStream(const std::string& path, std::size_t num_edges)
      : FileEdgeStream(path, num_edges, Options()) {}
  FileEdgeStream(const std::string& path, std::size_t num_edges,
                 Options options);
  ~FileEdgeStream() override;

  FileEdgeStream(const FileEdgeStream&) = delete;
  FileEdgeStream& operator=(const FileEdgeStream&) = delete;

  bool next(Edge& out) override;
  [[nodiscard]] std::size_t size_hint() const override { return remaining_; }

  // Restarts at the top of the file; the stream replays the same num_edges.
  void rewind() override;

  // Transient-failure retries performed so far (open + pread).
  [[nodiscard]] std::uint64_t io_retries() const { return io_retries_; }

 private:
  void open_with_retry(const std::string& path);
  // Loads the next chunk at file_offset_; false at end of file.
  bool refill();
  // Assembles the next '\n'-terminated line (newline stripped, carriage
  // returns kept — the parser tolerates them) into line_; false once the
  // file is exhausted. A final line without a trailing newline is
  // delivered, matching std::getline.
  bool read_line();

  std::string path_;
  Options options_;
  int fd_ = -1;
  std::vector<char> buf_;
  std::size_t buf_pos_ = 0;
  std::size_t buf_len_ = 0;
  std::uint64_t file_offset_ = 0;  // next unread byte of the file
  bool eof_ = false;
  std::string line_;
  std::size_t num_edges_;
  std::size_t remaining_;
  std::uint64_t io_retries_ = 0;
};

}  // namespace adwise
