// Streaming edge-list file reader.
//
// A streaming partitioner should never need the whole graph in memory; this
// EdgeStream parses a SNAP-style edge list on the fly with a small buffer.
// The paper's adaptive controller needs the total edge count up front ("the
// graph size is usually known or can be determined efficiently using line
// count on the graph file", §III-A) — scan() is exactly that counting
// pre-pass and also reports the maximum vertex id so callers can size the
// vertex cache.
//
// Vertex ids are used as-is (no densification): the dense arrays inside
// PartitionState assume ids are not wildly sparse. For sparse-id files load
// through read_edge_list_file() instead, which densifies.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "src/graph/edge_stream.h"

namespace adwise {

class FileEdgeStream final : public RewindableEdgeStream {
 public:
  struct Stats {
    std::size_t num_edges = 0;        // parseable, non-self-loop edges
    std::uint64_t max_vertex_id = 0;  // 0 if the file has no edges
  };

  // Counting pre-pass; throws std::runtime_error if the file cannot be read
  // or if a vertex id exceeds the 32-bit VertexId range — the same
  // validation next() applies, so the counted |E| always matches what the
  // stream will actually deliver.
  [[nodiscard]] static Stats scan(const std::string& path);

  // Opens the file for streaming. num_edges must come from scan() (it is
  // returned by size_hint() and decremented as edges are consumed). Throws
  // std::runtime_error if the file cannot be opened.
  FileEdgeStream(const std::string& path, std::size_t num_edges);

  bool next(Edge& out) override;
  [[nodiscard]] std::size_t size_hint() const override { return remaining_; }

  // Reopens at the top of the file; the stream replays the same num_edges.
  void rewind() override;

 private:
  std::ifstream in_;
  std::string line_;
  std::size_t num_edges_;
  std::size_t remaining_;
};

}  // namespace adwise
