// Structural graph metrics.
//
// Table II characterizes each evaluation graph by |V|, |E| and the average
// local clustering coefficient c^ (computed on a sample, per the paper's
// footnote for the Web graph). These helpers reproduce those columns for the
// synthetic stand-ins and power the generator tests.
#pragma once

#include <cstdint>

#include "src/graph/csr.h"
#include "src/graph/graph.h"

namespace adwise {

struct DegreeStats {
  std::uint32_t max = 0;
  double mean = 0.0;
  // Fraction of total degree held by the top 1% of vertices — a simple skew
  // indicator (power-law graphs concentrate degree mass in few hubs).
  double top1pct_degree_share = 0.0;
};

[[nodiscard]] DegreeStats degree_stats(const Graph& graph);

struct ClusteringOptions {
  // Number of vertices to sample (vertices with degree < 2 contribute 0).
  std::size_t vertex_sample = 20'000;
  // Per-vertex cap on sampled neighbor pairs; bounds work on hubs.
  std::size_t pair_sample = 200;
  std::uint64_t seed = 7;
};

// Estimated average local clustering coefficient (Watts–Strogatz
// definition): mean over sampled vertices of
//   #connected neighbor pairs / #neighbor pairs.
// Exact when vertex_sample >= |V| and pair_sample >= max_degree^2 pairs.
[[nodiscard]] double clustering_coefficient(const Csr& csr,
                                            const ClusteringOptions& opts = {});

}  // namespace adwise
