#include "src/graph/metrics.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/common/rng.h"

namespace adwise {

DegreeStats degree_stats(const Graph& graph) {
  DegreeStats stats;
  auto deg = graph.degrees();
  if (deg.empty()) return stats;
  std::uint64_t total = 0;
  for (std::uint32_t d : deg) {
    stats.max = std::max(stats.max, d);
    total += d;
  }
  stats.mean = static_cast<double>(total) / static_cast<double>(deg.size());
  std::sort(deg.begin(), deg.end(), std::greater<>());
  const std::size_t top = std::max<std::size_t>(1, deg.size() / 100);
  const std::uint64_t top_mass =
      std::accumulate(deg.begin(), deg.begin() + static_cast<std::ptrdiff_t>(top),
                      std::uint64_t{0});
  stats.top1pct_degree_share =
      total == 0 ? 0.0
                 : static_cast<double>(top_mass) / static_cast<double>(total);
  return stats;
}

double clustering_coefficient(const Csr& csr, const ClusteringOptions& opts) {
  const VertexId n = csr.num_vertices();
  if (n == 0) return 0.0;
  Rng rng(opts.seed);

  // Choose the sample: all vertices if the budget covers them, otherwise
  // uniform with replacement (fine for an estimator).
  const bool exhaustive = opts.vertex_sample >= n;
  const std::size_t samples = exhaustive ? n : opts.vertex_sample;

  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    const VertexId v = exhaustive ? static_cast<VertexId>(s)
                                  : static_cast<VertexId>(rng.next_below(n));
    const auto nbrs = csr.neighbors(v);
    const std::size_t d = nbrs.size();
    ++counted;
    if (d < 2) continue;  // contributes 0
    const std::size_t all_pairs = d * (d - 1) / 2;
    if (all_pairs <= opts.pair_sample) {
      std::size_t closed = 0;
      for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t j = i + 1; j < d; ++j) {
          if (csr.has_edge(nbrs[i], nbrs[j])) ++closed;
        }
      }
      sum += static_cast<double>(closed) / static_cast<double>(all_pairs);
    } else {
      std::size_t closed = 0;
      for (std::size_t t = 0; t < opts.pair_sample; ++t) {
        const auto i = static_cast<std::size_t>(rng.next_below(d));
        auto j = static_cast<std::size_t>(rng.next_below(d - 1));
        if (j >= i) ++j;
        if (csr.has_edge(nbrs[i], nbrs[j])) ++closed;
      }
      sum += static_cast<double>(closed) /
             static_cast<double>(opts.pair_sample);
    }
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

}  // namespace adwise
