#include "src/graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/rng.h"

namespace adwise {

Graph make_path(VertexId n) {
  Graph g(n, {});
  g.reserve_edges(n > 0 ? n - 1 : 0);
  for (VertexId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Graph make_cycle(VertexId n) {
  Graph g = make_path(n);
  if (n >= 3) g.add_edge(n - 1, 0);
  return g;
}

Graph make_star(VertexId n) {
  Graph g(n, {});
  g.reserve_edges(n > 0 ? n - 1 : 0);
  for (VertexId i = 1; i < n; ++i) g.add_edge(0, i);
  return g;
}

Graph make_complete(VertexId n) {
  Graph g(n, {});
  g.reserve_edges(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) g.add_edge(i, j);
  }
  return g;
}

Graph make_grid(VertexId rows, VertexId cols) {
  Graph g(rows * cols, {});
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph make_clique_chain(VertexId num_cliques, VertexId clique_size) {
  Graph g(num_cliques * clique_size, {});
  for (VertexId c = 0; c < num_cliques; ++c) {
    const VertexId base = c * clique_size;
    for (VertexId i = 0; i < clique_size; ++i) {
      for (VertexId j = i + 1; j < clique_size; ++j) {
        g.add_edge(base + i, base + j);
      }
    }
    if (c + 1 < num_cliques) {
      g.add_edge(base + clique_size - 1, base + clique_size);
    }
  }
  return g;
}

Graph make_erdos_renyi(VertexId n, std::size_t m, std::uint64_t seed) {
  Graph g(n, {});
  g.reserve_edges(m);
  Rng rng(seed);
  // Oversample, then deduplicate down to simple edges. For sparse graphs the
  // duplicate rate is tiny, so a modest oversampling factor suffices.
  const std::size_t want = m + m / 8 + 16;
  for (std::size_t i = 0; i < want; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    const auto v = static_cast<VertexId>(rng.next_below(n));
    if (u != v) g.add_edge(u, v);
  }
  g.make_simple();
  if (g.num_edges() > m) {
    Graph trimmed(n, std::vector<Edge>(g.edges().begin(),
                                       g.edges().begin() + m));
    return trimmed;
  }
  return g;
}

Graph make_rmat(const RmatParams& params) {
  const VertexId n = VertexId{1} << params.scale;
  Graph g(n, {});
  g.reserve_edges(params.num_edges);
  Rng rng(params.seed);
  const double ab = params.a + params.b;
  const double abc = ab + params.c;
  // Oversample to compensate for duplicates/self-loops removed below; R-MAT
  // duplicate rates are higher than ER because of the skewed distribution.
  const std::size_t want = params.num_edges + params.num_edges / 4 + 16;
  for (std::size_t i = 0; i < want; ++i) {
    VertexId u = 0;
    VertexId v = 0;
    for (std::uint32_t bit = 0; bit < params.scale; ++bit) {
      const double r = rng.next_double();
      // Quadrant choice with light noise on the corner probabilities keeps
      // the generated graph from being exactly self-similar.
      if (r < params.a) {
        // top-left: no bits set
      } else if (r < ab) {
        v |= VertexId{1} << bit;
      } else if (r < abc) {
        u |= VertexId{1} << bit;
      } else {
        u |= VertexId{1} << bit;
        v |= VertexId{1} << bit;
      }
    }
    if (u != v) g.add_edge(u, v);
  }
  g.make_simple();
  if (g.num_edges() > params.num_edges) {
    std::vector<Edge> edges(g.edges().begin(),
                            g.edges().begin() + params.num_edges);
    return Graph(n, std::move(edges));
  }
  return g;
}

Graph make_watts_strogatz(VertexId n, std::uint32_t k, double beta,
                          std::uint64_t seed) {
  Graph g(n, {});
  Rng rng(seed);
  g.reserve_edges(static_cast<std::size_t>(n) * k);
  for (VertexId i = 0; i < n; ++i) {
    for (std::uint32_t j = 1; j <= k; ++j) {
      VertexId target = (i + j) % n;
      if (rng.next_bool(beta)) {
        target = static_cast<VertexId>(rng.next_below(n));
      }
      if (target != i) g.add_edge(i, target);
    }
  }
  g.make_simple();
  return g;
}

Graph make_barabasi_albert(VertexId n, std::uint32_t m, std::uint64_t seed) {
  Graph g(n, {});
  if (n == 0) return g;
  Rng rng(seed);
  // Endpoint history: sampling a uniform element of this vector selects a
  // vertex with probability proportional to its degree.
  std::vector<VertexId> history;
  history.reserve(static_cast<std::size_t>(n) * 2 * m);
  const VertexId seed_vertices = std::min<VertexId>(n, m + 1);
  // Seed clique keeps the early attachment targets non-degenerate.
  for (VertexId i = 0; i < seed_vertices; ++i) {
    for (VertexId j = i + 1; j < seed_vertices; ++j) {
      g.add_edge(i, j);
      history.push_back(i);
      history.push_back(j);
    }
  }
  for (VertexId v = seed_vertices; v < n; ++v) {
    for (std::uint32_t e = 0; e < m; ++e) {
      const VertexId target = history[rng.next_below(history.size())];
      if (target == v) continue;
      g.add_edge(v, target);
      history.push_back(v);
      history.push_back(target);
    }
  }
  g.make_simple();
  return g;
}

Graph make_community_graph(const CommunityParams& params) {
  Rng rng(params.seed);

  // Power-law community sizes in [min_size, max_size]:
  // inverse-CDF sampling of s ~ s^-size_exponent.
  auto sample_size = [&]() -> VertexId {
    const double lo = static_cast<double>(params.min_size);
    const double hi = static_cast<double>(params.max_size);
    const double gamma = params.size_exponent;
    const double u = rng.next_double();
    if (std::abs(gamma - 1.0) < 1e-9) {
      return static_cast<VertexId>(lo * std::pow(hi / lo, u));
    }
    const double a = std::pow(lo, 1.0 - gamma);
    const double b = std::pow(hi, 1.0 - gamma);
    const double x = std::pow(a + u * (b - a), 1.0 / (1.0 - gamma));
    return static_cast<VertexId>(std::clamp(x, lo, hi));
  };

  Graph g;
  std::vector<VertexId> hubs;
  std::size_t intra_edges = 0;
  VertexId next_vertex = 0;
  for (std::uint32_t c = 0; c < params.num_communities; ++c) {
    const VertexId size = sample_size();
    const VertexId base = next_vertex;
    next_vertex += size;
    // Dense intra-community edges: Bernoulli over all pairs.
    for (VertexId i = 0; i < size; ++i) {
      for (VertexId j = i + 1; j < size; ++j) {
        if (rng.next_bool(params.intra_density)) {
          g.add_edge(base + i, base + j);
          ++intra_edges;
        }
      }
    }
    // First member of a community doubles as a potential hub.
    if (rng.next_bool(params.hub_fraction * size)) hubs.push_back(base);
  }
  const VertexId n = next_vertex;
  if (hubs.empty()) hubs.push_back(0);

  // Inter-community edges: half uniformly random (weak ties), half attached
  // to hubs (degree skew à la social/biological networks).
  const auto inter =
      static_cast<std::size_t>(params.inter_fraction *
                               static_cast<double>(intra_edges));
  for (std::size_t i = 0; i < inter; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    const VertexId v =
        rng.next_bool(0.5)
            ? hubs[rng.next_below(hubs.size())]
            : static_cast<VertexId>(rng.next_below(n));
    if (u != v) g.add_edge(u, v);
  }
  g.make_simple();
  return g;
}

NamedGraph make_orkut_like(double scale, std::uint64_t seed) {
  // R-MAT backbone (85% of the edge budget) for the power-law degree
  // distribution, plus a sparse community overlay (15%): real Orkut has
  // weak but nonzero community structure — its sampled clustering is low
  // (Table II: 0.0413) yet latent friend-circles exist, which is what both
  // DBH/HDRF and the ADWISE window exploit there. Pure R-MAT has none.
  // Density: Orkut averages degree 76; the stand-in targets ~25-30.
  const auto budget = static_cast<std::size_t>(1'000'000 * scale);
  RmatParams p;
  p.num_edges = budget - budget * 3 / 20;
  p.seed = seed;
  p.scale = 10;
  while ((std::size_t{1} << p.scale) * 15 < p.num_edges) ++p.scale;
  Graph g = make_rmat(p);

  CommunityParams cp;
  cp.num_communities = static_cast<std::uint32_t>(budget * 3 / 20 / 12);
  cp.min_size = 8;
  cp.max_size = 24;
  cp.size_exponent = 2.0;
  cp.intra_density = 0.12;
  cp.inter_fraction = 0.0;
  cp.hub_fraction = 0.0;
  cp.seed = seed + 1;
  const Graph overlay = make_community_graph(cp);
  for (const Edge& e : overlay.edges()) {
    if (e.u < g.num_vertices() && e.v < g.num_vertices()) {
      g.add_edge(e.u, e.v);
    }
  }
  g.make_simple();
  return {"orkut-like", "Social", std::move(g)};
}

NamedGraph make_brain_like(double scale, std::uint64_t seed) {
  CommunityParams p;
  p.num_communities = static_cast<std::uint32_t>(900 * scale);
  p.min_size = 24;
  p.max_size = 120;
  p.size_exponent = 1.6;
  p.intra_density = 0.6;    // moderate cliquishness -> c^ around 0.5
  p.inter_fraction = 0.12;
  p.hub_fraction = 0.004;
  p.seed = seed;
  return {"brain-like", "Biological", make_community_graph(p)};
}

NamedGraph make_web_like(double scale, std::uint64_t seed) {
  CommunityParams p;
  p.num_communities = static_cast<std::uint32_t>(9000 * scale);
  p.min_size = 8;
  p.max_size = 40;
  p.size_exponent = 2.2;
  p.intra_density = 0.92;   // near-cliques -> c^ around 0.8
  p.inter_fraction = 0.05;
  p.hub_fraction = 0.003;
  p.seed = seed;
  return {"web-like", "Web", make_community_graph(p)};
}

}  // namespace adwise
