// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
// protecting every on-disk artifact that must detect corruption: .adw CRC
// trailers, .adws manifests and .adwk checkpoint sections.
//
// Self-contained slicing-by-8 implementation (no external dependency):
// eight consteval-generated 256-entry tables let the hot loop fold eight
// input bytes per iteration (~4-5x the classic one-table byte loop), which
// keeps the per-checkpoint CRC of megabyte state blobs and the per-block
// .adw trailer verification off the profile. The incremental feed API lets
// writers checksum fixed-size blocks while streaming without buffering a
// whole block.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace adwise {

namespace detail {

consteval std::array<std::array<std::uint32_t, 256>, 8> make_crc32_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  // tables[k][i] — the CRC contribution of byte i seen k positions before
  // the end of an 8-byte group (standard slicing-by-N construction).
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables[k - 1][i];
      tables[k][i] = (prev >> 8) ^ tables[0][prev & 0xffu];
    }
  }
  return tables;
}

inline constexpr std::array<std::array<std::uint32_t, 256>, 8> kCrc32Tables =
    make_crc32_tables();

}  // namespace detail

// Incremental form: state = crc32_init(); state = crc32_feed(state, ...)*;
// crc = crc32_finish(state). Feeding in any split of the same byte sequence
// yields the same final value.
[[nodiscard]] constexpr std::uint32_t crc32_init() { return 0xffffffffu; }

[[nodiscard]] inline std::uint32_t crc32_feed(std::uint32_t state,
                                              const void* data,
                                              std::size_t len) {
  const auto& t = detail::kCrc32Tables;
  const auto* p = static_cast<const unsigned char*>(data);
  // Explicit little-endian byte loads, so the fold is host-endian
  // independent and the result matches the byte-at-a-time loop exactly.
  while (len >= 8) {
    const std::uint32_t lo =
        state ^ (static_cast<std::uint32_t>(p[0]) |
                 (static_cast<std::uint32_t>(p[1]) << 8) |
                 (static_cast<std::uint32_t>(p[2]) << 16) |
                 (static_cast<std::uint32_t>(p[3]) << 24));
    const std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                             (static_cast<std::uint32_t>(p[5]) << 8) |
                             (static_cast<std::uint32_t>(p[6]) << 16) |
                             (static_cast<std::uint32_t>(p[7]) << 24);
    state = t[7][lo & 0xffu] ^ t[6][(lo >> 8) & 0xffu] ^
            t[5][(lo >> 16) & 0xffu] ^ t[4][lo >> 24] ^ t[3][hi & 0xffu] ^
            t[2][(hi >> 8) & 0xffu] ^ t[1][(hi >> 16) & 0xffu] ^
            t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  while (len-- != 0) {
    state = t[0][(state ^ *p++) & 0xffu] ^ (state >> 8);
  }
  return state;
}

[[nodiscard]] constexpr std::uint32_t crc32_finish(std::uint32_t state) {
  return state ^ 0xffffffffu;
}

// One-shot convenience. crc32("123456789") == 0xCBF43926 (the standard
// check value, pinned in tests).
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t len) {
  return crc32_finish(crc32_feed(crc32_init(), data, len));
}

}  // namespace adwise
