// Monotonic clock abstraction.
//
// The ADWISE adaptive window controller trades partitioning latency against
// quality by measuring wall-clock time. Routing all time reads through this
// interface lets production code use the steady clock while tests drive the
// controller deterministically with FakeClock.
#pragma once

#include <chrono>
#include <cstdint>

namespace adwise {

class Clock {
 public:
  virtual ~Clock() = default;

  // Nanoseconds on a monotonic timeline. Only differences are meaningful.
  [[nodiscard]] virtual std::chrono::nanoseconds now() const = 0;
};

// Wraps std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  [[nodiscard]] std::chrono::nanoseconds now() const override;

  // Shared process-wide instance; the class is stateless.
  static SteadyClock& instance();
};

// Manually advanced clock for deterministic tests.
class FakeClock final : public Clock {
 public:
  [[nodiscard]] std::chrono::nanoseconds now() const override { return now_; }

  void advance(std::chrono::nanoseconds delta) { now_ += delta; }
  void set(std::chrono::nanoseconds t) { now_ = t; }

 private:
  std::chrono::nanoseconds now_{0};
};

// Nanoseconds on the process-wide monotonic timeline. The single timing
// helper the observability layer (metrics histograms, trace timestamps)
// routes through — no ad-hoc std::chrono reads at instrumentation sites.
[[nodiscard]] inline std::int64_t monotonic_now_ns() {
  return SteadyClock::instance().now().count();
}

// Measures elapsed wall time against a Clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock& clock = SteadyClock::instance())
      : clock_(&clock), start_(clock.now()) {}

  void restart() { start_ = clock_->now(); }

  [[nodiscard]] std::chrono::nanoseconds elapsed() const {
    return clock_->now() - start_;
  }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(elapsed()).count();
  }

 private:
  const Clock* clock_;
  std::chrono::nanoseconds start_;
};

}  // namespace adwise
