// Fixed-width bit-row replica table for k <= 256 — the cache-compact mirror
// of the per-vertex ReplicaSet array.
//
// ReplicaSet optimizes for sparse membership (an inline word plus a heap
// spill vector), which makes the scoring inner loop pointer-chase per
// vertex. For small k the whole membership row fits in (k+63)/64 words —
// one cache line at k = 256 — so this class keeps every vertex's row in one
// contiguous array: row v occupies words [v*words_per_row, (v+1)*
// words_per_row), and a batch rescore walks linear memory. HEP and the
// buffered streaming partitioners use the same dense_bitset layout for
// exactly this reason.
//
// This is a MIRROR, not a replacement: PartitionState keeps the ReplicaSet
// array authoritative (checkpoints, quality metrics and the other
// partitioners read it unchanged) and forwards every successful insert here
// when the mirror is enabled. Logical content is identical bit-for-bit —
// bit p of row v is set iff ReplicaSet::contains(p) — which the DenseRows
// unit tests and the scoring identity matrix pin.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "src/common/replica_set.h"

namespace adwise {

class DenseReplicaRows {
 public:
  // One cache line per row: 4 * 64 = 256 partitions.
  static constexpr std::uint32_t kMaxK = 256;

  DenseReplicaRows() = default;
  DenseReplicaRows(std::uint32_t k, std::size_t num_vertices)
      : words_per_row_((k + 63) / 64),
        rows_(num_vertices * words_per_row_, 0),
        counts_(num_vertices, 0) {
    assert(k >= 1 && k <= kMaxK);
  }

  // Returns true when p was not yet present (same contract as
  // ReplicaSet::insert).
  bool insert(std::size_t v, std::uint32_t p) {
    std::uint64_t& word = rows_[v * words_per_row_ + (p >> 6)];
    const std::uint64_t bit = std::uint64_t{1} << (p & 63);
    if (word & bit) return false;
    word |= bit;
    ++counts_[v];
    return true;
  }

  bool erase(std::size_t v, std::uint32_t p) {
    std::uint64_t& word = rows_[v * words_per_row_ + (p >> 6)];
    const std::uint64_t bit = std::uint64_t{1} << (p & 63);
    if (!(word & bit)) return false;
    word &= ~bit;
    --counts_[v];
    return true;
  }

  [[nodiscard]] bool contains(std::size_t v, std::uint32_t p) const {
    return (rows_[v * words_per_row_ + (p >> 6)] >> (p & 63)) & 1;
  }

  [[nodiscard]] std::uint16_t count(std::size_t v) const { return counts_[v]; }

  [[nodiscard]] const std::uint64_t* row(std::size_t v) const {
    return rows_.data() + v * words_per_row_;
  }
  [[nodiscard]] std::uint32_t words_per_row() const { return words_per_row_; }
  [[nodiscard]] const std::uint64_t* data() const { return rows_.data(); }
  [[nodiscard]] const std::uint16_t* counts_data() const {
    return counts_.data();
  }
  [[nodiscard]] std::size_t num_rows() const { return counts_.size(); }

  // Rebuilds every row from the authoritative ReplicaSet array (enable after
  // streaming started, or checkpoint load).
  void rebuild_from(const std::vector<ReplicaSet>& replicas) {
    assert(replicas.size() == counts_.size());
    std::fill(rows_.begin(), rows_.end(), 0);
    for (std::size_t v = 0; v < replicas.size(); ++v) {
      counts_[v] = 0;
      replicas[v].for_each([&](std::uint32_t p) { insert(v, p); });
    }
  }

  // Set-equality of row v against a ReplicaSet — the mirror invariant the
  // unit tests assert after interleaved insert/erase sequences.
  [[nodiscard]] bool row_equals(std::size_t v, const ReplicaSet& r) const {
    if (r.size() != counts_[v]) return false;
    bool all = true;
    r.for_each([&](std::uint32_t p) { all = all && contains(v, p); });
    return all;
  }

 private:
  std::uint32_t words_per_row_ = 0;
  std::vector<std::uint64_t> rows_;
  std::vector<std::uint16_t> counts_;
};

}  // namespace adwise
