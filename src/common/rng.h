// Deterministic, fast pseudo-random generators.
//
// All randomized components (generators, shuffles, sampling, probabilistic
// flooding) take an explicit seed so every experiment in this repository is
// reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>

namespace adwise {

// SplitMix64: used to seed Xoshiro and as a standalone stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// xoshiro256** by Blackman & Vigna — small, fast, high quality.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x = splitmix64(x);
      word = x;
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  [[nodiscard]] double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with success probability p.
  [[nodiscard]] bool next_bool(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace adwise
